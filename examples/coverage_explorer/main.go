// Compare path-selection strategies (§3.2's heuristics ablation) on
// every bundled driver and print coverage-vs-time curves — the data
// behind Figure 8 and the claim that the min-count heuristic "does
// not get stuck in loops" like DFS and completes complex entry points
// faster than BFS.
//
//	go run ./examples/coverage_explorer
package main

import (
	"fmt"
	"log"

	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/symexec"
)

func main() {
	strategies := []struct {
		name string
		s    symexec.SearcherFactory
	}{
		{"coverage", symexec.NewCoverageGuided},
		{"DFS", symexec.NewDFS},
		{"BFS", symexec.NewBFS},
	}
	fmt.Printf("%-14s", "driver")
	for _, st := range strategies {
		fmt.Printf(" %12s", st.name)
	}
	fmt.Println("   (final basic-block coverage)")

	for _, info := range drivers.All() {
		fmt.Printf("%-14s", info.Name)
		for _, st := range strategies {
			rev, err := core.ReverseEngineer(info.Program, core.Options{
				Shell:      core.ShellConfig(info),
				DriverName: info.Name,
				Engine:     symexec.Config{Seed: 9, Searcher: st.s},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %11.1f%%", 100*rev.Coverage())
		}
		fmt.Println()
	}

	// Coverage growth for one driver under the default strategy.
	info, _ := drivers.ByName("AMD PCNet")
	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell: core.ShellConfig(info), DriverName: info.Name,
		Engine: symexec.Config{Seed: 9},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s coverage growth (coverage-guided strategy):\n", info.Name)
	total := rev.GroundTruth.NumBlocks()
	last := -1
	for _, pt := range rev.Exploration.Coverage {
		pct := 100 * pt.CoveredBlocks / total
		if pct/10 != last/10 { // print one sample per decile
			fmt.Printf("  %7d blocks executed -> %3d%% covered\n", pt.ExecutedBlocks, pct)
			last = pct
		}
	}
}
