// Port the Windows RTL8139 driver to Linux, end to end, and prove the
// port implements the same hardware protocol.
//
//	go run ./examples/port_rtl8139
//
// This is the paper's §5.1/§5.2 scenario in miniature: reverse
// engineer rtl8139.sys, instantiate the Linux template with the
// synthesized hardware code, then run the original driver and the
// Linux port against identical simulated RTL8139 chips under the same
// workload and compare every hardware I/O operation.
package main

import (
	"fmt"
	"log"
	"strings"

	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/symexec"
	"revnic/internal/template"
)

func main() {
	info, err := drivers.ByName("RTL8139")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reverse engineering %s (%s)...\n", info.Name, info.File)
	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell:      core.ShellConfig(info),
		DriverName: info.Name,
		Engine:     symexec.Config{Seed: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  coverage %.1f%%, %d functions synthesized\n\n",
		100*rev.Coverage(), len(rev.Synth.Funcs))

	// The Linux driver source a developer would build.
	src := rev.InstantiateTemplate(template.Linux)
	fmt.Println("Instantiated Linux template (head):")
	for _, l := range strings.SplitN(src, "\n", 16)[:15] {
		fmt.Println("  " + l)
	}
	fmt.Println("  ...")

	// Equivalence: same workload on original (Windows) and port
	// (Linux), byte-compare the hardware I/O.
	fmt.Println("\nRunning original driver and Linux port under identical workloads...")
	rep, err := core.CheckEquivalence(info, rev, template.Linux)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  original:     %d hardware I/O operations\n", rep.OrigOps)
	fmt.Printf("  synthesized:  %d hardware I/O operations\n", rep.SynthOps)
	if rep.IOTraceEqual {
		fmt.Println("  I/O traces:   IDENTICAL — the port implements the same hardware protocol")
	} else {
		fmt.Printf("  I/O traces:   DIVERGED at %s\n", rep.FirstDivergence)
	}
	fmt.Printf("\nTable 2 row for %s:\n", info.Name)
	fmt.Printf("  init/shutdown=%v send/receive=%v multicast=%v mac=%v promisc=%v duplex=%v dma=%s wol=%s led=%s\n",
		rep.InitShutdown, rep.SendReceive, rep.Multicast, rep.GetSetMAC,
		rep.Promiscuous, rep.FullDuplex, rep.DMA, rep.WakeOnLAN, rep.LED)
}
