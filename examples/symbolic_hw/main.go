// Demonstrate symbolic hardware (§3.1/§3.4): reverse engineering a
// driver for a device you do not have.
//
//	go run ./examples/symbolic_hw
//
// The example explores the SMSC 91C111 driver twice: once with
// RevNIC's symbolic hardware (every device read returns an
// unconstrained symbolic value, so every branch that depends on the
// device forks) and once against a passive concrete device that
// returns zeros — what you would get by tracing the driver against
// idle real hardware. The coverage difference is the paper's argument
// for symbolic hardware: "This exercises many more code paths than
// real hardware could."
package main

import (
	"fmt"
	"log"

	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/symexec"
)

func explore(info *drivers.Info, concrete bool) *core.Reversed {
	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell:      core.ShellConfig(info),
		DriverName: info.Name,
		Engine:     symexec.Config{Seed: 5, ConcreteHardware: concrete},
	})
	if err != nil {
		log.Fatal(err)
	}
	return rev
}

func main() {
	info, err := drivers.ByName("SMSC 91C111")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Driver: %s (%s) — no device model attached in either run\n\n", info.Name, info.File)

	sym := explore(info, false)
	conc := explore(info, true)

	fmt.Println("                         symbolic HW   passive concrete HW")
	fmt.Printf("basic-block coverage      %9.1f%%   %18.1f%%\n",
		100*sym.Coverage(), 100*conc.Coverage())
	fmt.Printf("path forks                %10d   %19d\n",
		sym.Exploration.ForkCount, conc.Exploration.ForkCount)
	fmt.Printf("blocks executed           %10d   %19d\n",
		sym.Exploration.ExecutedBlocks, conc.Exploration.ExecutedBlocks)

	// Show which interrupt-handler paths only symbolic hardware
	// reaches: the ISR branches on the device's interrupt status
	// register, which a passive device never raises.
	symISR, concISR := 0, 0
	for a := range sym.Graph.Blocks {
		if f := sym.Graph.Funcs[sym.Exploration.Entries.ISR]; f != nil {
			if _, ok := f.Blocks[a]; ok {
				symISR++
			}
		}
	}
	if f := conc.Graph.Funcs[conc.Exploration.Entries.ISR]; f != nil {
		concISR = len(f.Blocks)
	}
	fmt.Printf("ISR basic blocks reached  %10d   %19d\n", symISR, concISR)
	fmt.Println("\nWith symbolic hardware, a read of the interrupt status register returns")
	fmt.Println("an unconstrained symbol, so every cause bit (RX, TX-done, allocation)")
	fmt.Println("forks its own path — without ever inducing a real chip to raise them.")
}
