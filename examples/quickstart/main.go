// Quickstart: reverse engineer one closed-source binary NIC driver
// and look at what RevNIC produces.
//
//	go run ./examples/quickstart
//
// The example takes the bundled RTL8029 (NE2000) Windows driver
// binary — RevNIC sees only its bytes — exercises it with symbolic
// hardware, and prints the coverage report, the recovered function
// inventory, and the beginning of the synthesized C code.
package main

import (
	"fmt"
	"log"
	"strings"

	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/symexec"
)

func main() {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Input: %s (%s), %d bytes of opaque binary at base %#x\n\n",
		info.Name, info.File, info.Program.Size(), info.Program.Base)

	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell:      core.ShellConfig(info), // PCI IDs + I/O window from the device manager
		DriverName: info.Name,
		Engine:     symexec.Config{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Exploration: %d translation blocks executed, %d path forks, %d polling-loop kills\n",
		rev.Exploration.ExecutedBlocks, rev.Exploration.ForkCount, rev.Exploration.KilledLoops)
	fmt.Printf("Coverage: %.1f%% of %d ground-truth basic blocks\n\n",
		100*rev.Coverage(), rev.GroundTruth.NumBlocks())

	st := rev.Graph.ComputeStats()
	fmt.Printf("Recovered %d functions (%d fully automated, %d need template integration):\n",
		st.Funcs, st.AutomatedFuncs, st.ManualFuncs)
	for _, f := range rev.Synth.Funcs {
		role := f.Role
		if role == "" {
			role = "-"
		}
		ret := "void"
		if f.HasReturn {
			ret = "uint32_t"
		}
		fmt.Printf("  %-22s role=%-11s class=%-6s params=%d ret=%s\n",
			f.Name, role, f.Class, f.NumParams, ret)
	}

	fmt.Println("\nFirst lines of the synthesized C code:")
	lines := strings.SplitN(rev.Synth.Code, "\n", 40)
	for _, l := range lines[:len(lines)-1] {
		fmt.Println("  " + l)
	}
	fmt.Println("  ...")
}
