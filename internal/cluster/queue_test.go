package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// queueItems builds n echo-style items whose local closure returns a
// distinguishable body; onDone counts settles per key.
func queueItems(n int, done *atomic.Int64, perKey map[string]*atomic.Int64) []QueueItem {
	return queueItemsWork(n, 0, done, perKey)
}

// queueItemsWork is queueItems with a simulated local execution cost,
// so tests can model shards that take real time (instant local
// execution lets one fast worker drain a queue before the scheduling
// behavior under test ever engages).
func queueItemsWork(n int, localCost time.Duration, done *atomic.Int64, perKey map[string]*atomic.Int64) []QueueItem {
	items := make([]QueueItem, n)
	for i := range items {
		key := fmt.Sprintf("item-%d", i)
		var kc *atomic.Int64
		if perKey != nil {
			kc = &atomic.Int64{}
			perKey[key] = kc
		}
		items[i] = QueueItem{
			Key:     key,
			Payload: []byte(key),
			Accept:  acceptJSON,
			Local: func() ([]byte, error) {
				if localCost > 0 {
					time.Sleep(localCost)
				}
				b, _ := json.Marshal(map[string]any{"peer": "local", "len": len(key)})
				return b, nil
			},
			OnDone: func([]byte) {
				if done != nil {
					done.Add(1)
				}
				if kc != nil {
					kc.Add(1)
				}
			},
		}
	}
	return items
}

func TestRunQueueHealthy(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	d := testDispatcher(ft, []string{"p1", "p2"}, nil)
	var done atomic.Int64
	bodies, err := d.RunQueue(context.Background(), queueItems(8, &done, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 8 {
		t.Fatalf("got %d bodies, want 8", len(bodies))
	}
	for i, b := range bodies {
		if len(b) == 0 {
			t.Fatalf("body %d empty", i)
		}
	}
	if got := done.Load(); got != 8 {
		t.Fatalf("OnDone ran %d times, want 8", got)
	}
	s := d.Snapshot()
	if s.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0 on healthy path", s.Fallbacks)
	}
	if s.QueueWaitCount != 8 || s.ShardWallCount != 8 {
		t.Fatalf("wait/wall counts = %d/%d, want 8/8", s.QueueWaitCount, s.ShardWallCount)
	}
}

func TestRunQueueNoPeersRunsLocally(t *testing.T) {
	d := NewDispatcher(Config{Seed: 42})
	var done atomic.Int64
	bodies, err := d.RunQueue(context.Background(), queueItems(6, &done, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 6 || done.Load() != 6 {
		t.Fatalf("bodies=%d done=%d, want 6/6", len(bodies), done.Load())
	}
	for _, b := range bodies {
		if string(b) == "" || !jsonPeerIs(b, "local") {
			t.Fatalf("expected local execution, got %s", b)
		}
	}
}

func jsonPeerIs(b []byte, peer string) bool {
	var v map[string]any
	if json.Unmarshal(b, &v) != nil {
		return false
	}
	p, _ := v["peer"].(string)
	return p == peer
}

func TestRunQueueAllPeersDownFallsBackLocal(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	ft.Kill("p1")
	ft.Kill("p2")
	d := testDispatcher(ft, []string{"p1", "p2"}, func(c *Config) {
		c.MaxAttempts = 2
	})
	var done atomic.Int64
	bodies, err := d.RunQueue(context.Background(), queueItems(4, &done, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bodies {
		if !jsonPeerIs(b, "local") {
			t.Fatalf("body %d not from local fallback: %s", i, b)
		}
	}
	if done.Load() != 4 {
		t.Fatalf("OnDone ran %d times, want 4", done.Load())
	}
	// Every item ran locally — either pulled by the local capacity
	// slot or drained after remote attempts exhausted.
	if s := d.Snapshot(); s.Fallbacks+s.LocalPulls != 4 {
		t.Fatalf("fallbacks+localPulls = %d+%d, want 4 local executions",
			s.Fallbacks, s.LocalPulls)
	}
}

func TestRunQueueStealsFromStraggler(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	// p1 models a healthy peer doing ~10ms of work per shard, p2 a
	// straggler holding every request for two seconds; local execution
	// costs 10ms too. With items outnumbering slots, p2's slots claim
	// work at startup — and with the steal floor at 50ms those items
	// are re-dispatched to p1 long before p2 answers.
	ft.SetLatency("p1", 10*time.Millisecond)
	ft.SetLatency("p2", 2*time.Second)
	d := testDispatcher(ft, []string{"p1", "p2"}, func(c *Config) {
		c.StealAfterMin = 50 * time.Millisecond
		c.StealInterval = 5 * time.Millisecond
		c.AttemptTimeout = 5 * time.Second
	})
	var done atomic.Int64
	start := time.Now()
	bodies, err := d.RunQueue(context.Background(), queueItemsWork(10, 10*time.Millisecond, &done, nil))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(bodies) != 10 || done.Load() != 10 {
		t.Fatalf("bodies=%d done=%d, want 10/10", len(bodies), done.Load())
	}
	// Without stealing, p2's two slots would hold items hostage for
	// 2s each; with stealing the whole queue drains in well under a
	// second (steal threshold + one healthy re-execution).
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("queue took %s; stealing did not rescue straggler items", elapsed)
	}
	if p2 := ft.Sends("p2"); p2 == 0 {
		t.Fatal("straggler peer claimed no items; scenario did not engage")
	}
	if s := d.Snapshot(); s.Steals == 0 {
		t.Fatal("expected at least one steal from the slow peer")
	}
}

func TestRunQueueDisableStealingHonored(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	ft.SetLatency("p2", 300*time.Millisecond)
	d := testDispatcher(ft, []string{"p1", "p2"}, func(c *Config) {
		c.DisableStealing = true
		c.StealAfterMin = 10 * time.Millisecond
		c.StealInterval = 5 * time.Millisecond
	})
	if _, err := d.RunQueue(context.Background(), queueItems(6, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if s := d.Snapshot(); s.Steals != 0 {
		t.Fatalf("steals = %d with stealing disabled", s.Steals)
	}
}

// TestRunQueueAtMostOnceSettle is the steal-race test: with an
// aggressively low steal threshold every item is re-dispatched while
// its first attempt is still in flight, and both attempts race to
// settle. OnDone must still run exactly once per item — that is the
// property revnicd's merge relies on for at-most-once journaling.
// Run under -race this also exercises the queue's locking.
func TestRunQueueAtMostOnceSettle(t *testing.T) {
	ft := NewFaultTransport(func(peer string, body []byte) (*Response, error) {
		// Every peer is slow enough to be declared a straggler, so
		// steals (and the local double-threshold rescue) happen
		// constantly and attempts genuinely race.
		time.Sleep(20 * time.Millisecond)
		return echoHandler(peer, body)
	})
	d := testDispatcher(ft, []string{"p1", "p2", "p3"}, func(c *Config) {
		c.StealAfterMin = time.Millisecond
		c.StealInterval = time.Millisecond
		c.StealMultiple = 0.01
	})
	perKey := make(map[string]*atomic.Int64)
	var done atomic.Int64
	bodies, err := d.RunQueue(context.Background(), queueItemsWork(24, 5*time.Millisecond, &done, perKey))
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 24 {
		t.Fatalf("got %d bodies, want 24", len(bodies))
	}
	for key, c := range perKey {
		if n := c.Load(); n != 1 {
			t.Fatalf("%s settled %d times, want exactly 1", key, n)
		}
	}
	if done.Load() != 24 {
		t.Fatalf("total OnDone = %d, want 24", done.Load())
	}
}

func TestRunQueueLocalErrorFailsQueue(t *testing.T) {
	d := NewDispatcher(Config{Seed: 42})
	items := queueItems(3, nil, nil)
	items[1].Local = func() ([]byte, error) { return nil, fmt.Errorf("boom") }
	_, err := d.RunQueue(context.Background(), items)
	if err == nil {
		t.Fatal("expected queue failure when local execution fails")
	}
}

func TestRunQueueContextCancel(t *testing.T) {
	ft := NewFaultTransport(func(peer string, body []byte) (*Response, error) {
		time.Sleep(50 * time.Millisecond)
		return echoHandler(peer, body)
	})
	d := testDispatcher(ft, []string{"p1"}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := d.RunQueue(ctx, queueItems(50, nil, nil))
	if err == nil {
		t.Fatal("expected error after context cancellation")
	}
}

func TestRunQueueEmpty(t *testing.T) {
	d := NewDispatcher(Config{})
	bodies, err := d.RunQueue(context.Background(), nil)
	if err != nil || bodies != nil {
		t.Fatalf("empty queue: bodies=%v err=%v", bodies, err)
	}
}
