// Package cluster implements the fault-tolerant shard dispatch layer
// of revnicd's coordinator mode: a Dispatcher that fans work out to
// peers over a pluggable Transport with per-attempt timeouts, bounded
// retries under deterministic exponential backoff, hedged requests
// for stragglers, a per-peer circuit breaker, and a guaranteed local
// fallback — a job completes as long as one node is alive.
//
// The package is deliberately generic over []byte payloads so it has
// no dependency on the symbolic-execution layer; revnicd's job
// service adapts it to shard tasks.
package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes requests through and watches the failure
	// rate.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until the open interval elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single trial request; its outcome
	// decides between reclosing and reopening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one peer's circuit breaker.
type BreakerConfig struct {
	// Window is the number of most recent outcomes the failure rate
	// is computed over. Default 20.
	Window int
	// FailureThreshold opens the breaker when the window's failure
	// rate reaches it. Default 0.5.
	FailureThreshold float64
	// MinSamples keeps the breaker closed until the window holds at
	// least this many outcomes, so one early failure cannot trip it.
	// Default 5.
	MinSamples int
	// OpenFor is how long the breaker stays open before admitting a
	// half-open trial. Default 5s.
	OpenFor time.Duration
	// Now is the clock, overridable in tests. Default time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a count-window circuit breaker with the classic
// closed → open → half-open → closed cycle. It is safe for
// concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	window   []bool // ring buffer of outcomes, true = failure
	idx      int
	filled   int
	state    BreakerState
	openedAt time.Time
	probing  bool // a half-open trial is in flight
}

// NewBreaker builds a breaker; zero-valued config fields take the
// documented defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// Allow reports whether a request may be sent now. While open it
// starts returning true once the open interval has elapsed — that
// first true transitions to half-open and claims the single trial
// slot, so concurrent callers cannot stampede a recovering peer.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record feeds one request outcome into the breaker.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if success {
			b.reset()
			return
		}
		b.state = BreakerOpen
		b.openedAt = b.cfg.Now()
	case BreakerClosed:
		b.window[b.idx] = !success
		b.idx = (b.idx + 1) % len(b.window)
		if b.filled < len(b.window) {
			b.filled++
		}
		if b.filled < b.cfg.MinSamples {
			return
		}
		failures := 0
		for i := 0; i < b.filled; i++ {
			if b.window[i] {
				failures++
			}
		}
		if float64(failures)/float64(b.filled) >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.cfg.Now()
		}
	case BreakerOpen:
		// Late outcomes from requests already in flight when the
		// breaker tripped carry no new information; drop them.
	}
}

// Forgive releases a claimed half-open trial slot without recording
// an outcome, for attempts whose failure says nothing about the peer
// (an attempt cancelled because its item completed elsewhere). A
// breaker in any other state is untouched.
func (b *Breaker) Forgive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// State returns the breaker's current position, surfacing the
// open → half-open transition that Allow would take.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// reset returns the breaker to a fresh closed state. Caller holds mu.
func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.idx = 0
	b.filled = 0
	b.probing = false
	for i := range b.window {
		b.window[i] = false
	}
}
