package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Fault is one scripted misbehavior a FaultTransport injects into a
// request. Zero-valued fields do nothing; Latency composes with the
// other fields (the fault is applied after the wait).
type Fault struct {
	// Latency delays the request before anything else happens,
	// respecting context cancellation — with a latency longer than
	// the attempt timeout this models a straggler or hang.
	Latency time.Duration
	// Drop fails the request with a connection error.
	Drop bool
	// Die marks the peer dead: this and every later request (and
	// probe) fails, modeling a crashed process.
	Die bool
	// Status forces a non-200 response with this status code.
	Status int
	// RetryAfter accompanies Status (meaningful with 503).
	RetryAfter time.Duration
	// Torn truncates the real response body halfway, modeling a
	// connection cut mid-transfer that still yielded a status line.
	Torn bool
}

// FaultTransport wraps peer behavior with per-peer scripted fault
// queues, for tests of the dispatcher and of revnicd's cluster mode.
// Each Send consumes the peer's next scripted fault (if any) and
// applies it; with no fault pending the Handler serves the request.
type FaultTransport struct {
	// Handler is the healthy-path behavior of every peer.
	Handler func(peer string, body []byte) (*Response, error)

	mu      sync.Mutex
	scripts map[string][]Fault
	dead    map[string]bool
	sends   map[string]int
	slow    map[string]time.Duration
}

// NewFaultTransport builds a fault transport around the given
// healthy-path handler.
func NewFaultTransport(handler func(peer string, body []byte) (*Response, error)) *FaultTransport {
	return &FaultTransport{
		Handler: handler,
		scripts: make(map[string][]Fault),
		dead:    make(map[string]bool),
		sends:   make(map[string]int),
		slow:    make(map[string]time.Duration),
	}
}

// SetLatency gives a peer a persistent per-request delay — unlike a
// scripted Fault.Latency, which one Send consumes, this applies to
// every Send until changed. It models a chronically slow node (the
// straggler scenario of the scheduling bench); scripted faults stack
// on top.
func (f *FaultTransport) SetLatency(peer string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slow[peer] = d
}

// Script appends faults to a peer's queue; each Send to that peer
// consumes one.
func (f *FaultTransport) Script(peer string, faults ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scripts[peer] = append(f.scripts[peer], faults...)
}

// Kill marks a peer dead immediately.
func (f *FaultTransport) Kill(peer string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead[peer] = true
}

// Sends reports how many Send calls a peer has received.
func (f *FaultTransport) Sends(peer string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sends[peer]
}

// Send applies the peer's next scripted fault, then (if the fault
// allows a response at all) serves the request through Handler.
func (f *FaultTransport) Send(ctx context.Context, peer string, body []byte) (*Response, error) {
	f.mu.Lock()
	f.sends[peer]++
	if f.dead[peer] {
		f.mu.Unlock()
		return nil, fmt.Errorf("fault: peer %s is dead", peer)
	}
	var fault Fault
	hasFault := false
	if q := f.scripts[peer]; len(q) > 0 {
		fault, f.scripts[peer] = q[0], q[1:]
		hasFault = true
	}
	slow := f.slow[peer]
	f.mu.Unlock()

	if slow > 0 {
		if err := sleepCtx(ctx, slow); err != nil {
			return nil, err
		}
	}
	if hasFault && fault.Latency > 0 {
		if err := sleepCtx(ctx, fault.Latency); err != nil {
			return nil, err
		}
	}
	if hasFault {
		switch {
		case fault.Die:
			f.Kill(peer)
			return nil, fmt.Errorf("fault: peer %s died mid-flight", peer)
		case fault.Drop:
			return nil, fmt.Errorf("fault: connection to %s dropped", peer)
		case fault.Status != 0:
			return &Response{Status: fault.Status, RetryAfter: fault.RetryAfter}, nil
		}
	}
	resp, err := f.Handler(peer, body)
	if err != nil {
		return nil, err
	}
	if hasFault && fault.Torn {
		torn := make([]byte, len(resp.Body)/2)
		copy(torn, resp.Body)
		return &Response{Status: resp.Status, Body: torn, RetryAfter: resp.RetryAfter}, nil
	}
	return resp, nil
}

// Probe fails only for dead peers.
func (f *FaultTransport) Probe(ctx context.Context, peer string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[peer] {
		return fmt.Errorf("fault: peer %s is dead", peer)
	}
	return nil
}
