package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// This file is the coordinator work queue: instead of assigning each
// shard to one hash-selected peer up front (Do), a whole phase's
// shards are enqueued at once and *pulled* — every peer worker (and
// the local fallback) claims the next unclaimed item the moment it is
// idle, so fast peers naturally take more work and a slow peer holds
// at most its in-flight items. A straggler — an item in flight longer
// than an EWMA-derived threshold — is re-dispatched to another idle
// worker with first-completion-wins: whichever attempt finishes first
// settles the item and cancels the other (the loser's failure is
// forgiven everywhere — breakers, counters, latency estimates).
// Execution is idempotent and every item settles exactly once, so
// scheduling decides only where and when a shard runs, never what the
// caller merges.

// QueueItem is one unit of work handed to RunQueue.
type QueueItem struct {
	// Key names the item for logging and deterministic backoff jitter.
	Key string
	// Payload is the serialized work sent to peers.
	Payload []byte
	// Accept validates a peer's response body before it is trusted; a
	// rejected body fails the attempt like any transport error.
	Accept func([]byte) error
	// Local executes the item on the caller's node and returns the
	// result body. It is invoked at most once per item; an error from
	// it fails the whole queue (remote execution of other items is
	// cancelled — a shard that not even the local engine can run is a
	// job failure, not a scheduling problem).
	Local func() ([]byte, error)
	// OnDone, when set, is called exactly once, with the winning
	// body, at the moment the item settles — before RunQueue returns,
	// off the queue lock. Callers use it for incremental durability
	// (journaling each shard as it completes).
	OnDone func(body []byte)
}

// qAttempt is one execution of an item in flight.
type qAttempt struct {
	peer    string // "" = local
	started time.Time
	cancel  context.CancelCauseFunc
	stolen  bool
}

// qItem is the scheduler's view of one QueueItem.
type qItem struct {
	it             QueueItem
	done           bool
	body           []byte
	remoteAttempts int       // completed (failed or overloaded) remote attempts
	nextEligible   time.Time // backoff gate for the next remote attempt
	localStarted   bool
	inflight       []*qAttempt
	enqueued       time.Time
	claimed        bool // queue-wait recorded
}

// runQueue is the shared state of one RunQueue call.
type runQueue struct {
	d     *Dispatcher
	mu    sync.Mutex
	cond  *sync.Cond
	items []*qItem
	left  int // items not yet settled
	err   error
	qctx  context.Context
	stop  context.CancelCauseFunc
}

// RunQueue executes every item — remotely where peers have capacity,
// locally otherwise — and returns the result bodies in item order.
// It returns when every item has settled, when any item becomes
// unrunnable (its local execution failed), or when ctx ends. The
// dispatcher's retry, backoff, breaker and overload machinery applies
// per attempt exactly as in Do; stealing and the local pull policy
// are tuned by Config.
func (d *Dispatcher) RunQueue(ctx context.Context, items []QueueItem) ([][]byte, error) {
	if len(items) == 0 {
		return nil, nil
	}
	qctx, stop := context.WithCancelCause(ctx)
	defer stop(nil)
	q := &runQueue{d: d, qctx: qctx, stop: stop, left: len(items)}
	q.cond = sync.NewCond(&q.mu)
	now := time.Now()
	q.items = make([]*qItem, len(items))
	for i := range items {
		q.items[i] = &qItem{it: items[i], enqueued: now}
	}

	var wg sync.WaitGroup
	remote := len(d.cfg.Peers) > 0 && d.cfg.Transport != nil
	if remote {
		for _, p := range d.cfg.Peers {
			for s := 0; s < d.cfg.PeerSlots; s++ {
				wg.Add(1)
				go func(p string) {
					defer wg.Done()
					q.peerWorker(p)
				}(p)
			}
		}
	}
	for s := 0; s < d.cfg.LocalSlots; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			q.localWorker(id, remote)
		}(s)
	}
	// Periodic broadcast: wakes idle workers so backoff expiries and
	// steal thresholds are noticed without per-item timers, and turns
	// context cancellation into worker wake-ups.
	tick := time.NewTicker(d.cfg.StealInterval)
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		for {
			select {
			case <-qctx.Done():
				q.cond.Broadcast()
				return
			case <-tick.C:
				q.cond.Broadcast()
			}
		}
	}()
	wg.Wait()
	stop(nil)
	tick.Stop()
	<-tickDone

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return nil, q.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bodies := make([][]byte, len(q.items))
	for i, it := range q.items {
		if !it.done {
			return nil, fmt.Errorf("cluster: item %s never settled", it.it.Key)
		}
		bodies[i] = it.body
	}
	return bodies, nil
}

// finished reports (under q.mu) whether workers should exit.
func (q *runQueue) finished() bool {
	return q.left == 0 || q.err != nil || q.qctx.Err() != nil
}

// stealThreshold is how long an attempt may be in flight before the
// item counts as a straggler: StealMultiple × the fastest sampled
// peer's EWMA latency, floored by StealAfterMin and capped by the
// attempt timeout. Deriving it from the *fastest* peer's estimate —
// not the holder's own — is what makes a consistently slow peer
// stealable: if a well-placed shard would have finished several times
// over, the item is re-dispatched no matter whose queue it sits in.
func (q *runQueue) stealThreshold() time.Duration {
	th := q.d.cfg.StealAfterMin
	if best, ok := q.d.tracker.bestEwma(); ok {
		t := time.Duration(q.d.cfg.StealMultiple * best * float64(time.Millisecond))
		if t > th {
			th = t
		}
	}
	if th > q.d.cfg.AttemptTimeout {
		th = q.d.cfg.AttemptTimeout
	}
	return th
}

// claimFresh returns the first pending item with no execution in
// flight that is eligible for a remote attempt.
func (q *runQueue) claimFresh(now time.Time) *qItem {
	for _, it := range q.items {
		if it.done || it.localStarted || len(it.inflight) > 0 {
			continue
		}
		if it.remoteAttempts >= q.d.cfg.MaxAttempts || now.Before(it.nextEligible) {
			continue
		}
		return it
	}
	return nil
}

// claimSteal returns the first straggler item peer p may re-dispatch:
// exactly one remote attempt in flight, on another peer, past the
// steal threshold — and p is not itself slower than the holder.
func (q *runQueue) claimSteal(p string, now time.Time) *qItem {
	if q.d.cfg.DisableStealing {
		return nil
	}
	th := q.stealThreshold()
	for _, it := range q.items {
		if it.done || len(it.inflight) != 1 {
			continue
		}
		a := it.inflight[0]
		if a.peer == "" || a.peer == p || now.Sub(a.started) < th {
			continue
		}
		if it.remoteAttempts >= q.d.cfg.MaxAttempts {
			continue
		}
		if pe, ok := q.d.tracker.ewma(p); ok {
			if he, hok := q.d.tracker.ewma(a.peer); hok && pe > he {
				continue // p would be a downgrade, leave it to a faster peer
			}
		}
		return it
	}
	return nil
}

// peerWorker pulls and executes items on behalf of one peer until the
// queue winds down.
func (q *runQueue) peerWorker(p string) {
	for {
		q.mu.Lock()
		var it *qItem
		stolen := false
		for {
			if q.finished() {
				q.mu.Unlock()
				return
			}
			now := time.Now()
			if it = q.claimFresh(now); it != nil {
				break
			}
			if it = q.claimSteal(p, now); it != nil {
				stolen = true
				break
			}
			q.cond.Wait()
		}
		// The breaker is consulted only after a claimable item exists,
		// so a half-open trial slot is never claimed idly; if the
		// breaker refuses, the item stays unclaimed for other workers.
		if !q.d.breaker(p).Allow() {
			q.mu.Unlock()
			q.sleepTick()
			continue
		}
		actx, cancel := context.WithCancelCause(q.qctx)
		a := &qAttempt{peer: p, started: time.Now(), cancel: cancel, stolen: stolen}
		it.inflight = append(it.inflight, a)
		q.noteClaim(it, a)
		if stolen {
			q.d.metrics.bump(func(m *metrics) { m.steals++ })
			q.d.logf("cluster: %s: stealing from %s onto %s after %s",
				it.it.Key, it.inflight[0].peer, p, time.Since(it.inflight[0].started).Round(time.Millisecond))
		}
		q.mu.Unlock()

		res := q.d.tryPeer(actx, p, it.it.Payload, it.it.Accept)
		cancel(nil)

		q.mu.Lock()
		q.dropAttempt(it, a)
		var onDone func([]byte)
		var body []byte
		if res.err == nil {
			onDone, body = q.settle(it, res.body, a)
		} else if !it.done && q.err == nil && q.qctx.Err() == nil {
			it.remoteAttempts++
			if res.overload && res.retryAfter > 0 {
				it.nextEligible = time.Now().Add(res.retryAfter)
			} else {
				it.nextEligible = time.Now().Add(
					backoffDelay(q.d.cfg.BackoffBase, q.d.cfg.BackoffCap, it.remoteAttempts, q.d.cfg.Seed, it.it.Key))
			}
			if it.remoteAttempts >= q.d.cfg.MaxAttempts {
				// Remote delivery abandoned; a local slot will pick the
				// item up. Wake one.
				q.cond.Broadcast()
			}
		}
		q.mu.Unlock()
		if onDone != nil {
			onDone(body)
		}
	}
}

// localWorker executes items on the caller's node. Slot 0 pulls
// unclaimed items alongside the peers (the local node is a capacity
// unit like any other); every slot drains items whose remote attempts
// are exhausted — with no peers at all, that is every item, so the
// queue degenerates to a bounded local pool.
func (q *runQueue) localWorker(id int, remote bool) {
	for {
		q.mu.Lock()
		var it *qItem
		fallback := false
		for {
			if q.finished() {
				q.mu.Unlock()
				return
			}
			if it = q.claimLocal(id, remote, &fallback); it != nil {
				break
			}
			q.cond.Wait()
		}
		a := &qAttempt{started: time.Now()}
		it.localStarted = true
		it.inflight = append(it.inflight, a)
		q.noteClaim(it, a)
		if fallback {
			q.d.metrics.bump(func(m *metrics) { m.fallbacks++ })
			q.d.logf("cluster: %s: local fallback (remote attempts exhausted)", it.it.Key)
		} else {
			q.d.metrics.bump(func(m *metrics) { m.localPulls++ })
		}
		q.mu.Unlock()

		body, err := runLocalItem(it.it)

		q.mu.Lock()
		q.dropAttempt(it, a)
		var onDone func([]byte)
		var winner []byte
		if err == nil {
			onDone, winner = q.settle(it, body, a)
		} else if !it.done && q.err == nil {
			// Local execution is the guaranteed path; its failure is
			// the item's failure, and an unrunnable item fails the
			// whole queue (the caller cannot merge a partial phase).
			q.err = fmt.Errorf("cluster: %s: local execution: %w", it.it.Key, err)
			q.stop(q.err)
			q.cond.Broadcast()
		}
		q.mu.Unlock()
		if onDone != nil {
			onDone(winner)
		}
	}
}

// claimLocal picks the next item a local slot may run (caller holds
// q.mu). Exhausted items go first at every slot; slot 0 additionally
// pulls unclaimed items, and — as a last resort, with double the
// usual threshold — steals a straggler whose remote attempt shows no
// sign of returning.
func (q *runQueue) claimLocal(id int, remote bool, fallback *bool) *qItem {
	for _, it := range q.items {
		if it.done || it.localStarted || len(it.inflight) > 1 {
			continue
		}
		if !remote || it.remoteAttempts >= q.d.cfg.MaxAttempts {
			if len(it.inflight) > 0 {
				// The final remote attempt is still in flight; its
				// settle or failure decides before local takes over.
				continue
			}
			*fallback = remote
			return it
		}
	}
	if id != 0 || !remote {
		return nil
	}
	for _, it := range q.items {
		if it.done || it.localStarted || len(it.inflight) > 0 {
			continue
		}
		*fallback = false
		return it
	}
	if !q.d.cfg.DisableStealing {
		th := 2 * q.stealThreshold()
		now := time.Now()
		for _, it := range q.items {
			if it.done || it.localStarted || len(it.inflight) != 1 {
				continue
			}
			a := it.inflight[0]
			if a.peer == "" || now.Sub(a.started) < th {
				continue
			}
			*fallback = false
			return it
		}
	}
	return nil
}

// noteClaim records an item's first claim for the queue-wait metric
// (caller holds q.mu).
func (q *runQueue) noteClaim(it *qItem, a *qAttempt) {
	if it.claimed {
		return
	}
	it.claimed = true
	wait := a.started.Sub(it.enqueued).Seconds()
	q.d.metrics.bump(func(m *metrics) { m.queueWaitSum += wait; m.queueWaitN++ })
}

// settle completes an item with the winning body (caller holds q.mu):
// exactly one settle wins, losers are cancelled with errShardWon so
// their failures are forgiven everywhere. Returns the OnDone callback
// (to run off the lock) when this call was the winner.
func (q *runQueue) settle(it *qItem, body []byte, a *qAttempt) (func([]byte), []byte) {
	if it.done {
		return nil, nil
	}
	it.done = true
	it.body = body
	q.left--
	wall := time.Since(a.started).Seconds()
	q.d.metrics.bump(func(m *metrics) { m.shardWallSum += wall; m.shardWallN++ })
	for _, other := range it.inflight {
		if other != a && other.cancel != nil {
			other.cancel(errShardWon)
		}
	}
	q.cond.Broadcast()
	return it.it.OnDone, body
}

// dropAttempt removes a finished attempt from an item's in-flight
// list (caller holds q.mu).
func (q *runQueue) dropAttempt(it *qItem, a *qAttempt) {
	for i, x := range it.inflight {
		if x == a {
			it.inflight = append(it.inflight[:i], it.inflight[i+1:]...)
			return
		}
	}
}

// sleepTick pauses a worker whose peer breaker refused admission, so
// it re-checks at steal-interval granularity instead of spinning.
func (q *runQueue) sleepTick() {
	t := time.NewTimer(q.d.cfg.StealInterval)
	defer t.Stop()
	select {
	case <-t.C:
	case <-q.qctx.Done():
	}
}

// runLocalItem executes an item's local closure, converting a panic
// into an error: the closure runs on a queue worker goroutine with no
// caller to recover for it.
func runLocalItem(it QueueItem) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			body, err = nil, fmt.Errorf("local execution panic: %v", r)
		}
	}()
	return it.Local()
}
