package cluster

import (
	"sort"
	"sync"
)

// peerStats accumulates one peer's dispatch counters.
type peerStats struct {
	attempts  int64
	retries   int64
	hedges    int64
	successes int64
	failures  int64
	overloads int64
}

// metrics is the dispatcher's counter store.
type metrics struct {
	mu        sync.Mutex
	peers     map[string]*peerStats
	fallbacks int64

	// Work-queue observations (RunQueue).
	steals       int64   // straggler re-dispatches onto another peer
	localPulls   int64   // items the local node pulled as a capacity unit
	shardWallSum float64 // winning-attempt wall seconds, summed
	shardWallN   int64
	queueWaitSum float64 // enqueue→first-claim seconds, summed
	queueWaitN   int64
}

func newMetrics() *metrics {
	return &metrics{peers: make(map[string]*peerStats)}
}

func (m *metrics) peer(name string) *peerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.peers[name]
	if s == nil {
		s = &peerStats{}
		m.peers[name] = s
	}
	return s
}

func (m *metrics) add(name string, f func(*peerStats)) {
	s := m.peer(name)
	m.mu.Lock()
	f(s)
	m.mu.Unlock()
}

// bump mutates the queue-level counters under the lock.
func (m *metrics) bump(f func(*metrics)) {
	m.mu.Lock()
	f(m)
	m.mu.Unlock()
}

// PeerSnapshot is one peer's counters at a point in time.
type PeerSnapshot struct {
	Peer      string
	Attempts  int64
	Retries   int64
	Hedges    int64
	Successes int64
	Failures  int64
	Overloads int64
	Breaker   string
	// EwmaMS is the peer's EWMA latency estimate in milliseconds
	// (0 until the first successful attempt); Inflight is the number
	// of attempts currently running on it.
	EwmaMS   float64
	Inflight int64
}

// Snapshot is a point-in-time view of a dispatcher's activity.
type Snapshot struct {
	Peers     []PeerSnapshot
	Fallbacks int64
	// Work-queue activity (RunQueue).
	Steals         int64
	LocalPulls     int64
	ShardWallSum   float64 // seconds
	ShardWallCount int64
	QueueWaitSum   float64 // seconds
	QueueWaitCount int64
}

// Snapshot returns the dispatcher's counters and breaker states,
// peers sorted by name so the output is deterministic.
func (d *Dispatcher) Snapshot() Snapshot {
	d.metrics.mu.Lock()
	names := make([]string, 0, len(d.metrics.peers))
	for n := range d.metrics.peers {
		names = append(names, n)
	}
	d.metrics.mu.Unlock()
	// Configured peers appear even before their first dispatch.
	for _, p := range d.cfg.Peers {
		found := false
		for _, n := range names {
			if n == p {
				found = true
				break
			}
		}
		if !found {
			names = append(names, p)
		}
	}
	sort.Strings(names)
	snap := Snapshot{Peers: make([]PeerSnapshot, 0, len(names))}
	for _, n := range names {
		s := d.metrics.peer(n)
		br := d.breaker(n)
		d.metrics.mu.Lock()
		ps := PeerSnapshot{
			Peer:      n,
			Attempts:  s.attempts,
			Retries:   s.retries,
			Hedges:    s.hedges,
			Successes: s.successes,
			Failures:  s.failures,
			Overloads: s.overloads,
			Breaker:   br.State().String(),
		}
		d.metrics.mu.Unlock()
		ps.EwmaMS, ps.Inflight = d.tracker.snapshot(n)
		snap.Peers = append(snap.Peers, ps)
	}
	d.metrics.mu.Lock()
	snap.Fallbacks = d.metrics.fallbacks
	snap.Steals = d.metrics.steals
	snap.LocalPulls = d.metrics.localPulls
	snap.ShardWallSum = d.metrics.shardWallSum
	snap.ShardWallCount = d.metrics.shardWallN
	snap.QueueWaitSum = d.metrics.queueWaitSum
	snap.QueueWaitCount = d.metrics.queueWaitN
	d.metrics.mu.Unlock()
	return snap
}
