package cluster

import (
	"sort"
	"sync"
)

// peerStats accumulates one peer's dispatch counters.
type peerStats struct {
	attempts  int64
	retries   int64
	hedges    int64
	successes int64
	failures  int64
	overloads int64
}

// metrics is the dispatcher's counter store.
type metrics struct {
	mu        sync.Mutex
	peers     map[string]*peerStats
	fallbacks int64
}

func newMetrics() *metrics {
	return &metrics{peers: make(map[string]*peerStats)}
}

func (m *metrics) peer(name string) *peerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.peers[name]
	if s == nil {
		s = &peerStats{}
		m.peers[name] = s
	}
	return s
}

func (m *metrics) add(name string, f func(*peerStats)) {
	s := m.peer(name)
	m.mu.Lock()
	f(s)
	m.mu.Unlock()
}

// PeerSnapshot is one peer's counters at a point in time.
type PeerSnapshot struct {
	Peer      string
	Attempts  int64
	Retries   int64
	Hedges    int64
	Successes int64
	Failures  int64
	Overloads int64
	Breaker   string
}

// Snapshot is a point-in-time view of a dispatcher's activity.
type Snapshot struct {
	Peers     []PeerSnapshot
	Fallbacks int64
}

// Snapshot returns the dispatcher's counters and breaker states,
// peers sorted by name so the output is deterministic.
func (d *Dispatcher) Snapshot() Snapshot {
	d.metrics.mu.Lock()
	names := make([]string, 0, len(d.metrics.peers))
	for n := range d.metrics.peers {
		names = append(names, n)
	}
	d.metrics.mu.Unlock()
	// Configured peers appear even before their first dispatch.
	for _, p := range d.cfg.Peers {
		found := false
		for _, n := range names {
			if n == p {
				found = true
				break
			}
		}
		if !found {
			names = append(names, p)
		}
	}
	sort.Strings(names)
	snap := Snapshot{Peers: make([]PeerSnapshot, 0, len(names))}
	for _, n := range names {
		s := d.metrics.peer(n)
		br := d.breaker(n)
		d.metrics.mu.Lock()
		ps := PeerSnapshot{
			Peer:      n,
			Attempts:  s.attempts,
			Retries:   s.retries,
			Hedges:    s.hedges,
			Successes: s.successes,
			Failures:  s.failures,
			Overloads: s.overloads,
			Breaker:   br.State().String(),
		}
		d.metrics.mu.Unlock()
		snap.Peers = append(snap.Peers, ps)
	}
	d.metrics.mu.Lock()
	snap.Fallbacks = d.metrics.fallbacks
	d.metrics.mu.Unlock()
	return snap
}
