package cluster

import (
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	base, cap := 100*time.Millisecond, 5*time.Second
	for attempt := 1; attempt <= 8; attempt++ {
		a := backoffDelay(base, cap, attempt, 42, "job1/init/3/0")
		b := backoffDelay(base, cap, attempt, 42, "job1/init/3/0")
		if a != b {
			t.Fatalf("attempt %d: same inputs gave %s and %s", attempt, a, b)
		}
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	base, cap := 100*time.Millisecond, 5*time.Second
	for attempt := 1; attempt <= 12; attempt++ {
		d := backoffDelay(base, cap, attempt, 7, "k")
		full := base << uint(attempt-1)
		if full > cap || full <= 0 {
			full = cap
		}
		if d < full/2 || d > full {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d, full/2, full)
		}
		if d > cap {
			t.Fatalf("attempt %d: delay %s exceeds cap %s", attempt, d, cap)
		}
	}
}

func TestBackoffJitterVariesByKeyAndSeed(t *testing.T) {
	base, cap := 100*time.Millisecond, 5*time.Second
	// Across many keys at a fixed attempt, at least two delays must
	// differ — otherwise the "jitter" is a constant and retries from
	// different shards synchronize against a recovering peer.
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[backoffDelay(base, cap, 3, 42, string(rune('a'+i)))] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter does not vary across keys")
	}
	seenSeed := map[time.Duration]bool{}
	for s := int64(0); s < 32; s++ {
		seenSeed[backoffDelay(base, cap, 3, s, "k")] = true
	}
	if len(seenSeed) < 2 {
		t.Fatal("jitter does not vary across seeds")
	}
}

func TestBackoffZeroBase(t *testing.T) {
	if d := backoffDelay(0, time.Second, 3, 1, "k"); d != 0 {
		t.Fatalf("zero base gave nonzero delay %s", d)
	}
}
