package cluster

import (
	"sync"
	"time"
)

// ewmaAlpha is the smoothing factor of the per-peer latency EWMA: new
// samples carry 30% weight, so a few fast shards on a recovering peer
// move its estimate quickly without one outlier rewriting it.
const ewmaAlpha = 0.3

// peerLoad is one peer's live capacity estimate: an EWMA of observed
// successful-attempt latency plus the number of attempts in flight.
type peerLoad struct {
	ewmaMS   float64
	samples  int64
	inflight int64
}

// tracker maintains per-peer load estimates for the weighted selector
// and the work-stealing threshold. Latency samples come from
// successful attempts only — failures and timeouts feed the circuit
// breakers, which gate selection separately, and a cancelled attempt's
// partial duration estimates nothing.
type tracker struct {
	mu    sync.Mutex
	peers map[string]*peerLoad
}

func newTracker() *tracker {
	return &tracker{peers: make(map[string]*peerLoad)}
}

func (t *tracker) load(peer string) *peerLoad {
	l := t.peers[peer]
	if l == nil {
		l = &peerLoad{}
		t.peers[peer] = l
	}
	return l
}

// start records an attempt going in flight on peer.
func (t *tracker) start(peer string) {
	t.mu.Lock()
	t.load(peer).inflight++
	t.mu.Unlock()
}

// finish records an attempt leaving flight; a successful attempt's
// duration becomes a latency sample.
func (t *tracker) finish(peer string, d time.Duration, success bool) {
	t.mu.Lock()
	l := t.load(peer)
	if l.inflight > 0 {
		l.inflight--
	}
	if success {
		ms := float64(d.Microseconds()) / 1000
		if l.samples == 0 {
			l.ewmaMS = ms
		} else {
			l.ewmaMS = ewmaAlpha*ms + (1-ewmaAlpha)*l.ewmaMS
		}
		l.samples++
	}
	t.mu.Unlock()
}

// score is the weighted-least-loaded selection key: expected latency
// scaled by queue depth. An unsampled peer scores 0 — unknown capacity
// is tried first, which both spreads initial load and collects the
// samples everything else here feeds on.
func (t *tracker) score(peer string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.peers[peer]
	if l == nil || l.samples == 0 {
		return 0
	}
	return l.ewmaMS * float64(1+l.inflight)
}

// ewma returns the peer's latency estimate in milliseconds and whether
// any samples back it.
func (t *tracker) ewma(peer string) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.peers[peer]
	if l == nil || l.samples == 0 {
		return 0, false
	}
	return l.ewmaMS, true
}

// bestEwma is the fastest sampled peer's latency estimate — what a
// well-placed shard should cost. The steal threshold derives from it:
// a shard in flight for several multiples of bestEwma is a straggler
// no matter whose queue it sits in.
func (t *tracker) bestEwma() (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	best, ok := 0.0, false
	for _, l := range t.peers {
		if l.samples == 0 {
			continue
		}
		if !ok || l.ewmaMS < best {
			best, ok = l.ewmaMS, true
		}
	}
	return best, ok
}

// snapshot returns the peer's estimate for metrics export.
func (t *tracker) snapshot(peer string) (ewmaMS float64, inflight int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.peers[peer]
	if l == nil {
		return 0, 0
	}
	return l.ewmaMS, l.inflight
}
