package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(0, 0)} }
func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:           10,
		FailureThreshold: 0.5,
		MinSamples:       4,
		OpenFor:          5 * time.Second,
		Now:              clk.now,
	})
}

func TestBreakerStaysClosedBelowMinSamples(t *testing.T) {
	b := testBreaker(newFakeClock())
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("3 failures with MinSamples=4: state %v, want closed", got)
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := testBreaker(newFakeClock())
	// 2 successes + 2 failures = 4 samples at exactly 50% failure.
	b.Record(true)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("failure rate at threshold: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
}

func TestBreakerHalfOpenRecloses(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before OpenFor")
	}
	clk.advance(5 * time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("after OpenFor: state %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the trial request")
	}
	// The single trial slot is claimed: a concurrent caller is rejected.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("successful trial: state %v, want closed", got)
	}
	// The window was reset: one failure must not immediately retrip.
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("one failure after reclose: state %v, want closed", got)
	}
}

func TestBreakerHalfOpenReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the trial request")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("failed trial: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a request without waiting OpenFor again")
	}
	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker never offered a second trial")
	}
}

func TestBreakerIgnoresLateOutcomesWhileOpen(t *testing.T) {
	b := testBreaker(newFakeClock())
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	// An in-flight request from before the trip completes now; its
	// outcome must not disturb the open state or the recovery window.
	b.Record(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("late success while open: state %v, want open", got)
	}
}
