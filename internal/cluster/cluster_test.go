package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoHandler is the healthy-path peer: it answers with a JSON object
// naming the serving peer and echoing the payload length.
func echoHandler(peer string, body []byte) (*Response, error) {
	b, _ := json.Marshal(map[string]any{"peer": peer, "len": len(body)})
	return &Response{Status: 200, Body: b}, nil
}

// acceptJSON validates a body the way revnicd does: a full unmarshal,
// so truncated bodies are rejected.
func acceptJSON(b []byte) error {
	var v map[string]any
	return json.Unmarshal(b, &v)
}

func testDispatcher(ft *FaultTransport, peers []string, tweak func(*Config)) *Dispatcher {
	cfg := Config{
		Peers:          peers,
		Transport:      ft,
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffCap:     4 * time.Millisecond,
		Seed:           42,
		Breaker:        BreakerConfig{Window: 10, MinSamples: 100}, // effectively disabled unless test lowers it
	}
	if tweak != nil {
		tweak(&cfg)
	}
	return NewDispatcher(cfg)
}

func peerTotals(s Snapshot) (attempts, retries, failures, overloads, hedges int64) {
	for _, p := range s.Peers {
		attempts += p.Attempts
		retries += p.Retries
		failures += p.Failures
		overloads += p.Overloads
		hedges += p.Hedges
	}
	return
}

func TestDispatcherHealthyPath(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	d := testDispatcher(ft, []string{"p1", "p2"}, nil)
	body, err := d.Do(context.Background(), "k", []byte("x"), acceptJSON, func() ([]byte, error) {
		t.Fatal("local fallback invoked on healthy path")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"len":1`) {
		t.Fatalf("unexpected body %s", body)
	}
	if s := d.Snapshot(); s.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0", s.Fallbacks)
	}
}

func TestDispatcherRetriesDropThenSucceeds(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	for _, p := range []string{"p1", "p2"} {
		ft.Script(p, Fault{Drop: true})
	}
	d := testDispatcher(ft, []string{"p1", "p2"}, nil)
	_, err := d.Do(context.Background(), "k", []byte("x"), acceptJSON, func() ([]byte, error) {
		t.Fatal("fallback invoked though retries could succeed")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, retries, failures, _, _ := peerTotals(d.Snapshot())
	if retries < 1 || failures < 1 {
		t.Fatalf("retries=%d failures=%d, want both >= 1", retries, failures)
	}
}

func TestDispatcherTornBodyRetried(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	for _, p := range []string{"p1", "p2"} {
		ft.Script(p, Fault{Torn: true})
	}
	d := testDispatcher(ft, []string{"p1", "p2"}, nil)
	body, err := d.Do(context.Background(), "k", []byte("x"), acceptJSON, func() ([]byte, error) {
		t.Fatal("fallback invoked though a retry could succeed")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := acceptJSON(body); err != nil {
		t.Fatalf("returned body is not valid JSON: %v", err)
	}
}

func TestDispatcherAllPeersDeadFallsBackLocal(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	ft.Kill("p1")
	ft.Kill("p2")
	d := testDispatcher(ft, []string{"p1", "p2"}, nil)
	var localRuns atomic.Int64
	body, err := d.Do(context.Background(), "k", []byte("x"), acceptJSON, func() ([]byte, error) {
		localRuns.Add(1)
		return []byte(`{"peer":"local"}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != `{"peer":"local"}` {
		t.Fatalf("unexpected body %s", body)
	}
	if localRuns.Load() != 1 {
		t.Fatalf("local ran %d times, want exactly 1", localRuns.Load())
	}
	if s := d.Snapshot(); s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks)
	}
}

func TestDispatcherNoPeersRunsLocalDirectly(t *testing.T) {
	d := testDispatcher(NewFaultTransport(echoHandler), nil, nil)
	body, err := d.Do(context.Background(), "k", nil, acceptJSON, func() ([]byte, error) {
		return []byte(`{}`), nil
	})
	if err != nil || string(body) != `{}` {
		t.Fatalf("body=%s err=%v", body, err)
	}
	if s := d.Snapshot(); s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks)
	}
}

func TestDispatcherOverloadIsNotBreakerFailure(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	// Enough 503s to trip the breaker if they counted as failures.
	for _, p := range []string{"p1", "p2"} {
		for i := 0; i < 2; i++ {
			ft.Script(p, Fault{Status: 503, RetryAfter: time.Millisecond})
		}
	}
	d := testDispatcher(ft, []string{"p1", "p2"}, func(c *Config) {
		c.Breaker = BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5}
		c.MaxAttempts = 5
	})
	_, err := d.Do(context.Background(), "k", []byte("x"), acceptJSON, func() ([]byte, error) {
		t.Fatal("fallback invoked though peers would recover")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	_, _, failures, overloads, _ := peerTotals(s)
	if overloads < 1 {
		t.Fatalf("overloads = %d, want >= 1", overloads)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, want 0 (503 must not count)", failures)
	}
	for _, p := range s.Peers {
		if p.Breaker != "closed" {
			t.Fatalf("peer %s breaker %s after 503s, want closed", p.Peer, p.Breaker)
		}
	}
}

func TestDispatcherHedgesSlowPrimary(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	d := testDispatcher(ft, []string{"p1", "p2"}, func(c *Config) {
		c.HedgeDelay = 10 * time.Millisecond
		c.AttemptTimeout = 5 * time.Second
	})
	// Whichever peer the deterministic selection makes primary, make
	// it a straggler; the hedge on the other peer must win.
	primary, _ := d.pickPeer(int(hash64(42, "k", -1)%2), 0, "")
	ft.Script(primary, Fault{Latency: 2 * time.Second})
	start := time.Now()
	_, err := d.Do(context.Background(), "k", []byte("x"), acceptJSON, func() ([]byte, error) {
		t.Fatal("fallback invoked")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not rescue the straggler: took %s", elapsed)
	}
	_, _, _, _, hedges := peerTotals(d.Snapshot())
	if hedges != 1 {
		t.Fatalf("hedges = %d, want 1", hedges)
	}
}

func TestDispatcherBreakerSkipsDeadPeer(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	ft.Kill("p1")
	d := testDispatcher(ft, []string{"p1", "p2"}, func(c *Config) {
		c.Breaker = BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: time.Hour}
		c.MaxAttempts = 2
	})
	// Dispatch repeatedly; once p1's breaker opens, no further sends
	// reach it.
	for i := 0; i < 6; i++ {
		d.Do(context.Background(), fmt.Sprintf("k%d", i), []byte("x"), acceptJSON, func() ([]byte, error) {
			return []byte(`{}`), nil
		})
	}
	tripped := ft.Sends("p1")
	for i := 0; i < 6; i++ {
		d.Do(context.Background(), fmt.Sprintf("m%d", i), []byte("x"), acceptJSON, func() ([]byte, error) {
			return []byte(`{}`), nil
		})
	}
	if after := ft.Sends("p1"); after != tripped {
		t.Fatalf("open breaker let %d more sends through to dead peer", after-tripped)
	}
	var p1 PeerSnapshot
	for _, p := range d.Snapshot().Peers {
		if p.Peer == "p1" {
			p1 = p
		}
	}
	if p1.Breaker != "open" {
		t.Fatalf("p1 breaker %s, want open", p1.Breaker)
	}
}

func TestProberReclosesRecoveredPeer(t *testing.T) {
	ft := NewFaultTransport(echoHandler)
	ft.Kill("p1")
	d := testDispatcher(ft, []string{"p1"}, func(c *Config) {
		c.Breaker = BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: time.Millisecond}
	})
	// Trip the breaker through failed dispatches.
	d.Do(context.Background(), "k", []byte("x"), acceptJSON, func() ([]byte, error) { return []byte(`{}`), nil })
	if st := d.breaker("p1").State(); st == BreakerClosed {
		t.Fatal("breaker still closed after dispatch to dead peer")
	}
	// Peer comes back; the prober's successful probe is the half-open
	// trial that recloses the breaker.
	ft.mu.Lock()
	ft.dead["p1"] = false
	ft.mu.Unlock()
	stop := d.StartProber(2 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.breaker("p1").State() == BreakerClosed {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("breaker never reclosed; state %v", d.breaker("p1").State())
}
