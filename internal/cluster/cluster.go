package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config tunes a Dispatcher.
type Config struct {
	// Peers are the base URLs (or opaque names, for non-HTTP
	// transports) work may be sent to. Empty means every dispatch
	// runs the local fallback directly.
	Peers []string
	// Transport moves payloads; required when Peers is non-empty.
	Transport Transport
	// AttemptTimeout bounds each remote attempt. Default 60s.
	AttemptTimeout time.Duration
	// MaxAttempts is how many remote attempts (each possibly hedged)
	// are made before the local fallback. Default 3.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the retry pauses. Defaults
	// 100ms and 5s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeDelay launches a second attempt on another peer when the
	// first has not answered within this delay. Zero disables
	// hedging.
	HedgeDelay time.Duration
	// Seed feeds the deterministic jitter and peer selection.
	Seed int64
	// PeerSlots is how many queue items one peer executes
	// concurrently in RunQueue (its pull width). Default 2.
	PeerSlots int
	// LocalSlots is how many queue items the local fallback executes
	// concurrently in RunQueue. One slot pulls alongside the peers as
	// a regular capacity unit; the extra slots only drain items whose
	// remote attempts are exhausted, so a healthy cluster is not
	// starved by an eager coordinator. With no peers configured every
	// slot pulls, preserving local parallelism. Default 2.
	LocalSlots int
	// DisableStealing turns off straggler re-dispatch in RunQueue:
	// items still pull-balance across peers, but an item stuck on a
	// slow peer is never duplicated onto a faster one.
	DisableStealing bool
	// DisableWeighting makes pickPeer ignore the EWMA tracker and
	// scan the hash-seeded peer ring exactly as earlier versions did.
	DisableWeighting bool
	// StealInterval is how often RunQueue re-examines in-flight items
	// for stragglers (and wakes workers waiting out a backoff).
	// Default 25ms.
	StealInterval time.Duration
	// StealAfterMin floors the straggler threshold: an attempt is
	// never stolen before being in flight this long. Default 750ms.
	StealAfterMin time.Duration
	// StealMultiple scales the EWMA-derived straggler threshold: an
	// attempt is stealable once it has been in flight longer than
	// StealMultiple × the fastest sampled peer's EWMA latency
	// (floored by StealAfterMin, capped by AttemptTimeout). Default 3.
	StealMultiple float64
	// Breaker tunes the per-peer circuit breakers.
	Breaker BreakerConfig
	// Logf, when set, receives one line per notable event (retry,
	// hedge, breaker rejection, fallback).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 60 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
	if c.PeerSlots <= 0 {
		c.PeerSlots = 2
	}
	if c.LocalSlots <= 0 {
		c.LocalSlots = 2
	}
	if c.StealInterval <= 0 {
		c.StealInterval = 25 * time.Millisecond
	}
	if c.StealAfterMin <= 0 {
		c.StealAfterMin = 750 * time.Millisecond
	}
	if c.StealMultiple <= 0 {
		c.StealMultiple = 3
	}
	return c
}

// Dispatcher fans payloads out to peers with retries, hedging and
// per-peer circuit breaking, falling back to local execution when
// remote delivery fails. It is safe for concurrent use; revnicd runs
// one dispatch per shard group concurrently.
type Dispatcher struct {
	cfg Config

	mu       sync.Mutex
	breakers map[string]*Breaker

	tracker *tracker
	metrics *metrics
}

// NewDispatcher builds a dispatcher; zero-valued config fields take
// the documented defaults.
func NewDispatcher(cfg Config) *Dispatcher {
	return &Dispatcher{
		cfg:      cfg.withDefaults(),
		breakers: make(map[string]*Breaker),
		tracker:  newTracker(),
		metrics:  newMetrics(),
	}
}

// Peers returns the configured peer list.
func (d *Dispatcher) Peers() []string { return d.cfg.Peers }

func (d *Dispatcher) breaker(peer string) *Breaker {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.breakers[peer]
	if b == nil {
		b = NewBreaker(d.cfg.Breaker)
		d.breakers[peer] = b
	}
	return b
}

func (d *Dispatcher) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// attemptResult is the outcome of one remote attempt.
type attemptResult struct {
	peer       string
	body       []byte
	err        error
	overload   bool
	retryAfter time.Duration
}

// Do delivers payload to some peer and returns the accepted response
// body, running local() instead when no peer can serve it. key names
// the work unit (revnicd uses "jobID/phase/seq/index"); it seeds the
// deterministic jitter and spreads shards across peers. accept
// validates a response body before it is trusted — a torn or
// malformed body fails accept and is retried like any other peer
// failure. local is the guaranteed fallback and is invoked at most
// once, after remote delivery is abandoned.
func (d *Dispatcher) Do(ctx context.Context, key string, payload []byte, accept func([]byte) error, local func() ([]byte, error)) ([]byte, error) {
	if len(d.cfg.Peers) == 0 || d.cfg.Transport == nil {
		return d.fallback(key, local, "no peers configured")
	}
	start := int(hash64(d.cfg.Seed, key, -1) % uint64(len(d.cfg.Peers)))
	var lastErr error
	for attempt := 0; attempt < d.cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			lastErr = ctx.Err()
			break
		}
		if attempt > 0 {
			delay := backoffDelay(d.cfg.BackoffBase, d.cfg.BackoffCap, attempt, d.cfg.Seed, key)
			if err := sleepCtx(ctx, delay); err != nil {
				lastErr = err
				break
			}
		}
		peer, ok := d.pickPeer(start, attempt, "")
		if !ok {
			d.logf("cluster: %s: every peer breaker is open", key)
			lastErr = fmt.Errorf("every peer breaker open")
			break
		}
		if attempt > 0 {
			d.metrics.add(peer, func(s *peerStats) { s.retries++ })
			d.logf("cluster: %s: retry %d on %s", key, attempt, peer)
		}
		res := d.attemptHedged(ctx, key, peer, start, attempt, payload, accept)
		if res.err == nil {
			return res.body, nil
		}
		lastErr = res.err
		if res.overload && res.retryAfter > 0 {
			d.logf("cluster: %s: %s overloaded, honoring Retry-After %s", key, res.peer, res.retryAfter)
			if err := sleepCtx(ctx, res.retryAfter); err != nil {
				lastErr = err
				break
			}
		}
	}
	reason := "remote attempts exhausted"
	if lastErr != nil {
		reason = fmt.Sprintf("remote attempts exhausted (last: %v)", lastErr)
	}
	return d.fallback(key, local, reason)
}

// pickPeer chooses the weighted-least-loaded admissible peer: the
// candidate ring is ordered by EWMA-latency × inflight score (lowest
// first), ties broken by the deterministic hash-seeded ring position,
// and the first peer whose breaker admits the request wins. With no
// samples yet every score is zero, so selection degenerates to the
// original pure-hash ring scan — which is also what DisableWeighting
// forces. The excluded peer is skipped (a hedge never doubles up on
// the primary). Breakers are only consulted for peers actually
// considered, in order, so a half-open trial slot is never claimed by
// a peer that loses the selection.
func (d *Dispatcher) pickPeer(start, attempt int, exclude string) (string, bool) {
	n := len(d.cfg.Peers)
	order := make([]int, n)
	for i := range order {
		order[i] = (start + attempt + i) % n
	}
	if !d.cfg.DisableWeighting {
		scores := make([]float64, n)
		for _, idx := range order {
			scores[idx] = d.tracker.score(d.cfg.Peers[idx])
		}
		sort.SliceStable(order, func(a, b int) bool {
			return scores[order[a]] < scores[order[b]]
		})
	}
	for _, idx := range order {
		p := d.cfg.Peers[idx]
		if p == exclude {
			continue
		}
		if d.breaker(p).Allow() {
			return p, true
		}
	}
	return "", false
}

// attemptHedged runs one attempt against primary, launching a hedge
// request on another peer if the primary has not answered within
// HedgeDelay. The first success wins; with no success the last
// failure is returned.
func (d *Dispatcher) attemptHedged(ctx context.Context, key, primary string, start, attempt int, payload []byte, accept func([]byte) error) attemptResult {
	ch := make(chan attemptResult, 2)
	// A panicking Transport must fail the attempt, not kill the
	// process: these goroutines have no caller to recover for them.
	try := func(peer string) {
		defer func() {
			if r := recover(); r != nil {
				ch <- attemptResult{peer: peer, err: fmt.Errorf("%s: transport panic: %v", peer, r)}
			}
		}()
		ch <- d.tryPeer(ctx, peer, payload, accept)
	}
	go try(primary)
	launched, received := 1, 0
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if d.cfg.HedgeDelay > 0 && len(d.cfg.Peers) > 1 {
		hedgeTimer = time.NewTimer(d.cfg.HedgeDelay)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	var last attemptResult
	for received < launched {
		select {
		case res := <-ch:
			received++
			if res.err == nil {
				return res
			}
			last = res
		case <-hedgeC:
			hedgeC = nil
			hp, ok := d.pickPeer(start, attempt+1, primary)
			if !ok {
				continue
			}
			d.metrics.add(hp, func(s *peerStats) { s.hedges++ })
			d.logf("cluster: %s: hedging %s with %s after %s", key, primary, hp, d.cfg.HedgeDelay)
			go try(hp)
			launched++
		}
	}
	return last
}

// errShardWon is the cancellation cause RunQueue attaches when an
// item completes elsewhere (first-completion-wins): the losing
// attempt's failure is an artifact of the race, so it must not poison
// the peer's breaker, failure counters or latency estimate.
var errShardWon = errors.New("cluster: item completed elsewhere")

// tryPeer makes one bounded attempt against one peer and classifies
// the outcome: success, overload (503 — retryable, not a breaker
// failure), or failure (transport error, unexpected status, or a body
// the caller's accept rejects). Successful attempts feed the peer's
// EWMA latency estimate.
func (d *Dispatcher) tryPeer(ctx context.Context, peer string, payload []byte, accept func([]byte) error) attemptResult {
	d.metrics.add(peer, func(s *peerStats) { s.attempts++ })
	d.tracker.start(peer)
	startT := time.Now()
	success := false
	defer func() { d.tracker.finish(peer, time.Since(startT), success) }()
	actx, cancel := context.WithTimeout(ctx, d.cfg.AttemptTimeout)
	defer cancel()
	resp, err := d.cfg.Transport.Send(actx, peer, payload)
	br := d.breaker(peer)
	fail := func(err error) attemptResult {
		if errors.Is(context.Cause(ctx), errShardWon) {
			// Cancelled because the item already finished elsewhere —
			// not evidence about this peer's health. Release the
			// half-open trial slot pickPeer may have claimed.
			br.Forgive()
			return attemptResult{peer: peer, err: err}
		}
		br.Record(false)
		d.metrics.add(peer, func(s *peerStats) { s.failures++ })
		return attemptResult{peer: peer, err: err}
	}
	if err != nil {
		return fail(fmt.Errorf("%s: %w", peer, err))
	}
	if resp.Status == http.StatusServiceUnavailable {
		// The peer is healthy but full (admission control); back off
		// without poisoning its breaker.
		d.metrics.add(peer, func(s *peerStats) { s.overloads++ })
		return attemptResult{
			peer:       peer,
			err:        fmt.Errorf("%s: overloaded (503)", peer),
			overload:   true,
			retryAfter: resp.RetryAfter,
		}
	}
	if resp.Status != http.StatusOK {
		return fail(fmt.Errorf("%s: unexpected status %d", peer, resp.Status))
	}
	if err := accept(resp.Body); err != nil {
		return fail(fmt.Errorf("%s: rejected response: %w", peer, err))
	}
	br.Record(true)
	success = true
	d.metrics.add(peer, func(s *peerStats) { s.successes++ })
	return attemptResult{peer: peer, body: resp.Body}
}

// fallback runs the local path and counts it.
func (d *Dispatcher) fallback(key string, local func() ([]byte, error), reason string) ([]byte, error) {
	d.logf("cluster: %s: local fallback (%s)", key, reason)
	d.metrics.mu.Lock()
	d.metrics.fallbacks++
	d.metrics.mu.Unlock()
	return local()
}

// sleepCtx pauses for delay unless the context ends first.
func sleepCtx(ctx context.Context, delay time.Duration) error {
	if delay <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StartProber begins periodic health probes of every configured peer,
// feeding outcomes into the per-peer breakers: probe failures trip
// the breaker of an unreachable peer before any shard is wasted on
// it, and a successful probe is the half-open trial that recloses it.
// The returned stop function halts probing and waits for in-flight
// probes.
func (d *Dispatcher) StartProber(interval time.Duration) (stop func()) {
	if interval <= 0 || len(d.cfg.Peers) == 0 || d.cfg.Transport == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				d.probeAll(done)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// probeAll probes every peer once, concurrently.
func (d *Dispatcher) probeAll(done <-chan struct{}) {
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.AttemptTimeout)
	defer cancel()
	go func() {
		select {
		case <-done:
			cancel()
		case <-ctx.Done():
		}
	}()
	var wg sync.WaitGroup
	for _, p := range d.cfg.Peers {
		br := d.breaker(p)
		if !br.Allow() {
			continue
		}
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			err := d.cfg.Transport.Probe(ctx, p)
			br.Record(err == nil)
			if err != nil {
				d.logf("cluster: probe %s failed: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
}
