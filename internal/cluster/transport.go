package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Response is a transport-level reply from a peer. Status carries the
// HTTP status code (or its equivalent for non-HTTP transports); Body
// is the raw payload; RetryAfter, when positive, is the peer's own
// estimate of when to try again (from a 503's Retry-After header).
type Response struct {
	Status     int
	Body       []byte
	RetryAfter time.Duration
}

// Transport moves payloads to peers. Implementations must be safe for
// concurrent use. Send returns an error only for transport-level
// failures (connection refused, timeout, torn stream); an HTTP error
// status is a successful Send with a non-200 Response, so the
// dispatcher can distinguish overload (503) from peer failure.
type Transport interface {
	Send(ctx context.Context, peer string, body []byte) (*Response, error)
	Probe(ctx context.Context, peer string) error
}

// HTTPTransport sends payloads as HTTP POSTs.
type HTTPTransport struct {
	// Client is the underlying HTTP client; http.DefaultClient when
	// nil. Per-attempt timeouts arrive through the request context,
	// so the client itself needs no Timeout.
	Client *http.Client
	// Path is appended to the peer base URL for Send.
	Path string
	// ProbePath is appended for Probe.
	ProbePath string
	// MaxBody caps how much of a response body is read. Default 64 MiB.
	MaxBody int64
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) maxBody() int64 {
	if t.MaxBody > 0 {
		return t.MaxBody
	}
	return 64 << 20
}

// Send posts body to peer+Path and reads the full response.
func (t *HTTPTransport) Send(ctx context.Context, peer string, body []byte) (*Response, error) {
	url := strings.TrimRight(peer, "/") + t.Path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, t.maxBody()))
	if err != nil {
		// A torn stream after the status line: surface as a transport
		// failure so the dispatcher retries.
		return nil, fmt.Errorf("reading response from %s: %w", peer, err)
	}
	r := &Response{Status: resp.StatusCode, Body: b}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			r.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return r, nil
}

// Probe issues a GET to peer+ProbePath and treats any 2xx as healthy.
func (t *HTTPTransport) Probe(ctx context.Context, peer string) error {
	url := strings.TrimRight(peer, "/") + t.ProbePath
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("probe %s: status %d", peer, resp.StatusCode)
	}
	return nil
}
