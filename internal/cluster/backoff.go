package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// backoffDelay computes the pause before retry attempt n (n >= 1):
// exponential growth from base, capped, with deterministic jitter in
// the upper half of the interval. The jitter is a pure function of
// (seed, key, attempt), so a re-run of the same job schedules the
// same waits — cluster dispatch stays as replayable as the
// exploration it carries — while distinct shards (distinct keys)
// still decorrelate their retries against a recovering peer.
func backoffDelay(base, cap time.Duration, attempt int, seed int64, key string) time.Duration {
	if base <= 0 || attempt < 1 {
		return 0
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if cap > 0 && d >= cap {
			d = cap
			break
		}
	}
	if cap > 0 && d > cap {
		d = cap
	}
	// Deterministic jitter: delay in [d/2, d].
	span := d - d/2 + 1
	return d/2 + time.Duration(hash64(seed, key, attempt)%uint64(span))
}

// hash64 is the package's deterministic mixing function (FNV-1a over
// the seed, key and attempt number), shared by jitter and peer
// selection.
func hash64(seed int64, key string, attempt int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(key))
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a's low bits are linear in
// the input — the bottom bit is a plain byte parity — so reducing the
// raw sum modulo a small peer count correlates keys whose digits move
// in lockstep (a fan-out's shard keys advance seq and index together,
// which would pin every shard of a group to one peer). The finalizer
// avalanches every input bit into every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
