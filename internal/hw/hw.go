// Package hw models the hardware side of the guest machine: the I/O
// bus with port and memory-mapped spaces, PCI configuration space
// descriptors, the shared interrupt line, and the DMA region registry.
//
// Two kinds of devices plug into the bus. During normal (concrete)
// execution the behavioural NIC models of package nic respond to I/O.
// During reverse engineering, RevNIC instead attaches a "shell"
// device (§3.4 of the paper): a PCI descriptor with no behaviour whose
// reads are answered with fresh symbolic values by the symbolic
// execution engine.
package hw

import "fmt"

// Memory-map constants of the guest machine.
const (
	// RAMSize is the size of guest physical memory.
	RAMSize = 1 << 20
	// StackTop is the initial stack pointer.
	StackTop = 0x000E0000
	// DriverBase is the load address for driver images.
	DriverBase = 0x00010000
	// APIBase is the start of the OS API call-gate region. Calls into
	// this region are intercepted by the OS model rather than
	// executed; each gate is APIGateSize bytes.
	APIBase = 0x00F00000
	// APIGateSize is the stride between API call gates.
	APIGateSize = 8
	// MMIOBase is the lowest memory-mapped I/O address; loads and
	// stores at or above it are routed to the bus.
	MMIOBase = 0xD0000000
)

// IsMMIO reports whether a memory access at addr is device I/O rather
// than RAM. This is the check that is "notoriously difficult to do
// statically on architectures like x86" (§2) and trivial for the VM.
func IsMMIO(addr uint32) bool { return addr >= MMIOBase }

// IsAPIGate reports whether a call target is an OS API gate.
func IsAPIGate(addr uint32) bool {
	return addr >= APIBase && addr < MMIOBase
}

// APIIndex returns the API function index of a gate address.
func APIIndex(addr uint32) uint32 { return (addr - APIBase) / APIGateSize }

// APIGate returns the gate address of an API function index.
func APIGate(index uint32) uint32 { return APIBase + index*APIGateSize }

// PCIConfig is the PCI configuration-space descriptor of a device:
// exactly the parameters the RevNIC user obtains "from the Windows
// device manager and passes on the command line" (§3.4).
type PCIConfig struct {
	VendorID uint16
	DeviceID uint16
	// IOBase/IOSize describe the port I/O window.
	IOBase uint32
	IOSize uint32
	// MMIOAddr/MMIOSize describe the memory-mapped window (zero if
	// the device is port-only).
	MMIOAddr uint32
	MMIOSize uint32
	// IRQLine is the interrupt line number reported to the OS.
	IRQLine uint8
}

// ContainsPort reports whether the port is inside the I/O window.
func (c PCIConfig) ContainsPort(port uint32) bool {
	return port >= c.IOBase && port < c.IOBase+c.IOSize
}

// ContainsMMIO reports whether the address is inside the MMIO window.
func (c PCIConfig) ContainsMMIO(addr uint32) bool {
	return c.MMIOSize != 0 && addr >= c.MMIOAddr && addr < c.MMIOAddr+c.MMIOSize
}

// Device is the behavioural interface of an I/O device. Offsets are
// relative to the device's I/O or MMIO window base.
type Device interface {
	// Name identifies the device in traces.
	Name() string
	// Reset returns the device to power-on state.
	Reset()
	// PortRead reads size bytes (1, 2 or 4) at the window offset.
	PortRead(off uint32, size int) uint32
	// PortWrite writes size bytes at the window offset.
	PortWrite(off uint32, size int, v uint32)
	// MMIORead reads from the MMIO window.
	MMIORead(off uint32, size int) uint32
	// MMIOWrite writes to the MMIO window.
	MMIOWrite(off uint32, size int, v uint32)
	// Tick advances device time by one step, letting it complete
	// pending operations (transmits, receptions, timers).
	Tick()
}

// IRQLine is a shared level-triggered interrupt line. Devices assert
// and deassert it; the CPU polls Pending between instructions.
type IRQLine struct {
	asserted int
}

// Assert raises the line (counting, so multiple devices can share it).
func (l *IRQLine) Assert() { l.asserted++ }

// Deassert lowers one assertion of the line.
func (l *IRQLine) Deassert() {
	if l.asserted > 0 {
		l.asserted--
	}
}

// Clear removes all assertions.
func (l *IRQLine) Clear() { l.asserted = 0 }

// Pending reports whether any device is asserting the line.
func (l *IRQLine) Pending() bool { return l.asserted > 0 }

// DMARegistry tracks the physical memory regions the OS has handed to
// the driver for device DMA. RevNIC "detects DMA memory regions by
// tracking calls to the DMA API and communicating the returned
// physical addresses to the shell device, which returns symbolic
// values upon reads from these regions" (§3.4).
type DMARegistry struct {
	regions []dmaRegion
}

type dmaRegion struct {
	addr, size uint32
}

// Register records a DMA-capable region.
func (d *DMARegistry) Register(addr, size uint32) {
	d.regions = append(d.regions, dmaRegion{addr, size})
}

// Unregister removes a previously registered region.
func (d *DMARegistry) Unregister(addr uint32) {
	for i, r := range d.regions {
		if r.addr == addr {
			d.regions = append(d.regions[:i], d.regions[i+1:]...)
			return
		}
	}
}

// Clone returns an independent copy of the registry. Exploration
// workers start from a clone of the shared registry so concurrent
// registrations never alias.
func (d *DMARegistry) Clone() DMARegistry {
	return DMARegistry{regions: append([]dmaRegion(nil), d.regions...)}
}

// Merge adds o's regions not already present (same address and size)
// in registration order, so merging worker registries in a fixed
// order yields a deterministic combined registry.
func (d *DMARegistry) Merge(o *DMARegistry) {
	for _, r := range o.regions {
		dup := false
		for _, have := range d.regions {
			if have == r {
				dup = true
				break
			}
		}
		if !dup {
			d.regions = append(d.regions, r)
		}
	}
}

// Contains reports whether addr lies in any registered DMA region.
func (d *DMARegistry) Contains(addr uint32) bool {
	for _, r := range d.regions {
		if addr >= r.addr && addr < r.addr+r.size {
			return true
		}
	}
	return false
}

// Regions returns a copy of the registered (addr, size) pairs.
func (d *DMARegistry) Regions() [][2]uint32 {
	out := make([][2]uint32, len(d.regions))
	for i, r := range d.regions {
		out[i] = [2]uint32{r.addr, r.size}
	}
	return out
}

// MemBus gives DMA-capable devices access to guest physical memory.
// The virtual machine implements it.
type MemBus interface {
	// ReadMem copies len(p) bytes of guest memory at addr into p.
	ReadMem(addr uint32, p []byte)
	// WriteMem copies p into guest memory at addr.
	WriteMem(addr uint32, p []byte)
}

type binding struct {
	dev Device
	cfg PCIConfig
}

// Bus routes port and MMIO accesses to attached devices and exposes
// the shared interrupt line and DMA registry.
type Bus struct {
	devs []binding
	// Line is the shared interrupt line.
	Line IRQLine
	// DMA is the registry of driver-registered DMA regions.
	DMA DMARegistry
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach connects a device at the windows described by cfg.
func (b *Bus) Attach(dev Device, cfg PCIConfig) {
	b.devs = append(b.devs, binding{dev, cfg})
}

// Devices returns the attached PCI configurations, in attach order.
func (b *Bus) Devices() []PCIConfig {
	out := make([]PCIConfig, len(b.devs))
	for i, d := range b.devs {
		out[i] = d.cfg
	}
	return out
}

// FindByID returns the config of the device with the given IDs.
func (b *Bus) FindByID(vendor, device uint16) (PCIConfig, bool) {
	for _, d := range b.devs {
		if d.cfg.VendorID == vendor && d.cfg.DeviceID == device {
			return d.cfg, true
		}
	}
	return PCIConfig{}, false
}

// PortRead routes a port read; unmapped ports read as all-ones, the
// conventional open-bus value.
func (b *Bus) PortRead(port uint32, size int) uint32 {
	for _, d := range b.devs {
		if d.cfg.ContainsPort(port) {
			return d.dev.PortRead(port-d.cfg.IOBase, size) & sizeMask(size)
		}
	}
	return sizeMask(size)
}

// PortWrite routes a port write; unmapped writes are dropped.
func (b *Bus) PortWrite(port uint32, size int, v uint32) {
	for _, d := range b.devs {
		if d.cfg.ContainsPort(port) {
			d.dev.PortWrite(port-d.cfg.IOBase, size, v&sizeMask(size))
			return
		}
	}
}

// MMIORead routes a memory-mapped read.
func (b *Bus) MMIORead(addr uint32, size int) uint32 {
	for _, d := range b.devs {
		if d.cfg.ContainsMMIO(addr) {
			return d.dev.MMIORead(addr-d.cfg.MMIOAddr, size) & sizeMask(size)
		}
	}
	return sizeMask(size)
}

// MMIOWrite routes a memory-mapped write.
func (b *Bus) MMIOWrite(addr uint32, size int, v uint32) {
	for _, d := range b.devs {
		if d.cfg.ContainsMMIO(addr) {
			d.dev.MMIOWrite(addr-d.cfg.MMIOAddr, size, v&sizeMask(size))
			return
		}
	}
}

// Tick advances all devices one time step.
func (b *Bus) Tick() {
	for _, d := range b.devs {
		d.dev.Tick()
	}
}

// Reset resets every attached device and clears the interrupt line.
func (b *Bus) Reset() {
	for _, d := range b.devs {
		d.dev.Reset()
	}
	b.Line.Clear()
}

func sizeMask(size int) uint32 {
	switch size {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	case 4:
		return 0xFFFFFFFF
	}
	panic(fmt.Sprintf("hw: invalid access size %d", size))
}

// SizeMask returns the value mask for an access of the given byte
// size (1, 2 or 4).
func SizeMask(size int) uint32 { return sizeMask(size) }

// NopDevice is an embeddable no-behaviour device; the shell device and
// simple models embed it and override what they need.
type NopDevice struct{ DevName string }

// Name implements Device.
func (n *NopDevice) Name() string { return n.DevName }

// Reset implements Device.
func (n *NopDevice) Reset() {}

// PortRead implements Device, reading as open bus.
func (n *NopDevice) PortRead(off uint32, size int) uint32 { return sizeMask(size) }

// PortWrite implements Device, dropping the write.
func (n *NopDevice) PortWrite(off uint32, size int, v uint32) {}

// MMIORead implements Device, reading as open bus.
func (n *NopDevice) MMIORead(off uint32, size int) uint32 { return sizeMask(size) }

// MMIOWrite implements Device, dropping the write.
func (n *NopDevice) MMIOWrite(off uint32, size int, v uint32) {}

// Tick implements Device.
func (n *NopDevice) Tick() {}
