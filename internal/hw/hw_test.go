package hw

import "testing"

// echoDev records writes and echoes them back on read.
type echoDev struct {
	NopDevice
	last  map[uint32]uint32
	ticks int
}

func newEchoDev(name string) *echoDev {
	return &echoDev{NopDevice: NopDevice{DevName: name}, last: map[uint32]uint32{}}
}

func (d *echoDev) PortRead(off uint32, size int) uint32     { return d.last[off] }
func (d *echoDev) PortWrite(off uint32, size int, v uint32) { d.last[off] = v }
func (d *echoDev) Tick()                                    { d.ticks++ }

func TestBusRouting(t *testing.T) {
	b := NewBus()
	d1 := newEchoDev("one")
	d2 := newEchoDev("two")
	b.Attach(d1, PCIConfig{VendorID: 1, DeviceID: 10, IOBase: 0x100, IOSize: 0x20})
	b.Attach(d2, PCIConfig{VendorID: 2, DeviceID: 20, IOBase: 0x200, IOSize: 0x20})

	b.PortWrite(0x104, 2, 0xBEEF)
	if got := b.PortRead(0x104, 2); got != 0xBEEF {
		t.Errorf("read = %#x", got)
	}
	if d1.last[4] != 0xBEEF {
		t.Error("offset translation wrong")
	}
	if len(d2.last) != 0 {
		t.Error("write leaked to wrong device")
	}
	// Unmapped port reads as open bus, masked to size.
	if got := b.PortRead(0x999, 1); got != 0xFF {
		t.Errorf("open bus read = %#x", got)
	}
	// Writes are masked to access size.
	b.PortWrite(0x200, 1, 0x1FF)
	if d2.last[0] != 0xFF {
		t.Errorf("write not masked: %#x", d2.last[0])
	}
	b.Tick()
	if d1.ticks != 1 || d2.ticks != 1 {
		t.Error("Tick not broadcast")
	}
	if _, ok := b.FindByID(2, 20); !ok {
		t.Error("FindByID failed")
	}
	if _, ok := b.FindByID(9, 9); ok {
		t.Error("FindByID false positive")
	}
	if len(b.Devices()) != 2 {
		t.Error("Devices()")
	}
}

func TestMMIORouting(t *testing.T) {
	b := NewBus()
	d := newEchoDev("mm")
	b.Attach(d, PCIConfig{MMIOAddr: MMIOBase + 0x1000, MMIOSize: 0x100})
	b.MMIOWrite(MMIOBase+0x1008, 4, 7)
	// echoDev does not override MMIO: open bus.
	if got := b.MMIORead(MMIOBase+0x1008, 4); got != 0xFFFFFFFF {
		t.Errorf("MMIO read = %#x", got)
	}
	if got := b.MMIORead(MMIOBase+0x9000, 2); got != 0xFFFF {
		t.Errorf("unmapped MMIO read = %#x", got)
	}
}

func TestIRQLine(t *testing.T) {
	var l IRQLine
	if l.Pending() {
		t.Fatal("fresh line pending")
	}
	l.Assert()
	l.Assert()
	l.Deassert()
	if !l.Pending() {
		t.Fatal("shared assertion lost")
	}
	l.Deassert()
	if l.Pending() {
		t.Fatal("line stuck")
	}
	l.Deassert() // extra deassert is harmless
	l.Assert()
	l.Clear()
	if l.Pending() {
		t.Fatal("Clear failed")
	}
}

func TestDMARegistry(t *testing.T) {
	var d DMARegistry
	d.Register(0x4000, 0x100)
	d.Register(0x8000, 0x10)
	if !d.Contains(0x4000) || !d.Contains(0x40FF) || d.Contains(0x4100) {
		t.Error("Contains wrong")
	}
	if len(d.Regions()) != 2 {
		t.Error("Regions")
	}
	d.Unregister(0x4000)
	if d.Contains(0x4050) {
		t.Error("Unregister failed")
	}
}

func TestMemoryMapPredicates(t *testing.T) {
	if !IsMMIO(MMIOBase) || IsMMIO(MMIOBase-1) {
		t.Error("IsMMIO")
	}
	if !IsAPIGate(APIBase) || IsAPIGate(APIBase-1) || IsAPIGate(MMIOBase) {
		t.Error("IsAPIGate")
	}
	if APIIndex(APIGate(7)) != 7 {
		t.Error("gate round trip")
	}
}

func TestPCIConfigWindows(t *testing.T) {
	c := PCIConfig{IOBase: 0x300, IOSize: 0x20, MMIOAddr: MMIOBase, MMIOSize: 0x1000}
	if !c.ContainsPort(0x300) || !c.ContainsPort(0x31F) || c.ContainsPort(0x320) {
		t.Error("ContainsPort")
	}
	if !c.ContainsMMIO(MMIOBase+0xFFF) || c.ContainsMMIO(MMIOBase+0x1000) {
		t.Error("ContainsMMIO")
	}
	portOnly := PCIConfig{IOBase: 0x300, IOSize: 0x20}
	if portOnly.ContainsMMIO(0) {
		t.Error("port-only device claims MMIO")
	}
}
