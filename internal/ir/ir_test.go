package ir

import (
	"testing"

	"revnic/internal/isa"
)

type sliceReader struct {
	base uint32
	code []byte
}

func (r sliceReader) FetchInstr(addr uint32) (isa.Instr, error) {
	return isa.Decode(r.code[addr-r.base:])
}

func mustProg(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTranslateStopsAtTerminator(t *testing.T) {
	p := mustProg(t, `
	movi r0, #1
	add r0, r0, #2
	jmp 0
	movi r1, #9 ; unreachable, next block
	hlt
`)
	r := sliceReader{0, p.Code}
	b, err := Translate(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Instrs) != 3 || b.Term().Op != isa.JMP {
		t.Fatalf("block = %s", b)
	}
	if b.EndAddr() != 3*isa.InstrSize {
		t.Errorf("EndAddr = %#x", b.EndAddr())
	}
	if !b.Contains(isa.InstrSize) || b.Contains(3*isa.InstrSize) || b.Contains(1) {
		t.Error("Contains misbehaves")
	}
	// Next block.
	b2, err := Translate(r, b.EndAddr())
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Instrs) != 2 || b2.Term().Op != isa.HLT {
		t.Fatalf("block2 = %s", b2)
	}
}

func TestTranslateBounded(t *testing.T) {
	// A long run of NOPs with no terminator must stop at the bound.
	code := make([]byte, 0, (MaxBlockInstrs+10)*isa.InstrSize)
	for i := 0; i < MaxBlockInstrs+10; i++ {
		code = isa.Instr{Op: isa.NOP}.Encode(code)
	}
	b, err := Translate(sliceReader{0, code}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Instrs) != MaxBlockInstrs {
		t.Fatalf("len = %d", len(b.Instrs))
	}
}

func TestCache(t *testing.T) {
	p := mustProg(t, "movi r0, #1\nhlt\nmovi r0, #2\nhlt")
	c := NewCache(sliceReader{0, p.Code})
	b1, err := c.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	b1again, _ := c.Get(0)
	if b1 != b1again {
		t.Error("cache miss on repeat")
	}
	if _, err := c.Get(2 * isa.InstrSize); err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 2 {
		t.Errorf("misses = %d", c.Misses())
	}
	c.Flush()
	c.Get(0)
	if c.Misses() != 3 {
		t.Errorf("misses after flush = %d", c.Misses())
	}
}

func TestBlockString(t *testing.T) {
	p := mustProg(t, "movi r0, #1\nhlt")
	b, _ := Translate(sliceReader{0, p.Code}, 0)
	if s := b.String(); s == "" {
		t.Error("empty String")
	}
}
