// Package ir defines the translation-block intermediate representation
// shared by the concrete VM, the symbolic execution engine, the
// wiretap traces, and the code synthesizer.
//
// A translation block is a maximal straight-line sequence of decoded
// instructions ending in a control-flow terminator, exactly the unit
// RevNIC's dynamic binary translator produces (§3.4): "QEMU passes the
// current program counter to the DBT, which translates the code until
// it finds an instruction altering the control flow."
//
// A translation block is not necessarily a basic block: an instruction
// in its middle may be the target of a branch from elsewhere. The CFG
// builder (package cfg) splits translation blocks into basic blocks
// during reconstruction, as the paper describes.
package ir

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"revnic/internal/isa"
)

// Block is one translation block.
type Block struct {
	// Addr is the guest address of the first instruction.
	Addr uint32
	// Instrs are the decoded instructions; the last one is always a
	// terminator unless translation hit MaxBlockInstrs.
	Instrs []isa.Instr
}

// MaxBlockInstrs bounds translation so that a run of straight-line
// code without terminators (e.g. data misinterpreted as code) cannot
// wedge the translator.
const MaxBlockInstrs = 512

// Term returns the terminating instruction of the block.
func (b *Block) Term() isa.Instr { return b.Instrs[len(b.Instrs)-1] }

// EndAddr returns the address one past the last instruction, i.e. the
// fall-through address for calls and not-taken branches.
func (b *Block) EndAddr() uint32 {
	return b.Addr + uint32(len(b.Instrs))*isa.InstrSize
}

// InstrAddr returns the address of the i-th instruction.
func (b *Block) InstrAddr(i int) uint32 {
	return b.Addr + uint32(i)*isa.InstrSize
}

// Contains reports whether addr falls on an instruction boundary
// inside the block.
func (b *Block) Contains(addr uint32) bool {
	return addr >= b.Addr && addr < b.EndAddr() && (addr-b.Addr)%isa.InstrSize == 0
}

// String renders the block with addresses, for traces and debugging.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block %#x:\n", b.Addr)
	for i, in := range b.Instrs {
		fmt.Fprintf(&sb, "  %#x: %s\n", b.InstrAddr(i), in.Disassemble())
	}
	return sb.String()
}

// Reader provides instruction fetch for the translator.
type Reader interface {
	// FetchInstr decodes the instruction at addr.
	FetchInstr(addr uint32) (isa.Instr, error)
}

// Translate builds the translation block starting at addr. It stops
// at the first terminator or after MaxBlockInstrs instructions.
func Translate(r Reader, addr uint32) (*Block, error) {
	b := &Block{Addr: addr}
	for len(b.Instrs) < MaxBlockInstrs {
		in, err := r.FetchInstr(addr + uint32(len(b.Instrs))*isa.InstrSize)
		if err != nil {
			return nil, fmt.Errorf("ir: translate at %#x: %w", addr, err)
		}
		b.Instrs = append(b.Instrs, in)
		if in.Op.IsTerminator() {
			break
		}
	}
	return b, nil
}

// Cache memoizes translation blocks by address. Driver code in this
// system is not self-modifying, so entries never need invalidation;
// Flush exists for tests.
//
// The cache is safe for concurrent use and its read path is
// lock-free: the parallel exploration mode hits Get once per executed
// translation block on every worker goroutine, so the hit path is a
// single sync.Map load. The translate path serializes on a mutex so a
// block is translated at most once per engine regardless of how many
// workers race to execute it.
type Cache struct {
	r      Reader
	mu     sync.Mutex // serializes translation on miss
	blocks sync.Map   // uint32 -> *Block
	misses atomic.Int64
}

// NewCache returns an empty translation cache over r.
func NewCache(r Reader) *Cache {
	return &Cache{r: r}
}

// Get returns the translation block at addr, translating on miss.
func (c *Cache) Get(addr uint32) (*Block, error) {
	if b, ok := c.blocks.Load(addr); ok {
		return b.(*Block), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.blocks.Load(addr); ok {
		return b.(*Block), nil
	}
	b, err := Translate(c.r, addr)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	c.blocks.Store(addr, b)
	return b, nil
}

// Flush drops all cached blocks.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocks.Clear()
}

// Misses returns the number of translations performed.
func (c *Cache) Misses() int64 { return c.misses.Load() }
