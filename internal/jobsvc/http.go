package jobsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"revnic/internal/cluster"
	"revnic/internal/solver"
)

// This file is the service's HTTP surface: a JSON job API plus a
// Prometheus-text metrics endpoint, all on net/http — the service has
// no dependencies outside the standard library.
//
//	POST   /jobs            submit a JobSpec, returns the Job snapshot
//	GET    /jobs            list all jobs (results elided)
//	GET    /jobs/{id}       one job, full result included
//	DELETE /jobs/{id}       cancel a queued or running job
//	GET    /jobs/{id}/code  the synthesized C source, text/plain
//	GET    /metrics         Prometheus text exposition
//	GET    /healthz         200 while serving, 503 while draining
//
// Admission control: a full queue or a client over its concurrent-job
// cap gets 429 with a Retry-After estimate; bodies over the configured
// limit get 413; journal failures get 503.

// metrics is the service-level counter set, exported in Prometheus
// text format. Plain atomics: the service deliberately has no
// dependency on a metrics library.
type metrics struct {
	submitted           atomic.Int64
	succeeded           atomic.Int64
	failed              atomic.Int64
	cancelled           atomic.Int64
	deadlineHits        atomic.Int64
	running             atomic.Int64
	evicted             atomic.Int64
	replayed            atomic.Int64
	replayedInterrupted atomic.Int64
	rejectedQueueFull   atomic.Int64
	rejectedClientCap   atomic.Int64
	rejectedDraining    atomic.Int64
	rejectedBody        atomic.Int64
	solverQueries       atomic.Int64
	executedBlocks      atomic.Int64
	arenaNodesReclaimed atomic.Int64
	jobPanics           atomic.Int64
	shardsServed        atomic.Int64
	shardsRejected      atomic.Int64
	shardsReplayed      atomic.Int64
	replayedResumed     atomic.Int64
	shardCollapses      atomic.Int64
	fuzzSchedules       atomic.Int64
	fuzzDivergences     atomic.Int64
	fuzzUnexplored      atomic.Int64
	durationSeconds     lockedFloat
	shardsEffective     lockedFloat
}

// lockedFloat is a mutex-guarded float accumulator (duration sums are
// the one non-integer metric).
type lockedFloat struct {
	mu  sync.Mutex
	sum float64
	n   int64
}

func (f *lockedFloat) add(v float64) {
	f.mu.Lock()
	f.sum += v
	f.n++
	f.mu.Unlock()
}

func (f *lockedFloat) read() (float64, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sum, f.n
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/code", s.handleCode)
	mux.HandleFunc("POST /shards", s.handleShard)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var spec JobSpec
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.m.rejectedBody.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	j, err := s.SubmitFrom(clientKey(r), spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrBusy) || errors.Is(err, ErrClientBusy):
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrJournal):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, j)
	}
}

// clientKey is the admission-control identity of a request: the
// connection's source host (port stripped, so one client's concurrent
// connections count together).
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds estimates when a rejected submitter should come
// back: the mean observed job duration, clamped to [1, 60] seconds.
// An estimate, not a promise — but far better backpressure than a
// constant for jobs that span milliseconds to minutes.
func (s *Service) retryAfterSeconds() int {
	sum, n := s.m.durationSeconds.read()
	if n == 0 {
		return 1
	}
	sec := int(sum / float64(n))
	if sec < 1 {
		return 1
	}
	if sec > 60 {
		return 60
	}
	return sec
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.List()
	// Elide the potentially large synthesized source from the listing;
	// it stays available per job.
	for i := range jobs {
		if jobs[i].Result != nil {
			res := *jobs[i].Result
			res.Code = ""
			jobs[i].Result = &res
		}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Service) handleCode(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if j.Result == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s", j.ID, j.Status))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, j.Result.Code)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := 0
	for _, id := range s.order {
		if s.jobs[id].Status == StatusQueued {
			queued++
		}
	}
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	sum, n := s.m.durationSeconds.read()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("revnicd_jobs_submitted_total", "Jobs accepted into the queue.", s.m.submitted.Load())
	fmt.Fprintf(w, "# HELP revnicd_jobs_completed_total Jobs finished, by outcome.\n# TYPE revnicd_jobs_completed_total counter\n")
	fmt.Fprintf(w, "revnicd_jobs_completed_total{status=\"succeeded\"} %d\n", s.m.succeeded.Load())
	fmt.Fprintf(w, "revnicd_jobs_completed_total{status=\"failed\"} %d\n", s.m.failed.Load())
	fmt.Fprintf(w, "revnicd_jobs_completed_total{status=\"cancelled\"} %d\n", s.m.cancelled.Load())
	fmt.Fprintf(w, "revnicd_jobs_completed_total{status=\"deadline\"} %d\n", s.m.deadlineHits.Load())
	fmt.Fprintf(w, "# HELP revnicd_jobs_rejected_total Submissions refused by admission control, by reason.\n# TYPE revnicd_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "revnicd_jobs_rejected_total{reason=\"queue_full\"} %d\n", s.m.rejectedQueueFull.Load())
	fmt.Fprintf(w, "revnicd_jobs_rejected_total{reason=\"client_cap\"} %d\n", s.m.rejectedClientCap.Load())
	fmt.Fprintf(w, "revnicd_jobs_rejected_total{reason=\"draining\"} %d\n", s.m.rejectedDraining.Load())
	fmt.Fprintf(w, "revnicd_jobs_rejected_total{reason=\"body_too_large\"} %d\n", s.m.rejectedBody.Load())
	counter("revnicd_jobs_evicted_total", "Finished jobs dropped by the retention policy.", s.m.evicted.Load())
	counter("revnicd_journal_replayed_total", "Journaled jobs requeued on startup.", s.m.replayed.Load())
	counter("revnicd_journal_interrupted_total", "Journaled jobs found mid-run on startup.", s.m.replayedInterrupted.Load())
	gauge("revnicd_jobs_running", "Jobs currently executing.", s.m.running.Load())
	gauge("revnicd_jobs_queued", "Jobs accepted but not yet started.", int64(queued))
	gauge("revnicd_draining", "1 while graceful drain is in progress.", int64(draining))
	fmt.Fprintf(w, "# HELP revnicd_job_duration_seconds Wall-clock job execution time.\n# TYPE revnicd_job_duration_seconds summary\n")
	fmt.Fprintf(w, "revnicd_job_duration_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "revnicd_job_duration_seconds_count %d\n", n)
	counter("revnicd_solver_queries_total", "Constraint-solver queries across completed jobs.", s.m.solverQueries.Load())
	counter("revnicd_executed_blocks_total", "Translation blocks executed across completed jobs.", s.m.executedBlocks.Load())
	counter("revnicd_arena_nodes_reclaimed_total", "Interned expression nodes reclaimed with finished job arenas.", s.m.arenaNodesReclaimed.Load())
	counter("revnicd_job_panics_total", "Pipeline panics converted to job failures.", s.m.jobPanics.Load())
	counter("revnicd_shards_served_total", "Remote shard tasks executed for coordinators.", s.m.shardsServed.Load())
	counter("revnicd_shards_rejected_total", "Remote shard tasks refused with 503 (capacity).", s.m.shardsRejected.Load())
	counter("revnicd_shards_replayed_total", "Shard results reused from the journal after a coordinator restart.", s.m.shardsReplayed.Load())
	counter("revnicd_journal_resumed_total", "Journaled coordinator jobs requeued with collected shards pre-seeded.", s.m.replayedResumed.Load())
	counter("revnicd_shard_collapses_total", "Phases configured to fan out that drained serially (lost parallelism).", s.m.shardCollapses.Load())
	counter("revnicd_fuzz_schedules_total", "Differential-fuzz schedules executed across completed fuzz jobs.", s.m.fuzzSchedules.Load())
	counter("revnicd_fuzz_divergences_total", "Behavioral divergences found by differential fuzzing.", s.m.fuzzDivergences.Load())
	counter("revnicd_fuzz_unexplored_total", "Fuzz schedules that drove the synthesized driver into unexplored code.", s.m.fuzzUnexplored.Load())
	effSum, effN := s.m.shardsEffective.read()
	fmt.Fprintf(w, "# HELP revnicd_shards_effective Narrowest fan-out width achieved, summed over completed jobs that fanned out.\n# TYPE revnicd_shards_effective summary\n")
	fmt.Fprintf(w, "revnicd_shards_effective_sum %g\n", effSum)
	fmt.Fprintf(w, "revnicd_shards_effective_count %d\n", effN)

	if races := solver.PortfolioSnapshot(); len(races) > 0 {
		backends := make([]string, 0, len(races))
		for b := range races {
			backends = append(backends, b)
		}
		sort.Strings(backends)
		backendCounter := func(name, help string, value func(solver.BackendCounters) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, b := range backends {
				fmt.Fprintf(w, "%s{backend=%q} %d\n", name, b, value(races[b]))
			}
		}
		backendCounter("revnicd_solver_backend_wins_total", "Portfolio races this backend answered first.",
			func(c solver.BackendCounters) int64 { return c.Wins })
		backendCounter("revnicd_solver_backend_losses_total", "Portfolio races this backend answered definitively but late.",
			func(c solver.BackendCounters) int64 { return c.Losses })
		backendCounter("revnicd_solver_backend_cancels_total", "Portfolio races this backend was cancelled in (or sat out).",
			func(c solver.BackendCounters) int64 { return c.Cancels })
	}

	if snap, ok := s.ClusterSnapshot(); ok {
		counter("revnicd_cluster_fallbacks_total", "Shards executed by the guaranteed local fallback.", snap.Fallbacks)
		peerCounter := func(name, help string, value func(cluster.PeerSnapshot) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, p := range snap.Peers {
				fmt.Fprintf(w, "%s{peer=%q} %d\n", name, p.Peer, value(p))
			}
		}
		peerCounter("revnicd_cluster_attempts_total", "Remote shard attempts, per peer.",
			func(p cluster.PeerSnapshot) int64 { return p.Attempts })
		peerCounter("revnicd_cluster_retries_total", "Shard retry attempts, per peer.",
			func(p cluster.PeerSnapshot) int64 { return p.Retries })
		peerCounter("revnicd_cluster_hedges_total", "Hedged shard requests, per peer.",
			func(p cluster.PeerSnapshot) int64 { return p.Hedges })
		peerCounter("revnicd_cluster_failures_total", "Failed shard attempts, per peer.",
			func(p cluster.PeerSnapshot) int64 { return p.Failures })
		peerCounter("revnicd_cluster_overloads_total", "Shard attempts answered 503 (peer full), per peer.",
			func(p cluster.PeerSnapshot) int64 { return p.Overloads })
		fmt.Fprintf(w, "# HELP revnicd_cluster_breaker_state Per-peer circuit breaker: 0 closed, 1 half-open, 2 open.\n# TYPE revnicd_cluster_breaker_state gauge\n")
		for _, p := range snap.Peers {
			v := 0
			switch p.Breaker {
			case "half-open":
				v = 1
			case "open":
				v = 2
			}
			fmt.Fprintf(w, "revnicd_cluster_breaker_state{peer=%q} %d\n", p.Peer, v)
		}
		counter("revnicd_cluster_steals_total", "Straggler shards re-dispatched onto another peer by the work queue.", snap.Steals)
		counter("revnicd_cluster_local_pulls_total", "Shards the local capacity slot pulled from the work queue.", snap.LocalPulls)
		fmt.Fprintf(w, "# HELP revnicd_shard_wall_seconds Wall time of winning shard attempts.\n# TYPE revnicd_shard_wall_seconds summary\n")
		fmt.Fprintf(w, "revnicd_shard_wall_seconds_sum %g\n", snap.ShardWallSum)
		fmt.Fprintf(w, "revnicd_shard_wall_seconds_count %d\n", snap.ShardWallCount)
		fmt.Fprintf(w, "# HELP revnicd_shard_queue_wait_seconds Time shards spent enqueued before their first claim.\n# TYPE revnicd_shard_queue_wait_seconds summary\n")
		fmt.Fprintf(w, "revnicd_shard_queue_wait_seconds_sum %g\n", snap.QueueWaitSum)
		fmt.Fprintf(w, "revnicd_shard_queue_wait_seconds_count %d\n", snap.QueueWaitCount)
		fmt.Fprintf(w, "# HELP revnicd_cluster_peer_ewma_ms Per-peer EWMA latency estimate of successful shard attempts, milliseconds.\n# TYPE revnicd_cluster_peer_ewma_ms gauge\n")
		for _, p := range snap.Peers {
			fmt.Fprintf(w, "revnicd_cluster_peer_ewma_ms{peer=%q} %g\n", p.Peer, p.EwmaMS)
		}
		fmt.Fprintf(w, "# HELP revnicd_cluster_peer_inflight Shard attempts currently in flight, per peer.\n# TYPE revnicd_cluster_peer_inflight gauge\n")
		for _, p := range snap.Peers {
			fmt.Fprintf(w, "revnicd_cluster_peer_inflight{peer=%q} %d\n", p.Peer, p.Inflight)
		}
	}
}
