// Package jobsvc turns the one-shot reverse-engineering pipeline into
// a resident service: cmd/revnicd accepts HTTP/JSON job requests
// (driver name or uploaded program image, searcher, shard/worker
// fan-out, exploration budgets), schedules them on a bounded pool of
// job runners that reuse the fork-join exploration in
// internal/symexec, and serves job status, results and
// Prometheus-style metrics.
//
// Every job runs inside its own expr.Arena: the engine, its worker
// children and its solvers intern every expression in the job's
// arena, so when the job's result summary has been extracted the
// whole arena — millions of interned nodes for a deep exploration —
// becomes garbage at once. Process-global intern state never grows
// with job traffic, which is what makes the service viable as a
// long-running daemon (the ROADMAP's eviction open item, resolved by
// construction). Results are bit-identical to the cmd/revnic CLI for
// the same driver/searcher/seed/shard settings, because expression
// canonicalization is structural and therefore arena-independent.
package jobsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"revnic/internal/cluster"
	"revnic/internal/core"
	"revnic/internal/difffuzz"
	"revnic/internal/drivers"
	"revnic/internal/expr"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/solver"
	"revnic/internal/symexec"
	"revnic/internal/template"
)

// Status is a job's lifecycle phase.
type Status string

// Job lifecycle phases. Jobs move queued → running → one of the
// terminal states. A queued job may be cancelled before it starts;
// a running job winds down to cancelled or deadline with a partial
// result when stopped; interrupted marks jobs a daemon restart found
// mid-run in the journal (their in-memory progress is gone).
const (
	StatusQueued      Status = "queued"
	StatusRunning     Status = "running"
	StatusSucceeded   Status = "succeeded"
	StatusFailed      Status = "failed"
	StatusCancelled   Status = "cancelled"
	StatusDeadline    Status = "deadline"
	StatusInterrupted Status = "interrupted"
)

// Terminal reports whether a job in this status will never run again.
func (st Status) Terminal() bool {
	switch st {
	case StatusSucceeded, StatusFailed, StatusCancelled, StatusDeadline, StatusInterrupted:
		return true
	}
	return false
}

// ShellSpec carries the shell-device PCI parameters for uploaded
// programs ("the vendor and product identifier of the device whose
// driver is being reverse engineered", §3.4). Bundled drivers derive
// theirs from the device inventory.
type ShellSpec struct {
	VendorID uint16 `json:"vendor_id"`
	DeviceID uint16 `json:"device_id"`
	IOBase   uint32 `json:"io_base,omitempty"`
	IOSize   uint32 `json:"io_size,omitempty"`
	IRQLine  uint8  `json:"irq_line,omitempty"`
}

// ProgramSpec is an uploaded driver binary: the same two inputs the
// real tool gets (load address and image bytes), plus the shell
// parameters.
type ProgramSpec struct {
	Name  string    `json:"name,omitempty"`
	Base  uint32    `json:"base"`
	Code  []byte    `json:"code"` // base64 in JSON
	Shell ShellSpec `json:"shell"`
}

// JobSpec is one request. Exactly one of Driver (a bundled binary),
// Program (an uploaded image) or Fuzz (a differential-fuzzing run)
// must be set; zero values elsewhere select the engine defaults.
type JobSpec struct {
	Driver  string       `json:"driver,omitempty"`
	Program *ProgramSpec `json:"program,omitempty"`
	// Fuzz selects the differential-fuzzing job kind: the named
	// corpus driver is reverse engineered and the synthesized driver
	// is executed against the original on seeded schedules (see
	// internal/difffuzz). Seed, Workers, Target and DeadlineMS apply
	// as usual; exploration-budget fields are ignored.
	Fuzz *FuzzSpec `json:"fuzz,omitempty"`
	// Strategy names the path-selection searcher ("coverage", "dfs",
	// "bfs"); empty selects the coverage-guided default.
	Strategy string `json:"strategy,omitempty"`
	// Target optionally names a template OS ("windows", "linux",
	// "ucos-ii", "kitos"); when set, Code in the result is the fully
	// instantiated driver instead of the bare synthesized functions.
	Target string `json:"target,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Workers/Shards configure the fork-join exploration exactly as
	// cmd/revnic's flags do; results are identical for any Workers.
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
	// ShardFactor multiplies Shards into finer shard groups for
	// capacity-aware scheduling (symexec.Config.ShardFactor): 0 selects
	// the engine's auto factor, 1 reproduces the coarse pre-factor
	// schedule. Like Shards it is part of the deterministic schedule —
	// results are bit-identical for a fixed factor regardless of
	// workers, peers or stealing.
	ShardFactor int `json:"shard_factor,omitempty"`
	// Exploration budgets (symexec.Config fields; 0 = default).
	MaxStates                int  `json:"max_states,omitempty"`
	PhaseBudget              int  `json:"phase_budget,omitempty"`
	StagnationBudget         int  `json:"stagnation_budget,omitempty"`
	CompleteTarget           int  `json:"complete_target,omitempty"`
	PollThreshold            int  `json:"poll_threshold,omitempty"`
	DisableIncrementalSolver bool `json:"disable_incremental_solver,omitempty"`
	// SolverBackend names the constraint-solver backend ("core",
	// "smalldomain", "portfolio"); empty selects the service default
	// (Config.DefaultSolverBackend, normalized into the spec at
	// submission so journal replays and cluster shard dispatch see the
	// same backend). Results are bit-identical across backends.
	SolverBackend string `json:"solver_backend,omitempty"`
	// DeadlineMS bounds the job's execution wall clock in
	// milliseconds, measured from the moment the job starts running.
	// A job past its deadline winds down cooperatively and finishes as
	// status "deadline" with a partial result. The service's global
	// MaxJobWall cap applies on top — the tighter bound wins. 0 means
	// no per-job deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// JobResult is the summary extracted from a finished pipeline run. It
// deliberately holds no expression or trace references, so the job's
// arena (and every state, solver and collector of the run) is
// reclaimable the moment the pipeline returns.
type JobResult struct {
	Driver            string  `json:"driver"`
	Strategy          string  `json:"strategy"`
	Coverage          float64 `json:"coverage"`
	CoveredBlocks     int     `json:"covered_blocks"`
	GroundTruthBlocks int     `json:"ground_truth_blocks"`
	ExecutedBlocks    int64   `json:"executed_blocks"`
	TranslatedBlocks  int64   `json:"translated_blocks"`
	Forks             int64   `json:"forks"`
	KilledLoops       int64   `json:"killed_loops"`
	SolverQueries     int64   `json:"solver_queries"`
	SolverCacheHits   int64   `json:"solver_cache_hits"`
	SolverModelHits   int64   `json:"solver_model_hits"`
	Funcs             int     `json:"funcs"`
	// ShardsEffective is the narrowest fan-out width any phase actually
	// achieved (0 when no phase fanned out); ShardCollapses counts
	// phases that were configured to fan out but drained serially —
	// together they surface silent parallelism collapse.
	ShardsEffective int   `json:"shards_effective,omitempty"`
	ShardCollapses  int64 `json:"shard_collapses,omitempty"`
	// ArenaNodes is how many canonical expression nodes the job's
	// arena held at completion — all reclaimed with the job.
	ArenaNodes int `json:"arena_nodes"`
	// Code is the synthesized C source (template-instantiated when
	// the spec named a target OS).
	Code string `json:"code,omitempty"`
	// Stopped is "cancelled" or "deadline" when exploration was wound
	// down before the exercise script finished: the result is then
	// partial — it holds everything the completed phases produced —
	// but structurally complete. Empty for a full run.
	Stopped string `json:"stopped,omitempty"`

	// Fuzz-job fields (Strategy is "difffuzz" for these).
	FuzzSchedules    int `json:"fuzz_schedules,omitempty"`
	FuzzCoverageKeys int `json:"fuzz_coverage_keys,omitempty"`
	FuzzCorpus       int `json:"fuzz_corpus,omitempty"`
	FuzzUnexplored   int `json:"fuzz_unexplored,omitempty"`
	// Divergences are the confirmed behavioral differences between
	// the original and synthesized drivers, minimized reproducers
	// included.
	Divergences []difffuzz.Divergence `json:"divergences,omitempty"`
	// FuzzErrors are harness-level schedule failures (recovered
	// panics included) — reported, never fatal to the job.
	FuzzErrors []string `json:"fuzz_errors,omitempty"`
}

// Job is one tracked request. Fields are snapshots: the service hands
// out copies, never its internal pointers.
type Job struct {
	ID        string     `json:"id"`
	Spec      JobSpec    `json:"spec"`
	Status    Status     `json:"status"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

// Config parameterizes a Service.
type Config struct {
	// Pool is the number of jobs run concurrently; 0 selects 2. Each
	// job additionally fans out per its Workers setting, so the pool
	// bounds jobs, not goroutines.
	Pool int
	// QueueDepth bounds the backlog of accepted-but-unstarted jobs;
	// submissions beyond it are rejected with ErrBusy (HTTP 429 with
	// Retry-After) instead of blocking the submitter. 0 selects 64.
	QueueDepth int
	// MaxJobWall caps every job's execution wall clock; jobs past it
	// finish as status "deadline" with a partial result. A per-job
	// deadline_ms tightens (never loosens) the cap. 0 means no global
	// cap.
	MaxJobWall time.Duration
	// PerClientCap bounds how many live (queued or running) jobs one
	// client may hold; submissions beyond it are rejected with
	// ErrClientBusy. 0 disables the cap.
	PerClientCap int
	// RetainCount bounds how many finished jobs the index keeps;
	// beyond it the least recently accessed finished jobs are evicted
	// (their snapshots and results become 404s). 0 selects 256;
	// negative disables the count bound.
	RetainCount int
	// RetainAge evicts finished jobs not accessed for this long,
	// checked on every submission and completion. 0 disables the age
	// bound.
	RetainAge time.Duration
	// MaxBodyBytes caps POST /jobs request bodies (uploaded images
	// are base64 inside the JSON body); larger requests get 413.
	// 0 selects 8 MiB.
	MaxBodyBytes int64
	// DataDir, when non-empty, enables the durable job journal: an
	// append-only JSONL WAL under DataDir (jobs.journal) records every
	// submission (fsynced before the submit is acknowledged), start
	// and completion. On startup the journal is replayed: jobs that
	// were queued are resubmitted with their original IDs and specs
	// (deterministic specs re-run to identical results), jobs that
	// were mid-run are surfaced as status "interrupted" — unless the
	// journal also holds coordinator shard-completion records for
	// them, in which case they are requeued with the collected shards
	// pre-seeded so only the missing work re-runs. Empty disables
	// durability.
	DataDir string
	// Coordinator enables cluster mode: each job's fork-join shard
	// groups are dispatched to Cluster.Peers through the
	// fault-tolerant dispatcher, with local execution as the
	// guaranteed fallback. Results are bit-identical to a single-node
	// run of the same spec (arena_nodes excepted — see cluster.go).
	// With no peers configured, every shard runs the local fallback:
	// correct, just not distributed.
	Coordinator bool
	// Cluster tunes the shard dispatcher (peers, transport, timeouts,
	// retries, hedging, breakers). A nil Cluster.Transport selects
	// HTTP against the peers' POST /shards endpoints.
	Cluster cluster.Config
	// StaticDispatch disables the coordinator work queue: each shard
	// is dispatched to its hash-selected peer individually, as before
	// the capacity-aware scheduler. The merged result is identical
	// either way; this exists for A/B benchmarking (revbench's
	// straggler scenario) and as an escape hatch.
	StaticDispatch bool
	// ShardPool bounds how many remote shards (POST /shards) this
	// node serves concurrently; excess requests get 503 with
	// Retry-After, which the coordinator's dispatcher treats as
	// overload, not failure. 0 selects 2.
	ShardPool int
	// ProbeInterval is the period of peer health probes, which trip a
	// dead peer's breaker before any shard is wasted on it and
	// reclose it when the peer returns. 0 disables probing.
	ProbeInterval time.Duration
	// DefaultSolverBackend is the solver backend for specs that leave
	// solver_backend empty ("core", "smalldomain", "portfolio"; empty
	// keeps the core default). It is normalized into each spec at
	// submission, before journaling and cluster dispatch, so replays
	// and remote shards solve with the same backend the job ran with.
	// Backend choice never changes results, only solve latency.
	DefaultSolverBackend string
}

func (c *Config) defaults() {
	if c.Pool <= 0 {
		c.Pool = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetainCount == 0 {
		c.RetainCount = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ShardPool <= 0 {
		c.ShardPool = 2
	}
}

// Service schedules reverse-engineering jobs on a bounded runner
// pool. Create with New or Open; stop with Drain.
type Service struct {
	cfg   Config
	queue chan *job

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int
	draining bool
	journal  *journal

	wg sync.WaitGroup // runner goroutines

	// Cluster mode: the fault-tolerant shard dispatcher (nil unless
	// Config.Coordinator), its health prober's stop hook, and the
	// admission semaphore for shards served to other coordinators.
	dispatcher *cluster.Dispatcher
	stopProber func()
	shardSem   chan struct{}

	// fuzzHarnesses caches differential-fuzzing harnesses per
	// (device, OS, plant) across jobs and served shards.
	fuzzHarnesses fuzzHarnessCache

	m metrics
}

// job is the service-internal mutable record behind the Job
// snapshots.
type job struct {
	Job
	seq    int           // numeric submission order (ID = "job-<seq>")
	client string        // admission-control identity, "" if unknown
	stop   chan struct{} // closed to request cooperative cancellation
	// cancelled is set once cancellation was requested (guarded by
	// Service.mu); it keeps the stop channel single-close.
	cancelled bool
	// access is the retention clock: bumped on finish and on reads, so
	// count-bound eviction drops the least recently used finished job.
	access time.Time
	done   chan struct{}
	// shardCache holds shard results collected before a coordinator
	// crash, keyed by shardKey and pre-seeded from the journal on
	// replay; the shard runner returns these without re-dispatching.
	shardCache map[string]json.RawMessage
}

// ErrDraining rejects submissions after Drain began.
var ErrDraining = errors.New("jobsvc: service is draining")

// ErrBusy rejects submissions when the queue is full.
var ErrBusy = errors.New("jobsvc: job queue is full")

// ErrClientBusy rejects submissions when the client already holds
// Config.PerClientCap live jobs.
var ErrClientBusy = errors.New("jobsvc: per-client concurrent-job cap reached")

// ErrJournal wraps journal I/O failures: the submission was rejected
// because it could not be made durable.
var ErrJournal = errors.New("jobsvc: journal write failed")

// New starts a service with cfg.Pool runner goroutines. It panics if
// the durable journal cannot be opened or replayed (only possible
// with cfg.DataDir set) — use Open to handle that error.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a service, replaying the durable journal first when
// cfg.DataDir is set: journaled jobs that never started are
// resubmitted (same ID, same spec — deterministic specs reproduce
// their results exactly), and jobs that were mid-run when the
// previous process died are surfaced as status "interrupted".
func Open(cfg Config) (*Service, error) {
	cfg.defaults()
	s := &Service{
		cfg:  cfg,
		jobs: map[string]*job{},
	}
	var pending []*job
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("jobsvc: data dir: %w", err)
		}
		jl, recs, err := openJournal(filepath.Join(cfg.DataDir, journalFile))
		if err != nil {
			return nil, err
		}
		s.journal = jl
		pending = s.replay(recs)
	}
	// The queue must absorb every replayed job even when the backlog
	// outgrew the configured depth before the restart.
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	s.queue = make(chan *job, depth)
	for _, j := range pending {
		s.queue <- j
	}
	s.shardSem = make(chan struct{}, cfg.ShardPool)
	if cfg.Coordinator {
		ccfg := cfg.Cluster
		if ccfg.Transport == nil {
			ccfg.Transport = &cluster.HTTPTransport{Path: "/shards", ProbePath: "/healthz"}
		}
		s.dispatcher = cluster.NewDispatcher(ccfg)
		s.stopProber = s.dispatcher.StartProber(cfg.ProbeInterval)
	} else {
		s.stopProber = func() {}
	}
	for i := 0; i < cfg.Pool; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s, nil
}

// Submit validates and enqueues a job, returning its snapshot. It is
// SubmitFrom without a client identity (exempt from the per-client
// cap).
func (s *Service) Submit(spec JobSpec) (Job, error) {
	return s.SubmitFrom("", spec)
}

// SubmitFrom validates and enqueues a job on behalf of the given
// client, returning its snapshot. Admission control runs before any
// queue slot is taken: draining and malformed specs are rejected
// outright, a full queue returns ErrBusy, and a client already at
// Config.PerClientCap live jobs gets ErrClientBusy. With the durable
// journal enabled, the submission record is fsynced to disk before
// the job is acknowledged — an accepted job survives a crash.
func (s *Service) SubmitFrom(client string, spec JobSpec) (Job, error) {
	// Normalize the service's default backend into the spec before
	// validation, journaling and dispatch: the journal replay and every
	// cluster shard then carry the backend explicitly, so a restart
	// under a different service default re-runs the job unchanged.
	if spec.SolverBackend == "" {
		spec.SolverBackend = s.cfg.DefaultSolverBackend
	}
	if err := validate(spec); err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.m.rejectedDraining.Add(1)
		return Job{}, ErrDraining
	}
	if s.cfg.PerClientCap > 0 && client != "" {
		live := 0
		for _, j := range s.jobs {
			if j.client == client && !j.Status.Terminal() {
				live++
			}
		}
		if live >= s.cfg.PerClientCap {
			s.m.rejectedClientCap.Add(1)
			return Job{}, ErrClientBusy
		}
	}
	// All senders hold s.mu and runners only drain, so a spare slot
	// observed here cannot vanish before the send below.
	if len(s.queue) == cap(s.queue) {
		s.m.rejectedQueueFull.Add(1)
		return Job{}, ErrBusy
	}
	s.nextID++
	now := time.Now()
	j := &job{
		Job: Job{
			ID:        fmt.Sprintf("job-%d", s.nextID),
			Spec:      spec,
			Status:    StatusQueued,
			Submitted: now,
		},
		seq:    s.nextID,
		client: client,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Durability before acknowledgement: the fsynced submitted record
	// is what restart replay re-runs the job from.
	if err := s.journalAppend(journalRecord{
		T: recSubmitted, ID: j.ID, TS: now, Client: client, Spec: &spec,
	}, true); err != nil {
		s.nextID--
		return Job{}, fmt.Errorf("%w: %v", ErrJournal, err)
	}
	s.queue <- j
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.m.submitted.Add(1)
	s.evictLocked(now)
	// Snapshot under the lock: a pool runner may already be mutating
	// the job's status.
	return redactSpec(j.Job), nil
}

// redactSpec strips the uploaded image bytes from a snapshot's spec:
// they can be megabytes, and the API never needs to echo them back —
// neither in the submit response nor in listings or polls. The
// service-internal record keeps them for the runner.
func redactSpec(j Job) Job {
	if j.Spec.Program != nil && len(j.Spec.Program.Code) > 0 {
		p := *j.Spec.Program
		p.Code = nil
		j.Spec.Program = &p
	}
	return j
}

// validate rejects malformed specs at submission time, so queue slots
// are only spent on runnable jobs.
func validate(spec JobSpec) error {
	set := 0
	if spec.Driver != "" {
		set++
	}
	if spec.Program != nil {
		set++
	}
	if spec.Fuzz != nil {
		set++
	}
	if set != 1 {
		return errors.New("jobsvc: exactly one of driver, program or fuzz must be set")
	}
	if spec.Fuzz != nil {
		if err := validateFuzz(spec); err != nil {
			return err
		}
	}
	if spec.Driver != "" {
		if _, err := drivers.ByName(spec.Driver); err != nil {
			return fmt.Errorf("jobsvc: %w", err)
		}
	} else if spec.Program != nil {
		p := spec.Program
		if len(p.Code) == 0 {
			return errors.New("jobsvc: uploaded program has no code")
		}
		// The image must fit the guest RAM the engine copies it into.
		if uint64(p.Base)+uint64(len(p.Code)) > hw.RAMSize {
			return fmt.Errorf("jobsvc: program [%#x, %#x) exceeds guest RAM (%#x bytes)",
				p.Base, uint64(p.Base)+uint64(len(p.Code)), uint64(hw.RAMSize))
		}
	}
	if spec.Strategy != "" {
		if _, err := symexec.SearcherByName(spec.Strategy); err != nil {
			return fmt.Errorf("jobsvc: %w", err)
		}
	}
	if spec.Target != "" {
		ok := false
		for _, os := range template.AllOS {
			if template.OS(spec.Target) == os {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("jobsvc: unknown target OS %q (have %v)", spec.Target, template.AllOS)
		}
	}
	if !solver.ValidBackend(spec.SolverBackend) {
		return fmt.Errorf("jobsvc: unknown solver backend %q (have %v)",
			spec.SolverBackend, solver.BackendNames())
	}
	if spec.DeadlineMS < 0 {
		return fmt.Errorf("jobsvc: negative deadline_ms %d", spec.DeadlineMS)
	}
	if spec.ShardFactor < 0 || spec.ShardFactor > 64 {
		return fmt.Errorf("jobsvc: shard_factor %d out of range [0, 64]", spec.ShardFactor)
	}
	return nil
}

// Get returns a snapshot of one job. Reading a finished job bumps its
// retention clock, so polled results stay resident while colder ones
// are evicted first.
func (s *Service) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	if j.Status.Terminal() {
		j.access = time.Now()
	}
	return redactSpec(j.Job), true
}

// Cancel requests cancellation of a job. A queued job transitions to
// cancelled immediately; a running job gets its cooperative stop
// signal and winds down to cancelled with a partial result within the
// engine's stop-detection latency (well under 2s). Cancelling an
// already-finished job is a no-op. The returned snapshot reflects the
// state after the request.
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("jobsvc: unknown job %q", id)
	}
	switch j.Status {
	case StatusQueued:
		now := time.Now()
		j.Status = StatusCancelled
		j.Finished = &now
		j.access = now
		j.cancelled = true
		s.m.cancelled.Add(1)
		s.journalAppend(journalRecord{T: recFinished, ID: j.ID, TS: now, Status: StatusCancelled}, false)
		close(j.done)
	case StatusRunning:
		if !j.cancelled {
			j.cancelled = true
			close(j.stop)
		}
	}
	return redactSpec(j.Job), nil
}

// List returns snapshots of every job in stable submission order
// (ascending numeric ID), so /jobs output is deterministic no matter
// how submissions, completions and evictions interleave.
func (s *Service) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, redactSpec(j.Job))
	}
	seq := func(j Job) int {
		return s.jobs[j.ID].seq
	}
	sort.Slice(out, func(i, k int) bool { return seq(out[i]) < seq(out[k]) })
	return out
}

// Wait blocks until the job finishes (or ctx is done), returning the
// final snapshot. There is no waiter registration to leak: the wait
// selects on the job's completion channel, so a context cancellation
// simply returns — nothing stays behind in the service, no matter how
// many Waits were abandoned. The snapshot is taken from the job
// record itself, so Wait stays correct even if the finished job was
// evicted from the index between completion and wake-up.
func (s *Service) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("jobsvc: unknown job %q", id)
	}
	select {
	case <-j.done:
		s.mu.Lock()
		snap := redactSpec(j.Job)
		s.mu.Unlock()
		return snap, nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

// Drain stops accepting new jobs, lets queued and running jobs finish,
// and returns when the pool has wound down or ctx expires. It is the
// graceful-shutdown half of revnicd's signal handler; safe to call
// once.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		s.stopProber()
	}
	s.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// runner is one pool goroutine: it executes queued jobs until the
// queue is closed by Drain.
func (s *Service) runner() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job end to end in a private expression arena.
func (s *Service) run(j *job) {
	s.mu.Lock()
	if j.Status != StatusQueued {
		// Cancelled while queued: the record is already terminal, the
		// queue entry is just a husk to skip.
		s.mu.Unlock()
		return
	}
	start := time.Now()
	j.Status = StatusRunning
	j.Started = &start
	deadline := s.deadlineFor(j.Spec, start)
	s.journalAppend(journalRecord{T: recStarted, ID: j.ID, TS: start}, false)
	s.mu.Unlock()
	s.m.running.Add(1)

	res, err := s.executeSpec(j, deadline)
	end := time.Now()
	s.m.running.Add(-1)
	s.m.durationSeconds.add(end.Sub(start).Seconds())

	status, errMsg := StatusSucceeded, ""
	switch {
	case err != nil:
		status, errMsg = StatusFailed, err.Error()
		s.m.failed.Add(1)
	case res.Stopped == "deadline":
		status = StatusDeadline
		s.m.deadlineHits.Add(1)
	case res.Stopped == "cancelled":
		status = StatusCancelled
		s.m.cancelled.Add(1)
	default:
		s.m.succeeded.Add(1)
	}
	if res != nil {
		s.m.solverQueries.Add(res.SolverQueries)
		s.m.executedBlocks.Add(res.ExecutedBlocks)
		s.m.arenaNodesReclaimed.Add(int64(res.ArenaNodes))
		s.m.shardCollapses.Add(res.ShardCollapses)
		if res.ShardsEffective > 0 {
			s.m.shardsEffective.add(float64(res.ShardsEffective))
		}
		s.m.fuzzSchedules.Add(int64(res.FuzzSchedules))
		s.m.fuzzDivergences.Add(int64(len(res.Divergences)))
		s.m.fuzzUnexplored.Add(int64(res.FuzzUnexplored))
	}
	s.mu.Lock()
	j.Status = status
	j.Finished = &end
	j.Result = res
	j.Error = errMsg
	j.access = end
	s.journalAppend(journalRecord{T: recFinished, ID: j.ID, TS: end, Status: status, Error: errMsg}, false)
	s.evictLocked(end)
	s.mu.Unlock()
	close(j.done)
}

// deadlineFor combines the spec's per-job deadline with the service's
// global wall cap: the tighter bound wins; zero means unbounded.
func (s *Service) deadlineFor(spec JobSpec, start time.Time) time.Time {
	var d time.Duration
	if spec.DeadlineMS > 0 {
		d = time.Duration(spec.DeadlineMS) * time.Millisecond
	}
	if s.cfg.MaxJobWall > 0 && (d == 0 || s.cfg.MaxJobWall < d) {
		d = s.cfg.MaxJobWall
	}
	if d == 0 {
		return time.Time{}
	}
	return start.Add(d)
}

// evictLocked enforces the retention policy over finished jobs: the
// age bound first, then the count bound dropping the least recently
// accessed. Queued and running jobs are never evicted. Called with
// s.mu held on every submission and completion.
func (s *Service) evictLocked(now time.Time) {
	var finished []*job
	for _, j := range s.jobs {
		if j.Status.Terminal() {
			finished = append(finished, j)
		}
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].access.Before(finished[k].access) })
	evict := 0
	if s.cfg.RetainAge > 0 {
		for evict < len(finished) && now.Sub(finished[evict].access) > s.cfg.RetainAge {
			evict++
		}
	}
	if s.cfg.RetainCount > 0 && len(finished)-evict > s.cfg.RetainCount {
		evict = len(finished) - s.cfg.RetainCount
	}
	for _, j := range finished[:evict] {
		delete(s.jobs, j.ID)
		for i, id := range s.order {
			if id == j.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.m.evicted.Add(1)
	}
}

// journalAppend writes one record to the durable journal (no-op
// without a data dir); sync forces an fsync before returning.
func (s *Service) journalAppend(rec journalRecord, sync bool) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.append(rec, sync)
}

// replay folds the journal records of the previous incarnation into
// the fresh service: jobs whose lifecycle completed are dropped (their
// results lived only in memory), jobs that were mid-run are surfaced
// as status "interrupted", and jobs that never started are rebuilt —
// original ID, spec and client — and returned for requeueing. The
// journal is then compacted to just the surviving submissions, so it
// does not grow without bound across restarts. Runs before any runner
// starts, so no locking.
func (s *Service) replay(recs []journalRecord) []*job {
	type entry struct {
		rec       journalRecord
		started   bool
		shards    map[string]json.RawMessage
		shardRecs []journalRecord
	}
	byID := map[string]*entry{}
	var ids []string // submission order
	for _, r := range recs {
		switch r.T {
		case recSubmitted:
			if _, dup := byID[r.ID]; !dup {
				byID[r.ID] = &entry{rec: r}
				ids = append(ids, r.ID)
			}
		case recStarted:
			if e := byID[r.ID]; e != nil {
				e.started = true
			}
		case recShardDone:
			// A collected shard result from a coordinator run; on
			// re-dispatch the same deterministic key recurs, so first
			// record wins.
			if e := byID[r.ID]; e != nil && r.Key != "" && len(r.Result) > 0 {
				if e.shards == nil {
					e.shards = map[string]json.RawMessage{}
				}
				if _, dup := e.shards[r.Key]; !dup {
					e.shards[r.Key] = r.Result
					e.shardRecs = append(e.shardRecs, r)
				}
			}
		case recShardDispatched:
			// Dispatch-only records carry no result to reuse; the shard
			// is simply re-dispatched on replay.
		case recFinished:
			delete(byID, r.ID)
		}
		// Track the highest seq ever journaled so new IDs never collide
		// with finished (and deleted) ones.
		var seq int
		if n, err := fmt.Sscanf(r.ID, "job-%d", &seq); n == 1 && err == nil && seq > s.nextID {
			s.nextID = seq
		}
	}

	var pending []*job
	var keep []journalRecord
	for _, id := range ids {
		e, ok := byID[id]
		if !ok || e.rec.Spec == nil {
			continue
		}
		j := &job{
			Job: Job{
				ID:        id,
				Spec:      *e.rec.Spec,
				Submitted: e.rec.TS,
			},
			client: e.rec.Client,
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		}
		fmt.Sscanf(id, "job-%d", &j.seq)
		switch {
		case len(e.shards) > 0:
			// Shard records survive compaction without the started
			// record, so this branch keys on them alone: a job with
			// collected shards is resumable whether or not the crash
			// (or a crash after compaction) kept its started marker.
			// A coordinator crash mid-fan-out: the journaled shard
			// results are pre-seeded so the re-run re-dispatches only
			// the missing shards and merges to the identical summary.
			j.Status = StatusQueued
			j.shardCache = e.shards
			pending = append(pending, j)
			keep = append(keep, e.rec)
			keep = append(keep, e.shardRecs...)
			s.m.replayedResumed.Add(1)
		case e.started:
			// Mid-run at crash time: the exploration state is gone and the
			// spec may have burned wall clock already, so it is surfaced
			// rather than silently re-run.
			now := time.Now()
			j.Status = StatusInterrupted
			j.Finished = &now
			j.access = now
			close(j.done)
			s.m.replayedInterrupted.Add(1)
		default:
			j.Status = StatusQueued
			pending = append(pending, j)
			keep = append(keep, e.rec)
			s.m.replayed.Add(1)
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	// Compaction: rewrite errors are non-fatal — the un-compacted
	// journal still replays correctly, it is just longer.
	if s.journal != nil {
		_ = s.journal.rewrite(keep)
	}
	return pending
}

// ReplayStats reports how many journaled jobs the startup replay
// requeued and how many it marked interrupted.
func (s *Service) ReplayStats() (requeued, interrupted int64) {
	return s.m.replayed.Load(), s.m.replayedInterrupted.Load()
}

// crash simulates an abrupt process death for tests: runners are
// abandoned mid-job (their stop channels close so they wind down, but
// no finished records are written) and the journal file handle is
// dropped without compaction. Only the on-disk journal survives, which
// is exactly the state a SIGKILL leaves behind.
func (s *Service) crash() {
	s.mu.Lock()
	s.draining = true
	s.stopProber()
	if s.journal != nil {
		s.journal.close()
		s.journal = nil
	}
	close(s.queue)
	for _, j := range s.jobs {
		switch {
		case j.Status == StatusRunning && !j.cancelled:
			j.cancelled = true
			close(j.stop)
		case j.Status == StatusQueued:
			// Turn queued entries into husks the runners skip: a killed
			// process would never have run them.
			j.Status = StatusCancelled
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// engineConfig maps a spec to the engine configuration both the
// coordinator's own run and a peer's shard execution must share —
// any divergence here would break the bit-identity of remote shards.
func engineConfig(spec JobSpec, ar *expr.Arena) symexec.Config {
	var searcher symexec.SearcherFactory
	if spec.Strategy != "" {
		searcher, _ = symexec.SearcherByName(spec.Strategy)
	}
	return symexec.Config{
		Arena:                    ar,
		Searcher:                 searcher,
		Seed:                     spec.Seed,
		Workers:                  spec.Workers,
		Shards:                   spec.Shards,
		ShardFactor:              spec.ShardFactor,
		MaxStates:                spec.MaxStates,
		PhaseBudget:              spec.PhaseBudget,
		StagnationBudget:         spec.StagnationBudget,
		CompleteTarget:           spec.CompleteTarget,
		PollThreshold:            spec.PollThreshold,
		DisableIncrementalSolver: spec.DisableIncrementalSolver,
		SolverBackend:            spec.SolverBackend,
	}
}

// runSpec runs the full pipeline for one spec and reduces it to a
// result summary. The expr.Arena created here is the job's whole
// expression universe — it is referenced only by the pipeline run and
// becomes collectable as soon as this function returns. A non-nil
// runner dispatches the exploration's shard groups to the cluster.
func runSpec(spec JobSpec, stop <-chan struct{}, deadline time.Time, runner symexec.ShardRunner) (*JobResult, error) {
	prog, shell, name, err := resolveProgram(spec)
	if err != nil {
		return nil, err
	}
	ar := expr.NewArena()
	ecfg := engineConfig(spec, ar)
	ecfg.Stop = stop
	ecfg.Deadline = deadline
	ecfg.ShardRunner = runner
	rev, err := core.ReverseEngineer(prog, core.Options{
		Shell:      shell,
		DriverName: name,
		Engine:     ecfg,
	})
	if err != nil {
		return nil, err
	}
	code := rev.Synth.Code
	if spec.Target != "" {
		code = rev.InstantiateTemplate(template.OS(spec.Target))
	}
	exp := rev.Exploration
	return &JobResult{
		Driver:            name,
		Strategy:          exp.Strategy,
		Coverage:          rev.Coverage(),
		CoveredBlocks:     exp.Collector.CoveredBlocks(),
		GroundTruthBlocks: rev.GroundTruth.NumBlocks(),
		ExecutedBlocks:    exp.ExecutedBlocks,
		TranslatedBlocks:  exp.TranslatedBlocks,
		Forks:             exp.ForkCount,
		KilledLoops:       exp.KilledLoops,
		SolverQueries:     exp.SolverQueries,
		SolverCacheHits:   exp.SolverCacheHits,
		SolverModelHits:   exp.SolverModelHits,
		Funcs:             len(rev.Synth.Funcs),
		ShardsEffective:   exp.ShardsEffective,
		ShardCollapses:    exp.ShardCollapses,
		ArenaNodes:        ar.InternedNodes(),
		Code:              code,
		Stopped:           stoppedString(exp.Stopped),
	}, nil
}

// stoppedString maps the engine's stop reason to the JobResult wire
// form: empty for a run that was never interrupted.
func stoppedString(r symexec.TermReason) string {
	switch r {
	case symexec.TermCancelled:
		return "cancelled"
	case symexec.TermDeadline:
		return "deadline"
	}
	return ""
}

// resolveProgram turns a spec into the pipeline inputs: a bundled
// driver with its inventory shell parameters, or an uploaded image
// with the spec's.
func resolveProgram(spec JobSpec) (*isa.Program, hw.PCIConfig, string, error) {
	if spec.Driver != "" {
		info, err := drivers.ByName(spec.Driver)
		if err != nil {
			return nil, hw.PCIConfig{}, "", err
		}
		return info.Program, core.ShellConfig(info), info.Name, nil
	}
	p := spec.Program
	name := p.Name
	if name == "" {
		name = "uploaded"
	}
	shell := hw.PCIConfig{
		VendorID: p.Shell.VendorID, DeviceID: p.Shell.DeviceID,
		IOBase: p.Shell.IOBase, IOSize: p.Shell.IOSize, IRQLine: p.Shell.IRQLine,
	}
	if shell.IOBase == 0 {
		shell.IOBase, shell.IOSize = 0xC000, 0x100
	}
	if shell.IRQLine == 0 {
		shell.IRQLine = 11
	}
	return &isa.Program{Base: p.Base, Code: p.Code}, shell, name, nil
}
