// Package jobsvc turns the one-shot reverse-engineering pipeline into
// a resident service: cmd/revnicd accepts HTTP/JSON job requests
// (driver name or uploaded program image, searcher, shard/worker
// fan-out, exploration budgets), schedules them on a bounded pool of
// job runners that reuse the fork-join exploration in
// internal/symexec, and serves job status, results and
// Prometheus-style metrics.
//
// Every job runs inside its own expr.Arena: the engine, its worker
// children and its solvers intern every expression in the job's
// arena, so when the job's result summary has been extracted the
// whole arena — millions of interned nodes for a deep exploration —
// becomes garbage at once. Process-global intern state never grows
// with job traffic, which is what makes the service viable as a
// long-running daemon (the ROADMAP's eviction open item, resolved by
// construction). Results are bit-identical to the cmd/revnic CLI for
// the same driver/searcher/seed/shard settings, because expression
// canonicalization is structural and therefore arena-independent.
package jobsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/expr"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/symexec"
	"revnic/internal/template"
)

// Status is a job's lifecycle phase.
type Status string

// Job lifecycle phases. Jobs move queued → running → succeeded or
// failed; there are no other transitions.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
)

// ShellSpec carries the shell-device PCI parameters for uploaded
// programs ("the vendor and product identifier of the device whose
// driver is being reverse engineered", §3.4). Bundled drivers derive
// theirs from the device inventory.
type ShellSpec struct {
	VendorID uint16 `json:"vendor_id"`
	DeviceID uint16 `json:"device_id"`
	IOBase   uint32 `json:"io_base,omitempty"`
	IOSize   uint32 `json:"io_size,omitempty"`
	IRQLine  uint8  `json:"irq_line,omitempty"`
}

// ProgramSpec is an uploaded driver binary: the same two inputs the
// real tool gets (load address and image bytes), plus the shell
// parameters.
type ProgramSpec struct {
	Name  string    `json:"name,omitempty"`
	Base  uint32    `json:"base"`
	Code  []byte    `json:"code"` // base64 in JSON
	Shell ShellSpec `json:"shell"`
}

// JobSpec is one reverse-engineering request. Exactly one of Driver
// (a bundled binary) or Program (an uploaded image) must be set; zero
// values elsewhere select the engine defaults.
type JobSpec struct {
	Driver  string       `json:"driver,omitempty"`
	Program *ProgramSpec `json:"program,omitempty"`
	// Strategy names the path-selection searcher ("coverage", "dfs",
	// "bfs"); empty selects the coverage-guided default.
	Strategy string `json:"strategy,omitempty"`
	// Target optionally names a template OS ("windows", "linux",
	// "ucos-ii", "kitos"); when set, Code in the result is the fully
	// instantiated driver instead of the bare synthesized functions.
	Target string `json:"target,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Workers/Shards configure the fork-join exploration exactly as
	// cmd/revnic's flags do; results are identical for any Workers.
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
	// Exploration budgets (symexec.Config fields; 0 = default).
	MaxStates                int  `json:"max_states,omitempty"`
	PhaseBudget              int  `json:"phase_budget,omitempty"`
	StagnationBudget         int  `json:"stagnation_budget,omitempty"`
	CompleteTarget           int  `json:"complete_target,omitempty"`
	PollThreshold            int  `json:"poll_threshold,omitempty"`
	DisableIncrementalSolver bool `json:"disable_incremental_solver,omitempty"`
}

// JobResult is the summary extracted from a finished pipeline run. It
// deliberately holds no expression or trace references, so the job's
// arena (and every state, solver and collector of the run) is
// reclaimable the moment the pipeline returns.
type JobResult struct {
	Driver            string  `json:"driver"`
	Strategy          string  `json:"strategy"`
	Coverage          float64 `json:"coverage"`
	CoveredBlocks     int     `json:"covered_blocks"`
	GroundTruthBlocks int     `json:"ground_truth_blocks"`
	ExecutedBlocks    int64   `json:"executed_blocks"`
	TranslatedBlocks  int64   `json:"translated_blocks"`
	Forks             int64   `json:"forks"`
	KilledLoops       int64   `json:"killed_loops"`
	SolverQueries     int64   `json:"solver_queries"`
	SolverCacheHits   int64   `json:"solver_cache_hits"`
	SolverModelHits   int64   `json:"solver_model_hits"`
	Funcs             int     `json:"funcs"`
	// ArenaNodes is how many canonical expression nodes the job's
	// arena held at completion — all reclaimed with the job.
	ArenaNodes int `json:"arena_nodes"`
	// Code is the synthesized C source (template-instantiated when
	// the spec named a target OS).
	Code string `json:"code,omitempty"`
}

// Job is one tracked request. Fields are snapshots: the service hands
// out copies, never its internal pointers.
type Job struct {
	ID        string     `json:"id"`
	Spec      JobSpec    `json:"spec"`
	Status    Status     `json:"status"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

// Config parameterizes a Service.
type Config struct {
	// Pool is the number of jobs run concurrently; 0 selects 2. Each
	// job additionally fans out per its Workers setting, so the pool
	// bounds jobs, not goroutines.
	Pool int
	// QueueDepth bounds the backlog of accepted-but-unstarted jobs;
	// submissions beyond it are rejected with ErrBusy. 0 selects 64.
	QueueDepth int
}

// Service schedules reverse-engineering jobs on a bounded runner
// pool. Create with New; stop with Drain.
type Service struct {
	pool  int
	queue chan *job

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int
	draining bool

	wg sync.WaitGroup // runner goroutines

	m metrics
}

// job is the service-internal mutable record behind the Job
// snapshots.
type job struct {
	Job
	done chan struct{}
}

// ErrDraining rejects submissions after Drain began.
var ErrDraining = errors.New("jobsvc: service is draining")

// ErrBusy rejects submissions when the queue is full.
var ErrBusy = errors.New("jobsvc: job queue is full")

// New starts a service with cfg.Pool runner goroutines.
func New(cfg Config) *Service {
	if cfg.Pool <= 0 {
		cfg.Pool = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	s := &Service{
		pool:  cfg.Pool,
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  map[string]*job{},
	}
	for i := 0; i < s.pool; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// Submit validates and enqueues a job, returning its snapshot.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	if err := validate(spec); err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Job{}, ErrDraining
	}
	s.nextID++
	j := &job{
		Job: Job{
			ID:        fmt.Sprintf("job-%d", s.nextID),
			Spec:      spec,
			Status:    StatusQueued,
			Submitted: time.Now(),
		},
		done: make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.nextID--
		s.mu.Unlock()
		return Job{}, ErrBusy
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.m.submitted.Add(1)
	// Snapshot under the lock: a pool runner may already be mutating
	// the job's status.
	snap := redactSpec(j.Job)
	s.mu.Unlock()
	return snap, nil
}

// redactSpec strips the uploaded image bytes from a snapshot's spec:
// they can be megabytes, and the API never needs to echo them back —
// neither in the submit response nor in listings or polls. The
// service-internal record keeps them for the runner.
func redactSpec(j Job) Job {
	if j.Spec.Program != nil && len(j.Spec.Program.Code) > 0 {
		p := *j.Spec.Program
		p.Code = nil
		j.Spec.Program = &p
	}
	return j
}

// validate rejects malformed specs at submission time, so queue slots
// are only spent on runnable jobs.
func validate(spec JobSpec) error {
	if (spec.Driver == "") == (spec.Program == nil) {
		return errors.New("jobsvc: exactly one of driver or program must be set")
	}
	if spec.Driver != "" {
		if _, err := drivers.ByName(spec.Driver); err != nil {
			return fmt.Errorf("jobsvc: %w", err)
		}
	} else {
		p := spec.Program
		if len(p.Code) == 0 {
			return errors.New("jobsvc: uploaded program has no code")
		}
		// The image must fit the guest RAM the engine copies it into.
		if uint64(p.Base)+uint64(len(p.Code)) > hw.RAMSize {
			return fmt.Errorf("jobsvc: program [%#x, %#x) exceeds guest RAM (%#x bytes)",
				p.Base, uint64(p.Base)+uint64(len(p.Code)), uint64(hw.RAMSize))
		}
	}
	if spec.Strategy != "" {
		if _, err := symexec.SearcherByName(spec.Strategy); err != nil {
			return fmt.Errorf("jobsvc: %w", err)
		}
	}
	if spec.Target != "" {
		ok := false
		for _, os := range template.AllOS {
			if template.OS(spec.Target) == os {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("jobsvc: unknown target OS %q (have %v)", spec.Target, template.AllOS)
		}
	}
	return nil
}

// Get returns a snapshot of one job.
func (s *Service) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return redactSpec(j.Job), true
}

// List returns snapshots of every job in submission order.
func (s *Service) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, redactSpec(s.jobs[id].Job))
	}
	return out
}

// Wait blocks until the job finishes (or ctx is done), returning the
// final snapshot.
func (s *Service) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("jobsvc: unknown job %q", id)
	}
	select {
	case <-j.done:
		return s.mustGet(id), nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

func (s *Service) mustGet(id string) Job {
	j, _ := s.Get(id)
	return j
}

// Drain stops accepting new jobs, lets queued and running jobs finish,
// and returns when the pool has wound down or ctx expires. It is the
// graceful-shutdown half of revnicd's signal handler; safe to call
// once.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// runner is one pool goroutine: it executes queued jobs until the
// queue is closed by Drain.
func (s *Service) runner() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job end to end in a private expression arena.
func (s *Service) run(j *job) {
	start := time.Now()
	s.setStatus(j, StatusRunning, &start, nil, nil, "")
	s.m.running.Add(1)
	defer s.m.running.Add(-1)

	res, err := executeSpec(j.Spec)
	end := time.Now()
	s.m.durationSeconds.add(end.Sub(start).Seconds())
	if err != nil {
		s.m.failed.Add(1)
		s.setStatus(j, StatusFailed, &start, &end, nil, err.Error())
	} else {
		s.m.succeeded.Add(1)
		s.m.solverQueries.Add(res.SolverQueries)
		s.m.executedBlocks.Add(res.ExecutedBlocks)
		s.m.arenaNodesReclaimed.Add(int64(res.ArenaNodes))
		s.setStatus(j, StatusSucceeded, &start, &end, res, "")
	}
	close(j.done)
}

func (s *Service) setStatus(j *job, st Status, started, finished *time.Time, res *JobResult, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.Status = st
	j.Started = started
	j.Finished = finished
	j.Result = res
	j.Error = errMsg
}

// executeSpec runs the full pipeline for one spec and reduces it to a
// result summary. The expr.Arena created here is the job's whole
// expression universe — it is referenced only by the pipeline run and
// becomes collectable as soon as this function returns. A panic
// anywhere in the pipeline fails the job, not the daemon: one
// malformed request must never take down a service with other jobs in
// flight.
func executeSpec(spec JobSpec) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("jobsvc: pipeline panic: %v", r)
		}
	}()
	return runSpec(spec)
}

func runSpec(spec JobSpec) (*JobResult, error) {
	prog, shell, name, err := resolveProgram(spec)
	if err != nil {
		return nil, err
	}
	var searcher symexec.SearcherFactory
	if spec.Strategy != "" {
		searcher, _ = symexec.SearcherByName(spec.Strategy)
	}
	ar := expr.NewArena()
	rev, err := core.ReverseEngineer(prog, core.Options{
		Shell:      shell,
		DriverName: name,
		Engine: symexec.Config{
			Arena:                    ar,
			Searcher:                 searcher,
			Seed:                     spec.Seed,
			Workers:                  spec.Workers,
			Shards:                   spec.Shards,
			MaxStates:                spec.MaxStates,
			PhaseBudget:              spec.PhaseBudget,
			StagnationBudget:         spec.StagnationBudget,
			CompleteTarget:           spec.CompleteTarget,
			PollThreshold:            spec.PollThreshold,
			DisableIncrementalSolver: spec.DisableIncrementalSolver,
		},
	})
	if err != nil {
		return nil, err
	}
	code := rev.Synth.Code
	if spec.Target != "" {
		code = rev.InstantiateTemplate(template.OS(spec.Target))
	}
	exp := rev.Exploration
	return &JobResult{
		Driver:            name,
		Strategy:          exp.Strategy,
		Coverage:          rev.Coverage(),
		CoveredBlocks:     exp.Collector.CoveredBlocks(),
		GroundTruthBlocks: rev.GroundTruth.NumBlocks(),
		ExecutedBlocks:    exp.ExecutedBlocks,
		TranslatedBlocks:  exp.TranslatedBlocks,
		Forks:             exp.ForkCount,
		KilledLoops:       exp.KilledLoops,
		SolverQueries:     exp.SolverQueries,
		SolverCacheHits:   exp.SolverCacheHits,
		SolverModelHits:   exp.SolverModelHits,
		Funcs:             len(rev.Synth.Funcs),
		ArenaNodes:        ar.InternedNodes(),
		Code:              code,
	}, nil
}

// resolveProgram turns a spec into the pipeline inputs: a bundled
// driver with its inventory shell parameters, or an uploaded image
// with the spec's.
func resolveProgram(spec JobSpec) (*isa.Program, hw.PCIConfig, string, error) {
	if spec.Driver != "" {
		info, err := drivers.ByName(spec.Driver)
		if err != nil {
			return nil, hw.PCIConfig{}, "", err
		}
		return info.Program, core.ShellConfig(info), info.Name, nil
	}
	p := spec.Program
	name := p.Name
	if name == "" {
		name = "uploaded"
	}
	shell := hw.PCIConfig{
		VendorID: p.Shell.VendorID, DeviceID: p.Shell.DeviceID,
		IOBase: p.Shell.IOBase, IOSize: p.Shell.IOSize, IRQLine: p.Shell.IRQLine,
	}
	if shell.IOBase == 0 {
		shell.IOBase, shell.IOSize = 0xC000, 0x100
	}
	if shell.IRQLine == 0 {
		shell.IRQLine = 11
	}
	return &isa.Program{Base: p.Base, Code: p.Code}, shell, name, nil
}
