package jobsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// longSpec is a job whose budgets would sustain exploration for hours:
// only cancellation or a deadline finishes it.
func longSpec() JobSpec {
	return JobSpec{
		Driver:           "RTL8029",
		Seed:             3,
		PhaseBudget:      1 << 30,
		StagnationBudget: 1 << 30,
		CompleteTarget:   1 << 30,
		MaxStates:        1 << 20,
	}
}

// quickSpec is a job that terminates in milliseconds: a tiny phase
// budget ends exploration almost immediately, but the run is still a
// complete, successful pipeline pass.
func quickSpec(seed int64) JobSpec {
	return JobSpec{Driver: "RTL8029", Seed: seed, PhaseBudget: 50}
}

// waitRunning polls until the job leaves the queue.
func waitRunning(t *testing.T, svc *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := svc.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.Status == StatusRunning {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

func drainWithin(t *testing.T, svc *Service, d time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestCancelQueuedJob: a job cancelled before a runner picks it up
// becomes terminal immediately and is skipped by the pool.
func TestCancelQueuedJob(t *testing.T) {
	svc := New(Config{Pool: 1})
	a, err := svc.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, svc, a.ID)
	b, err := svc.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Cancel(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusCancelled {
		t.Fatalf("queued job after cancel: %s, want cancelled immediately", got.Status)
	}
	if got.Finished == nil {
		t.Fatal("cancelled queued job has no finish time")
	}
	// Unblock the pool and make sure the husk is skipped, not re-run.
	if _, err := svc.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	drainWithin(t, svc, 30*time.Second)
	final, _ := svc.Get(b.ID)
	if final.Status != StatusCancelled || final.Result != nil {
		t.Fatalf("cancelled queued job was executed anyway: %+v", final)
	}
}

// TestCancelRunningJob: cancelling mid-exploration winds the job down
// to a partial-but-well-formed result within 2 seconds.
func TestCancelRunningJob(t *testing.T) {
	svc := New(Config{Pool: 1})
	j, err := svc.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, svc, j.ID)
	cancelledAt := time.Now()
	if _, err := svc.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if wind := time.Since(cancelledAt); wind > 2*time.Second {
		t.Errorf("cancel wind-down took %s, want < 2s", wind)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("status %s, want cancelled", final.Status)
	}
	if final.Result == nil || final.Result.Stopped != "cancelled" {
		t.Fatalf("expected partial result with stopped=cancelled, got %+v", final.Result)
	}
	if final.Result.ExecutedBlocks == 0 {
		t.Error("partial result shows no execution at all")
	}
	// Cancelling a finished job is a no-op.
	again, err := svc.Cancel(j.ID)
	if err != nil || again.Status != StatusCancelled {
		t.Fatalf("re-cancel: %v %s", err, again.Status)
	}
	drainWithin(t, svc, 30*time.Second)
}

// TestDeadlineMS: a per-job deadline finishes the job as status
// "deadline" with a partial result.
func TestDeadlineMS(t *testing.T) {
	svc := New(Config{Pool: 1})
	spec := longSpec()
	spec.DeadlineMS = 200
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDeadline {
		t.Fatalf("status %s, want deadline", final.Status)
	}
	if final.Result == nil || final.Result.Stopped != "deadline" {
		t.Fatalf("expected partial result with stopped=deadline, got %+v", final.Result)
	}
	drainWithin(t, svc, 30*time.Second)
}

// TestMaxJobWall: the global cap applies even when the spec asks for
// no deadline at all.
func TestMaxJobWall(t *testing.T) {
	svc := New(Config{Pool: 1, MaxJobWall: 200 * time.Millisecond})
	j, err := svc.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDeadline {
		t.Fatalf("status %s, want deadline from MaxJobWall", final.Status)
	}
	drainWithin(t, svc, 30*time.Second)
}

// TestJournalReplayAfterCrash simulates a SIGKILL: a service with a
// data dir dies with one job mid-run and one still queued. A fresh
// service on the same dir must surface the running job as interrupted
// and re-run the queued one — with its original ID, to a result
// bit-identical to a direct run of the same spec.
func TestJournalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	svc1, err := Open(Config{Pool: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, err := svc1.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, svc1, a.ID)
	b, err := svc1.Submit(JobSpec{Driver: "RTL8029", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	svc1.crash()

	svc2, err := Open(Config{Pool: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	requeued, interrupted := svc2.ReplayStats()
	if requeued != 1 || interrupted != 1 {
		t.Fatalf("replay stats: requeued=%d interrupted=%d, want 1/1", requeued, interrupted)
	}
	ja, ok := svc2.Get(a.ID)
	if !ok || ja.Status != StatusInterrupted {
		t.Fatalf("job %s after restart: %+v, want interrupted", a.ID, ja)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	jb, err := svc2.Wait(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jb.ID != b.ID {
		t.Fatalf("replayed job changed ID: %s -> %s", b.ID, jb.ID)
	}
	if jb.Status != StatusSucceeded {
		t.Fatalf("replayed job: %s (%s)", jb.Status, jb.Error)
	}
	// Determinism across the crash: the journaled spec re-runs to the
	// same synthesized driver as a direct pipeline run.
	rev := directRun(t, "RTL8029", 3)
	if jb.Result.Code != rev.Synth.Code {
		t.Error("replayed job's synthesized code differs from a direct run")
	}
	// New submissions must not collide with journaled IDs.
	c, err := svc2.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID || c.ID == b.ID {
		t.Fatalf("post-replay submission reused ID %s", c.ID)
	}
	drainWithin(t, svc2, 30*time.Second)
}

// TestRetentionEviction: the count bound drops the least recently
// accessed finished jobs; reading a job keeps it resident.
func TestRetentionEviction(t *testing.T) {
	svc := New(Config{Pool: 1, RetainCount: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := svc.Submit(quickSpec(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Eviction runs on completion: only the 2 newest survive.
	if _, ok := svc.Get(ids[0]); ok {
		t.Errorf("job %s should have been evicted", ids[0])
	}
	if _, ok := svc.Get(ids[1]); ok {
		t.Errorf("job %s should have been evicted", ids[1])
	}
	// Touch the older survivor, then finish one more job: the untouched
	// survivor is now the LRU and must be the one evicted.
	if _, ok := svc.Get(ids[2]); !ok {
		t.Fatalf("job %s missing before touch", ids[2])
	}
	j, err := svc.Submit(quickSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Get(ids[3]); ok {
		t.Errorf("LRU job %s survived past a fresher access to %s", ids[3], ids[2])
	}
	if _, ok := svc.Get(ids[2]); !ok {
		t.Errorf("recently read job %s was evicted", ids[2])
	}
	drainWithin(t, svc, 30*time.Second)
}

// TestPerClientCap: one client's live jobs are bounded; other clients
// and anonymous submissions are unaffected.
func TestPerClientCap(t *testing.T) {
	svc := New(Config{Pool: 1, PerClientCap: 1})
	a, err := svc.SubmitFrom("alice", longSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitFrom("alice", quickSpec(1)); err != ErrClientBusy {
		t.Fatalf("second alice submission: %v, want ErrClientBusy", err)
	}
	b, err := svc.SubmitFrom("bob", quickSpec(2))
	if err != nil {
		t.Fatalf("bob blocked by alice's cap: %v", err)
	}
	if _, err := svc.Submit(quickSpec(3)); err != nil {
		t.Fatalf("anonymous submission blocked: %v", err)
	}
	// Once alice's job is terminal she can submit again.
	if _, err := svc.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := svc.Wait(ctx, a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitFrom("alice", quickSpec(4)); err != nil {
		t.Fatalf("alice still capped after her job finished: %v", err)
	}
	_ = b
	drainWithin(t, svc, 60*time.Second)
}

// TestWaitContextCancelled: an abandoned Wait returns promptly and
// leaves nothing registered in the service.
func TestWaitContextCancelled(t *testing.T) {
	svc := New(Config{Pool: 1})
	j, err := svc.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Wait(ctx, j.ID); err != context.Canceled {
		t.Fatalf("Wait with dead ctx: %v, want context.Canceled", err)
	}
	if _, err := svc.Wait(context.Background(), "job-999"); err == nil {
		t.Fatal("Wait on unknown job must error")
	}
	if _, err := svc.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	drainWithin(t, svc, 30*time.Second)
}

// TestListStableOrder: /jobs output is submission-ordered no matter
// how completions interleave.
func TestListStableOrder(t *testing.T) {
	svc := New(Config{Pool: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := svc.Submit(quickSpec(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		if _, err := svc.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	list := svc.List()
	if len(list) != len(ids) {
		t.Fatalf("list has %d jobs, want %d", len(list), len(ids))
	}
	for i, j := range list {
		if j.ID != ids[i] {
			t.Fatalf("list[%d] = %s, want %s (stable submit order)", i, j.ID, ids[i])
		}
	}
	drainWithin(t, svc, 30*time.Second)
}

// TestHTTPCancelDeadlineAndLimits drives the new HTTP surface: DELETE
// cancels, oversized bodies get 413, and a saturated service answers
// 429 with a Retry-After hint.
func TestHTTPCancelDeadlineAndLimits(t *testing.T) {
	svc := New(Config{Pool: 1, QueueDepth: 1, MaxBodyBytes: 1024})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Fill the runner and the one queue slot with long jobs.
	a := postJob(t, ts.URL, longSpec())
	waitRunning(t, svc, a.ID)
	b := postJob(t, ts.URL, longSpec())

	// Saturated: the next submission is turned away with 429.
	body, _ := json.Marshal(quickSpec(1))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// Oversized body: 413 before any queue slot is considered.
	big, _ := json.Marshal(JobSpec{Program: &ProgramSpec{Base: 0, Code: make([]byte, 4096)}})
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: %d, want 413", resp.StatusCode)
	}

	// DELETE the queued job, then the running one.
	for _, id := range []string{b.ID, a.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s: %d", id, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/job-999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d, want 404", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := svc.Wait(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("DELETEd running job: %s", final.Status)
	}

	// The new counters are exported.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`revnicd_jobs_completed_total{status="cancelled"}`,
		`revnicd_jobs_rejected_total{reason="queue_full"} 1`,
		`revnicd_jobs_rejected_total{reason="body_too_large"} 1`,
		"revnicd_jobs_evicted_total",
		"revnicd_journal_replayed_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	drainWithin(t, svc, 30*time.Second)
}
