package jobsvc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// The durable job journal is an append-only JSONL write-ahead log
// under Config.DataDir. Each line is one journalRecord; the file is
// the only state that survives a crash. Submissions are fsynced before
// the submit call returns (an acknowledged job is durable); started
// and finished records ride on the OS page cache — losing one merely
// degrades a finished job to "interrupted" on replay, never loses an
// accepted job.

// journalFile is the WAL's name inside Config.DataDir.
const journalFile = "jobs.journal"

// Journal record types.
const (
	recSubmitted = "submitted"
	recStarted   = "started"
	recFinished  = "finished"
	// Coordinator-mode shard lifecycle: a dispatch marker when a
	// shard is handed to the cluster, and the completed result when
	// it comes back. On replay the done records pre-seed the job's
	// shard cache, so a crashed coordinator re-dispatches only the
	// missing shards.
	recShardDispatched = "shard_dispatched"
	recShardDone       = "shard_done"
)

// journalRecord is one JSONL line of the WAL.
type journalRecord struct {
	T      string    `json:"t"`
	ID     string    `json:"id"`
	TS     time.Time `json:"ts"`
	Client string    `json:"client,omitempty"`
	Spec   *JobSpec  `json:"spec,omitempty"`
	Status Status    `json:"status,omitempty"`
	Error  string    `json:"error,omitempty"`
	// Key identifies a shard within its job (shard records only);
	// Result is the shard's compact JSON result (recShardDone only —
	// it must hold no newlines, the WAL is line-oriented).
	Key    string          `json:"key,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// journal is the open WAL handle.
type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// openJournal opens (creating if needed) the WAL at path and returns
// the records already in it. A torn final line — the signature of a
// crash mid-append — is tolerated and dropped; a malformed line
// elsewhere fails the open, because silently skipping records would
// silently lose jobs.
func openJournal(path string) (*journal, []journalRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobsvc: open journal: %w", err)
	}
	var recs []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	lastOK := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r journalRecord
		if err := json.Unmarshal(line, &r); err != nil {
			if !lastOK {
				f.Close()
				return nil, nil, fmt.Errorf("jobsvc: corrupt journal %s: %v", path, err)
			}
			lastOK = false
			continue
		}
		if !lastOK {
			// A valid record after an invalid one means mid-file
			// corruption, not a torn tail.
			f.Close()
			return nil, nil, fmt.Errorf("jobsvc: corrupt journal %s: bad record before %q", path, r.ID)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobsvc: read journal: %w", err)
	}
	return &journal{path: path, f: f}, recs, nil
}

// append writes one record as a JSONL line; sync additionally fsyncs,
// making the record durable before return.
func (jl *journal) append(rec journalRecord, sync bool) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return fmt.Errorf("jobsvc: journal closed")
	}
	if _, err := jl.f.Write(b); err != nil {
		return err
	}
	if sync {
		return jl.f.Sync()
	}
	return nil
}

// rewrite atomically replaces the WAL with just the given records
// (compaction after replay): written to a temp file, fsynced, then
// renamed over the old journal so a crash mid-compaction leaves one of
// the two consistent versions, never a mix.
func (jl *journal) rewrite(recs []journalRecord) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	tmp := jl.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, jl.path); err != nil {
		os.Remove(tmp)
		return err
	}
	if jl.f != nil {
		jl.f.Close()
	}
	jl.f, err = os.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	return err
}

// close drops the file handle; subsequent appends fail.
func (jl *journal) close() {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
}
