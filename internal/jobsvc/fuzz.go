package jobsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"revnic/internal/cluster"
	"revnic/internal/difffuzz"
	"revnic/internal/drivers"
	"revnic/internal/template"
)

// This file is the "fuzz" job kind: a JobSpec with Fuzz set runs the
// differential fuzzer (internal/difffuzz) instead of the synthesis
// pipeline — the synthesized driver and the original binary execute
// side by side on seeded schedules and any behavioral divergence
// lands, minimized, in the job result and on /metrics. Fuzz jobs ride
// the whole service surface for free: queueing, deadlines,
// cancellation, journaled crash replay, and — in coordinator mode —
// cluster-sharded schedule batches with journaled shard results.

// FuzzSpec selects differential fuzzing for a job. JobSpec.Seed seeds
// the schedule stream, JobSpec.Workers bounds executor parallelism
// (never affecting results), JobSpec.Target picks the synthesized-side
// template OS, and JobSpec.DeadlineMS bounds the wall clock as for any
// job.
type FuzzSpec struct {
	// Device names the corpus driver to fuzz differentially.
	Device string `json:"device"`
	// Budget is the total number of schedules (0 = 256).
	Budget int `json:"budget,omitempty"`
	// MaxSteps bounds schedule length (0 = 12).
	MaxSteps int `json:"max_steps,omitempty"`
	// Plant injects a synthetic synthesis bug (difffuzz.PlantKinds)
	// into the synthesized side — the self-test mode.
	Plant string `json:"plant,omitempty"`
}

// validateFuzz checks the fuzz-specific spec fields at submission.
func validateFuzz(spec JobSpec) error {
	fz := spec.Fuzz
	if _, err := drivers.ByName(fz.Device); err != nil {
		return fmt.Errorf("jobsvc: fuzz: %w", err)
	}
	if !difffuzz.ValidPlant(fz.Plant) {
		return fmt.Errorf("jobsvc: fuzz: unknown plant kind %q (have %v)", fz.Plant, difffuzz.PlantKinds)
	}
	if fz.Budget < 0 {
		return fmt.Errorf("jobsvc: fuzz: negative budget %d", fz.Budget)
	}
	if fz.MaxSteps < 0 || fz.MaxSteps > 64 {
		return fmt.Errorf("jobsvc: fuzz: max_steps %d out of range [0, 64]", fz.MaxSteps)
	}
	return nil
}

// fuzzHarnessCache shares built harnesses across jobs and served
// shards: one reverse-engineering run per (device, OS, plant) per
// process, not per job. Harnesses are read-only after construction
// (every schedule runs on fresh rigs), so sharing is safe.
type fuzzHarnessCache struct {
	mu sync.Mutex
	m  map[string]*difffuzz.Harness
}

func (c *fuzzHarnessCache) get(device string, osKind template.OS, plant string) (*difffuzz.Harness, error) {
	key := device + "|" + string(osKind) + "|" + plant
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[string]*difffuzz.Harness{}
	}
	if h, ok := c.m[key]; ok {
		return h, nil
	}
	h, err := difffuzz.NewHarness(device, osKind, plant)
	if err != nil {
		return nil, err
	}
	c.m[key] = h
	return h, nil
}

// fuzzOS resolves the synthesized-side template OS for a fuzz spec.
func fuzzOS(spec JobSpec) template.OS {
	if spec.Target != "" {
		return template.OS(spec.Target)
	}
	return template.Windows
}

// runFuzzJob executes one fuzz job. It runs inside executeSpec's
// panic guard, so any fault in the fuzzer, the minimizer or the
// divergence path becomes a job failure with a stack in the record —
// never a daemon crash.
func (s *Service) runFuzzJob(j *job, deadline time.Time) (*JobResult, error) {
	fz := j.Spec.Fuzz
	osKind := fuzzOS(j.Spec)
	h, err := s.fuzzHarnesses.get(fz.Device, osKind, fz.Plant)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	stop := j.stop
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	cfg := difffuzz.Config{
		Device:   fz.Device,
		OS:       osKind,
		Seed:     j.Spec.Seed,
		Budget:   fz.Budget,
		MaxSteps: fz.MaxSteps,
		Workers:  j.Spec.Workers,
		Plant:    fz.Plant,
		Stop:     ctx.Done(),
	}
	if s.dispatcher != nil {
		fr := &fuzzShardRunner{s: s, j: j, ctx: ctx, workers: j.Spec.Workers, harness: h}
		cfg.RunBatch = fr.runBatch
	}
	rep, err := fuzzHook(h, cfg)
	if err != nil {
		return nil, err
	}

	res := &JobResult{
		Driver:           fz.Device,
		Strategy:         "difffuzz",
		FuzzSchedules:    rep.Schedules,
		FuzzCoverageKeys: rep.CoverageKeys,
		FuzzCorpus:       rep.CorpusSize,
		FuzzUnexplored:   rep.Unexplored,
		Divergences:      rep.Divergences,
		FuzzErrors:       rep.Errors,
	}
	if ctx.Err() != nil {
		select {
		case <-stop:
			res.Stopped = "cancelled"
		default:
			res.Stopped = "deadline"
		}
	}
	return res, nil
}

// fuzzHook is difffuzz.Fuzz behind a seam so tests can fault-inject
// the fuzzer (e.g. force a panic to exercise the failure record),
// mirroring runSpecHook.
var fuzzHook = difffuzz.Fuzz

// fuzzShard is the wire form of one dispatched schedule batch: the
// peer rebuilds the identical harness from the envelope's spec and
// executes the schedules, returning outcomes in input order.
type fuzzShard struct {
	Round     int                 `json:"round"`
	Schedules []difffuzz.Schedule `json:"schedules"`
}

// fuzzShardGroup is how many schedules one dispatched shard carries:
// big enough to amortize the HTTP round trip, small enough that a
// batch (16 schedules) fans out across peers.
const fuzzShardGroup = 4

// fuzzShardRunner adapts the cluster dispatcher to difffuzz's
// RunBatch seam, mirroring shardRunner.RunShardQueue: schedule groups
// enter the capacity-aware work queue, journal-replayed groups are
// pre-filled, settled groups are journaled for crash replay, and the
// merged outcome order is the batch order — so a clustered fuzz job
// reports bit-identically to a single-node run of the same spec.
type fuzzShardRunner struct {
	s       *Service
	j       *job
	ctx     context.Context
	workers int
	harness *difffuzz.Harness
}

// fuzzShardKey names one schedule group of one job. Schedule batches
// are regenerated deterministically on a re-run of the same spec, so
// the key is stable across coordinator restarts, exactly like
// exploration shard keys.
func fuzzShardKey(round, group int) string {
	return fmt.Sprintf("fuzz/%d/%d", round, group)
}

func (r *fuzzShardRunner) runBatch(round int, batch []difffuzz.Schedule) ([]difffuzz.Outcome, error) {
	outs := make([]difffuzz.Outcome, len(batch))
	var deadlineMS int64
	if dl, ok := r.ctx.Deadline(); ok {
		deadlineMS = time.Until(dl).Milliseconds()
		if deadlineMS < 1 {
			deadlineMS = 1
		}
	}
	var items []cluster.QueueItem
	var spans [][2]int // queue position → [start, end) in batch
	for start := 0; start < len(batch); start += fuzzShardGroup {
		end := min(start+fuzzShardGroup, len(batch))
		key := fuzzShardKey(round, start/fuzzShardGroup)
		if raw, ok := r.j.shardCache[key]; ok {
			var cached []difffuzz.Outcome
			if err := json.Unmarshal(raw, &cached); err == nil && len(cached) == end-start {
				r.s.m.shardsReplayed.Add(1)
				copy(outs[start:end], cached)
				continue
			}
			// An unreadable cached result is re-executed, never trusted.
		}
		group := batch[start:end]
		payload, err := json.Marshal(shardEnvelope{
			Spec: r.j.Spec, Fuzz: &fuzzShard{Round: round, Schedules: group}, DeadlineMS: deadlineMS,
		})
		if err != nil {
			return nil, err
		}
		r.s.journalAppend(journalRecord{
			T: recShardDispatched, ID: r.j.ID, TS: time.Now(), Key: key,
		}, false)
		items = append(items, cluster.QueueItem{
			Key:     r.j.ID + "/" + key,
			Payload: payload,
			Accept:  acceptFuzzOutcomes(len(group)),
			Local: func() ([]byte, error) {
				return json.Marshal(difffuzz.RunBatch(r.harness, group, r.workers))
			},
			OnDone: func(body []byte) {
				var res []difffuzz.Outcome
				if err := json.Unmarshal(body, &res); err != nil {
					return
				}
				if compact, err := json.Marshal(res); err == nil {
					r.s.journalAppend(journalRecord{
						T: recShardDone, ID: r.j.ID, TS: time.Now(), Key: key, Result: compact,
					}, false)
				}
			},
		})
		spans = append(spans, [2]int{start, end})
	}
	if len(items) == 0 {
		return outs, nil
	}
	bodies, err := r.s.dispatcher.RunQueue(r.ctx, items)
	if err != nil {
		return nil, err
	}
	for qi, body := range bodies {
		var res []difffuzz.Outcome
		if err := json.Unmarshal(body, &res); err != nil {
			return nil, fmt.Errorf("jobsvc: fuzz shard %s: decode outcomes: %w", items[qi].Key, err)
		}
		copy(outs[spans[qi][0]:spans[qi][1]], res)
	}
	return outs, nil
}

// acceptFuzzOutcomes validates a peer's fuzz-shard response before
// the dispatcher trusts it: it must decode to exactly one outcome per
// dispatched schedule.
func acceptFuzzOutcomes(n int) func([]byte) error {
	return func(body []byte) error {
		var res []difffuzz.Outcome
		if err := json.Unmarshal(body, &res); err != nil {
			return err
		}
		if len(res) != n {
			return fmt.Errorf("fuzz shard returned %d outcomes for %d schedules", len(res), n)
		}
		return nil
	}
}

// executeFuzzShard serves one schedule batch on behalf of a
// coordinator (the fuzz arm of POST /shards). The harness is cached
// per (device, OS, plant), so repeat shards of the same job skip the
// reverse-engineering run.
func (s *Service) executeFuzzShard(ctx context.Context, env shardEnvelope) (outs []difffuzz.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.jobPanics.Add(1)
			outs, err = nil, fmt.Errorf("jobsvc: fuzz shard panic: %v", r)
		}
	}()
	if env.Spec.Fuzz == nil {
		return nil, errors.New("jobsvc: fuzz shard envelope without fuzz spec")
	}
	if len(env.Fuzz.Schedules) == 0 {
		return nil, errors.New("jobsvc: fuzz shard has no schedules")
	}
	h, err := s.fuzzHarnesses.get(env.Spec.Fuzz.Device, fuzzOS(env.Spec), env.Spec.Fuzz.Plant)
	if err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	default:
	}
	return difffuzz.RunBatch(h, env.Fuzz.Schedules, env.Spec.Workers), nil
}
