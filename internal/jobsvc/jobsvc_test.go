package jobsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/expr"
	"revnic/internal/solver"
	"revnic/internal/symexec"
)

// directRun executes the pipeline the way cmd/revnic does — default
// (process-global) arena — for result comparison against service jobs.
func directRun(t *testing.T, driver string, seed int64) *core.Reversed {
	t.Helper()
	info, err := drivers.ByName(driver)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell:      core.ShellConfig(info),
		DriverName: info.Name,
		Engine:     symexec.Config{Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rev
}

func postJob(t *testing.T, url string, spec JobSpec) Job {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func pollJob(t *testing.T, url, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == StatusSucceeded || j.Status == StatusFailed {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return Job{}
}

// TestConcurrentJobsBitIdenticalToDirectRuns is the acceptance
// criterion end to end: N jobs submitted concurrently over HTTP
// complete with results bit-identical to direct cmd/revnic-style runs
// of the same driver/seed — and none of them grow the process-global
// intern table, because every job explored inside its own arena.
func TestConcurrentJobsBitIdenticalToDirectRuns(t *testing.T) {
	specs := []JobSpec{
		{Driver: "RTL8029", Seed: 3},
		{Driver: "SMSC 91C111", Seed: 3},
		{Driver: "RTL8029", Seed: 3}, // duplicate: identical jobs must agree
		{Driver: "AMD PCNet", Seed: 9},
	}
	// Direct reference runs first (default arena): the service must
	// reproduce these bit for bit from private arenas.
	want := map[int]*core.Reversed{}
	for i, spec := range specs {
		want[i] = directRun(t, spec.Driver, spec.Seed)
	}

	globalBefore := expr.InternedNodes()
	svc := New(Config{Pool: len(specs)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			ids[i] = postJob(t, ts.URL, spec).ID
		}(i, spec)
	}
	wg.Wait()
	for i := range specs {
		j := pollJob(t, ts.URL, ids[i])
		if j.Status != StatusSucceeded {
			t.Fatalf("job %s failed: %s", j.ID, j.Error)
		}
		res, rev := j.Result, want[i]
		exp := rev.Exploration
		if res.Code != rev.Synth.Code {
			t.Errorf("job %d (%s): synthesized code differs from direct run", i, specs[i].Driver)
		}
		if res.Coverage != rev.Coverage() {
			t.Errorf("job %d: coverage %v != direct %v", i, res.Coverage, rev.Coverage())
		}
		if res.CoveredBlocks != exp.Collector.CoveredBlocks() ||
			res.ExecutedBlocks != exp.ExecutedBlocks ||
			res.Forks != exp.ForkCount ||
			res.KilledLoops != exp.KilledLoops ||
			res.SolverQueries != exp.SolverQueries {
			t.Errorf("job %d: exploration statistics differ from direct run:\n got %+v\nwant covered=%d executed=%d forks=%d killed=%d queries=%d",
				i, res, exp.Collector.CoveredBlocks(), exp.ExecutedBlocks, exp.ForkCount, exp.KilledLoops, exp.SolverQueries)
		}
		if res.ArenaNodes == 0 {
			t.Errorf("job %d: expected a populated private arena", i)
		}
	}
	if after := expr.InternedNodes(); after != globalBefore {
		t.Errorf("service jobs grew the global intern table: %d -> %d (arena isolation broken)", globalBefore, after)
	}
}

// TestJobsNeverShareInternedNodes runs the same computation through
// two job-style arenas via the engine's own memory layer and checks
// the resulting DAGs are structurally equal but fully disjoint — what
// makes dropping one job's arena safe while another job still runs.
func TestJobsNeverShareInternedNodes(t *testing.T) {
	build := func(ar *expr.Arena) *expr.Expr {
		m := symexec.NewMemoryArena(make([]byte, 64), ar)
		// A symbolic hardware byte under concrete neighbors, read back
		// as a 32-bit value: the composite Read expression goes through
		// the arena's Concat/Zext/Trunc constructors.
		m.SetByte(1, ar.S("hw_1", 8))
		v := m.Read(0, 4)
		return ar.Add(v, ar.C(0x1000, 32))
	}
	ar1, ar2 := expr.NewArena(), expr.NewArena()
	e1, e2 := build(ar1), build(ar2)
	if !expr.Equal(e1, e2) {
		t.Fatal("identical computations must be structurally equal across arenas")
	}
	var walk func(a, b *expr.Expr)
	walk = func(a, b *expr.Expr) {
		if a == nil || b == nil {
			return
		}
		// Shared small constants are the one sanctioned overlap.
		if a == b && !(a.Kind == expr.KConst && a.Val < 256) {
			t.Fatalf("arenas share node %v", a)
		}
		walk(a.A, b.A)
		walk(a.B, b.B)
		walk(a.C, b.C)
	}
	walk(e1, e2)
	if ar1.InternedNodes() == 0 || ar2.InternedNodes() == 0 {
		t.Fatal("both arenas should hold nodes")
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := New(Config{Pool: 1})
	defer svc.Drain(context.Background())
	cases := []JobSpec{
		{}, // neither driver nor program
		{Driver: "RTL8029", Program: &ProgramSpec{Code: []byte{1}}}, // both
		{Driver: "no-such-chip"},
		{Driver: "RTL8029", Strategy: "best-first"},
		{Driver: "RTL8029", Target: "plan9"},
		{Driver: "RTL8029", SolverBackend: "z3"},
		{Program: &ProgramSpec{}}, // empty code
		// Image past the end of guest RAM: must be rejected up front,
		// not crash a runner mid-pipeline.
		{Program: &ProgramSpec{Base: 1 << 21, Code: []byte{1, 2, 3, 4}}},
		{Program: &ProgramSpec{Base: (1 << 20) - 2, Code: []byte{1, 2, 3, 4}}},
	}
	for i, spec := range cases {
		if _, err := svc.Submit(spec); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestSolverBackendJobParity pins the service-level guarantee behind
// the -solver/-portfolio knobs: the same spec run under the core
// default, with solver_backend=portfolio in the spec, and under a
// service whose DefaultSolverBackend is portfolio (spec left empty)
// yields bit-identical JobResults — code, coverage, every solver
// counter. It also checks the service default is normalized into the
// stored spec at submission, which is what journal replay and cluster
// shard dispatch rely on.
func TestSolverBackendJobParity(t *testing.T) {
	run := func(svcCfg Config, spec JobSpec) Job {
		svc := New(svcCfg)
		defer svc.Drain(context.Background())
		j, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		done, err := svc.Wait(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if done.Status != StatusSucceeded {
			t.Fatalf("job failed: %s", done.Error)
		}
		return done
	}
	base := run(Config{Pool: 1}, JobSpec{Driver: "RTL8029", Seed: 3})
	viaSpec := run(Config{Pool: 1},
		JobSpec{Driver: "RTL8029", Seed: 3, SolverBackend: solver.BackendPortfolio})
	viaDefault := run(Config{Pool: 1, DefaultSolverBackend: solver.BackendPortfolio},
		JobSpec{Driver: "RTL8029", Seed: 3})
	if viaDefault.Spec.SolverBackend != solver.BackendPortfolio {
		t.Fatalf("service default not normalized into the spec: %q", viaDefault.Spec.SolverBackend)
	}
	if !reflect.DeepEqual(base.Result, viaSpec.Result) {
		t.Fatalf("portfolio spec result diverged from default:\n got %+v\nwant %+v", viaSpec.Result, base.Result)
	}
	if !reflect.DeepEqual(base.Result, viaDefault.Result) {
		t.Fatalf("service-default portfolio result diverged from default:\n got %+v\nwant %+v", viaDefault.Result, base.Result)
	}
}

func TestDrainRejectsAndFinishes(t *testing.T) {
	svc := New(Config{Pool: 1})
	j, err := svc.Submit(JobSpec{Driver: "RTL8029", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := svc.Submit(JobSpec{Driver: "RTL8029"}); err != ErrDraining {
		t.Fatalf("submit after drain: got %v, want ErrDraining", err)
	}
	done, _ := svc.Get(j.ID)
	if done.Status != StatusSucceeded {
		t.Fatalf("queued job must finish during drain; got %s (%s)", done.Status, done.Error)
	}
}

func TestHTTPSurface(t *testing.T) {
	svc := New(Config{Pool: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	j := postJob(t, ts.URL, JobSpec{Driver: "RTL8029", Seed: 5, Target: "linux"})
	final := pollJob(t, ts.URL, j.ID)
	if final.Status != StatusSucceeded {
		t.Fatalf("job failed: %s", final.Error)
	}
	if final.Result.Code == "" || !strings.Contains(final.Result.Code, "linux") {
		t.Error("expected template-instantiated code for target linux")
	}

	resp, err := http.Get(ts.URL + "/jobs/" + j.ID + "/code")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(code) != final.Result.Code {
		t.Error("/code endpoint must serve the result source verbatim")
	}

	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Job
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("list: got %+v", list)
	}
	if list[0].Result != nil && list[0].Result.Code != "" {
		t.Error("listing must elide the synthesized source")
	}

	if resp, _ = http.Get(ts.URL + "/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"revnicd_jobs_submitted_total 1",
		`revnicd_jobs_completed_total{status="succeeded"} 1`,
		"revnicd_arena_nodes_reclaimed_total",
		"revnicd_job_duration_seconds_count 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	if resp, _ = http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestUploadedProgramJob(t *testing.T) {
	// An uploaded image must run through the same pipeline as the
	// bundled inventory entry it was copied from.
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Pool: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	j := postJob(t, ts.URL, JobSpec{
		Program: &ProgramSpec{
			Name: "uploaded-8029",
			Base: info.Program.Base,
			Code: info.Program.Code,
			Shell: ShellSpec{
				VendorID: info.VendorID, DeviceID: info.DeviceID,
				IOBase: 0xC000, IOSize: 0x100, IRQLine: 11,
			},
		},
		Seed: 3,
	})
	final := pollJob(t, ts.URL, j.ID)
	if final.Status != StatusSucceeded {
		t.Fatalf("uploaded job failed: %s", final.Error)
	}
	rev := directRun(t, "RTL8029", 3)
	// Code embeds the driver name; compare with the name swapped in.
	wantCode := strings.ReplaceAll(rev.Synth.Code, "RTL8029", "uploaded-8029")
	if final.Result.Code != wantCode {
		t.Error("uploaded image synthesized code differs from the bundled driver's")
	}
	if final.Result.CoveredBlocks != rev.Exploration.Collector.CoveredBlocks() {
		t.Errorf("uploaded covered %d blocks, bundled %d", final.Result.CoveredBlocks, rev.Exploration.Collector.CoveredBlocks())
	}
	if final.Result.ExecutedBlocks != rev.Exploration.ExecutedBlocks {
		t.Errorf("uploaded executed %d, bundled %d", final.Result.ExecutedBlocks, rev.Exploration.ExecutedBlocks)
	}
}

func TestQueueBound(t *testing.T) {
	// A full queue rejects with ErrBusy instead of blocking the
	// submitter; use an impossible pool=1/queue=1 squeeze with slow
	// jobs to hit it deterministically... jobs here are fast, so pile
	// enough on to overflow the one-slot queue while the runner works.
	svc := New(Config{Pool: 1, QueueDepth: 1})
	sawBusy := false
	for i := 0; i < 50 && !sawBusy; i++ {
		_, err := svc.Submit(JobSpec{Driver: "RTL8029", Seed: int64(i)})
		if err == ErrBusy {
			sawBusy = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawBusy {
		t.Skip("queue never filled (runner outpaced submissions)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
