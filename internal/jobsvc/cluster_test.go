package jobsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"revnic/internal/cluster"
	"revnic/internal/symexec"
)

// clusterSpec is a job whose exploration produces multiple fork-join
// shard groups, so coordinator dispatch actually has work to fan out.
func clusterSpec() JobSpec {
	return JobSpec{Driver: "RTL8029", Seed: 11, Workers: 2}
}

// sameResult compares two job results field by field except
// ArenaNodes: a coordinator's arena never interns the intermediate
// expressions remote shards allocate on their peers, so that gauge is
// mode-dependent by design. Everything the paper's pipeline actually
// produces — coverage, counters, synthesized code — must match.
func sameResult(t *testing.T, got, want *JobResult, mode string) {
	t.Helper()
	g, w := *got, *want
	g.ArenaNodes, w.ArenaNodes = 0, 0
	gb, _ := json.Marshal(g)
	wb, _ := json.Marshal(w)
	if !bytes.Equal(gb, wb) {
		t.Errorf("%s: result diverged from single-node run\n got: %s\nwant: %s", mode, gb, wb)
	}
}

// forwardingFaults builds a fault transport whose healthy path is the
// real HTTP shard endpoint — faults are injected at the network layer
// in front of live peers.
func forwardingFaults() *cluster.FaultTransport {
	ht := &cluster.HTTPTransport{Path: "/shards", ProbePath: "/healthz"}
	return cluster.NewFaultTransport(func(peer string, body []byte) (*cluster.Response, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return ht.Send(ctx, peer, body)
	})
}

func coordinatorConfig(peers []string, ft *cluster.FaultTransport) Config {
	return Config{
		Pool:        1,
		Coordinator: true,
		Cluster: cluster.Config{
			Peers:          peers,
			Transport:      ft,
			AttemptTimeout: 20 * time.Second,
			MaxAttempts:    3,
			BackoffBase:    time.Millisecond,
			BackoffCap:     10 * time.Millisecond,
			HedgeDelay:     300 * time.Millisecond,
			Seed:           7,
			Breaker:        cluster.BreakerConfig{Window: 8, MinSamples: 4, FailureThreshold: 0.5, OpenFor: 50 * time.Millisecond},
		},
	}
}

// TestCoordinatorBitIdenticalUnderFaults is the tentpole acceptance
// criterion: a coordinator run against two live peers — with dropped
// connections, one peer dying mid-job and the other straggling —
// completes and produces the same result as a single-node run of the
// identical spec.
func TestCoordinatorBitIdenticalUnderFaults(t *testing.T) {
	spec := clusterSpec()
	want, err := runSpec(spec, nil, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	peer1 := New(Config{Pool: 1, ShardPool: 8})
	ts1 := httptest.NewServer(peer1.Handler())
	defer ts1.Close()
	peer2 := New(Config{Pool: 1, ShardPool: 8})
	ts2 := httptest.NewServer(peer2.Handler())
	defer ts2.Close()

	ft := forwardingFaults()
	// peer1: first request's connection drops, the second one kills
	// the peer for the rest of the job. peer2: one straggling request
	// (slow enough to trigger a hedge), healthy afterwards.
	ft.Script(ts1.URL, cluster.Fault{Drop: true}, cluster.Fault{Die: true})
	ft.Script(ts2.URL, cluster.Fault{Latency: 400 * time.Millisecond})

	coord := New(coordinatorConfig([]string{ts1.URL, ts2.URL}, ft))
	defer drainWithin(t, coord, 60*time.Second)
	j, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	done, err := coord.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusSucceeded {
		t.Fatalf("coordinator job: %s (%s)", done.Status, done.Error)
	}
	sameResult(t, done.Result, want, "faulted cluster")

	snap, ok := coord.ClusterSnapshot()
	if !ok {
		t.Fatal("coordinator has no cluster snapshot")
	}
	var attempts int64
	for _, p := range snap.Peers {
		attempts += p.Attempts
	}
	if attempts == 0 {
		t.Fatal("no remote attempts recorded: the job never touched the cluster")
	}
}

// TestCoordinatorAllPeersDownFallsBack: with every peer dead from the
// start, the job still succeeds through the guaranteed local
// fallback, the fallback counter records it, and the result is
// unchanged.
func TestCoordinatorAllPeersDownFallsBack(t *testing.T) {
	spec := clusterSpec()
	want, err := runSpec(spec, nil, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ft := forwardingFaults()
	ft.Kill("http://127.0.0.1:1")
	ft.Kill("http://127.0.0.1:2")
	cfg := coordinatorConfig([]string{"http://127.0.0.1:1", "http://127.0.0.1:2"}, ft)
	cfg.Cluster.HedgeDelay = 0
	coord := New(cfg)
	defer drainWithin(t, coord, 60*time.Second)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	j, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	done, err := coord.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusSucceeded {
		t.Fatalf("job with all peers down: %s (%s)", done.Status, done.Error)
	}
	sameResult(t, done.Result, want, "all-peers-down")
	snap, _ := coord.ClusterSnapshot()
	// The work queue records local execution either as a fallback
	// (remote attempts exhausted) or a local pull (the local capacity
	// slot claimed the shard first); either way it must be observable.
	if snap.Fallbacks+snap.LocalPulls == 0 {
		t.Fatal("no local executions recorded though every peer was dead")
	}
	// The ops runbook watches these through /metrics; make sure the
	// exposition carries them.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := copyBody(&sb, resp); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"revnicd_cluster_fallbacks_total",
		"revnicd_cluster_attempts_total",
		"revnicd_cluster_breaker_state",
		"revnicd_job_panics_total",
		"revnicd_shards_rejected_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}
}

func copyBody(sb *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 32<<10)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// TestCoordinatorJournalShardReplay: a coordinator crash mid-job must
// not discard the shards already collected. The journal's shard_done
// records are pre-seeded on replay, the re-run re-dispatches only the
// stripped shard, and the final result is identical.
func TestCoordinatorJournalShardReplay(t *testing.T) {
	dir := t.TempDir()
	spec := clusterSpec()
	cfg := Config{Pool: 1, Coordinator: true, DataDir: dir}
	svc1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	done1, err := svc1.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done1.Status != StatusSucceeded {
		t.Fatalf("first run: %s (%s)", done1.Status, done1.Error)
	}
	svc1.crash()

	// Rewrite the journal to what a crash just before completion
	// would have left: drop the finished record, and drop one
	// shard_done record so the resumed run must re-execute that shard.
	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	shardDone, dropped := 0, false
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		switch {
		case strings.Contains(line, `"t":"finished"`):
			continue
		case strings.Contains(line, `"t":"shard_done"`):
			shardDone++
			if !dropped {
				dropped = true
				continue
			}
		}
		kept = append(kept, line)
	}
	if shardDone < 2 {
		t.Fatalf("only %d shard_done records journaled; the spec must fan out more", shardDone)
	}
	if err := os.WriteFile(path, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainWithin(t, svc2, 60*time.Second)
	if got := svc2.m.replayedResumed.Load(); got != 1 {
		t.Fatalf("replayedResumed = %d, want 1", got)
	}
	done2, err := svc2.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done2.Status != StatusSucceeded {
		t.Fatalf("resumed run: %s (%s)", done2.Status, done2.Error)
	}
	sameResult(t, done2.Result, done1.Result, "journal resume")
	if got := svc2.m.shardsReplayed.Load(); got != int64(shardDone-1) {
		t.Errorf("shardsReplayed = %d, want %d (all collected shards reused)", got, shardDone-1)
	}
}

// TestShardEndpointRejectsWhenFull (admission control): a peer whose
// shard pool is saturated answers 503 with a Retry-After estimate —
// the dispatcher's overload signal — and returns to serving once a
// slot frees.
func TestShardEndpointRejectsWhenFull(t *testing.T) {
	svc := New(Config{Pool: 1, ShardPool: 1})
	defer drainWithin(t, svc, 30*time.Second)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	svc.shardSem <- struct{}{} // saturate the only slot
	resp, err := http.Post(ts.URL+"/shards", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full shard pool: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	if got := svc.m.shardsRejected.Load(); got != 1 {
		t.Fatalf("shardsRejected = %d, want 1", got)
	}
	<-svc.shardSem
	// With capacity back, the same malformed body is a 400 — request
	// validation, not overload.
	resp, err = http.Post(ts.URL+"/shards", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("freed shard pool: status %d, want 400", resp.StatusCode)
	}
}

// TestPipelinePanicBecomesJobFailure (robustness): a panic anywhere
// in the pipeline fails the job — with the panic value and a trimmed
// stack in the failure record, and the panic counter bumped — while
// the daemon keeps serving.
func TestPipelinePanicBecomesJobFailure(t *testing.T) {
	old := runSpecHook
	runSpecHook = func(JobSpec, <-chan struct{}, time.Time, symexec.ShardRunner) (*JobResult, error) {
		panic("boom 42")
	}
	svc := New(Config{Pool: 1})
	defer func() {
		runSpecHook = old
		drainWithin(t, svc, 30*time.Second)
	}()
	j, err := svc.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusFailed {
		t.Fatalf("panicking job: status %s, want failed", done.Status)
	}
	if !strings.Contains(done.Error, "boom 42") {
		t.Errorf("failure record lost the panic value: %q", done.Error)
	}
	if !strings.Contains(done.Error, "goroutine") {
		t.Errorf("failure record has no stack trace: %q", done.Error)
	}
	if lines := strings.Count(done.Error, "\n"); lines > 20 {
		t.Errorf("stack not trimmed: %d lines", lines)
	}
	if got := svc.m.jobPanics.Load(); got != 1 {
		t.Fatalf("jobPanics = %d, want 1", got)
	}
	// The daemon survived: the next job runs normally.
	runSpecHook = old
	k, err := svc.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	kd, err := svc.Wait(ctx, k.ID)
	if err != nil {
		t.Fatal(err)
	}
	if kd.Status != StatusSucceeded {
		t.Fatalf("job after panic: %s (%s)", kd.Status, kd.Error)
	}
}

// TestCoordinatorStealingBitIdentical pins the scheduling/merging
// separation under the work queue: one chronically slow peer forces
// straggler re-dispatch (first-completion-wins), and the result must
// still match a single-node run of the identical spec — including an
// explicit shard factor, which is part of the schedule and must agree
// across modes. The snapshot must show at least one steal, proving
// the rescue path (not just peer-side timeouts) produced the result.
func TestCoordinatorStealingBitIdentical(t *testing.T) {
	spec := clusterSpec()
	spec.ShardFactor = 2
	want, err := runSpec(spec, nil, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	fast := New(Config{Pool: 1, ShardPool: 8})
	tsFast := httptest.NewServer(fast.Handler())
	defer tsFast.Close()
	slow := New(Config{Pool: 1, ShardPool: 8})
	tsSlow := httptest.NewServer(slow.Handler())
	defer tsSlow.Close()

	ft := forwardingFaults()
	// Chronic transport latency, not a scripted one-shot: every request
	// to the slow peer crosses a 600ms link, so any shard it claims
	// becomes a straggler well past the 100ms steal threshold below.
	ft.SetLatency(tsSlow.URL, 600*time.Millisecond)

	cfg := coordinatorConfig([]string{tsFast.URL, tsSlow.URL}, ft)
	cfg.Cluster.StealAfterMin = 100 * time.Millisecond
	cfg.Cluster.StealInterval = 5 * time.Millisecond
	// The slow peer still succeeds, so the breaker must stay out of the
	// way — this test is about stealing, not failure accrual.
	cfg.Cluster.Breaker = cluster.BreakerConfig{Window: 8, MinSamples: 100}
	coord := New(cfg)
	defer drainWithin(t, coord, 60*time.Second)

	j, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	done, err := coord.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusSucceeded {
		t.Fatalf("coordinator job with straggler: %s (%s)", done.Status, done.Error)
	}
	sameResult(t, done.Result, want, "straggler+steal")
	if done.Result.ShardsEffective < 1 {
		t.Errorf("coordinator result lost ShardsEffective (= %d)", done.Result.ShardsEffective)
	}
	snap, ok := coord.ClusterSnapshot()
	if !ok {
		t.Fatal("coordinator has no cluster snapshot")
	}
	if snap.Steals == 0 {
		t.Errorf("no steals recorded against a 600ms straggler (snapshot: %+v)", snap)
	}
}

// TestCoordinatorStealOffBitIdentical: disabling stealing changes only
// the schedule's placement, never its content — a healthy cluster with
// DisableStealing produces the same result as single-node.
func TestCoordinatorStealOffBitIdentical(t *testing.T) {
	spec := clusterSpec()
	spec.ShardFactor = 2
	want, err := runSpec(spec, nil, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	peer1 := New(Config{Pool: 1, ShardPool: 8})
	ts1 := httptest.NewServer(peer1.Handler())
	defer ts1.Close()
	peer2 := New(Config{Pool: 1, ShardPool: 8})
	ts2 := httptest.NewServer(peer2.Handler())
	defer ts2.Close()

	cfg := coordinatorConfig([]string{ts1.URL, ts2.URL}, forwardingFaults())
	cfg.Cluster.DisableStealing = true
	coord := New(cfg)
	defer drainWithin(t, coord, 60*time.Second)

	j, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	done, err := coord.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusSucceeded {
		t.Fatalf("coordinator job with stealing off: %s (%s)", done.Status, done.Error)
	}
	sameResult(t, done.Result, want, "steal-off")
	snap, ok := coord.ClusterSnapshot()
	if !ok {
		t.Fatal("coordinator has no cluster snapshot")
	}
	if snap.Steals != 0 {
		t.Errorf("DisableStealing recorded %d steals", snap.Steals)
	}
}
