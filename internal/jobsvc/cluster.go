package jobsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"revnic/internal/cluster"
	"revnic/internal/expr"
	"revnic/internal/symexec"
)

// This file is revnicd's coordinator mode: with Config.Coordinator
// set, a job's deterministic fork-join shard groups are serialized
// and fanned out to peer revnicd instances through the fault-tolerant
// cluster.Dispatcher (POST /shards on the peer side), and the merged
// summary is bit-identical to a single-node run of the same spec —
// the shard decomposition, task identities and merge order are pure
// functions of the spec, and shard execution itself is idempotent, so
// retries, hedges and local fallbacks cannot change the result. The
// one exception is arena_nodes: a coordinator's arena never interns
// the intermediate expressions remote shards allocate on their own
// peers, so that gauge of allocator load is mode-dependent by nature.

// shardEnvelope is the wire form of one dispatched shard: the job
// spec (a peer rebuilds the identical engine configuration from it,
// including uploaded program images) plus the self-contained task.
type shardEnvelope struct {
	Spec JobSpec            `json:"spec"`
	Task *symexec.ShardTask `json:"task,omitempty"`
	// Fuzz carries a differential-fuzzing schedule batch instead of
	// an exploration task; exactly one of Task/Fuzz is set.
	Fuzz *fuzzShard `json:"fuzz,omitempty"`
	// DeadlineMS is the coordinator job's remaining wall budget in
	// milliseconds; the peer bounds the shard execution with it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// shardKey names one shard of one job: tasks are regenerated
// deterministically on a re-run of the same spec, so the key is
// stable across coordinator restarts — which is what lets journal
// replay match collected results to re-dispatched shards.
func shardKey(task *symexec.ShardTask) string {
	return fmt.Sprintf("%s/%d/%d", task.Phase, task.Seq, task.Index)
}

// shardRunner adapts the cluster dispatcher to symexec.ShardRunner
// for one job: it serializes tasks, consults the journal-replayed
// shard cache, dispatches with retries/hedging/breakers, journals
// dispatch and completion, and deserializes results.
type shardRunner struct {
	s   *Service
	j   *job
	ctx context.Context
}

func (r *shardRunner) RunShard(task *symexec.ShardTask, local func() (*symexec.ShardResult, error)) (*symexec.ShardResult, error) {
	key := shardKey(task)
	if raw, ok := r.j.shardCache[key]; ok {
		// Journal replay already holds this shard's result from the
		// previous incarnation; reuse it instead of re-dispatching.
		var res symexec.ShardResult
		if err := json.Unmarshal(raw, &res); err == nil {
			r.s.m.shardsReplayed.Add(1)
			return &res, nil
		}
		// An unreadable cached result is re-executed, never trusted.
	}
	env := shardEnvelope{Spec: r.j.Spec, Task: task}
	if dl, ok := r.ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		env.DeadlineMS = ms
	}
	payload, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	r.s.journalAppend(journalRecord{
		T: recShardDispatched, ID: r.j.ID, TS: time.Now(), Key: key,
	}, false)
	body, err := r.s.dispatcher.Do(r.ctx, r.j.ID+"/"+key, payload, acceptShardResult,
		func() ([]byte, error) {
			res, err := local()
			if err != nil {
				return nil, err
			}
			return json.Marshal(res)
		})
	if err != nil {
		return nil, err
	}
	var res symexec.ShardResult
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("jobsvc: shard %s: decode result: %w", key, err)
	}
	// Journal the completed shard compactly (the body may be indented
	// JSON; the journal is line-oriented) so a coordinator crash after
	// this point replays with the shard already collected.
	if compact, err := json.Marshal(&res); err == nil {
		r.s.journalAppend(journalRecord{
			T: recShardDone, ID: r.j.ID, TS: time.Now(), Key: key, Result: compact,
		}, false)
	}
	return &res, nil
}

// RunShardQueue is the batch form the engine prefers: a whole phase's
// shard tasks enter the dispatcher's capacity-aware work queue at
// once, where idle peers pull them, dispatch is weighted by observed
// latency, and straggler shards are re-dispatched first-completion-
// wins. Journal-replayed shards are pre-filled and never re-enter the
// queue; each settling shard is journaled from the queue's OnDone
// callback, preserving crash-replay behavior. Scheduling only decides
// where and when a shard runs — the returned results are in task
// order and the caller's seed-order merge is untouched.
func (r *shardRunner) RunShardQueue(tasks []*symexec.ShardTask, local func(*symexec.ShardTask) (*symexec.ShardResult, error)) ([]*symexec.ShardResult, error) {
	results := make([]*symexec.ShardResult, len(tasks))
	var deadlineMS int64
	if dl, ok := r.ctx.Deadline(); ok {
		deadlineMS = time.Until(dl).Milliseconds()
		if deadlineMS < 1 {
			deadlineMS = 1
		}
	}
	items := make([]cluster.QueueItem, 0, len(tasks))
	idxs := make([]int, 0, len(tasks)) // queue position → task index
	for i, task := range tasks {
		key := shardKey(task)
		if raw, ok := r.j.shardCache[key]; ok {
			var res symexec.ShardResult
			if err := json.Unmarshal(raw, &res); err == nil {
				r.s.m.shardsReplayed.Add(1)
				results[i] = &res
				continue
			}
			// An unreadable cached result is re-executed, never trusted.
		}
		payload, err := json.Marshal(shardEnvelope{Spec: r.j.Spec, Task: task, DeadlineMS: deadlineMS})
		if err != nil {
			return nil, err
		}
		r.s.journalAppend(journalRecord{
			T: recShardDispatched, ID: r.j.ID, TS: time.Now(), Key: key,
		}, false)
		task := task
		items = append(items, cluster.QueueItem{
			Key:     r.j.ID + "/" + key,
			Payload: payload,
			Accept:  acceptShardResult,
			Local: func() ([]byte, error) {
				res, err := local(task)
				if err != nil {
					return nil, err
				}
				return json.Marshal(res)
			},
			OnDone: func(body []byte) {
				// Journal the completed shard compactly, exactly as the
				// per-shard path does, so a coordinator crash mid-phase
				// replays with the settled shards already collected.
				var res symexec.ShardResult
				if err := json.Unmarshal(body, &res); err != nil {
					return
				}
				if compact, err := json.Marshal(&res); err == nil {
					r.s.journalAppend(journalRecord{
						T: recShardDone, ID: r.j.ID, TS: time.Now(), Key: key, Result: compact,
					}, false)
				}
			},
		})
		idxs = append(idxs, i)
	}
	if len(items) == 0 {
		return results, nil
	}
	bodies, err := r.s.dispatcher.RunQueue(r.ctx, items)
	if err != nil {
		return nil, err
	}
	for qi, body := range bodies {
		var res symexec.ShardResult
		if err := json.Unmarshal(body, &res); err != nil {
			return nil, fmt.Errorf("jobsvc: shard %s: decode result: %w", items[qi].Key, err)
		}
		results[idxs[qi]] = &res
	}
	return results, nil
}

// staticRunner exposes only the per-shard RunShard method, hiding the
// batch queue interface: the engine then falls back to hash-selected
// per-shard dispatch — the pre-queue scheduler, kept for A/B
// benchmarking (Config.StaticDispatch).
type staticRunner struct{ r *shardRunner }

func (s staticRunner) RunShard(task *symexec.ShardTask, local func() (*symexec.ShardResult, error)) (*symexec.ShardResult, error) {
	return s.r.RunShard(task, local)
}

// acceptShardResult validates a peer's response body before the
// dispatcher trusts it: a torn or truncated body fails the unmarshal
// and is retried like any other peer failure, and a structurally
// empty result (no collector) is rejected rather than merged.
func acceptShardResult(body []byte) error {
	var res symexec.ShardResult
	if err := json.Unmarshal(body, &res); err != nil {
		return err
	}
	if res.Collector == nil {
		return errors.New("shard result has no collector")
	}
	return nil
}

// executeSpec runs the full pipeline for one job, fanning shard
// groups out to the cluster when coordinator mode is on. A panic
// anywhere in the pipeline fails the job, not the daemon; the failure
// record carries the panic value and a trimmed stack so the operator
// can diagnose it from GET /jobs/{id} alone.
func (s *Service) executeSpec(j *job, deadline time.Time) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.jobPanics.Add(1)
			res, err = nil, fmt.Errorf("jobsvc: pipeline panic: %v\n%s", r, trimStack(debug.Stack()))
		}
	}()
	if j.Spec.Fuzz != nil {
		// Differential fuzzing rides the same panic guard: a fault in
		// the fuzzer or minimizer fails the job, not the runner pool.
		return s.runFuzzJob(j, deadline)
	}
	var runner symexec.ShardRunner
	if s.dispatcher != nil {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if !deadline.IsZero() {
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
		}
		stop := j.stop
		go func() {
			select {
			case <-stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		sr := &shardRunner{s: s, j: j, ctx: ctx}
		if s.cfg.StaticDispatch {
			runner = staticRunner{sr}
		} else {
			runner = sr
		}
	}
	return runSpecHook(j.Spec, j.stop, deadline, runner)
}

// runSpecHook is runSpec behind a seam so tests can fault-inject the
// pipeline (e.g. force a panic to exercise the failure record).
var runSpecHook = runSpec

// trimStack keeps the head of a panic stack trace: enough frames to
// locate the fault, small enough to store in a job record and ship in
// every status response.
func trimStack(stack []byte) []byte {
	const maxLines = 16
	lines := bytes.SplitAfterN(stack, []byte("\n"), maxLines+1)
	if len(lines) <= maxLines {
		return bytes.TrimRight(stack, "\n")
	}
	trimmed := bytes.Join(lines[:maxLines], nil)
	return append(bytes.TrimRight(trimmed, "\n"), []byte("\n\t...")...)
}

// handleShard serves POST /shards: the peer side of coordinator
// dispatch. Admission control mirrors job submission: a draining
// peer refuses outright, and a peer already serving its ShardPool
// limit answers 503 with a Retry-After estimate — the dispatcher
// treats that as overload (wait and retry), not failure.
func (s *Service) handleShard(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	select {
	case s.shardSem <- struct{}{}:
		defer func() { <-s.shardSem }()
	default:
		s.m.shardsRejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable,
			errors.New("jobsvc: shard capacity exhausted"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var env shardEnvelope
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode shard envelope: %w", err))
		return
	}
	if (env.Task == nil) == (env.Fuzz == nil) {
		writeError(w, http.StatusBadRequest, errors.New("jobsvc: shard envelope must carry exactly one of task or fuzz"))
		return
	}
	if err := validate(env.Spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if env.Fuzz != nil {
		outs, err := s.executeFuzzShard(r.Context(), env)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.m.shardsServed.Add(1)
		writeJSON(w, http.StatusOK, outs)
		return
	}
	res, err := s.executeShard(r.Context(), env)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.m.shardsServed.Add(1)
	writeJSON(w, http.StatusOK, res)
}

// executeShard runs one remote shard task on this node, in a fresh
// arena, bounded by the request context (a dispatcher that gave up —
// timeout, hedge won elsewhere, coordinator died — cancels it) and
// the envelope's remaining deadline.
func (s *Service) executeShard(ctx context.Context, env shardEnvelope) (res *symexec.ShardResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.jobPanics.Add(1)
			res, err = nil, fmt.Errorf("jobsvc: shard panic: %v\n%s", r, trimStack(debug.Stack()))
		}
	}()
	prog, shell, _, err := resolveProgram(env.Spec)
	if err != nil {
		return nil, err
	}
	cfg := engineConfig(env.Spec, expr.NewArena())
	cfg.Shell = shell
	cfg.Stop = ctx.Done()
	if env.DeadlineMS > 0 {
		cfg.Deadline = time.Now().Add(time.Duration(env.DeadlineMS) * time.Millisecond)
	}
	return symexec.ExecuteShardTask(prog, cfg, env.Task)
}

// ClusterSnapshot reports the dispatcher's per-peer counters and
// breaker states; ok is false when coordinator mode is off.
func (s *Service) ClusterSnapshot() (cluster.Snapshot, bool) {
	if s.dispatcher == nil {
		return cluster.Snapshot{}, false
	}
	return s.dispatcher.Snapshot(), true
}
