package jobsvc

import (
	"runtime"
	"testing"
	"time"
)

func TestArenaMemoryReclaimed(t *testing.T) {
	heap := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	run := func() {
		if _, err := runSpec(JobSpec{Driver: "RTL8029", Seed: 3}, nil, time.Time{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm caches, lazy init
	base := heap()
	for i := 0; i < 10; i++ {
		run()
	}
	after := heap()
	t.Logf("heap base %d KiB, after 10 jobs %d KiB", base/1024, after/1024)
	if after > base+base/2+1<<20 {
		t.Errorf("heap grew from %d to %d after jobs completed; arenas not reclaimed?", base, after)
	}
}
