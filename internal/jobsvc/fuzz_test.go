package jobsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"revnic/internal/difffuzz"
	"revnic/internal/template"
)

// TestFuzzJobFindsPlantedBug runs a differential-fuzz job against the
// block device with a planted synthesis bug over the HTTP surface:
// the job must succeed, carry minimized divergences in its result,
// and the divergence count must land on /metrics.
func TestFuzzJobFindsPlantedBug(t *testing.T) {
	svc := New(Config{Pool: 1})
	defer svc.Drain(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	j := postJob(t, srv.URL, JobSpec{
		Seed: 1,
		Fuzz: &FuzzSpec{Device: "SBLK100", Budget: 64, MaxSteps: 10, Plant: "send-port"},
	})
	j = pollJob(t, srv.URL, j.ID)
	if j.Status != StatusSucceeded {
		t.Fatalf("status %s: %s", j.Status, j.Error)
	}
	res := j.Result
	if res == nil || res.Strategy != "difffuzz" {
		t.Fatalf("result %+v", res)
	}
	if len(res.Divergences) == 0 {
		t.Fatalf("planted bug not reported: %d schedules", res.FuzzSchedules)
	}
	d := res.Divergences[0]
	if d.Minimized == nil || len(d.Minimized.Steps) > 10 {
		t.Errorf("divergence not minimized: %+v", d)
	}
	if res.FuzzSchedules == 0 || res.FuzzCoverageKeys == 0 {
		t.Errorf("fuzz stats empty: %+v", res)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metricsText, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"revnicd_fuzz_schedules_total " + itoa(res.FuzzSchedules),
		"revnicd_fuzz_divergences_total " + itoa(len(res.Divergences)),
		"revnicd_fuzz_unexplored_total",
	} {
		if !strings.Contains(string(metricsText), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestFuzzJobCleanDriver pins the no-false-positives side: a fuzz job
// on a correctly synthesized driver succeeds with zero divergences.
func TestFuzzJobCleanDriver(t *testing.T) {
	svc := New(Config{Pool: 1})
	defer svc.Drain(context.Background())

	j, err := svc.Submit(JobSpec{Seed: 3, Fuzz: &FuzzSpec{Device: "SBLK100", Budget: 32, MaxSteps: 8}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	j, err = svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusSucceeded {
		t.Fatalf("status %s: %s", j.Status, j.Error)
	}
	if len(j.Result.Divergences) != 0 {
		t.Errorf("false positives: %+v", j.Result.Divergences)
	}
	if len(j.Result.FuzzErrors) != 0 {
		t.Errorf("harness errors: %v", j.Result.FuzzErrors)
	}
}

// TestFuzzSpecValidation exercises the fuzz arm of admission-time
// validation.
func TestFuzzSpecValidation(t *testing.T) {
	svc := New(Config{Pool: 1})
	defer svc.Drain(context.Background())

	cases := []struct {
		name string
		spec JobSpec
	}{
		{"fuzz and driver both set", JobSpec{Driver: "RTL8029", Fuzz: &FuzzSpec{Device: "SBLK100"}}},
		{"unknown device", JobSpec{Fuzz: &FuzzSpec{Device: "NOPE"}}},
		{"unknown plant", JobSpec{Fuzz: &FuzzSpec{Device: "SBLK100", Plant: "gremlins"}}},
		{"negative budget", JobSpec{Fuzz: &FuzzSpec{Device: "SBLK100", Budget: -1}}},
		{"oversized steps", JobSpec{Fuzz: &FuzzSpec{Device: "SBLK100", MaxSteps: 65}}},
	}
	for _, tc := range cases {
		if _, err := svc.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The happy path still validates.
	if _, err := svc.Submit(JobSpec{Fuzz: &FuzzSpec{Device: "SBLK100", Budget: 1}}); err != nil {
		t.Errorf("valid fuzz spec rejected: %v", err)
	}
}

// TestFuzzPanicBecomesJobFailure is the fix this PR carries: a fault
// inside the fuzz path must convert to a failed job with context, and
// the runner pool must keep serving jobs afterwards.
func TestFuzzPanicBecomesJobFailure(t *testing.T) {
	orig := fuzzHook
	fuzzHook = func(h *difffuzz.Harness, cfg difffuzz.Config) (*difffuzz.Report, error) {
		panic("minimizer exploded")
	}
	defer func() { fuzzHook = orig }()

	svc := New(Config{Pool: 1})
	defer svc.Drain(context.Background())

	j, err := svc.Submit(JobSpec{Fuzz: &FuzzSpec{Device: "SBLK100", Budget: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	j, err = svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusFailed {
		t.Fatalf("status %s, want failed", j.Status)
	}
	if !strings.Contains(j.Error, "minimizer exploded") || !strings.Contains(j.Error, "panic") {
		t.Errorf("failure record lacks panic context: %q", j.Error)
	}

	// The pool survived: a subsequent (healthy) job completes.
	fuzzHook = orig
	j2, err := svc.Submit(JobSpec{Fuzz: &FuzzSpec{Device: "SBLK100", Budget: 4, MaxSteps: 4}})
	if err != nil {
		t.Fatal(err)
	}
	j2, err = svc.Wait(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Status != StatusSucceeded {
		t.Fatalf("follow-up job status %s: %s", j2.Status, j2.Error)
	}
}

// TestClusterFuzzJobBitIdentical runs the same fuzz spec single-node
// and coordinator-sharded across two live peers: the reports must be
// byte-identical — schedule sharding, like exploration sharding, may
// only change where work runs, never what it computes.
func TestClusterFuzzJobBitIdentical(t *testing.T) {
	spec := JobSpec{
		Seed:    21,
		Workers: 2,
		Fuzz:    &FuzzSpec{Device: "SBLK100", Budget: 48, MaxSteps: 8, Plant: "send-port"},
	}

	single := New(Config{Pool: 1})
	j, err := single.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	j, err = single.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	single.Drain(context.Background())
	if j.Status != StatusSucceeded {
		t.Fatalf("single-node status %s: %s", j.Status, j.Error)
	}
	want := j.Result

	peer1 := New(Config{Pool: 1, ShardPool: 4})
	defer peer1.Drain(context.Background())
	peer2 := New(Config{Pool: 1, ShardPool: 4})
	defer peer2.Drain(context.Background())
	srv1 := httptest.NewServer(peer1.Handler())
	defer srv1.Close()
	srv2 := httptest.NewServer(peer2.Handler())
	defer srv2.Close()

	coord := New(coordinatorConfig([]string{srv1.URL, srv2.URL}, forwardingFaults()))
	defer coord.Drain(context.Background())
	cj, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cj, err = coord.Wait(ctx, cj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cj.Status != StatusSucceeded {
		t.Fatalf("coordinator status %s: %s", cj.Status, cj.Error)
	}

	gb, _ := json.Marshal(cj.Result)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Errorf("clustered fuzz result diverged from single-node run\n got: %s\nwant: %s", gb, wb)
	}
	if peer1.m.shardsServed.Load()+peer2.m.shardsServed.Load() == 0 {
		t.Error("no fuzz shards actually served by peers")
	}
}

// TestFuzzJobCancellation pins cooperative cancellation: a running
// fuzz job winds down with a partial result and status cancelled.
func TestFuzzJobCancellation(t *testing.T) {
	svc := New(Config{Pool: 1})
	defer svc.Drain(context.Background())

	// A huge budget so the job is still running when cancel lands.
	j, err := svc.Submit(JobSpec{Seed: 2, Fuzz: &FuzzSpec{Device: "SBLK100", Budget: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, _ := svc.Get(j.ID)
		if snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", snap.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := svc.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	j, err = svc.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusCancelled {
		t.Fatalf("status %s, want cancelled", j.Status)
	}
	if j.Result == nil || j.Result.Stopped != "cancelled" {
		t.Errorf("partial result missing or unmarked: %+v", j.Result)
	}
}

// TestFuzzOSDefault pins that fuzz jobs resolve the template OS from
// Target and default to Windows.
func TestFuzzOSDefault(t *testing.T) {
	if got := fuzzOS(JobSpec{Fuzz: &FuzzSpec{Device: "SBLK100"}}); got != template.Windows {
		t.Errorf("default OS %q", got)
	}
	if got := fuzzOS(JobSpec{Target: "linux", Fuzz: &FuzzSpec{Device: "SBLK100"}}); got != template.Linux {
		t.Errorf("target OS %q", got)
	}
}
