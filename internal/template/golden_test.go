package template_test

// Golden-output tests for the synthesis templates: every corpus
// device is reverse-engineered once, emitted in both code styles
// (goto and switch dispatch), instantiated for the Windows target,
// and compared byte-for-byte against committed golden files. The
// companion assertions pin the central property: the style changes
// only the emitted-code shape — function metadata, warnings and the
// executable driver's behavior are identical.
//
// Regenerate after an intentional emitter change with:
//
//	go test ./internal/template -run Golden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/symexec"
	"revnic/internal/synth"
	"revnic/internal/template"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReversed caches one exploration per device; synthesis styles
// reuse the same recovered graph, exactly as a developer would emit
// both shapes from one RevNIC run.
var goldenReversed = map[string]*core.Reversed{}

func reverseFor(t *testing.T, info *drivers.Info) *core.Reversed {
	t.Helper()
	if r, ok := goldenReversed[info.Name]; ok {
		return r
	}
	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell:      core.ShellConfig(info),
		DriverName: info.Name,
		Engine:     symexec.Config{Seed: 7},
	})
	if err != nil {
		t.Fatalf("%s: %v", info.Name, err)
	}
	goldenReversed[info.Name] = rev
	return rev
}

func slug(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "_")
}

func TestGoldenTemplates(t *testing.T) {
	for _, info := range drivers.Corpus() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			rev := reverseFor(t, info)
			outs := map[string]*synth.Output{}
			for _, style := range synth.StyleNames() {
				outs[style] = synth.Generate(rev.Graph, synth.Options{
					DriverName: info.Name, Style: style,
				})
			}

			// The style must not change anything but the code text.
			g, s := outs[synth.StyleGoto], outs[synth.StyleSwitch]
			if len(g.Funcs) != len(s.Funcs) {
				t.Fatalf("func count differs across styles: %d vs %d", len(g.Funcs), len(s.Funcs))
			}
			for i := range g.Funcs {
				if g.Funcs[i] != s.Funcs[i] {
					t.Errorf("func metadata differs across styles:\n goto   %+v\n switch %+v",
						g.Funcs[i], s.Funcs[i])
				}
			}
			if strings.Join(g.Warnings, "\n") != strings.Join(s.Warnings, "\n") {
				t.Errorf("warnings differ across styles:\n goto   %v\n switch %v",
					g.Warnings, s.Warnings)
			}
			if g.Code == s.Code {
				t.Error("styles emitted identical code; the switch emitter is not wired")
			}

			for _, style := range synth.StyleNames() {
				path := filepath.Join("testdata", "golden",
					slug(info.Name)+"_"+style+".c")
				got := template.Instantiate(template.Windows, info.Name, outs[style])
				if *update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (regenerate with -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("%s: emitted source differs from golden file %s "+
						"(intentional emitter changes: regenerate with -update)",
						style, path)
				}
			}
		})
	}
}

// TestStyleDoesNotChangeBehavior executes the synthesized driver
// built from a switch-style synthesis result against the original
// binary: the I/O traces must still match, because the executable
// driver interprets the recovered graph — the emitted C shape plays
// no part in behavior.
func TestStyleDoesNotChangeBehavior(t *testing.T) {
	info, err := drivers.ByName("SBLK100")
	if err != nil {
		t.Fatal(err)
	}
	rev := reverseFor(t, info)
	swRev := *rev
	swRev.Synth = synth.Generate(rev.Graph, synth.Options{
		DriverName: info.Name, Style: synth.StyleSwitch,
	})
	rep, err := core.CheckEquivalence(info, &swRev, template.Windows)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IOTraceEqual {
		t.Errorf("switch-style driver diverged from the original: %s", rep.FirstDivergence)
	}
}
