// Package template provides the per-target-OS driver templates of
// §4.2: "The template contains all the boilerplate to communicate
// with the OS (e.g., memory allocation, timer management, and error
// recovery) ... Besides the boilerplate, the template also contains
// placeholders where the actual hardware I/O code is to be pasted."
//
// Each target OS contributes two artifacts:
//
//   - a Runtime: the executable boilerplate the synthesized driver
//     (package synthdrv) calls back into — allocation, receive
//     indication, completion signalling, timers, and the serializing
//     lock the paper notes every template carries;
//   - a source template: the complete driver source text with the
//     synthesized function calls pasted into its placeholders,
//     instantiated by Instantiate.
//
// Templates are arranged the way §2 describes: a generic base (the
// shared boilerplate here) with per-OS derivation; writing one took
// the paper's authors between 0 and 5 person-days (Table 3).
package template

import (
	"fmt"
	"strings"

	"revnic/internal/hw"
	"revnic/internal/synth"
)

// OS identifies a supported target operating system.
type OS string

// The four target platforms of the evaluation (§5.1).
const (
	Windows OS = "windows"
	Linux   OS = "linux"
	UCOS    OS = "ucos-ii"
	KitOS   OS = "kitos"
)

// AllOS lists the supported targets in the paper's order.
var AllOS = []OS{Windows, Linux, UCOS, KitOS}

// PersonDays is the template-writing effort reported in Table 3.
var PersonDays = map[OS]int{Windows: 5, Linux: 3, UCOS: 1, KitOS: 0}

// Runtime is the executable boilerplate: it implements
// synthdrv.TargetOS. The heap layout matches the source OS model so
// that allocation-order-identical drivers obtain identical addresses
// (which matters because DMA addresses flow into device registers).
type Runtime struct {
	OSName string
	Cfg    hw.PCIConfig

	// Received collects frames the driver handed up the stack.
	Received [][]byte
	// SendCompletes counts completion callbacks.
	SendCompletes int
	// LogCodes collects error-log codes.
	LogCodes []uint32
	// TimerHandler is the registered timer entry.
	TimerHandler uint32
	// LockCount counts entry-point serializations (each template
	// "contains one lock to serialize the entry points", §4.2); the
	// performance models charge for it.
	LockCount int

	heapNext uint32
	uptime   uint32
}

// NewRuntime builds the runtime personality for an OS.
func NewRuntime(os OS, cfg hw.PCIConfig) *Runtime {
	return &Runtime{OSName: string(os), Cfg: cfg, heapNext: 0x00080000}
}

// Name implements synthdrv.TargetOS.
func (r *Runtime) Name() string { return r.OSName }

// AllocMemory implements synthdrv.TargetOS.
func (r *Runtime) AllocMemory(n uint32) uint32 {
	n = (n + 7) &^ 7
	a := r.heapNext
	r.heapNext += n
	return a
}

// AllocShared implements synthdrv.TargetOS; on these simulated
// platforms physical and virtual addresses coincide.
func (r *Runtime) AllocShared(n uint32) uint32 { return r.AllocMemory(n) }

// FreeMemory implements synthdrv.TargetOS.
func (r *Runtime) FreeMemory(addr uint32) {}

// ReadPCIConfig implements synthdrv.TargetOS.
func (r *Runtime) ReadPCIConfig(off uint32) uint32 {
	switch off {
	case 0:
		return uint32(r.Cfg.VendorID) | uint32(r.Cfg.DeviceID)<<16
	case 4:
		return r.Cfg.IOBase
	case 8:
		return uint32(r.Cfg.IRQLine)
	}
	return 0
}

// IndicateReceive implements synthdrv.TargetOS.
func (r *Runtime) IndicateReceive(frame []byte) {
	r.Received = append(r.Received, frame)
}

// SendComplete implements synthdrv.TargetOS.
func (r *Runtime) SendComplete(status uint32) { r.SendCompletes++ }

// Log implements synthdrv.TargetOS.
func (r *Runtime) Log(code uint32) { r.LogCodes = append(r.LogCodes, code) }

// InitializeTimer implements synthdrv.TargetOS.
func (r *Runtime) InitializeTimer(handler uint32) { r.TimerHandler = handler }

// SetTimer implements synthdrv.TargetOS.
func (r *Runtime) SetTimer(ms uint32) {}

// Stall implements synthdrv.TargetOS.
func (r *Runtime) Stall(us uint32) { r.uptime += us / 1000 }

// UpTime implements synthdrv.TargetOS.
func (r *Runtime) UpTime() uint32 { r.uptime++; return r.uptime }

// Lock notes one entry-point serialization.
func (r *Runtime) Lock() { r.LockCount++ }

// roleCall finds the synthesized function for a role, returning a C
// call expression.
func roleCall(out *synth.Output, role string, args string) string {
	for _, f := range out.Funcs {
		if f.Role == role {
			return fmt.Sprintf("%s(%s)", f.Name, args)
		}
	}
	return fmt.Sprintf("/* no %s function recovered */ 0", role)
}

// Instantiate pastes the synthesized code into the target OS
// template, producing the complete driver source text.
func Instantiate(os OS, driverName string, out *synth.Output) string {
	var b strings.Builder
	hdr := func(format string, a ...any) { fmt.Fprintf(&b, format+"\n", a...) }
	switch os {
	case Linux:
		hdr("/* %s driver for Linux 2.6.26, synthesized by RevNIC. */", driverName)
		hdr("#include <linux/netdevice.h>")
		hdr("#include <linux/pci.h>")
		hdr("#include \"revnic_runtime.h\"")
		hdr("")
		hdr("static int revnic_pci_init_one(struct pci_dev *pdev, const struct pci_device_id *ent)")
		hdr("{")
		hdr("\tstruct net_device *dev;")
		hdr("\tif (pci_enable_device(pdev)) return -EIO;")
		hdr("\t/* template boilerplate: resources, netdev allocation */")
		hdr("\tdev = alloc_etherdev(sizeof(struct revnic_priv));")
		hdr("\tif (!dev) return -ENOMEM;")
		hdr("\t/*** RevNIC-synthesized hardware bring-up ***/")
		hdr("\tif (%s == 0) goto err_unload;", roleCall(out, "initialize", ""))
		hdr("\t/*** end synthesized section ***/")
		hdr("\t/* adapt driver state to the target OS: copy the MAC")
		hdr("\t * out of the synthesized context into dev->dev_addr */")
		hdr("\tregister_netdev(dev);")
		hdr("\treturn 0;")
		hdr("err_unload:")
		hdr("\tfree_netdev(dev);")
		hdr("\treturn -ENODEV;")
		hdr("}")
		hdr("")
		hdr("static netdev_tx_t revnic_xmit(struct sk_buff *skb, struct net_device *dev)")
		hdr("{")
		hdr("\t/* NDIS_PACKET -> sk_buff adaptation by the developer (§4.2) */")
		hdr("\tspin_lock(&revnic_lock); /* template lock serializing entry points */")
		hdr("\t%s;", roleCall(out, "send", "GlobalState, (uint32_t)skb->data, skb->len"))
		hdr("\tspin_unlock(&revnic_lock);")
		hdr("\treturn NETDEV_TX_OK;")
		hdr("}")
		hdr("")
		hdr("static irqreturn_t revnic_interrupt(int irq, void *dev_id)")
		hdr("{")
		hdr("\tspin_lock(&revnic_lock);")
		hdr("\t%s;", roleCall(out, "isr", "GlobalState"))
		hdr("\tspin_unlock(&revnic_lock);")
		hdr("\treturn IRQ_HANDLED;")
		hdr("}")
	case Windows:
		hdr("/* %s driver for Windows XP (NDIS miniport), synthesized by RevNIC. */", driverName)
		hdr("#include <ndis.h>")
		hdr("#include \"revnic_runtime.h\"")
		hdr("")
		hdr("NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)")
		hdr("{")
		hdr("\t/* template: NdisMSetAttributes, resource claims */")
		hdr("\t/*** RevNIC-synthesized hardware bring-up ***/")
		hdr("\tif (%s == 0) return NDIS_STATUS_FAILURE;", roleCall(out, "initialize", ""))
		hdr("\t/*** end synthesized section ***/")
		hdr("\treturn NDIS_STATUS_SUCCESS;")
		hdr("}")
		hdr("")
		hdr("VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)")
		hdr("{")
		hdr("\t%s;", roleCall(out, "isr", "(uint32_t)ctx"))
		hdr("\t*recognized = TRUE;")
		hdr("}")
	case UCOS:
		hdr("/* %s driver for uC/OS-II on FPGA4U, synthesized by RevNIC. */", driverName)
		hdr("#include \"ucos_ii.h\"")
		hdr("#include \"revnic_runtime.h\"")
		hdr("")
		hdr("int revnic_netif_init(void)")
		hdr("{")
		hdr("\t/* the embedded template is thin: no PCI enumeration, the")
		hdr("\t * board file provides the I/O base (Table 3: 1 person-day) */")
		hdr("\treturn %s != 0 ? 0 : -1;", roleCall(out, "initialize", ""))
		hdr("}")
		hdr("")
		hdr("void revnic_isr_wrapper(void)")
		hdr("{")
		hdr("\tOSIntEnter();")
		hdr("\t%s;", roleCall(out, "isr", "GlobalState"))
		hdr("\tOSIntExit();")
		hdr("}")
	case KitOS:
		hdr("/* %s driver for KitOS (bare hardware), synthesized by RevNIC. */", driverName)
		hdr("#include \"revnic_runtime.h\"")
		hdr("")
		hdr("/* KitOS needs no template (Table 3: 0 person-days): the driver")
		hdr(" * talks to the hardware directly and the kernel entry just")
		hdr(" * chains the synthesized functions. */")
		hdr("void kitos_main(void)")
		hdr("{")
		hdr("\tuint32_t ctx = %s;", roleCall(out, "initialize", ""))
		hdr("\tfor (;;) {")
		hdr("\t\tif (irq_pending()) %s;", roleCall(out, "isr", "ctx"))
		hdr("\t}")
		hdr("}")
	}
	b.WriteString("\n/* ---- synthesized hardware-protocol code below ---- */\n\n")
	b.WriteString(out.Code)
	return b.String()
}
