package template

import (
	"strings"
	"testing"

	"revnic/internal/hw"
	"revnic/internal/synth"
)

func testOutput() *synth.Output {
	return &synth.Output{
		Code: "/* code */\nuint32_t mp_initialize_10088(void) { return 1; }\n",
		Funcs: []synth.FuncInfo{
			{Name: "mp_initialize_10088", Role: "initialize", HasReturn: true},
			{Name: "mp_send_103e0", Role: "send", NumParams: 3, HasReturn: true},
			{Name: "mp_isr_10540", Role: "isr", NumParams: 1},
		},
	}
}

func TestRuntimeAllocatorMatchesGuestOS(t *testing.T) {
	rt := NewRuntime(Linux, hw.PCIConfig{IOBase: 0xC000})
	a := rt.AllocMemory(0x40)
	b := rt.AllocShared(100)
	// Same base and alignment discipline as the source-OS model, so
	// allocation-order-identical drivers get identical addresses.
	if a != 0x00080000 {
		t.Errorf("first alloc at %#x", a)
	}
	if b != a+0x40 {
		t.Errorf("second alloc at %#x", b)
	}
	if rt.AllocMemory(1)%8 != 0 {
		t.Error("alignment broken")
	}
}

func TestRuntimeUpcalls(t *testing.T) {
	rt := NewRuntime(Windows, hw.PCIConfig{VendorID: 7, DeviceID: 9, IOBase: 0xC000, IRQLine: 4})
	rt.IndicateReceive([]byte{1, 2, 3})
	rt.SendComplete(0)
	rt.Log(0xDEAD)
	rt.InitializeTimer(0x1234)
	if len(rt.Received) != 1 || rt.SendCompletes != 1 || len(rt.LogCodes) != 1 || rt.TimerHandler != 0x1234 {
		t.Error("upcall bookkeeping wrong")
	}
	if rt.ReadPCIConfig(0) != 7|9<<16 || rt.ReadPCIConfig(4) != 0xC000 || rt.ReadPCIConfig(8) != 4 {
		t.Error("PCI config wrong")
	}
	if rt.Name() != "windows" {
		t.Error("name")
	}
	u1 := rt.UpTime()
	if rt.UpTime() <= u1 {
		t.Error("uptime must advance")
	}
}

func TestInstantiatePerOS(t *testing.T) {
	out := testOutput()
	cases := map[OS][]string{
		Windows: {"MiniportInitialize", "NDIS_STATUS_FAILURE", "mp_initialize_10088"},
		Linux:   {"revnic_pci_init_one", "alloc_etherdev", "spin_lock", "sk_buff"},
		UCOS:    {"OSIntEnter", "revnic_netif_init"},
		KitOS:   {"kitos_main", "irq_pending"},
	}
	for os, wants := range cases {
		src := Instantiate(os, "TESTDRV", out)
		for _, w := range wants {
			if !strings.Contains(src, w) {
				t.Errorf("%s template missing %q", os, w)
			}
		}
		// The synthesized payload is always appended.
		if !strings.Contains(src, out.Code) {
			t.Errorf("%s template does not embed synthesized code", os)
		}
	}
}

func TestMissingRoleIsFlagged(t *testing.T) {
	src := Instantiate(Linux, "X", &synth.Output{Code: "/**/"})
	if !strings.Contains(src, "no initialize function recovered") {
		t.Error("missing role not flagged in template")
	}
}

func TestPersonDaysTable(t *testing.T) {
	// Table 3 ordering and values.
	want := map[OS]int{Windows: 5, Linux: 3, UCOS: 1, KitOS: 0}
	for os, d := range want {
		if PersonDays[os] != d {
			t.Errorf("%s = %d person-days, want %d", os, PersonDays[os], d)
		}
	}
	if len(AllOS) != 4 {
		t.Error("AllOS")
	}
}
