/* RTL8139 driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_10088() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_104b0((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the RTL8139 binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is encoded with gotos (see paper, Listing 1).
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
uint32_t mp_initialize_10088(void);
uint32_t function_102b0(uint32_t arg0);
uint32_t function_10328(uint32_t arg0);
uint32_t mp_send_10380(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_isr_104b0(uint32_t GlobalState);
void function_10558(uint32_t arg0);
uint32_t mp_query_106a8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_107a0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3);
uint32_t function_10ab8(uint32_t arg0);
uint32_t mp_timer_10b78(uint32_t GlobalState);
uint32_t mp_halt_10bd0(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10000:
	r1 = 0x10c08u;
	r2 = 0x10088u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x10380u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x104b0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x106a8u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x107a0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10bd0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
L_10078:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10088 — initialize entry point; class: mixed */
uint32_t mp_initialize_10088(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10088:
	r1 = 0x48u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_100a0:
	if (r0 == 0x0u) goto L_102a0;
L_100a8:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_100c8:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_100e8:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port8(r1 + 0x37u);
	r3 = 0xffu;
	if (r2 == r3) goto L_10288;
L_10110:
	stk[--sp] = r4;
	r0 = function_102b0(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10120:
	if (r0 == 0x0u) goto L_10148;
	goto L_10128;
L_10148:
	stk[--sp] = r4;
	r0 = function_10328(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10158:
	r1 = 0x2810u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
L_10170:
	if (r0 == 0x0u) goto L_102a0;
L_10178:
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r0;
	r1 = 0x2000u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
L_10198:
	if (r0 == 0x0u) goto L_102a0;
L_101a0:
	*(uint32_t *)(uintptr_t)(r4 + 0x24u) = (uint32_t)r0;
	r1 = 0x600u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_101c0:
	if (r0 == 0x0u) goto L_102a0;
L_101c8:
	*(uint32_t *)(uintptr_t)(r4 + 0x3cu) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	write_port32(r1 + 0x30u, r2);
	r2 = 0x0u;
	*(uint32_t *)(uintptr_t)(r4 + 0x28u) = (uint32_t)r2;
	write_port16(r1 + 0x38u, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	r2 = 0x5u;
	write_port16(r1 + 0x3cu, r2);
	r2 = 0x8u;
	write_port32(r1 + 0x44u, r2);
	r2 = 0xcu;
	write_port8(r1 + 0x37u, r2);
	r1 = 0x10b78u;
	stk[--sp] = r1;
	r0 = os_NdisMInitializeTimer(stk[sp + 0]);
	sp += 1;
L_10250:
	r1 = 0x64u;
	stk[--sp] = r1;
	r0 = os_NdisMSetTimer(stk[sp + 0]);
	sp += 1;
L_10268:
	r2 = 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
L_10288:
	r1 = 0xdead0010u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_102a0:
	r0 = 0x0u;
	return r0;
L_10128: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	return r0;
}

/* original entry 0x102b0; class: hw */
uint32_t function_102b0(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_102b0:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x10u;
	write_port8(r1 + 0x37u, r2);
	r3 = 0x0u;
L_102d8:
	r2 = read_port8(r1 + 0x37u);
	r2 = r2 & 0x10u;
	if (r2 == 0x0u) goto L_10318;
L_102f0:
	r3 = r3 + 0x1u;
	r2 = 0x3e8u;
	if (r3 < r2) goto L_102d8;
	goto L_10308;
L_10318:
	r0 = 0x0u;
	return r0;
L_10308: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	return r0;
}

/* original entry 0x10328; class: hw */
uint32_t function_10328(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10328:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = 0x0u;
L_10340:
	r2 = r1 + r3;
	r2 = read_port8(r2 + 0x0u);
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x14u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10340;
L_10378:
	return r0;
	return r0;
}

/* original entry 0x10380 — send entry point; class: mixed */
uint32_t mp_send_10380(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10380:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) goto L_103b8;
L_103a8:
	r1 = 0x5eau;
	if (r1 >= r6) goto L_103e0;
L_103b8:
	r1 = 0xdead0012u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_103d0:
	r0 = 0x1u;
	return r0;
L_103e0:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r3 = r2 << (0xbu & 31);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	r1 = r1 + r3;
	r3 = 0x0u;
L_10408:
	if (r3 >= r6) goto L_10440;
L_10410:
	r0 = r5 + r3;
	r0 = *(uint8_t *)(uintptr_t)(r0 + 0x0u);
	r2 = r1 + r3;
	mmio_write8(r2 + 0x0u, r0); /* dma */
	r3 = r3 + 0x1u;
	goto L_10408;
L_10440:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r3 = r2 << (0x2u & 31);
	r0 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r0 = r0 + r3;
	write_port32(r0 + 0x20u, r1);
	write_port32(r0 + 0x10u, r6);
	r2 = r2 + 0x1u;
	r2 = r2 & 0x3u;
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x2cu);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x2cu) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x104b0 — isr entry point; class: mixed */
uint32_t mp_isr_104b0(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_104b0:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port16(r1 + 0x3eu);
	if (r2 == 0x0u) goto L_10550;
L_104d0:
	r3 = r2 & 0x4u;
	if (r3 == 0x0u) goto L_10508;
L_104e0:
	r3 = 0x4u;
	write_port16(r1 + 0x3eu, r3);
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
L_10508:
	r3 = r2 & 0x1u;
	if (r3 == 0x0u) goto L_10550;
L_10518:
	stk[--sp] = r2;
	stk[--sp] = r4;
	function_10558(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10530:
	r2 = stk[sp++];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = 0x1u;
	write_port16(r1 + 0x3eu, r3);
L_10550:
	return r0;
	return r0;
}

/* original entry 0x10558; class: mixed */
void function_10558(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10558:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
L_10568:
	r2 = read_port8(r1 + 0x37u);
	r2 = r2 & 0x1u;
	if (r2 != 0x0u) goto L_106a0;
L_10580:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r5 = r2 + r3;
	r6 = mmio_read16(r5 + 0x2u); /* dma */
	r6 = r6 - 0x4u;
	r0 = *(uint32_t *)(uintptr_t)(r4 + 0x3cu);
	stk[--sp] = r0;
	r3 = r5 + 0x4u;
	r5 = 0x0u;
L_105c8:
	if (r5 >= r6) goto L_10608;
L_105d0:
	r0 = r3 + r5;
	r0 = mmio_read8(r0 + 0x0u); /* dma */
	r2 = stk[sp + 0];
	r2 = r2 + r5;
	*(uint8_t *)(uintptr_t)(r2 + 0x0u) = (uint8_t)r0;
	r5 = r5 + 0x1u;
	goto L_105c8;
L_10608:
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r3 = r3 + r6;
	r3 = r3 + 0x7u;
	r2 = 0xfffffffcu;
	r3 = r3 & r2;
	r2 = 0x1fffu;
	r3 = r3 & r2;
	*(uint32_t *)(uintptr_t)(r4 + 0x28u) = (uint32_t)r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	write_port16(r1 + 0x38u, r3);
	r2 = stk[sp++];
	stk[--sp] = r6;
	stk[--sp] = r2;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
L_10678:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x30u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x30u) = (uint32_t)r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	goto L_10568;
L_106a0:
	return;
}

/* original entry 0x106a8 — query entry point; class: hw */
uint32_t mp_query_106a8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_106a8:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) goto L_10700;
L_106d0:
	r3 = 0x10107u;
	if (r1 == r3) goto L_10750;
L_106e0:
	r3 = 0x10114u;
	if (r1 == r3) goto L_10770;
L_106f0:
	r0 = 0x1u;
	return r0;
L_10700:
	r3 = 0x0u;
L_10708:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x14u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10708;
L_10740:
	r0 = 0x0u;
	return r0;
L_10750:
	r3 = 0x64u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
L_10770:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = read_port8(r1 + 0x58u);
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x107a0 — set entry point; class: hw */
uint32_t mp_set_107a0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;
	stk[sp + 4] = arg3;

L_107a0:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = stk[sp + 4];
	r5 = 0x1010eu;
	if (r1 == r5) goto L_10820;
L_107d0:
	r5 = 0x1010103u;
	if (r1 == r5) goto L_10978;
L_107e0:
	r5 = 0x12000u;
	if (r1 == r5) goto L_10888;
L_107f0:
	r5 = 0xfd010106u;
	if (r1 == r5) goto L_108d8;
L_10800:
	r5 = 0x12001u;
	if (r1 == r5) goto L_10928;
L_10810:
	r0 = 0x1u;
	return r0;
L_10820:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r5 = 0x8u;
	r6 = r2 & 0x20u;
	if (r6 == 0x0u) goto L_10850;
L_10848:
	r5 = r5 | 0x1u;
L_10850:
	r6 = r2 & 0x2u;
	if (r6 == 0x0u) goto L_10868;
L_10860:
	r5 = r5 | 0x4u;
L_10868:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	write_port32(r1 + 0x44u, r5);
	r0 = 0x0u;
	return r0;
L_10888:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r5 = read_port8(r1 + 0x58u);
	r6 = 0xfeu;
	r5 = r5 & r6;
	if (r2 == 0x0u) goto L_108c0;
L_108b8:
	r5 = r5 | 0x1u;
L_108c0:
	write_port8(r1 + 0x58u, r5);
	r0 = 0x0u;
	return r0;
L_108d8:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r5 = read_port8(r1 + 0x52u);
	r6 = 0xfeu;
	r5 = r5 & r6;
	if (r2 == 0x0u) goto L_10910;
L_10908:
	r5 = r5 | 0x1u;
L_10910:
	write_port8(r1 + 0x52u, r5);
	r0 = 0x0u;
	return r0;
L_10928:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r5 = read_port8(r1 + 0x52u);
	r6 = 0xefu;
	r5 = r5 & r6;
	if (r2 == 0x0u) goto L_10960;
L_10958:
	r5 = r5 | 0x10u;
L_10960:
	write_port8(r1 + 0x52u, r5);
	r0 = 0x0u;
	return r0;
L_10978:
	r5 = 0x0u;
L_10980:
	r6 = r4 + r5;
	r1 = 0x0u;
	*(uint8_t *)(uintptr_t)(r6 + 0x34u) = (uint8_t)r1;
	r5 = r5 + 0x1u;
	r1 = 0x8u;
	if (r5 < r1) goto L_10980;
L_109b0:
	r5 = 0x0u;
L_109b8:
	if (r5 >= r3) goto L_10a58;
L_109c0:
	stk[--sp] = r2;
	stk[--sp] = r3;
	stk[--sp] = r5;
	r1 = r2 + r5;
	stk[--sp] = r1;
	r0 = function_10ab8(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_109f0:
	r5 = stk[sp++];
	r3 = stk[sp++];
	r2 = stk[sp++];
	r1 = r0 >> (0x3u & 31);
	r6 = r0 & 0x7u;
	r0 = 0x1u;
	r0 = r0 << (r6 & 31);
	r6 = r4 + r1;
	r1 = *(uint8_t *)(uintptr_t)(r6 + 0x34u);
	r1 = r1 | r0;
	*(uint8_t *)(uintptr_t)(r6 + 0x34u) = (uint8_t)r1;
	r5 = r5 + 0x6u;
	goto L_109b8;
L_10a58:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r1 = r1 + 0x8u;
	r5 = 0x0u;
L_10a70:
	r6 = r4 + r5;
	r6 = *(uint8_t *)(uintptr_t)(r6 + 0x34u);
	r2 = r1 + r5;
	write_port8(r2 + 0x0u, r6);
	r5 = r5 + 0x1u;
	r6 = 0x8u;
	if (r5 < r6) goto L_10a70;
L_10aa8:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10ab8; class: algo */
uint32_t function_10ab8(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10ab8:
	r1 = stk[sp + 1];
	r2 = 0x0u;
	r2 = r2 - 0x1u;
	r3 = 0x0u;
L_10ad8:
	r5 = r1 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x0u);
	r2 = r2 ^ r5;
	r6 = 0x0u;
L_10af8:
	r5 = r2 & 0x1u;
	r2 = r2 >> (0x1u & 31);
	if (r5 == 0x0u) goto L_10b20;
L_10b10:
	r5 = 0xedb88320u;
	r2 = r2 ^ r5;
L_10b20:
	r6 = r6 + 0x1u;
	r5 = 0x8u;
	if (r6 < r5) goto L_10af8;
L_10b38:
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10ad8;
L_10b50:
	r5 = 0x0u;
	r5 = r5 - 0x1u;
	r2 = r2 ^ r5;
	r0 = r2 >> (0x1au & 31);
	return r0;
	return r0;
}

/* original entry 0x10b78 — timer entry point; class: hw */
uint32_t mp_timer_10b78(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10b78:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port8(r1 + 0x58u);
	r5 = read_port8(r1 + 0x52u);
	r6 = 0xefu;
	r5 = r5 & r6;
	r2 = r2 & 0x1u;
	if (r2 == 0x0u) goto L_10bc0;
L_10bb8:
	r5 = r5 | 0x10u;
L_10bc0:
	write_port8(r1 + 0x52u, r5);
	return r0;
	return r0;
}

/* original entry 0x10bd0 — halt entry point; class: hw */
uint32_t mp_halt_10bd0(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10bd0:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	write_port16(r1 + 0x3cu, r2);
	write_port8(r1 + 0x37u, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	return r0;
}

