/* SBLK100 driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_10088() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_103b8((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the SBLK100 binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is a switch-dispatch state machine over the
 * recovered basic-block addresses.
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
uint32_t mp_initialize_10088(void);
uint32_t mp_send_10270(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_isr_103b8(uint32_t GlobalState);
void function_10470(uint32_t arg0);
uint32_t mp_query_10548(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_10630(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_halt_10698(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10000u;
	for (;;) switch (pc) {
	case 0x10000u:
	r1 = 0x106d0u;
	r2 = 0x10088u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x10270u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x103b8u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x10548u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x10630u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10698u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
	pc = 0x10078u; break;
	case 0x10078u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10088 — initialize entry point; class: mixed */
uint32_t mp_initialize_10088(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10088u;
	for (;;) switch (pc) {
	case 0x10088u:
	r1 = 0x28u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x100a0u; break;
	case 0x100a0u:
	if (r0 == 0x0u) { pc = 0x10260u; break; }
	pc = 0x100a8u; break;
	case 0x100a8u:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x100c8u; break;
	case 0x100c8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x100e8u; break;
	case 0x100e8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0xa5u;
	write_port8(r1 + 0xdu, r2);
	r3 = read_port8(r1 + 0xdu);
	if (r3 == r2) { pc = 0x10138u; break; }
	pc = 0x10118u; break;
	case 0x10118u:
	r1 = 0xdead0041u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x10130u; break;
	case 0x10130u:
	pc = 0x10260u; break;
	case 0x10138u:
	r3 = read_port8(r1 + 0x0u);
	r3 = r3 & 0x1u;
	if (r3 != 0x0u) { pc = 0x10170u; break; }
	pc = 0x10150u; break;
	case 0x10150u:
	r1 = 0xdead0042u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x10168u; break;
	case 0x10168u:
	pc = 0x10260u; break;
	case 0x10170u:
	r2 = 0x10u;
	write_port8(r1 + 0x1u, r2);
	r3 = 0x0u;
	pc = 0x10188u; break;
	case 0x10188u:
	r2 = read_port16(r1 + 0x8u);
	r5 = r4 + r3;
	*(uint16_t *)(uintptr_t)(r5 + 0x10u) = (uint16_t)r2;
	r3 = r3 + 0x2u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10188u; break; }
	pc = 0x101b8u; break;
	case 0x101b8u:
	r2 = read_port16(r1 + 0x8u);
	r2 = read_port16(r1 + 0x8u);
	r5 = 0x4253u;
	if (r2 == r5) { pc = 0x101f8u; break; }
	pc = 0x101d8u; break;
	case 0x101d8u:
	r1 = 0xdead0043u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x101f0u; break;
	case 0x101f0u:
	pc = 0x10260u; break;
	case 0x101f8u:
	r1 = 0x600u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10210u; break;
	case 0x10210u:
	if (r0 == 0x0u) { pc = 0x10260u; break; }
	pc = 0x10218u; break;
	case 0x10218u:
	*(uint32_t *)(uintptr_t)(r4 + 0x18u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x7u;
	write_port8(r1 + 0xbu, r2);
	r2 = 0x1u;
	write_port8(r1 + 0xcu, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
	case 0x10260u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10270 — send entry point; class: mixed */
uint32_t mp_send_10270(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10270u;
	for (;;) switch (pc) {
	case 0x10270u:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) { pc = 0x102a8u; break; }
	pc = 0x10298u; break;
	case 0x10298u:
	r1 = 0x5eau;
	if (r1 >= r6) { pc = 0x102d0u; break; }
	pc = 0x102a8u; break;
	case 0x102a8u:
	r1 = 0xdead0044u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x102c0u; break;
	case 0x102c0u:
	r0 = 0x1u;
	return r0;
	case 0x102d0u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x30u;
	write_port8(r1 + 0x1u, r2);
	write_port16(r1 + 0x8u, r6);
	r3 = 0x0u;
	pc = 0x102f8u; break;
	case 0x102f8u:
	if (r3 >= r6) { pc = 0x10328u; break; }
	pc = 0x10300u; break;
	case 0x10300u:
	r2 = r5 + r3;
	r2 = *(uint16_t *)(uintptr_t)(r2 + 0x0u);
	write_port16(r1 + 0x8u, r2);
	r3 = r3 + 0x2u;
	pc = 0x102f8u; break;
	case 0x10328u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x1cu);
	write_port8(r1 + 0x4u, r2);
	r2 = r2 >> (0x8u & 31);
	write_port8(r1 + 0x5u, r2);
	r2 = r2 >> (0x8u & 31);
	write_port8(r1 + 0x6u, r2);
	r2 = r2 >> (0x8u & 31);
	write_port8(r1 + 0x7u, r2);
	r2 = r6 + 0x1ffu;
	r2 = r2 >> (0x9u & 31);
	write_port8(r1 + 0x2u, r2);
	r2 = 0x31u;
	write_port8(r1 + 0x1u, r2);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x1cu);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x1cu) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x103b8 — isr entry point; class: mixed */
uint32_t mp_isr_103b8(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x103b8u;
	for (;;) switch (pc) {
	case 0x103b8u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port8(r1 + 0xau);
	if (r2 == 0x0u) { pc = 0x10468u; break; }
	pc = 0x103d8u; break;
	case 0x103d8u:
	r3 = r2 & 0x1u;
	if (r3 == 0x0u) { pc = 0x10410u; break; }
	pc = 0x103e8u; break;
	case 0x103e8u:
	r3 = 0x1u;
	write_port8(r1 + 0xau, r3);
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
	pc = 0x10410u; break;
	case 0x10410u:
	r3 = r2 & 0x4u;
	if (r3 == 0x0u) { pc = 0x10448u; break; }
	pc = 0x10420u; break;
	case 0x10420u:
	r3 = 0x4u;
	write_port8(r1 + 0xau, r3);
	r3 = 0xdead0045u;
	stk[--sp] = r3;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x10448u; break;
	case 0x10448u:
	r3 = r2 & 0x2u;
	if (r3 == 0x0u) { pc = 0x10468u; break; }
	pc = 0x10458u; break;
	case 0x10458u:
	stk[--sp] = r4;
	function_10470(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10468u; break;
	case 0x10468u:
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10470; class: mixed */
void function_10470(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10470u;
	for (;;) switch (pc) {
	case 0x10470u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	pc = 0x10480u; break;
	case 0x10480u:
	r2 = read_port8(r1 + 0xau);
	r2 = r2 & 0x2u;
	if (r2 == 0x0u) { pc = 0x10540u; break; }
	pc = 0x10498u; break;
	case 0x10498u:
	r2 = 0x20u;
	write_port8(r1 + 0x1u, r2);
	r6 = read_port16(r1 + 0x8u);
	if (r6 == 0x0u) { pc = 0x10540u; break; }
	pc = 0x104b8u; break;
	case 0x104b8u:
	r5 = *(uint32_t *)(uintptr_t)(r4 + 0x18u);
	r3 = 0x0u;
	pc = 0x104c8u; break;
	case 0x104c8u:
	if (r3 >= r6) { pc = 0x104f8u; break; }
	pc = 0x104d0u; break;
	case 0x104d0u:
	r0 = read_port16(r1 + 0x8u);
	r2 = r5 + r3;
	*(uint16_t *)(uintptr_t)(r2 + 0x0u) = (uint16_t)r0;
	r3 = r3 + 0x2u;
	pc = 0x104c8u; break;
	case 0x104f8u:
	r2 = 0x21u;
	write_port8(r1 + 0x1u, r2);
	stk[--sp] = r6;
	stk[--sp] = r5;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
	pc = 0x10520u; break;
	case 0x10520u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r2;
	pc = 0x10480u; break;
	case 0x10540u:
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x10548 — query entry point; class: algo */
uint32_t mp_query_10548(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10548u;
	for (;;) switch (pc) {
	case 0x10548u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) { pc = 0x105a0u; break; }
	pc = 0x10570u; break;
	case 0x10570u:
	r3 = 0x10107u;
	if (r1 == r3) { pc = 0x105f0u; break; }
	pc = 0x10580u; break;
	case 0x10580u:
	r3 = 0x10114u;
	if (r1 == r3) { pc = 0x10610u; break; }
	pc = 0x10590u; break;
	case 0x10590u:
	r0 = 0x1u;
	return r0;
	case 0x105a0u:
	r3 = 0x0u;
	pc = 0x105a8u; break;
	case 0x105a8u:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x10u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x105a8u; break; }
	pc = 0x105e0u; break;
	case 0x105e0u:
	r0 = 0x0u;
	return r0;
	case 0x105f0u:
	r3 = 0x64u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	case 0x10610u:
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10630 — set entry point; class: hw */
uint32_t mp_set_10630(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10630u;
	for (;;) switch (pc) {
	case 0x10630u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r5 = 0x1010eu;
	if (r1 == r5) { pc = 0x10668u; break; }
	pc = 0x10658u; break;
	case 0x10658u:
	r0 = 0x1u;
	return r0;
	case 0x10668u:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	write_port8(r1 + 0xdu, r2);
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10698 — halt entry point; class: hw */
uint32_t mp_halt_10698(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10698u;
	for (;;) switch (pc) {
	case 0x10698u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	write_port8(r1 + 0xcu, r2);
	write_port8(r1 + 0xbu, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

