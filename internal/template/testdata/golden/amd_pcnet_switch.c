/* AMD PCNet driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_10110() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_10888((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the AMD PCNet binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is a switch-dispatch state machine over the
 * recovered basic-block addresses.
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
void function_10088(uint32_t arg0, uint32_t arg1, uint32_t arg2);
uint32_t function_100b8(uint32_t arg0, uint32_t arg1);
void function_100e0(uint32_t arg0, uint32_t arg1, uint32_t arg2);
uint32_t mp_initialize_10110(void);
uint32_t function_10460(uint32_t arg0);
uint32_t mp_send_10718(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_isr_10888(uint32_t GlobalState);
void function_10a00(uint32_t arg0);
uint32_t mp_query_10ae8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_10bd0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3);
uint32_t function_10eb0(uint32_t arg0);
uint32_t mp_halt_10f70(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10000u;
	for (;;) switch (pc) {
	case 0x10000u:
	r1 = 0x10fc8u;
	r2 = 0x10110u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x10718u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x10888u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x10ae8u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x10bd0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10f70u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
	pc = 0x10078u; break;
	case 0x10078u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10088; class: hw */
void function_10088(uint32_t arg0, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10088u;
	for (;;) switch (pc) {
	case 0x10088u:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	r3 = stk[sp + 3];
	write_port16(r1 + 0x12u, r2);
	write_port16(r1 + 0x10u, r3);
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x100b8; class: hw */
uint32_t function_100b8(uint32_t arg0, uint32_t arg1)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;

	uint32_t pc = 0x100b8u;
	for (;;) switch (pc) {
	case 0x100b8u:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	write_port16(r1 + 0x12u, r2);
	r0 = read_port16(r1 + 0x10u);
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x100e0; class: hw */
void function_100e0(uint32_t arg0, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x100e0u;
	for (;;) switch (pc) {
	case 0x100e0u:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	r3 = stk[sp + 3];
	write_port16(r1 + 0x12u, r2);
	write_port16(r1 + 0x16u, r3);
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x10110 — initialize entry point; class: mixed */
uint32_t mp_initialize_10110(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10110u;
	for (;;) switch (pc) {
	case 0x10110u:
	r1 = 0x48u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10128u; break;
	case 0x10128u:
	if (r0 == 0x0u) { pc = 0x10450u; break; }
	pc = 0x10130u; break;
	case 0x10130u:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x10150u; break;
	case 0x10150u:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x10170u; break;
	case 0x10170u:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port16(r1 + 0x14u);
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_100b8(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x101a8u; break;
	case 0x101a8u:
	r2 = 0x4u;
	if (r0 == r2) { pc = 0x101d8u; break; }
	pc = 0x101b8u; break;
	case 0x101b8u:
	r1 = 0xdead0021u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x101d0u; break;
	case 0x101d0u:
	pc = 0x10450u; break;
	case 0x101d8u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = 0x0u;
	pc = 0x101e8u; break;
	case 0x101e8u:
	r2 = r1 + r3;
	r2 = read_port8(r2 + 0x0u);
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x14u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x101e8u; break; }
	pc = 0x10220u; break;
	case 0x10220u:
	r1 = 0x18u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10238u; break;
	case 0x10238u:
	if (r0 == 0x0u) { pc = 0x10450u; break; }
	pc = 0x10240u; break;
	case 0x10240u:
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r0;
	r1 = 0x20u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10260u; break;
	case 0x10260u:
	if (r0 == 0x0u) { pc = 0x10450u; break; }
	pc = 0x10268u; break;
	case 0x10268u:
	*(uint32_t *)(uintptr_t)(r4 + 0x24u) = (uint32_t)r0;
	r1 = 0x20u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10288u; break;
	case 0x10288u:
	if (r0 == 0x0u) { pc = 0x10450u; break; }
	pc = 0x10290u; break;
	case 0x10290u:
	*(uint32_t *)(uintptr_t)(r4 + 0x28u) = (uint32_t)r0;
	r1 = 0x1800u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x102b0u; break;
	case 0x102b0u:
	if (r0 == 0x0u) { pc = 0x10450u; break; }
	pc = 0x102b8u; break;
	case 0x102b8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x2cu) = (uint32_t)r0;
	r1 = 0x1800u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x102d8u; break;
	case 0x102d8u:
	if (r0 == 0x0u) { pc = 0x10450u; break; }
	pc = 0x102e0u; break;
	case 0x102e0u:
	*(uint32_t *)(uintptr_t)(r4 + 0x30u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r3 = 0x0u;
	pc = 0x102f8u; break;
	case 0x102f8u:
	r2 = r4 + r3;
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x14u);
	r5 = r1 + r3;
	mmio_write8(r5 + 0x2u, r2); /* dma */
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x102f8u; break; }
	pc = 0x10330u; break;
	case 0x10330u:
	r2 = 0x0u;
	*(uint32_t *)(uintptr_t)(r4 + 0x40u) = (uint32_t)r2;
	r3 = 0x0u;
	pc = 0x10348u; break;
	case 0x10348u:
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x38u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r5 = 0x8u;
	if (r3 < r5) { pc = 0x10348u; break; }
	pc = 0x10370u; break;
	case 0x10370u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r3 = 0xffffu;
	r3 = r2 & r3;
	stk[--sp] = r3;
	r3 = 0x1u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x103b8u; break;
	case 0x103b8u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r2 = r2 >> (0x10u & 31);
	stk[--sp] = r2;
	r3 = 0x2u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x103f8u; break;
	case 0x103f8u:
	stk[--sp] = r4;
	r0 = function_10460(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10408u; break;
	case 0x10408u:
	if (r0 == 0x0u) { pc = 0x10430u; break; }
	pc = 0x10410u; break;
	case 0x10430u:
	r2 = 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
	case 0x10450u:
	r0 = 0x0u;
	return r0;
	case 0x10410u: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10460; class: hw */
uint32_t function_10460(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10460u;
	for (;;) switch (pc) {
	case 0x10460u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x40u);
	mmio_write16(r1 + 0x0u, r2); /* dma */
	r3 = 0x0u;
	pc = 0x10488u; break;
	case 0x10488u:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x38u);
	r6 = r1 + r3;
	mmio_write8(r6 + 0x8u, r5); /* dma */
	r3 = r3 + 0x1u;
	r5 = 0x8u;
	if (r3 < r5) { pc = 0x10488u; break; }
	pc = 0x104c0u; break;
	case 0x104c0u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	mmio_write32(r1 + 0x10u, r2); /* dma */
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	mmio_write32(r1 + 0x14u, r2); /* dma */
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x2cu);
	r3 = 0x0u;
	pc = 0x104f8u; break;
	case 0x104f8u:
	r5 = r3 << (0x3u & 31);
	r5 = r1 + r5;
	r6 = 0x600u;
	r6 = r6 * r3;
	r6 = r2 + r6;
	mmio_write32(r5 + 0x0u, r6); /* dma */
	r6 = 0x8000u;
	mmio_write16(r5 + 0x4u, r6); /* dma */
	r6 = 0x0u;
	mmio_write16(r5 + 0x6u, r6); /* dma */
	r3 = r3 + 0x1u;
	r6 = 0x4u;
	if (r3 < r6) { pc = 0x104f8u; break; }
	pc = 0x10560u; break;
	case 0x10560u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x30u);
	r3 = 0x0u;
	pc = 0x10578u; break;
	case 0x10578u:
	r5 = r3 << (0x3u & 31);
	r5 = r1 + r5;
	r6 = 0x600u;
	r6 = r6 * r3;
	r6 = r2 + r6;
	mmio_write32(r5 + 0x0u, r6); /* dma */
	r6 = 0x0u;
	mmio_write16(r5 + 0x4u, r6); /* dma */
	mmio_write16(r5 + 0x6u, r6); /* dma */
	r3 = r3 + 0x1u;
	r6 = 0x4u;
	if (r3 < r6) { pc = 0x10578u; break; }
	pc = 0x105d8u; break;
	case 0x105d8u:
	r2 = 0x41u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10610u; break;
	case 0x10610u:
	r6 = 0x0u;
	pc = 0x10618u; break;
	case 0x10618u:
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	r0 = function_100b8(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10640u; break;
	case 0x10640u:
	r2 = 0x100u;
	r0 = r0 & r2;
	if (r0 != 0x0u) { pc = 0x10680u; break; }
	pc = 0x10658u; break;
	case 0x10658u:
	r6 = r6 + 0x1u;
	r2 = 0x3e8u;
	if (r6 < r2) { pc = 0x10618u; break; }
	pc = 0x10670u; break;
	case 0x10680u:
	r2 = 0x140u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x106b8u; break;
	case 0x106b8u:
	r2 = 0x42u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x106f0u; break;
	case 0x106f0u:
	r2 = 0x0u;
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	*(uint32_t *)(uintptr_t)(r4 + 0x34u) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	case 0x10670u: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10718 — send entry point; class: mixed */
uint32_t mp_send_10718(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10718u;
	for (;;) switch (pc) {
	case 0x10718u:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) { pc = 0x10750u; break; }
	pc = 0x10740u; break;
	case 0x10740u:
	r1 = 0x5eau;
	if (r1 >= r6) { pc = 0x10778u; break; }
	pc = 0x10750u; break;
	case 0x10750u:
	r1 = 0xdead0023u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x10768u; break;
	case 0x10768u:
	r0 = 0x1u;
	return r0;
	case 0x10778u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r1 = 0x600u;
	r1 = r1 * r2;
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x30u);
	r1 = r3 + r1;
	r3 = 0x0u;
	pc = 0x107a8u; break;
	case 0x107a8u:
	if (r3 >= r6) { pc = 0x107e0u; break; }
	pc = 0x107b0u; break;
	case 0x107b0u:
	r0 = r5 + r3;
	r0 = *(uint8_t *)(uintptr_t)(r0 + 0x0u);
	r2 = r1 + r3;
	mmio_write8(r2 + 0x0u, r0); /* dma */
	r3 = r3 + 0x1u;
	pc = 0x107a8u; break;
	case 0x107e0u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r3 = r2 << (0x3u & 31);
	r0 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r0 = r0 + r3;
	mmio_write32(r0 + 0x0u, r1); /* dma */
	mmio_write16(r0 + 0x6u, r6); /* dma */
	r3 = 0x8000u;
	mmio_write16(r0 + 0x4u, r3); /* dma */
	r3 = 0x48u;
	stk[--sp] = r3;
	r3 = 0x0u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10858u; break;
	case 0x10858u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r2 = r2 + 0x1u;
	r2 = r2 & 0x3u;
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10888 — isr entry point; class: os */
uint32_t mp_isr_10888(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10888u;
	for (;;) switch (pc) {
	case 0x10888u:
	r4 = stk[sp + 1];
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	r0 = function_100b8(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x108b8u; break;
	case 0x108b8u:
	r2 = r0;
	r3 = 0x200u;
	r3 = r2 & r3;
	if (r3 == 0x0u) { pc = 0x10938u; break; }
	pc = 0x108d8u; break;
	case 0x108d8u:
	stk[--sp] = r2;
	r3 = 0x240u;
	stk[--sp] = r3;
	r3 = 0x0u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10918u; break;
	case 0x10918u:
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
	pc = 0x10930u; break;
	case 0x10930u:
	r2 = stk[sp++];
	pc = 0x10938u; break;
	case 0x10938u:
	r3 = 0x400u;
	r3 = r2 & r3;
	if (r3 == 0x0u) { pc = 0x109a8u; break; }
	pc = 0x10950u; break;
	case 0x10950u:
	stk[--sp] = r2;
	stk[--sp] = r4;
	function_10a00(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10968u; break;
	case 0x10968u:
	r3 = 0x440u;
	stk[--sp] = r3;
	r3 = 0x0u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x109a0u; break;
	case 0x109a0u:
	r2 = stk[sp++];
	pc = 0x109a8u; break;
	case 0x109a8u:
	r3 = 0x100u;
	r3 = r2 & r3;
	if (r3 == 0x0u) { pc = 0x109f8u; break; }
	pc = 0x109c0u; break;
	case 0x109c0u:
	r3 = 0x140u;
	stk[--sp] = r3;
	r3 = 0x0u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x109f8u; break;
	case 0x109f8u:
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10a00; class: mixed */
void function_10a00(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10a00u;
	for (;;) switch (pc) {
	case 0x10a00u:
	r4 = stk[sp + 1];
	pc = 0x10a08u; break;
	case 0x10a08u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x34u);
	r3 = r2 << (0x3u & 31);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	r1 = r1 + r3;
	r5 = mmio_read16(r1 + 0x4u); /* dma */
	r6 = 0x8000u;
	r5 = r5 & r6;
	if (r5 != 0x0u) { pc = 0x10ae0u; break; }
	pc = 0x10a48u; break;
	case 0x10a48u:
	r6 = mmio_read16(r1 + 0x6u); /* dma */
	r5 = 0x600u;
	r5 = r5 * r2;
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x2cu);
	r3 = r3 + r5;
	stk[--sp] = r1;
	stk[--sp] = r6;
	stk[--sp] = r3;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
	pc = 0x10a90u; break;
	case 0x10a90u:
	r1 = stk[sp++];
	r5 = 0x8000u;
	mmio_write16(r1 + 0x4u, r5); /* dma */
	r5 = 0x0u;
	mmio_write16(r1 + 0x6u, r5); /* dma */
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x34u);
	r2 = r2 + 0x1u;
	r2 = r2 & 0x3u;
	*(uint32_t *)(uintptr_t)(r4 + 0x34u) = (uint32_t)r2;
	pc = 0x10a08u; break;
	case 0x10ae0u:
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x10ae8 — query entry point; class: algo */
uint32_t mp_query_10ae8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10ae8u;
	for (;;) switch (pc) {
	case 0x10ae8u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) { pc = 0x10b40u; break; }
	pc = 0x10b10u; break;
	case 0x10b10u:
	r3 = 0x10107u;
	if (r1 == r3) { pc = 0x10b90u; break; }
	pc = 0x10b20u; break;
	case 0x10b20u:
	r3 = 0x10114u;
	if (r1 == r3) { pc = 0x10bb0u; break; }
	pc = 0x10b30u; break;
	case 0x10b30u:
	r0 = 0x1u;
	return r0;
	case 0x10b40u:
	r3 = 0x0u;
	pc = 0x10b48u; break;
	case 0x10b48u:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x14u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10b48u; break; }
	pc = 0x10b80u; break;
	case 0x10b80u:
	r0 = 0x0u;
	return r0;
	case 0x10b90u:
	r3 = 0xau;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	case 0x10bb0u:
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10bd0 — set entry point; class: algo */
uint32_t mp_set_10bd0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;
	stk[sp + 4] = arg3;

	uint32_t pc = 0x10bd0u;
	for (;;) switch (pc) {
	case 0x10bd0u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = stk[sp + 4];
	r5 = 0x1010eu;
	if (r1 == r5) { pc = 0x10c50u; break; }
	pc = 0x10c00u; break;
	case 0x10c00u:
	r5 = 0x1010103u;
	if (r1 == r5) { pc = 0x10db0u; break; }
	pc = 0x10c10u; break;
	case 0x10c10u:
	r5 = 0x12000u;
	if (r1 == r5) { pc = 0x10ca8u; break; }
	pc = 0x10c20u; break;
	case 0x10c20u:
	r5 = 0xfd010106u;
	if (r1 == r5) { pc = 0x10d08u; break; }
	pc = 0x10c30u; break;
	case 0x10c30u:
	r5 = 0x12001u;
	if (r1 == r5) { pc = 0x10d68u; break; }
	pc = 0x10c40u; break;
	case 0x10c40u:
	r0 = 0x1u;
	return r0;
	case 0x10c50u:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r5 = 0x0u;
	r6 = r2 & 0x20u;
	if (r6 == 0x0u) { pc = 0x10c80u; break; }
	pc = 0x10c78u; break;
	case 0x10c78u:
	r5 = 0x8000u;
	pc = 0x10c80u; break;
	case 0x10c80u:
	*(uint32_t *)(uintptr_t)(r4 + 0x40u) = (uint32_t)r5;
	stk[--sp] = r4;
	r0 = function_10460(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10c98u; break;
	case 0x10c98u:
	r0 = 0x0u;
	return r0;
	case 0x10ca8u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r5 = 0x0u;
	if (r2 == 0x0u) { pc = 0x10cc8u; break; }
	pc = 0x10cc0u; break;
	case 0x10cc0u:
	r5 = 0x1u;
	pc = 0x10cc8u; break;
	case 0x10cc8u:
	stk[--sp] = r5;
	r5 = 0x9u;
	stk[--sp] = r5;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_100e0(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10cf8u; break;
	case 0x10cf8u:
	r0 = 0x0u;
	return r0;
	case 0x10d08u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r5 = 0x0u;
	if (r2 == 0x0u) { pc = 0x10d28u; break; }
	pc = 0x10d20u; break;
	case 0x10d20u:
	r5 = 0x2u;
	pc = 0x10d28u; break;
	case 0x10d28u:
	stk[--sp] = r5;
	r5 = 0x5u;
	stk[--sp] = r5;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10d58u; break;
	case 0x10d58u:
	r0 = 0x0u;
	return r0;
	case 0x10d68u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	stk[--sp] = r2;
	r5 = 0x4u;
	stk[--sp] = r5;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_100e0(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10da0u; break;
	case 0x10da0u:
	r0 = 0x0u;
	return r0;
	case 0x10db0u:
	r5 = 0x0u;
	pc = 0x10db8u; break;
	case 0x10db8u:
	r6 = r4 + r5;
	r1 = 0x0u;
	*(uint8_t *)(uintptr_t)(r6 + 0x38u) = (uint8_t)r1;
	r5 = r5 + 0x1u;
	r1 = 0x8u;
	if (r5 < r1) { pc = 0x10db8u; break; }
	pc = 0x10de8u; break;
	case 0x10de8u:
	r5 = 0x0u;
	pc = 0x10df0u; break;
	case 0x10df0u:
	if (r5 >= r3) { pc = 0x10e90u; break; }
	pc = 0x10df8u; break;
	case 0x10df8u:
	stk[--sp] = r2;
	stk[--sp] = r3;
	stk[--sp] = r5;
	r1 = r2 + r5;
	stk[--sp] = r1;
	r0 = function_10eb0(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10e28u; break;
	case 0x10e28u:
	r5 = stk[sp++];
	r3 = stk[sp++];
	r2 = stk[sp++];
	r1 = r0 >> (0x3u & 31);
	r6 = r0 & 0x7u;
	r0 = 0x1u;
	r0 = r0 << (r6 & 31);
	r6 = r4 + r1;
	r1 = *(uint8_t *)(uintptr_t)(r6 + 0x38u);
	r1 = r1 | r0;
	*(uint8_t *)(uintptr_t)(r6 + 0x38u) = (uint8_t)r1;
	r5 = r5 + 0x6u;
	pc = 0x10df0u; break;
	case 0x10e90u:
	stk[--sp] = r4;
	r0 = function_10460(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10ea0u; break;
	case 0x10ea0u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10eb0; class: algo */
uint32_t function_10eb0(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10eb0u;
	for (;;) switch (pc) {
	case 0x10eb0u:
	r1 = stk[sp + 1];
	r2 = 0x0u;
	r2 = r2 - 0x1u;
	r3 = 0x0u;
	pc = 0x10ed0u; break;
	case 0x10ed0u:
	r5 = r1 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x0u);
	r2 = r2 ^ r5;
	r6 = 0x0u;
	pc = 0x10ef0u; break;
	case 0x10ef0u:
	r5 = r2 & 0x1u;
	r2 = r2 >> (0x1u & 31);
	if (r5 == 0x0u) { pc = 0x10f18u; break; }
	pc = 0x10f08u; break;
	case 0x10f08u:
	r5 = 0xedb88320u;
	r2 = r2 ^ r5;
	pc = 0x10f18u; break;
	case 0x10f18u:
	r6 = r6 + 0x1u;
	r5 = 0x8u;
	if (r6 < r5) { pc = 0x10ef0u; break; }
	pc = 0x10f30u; break;
	case 0x10f30u:
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10ed0u; break; }
	pc = 0x10f48u; break;
	case 0x10f48u:
	r5 = 0x0u;
	r5 = r5 - 0x1u;
	r2 = r2 ^ r5;
	r0 = r2 >> (0x1au & 31);
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10f70 — halt entry point; class: algo */
uint32_t mp_halt_10f70(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10f70u;
	for (;;) switch (pc) {
	case 0x10f70u:
	r4 = stk[sp + 1];
	r2 = 0x4u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10fb0u; break;
	case 0x10fb0u:
	r2 = 0x0u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

