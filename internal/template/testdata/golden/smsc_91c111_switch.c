/* SMSC 91C111 driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_100a8() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_10448((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the SMSC 91C111 binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is a switch-dispatch state machine over the
 * recovered basic-block addresses.
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
uint32_t function_10088(uint32_t arg0, uint32_t arg1);
uint32_t mp_initialize_100a8(void);
uint32_t mp_send_10298(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_isr_10448(uint32_t GlobalState);
void function_104f0(uint32_t arg0);
uint32_t mp_query_105d8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_106c0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3);
uint32_t function_10a08(uint32_t arg0);
uint32_t mp_halt_10ac8(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10000u;
	for (;;) switch (pc) {
	case 0x10000u:
	r1 = 0x10b50u;
	r2 = 0x100a8u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x10298u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x10448u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x105d8u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x106c0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10ac8u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
	pc = 0x10078u; break;
	case 0x10078u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10088; class: hw */
uint32_t function_10088(uint32_t arg0, uint32_t arg1)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;

	uint32_t pc = 0x10088u;
	for (;;) switch (pc) {
	case 0x10088u:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	write_port8(r1 + 0xeu, r2);
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x100a8 — initialize entry point; class: mixed */
uint32_t mp_initialize_100a8(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x100a8u;
	for (;;) switch (pc) {
	case 0x100a8u:
	r1 = 0x30u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x100c0u; break;
	case 0x100c0u:
	if (r0 == 0x0u) { pc = 0x10288u; break; }
	pc = 0x100c8u; break;
	case 0x100c8u:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x100e8u; break;
	case 0x100e8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x10108u; break;
	case 0x10108u:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x2u;
	write_port8(r1 + 0xeu, r2);
	r3 = read_port8(r1 + 0xeu);
	if (r3 == r2) { pc = 0x10158u; break; }
	pc = 0x10138u; break;
	case 0x10138u:
	r1 = 0xdead0031u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x10150u; break;
	case 0x10150u:
	pc = 0x10288u; break;
	case 0x10158u:
	r2 = 0x2u;
	write_port16(r1 + 0x0u, r2);
	r2 = 0x1u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10188u; break;
	case 0x10188u:
	r3 = 0x0u;
	pc = 0x10190u; break;
	case 0x10190u:
	r2 = r1 + r3;
	r2 = read_port8(r2 + 0x0u);
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x10u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10190u; break; }
	pc = 0x101c8u; break;
	case 0x101c8u:
	r1 = 0x600u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x101e0u; break;
	case 0x101e0u:
	if (r0 == 0x0u) { pc = 0x10288u; break; }
	pc = 0x101e8u; break;
	case 0x101e8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x18u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10218u; break;
	case 0x10218u:
	r2 = 0x1u;
	write_port16(r1 + 0x0u, r2);
	r2 = 0x1u;
	write_port16(r1 + 0x2u, r2);
	r2 = 0x2u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10258u; break;
	case 0x10258u:
	r2 = 0x3u;
	write_port8(r1 + 0xcu, r2);
	r2 = 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
	case 0x10288u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10298 — send entry point; class: mixed */
uint32_t mp_send_10298(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10298u;
	for (;;) switch (pc) {
	case 0x10298u:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) { pc = 0x102d0u; break; }
	pc = 0x102c0u; break;
	case 0x102c0u:
	r1 = 0x5eau;
	if (r1 >= r6) { pc = 0x102f8u; break; }
	pc = 0x102d0u; break;
	case 0x102d0u:
	r1 = 0xdead0032u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x102e8u; break;
	case 0x102e8u:
	r0 = 0x1u;
	return r0;
	case 0x102f8u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x2u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10320u; break;
	case 0x10320u:
	r2 = 0x1u;
	write_port16(r1 + 0x0u, r2);
	r3 = 0x0u;
	pc = 0x10338u; break;
	case 0x10338u:
	r2 = read_port8(r1 + 0xau);
	r2 = r2 & 0x8u;
	if (r2 != 0x0u) { pc = 0x10390u; break; }
	pc = 0x10350u; break;
	case 0x10350u:
	r3 = r3 + 0x1u;
	r2 = 0x3e8u;
	if (r3 < r2) { pc = 0x10338u; break; }
	pc = 0x10368u; break;
	case 0x10390u:
	r2 = 0x8u;
	write_port8(r1 + 0xau, r2);
	r2 = read_port8(r1 + 0x2u);
	write_port8(r1 + 0x2u, r2);
	r2 = 0x0u;
	write_port16(r1 + 0x6u, r2);
	write_port16(r1 + 0x8u, r6);
	r2 = 0x4u;
	write_port16(r1 + 0x6u, r2);
	r3 = 0x0u;
	pc = 0x103e0u; break;
	case 0x103e0u:
	if (r3 >= r6) { pc = 0x10410u; break; }
	pc = 0x103e8u; break;
	case 0x103e8u:
	r2 = r5 + r3;
	r2 = *(uint16_t *)(uintptr_t)(r2 + 0x0u);
	write_port16(r1 + 0x8u, r2);
	r3 = r3 + 0x2u;
	pc = 0x103e0u; break;
	case 0x10410u:
	r2 = 0x4u;
	write_port16(r1 + 0x0u, r2);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x1cu);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x1cu) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	case 0x10368u: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10448 — isr entry point; class: mixed */
uint32_t mp_isr_10448(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10448u;
	for (;;) switch (pc) {
	case 0x10448u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x2u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10478u; break;
	case 0x10478u:
	r2 = read_port8(r1 + 0xau);
	if (r2 == 0x0u) { pc = 0x104e8u; break; }
	pc = 0x10488u; break;
	case 0x10488u:
	r3 = r2 & 0x2u;
	if (r3 == 0x0u) { pc = 0x104c0u; break; }
	pc = 0x10498u; break;
	case 0x10498u:
	r3 = 0x2u;
	write_port8(r1 + 0xau, r3);
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
	pc = 0x104c0u; break;
	case 0x104c0u:
	r3 = r2 & 0x1u;
	if (r3 == 0x0u) { pc = 0x104e8u; break; }
	pc = 0x104d0u; break;
	case 0x104d0u:
	stk[--sp] = r4;
	function_104f0(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x104e0u; break;
	case 0x104e0u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	pc = 0x104e8u; break;
	case 0x104e8u:
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x104f0; class: mixed */
void function_104f0(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x104f0u;
	for (;;) switch (pc) {
	case 0x104f0u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	pc = 0x10500u; break;
	case 0x10500u:
	r2 = read_port8(r1 + 0x4u);
	r3 = r2 & 0x80u;
	if (r3 != 0x0u) { pc = 0x105d0u; break; }
	pc = 0x10518u; break;
	case 0x10518u:
	write_port8(r1 + 0x2u, r2);
	r2 = 0x0u;
	write_port16(r1 + 0x6u, r2);
	r6 = read_port16(r1 + 0x8u);
	r2 = 0x4u;
	write_port16(r1 + 0x6u, r2);
	r5 = *(uint32_t *)(uintptr_t)(r4 + 0x18u);
	r3 = 0x0u;
	pc = 0x10558u; break;
	case 0x10558u:
	if (r3 >= r6) { pc = 0x10588u; break; }
	pc = 0x10560u; break;
	case 0x10560u:
	r0 = read_port16(r1 + 0x8u);
	r2 = r5 + r3;
	*(uint16_t *)(uintptr_t)(r2 + 0x0u) = (uint16_t)r0;
	r3 = r3 + 0x2u;
	pc = 0x10558u; break;
	case 0x10588u:
	r2 = 0x5u;
	write_port16(r1 + 0x0u, r2);
	stk[--sp] = r6;
	stk[--sp] = r5;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
	pc = 0x105b0u; break;
	case 0x105b0u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r2;
	pc = 0x10500u; break;
	case 0x105d0u:
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x105d8 — query entry point; class: algo */
uint32_t mp_query_105d8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x105d8u;
	for (;;) switch (pc) {
	case 0x105d8u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) { pc = 0x10630u; break; }
	pc = 0x10600u; break;
	case 0x10600u:
	r3 = 0x10107u;
	if (r1 == r3) { pc = 0x10680u; break; }
	pc = 0x10610u; break;
	case 0x10610u:
	r3 = 0x10114u;
	if (r1 == r3) { pc = 0x106a0u; break; }
	pc = 0x10620u; break;
	case 0x10620u:
	r0 = 0x1u;
	return r0;
	case 0x10630u:
	r3 = 0x0u;
	pc = 0x10638u; break;
	case 0x10638u:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x10u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10638u; break; }
	pc = 0x10670u; break;
	case 0x10670u:
	r0 = 0x0u;
	return r0;
	case 0x10680u:
	r3 = 0x64u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	case 0x106a0u:
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x106c0 — set entry point; class: hw */
uint32_t mp_set_106c0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;
	stk[sp + 4] = arg3;

	uint32_t pc = 0x106c0u;
	for (;;) switch (pc) {
	case 0x106c0u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = stk[sp + 4];
	r5 = 0x1010eu;
	if (r1 == r5) { pc = 0x10730u; break; }
	pc = 0x106f0u; break;
	case 0x106f0u:
	r5 = 0x1010103u;
	if (r1 == r5) { pc = 0x108b0u; break; }
	pc = 0x10700u; break;
	case 0x10700u:
	r5 = 0x12000u;
	if (r1 == r5) { pc = 0x107b0u; break; }
	pc = 0x10710u; break;
	case 0x10710u:
	r5 = 0x12001u;
	if (r1 == r5) { pc = 0x10830u; break; }
	pc = 0x10720u; break;
	case 0x10720u:
	r0 = 0x1u;
	return r0;
	case 0x10730u:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10770u; break;
	case 0x10770u:
	r2 = stk[sp++];
	r5 = 0x1u;
	r6 = r2 & 0x20u;
	if (r6 == 0x0u) { pc = 0x10798u; break; }
	pc = 0x10790u; break;
	case 0x10790u:
	r5 = r5 | 0x2u;
	pc = 0x10798u; break;
	case 0x10798u:
	write_port16(r1 + 0x2u, r5);
	r0 = 0x0u;
	return r0;
	case 0x107b0u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x107e8u; break;
	case 0x107e8u:
	r2 = stk[sp++];
	r5 = read_port16(r1 + 0x0u);
	r6 = 0xff7fu;
	r5 = r5 & r6;
	if (r2 == 0x0u) { pc = 0x10818u; break; }
	pc = 0x10810u; break;
	case 0x10810u:
	r5 = r5 | 0x80u;
	pc = 0x10818u; break;
	case 0x10818u:
	write_port16(r1 + 0x0u, r5);
	r0 = 0x0u;
	return r0;
	case 0x10830u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r2;
	r2 = 0x1u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10868u; break;
	case 0x10868u:
	r2 = stk[sp++];
	r5 = read_port16(r1 + 0x6u);
	r6 = 0xfffeu;
	r5 = r5 & r6;
	if (r2 == 0x0u) { pc = 0x10898u; break; }
	pc = 0x10890u; break;
	case 0x10890u:
	r5 = r5 | 0x1u;
	pc = 0x10898u; break;
	case 0x10898u:
	write_port16(r1 + 0x6u, r5);
	r0 = 0x0u;
	return r0;
	case 0x108b0u:
	r5 = 0x0u;
	pc = 0x108b8u; break;
	case 0x108b8u:
	r6 = r4 + r5;
	r1 = 0x0u;
	*(uint8_t *)(uintptr_t)(r6 + 0x24u) = (uint8_t)r1;
	r5 = r5 + 0x1u;
	r1 = 0x8u;
	if (r5 < r1) { pc = 0x108b8u; break; }
	pc = 0x108e8u; break;
	case 0x108e8u:
	r5 = 0x0u;
	pc = 0x108f0u; break;
	case 0x108f0u:
	if (r5 >= r3) { pc = 0x10990u; break; }
	pc = 0x108f8u; break;
	case 0x108f8u:
	stk[--sp] = r2;
	stk[--sp] = r3;
	stk[--sp] = r5;
	r1 = r2 + r5;
	stk[--sp] = r1;
	r0 = function_10a08(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10928u; break;
	case 0x10928u:
	r5 = stk[sp++];
	r3 = stk[sp++];
	r2 = stk[sp++];
	r1 = r0 >> (0x3u & 31);
	r6 = r0 & 0x7u;
	r0 = 0x1u;
	r0 = r0 << (r6 & 31);
	r6 = r4 + r1;
	r1 = *(uint8_t *)(uintptr_t)(r6 + 0x24u);
	r1 = r1 | r0;
	*(uint8_t *)(uintptr_t)(r6 + 0x24u) = (uint8_t)r1;
	r5 = r5 + 0x6u;
	pc = 0x108f0u; break;
	case 0x10990u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x3u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x109b8u; break;
	case 0x109b8u:
	r5 = 0x0u;
	pc = 0x109c0u; break;
	case 0x109c0u:
	r6 = r4 + r5;
	r6 = *(uint8_t *)(uintptr_t)(r6 + 0x24u);
	r2 = r1 + r5;
	write_port8(r2 + 0x0u, r6);
	r5 = r5 + 0x1u;
	r6 = 0x8u;
	if (r5 < r6) { pc = 0x109c0u; break; }
	pc = 0x109f8u; break;
	case 0x109f8u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10a08; class: algo */
uint32_t function_10a08(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10a08u;
	for (;;) switch (pc) {
	case 0x10a08u:
	r1 = stk[sp + 1];
	r2 = 0x0u;
	r2 = r2 - 0x1u;
	r3 = 0x0u;
	pc = 0x10a28u; break;
	case 0x10a28u:
	r5 = r1 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x0u);
	r2 = r2 ^ r5;
	r6 = 0x0u;
	pc = 0x10a48u; break;
	case 0x10a48u:
	r5 = r2 & 0x1u;
	r2 = r2 >> (0x1u & 31);
	if (r5 == 0x0u) { pc = 0x10a70u; break; }
	pc = 0x10a60u; break;
	case 0x10a60u:
	r5 = 0xedb88320u;
	r2 = r2 ^ r5;
	pc = 0x10a70u; break;
	case 0x10a70u:
	r6 = r6 + 0x1u;
	r5 = 0x8u;
	if (r6 < r5) { pc = 0x10a48u; break; }
	pc = 0x10a88u; break;
	case 0x10a88u:
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10a28u; break; }
	pc = 0x10aa0u; break;
	case 0x10aa0u:
	r5 = 0x0u;
	r5 = r5 - 0x1u;
	r2 = r2 ^ r5;
	r0 = r2 >> (0x1au & 31);
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10ac8 — halt entry point; class: hw */
uint32_t mp_halt_10ac8(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10ac8u;
	for (;;) switch (pc) {
	case 0x10ac8u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10af8u; break;
	case 0x10af8u:
	r2 = 0x0u;
	write_port16(r1 + 0x0u, r2);
	write_port16(r1 + 0x2u, r2);
	r2 = 0x2u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x10b30u; break;
	case 0x10b30u:
	r2 = 0x0u;
	write_port8(r1 + 0xcu, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

