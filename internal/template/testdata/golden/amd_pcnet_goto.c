/* AMD PCNet driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_10110() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_10888((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the AMD PCNet binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is encoded with gotos (see paper, Listing 1).
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
void function_10088(uint32_t arg0, uint32_t arg1, uint32_t arg2);
uint32_t function_100b8(uint32_t arg0, uint32_t arg1);
void function_100e0(uint32_t arg0, uint32_t arg1, uint32_t arg2);
uint32_t mp_initialize_10110(void);
uint32_t function_10460(uint32_t arg0);
uint32_t mp_send_10718(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_isr_10888(uint32_t GlobalState);
void function_10a00(uint32_t arg0);
uint32_t mp_query_10ae8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_10bd0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3);
uint32_t function_10eb0(uint32_t arg0);
uint32_t mp_halt_10f70(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10000:
	r1 = 0x10fc8u;
	r2 = 0x10110u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x10718u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x10888u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x10ae8u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x10bd0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10f70u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
L_10078:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10088; class: hw */
void function_10088(uint32_t arg0, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10088:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	r3 = stk[sp + 3];
	write_port16(r1 + 0x12u, r2);
	write_port16(r1 + 0x10u, r3);
	return;
}

/* original entry 0x100b8; class: hw */
uint32_t function_100b8(uint32_t arg0, uint32_t arg1)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;

L_100b8:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	write_port16(r1 + 0x12u, r2);
	r0 = read_port16(r1 + 0x10u);
	return r0;
	return r0;
}

/* original entry 0x100e0; class: hw */
void function_100e0(uint32_t arg0, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_100e0:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	r3 = stk[sp + 3];
	write_port16(r1 + 0x12u, r2);
	write_port16(r1 + 0x16u, r3);
	return;
}

/* original entry 0x10110 — initialize entry point; class: mixed */
uint32_t mp_initialize_10110(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10110:
	r1 = 0x48u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_10128:
	if (r0 == 0x0u) goto L_10450;
L_10130:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_10150:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_10170:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port16(r1 + 0x14u);
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_100b8(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_101a8:
	r2 = 0x4u;
	if (r0 == r2) goto L_101d8;
L_101b8:
	r1 = 0xdead0021u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_101d0:
	goto L_10450;
L_101d8:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = 0x0u;
L_101e8:
	r2 = r1 + r3;
	r2 = read_port8(r2 + 0x0u);
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x14u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_101e8;
L_10220:
	r1 = 0x18u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
L_10238:
	if (r0 == 0x0u) goto L_10450;
L_10240:
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r0;
	r1 = 0x20u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
L_10260:
	if (r0 == 0x0u) goto L_10450;
L_10268:
	*(uint32_t *)(uintptr_t)(r4 + 0x24u) = (uint32_t)r0;
	r1 = 0x20u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
L_10288:
	if (r0 == 0x0u) goto L_10450;
L_10290:
	*(uint32_t *)(uintptr_t)(r4 + 0x28u) = (uint32_t)r0;
	r1 = 0x1800u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
L_102b0:
	if (r0 == 0x0u) goto L_10450;
L_102b8:
	*(uint32_t *)(uintptr_t)(r4 + 0x2cu) = (uint32_t)r0;
	r1 = 0x1800u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
L_102d8:
	if (r0 == 0x0u) goto L_10450;
L_102e0:
	*(uint32_t *)(uintptr_t)(r4 + 0x30u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r3 = 0x0u;
L_102f8:
	r2 = r4 + r3;
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x14u);
	r5 = r1 + r3;
	mmio_write8(r5 + 0x2u, r2); /* dma */
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_102f8;
L_10330:
	r2 = 0x0u;
	*(uint32_t *)(uintptr_t)(r4 + 0x40u) = (uint32_t)r2;
	r3 = 0x0u;
L_10348:
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x38u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r5 = 0x8u;
	if (r3 < r5) goto L_10348;
L_10370:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r3 = 0xffffu;
	r3 = r2 & r3;
	stk[--sp] = r3;
	r3 = 0x1u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_103b8:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r2 = r2 >> (0x10u & 31);
	stk[--sp] = r2;
	r3 = 0x2u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_103f8:
	stk[--sp] = r4;
	r0 = function_10460(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10408:
	if (r0 == 0x0u) goto L_10430;
	goto L_10410;
L_10430:
	r2 = 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
L_10450:
	r0 = 0x0u;
	return r0;
L_10410: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	return r0;
}

/* original entry 0x10460; class: hw */
uint32_t function_10460(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10460:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x40u);
	mmio_write16(r1 + 0x0u, r2); /* dma */
	r3 = 0x0u;
L_10488:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x38u);
	r6 = r1 + r3;
	mmio_write8(r6 + 0x8u, r5); /* dma */
	r3 = r3 + 0x1u;
	r5 = 0x8u;
	if (r3 < r5) goto L_10488;
L_104c0:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	mmio_write32(r1 + 0x10u, r2); /* dma */
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	mmio_write32(r1 + 0x14u, r2); /* dma */
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x2cu);
	r3 = 0x0u;
L_104f8:
	r5 = r3 << (0x3u & 31);
	r5 = r1 + r5;
	r6 = 0x600u;
	r6 = r6 * r3;
	r6 = r2 + r6;
	mmio_write32(r5 + 0x0u, r6); /* dma */
	r6 = 0x8000u;
	mmio_write16(r5 + 0x4u, r6); /* dma */
	r6 = 0x0u;
	mmio_write16(r5 + 0x6u, r6); /* dma */
	r3 = r3 + 0x1u;
	r6 = 0x4u;
	if (r3 < r6) goto L_104f8;
L_10560:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x30u);
	r3 = 0x0u;
L_10578:
	r5 = r3 << (0x3u & 31);
	r5 = r1 + r5;
	r6 = 0x600u;
	r6 = r6 * r3;
	r6 = r2 + r6;
	mmio_write32(r5 + 0x0u, r6); /* dma */
	r6 = 0x0u;
	mmio_write16(r5 + 0x4u, r6); /* dma */
	mmio_write16(r5 + 0x6u, r6); /* dma */
	r3 = r3 + 0x1u;
	r6 = 0x4u;
	if (r3 < r6) goto L_10578;
L_105d8:
	r2 = 0x41u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10610:
	r6 = 0x0u;
L_10618:
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	r0 = function_100b8(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10640:
	r2 = 0x100u;
	r0 = r0 & r2;
	if (r0 != 0x0u) goto L_10680;
L_10658:
	r6 = r6 + 0x1u;
	r2 = 0x3e8u;
	if (r6 < r2) goto L_10618;
	goto L_10670;
L_10680:
	r2 = 0x140u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_106b8:
	r2 = 0x42u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_106f0:
	r2 = 0x0u;
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	*(uint32_t *)(uintptr_t)(r4 + 0x34u) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
L_10670: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	return r0;
}

/* original entry 0x10718 — send entry point; class: mixed */
uint32_t mp_send_10718(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10718:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) goto L_10750;
L_10740:
	r1 = 0x5eau;
	if (r1 >= r6) goto L_10778;
L_10750:
	r1 = 0xdead0023u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_10768:
	r0 = 0x1u;
	return r0;
L_10778:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r1 = 0x600u;
	r1 = r1 * r2;
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x30u);
	r1 = r3 + r1;
	r3 = 0x0u;
L_107a8:
	if (r3 >= r6) goto L_107e0;
L_107b0:
	r0 = r5 + r3;
	r0 = *(uint8_t *)(uintptr_t)(r0 + 0x0u);
	r2 = r1 + r3;
	mmio_write8(r2 + 0x0u, r0); /* dma */
	r3 = r3 + 0x1u;
	goto L_107a8;
L_107e0:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r3 = r2 << (0x3u & 31);
	r0 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r0 = r0 + r3;
	mmio_write32(r0 + 0x0u, r1); /* dma */
	mmio_write16(r0 + 0x6u, r6); /* dma */
	r3 = 0x8000u;
	mmio_write16(r0 + 0x4u, r3); /* dma */
	r3 = 0x48u;
	stk[--sp] = r3;
	r3 = 0x0u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10858:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r2 = r2 + 0x1u;
	r2 = r2 & 0x3u;
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10888 — isr entry point; class: os */
uint32_t mp_isr_10888(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10888:
	r4 = stk[sp + 1];
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	r0 = function_100b8(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_108b8:
	r2 = r0;
	r3 = 0x200u;
	r3 = r2 & r3;
	if (r3 == 0x0u) goto L_10938;
L_108d8:
	stk[--sp] = r2;
	r3 = 0x240u;
	stk[--sp] = r3;
	r3 = 0x0u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10918:
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
L_10930:
	r2 = stk[sp++];
L_10938:
	r3 = 0x400u;
	r3 = r2 & r3;
	if (r3 == 0x0u) goto L_109a8;
L_10950:
	stk[--sp] = r2;
	stk[--sp] = r4;
	function_10a00(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10968:
	r3 = 0x440u;
	stk[--sp] = r3;
	r3 = 0x0u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_109a0:
	r2 = stk[sp++];
L_109a8:
	r3 = 0x100u;
	r3 = r2 & r3;
	if (r3 == 0x0u) goto L_109f8;
L_109c0:
	r3 = 0x140u;
	stk[--sp] = r3;
	r3 = 0x0u;
	stk[--sp] = r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_109f8:
	return r0;
	return r0;
}

/* original entry 0x10a00; class: mixed */
void function_10a00(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10a00:
	r4 = stk[sp + 1];
L_10a08:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x34u);
	r3 = r2 << (0x3u & 31);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	r1 = r1 + r3;
	r5 = mmio_read16(r1 + 0x4u); /* dma */
	r6 = 0x8000u;
	r5 = r5 & r6;
	if (r5 != 0x0u) goto L_10ae0;
L_10a48:
	r6 = mmio_read16(r1 + 0x6u); /* dma */
	r5 = 0x600u;
	r5 = r5 * r2;
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x2cu);
	r3 = r3 + r5;
	stk[--sp] = r1;
	stk[--sp] = r6;
	stk[--sp] = r3;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
L_10a90:
	r1 = stk[sp++];
	r5 = 0x8000u;
	mmio_write16(r1 + 0x4u, r5); /* dma */
	r5 = 0x0u;
	mmio_write16(r1 + 0x6u, r5); /* dma */
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x34u);
	r2 = r2 + 0x1u;
	r2 = r2 & 0x3u;
	*(uint32_t *)(uintptr_t)(r4 + 0x34u) = (uint32_t)r2;
	goto L_10a08;
L_10ae0:
	return;
}

/* original entry 0x10ae8 — query entry point; class: algo */
uint32_t mp_query_10ae8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10ae8:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) goto L_10b40;
L_10b10:
	r3 = 0x10107u;
	if (r1 == r3) goto L_10b90;
L_10b20:
	r3 = 0x10114u;
	if (r1 == r3) goto L_10bb0;
L_10b30:
	r0 = 0x1u;
	return r0;
L_10b40:
	r3 = 0x0u;
L_10b48:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x14u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10b48;
L_10b80:
	r0 = 0x0u;
	return r0;
L_10b90:
	r3 = 0xau;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
L_10bb0:
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10bd0 — set entry point; class: algo */
uint32_t mp_set_10bd0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;
	stk[sp + 4] = arg3;

L_10bd0:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = stk[sp + 4];
	r5 = 0x1010eu;
	if (r1 == r5) goto L_10c50;
L_10c00:
	r5 = 0x1010103u;
	if (r1 == r5) goto L_10db0;
L_10c10:
	r5 = 0x12000u;
	if (r1 == r5) goto L_10ca8;
L_10c20:
	r5 = 0xfd010106u;
	if (r1 == r5) goto L_10d08;
L_10c30:
	r5 = 0x12001u;
	if (r1 == r5) goto L_10d68;
L_10c40:
	r0 = 0x1u;
	return r0;
L_10c50:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r5 = 0x0u;
	r6 = r2 & 0x20u;
	if (r6 == 0x0u) goto L_10c80;
L_10c78:
	r5 = 0x8000u;
L_10c80:
	*(uint32_t *)(uintptr_t)(r4 + 0x40u) = (uint32_t)r5;
	stk[--sp] = r4;
	r0 = function_10460(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10c98:
	r0 = 0x0u;
	return r0;
L_10ca8:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r5 = 0x0u;
	if (r2 == 0x0u) goto L_10cc8;
L_10cc0:
	r5 = 0x1u;
L_10cc8:
	stk[--sp] = r5;
	r5 = 0x9u;
	stk[--sp] = r5;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_100e0(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10cf8:
	r0 = 0x0u;
	return r0;
L_10d08:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r5 = 0x0u;
	if (r2 == 0x0u) goto L_10d28;
L_10d20:
	r5 = 0x2u;
L_10d28:
	stk[--sp] = r5;
	r5 = 0x5u;
	stk[--sp] = r5;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10d58:
	r0 = 0x0u;
	return r0;
L_10d68:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	stk[--sp] = r2;
	r5 = 0x4u;
	stk[--sp] = r5;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_100e0(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10da0:
	r0 = 0x0u;
	return r0;
L_10db0:
	r5 = 0x0u;
L_10db8:
	r6 = r4 + r5;
	r1 = 0x0u;
	*(uint8_t *)(uintptr_t)(r6 + 0x38u) = (uint8_t)r1;
	r5 = r5 + 0x1u;
	r1 = 0x8u;
	if (r5 < r1) goto L_10db8;
L_10de8:
	r5 = 0x0u;
L_10df0:
	if (r5 >= r3) goto L_10e90;
L_10df8:
	stk[--sp] = r2;
	stk[--sp] = r3;
	stk[--sp] = r5;
	r1 = r2 + r5;
	stk[--sp] = r1;
	r0 = function_10eb0(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10e28:
	r5 = stk[sp++];
	r3 = stk[sp++];
	r2 = stk[sp++];
	r1 = r0 >> (0x3u & 31);
	r6 = r0 & 0x7u;
	r0 = 0x1u;
	r0 = r0 << (r6 & 31);
	r6 = r4 + r1;
	r1 = *(uint8_t *)(uintptr_t)(r6 + 0x38u);
	r1 = r1 | r0;
	*(uint8_t *)(uintptr_t)(r6 + 0x38u) = (uint8_t)r1;
	r5 = r5 + 0x6u;
	goto L_10df0;
L_10e90:
	stk[--sp] = r4;
	r0 = function_10460(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10ea0:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10eb0; class: algo */
uint32_t function_10eb0(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10eb0:
	r1 = stk[sp + 1];
	r2 = 0x0u;
	r2 = r2 - 0x1u;
	r3 = 0x0u;
L_10ed0:
	r5 = r1 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x0u);
	r2 = r2 ^ r5;
	r6 = 0x0u;
L_10ef0:
	r5 = r2 & 0x1u;
	r2 = r2 >> (0x1u & 31);
	if (r5 == 0x0u) goto L_10f18;
L_10f08:
	r5 = 0xedb88320u;
	r2 = r2 ^ r5;
L_10f18:
	r6 = r6 + 0x1u;
	r5 = 0x8u;
	if (r6 < r5) goto L_10ef0;
L_10f30:
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10ed0;
L_10f48:
	r5 = 0x0u;
	r5 = r5 - 0x1u;
	r2 = r2 ^ r5;
	r0 = r2 >> (0x1au & 31);
	return r0;
	return r0;
}

/* original entry 0x10f70 — halt entry point; class: algo */
uint32_t mp_halt_10f70(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10f70:
	r4 = stk[sp + 1];
	r2 = 0x4u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	function_10088(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10fb0:
	r2 = 0x0u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	return r0;
}

