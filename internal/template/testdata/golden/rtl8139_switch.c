/* RTL8139 driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_10088() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_104b0((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the RTL8139 binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is a switch-dispatch state machine over the
 * recovered basic-block addresses.
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
uint32_t mp_initialize_10088(void);
uint32_t function_102b0(uint32_t arg0);
uint32_t function_10328(uint32_t arg0);
uint32_t mp_send_10380(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_isr_104b0(uint32_t GlobalState);
void function_10558(uint32_t arg0);
uint32_t mp_query_106a8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_107a0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3);
uint32_t function_10ab8(uint32_t arg0);
uint32_t mp_timer_10b78(uint32_t GlobalState);
uint32_t mp_halt_10bd0(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10000u;
	for (;;) switch (pc) {
	case 0x10000u:
	r1 = 0x10c08u;
	r2 = 0x10088u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x10380u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x104b0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x106a8u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x107a0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10bd0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
	pc = 0x10078u; break;
	case 0x10078u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10088 — initialize entry point; class: mixed */
uint32_t mp_initialize_10088(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10088u;
	for (;;) switch (pc) {
	case 0x10088u:
	r1 = 0x48u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x100a0u; break;
	case 0x100a0u:
	if (r0 == 0x0u) { pc = 0x102a0u; break; }
	pc = 0x100a8u; break;
	case 0x100a8u:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x100c8u; break;
	case 0x100c8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x100e8u; break;
	case 0x100e8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port8(r1 + 0x37u);
	r3 = 0xffu;
	if (r2 == r3) { pc = 0x10288u; break; }
	pc = 0x10110u; break;
	case 0x10110u:
	stk[--sp] = r4;
	r0 = function_102b0(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10120u; break;
	case 0x10120u:
	if (r0 == 0x0u) { pc = 0x10148u; break; }
	pc = 0x10128u; break;
	case 0x10148u:
	stk[--sp] = r4;
	r0 = function_10328(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10158u; break;
	case 0x10158u:
	r1 = 0x2810u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10170u; break;
	case 0x10170u:
	if (r0 == 0x0u) { pc = 0x102a0u; break; }
	pc = 0x10178u; break;
	case 0x10178u:
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r0;
	r1 = 0x2000u;
	stk[--sp] = r1;
	r0 = os_NdisMAllocateSharedMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10198u; break;
	case 0x10198u:
	if (r0 == 0x0u) { pc = 0x102a0u; break; }
	pc = 0x101a0u; break;
	case 0x101a0u:
	*(uint32_t *)(uintptr_t)(r4 + 0x24u) = (uint32_t)r0;
	r1 = 0x600u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x101c0u; break;
	case 0x101c0u:
	if (r0 == 0x0u) { pc = 0x102a0u; break; }
	pc = 0x101c8u; break;
	case 0x101c8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x3cu) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	write_port32(r1 + 0x30u, r2);
	r2 = 0x0u;
	*(uint32_t *)(uintptr_t)(r4 + 0x28u) = (uint32_t)r2;
	write_port16(r1 + 0x38u, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	r2 = 0x5u;
	write_port16(r1 + 0x3cu, r2);
	r2 = 0x8u;
	write_port32(r1 + 0x44u, r2);
	r2 = 0xcu;
	write_port8(r1 + 0x37u, r2);
	r1 = 0x10b78u;
	stk[--sp] = r1;
	r0 = os_NdisMInitializeTimer(stk[sp + 0]);
	sp += 1;
	pc = 0x10250u; break;
	case 0x10250u:
	r1 = 0x64u;
	stk[--sp] = r1;
	r0 = os_NdisMSetTimer(stk[sp + 0]);
	sp += 1;
	pc = 0x10268u; break;
	case 0x10268u:
	r2 = 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
	case 0x10288u:
	r1 = 0xdead0010u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x102a0u; break;
	case 0x102a0u:
	r0 = 0x0u;
	return r0;
	case 0x10128u: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x102b0; class: hw */
uint32_t function_102b0(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x102b0u;
	for (;;) switch (pc) {
	case 0x102b0u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x10u;
	write_port8(r1 + 0x37u, r2);
	r3 = 0x0u;
	pc = 0x102d8u; break;
	case 0x102d8u:
	r2 = read_port8(r1 + 0x37u);
	r2 = r2 & 0x10u;
	if (r2 == 0x0u) { pc = 0x10318u; break; }
	pc = 0x102f0u; break;
	case 0x102f0u:
	r3 = r3 + 0x1u;
	r2 = 0x3e8u;
	if (r3 < r2) { pc = 0x102d8u; break; }
	pc = 0x10308u; break;
	case 0x10318u:
	r0 = 0x0u;
	return r0;
	case 0x10308u: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10328; class: hw */
uint32_t function_10328(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10328u;
	for (;;) switch (pc) {
	case 0x10328u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = 0x0u;
	pc = 0x10340u; break;
	case 0x10340u:
	r2 = r1 + r3;
	r2 = read_port8(r2 + 0x0u);
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x14u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10340u; break; }
	pc = 0x10378u; break;
	case 0x10378u:
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10380 — send entry point; class: mixed */
uint32_t mp_send_10380(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10380u;
	for (;;) switch (pc) {
	case 0x10380u:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) { pc = 0x103b8u; break; }
	pc = 0x103a8u; break;
	case 0x103a8u:
	r1 = 0x5eau;
	if (r1 >= r6) { pc = 0x103e0u; break; }
	pc = 0x103b8u; break;
	case 0x103b8u:
	r1 = 0xdead0012u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x103d0u; break;
	case 0x103d0u:
	r0 = 0x1u;
	return r0;
	case 0x103e0u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r3 = r2 << (0xbu & 31);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	r1 = r1 + r3;
	r3 = 0x0u;
	pc = 0x10408u; break;
	case 0x10408u:
	if (r3 >= r6) { pc = 0x10440u; break; }
	pc = 0x10410u; break;
	case 0x10410u:
	r0 = r5 + r3;
	r0 = *(uint8_t *)(uintptr_t)(r0 + 0x0u);
	r2 = r1 + r3;
	mmio_write8(r2 + 0x0u, r0); /* dma */
	r3 = r3 + 0x1u;
	pc = 0x10408u; break;
	case 0x10440u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	r3 = r2 << (0x2u & 31);
	r0 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r0 = r0 + r3;
	write_port32(r0 + 0x20u, r1);
	write_port32(r0 + 0x10u, r6);
	r2 = r2 + 0x1u;
	r2 = r2 & 0x3u;
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x2cu);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x2cu) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x104b0 — isr entry point; class: mixed */
uint32_t mp_isr_104b0(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x104b0u;
	for (;;) switch (pc) {
	case 0x104b0u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port16(r1 + 0x3eu);
	if (r2 == 0x0u) { pc = 0x10550u; break; }
	pc = 0x104d0u; break;
	case 0x104d0u:
	r3 = r2 & 0x4u;
	if (r3 == 0x0u) { pc = 0x10508u; break; }
	pc = 0x104e0u; break;
	case 0x104e0u:
	r3 = 0x4u;
	write_port16(r1 + 0x3eu, r3);
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
	pc = 0x10508u; break;
	case 0x10508u:
	r3 = r2 & 0x1u;
	if (r3 == 0x0u) { pc = 0x10550u; break; }
	pc = 0x10518u; break;
	case 0x10518u:
	stk[--sp] = r2;
	stk[--sp] = r4;
	function_10558(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10530u; break;
	case 0x10530u:
	r2 = stk[sp++];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = 0x1u;
	write_port16(r1 + 0x3eu, r3);
	pc = 0x10550u; break;
	case 0x10550u:
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10558; class: mixed */
void function_10558(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10558u;
	for (;;) switch (pc) {
	case 0x10558u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	pc = 0x10568u; break;
	case 0x10568u:
	r2 = read_port8(r1 + 0x37u);
	r2 = r2 & 0x1u;
	if (r2 != 0x0u) { pc = 0x106a0u; break; }
	pc = 0x10580u; break;
	case 0x10580u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r5 = r2 + r3;
	r6 = mmio_read16(r5 + 0x2u); /* dma */
	r6 = r6 - 0x4u;
	r0 = *(uint32_t *)(uintptr_t)(r4 + 0x3cu);
	stk[--sp] = r0;
	r3 = r5 + 0x4u;
	r5 = 0x0u;
	pc = 0x105c8u; break;
	case 0x105c8u:
	if (r5 >= r6) { pc = 0x10608u; break; }
	pc = 0x105d0u; break;
	case 0x105d0u:
	r0 = r3 + r5;
	r0 = mmio_read8(r0 + 0x0u); /* dma */
	r2 = stk[sp + 0];
	r2 = r2 + r5;
	*(uint8_t *)(uintptr_t)(r2 + 0x0u) = (uint8_t)r0;
	r5 = r5 + 0x1u;
	pc = 0x105c8u; break;
	case 0x10608u:
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r3 = r3 + r6;
	r3 = r3 + 0x7u;
	r2 = 0xfffffffcu;
	r3 = r3 & r2;
	r2 = 0x1fffu;
	r3 = r3 & r2;
	*(uint32_t *)(uintptr_t)(r4 + 0x28u) = (uint32_t)r3;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	write_port16(r1 + 0x38u, r3);
	r2 = stk[sp++];
	stk[--sp] = r6;
	stk[--sp] = r2;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
	pc = 0x10678u; break;
	case 0x10678u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x30u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x30u) = (uint32_t)r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	pc = 0x10568u; break;
	case 0x106a0u:
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x106a8 — query entry point; class: hw */
uint32_t mp_query_106a8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x106a8u;
	for (;;) switch (pc) {
	case 0x106a8u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) { pc = 0x10700u; break; }
	pc = 0x106d0u; break;
	case 0x106d0u:
	r3 = 0x10107u;
	if (r1 == r3) { pc = 0x10750u; break; }
	pc = 0x106e0u; break;
	case 0x106e0u:
	r3 = 0x10114u;
	if (r1 == r3) { pc = 0x10770u; break; }
	pc = 0x106f0u; break;
	case 0x106f0u:
	r0 = 0x1u;
	return r0;
	case 0x10700u:
	r3 = 0x0u;
	pc = 0x10708u; break;
	case 0x10708u:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x14u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10708u; break; }
	pc = 0x10740u; break;
	case 0x10740u:
	r0 = 0x0u;
	return r0;
	case 0x10750u:
	r3 = 0x64u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	case 0x10770u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = read_port8(r1 + 0x58u);
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x107a0 — set entry point; class: hw */
uint32_t mp_set_107a0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;
	stk[sp + 4] = arg3;

	uint32_t pc = 0x107a0u;
	for (;;) switch (pc) {
	case 0x107a0u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = stk[sp + 4];
	r5 = 0x1010eu;
	if (r1 == r5) { pc = 0x10820u; break; }
	pc = 0x107d0u; break;
	case 0x107d0u:
	r5 = 0x1010103u;
	if (r1 == r5) { pc = 0x10978u; break; }
	pc = 0x107e0u; break;
	case 0x107e0u:
	r5 = 0x12000u;
	if (r1 == r5) { pc = 0x10888u; break; }
	pc = 0x107f0u; break;
	case 0x107f0u:
	r5 = 0xfd010106u;
	if (r1 == r5) { pc = 0x108d8u; break; }
	pc = 0x10800u; break;
	case 0x10800u:
	r5 = 0x12001u;
	if (r1 == r5) { pc = 0x10928u; break; }
	pc = 0x10810u; break;
	case 0x10810u:
	r0 = 0x1u;
	return r0;
	case 0x10820u:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r5 = 0x8u;
	r6 = r2 & 0x20u;
	if (r6 == 0x0u) { pc = 0x10850u; break; }
	pc = 0x10848u; break;
	case 0x10848u:
	r5 = r5 | 0x1u;
	pc = 0x10850u; break;
	case 0x10850u:
	r6 = r2 & 0x2u;
	if (r6 == 0x0u) { pc = 0x10868u; break; }
	pc = 0x10860u; break;
	case 0x10860u:
	r5 = r5 | 0x4u;
	pc = 0x10868u; break;
	case 0x10868u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	write_port32(r1 + 0x44u, r5);
	r0 = 0x0u;
	return r0;
	case 0x10888u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r5 = read_port8(r1 + 0x58u);
	r6 = 0xfeu;
	r5 = r5 & r6;
	if (r2 == 0x0u) { pc = 0x108c0u; break; }
	pc = 0x108b8u; break;
	case 0x108b8u:
	r5 = r5 | 0x1u;
	pc = 0x108c0u; break;
	case 0x108c0u:
	write_port8(r1 + 0x58u, r5);
	r0 = 0x0u;
	return r0;
	case 0x108d8u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r5 = read_port8(r1 + 0x52u);
	r6 = 0xfeu;
	r5 = r5 & r6;
	if (r2 == 0x0u) { pc = 0x10910u; break; }
	pc = 0x10908u; break;
	case 0x10908u:
	r5 = r5 | 0x1u;
	pc = 0x10910u; break;
	case 0x10910u:
	write_port8(r1 + 0x52u, r5);
	r0 = 0x0u;
	return r0;
	case 0x10928u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r5 = read_port8(r1 + 0x52u);
	r6 = 0xefu;
	r5 = r5 & r6;
	if (r2 == 0x0u) { pc = 0x10960u; break; }
	pc = 0x10958u; break;
	case 0x10958u:
	r5 = r5 | 0x10u;
	pc = 0x10960u; break;
	case 0x10960u:
	write_port8(r1 + 0x52u, r5);
	r0 = 0x0u;
	return r0;
	case 0x10978u:
	r5 = 0x0u;
	pc = 0x10980u; break;
	case 0x10980u:
	r6 = r4 + r5;
	r1 = 0x0u;
	*(uint8_t *)(uintptr_t)(r6 + 0x34u) = (uint8_t)r1;
	r5 = r5 + 0x1u;
	r1 = 0x8u;
	if (r5 < r1) { pc = 0x10980u; break; }
	pc = 0x109b0u; break;
	case 0x109b0u:
	r5 = 0x0u;
	pc = 0x109b8u; break;
	case 0x109b8u:
	if (r5 >= r3) { pc = 0x10a58u; break; }
	pc = 0x109c0u; break;
	case 0x109c0u:
	stk[--sp] = r2;
	stk[--sp] = r3;
	stk[--sp] = r5;
	r1 = r2 + r5;
	stk[--sp] = r1;
	r0 = function_10ab8(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x109f0u; break;
	case 0x109f0u:
	r5 = stk[sp++];
	r3 = stk[sp++];
	r2 = stk[sp++];
	r1 = r0 >> (0x3u & 31);
	r6 = r0 & 0x7u;
	r0 = 0x1u;
	r0 = r0 << (r6 & 31);
	r6 = r4 + r1;
	r1 = *(uint8_t *)(uintptr_t)(r6 + 0x34u);
	r1 = r1 | r0;
	*(uint8_t *)(uintptr_t)(r6 + 0x34u) = (uint8_t)r1;
	r5 = r5 + 0x6u;
	pc = 0x109b8u; break;
	case 0x10a58u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r1 = r1 + 0x8u;
	r5 = 0x0u;
	pc = 0x10a70u; break;
	case 0x10a70u:
	r6 = r4 + r5;
	r6 = *(uint8_t *)(uintptr_t)(r6 + 0x34u);
	r2 = r1 + r5;
	write_port8(r2 + 0x0u, r6);
	r5 = r5 + 0x1u;
	r6 = 0x8u;
	if (r5 < r6) { pc = 0x10a70u; break; }
	pc = 0x10aa8u; break;
	case 0x10aa8u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10ab8; class: algo */
uint32_t function_10ab8(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10ab8u;
	for (;;) switch (pc) {
	case 0x10ab8u:
	r1 = stk[sp + 1];
	r2 = 0x0u;
	r2 = r2 - 0x1u;
	r3 = 0x0u;
	pc = 0x10ad8u; break;
	case 0x10ad8u:
	r5 = r1 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x0u);
	r2 = r2 ^ r5;
	r6 = 0x0u;
	pc = 0x10af8u; break;
	case 0x10af8u:
	r5 = r2 & 0x1u;
	r2 = r2 >> (0x1u & 31);
	if (r5 == 0x0u) { pc = 0x10b20u; break; }
	pc = 0x10b10u; break;
	case 0x10b10u:
	r5 = 0xedb88320u;
	r2 = r2 ^ r5;
	pc = 0x10b20u; break;
	case 0x10b20u:
	r6 = r6 + 0x1u;
	r5 = 0x8u;
	if (r6 < r5) { pc = 0x10af8u; break; }
	pc = 0x10b38u; break;
	case 0x10b38u:
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10ad8u; break; }
	pc = 0x10b50u; break;
	case 0x10b50u:
	r5 = 0x0u;
	r5 = r5 - 0x1u;
	r2 = r2 ^ r5;
	r0 = r2 >> (0x1au & 31);
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10b78 — timer entry point; class: hw */
uint32_t mp_timer_10b78(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10b78u;
	for (;;) switch (pc) {
	case 0x10b78u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port8(r1 + 0x58u);
	r5 = read_port8(r1 + 0x52u);
	r6 = 0xefu;
	r5 = r5 & r6;
	r2 = r2 & 0x1u;
	if (r2 == 0x0u) { pc = 0x10bc0u; break; }
	pc = 0x10bb8u; break;
	case 0x10bb8u:
	r5 = r5 | 0x10u;
	pc = 0x10bc0u; break;
	case 0x10bc0u:
	write_port8(r1 + 0x52u, r5);
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10bd0 — halt entry point; class: hw */
uint32_t mp_halt_10bd0(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10bd0u;
	for (;;) switch (pc) {
	case 0x10bd0u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	write_port16(r1 + 0x3cu, r2);
	write_port8(r1 + 0x37u, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

