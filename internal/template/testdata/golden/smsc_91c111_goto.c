/* SMSC 91C111 driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_100a8() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_10448((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the SMSC 91C111 binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is encoded with gotos (see paper, Listing 1).
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
uint32_t function_10088(uint32_t arg0, uint32_t arg1);
uint32_t mp_initialize_100a8(void);
uint32_t mp_send_10298(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_isr_10448(uint32_t GlobalState);
void function_104f0(uint32_t arg0);
uint32_t mp_query_105d8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_106c0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3);
uint32_t function_10a08(uint32_t arg0);
uint32_t mp_halt_10ac8(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10000:
	r1 = 0x10b50u;
	r2 = 0x100a8u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x10298u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x10448u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x105d8u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x106c0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10ac8u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
L_10078:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10088; class: hw */
uint32_t function_10088(uint32_t arg0, uint32_t arg1)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;

L_10088:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	write_port8(r1 + 0xeu, r2);
	return r0;
	return r0;
}

/* original entry 0x100a8 — initialize entry point; class: mixed */
uint32_t mp_initialize_100a8(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_100a8:
	r1 = 0x30u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_100c0:
	if (r0 == 0x0u) goto L_10288;
L_100c8:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_100e8:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_10108:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x2u;
	write_port8(r1 + 0xeu, r2);
	r3 = read_port8(r1 + 0xeu);
	if (r3 == r2) goto L_10158;
L_10138:
	r1 = 0xdead0031u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_10150:
	goto L_10288;
L_10158:
	r2 = 0x2u;
	write_port16(r1 + 0x0u, r2);
	r2 = 0x1u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10188:
	r3 = 0x0u;
L_10190:
	r2 = r1 + r3;
	r2 = read_port8(r2 + 0x0u);
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x10u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10190;
L_101c8:
	r1 = 0x600u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_101e0:
	if (r0 == 0x0u) goto L_10288;
L_101e8:
	*(uint32_t *)(uintptr_t)(r4 + 0x18u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10218:
	r2 = 0x1u;
	write_port16(r1 + 0x0u, r2);
	r2 = 0x1u;
	write_port16(r1 + 0x2u, r2);
	r2 = 0x2u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10258:
	r2 = 0x3u;
	write_port8(r1 + 0xcu, r2);
	r2 = 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
L_10288:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10298 — send entry point; class: mixed */
uint32_t mp_send_10298(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10298:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) goto L_102d0;
L_102c0:
	r1 = 0x5eau;
	if (r1 >= r6) goto L_102f8;
L_102d0:
	r1 = 0xdead0032u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_102e8:
	r0 = 0x1u;
	return r0;
L_102f8:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x2u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10320:
	r2 = 0x1u;
	write_port16(r1 + 0x0u, r2);
	r3 = 0x0u;
L_10338:
	r2 = read_port8(r1 + 0xau);
	r2 = r2 & 0x8u;
	if (r2 != 0x0u) goto L_10390;
L_10350:
	r3 = r3 + 0x1u;
	r2 = 0x3e8u;
	if (r3 < r2) goto L_10338;
	goto L_10368;
L_10390:
	r2 = 0x8u;
	write_port8(r1 + 0xau, r2);
	r2 = read_port8(r1 + 0x2u);
	write_port8(r1 + 0x2u, r2);
	r2 = 0x0u;
	write_port16(r1 + 0x6u, r2);
	write_port16(r1 + 0x8u, r6);
	r2 = 0x4u;
	write_port16(r1 + 0x6u, r2);
	r3 = 0x0u;
L_103e0:
	if (r3 >= r6) goto L_10410;
L_103e8:
	r2 = r5 + r3;
	r2 = *(uint16_t *)(uintptr_t)(r2 + 0x0u);
	write_port16(r1 + 0x8u, r2);
	r3 = r3 + 0x2u;
	goto L_103e0;
L_10410:
	r2 = 0x4u;
	write_port16(r1 + 0x0u, r2);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x1cu);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x1cu) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
L_10368: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	return r0;
}

/* original entry 0x10448 — isr entry point; class: mixed */
uint32_t mp_isr_10448(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10448:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x2u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10478:
	r2 = read_port8(r1 + 0xau);
	if (r2 == 0x0u) goto L_104e8;
L_10488:
	r3 = r2 & 0x2u;
	if (r3 == 0x0u) goto L_104c0;
L_10498:
	r3 = 0x2u;
	write_port8(r1 + 0xau, r3);
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
L_104c0:
	r3 = r2 & 0x1u;
	if (r3 == 0x0u) goto L_104e8;
L_104d0:
	stk[--sp] = r4;
	function_104f0(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_104e0:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
L_104e8:
	return r0;
	return r0;
}

/* original entry 0x104f0; class: mixed */
void function_104f0(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_104f0:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
L_10500:
	r2 = read_port8(r1 + 0x4u);
	r3 = r2 & 0x80u;
	if (r3 != 0x0u) goto L_105d0;
L_10518:
	write_port8(r1 + 0x2u, r2);
	r2 = 0x0u;
	write_port16(r1 + 0x6u, r2);
	r6 = read_port16(r1 + 0x8u);
	r2 = 0x4u;
	write_port16(r1 + 0x6u, r2);
	r5 = *(uint32_t *)(uintptr_t)(r4 + 0x18u);
	r3 = 0x0u;
L_10558:
	if (r3 >= r6) goto L_10588;
L_10560:
	r0 = read_port16(r1 + 0x8u);
	r2 = r5 + r3;
	*(uint16_t *)(uintptr_t)(r2 + 0x0u) = (uint16_t)r0;
	r3 = r3 + 0x2u;
	goto L_10558;
L_10588:
	r2 = 0x5u;
	write_port16(r1 + 0x0u, r2);
	stk[--sp] = r6;
	stk[--sp] = r5;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
L_105b0:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r2;
	goto L_10500;
L_105d0:
	return;
}

/* original entry 0x105d8 — query entry point; class: algo */
uint32_t mp_query_105d8(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_105d8:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) goto L_10630;
L_10600:
	r3 = 0x10107u;
	if (r1 == r3) goto L_10680;
L_10610:
	r3 = 0x10114u;
	if (r1 == r3) goto L_106a0;
L_10620:
	r0 = 0x1u;
	return r0;
L_10630:
	r3 = 0x0u;
L_10638:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x10u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10638;
L_10670:
	r0 = 0x0u;
	return r0;
L_10680:
	r3 = 0x64u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
L_106a0:
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x106c0 — set entry point; class: hw */
uint32_t mp_set_106c0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;
	stk[sp + 4] = arg3;

L_106c0:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = stk[sp + 4];
	r5 = 0x1010eu;
	if (r1 == r5) goto L_10730;
L_106f0:
	r5 = 0x1010103u;
	if (r1 == r5) goto L_108b0;
L_10700:
	r5 = 0x12000u;
	if (r1 == r5) goto L_107b0;
L_10710:
	r5 = 0x12001u;
	if (r1 == r5) goto L_10830;
L_10720:
	r0 = 0x1u;
	return r0;
L_10730:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10770:
	r2 = stk[sp++];
	r5 = 0x1u;
	r6 = r2 & 0x20u;
	if (r6 == 0x0u) goto L_10798;
L_10790:
	r5 = r5 | 0x2u;
L_10798:
	write_port16(r1 + 0x2u, r5);
	r0 = 0x0u;
	return r0;
L_107b0:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_107e8:
	r2 = stk[sp++];
	r5 = read_port16(r1 + 0x0u);
	r6 = 0xff7fu;
	r5 = r5 & r6;
	if (r2 == 0x0u) goto L_10818;
L_10810:
	r5 = r5 | 0x80u;
L_10818:
	write_port16(r1 + 0x0u, r5);
	r0 = 0x0u;
	return r0;
L_10830:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r2;
	r2 = 0x1u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10868:
	r2 = stk[sp++];
	r5 = read_port16(r1 + 0x6u);
	r6 = 0xfffeu;
	r5 = r5 & r6;
	if (r2 == 0x0u) goto L_10898;
L_10890:
	r5 = r5 | 0x1u;
L_10898:
	write_port16(r1 + 0x6u, r5);
	r0 = 0x0u;
	return r0;
L_108b0:
	r5 = 0x0u;
L_108b8:
	r6 = r4 + r5;
	r1 = 0x0u;
	*(uint8_t *)(uintptr_t)(r6 + 0x24u) = (uint8_t)r1;
	r5 = r5 + 0x1u;
	r1 = 0x8u;
	if (r5 < r1) goto L_108b8;
L_108e8:
	r5 = 0x0u;
L_108f0:
	if (r5 >= r3) goto L_10990;
L_108f8:
	stk[--sp] = r2;
	stk[--sp] = r3;
	stk[--sp] = r5;
	r1 = r2 + r5;
	stk[--sp] = r1;
	r0 = function_10a08(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10928:
	r5 = stk[sp++];
	r3 = stk[sp++];
	r2 = stk[sp++];
	r1 = r0 >> (0x3u & 31);
	r6 = r0 & 0x7u;
	r0 = 0x1u;
	r0 = r0 << (r6 & 31);
	r6 = r4 + r1;
	r1 = *(uint8_t *)(uintptr_t)(r6 + 0x24u);
	r1 = r1 | r0;
	*(uint8_t *)(uintptr_t)(r6 + 0x24u) = (uint8_t)r1;
	r5 = r5 + 0x6u;
	goto L_108f0;
L_10990:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x3u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_109b8:
	r5 = 0x0u;
L_109c0:
	r6 = r4 + r5;
	r6 = *(uint8_t *)(uintptr_t)(r6 + 0x24u);
	r2 = r1 + r5;
	write_port8(r2 + 0x0u, r6);
	r5 = r5 + 0x1u;
	r6 = 0x8u;
	if (r5 < r6) goto L_109c0;
L_109f8:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10a08; class: algo */
uint32_t function_10a08(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10a08:
	r1 = stk[sp + 1];
	r2 = 0x0u;
	r2 = r2 - 0x1u;
	r3 = 0x0u;
L_10a28:
	r5 = r1 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x0u);
	r2 = r2 ^ r5;
	r6 = 0x0u;
L_10a48:
	r5 = r2 & 0x1u;
	r2 = r2 >> (0x1u & 31);
	if (r5 == 0x0u) goto L_10a70;
L_10a60:
	r5 = 0xedb88320u;
	r2 = r2 ^ r5;
L_10a70:
	r6 = r6 + 0x1u;
	r5 = 0x8u;
	if (r6 < r5) goto L_10a48;
L_10a88:
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10a28;
L_10aa0:
	r5 = 0x0u;
	r5 = r5 - 0x1u;
	r2 = r2 ^ r5;
	r0 = r2 >> (0x1au & 31);
	return r0;
	return r0;
}

/* original entry 0x10ac8 — halt entry point; class: hw */
uint32_t mp_halt_10ac8(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10ac8:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10af8:
	r2 = 0x0u;
	write_port16(r1 + 0x0u, r2);
	write_port16(r1 + 0x2u, r2);
	r2 = 0x2u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	r0 = function_10088(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_10b30:
	r2 = 0x0u;
	write_port8(r1 + 0xcu, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	return r0;
}

