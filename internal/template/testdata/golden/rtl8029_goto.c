/* RTL8029 driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_10088() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_10540((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the RTL8029 binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is encoded with gotos (see paper, Listing 1).
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
uint32_t mp_initialize_10088(void);
uint32_t function_10238(uint32_t arg0);
void function_10278(uint32_t arg0);
void function_102c0(uint32_t arg0);
void function_102e8(uint32_t arg0);
void function_10310(uint32_t arg0, uint32_t arg1, uint32_t arg2);
uint32_t function_10360(uint32_t arg0);
uint32_t mp_send_103e0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
void function_104e8(uint32_t arg0, uint32_t arg1);
uint32_t mp_isr_10540(uint32_t GlobalState);
void function_10620(uint32_t arg0);
uint32_t mp_query_10750(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_10838(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3);
uint32_t function_10a80(uint32_t arg0);
uint32_t mp_halt_10b40(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10000:
	r1 = 0x10b80u;
	r2 = 0x10088u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x103e0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x10540u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x10750u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x10838u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10b40u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
L_10078:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10088 — initialize entry point; class: mixed */
uint32_t mp_initialize_10088(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10088:
	r1 = 0x40u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_100a0:
	if (r0 == 0x0u) goto L_10210;
L_100a8:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_100c8:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_100e8:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	r0 = function_10238(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10108:
	if (r0 == 0x0u) goto L_10148;
L_10110:
	r1 = 0xdead0001u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_10128:
	stk[--sp] = r4;
	r0 = os_NdisFreeMemory(stk[sp + 0]);
	sp += 1;
L_10138:
	r0 = 0x0u;
	return r0;
L_10148:
	stk[--sp] = r4;
	function_10278(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10158:
	stk[--sp] = r4;
	r0 = function_10360(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10168:
	r1 = 0x600u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_10180:
	if (r0 == 0x0u) goto L_10210;
L_10188:
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x46u;
	write_port8(r1 + 0xcu, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	r2 = 0xffu;
	write_port8(r1 + 0x1u, r2);
	r2 = 0xbu;
	write_port8(r1 + 0x2u, r2);
	r2 = 0x0u;
	write_port8(r1 + 0x4u, r2);
	stk[--sp] = r4;
	function_102c0(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_101f0:
	r2 = 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
L_10210: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	return r0;
}

/* original entry 0x10238; class: hw */
uint32_t function_10238(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10238:
	r1 = stk[sp + 1];
	r2 = read_port8(r1 + 0x0u);
	r3 = 0xffu;
	if (r2 == r3) goto L_10268;
L_10258:
	r0 = 0x0u;
	return r0;
L_10268:
	r0 = 0x1u;
	return r0;
	return r0;
}

/* original entry 0x10278; class: hw */
void function_10278(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10278:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x1u;
	write_port8(r1 + 0x0u, r2);
	r2 = 0xffu;
	write_port8(r1 + 0x1u, r2);
	r2 = 0x0u;
	write_port8(r1 + 0x2u, r2);
	return;
}

/* original entry 0x102c0; class: hw */
void function_102c0(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_102c0:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x2u;
	write_port8(r1 + 0x0u, r2);
	return;
}

/* original entry 0x102e8; class: hw */
void function_102e8(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_102e8:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x1u;
	write_port8(r1 + 0x0u, r2);
	return;
}

/* original entry 0x10310; class: hw */
void function_10310(uint32_t arg0, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10310:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	r3 = stk[sp + 3];
	write_port8(r1 + 0x8u, r2);
	r2 = r2 >> (0x8u & 31);
	write_port8(r1 + 0x9u, r2);
	write_port8(r1 + 0xau, r3);
	r3 = r3 >> (0x8u & 31);
	write_port8(r1 + 0xbu, r3);
	return;
}

/* original entry 0x10360; class: hw */
uint32_t function_10360(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10360:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x6u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	function_10310(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_103a0:
	r3 = 0x0u;
L_103a8:
	r2 = read_port8(r1 + 0x18u);
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x14u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r6 = 0x6u;
	if (r3 < r6) goto L_103a8;
L_103d8:
	return r0;
	return r0;
}

/* original entry 0x103e0 — send entry point; class: mixed */
uint32_t mp_send_103e0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_103e0:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) goto L_10418;
L_10408:
	r1 = 0x5eau;
	if (r1 >= r6) goto L_10440;
L_10418:
	r1 = 0xdead0003u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_10430:
	r0 = 0x1u;
	return r0;
L_10440:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r6;
	r2 = 0x4000u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	function_10310(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10470:
	r3 = 0x0u;
L_10478:
	if (r3 >= r6) goto L_104a8;
L_10480:
	r2 = r5 + r3;
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	write_port8(r1 + 0x18u, r2);
	r3 = r3 + 0x1u;
	goto L_10478;
L_104a8:
	stk[--sp] = r6;
	stk[--sp] = r4;
	function_104e8(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
L_104c0:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x24u) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x104e8; class: hw */
void function_104e8(uint32_t arg0, uint32_t arg1)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;

L_104e8:
	r4 = stk[sp + 1];
	r3 = stk[sp + 2];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x40u;
	write_port8(r1 + 0x5u, r2);
	write_port8(r1 + 0x6u, r3);
	r2 = r3 >> (0x8u & 31);
	write_port8(r1 + 0x7u, r2);
	r2 = 0x6u;
	write_port8(r1 + 0x0u, r2);
	return;
}

/* original entry 0x10540 — isr entry point; class: mixed */
uint32_t mp_isr_10540(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10540:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port8(r1 + 0x1u);
	if (r2 == 0x0u) goto L_10618;
L_10560:
	r3 = r2 & 0x2u;
	if (r3 == 0x0u) goto L_10598;
L_10570:
	r3 = 0x2u;
	write_port8(r1 + 0x1u, r3);
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
L_10598:
	r3 = r2 & 0x1u;
	if (r3 == 0x0u) goto L_105e0;
L_105a8:
	stk[--sp] = r2;
	stk[--sp] = r4;
	function_10620(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_105c0:
	r2 = stk[sp++];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = 0x1u;
	write_port8(r1 + 0x1u, r3);
L_105e0:
	r3 = r2 & 0x8u;
	if (r3 == 0x0u) goto L_10618;
L_105f0:
	r3 = 0x8u;
	write_port8(r1 + 0x1u, r3);
	r3 = 0xdead0004u;
	stk[--sp] = r3;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_10618:
	return r0;
	return r0;
}

/* original entry 0x10620; class: mixed */
void function_10620(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10620:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
L_10630:
	r2 = read_port8(r1 + 0xdu);
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	if (r3 == r2) goto L_10748;
L_10648:
	r5 = 0x4u;
	stk[--sp] = r5;
	r5 = r3 << (0x8u & 31);
	stk[--sp] = r5;
	stk[--sp] = r1;
	function_10310(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
L_10678:
	r5 = read_port8(r1 + 0x18u);
	r5 = read_port8(r1 + 0x18u);
	r2 = read_port8(r1 + 0x18u);
	r6 = read_port8(r1 + 0x18u);
	r6 = r6 << (0x8u & 31);
	r6 = r6 | r2;
	r6 = r6 - 0x4u;
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r3 = 0x0u;
L_106c0:
	if (r3 >= r6) goto L_10700;
L_106c8:
	r0 = read_port8(r1 + 0x18u);
	stk[--sp] = r5;
	r5 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x0u) = (uint8_t)r0;
	r5 = stk[sp++];
	r3 = r3 + 0x1u;
	goto L_106c0;
L_10700:
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r5;
	write_port8(r1 + 0xcu, r5);
	stk[--sp] = r6;
	stk[--sp] = r2;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
L_10728:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x28u) = (uint32_t)r2;
	goto L_10630;
L_10748:
	return;
}

/* original entry 0x10750 — query entry point; class: algo */
uint32_t mp_query_10750(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10750:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) goto L_107a8;
L_10778:
	r3 = 0x10107u;
	if (r1 == r3) goto L_107f8;
L_10788:
	r3 = 0x10114u;
	if (r1 == r3) goto L_10818;
L_10798:
	r0 = 0x1u;
	return r0;
L_107a8:
	r3 = 0x0u;
L_107b0:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x14u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_107b0;
L_107e8:
	r0 = 0x0u;
	return r0;
L_107f8:
	r3 = 0xau;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
L_10818:
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10838 — set entry point; class: hw */
uint32_t mp_set_10838(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;
	stk[sp + 4] = arg3;

L_10838:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = stk[sp + 4];
	r5 = 0x1010eu;
	if (r1 == r5) goto L_10898;
L_10868:
	r5 = 0x1010103u;
	if (r1 == r5) goto L_10940;
L_10878:
	r5 = 0x12000u;
	if (r1 == r5) goto L_10900;
L_10888:
	r0 = 0x1u;
	return r0;
L_10898:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r5 = 0x0u;
	r6 = r2 & 0x20u;
	if (r6 == 0x0u) goto L_108c8;
L_108c0:
	r5 = r5 | 0x1u;
L_108c8:
	r6 = r2 & 0x2u;
	if (r6 == 0x0u) goto L_108e0;
L_108d8:
	r5 = r5 | 0x2u;
L_108e0:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	write_port8(r1 + 0x3u, r5);
	r0 = 0x0u;
	return r0;
L_10900:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r5 = 0x0u;
	if (r2 == 0x0u) goto L_10928;
L_10920:
	r5 = 0x1u;
L_10928:
	write_port8(r1 + 0x4u, r5);
	r0 = 0x0u;
	return r0;
L_10940:
	r5 = 0x0u;
L_10948:
	r6 = r4 + r5;
	r1 = 0x0u;
	*(uint8_t *)(uintptr_t)(r6 + 0x30u) = (uint8_t)r1;
	r5 = r5 + 0x1u;
	r1 = 0x8u;
	if (r5 < r1) goto L_10948;
L_10978:
	r5 = 0x0u;
L_10980:
	if (r5 >= r3) goto L_10a20;
L_10988:
	stk[--sp] = r2;
	stk[--sp] = r3;
	stk[--sp] = r5;
	r1 = r2 + r5;
	stk[--sp] = r1;
	r0 = function_10a80(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_109b8:
	r5 = stk[sp++];
	r3 = stk[sp++];
	r2 = stk[sp++];
	r1 = r0 >> (0x3u & 31);
	r6 = r0 & 0x7u;
	r0 = 0x1u;
	r0 = r0 << (r6 & 31);
	r6 = r4 + r1;
	r1 = *(uint8_t *)(uintptr_t)(r6 + 0x30u);
	r1 = r1 | r0;
	*(uint8_t *)(uintptr_t)(r6 + 0x30u) = (uint8_t)r1;
	r5 = r5 + 0x6u;
	goto L_10980;
L_10a20:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r1 = r1 + 0x10u;
	r5 = 0x0u;
L_10a38:
	r6 = r4 + r5;
	r6 = *(uint8_t *)(uintptr_t)(r6 + 0x30u);
	r2 = r1 + r5;
	write_port8(r2 + 0x0u, r6);
	r5 = r5 + 0x1u;
	r6 = 0x8u;
	if (r5 < r6) goto L_10a38;
L_10a70:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10a80; class: algo */
uint32_t function_10a80(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10a80:
	r1 = stk[sp + 1];
	r2 = 0x0u;
	r2 = r2 - 0x1u;
	r3 = 0x0u;
L_10aa0:
	r5 = r1 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x0u);
	r2 = r2 ^ r5;
	r6 = 0x0u;
L_10ac0:
	r5 = r2 & 0x1u;
	r2 = r2 >> (0x1u & 31);
	if (r5 == 0x0u) goto L_10ae8;
L_10ad8:
	r5 = 0xedb88320u;
	r2 = r2 ^ r5;
L_10ae8:
	r6 = r6 + 0x1u;
	r5 = 0x8u;
	if (r6 < r5) goto L_10ac0;
L_10b00:
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10aa0;
L_10b18:
	r5 = 0x0u;
	r5 = r5 - 0x1u;
	r2 = r2 ^ r5;
	r0 = r2 >> (0x1au & 31);
	return r0;
	return r0;
}

/* original entry 0x10b40 — halt entry point; class: hw */
uint32_t mp_halt_10b40(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10b40:
	r4 = stk[sp + 1];
	stk[--sp] = r4;
	function_102e8(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10b58:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	write_port8(r1 + 0x2u, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	return r0;
}

