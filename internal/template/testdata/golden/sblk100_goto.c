/* SBLK100 driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_10088() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_103b8((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the SBLK100 binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is encoded with gotos (see paper, Listing 1).
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
uint32_t mp_initialize_10088(void);
uint32_t mp_send_10270(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_isr_103b8(uint32_t GlobalState);
void function_10470(uint32_t arg0);
uint32_t mp_query_10548(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_10630(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_halt_10698(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10000:
	r1 = 0x106d0u;
	r2 = 0x10088u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x10270u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x103b8u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x10548u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x10630u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10698u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
L_10078:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10088 — initialize entry point; class: mixed */
uint32_t mp_initialize_10088(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

L_10088:
	r1 = 0x28u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_100a0:
	if (r0 == 0x0u) goto L_10260;
L_100a8:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_100c8:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
L_100e8:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0xa5u;
	write_port8(r1 + 0xdu, r2);
	r3 = read_port8(r1 + 0xdu);
	if (r3 == r2) goto L_10138;
L_10118:
	r1 = 0xdead0041u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_10130:
	goto L_10260;
L_10138:
	r3 = read_port8(r1 + 0x0u);
	r3 = r3 & 0x1u;
	if (r3 != 0x0u) goto L_10170;
L_10150:
	r1 = 0xdead0042u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_10168:
	goto L_10260;
L_10170:
	r2 = 0x10u;
	write_port8(r1 + 0x1u, r2);
	r3 = 0x0u;
L_10188:
	r2 = read_port16(r1 + 0x8u);
	r5 = r4 + r3;
	*(uint16_t *)(uintptr_t)(r5 + 0x10u) = (uint16_t)r2;
	r3 = r3 + 0x2u;
	r5 = 0x6u;
	if (r3 < r5) goto L_10188;
L_101b8:
	r2 = read_port16(r1 + 0x8u);
	r2 = read_port16(r1 + 0x8u);
	r5 = 0x4253u;
	if (r2 == r5) goto L_101f8;
L_101d8:
	r1 = 0xdead0043u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_101f0:
	goto L_10260;
L_101f8:
	r1 = 0x600u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
L_10210:
	if (r0 == 0x0u) goto L_10260;
L_10218:
	*(uint32_t *)(uintptr_t)(r4 + 0x18u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x7u;
	write_port8(r1 + 0xbu, r2);
	r2 = 0x1u;
	write_port8(r1 + 0xcu, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
L_10260:
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10270 — send entry point; class: mixed */
uint32_t mp_send_10270(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10270:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) goto L_102a8;
L_10298:
	r1 = 0x5eau;
	if (r1 >= r6) goto L_102d0;
L_102a8:
	r1 = 0xdead0044u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_102c0:
	r0 = 0x1u;
	return r0;
L_102d0:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x30u;
	write_port8(r1 + 0x1u, r2);
	write_port16(r1 + 0x8u, r6);
	r3 = 0x0u;
L_102f8:
	if (r3 >= r6) goto L_10328;
L_10300:
	r2 = r5 + r3;
	r2 = *(uint16_t *)(uintptr_t)(r2 + 0x0u);
	write_port16(r1 + 0x8u, r2);
	r3 = r3 + 0x2u;
	goto L_102f8;
L_10328:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x1cu);
	write_port8(r1 + 0x4u, r2);
	r2 = r2 >> (0x8u & 31);
	write_port8(r1 + 0x5u, r2);
	r2 = r2 >> (0x8u & 31);
	write_port8(r1 + 0x6u, r2);
	r2 = r2 >> (0x8u & 31);
	write_port8(r1 + 0x7u, r2);
	r2 = r6 + 0x1ffu;
	r2 = r2 >> (0x9u & 31);
	write_port8(r1 + 0x2u, r2);
	r2 = 0x31u;
	write_port8(r1 + 0x1u, r2);
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x1cu);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x1cu) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x103b8 — isr entry point; class: mixed */
uint32_t mp_isr_103b8(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_103b8:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port8(r1 + 0xau);
	if (r2 == 0x0u) goto L_10468;
L_103d8:
	r3 = r2 & 0x1u;
	if (r3 == 0x0u) goto L_10410;
L_103e8:
	r3 = 0x1u;
	write_port8(r1 + 0xau, r3);
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
L_10410:
	r3 = r2 & 0x4u;
	if (r3 == 0x0u) goto L_10448;
L_10420:
	r3 = 0x4u;
	write_port8(r1 + 0xau, r3);
	r3 = 0xdead0045u;
	stk[--sp] = r3;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
L_10448:
	r3 = r2 & 0x2u;
	if (r3 == 0x0u) goto L_10468;
L_10458:
	stk[--sp] = r4;
	function_10470(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
L_10468:
	return r0;
	return r0;
}

/* original entry 0x10470; class: mixed */
void function_10470(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

L_10470:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
L_10480:
	r2 = read_port8(r1 + 0xau);
	r2 = r2 & 0x2u;
	if (r2 == 0x0u) goto L_10540;
L_10498:
	r2 = 0x20u;
	write_port8(r1 + 0x1u, r2);
	r6 = read_port16(r1 + 0x8u);
	if (r6 == 0x0u) goto L_10540;
L_104b8:
	r5 = *(uint32_t *)(uintptr_t)(r4 + 0x18u);
	r3 = 0x0u;
L_104c8:
	if (r3 >= r6) goto L_104f8;
L_104d0:
	r0 = read_port16(r1 + 0x8u);
	r2 = r5 + r3;
	*(uint16_t *)(uintptr_t)(r2 + 0x0u) = (uint16_t)r0;
	r3 = r3 + 0x2u;
	goto L_104c8;
L_104f8:
	r2 = 0x21u;
	write_port8(r1 + 0x1u, r2);
	stk[--sp] = r6;
	stk[--sp] = r5;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
L_10520:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r2;
	goto L_10480;
L_10540:
	return;
}

/* original entry 0x10548 — query entry point; class: algo */
uint32_t mp_query_10548(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10548:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) goto L_105a0;
L_10570:
	r3 = 0x10107u;
	if (r1 == r3) goto L_105f0;
L_10580:
	r3 = 0x10114u;
	if (r1 == r3) goto L_10610;
L_10590:
	r0 = 0x1u;
	return r0;
L_105a0:
	r3 = 0x0u;
L_105a8:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x10u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) goto L_105a8;
L_105e0:
	r0 = 0x0u;
	return r0;
L_105f0:
	r3 = 0x64u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
L_10610:
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10630 — set entry point; class: hw */
uint32_t mp_set_10630(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

L_10630:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r5 = 0x1010eu;
	if (r1 == r5) goto L_10668;
L_10658:
	r0 = 0x1u;
	return r0;
L_10668:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	write_port8(r1 + 0xdu, r2);
	r0 = 0x0u;
	return r0;
	return r0;
}

/* original entry 0x10698 — halt entry point; class: hw */
uint32_t mp_halt_10698(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

L_10698:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	write_port8(r1 + 0xcu, r2);
	write_port8(r1 + 0xbu, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	return r0;
}

