/* RTL8029 driver for Windows XP (NDIS miniport), synthesized by RevNIC. */
#include <ndis.h>
#include "revnic_runtime.h"

NDIS_STATUS MiniportInitialize(/* NDIS boilerplate args */)
{
	/* template: NdisMSetAttributes, resource claims */
	/*** RevNIC-synthesized hardware bring-up ***/
	if (mp_initialize_10088() == 0) return NDIS_STATUS_FAILURE;
	/*** end synthesized section ***/
	return NDIS_STATUS_SUCCESS;
}

VOID MiniportISR(PBOOLEAN recognized, PBOOLEAN queueDpc, NDIS_HANDLE ctx)
{
	mp_isr_10540((uint32_t)ctx);
	*recognized = TRUE;
}

/* ---- synthesized hardware-protocol code below ---- */

/* Synthesized by RevNIC from the RTL8029 binary driver.
 * The code preserves the original driver's state layout and hardware
 * protocol; control flow is a switch-dispatch state machine over the
 * recovered basic-block addresses.
 * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the
 * target-OS driver template.
 */

#include "revnic_runtime.h"

uint32_t mp_load_10000(void);
uint32_t mp_initialize_10088(void);
uint32_t function_10238(uint32_t arg0);
void function_10278(uint32_t arg0);
void function_102c0(uint32_t arg0);
void function_102e8(uint32_t arg0);
void function_10310(uint32_t arg0, uint32_t arg1, uint32_t arg2);
uint32_t function_10360(uint32_t arg0);
uint32_t mp_send_103e0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
void function_104e8(uint32_t arg0, uint32_t arg1);
uint32_t mp_isr_10540(uint32_t GlobalState);
void function_10620(uint32_t arg0);
uint32_t mp_query_10750(uint32_t GlobalState, uint32_t arg1, uint32_t arg2);
uint32_t mp_set_10838(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3);
uint32_t function_10a80(uint32_t arg0);
uint32_t mp_halt_10b40(uint32_t GlobalState);

/* original entry 0x10000 — load entry point; class: os */
uint32_t mp_load_10000(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10000u;
	for (;;) switch (pc) {
	case 0x10000u:
	r1 = 0x10b80u;
	r2 = 0x10088u;
	*(uint32_t *)(uintptr_t)(r1 + 0x0u) = (uint32_t)r2;
	r2 = 0x103e0u;
	*(uint32_t *)(uintptr_t)(r1 + 0x4u) = (uint32_t)r2;
	r2 = 0x10540u;
	*(uint32_t *)(uintptr_t)(r1 + 0x8u) = (uint32_t)r2;
	r2 = 0x10750u;
	*(uint32_t *)(uintptr_t)(r1 + 0xcu) = (uint32_t)r2;
	r2 = 0x10838u;
	*(uint32_t *)(uintptr_t)(r1 + 0x10u) = (uint32_t)r2;
	r2 = 0x10b40u;
	*(uint32_t *)(uintptr_t)(r1 + 0x14u) = (uint32_t)r2;
	stk[--sp] = r1;
	r0 = os_NdisMRegisterMiniport(stk[sp + 0]);
	sp += 1;
	pc = 0x10078u; break;
	case 0x10078u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10088 — initialize entry point; class: mixed */
uint32_t mp_initialize_10088(void)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */

	uint32_t pc = 0x10088u;
	for (;;) switch (pc) {
	case 0x10088u:
	r1 = 0x40u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x100a0u; break;
	case 0x100a0u:
	if (r0 == 0x0u) { pc = 0x10210u; break; }
	pc = 0x100a8u; break;
	case 0x100a8u:
	r4 = r0;
	r1 = 0x4u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x100c8u; break;
	case 0x100c8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x0u) = (uint32_t)r0;
	r1 = 0x8u;
	stk[--sp] = r1;
	r0 = os_NdisReadPciSlotInformation(stk[sp + 0]);
	sp += 1;
	pc = 0x100e8u; break;
	case 0x100e8u:
	*(uint32_t *)(uintptr_t)(r4 + 0x4u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r1;
	r0 = function_10238(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10108u; break;
	case 0x10108u:
	if (r0 == 0x0u) { pc = 0x10148u; break; }
	pc = 0x10110u; break;
	case 0x10110u:
	r1 = 0xdead0001u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x10128u; break;
	case 0x10128u:
	stk[--sp] = r4;
	r0 = os_NdisFreeMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10138u; break;
	case 0x10138u:
	r0 = 0x0u;
	return r0;
	case 0x10148u:
	stk[--sp] = r4;
	function_10278(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10158u; break;
	case 0x10158u:
	stk[--sp] = r4;
	r0 = function_10360(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10168u; break;
	case 0x10168u:
	r1 = 0x600u;
	stk[--sp] = r1;
	r0 = os_NdisAllocateMemory(stk[sp + 0]);
	sp += 1;
	pc = 0x10180u; break;
	case 0x10180u:
	if (r0 == 0x0u) { pc = 0x10210u; break; }
	pc = 0x10188u; break;
	case 0x10188u:
	*(uint32_t *)(uintptr_t)(r4 + 0x20u) = (uint32_t)r0;
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x46u;
	write_port8(r1 + 0xcu, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r2;
	r2 = 0xffu;
	write_port8(r1 + 0x1u, r2);
	r2 = 0xbu;
	write_port8(r1 + 0x2u, r2);
	r2 = 0x0u;
	write_port8(r1 + 0x4u, r2);
	stk[--sp] = r4;
	function_102c0(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x101f0u; break;
	case 0x101f0u:
	r2 = 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	r0 = r4;
	return r0;
	case 0x10210u: /* REVNIC-WARNING: unexercised basic block; force the DBT
	 * through this address and re-run synthesis to fill it in (see §4.1) */
	revnic_unexplored();
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10238; class: hw */
uint32_t function_10238(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10238u;
	for (;;) switch (pc) {
	case 0x10238u:
	r1 = stk[sp + 1];
	r2 = read_port8(r1 + 0x0u);
	r3 = 0xffu;
	if (r2 == r3) { pc = 0x10268u; break; }
	pc = 0x10258u; break;
	case 0x10258u:
	r0 = 0x0u;
	return r0;
	case 0x10268u:
	r0 = 0x1u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10278; class: hw */
void function_10278(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10278u;
	for (;;) switch (pc) {
	case 0x10278u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x1u;
	write_port8(r1 + 0x0u, r2);
	r2 = 0xffu;
	write_port8(r1 + 0x1u, r2);
	r2 = 0x0u;
	write_port8(r1 + 0x2u, r2);
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x102c0; class: hw */
void function_102c0(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x102c0u;
	for (;;) switch (pc) {
	case 0x102c0u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x2u;
	write_port8(r1 + 0x0u, r2);
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x102e8; class: hw */
void function_102e8(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x102e8u;
	for (;;) switch (pc) {
	case 0x102e8u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x1u;
	write_port8(r1 + 0x0u, r2);
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x10310; class: hw */
void function_10310(uint32_t arg0, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10310u;
	for (;;) switch (pc) {
	case 0x10310u:
	r1 = stk[sp + 1];
	r2 = stk[sp + 2];
	r3 = stk[sp + 3];
	write_port8(r1 + 0x8u, r2);
	r2 = r2 >> (0x8u & 31);
	write_port8(r1 + 0x9u, r2);
	write_port8(r1 + 0xau, r3);
	r3 = r3 >> (0x8u & 31);
	write_port8(r1 + 0xbu, r3);
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x10360; class: hw */
uint32_t function_10360(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10360u;
	for (;;) switch (pc) {
	case 0x10360u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x6u;
	stk[--sp] = r2;
	r2 = 0x0u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	function_10310(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x103a0u; break;
	case 0x103a0u:
	r3 = 0x0u;
	pc = 0x103a8u; break;
	case 0x103a8u:
	r2 = read_port8(r1 + 0x18u);
	r5 = r4 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x14u) = (uint8_t)r2;
	r3 = r3 + 0x1u;
	r6 = 0x6u;
	if (r3 < r6) { pc = 0x103a8u; break; }
	pc = 0x103d8u; break;
	case 0x103d8u:
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x103e0 — send entry point; class: mixed */
uint32_t mp_send_103e0(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x103e0u;
	for (;;) switch (pc) {
	case 0x103e0u:
	r4 = stk[sp + 1];
	r5 = stk[sp + 2];
	r6 = stk[sp + 3];
	r1 = 0xeu;
	if (r6 < r1) { pc = 0x10418u; break; }
	pc = 0x10408u; break;
	case 0x10408u:
	r1 = 0x5eau;
	if (r1 >= r6) { pc = 0x10440u; break; }
	pc = 0x10418u; break;
	case 0x10418u:
	r1 = 0xdead0003u;
	stk[--sp] = r1;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x10430u; break;
	case 0x10430u:
	r0 = 0x1u;
	return r0;
	case 0x10440u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	stk[--sp] = r6;
	r2 = 0x4000u;
	stk[--sp] = r2;
	stk[--sp] = r1;
	function_10310(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10470u; break;
	case 0x10470u:
	r3 = 0x0u;
	pc = 0x10478u; break;
	case 0x10478u:
	if (r3 >= r6) { pc = 0x104a8u; break; }
	pc = 0x10480u; break;
	case 0x10480u:
	r2 = r5 + r3;
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	write_port8(r1 + 0x18u, r2);
	r3 = r3 + 0x1u;
	pc = 0x10478u; break;
	case 0x104a8u:
	stk[--sp] = r6;
	stk[--sp] = r4;
	function_104e8(stk[sp + 0], stk[sp + 1]);
	sp += 2; /* stdcall: callee pops */
	pc = 0x104c0u; break;
	case 0x104c0u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x24u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x24u) = (uint32_t)r2;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x104e8; class: hw */
void function_104e8(uint32_t arg0, uint32_t arg1)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;
	stk[sp + 2] = arg1;

	uint32_t pc = 0x104e8u;
	for (;;) switch (pc) {
	case 0x104e8u:
	r4 = stk[sp + 1];
	r3 = stk[sp + 2];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x40u;
	write_port8(r1 + 0x5u, r2);
	write_port8(r1 + 0x6u, r3);
	r2 = r3 >> (0x8u & 31);
	write_port8(r1 + 0x7u, r2);
	r2 = 0x6u;
	write_port8(r1 + 0x0u, r2);
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x10540 — isr entry point; class: mixed */
uint32_t mp_isr_10540(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10540u;
	for (;;) switch (pc) {
	case 0x10540u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = read_port8(r1 + 0x1u);
	if (r2 == 0x0u) { pc = 0x10618u; break; }
	pc = 0x10560u; break;
	case 0x10560u:
	r3 = r2 & 0x2u;
	if (r3 == 0x0u) { pc = 0x10598u; break; }
	pc = 0x10570u; break;
	case 0x10570u:
	r3 = 0x2u;
	write_port8(r1 + 0x1u, r3);
	r3 = 0x0u;
	stk[--sp] = r3;
	r0 = os_NdisMSendComplete(stk[sp + 0]);
	sp += 1;
	pc = 0x10598u; break;
	case 0x10598u:
	r3 = r2 & 0x1u;
	if (r3 == 0x0u) { pc = 0x105e0u; break; }
	pc = 0x105a8u; break;
	case 0x105a8u:
	stk[--sp] = r2;
	stk[--sp] = r4;
	function_10620(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x105c0u; break;
	case 0x105c0u:
	r2 = stk[sp++];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r3 = 0x1u;
	write_port8(r1 + 0x1u, r3);
	pc = 0x105e0u; break;
	case 0x105e0u:
	r3 = r2 & 0x8u;
	if (r3 == 0x0u) { pc = 0x10618u; break; }
	pc = 0x105f0u; break;
	case 0x105f0u:
	r3 = 0x8u;
	write_port8(r1 + 0x1u, r3);
	r3 = 0xdead0004u;
	stk[--sp] = r3;
	r0 = os_NdisWriteErrorLogEntry(stk[sp + 0]);
	sp += 1;
	pc = 0x10618u; break;
	case 0x10618u:
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10620; class: mixed */
void function_10620(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10620u;
	for (;;) switch (pc) {
	case 0x10620u:
	r4 = stk[sp + 1];
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	pc = 0x10630u; break;
	case 0x10630u:
	r2 = read_port8(r1 + 0xdu);
	r3 = *(uint32_t *)(uintptr_t)(r4 + 0x10u);
	if (r3 == r2) { pc = 0x10748u; break; }
	pc = 0x10648u; break;
	case 0x10648u:
	r5 = 0x4u;
	stk[--sp] = r5;
	r5 = r3 << (0x8u & 31);
	stk[--sp] = r5;
	stk[--sp] = r1;
	function_10310(stk[sp + 0], stk[sp + 1], stk[sp + 2]);
	sp += 3; /* stdcall: callee pops */
	pc = 0x10678u; break;
	case 0x10678u:
	r5 = read_port8(r1 + 0x18u);
	r5 = read_port8(r1 + 0x18u);
	r2 = read_port8(r1 + 0x18u);
	r6 = read_port8(r1 + 0x18u);
	r6 = r6 << (0x8u & 31);
	r6 = r6 | r2;
	r6 = r6 - 0x4u;
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x20u);
	r3 = 0x0u;
	pc = 0x106c0u; break;
	case 0x106c0u:
	if (r3 >= r6) { pc = 0x10700u; break; }
	pc = 0x106c8u; break;
	case 0x106c8u:
	r0 = read_port8(r1 + 0x18u);
	stk[--sp] = r5;
	r5 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r5 + 0x0u) = (uint8_t)r0;
	r5 = stk[sp++];
	r3 = r3 + 0x1u;
	pc = 0x106c0u; break;
	case 0x10700u:
	*(uint32_t *)(uintptr_t)(r4 + 0x10u) = (uint32_t)r5;
	write_port8(r1 + 0xcu, r5);
	stk[--sp] = r6;
	stk[--sp] = r2;
	r0 = os_NdisMIndicateReceivePacket(stk[sp + 0], stk[sp + 1]);
	sp += 2;
	pc = 0x10728u; break;
	case 0x10728u:
	r2 = *(uint32_t *)(uintptr_t)(r4 + 0x28u);
	r2 = r2 + 0x1u;
	*(uint32_t *)(uintptr_t)(r4 + 0x28u) = (uint32_t)r2;
	pc = 0x10630u; break;
	case 0x10748u:
	return;
	default:
		revnic_unexplored();
	}
}

/* original entry 0x10750 — query entry point; class: algo */
uint32_t mp_query_10750(uint32_t GlobalState, uint32_t arg1, uint32_t arg2)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;

	uint32_t pc = 0x10750u;
	for (;;) switch (pc) {
	case 0x10750u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = 0x1010102u;
	if (r1 == r3) { pc = 0x107a8u; break; }
	pc = 0x10778u; break;
	case 0x10778u:
	r3 = 0x10107u;
	if (r1 == r3) { pc = 0x107f8u; break; }
	pc = 0x10788u; break;
	case 0x10788u:
	r3 = 0x10114u;
	if (r1 == r3) { pc = 0x10818u; break; }
	pc = 0x10798u; break;
	case 0x10798u:
	r0 = 0x1u;
	return r0;
	case 0x107a8u:
	r3 = 0x0u;
	pc = 0x107b0u; break;
	case 0x107b0u:
	r5 = r4 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x14u);
	r6 = r2 + r3;
	*(uint8_t *)(uintptr_t)(r6 + 0x0u) = (uint8_t)r5;
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x107b0u; break; }
	pc = 0x107e8u; break;
	case 0x107e8u:
	r0 = 0x0u;
	return r0;
	case 0x107f8u:
	r3 = 0xau;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	case 0x10818u:
	r3 = 0x1u;
	*(uint32_t *)(uintptr_t)(r2 + 0x0u) = (uint32_t)r3;
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10838 — set entry point; class: hw */
uint32_t mp_set_10838(uint32_t GlobalState, uint32_t arg1, uint32_t arg2, uint32_t arg3)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;
	stk[sp + 2] = arg1;
	stk[sp + 3] = arg2;
	stk[sp + 4] = arg3;

	uint32_t pc = 0x10838u;
	for (;;) switch (pc) {
	case 0x10838u:
	r4 = stk[sp + 1];
	r1 = stk[sp + 2];
	r2 = stk[sp + 3];
	r3 = stk[sp + 4];
	r5 = 0x1010eu;
	if (r1 == r5) { pc = 0x10898u; break; }
	pc = 0x10868u; break;
	case 0x10868u:
	r5 = 0x1010103u;
	if (r1 == r5) { pc = 0x10940u; break; }
	pc = 0x10878u; break;
	case 0x10878u:
	r5 = 0x12000u;
	if (r1 == r5) { pc = 0x10900u; break; }
	pc = 0x10888u; break;
	case 0x10888u:
	r0 = 0x1u;
	return r0;
	case 0x10898u:
	r2 = *(uint32_t *)(uintptr_t)(r2 + 0x0u);
	*(uint32_t *)(uintptr_t)(r4 + 0xcu) = (uint32_t)r2;
	r5 = 0x0u;
	r6 = r2 & 0x20u;
	if (r6 == 0x0u) { pc = 0x108c8u; break; }
	pc = 0x108c0u; break;
	case 0x108c0u:
	r5 = r5 | 0x1u;
	pc = 0x108c8u; break;
	case 0x108c8u:
	r6 = r2 & 0x2u;
	if (r6 == 0x0u) { pc = 0x108e0u; break; }
	pc = 0x108d8u; break;
	case 0x108d8u:
	r5 = r5 | 0x2u;
	pc = 0x108e0u; break;
	case 0x108e0u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	write_port8(r1 + 0x3u, r5);
	r0 = 0x0u;
	return r0;
	case 0x10900u:
	r2 = *(uint8_t *)(uintptr_t)(r2 + 0x0u);
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r5 = 0x0u;
	if (r2 == 0x0u) { pc = 0x10928u; break; }
	pc = 0x10920u; break;
	case 0x10920u:
	r5 = 0x1u;
	pc = 0x10928u; break;
	case 0x10928u:
	write_port8(r1 + 0x4u, r5);
	r0 = 0x0u;
	return r0;
	case 0x10940u:
	r5 = 0x0u;
	pc = 0x10948u; break;
	case 0x10948u:
	r6 = r4 + r5;
	r1 = 0x0u;
	*(uint8_t *)(uintptr_t)(r6 + 0x30u) = (uint8_t)r1;
	r5 = r5 + 0x1u;
	r1 = 0x8u;
	if (r5 < r1) { pc = 0x10948u; break; }
	pc = 0x10978u; break;
	case 0x10978u:
	r5 = 0x0u;
	pc = 0x10980u; break;
	case 0x10980u:
	if (r5 >= r3) { pc = 0x10a20u; break; }
	pc = 0x10988u; break;
	case 0x10988u:
	stk[--sp] = r2;
	stk[--sp] = r3;
	stk[--sp] = r5;
	r1 = r2 + r5;
	stk[--sp] = r1;
	r0 = function_10a80(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x109b8u; break;
	case 0x109b8u:
	r5 = stk[sp++];
	r3 = stk[sp++];
	r2 = stk[sp++];
	r1 = r0 >> (0x3u & 31);
	r6 = r0 & 0x7u;
	r0 = 0x1u;
	r0 = r0 << (r6 & 31);
	r6 = r4 + r1;
	r1 = *(uint8_t *)(uintptr_t)(r6 + 0x30u);
	r1 = r1 | r0;
	*(uint8_t *)(uintptr_t)(r6 + 0x30u) = (uint8_t)r1;
	r5 = r5 + 0x6u;
	pc = 0x10980u; break;
	case 0x10a20u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r1 = r1 + 0x10u;
	r5 = 0x0u;
	pc = 0x10a38u; break;
	case 0x10a38u:
	r6 = r4 + r5;
	r6 = *(uint8_t *)(uintptr_t)(r6 + 0x30u);
	r2 = r1 + r5;
	write_port8(r2 + 0x0u, r6);
	r5 = r5 + 0x1u;
	r6 = 0x8u;
	if (r5 < r6) { pc = 0x10a38u; break; }
	pc = 0x10a70u; break;
	case 0x10a70u:
	r0 = 0x0u;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10a80; class: algo */
uint32_t function_10a80(uint32_t arg0)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = arg0;

	uint32_t pc = 0x10a80u;
	for (;;) switch (pc) {
	case 0x10a80u:
	r1 = stk[sp + 1];
	r2 = 0x0u;
	r2 = r2 - 0x1u;
	r3 = 0x0u;
	pc = 0x10aa0u; break;
	case 0x10aa0u:
	r5 = r1 + r3;
	r5 = *(uint8_t *)(uintptr_t)(r5 + 0x0u);
	r2 = r2 ^ r5;
	r6 = 0x0u;
	pc = 0x10ac0u; break;
	case 0x10ac0u:
	r5 = r2 & 0x1u;
	r2 = r2 >> (0x1u & 31);
	if (r5 == 0x0u) { pc = 0x10ae8u; break; }
	pc = 0x10ad8u; break;
	case 0x10ad8u:
	r5 = 0xedb88320u;
	r2 = r2 ^ r5;
	pc = 0x10ae8u; break;
	case 0x10ae8u:
	r6 = r6 + 0x1u;
	r5 = 0x8u;
	if (r6 < r5) { pc = 0x10ac0u; break; }
	pc = 0x10b00u; break;
	case 0x10b00u:
	r3 = r3 + 0x1u;
	r5 = 0x6u;
	if (r3 < r5) { pc = 0x10aa0u; break; }
	pc = 0x10b18u; break;
	case 0x10b18u:
	r5 = 0x0u;
	r5 = r5 - 0x1u;
	r2 = r2 ^ r5;
	r0 = r2 >> (0x1au & 31);
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

/* original entry 0x10b40 — halt entry point; class: hw */
uint32_t mp_halt_10b40(uint32_t GlobalState)
{
	uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;
	uint32_t stk[80]; uint32_t sp = 64;
	stk[sp] = 0; /* return-address slot */
	stk[sp + 1] = GlobalState;

	uint32_t pc = 0x10b40u;
	for (;;) switch (pc) {
	case 0x10b40u:
	r4 = stk[sp + 1];
	stk[--sp] = r4;
	function_102e8(stk[sp + 0]);
	sp += 1; /* stdcall: callee pops */
	pc = 0x10b58u; break;
	case 0x10b58u:
	r1 = *(uint32_t *)(uintptr_t)(r4 + 0x0u);
	r2 = 0x0u;
	write_port8(r1 + 0x2u, r2);
	*(uint32_t *)(uintptr_t)(r4 + 0x8u) = (uint32_t)r2;
	return r0;
	default:
		revnic_unexplored();
	}
	return r0;
}

