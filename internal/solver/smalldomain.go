package solver

import (
	"sort"

	"revnic/internal/expr"
)

// DefaultMaxDomainBits bounds the small-domain enumerator: a query
// whose distinct symbolic variables total at most this many bits is
// decided by exhaustive enumeration (≤ 2^16 evaluations), anything
// wider answers VUnknown.
const DefaultMaxDomainBits = 16

// smallDomain is the second in-tree backend, proving the Backend seam
// is real: an exhaustive evaluator for narrow sliced queries. It
// keeps no solver state at all — just the asserted constraint stack —
// so Assert/Push/Pop are O(1), and it decides a query by enumerating
// every assignment of the query's variables in a fixed order
// (variables sorted by name, values counting up from zero), which
// makes its verdicts and models fully deterministic.
//
// On its own it is mostly a conformance vehicle; its practical role
// is inside the portfolio, where it wins races on queries with few
// variable bits but large expression DAGs — exactly where
// bit-blasting pays its worst fixed costs.
type smallDomain struct {
	stack     []*expr.Expr
	marks     []int
	interrupt func() bool
	maxBits   int
	model     map[string]uint32
}

func newSmallDomainBackend(o BackendOpts) Backend {
	max := o.MaxDomainBits
	if max <= 0 {
		max = DefaultMaxDomainBits
	}
	return &smallDomain{interrupt: o.Interrupt, maxBits: max}
}

func (d *smallDomain) Assert(c *expr.Expr) { d.stack = append(d.stack, c) }

func (d *smallDomain) Push() { d.marks = append(d.marks, len(d.stack)) }

func (d *smallDomain) Pop() {
	if len(d.marks) == 0 {
		panic("solver: smalldomain Pop without matching Push")
	}
	n := d.marks[len(d.marks)-1]
	d.marks = d.marks[:len(d.marks)-1]
	d.stack = d.stack[:n]
}

func (d *smallDomain) SetInterrupt(f func() bool) { d.interrupt = f }

func (d *smallDomain) Model() map[string]uint32 { return copyModel(d.model) }

func (d *smallDomain) SolveUnder(cond *expr.Expr) Verdict {
	cons := d.stack
	if cond != nil && !cond.IsTrue() {
		if cond.IsFalse() {
			return VUnsat
		}
		cons = append(append(make([]*expr.Expr, 0, len(d.stack)+1), d.stack...), cond)
	}
	if len(cons) == 0 {
		d.model = map[string]uint32{}
		return VSat
	}
	widths := expr.VarSet(cons...)
	total := 0
	for _, w := range widths {
		total += int(w)
	}
	if total > d.maxBits {
		return VUnknown
	}
	names := make([]string, 0, len(widths))
	for n := range widths {
		names = append(names, n)
	}
	sort.Strings(names)
	env := make(map[string]uint32, len(names))
	for n := uint64(0); n < 1<<total; n++ {
		if n&255 == 0 && d.interrupt != nil && d.interrupt() {
			return VUnknown
		}
		// Deal the counter's bits out to the variables in name order,
		// LSB chunk first: assignment order is a pure function of the
		// query, so the first satisfying model is deterministic.
		rest := n
		for _, name := range names {
			w := widths[name]
			env[name] = uint32(rest & (1<<w - 1))
			rest >>= w
		}
		ev := expr.NewEvaluator(env)
		ok := true
		for _, c := range cons {
			if ev.Eval(c) == 0 {
				ok = false
				break
			}
		}
		if ok {
			d.model = copyModel(env)
			return VSat
		}
	}
	return VUnsat
}
