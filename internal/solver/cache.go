// Backend-agnostic query memoization: the fingerprint-keyed
// verdict/model caches, the per-variable-set counterexample index
// (KLEE's full counterexample cache, replacing the old 4-entry
// recency ring), constraint-independence slicing, and the shared
// per-expression metadata caches underneath them. Everything here is
// deterministic and backend-independent: any Backend plugged into the
// front end gets the same caching behavior.
package solver

import (
	"math/bits"
	"sort"
	"sync"

	"revnic/internal/expr"
)

// mix64 is the splitmix64 finalizer, used to spread interned IDs
// before the order-insensitive combine.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// fingerprint keys the caches on an order-insensitive hash of the
// constraints' interned IDs: equal constraint multisets hash equally
// regardless of order, with no allocation and no tree walk — the
// payoff of hash-consed expressions at this layer.
func fingerprint(constraints []*expr.Expr) uint64 {
	var sum, xor uint64
	for _, c := range constraints {
		h := mix64(c.ID())
		sum += h
		xor ^= bits.RotateLeft64(h, 17)
	}
	return mix64(sum ^ mix64(xor) ^ uint64(len(constraints)))
}

// liveConstraints strips constant-true constraints and reports
// whether a constant-false one makes the conjunction trivially UNSAT.
func liveConstraints(constraints []*expr.Expr) (live []*expr.Expr, unsat bool) {
	for _, c := range constraints {
		if c.IsFalse() {
			return nil, true
		}
		if !c.IsTrue() {
			live = append(live, c)
		}
	}
	return live, false
}

// exprMeta memoizes per-expression metadata (sorted variable names,
// DAG node counts) keyed by interned ID. It is process-global rather
// than per-solver: interned IDs are unique across arenas, so one
// bounded table serves every solver — this is also what unifies the
// package-level Slice and the solver's query path on a single cached
// variable-set derivation (they used to diverge: Slice re-walked
// every expression on every call).
var exprMeta = struct {
	sync.Mutex
	vars map[uint64][]string
	size map[uint64]int
}{vars: map[uint64][]string{}, size: map[uint64]int{}}

const exprMetaLimit = DefaultCacheLimit

// varsOf returns the sorted variable names of e, memoized per
// interned expression ID.
func varsOf(e *expr.Expr) []string {
	id := e.ID()
	if id == 0 {
		return expr.VarNames(e)
	}
	exprMeta.Lock()
	if v, ok := exprMeta.vars[id]; ok {
		exprMeta.Unlock()
		return v
	}
	exprMeta.Unlock()
	names := expr.VarNames(e)
	exprMeta.Lock()
	if len(exprMeta.vars) >= exprMetaLimit {
		exprMeta.vars = map[uint64][]string{}
	}
	exprMeta.vars[id] = names
	exprMeta.Unlock()
	return names
}

// sizeOf returns the DAG node count of e, memoized per interned ID.
// The easy/hard routing heuristic consults it on every cache-missing
// query.
func sizeOf(e *expr.Expr) int {
	id := e.ID()
	if id == 0 {
		return e.Size()
	}
	exprMeta.Lock()
	if n, ok := exprMeta.size[id]; ok {
		exprMeta.Unlock()
		return n
	}
	exprMeta.Unlock()
	n := e.Size()
	exprMeta.Lock()
	if len(exprMeta.size) >= exprMetaLimit {
		exprMeta.size = map[uint64]int{}
	}
	exprMeta.size[id] = n
	exprMeta.Unlock()
	return n
}

// sliceVars is the constraint-independence fixed point underneath
// Slice.
func sliceVars(pc []*expr.Expr, vars [][]string, tvars []string) []*expr.Expr {
	if len(tvars) == 0 {
		return nil
	}
	want := make(map[string]bool, len(tvars))
	for _, v := range tvars {
		want[v] = true
	}
	used := make([]bool, len(pc))
	for changed := true; changed; {
		changed = false
		for i := range pc {
			if used[i] {
				continue
			}
			hit := false
			for _, v := range vars[i] {
				if want[v] {
					hit = true
					break
				}
			}
			if hit {
				used[i] = true
				changed = true
				for _, v := range vars[i] {
					want[v] = true
				}
			}
		}
	}
	var out []*expr.Expr
	for i, c := range pc {
		if used[i] {
			out = append(out, c)
		}
	}
	return out
}

// Slice returns the subset of constraints transitively sharing
// symbolic variables with target — KLEE's constraint-independence
// optimization. Because path conditions are built incrementally from
// feasible extensions, the discarded independent constraints are
// satisfiable on their own, so SAT(slice ∧ target) ⇔ SAT(pc ∧ target).
// Per-constraint variable sets come from the shared ID-keyed cache,
// so repeated slicing of a growing path condition walks each distinct
// constraint once.
func Slice(pc []*expr.Expr, target *expr.Expr) []*expr.Expr {
	tvars := varsOf(target)
	if len(tvars) == 0 {
		return nil
	}
	vars := make([][]string, len(pc))
	for i, c := range pc {
		vars[i] = varsOf(c)
	}
	return sliceVars(pc, vars, tvars)
}

// queryStats derives, in one pass over the (sliced, live) constraint
// set, the three quantities the miss path needs: the order-insensitive
// variable-set signature that buckets the counterexample index, the
// distinct-variable count, and the total DAG node count — the latter
// two feed the easy/hard routing heuristic.
func queryStats(cons []*expr.Expr) (sig uint64, nvars, nodes int) {
	if len(cons) == 1 {
		names := varsOf(cons[0])
		return expr.VarSetSignature(names), len(names), sizeOf(cons[0])
	}
	seen := make(map[string]bool, 8)
	union := make([]string, 0, 8)
	for _, c := range cons {
		nodes += sizeOf(c)
		for _, n := range varsOf(c) {
			if !seen[n] {
				seen[n] = true
				union = append(union, n)
			}
		}
	}
	return expr.VarSetSignature(union), len(union), nodes
}

// cxIndex is the counterexample index shared by all queries of one
// solver (guarded by Solver.mu):
//
//   - SAT side: models bucketed by the variable-set signature of the
//     query that produced them, newest first, plus a small global
//     recency list (the old ring's behavior, kept as a fallback for
//     queries over different variable sets). A candidate model
//     proves SAT by evaluation.
//   - UNSAT side: stored constraint-ID sets of queries proven UNSAT,
//     anchored by their smallest ID. Conjunction is monotone, so any
//     stored set that is a subset of a query's ID set proves the
//     query UNSAT without solving — the "stronger query" half of
//     KLEE's cache subsumption.
//
// cap (Config.RecentModels) sizes both the per-bucket model lists and
// the recency list; cap == 0 disables the index. Like every cache
// here it affects performance only, never answers, and it is fed only
// from deterministic solve paths (never from raced or aborted
// verdicts) so its contents are bit-identical run-to-run.
type cxIndex struct {
	cap    int
	byVars map[uint64][]map[string]uint32
	recent []map[string]uint32
	pos    int
	unsat  map[uint64][][]uint64
	unsatN int
}

const (
	// cxMaxUnsatSets bounds the UNSAT side; overflowing clears it
	// (epoch semantics, same spirit as the verdict cache).
	cxMaxUnsatSets = 1024
	// cxMaxUnsatPerAnchor bounds one anchor's list so subset probes
	// stay cheap.
	cxMaxUnsatPerAnchor = 8
	// cxMaxUnsatLen skips storing very wide UNSAT sets: their subset
	// checks cost more than they save.
	cxMaxUnsatLen = 32
	// cxMaxBuckets bounds the SAT side's bucket count.
	cxMaxBuckets = DefaultCacheLimit
)

func newCxIndex(cap int) *cxIndex {
	return &cxIndex{
		cap:    cap,
		byVars: map[uint64][]map[string]uint32{},
		recent: make([]map[string]uint32, cap),
		unsat:  map[uint64][][]uint64{},
	}
}

// reset drops the index contents, keeping capacity configuration.
func (ix *cxIndex) reset() {
	ix.byVars = map[uint64][]map[string]uint32{}
	ix.recent = make([]map[string]uint32, ix.cap)
	ix.pos = 0
	ix.unsat = map[uint64][][]uint64{}
	ix.unsatN = 0
}

// addModel records a freshly solved witness for a query with the
// given variable-set signature.
func (ix *cxIndex) addModel(sig uint64, m map[string]uint32) {
	if ix.cap == 0 {
		return
	}
	if len(ix.byVars) >= cxMaxBuckets {
		ix.byVars = map[uint64][]map[string]uint32{}
	}
	bucket := ix.byVars[sig]
	next := make([]map[string]uint32, 0, ix.cap)
	next = append(next, m)
	for _, old := range bucket {
		if len(next) >= ix.cap {
			break
		}
		next = append(next, old)
	}
	ix.byVars[sig] = next
	ix.recent[ix.pos%len(ix.recent)] = m
	ix.pos++
}

// addUnsat records a sorted, deduplicated constraint-ID set proven
// UNSAT.
func (ix *cxIndex) addUnsat(ids []uint64) {
	if ix.cap == 0 || len(ids) == 0 || len(ids) > cxMaxUnsatLen {
		return
	}
	if ix.unsatN >= cxMaxUnsatSets {
		ix.unsat = map[uint64][][]uint64{}
		ix.unsatN = 0
	}
	anchor := ids[0]
	bucket := ix.unsat[anchor]
	if len(bucket) >= cxMaxUnsatPerAnchor {
		return
	}
	ix.unsat[anchor] = append(bucket, ids)
	ix.unsatN++
}

// subsetSorted reports whether every element of sub (sorted,
// duplicate-free) occurs in super (sorted, duplicates allowed).
func subsetSorted(sub, super []uint64) bool {
	j := 0
	for _, v := range sub {
		for j < len(super) && super[j] < v {
			j++
		}
		if j >= len(super) || super[j] != v {
			return false
		}
		j++
	}
	return true
}

// flushLocked drops one cache epoch: verdicts, models and the
// counterexample index go together so they can never disagree.
func (s *Solver) flushLocked() {
	s.cache = map[uint64]bool{}
	s.models = map[uint64]map[string]uint32{}
	s.cx.reset()
	s.evictions.Add(1)
}

// cacheGet looks up a memoized query verdict.
func (s *Solver) cacheGet(fp uint64) (bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cache[fp]
	return r, ok
}

// cachePut memoizes a query verdict, flushing the epoch first if the
// cache is full.
func (s *Solver) cachePut(fp uint64, r bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cache) >= s.cacheLimit {
		s.flushLocked()
	}
	s.cache[fp] = r
}

// modelGet looks up a cached model for the exact constraint set.
func (s *Solver) modelGet(fp uint64) (map[string]uint32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[fp]
	return m, ok
}

// storeModel caches a freshly solved witness under the query
// fingerprint and feeds the counterexample index. The map is owned by
// the solver afterwards: callers receive copies.
func (s *Solver) storeModel(fp, sig uint64, m map[string]uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.models) >= s.cacheLimit {
		s.flushLocked()
	}
	s.models[fp] = m
	s.cx.addModel(sig, m)
}

// rememberModel caches a reused witness under a new fingerprint
// without touching the counterexample index — the model is already
// indexed, and re-feeding it would evict distinct witnesses until the
// index held nothing but duplicates.
func (s *Solver) rememberModel(fp uint64, m map[string]uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.models) >= s.cacheLimit {
		s.flushLocked()
	}
	s.models[fp] = m
}

// trySat probes the counterexample index's SAT side: the exact
// variable-set bucket first (most recent first), then the global
// recency list. A candidate model satisfying every constraint proves
// SAT for the price of an evaluation.
func (s *Solver) trySat(sig uint64, constraints []*expr.Expr) (map[string]uint32, bool) {
	// Snapshot candidates into a stack buffer: this runs on every
	// query that misses the verdict cache, and a heap copy per probe
	// would undo the zero-allocation property of the fingerprint path.
	// Oversized configured indexes (rare) fall back to one allocation.
	var buf [4 * DefaultRecentModels]map[string]uint32
	cand := buf[:0]
	s.mu.Lock()
	cand = append(cand, s.cx.byVars[sig]...)
	cand = append(cand, s.cx.recent...)
	s.mu.Unlock()
next:
	for _, m := range cand {
		if m == nil {
			continue
		}
		ev := expr.NewEvaluator(m)
		for _, c := range constraints {
			if ev.Eval(c) == 0 {
				continue next
			}
		}
		return m, true
	}
	return nil, false
}

// tryUnsat probes the counterexample index's UNSAT side: if some
// stored UNSAT constraint-ID set is a subset of this query's set, the
// query is UNSAT by monotonicity of conjunction.
func (s *Solver) tryUnsat(constraints []*expr.Expr) bool {
	s.mu.Lock()
	empty := s.cx.unsatN == 0
	s.mu.Unlock()
	if empty || len(constraints) == 0 {
		return false
	}
	ids := make([]uint64, len(constraints))
	for i, c := range constraints {
		ids[i] = c.ID()
		if ids[i] == 0 {
			return false
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		for _, u := range s.cx.unsat[id] {
			if subsetSorted(u, ids) {
				return true
			}
		}
	}
	return false
}

// storeUnsat feeds a deterministically proven UNSAT constraint set
// into the index.
func (s *Solver) storeUnsat(constraints []*expr.Expr) {
	if len(constraints) == 0 || len(constraints) > cxMaxUnsatLen {
		return
	}
	ids := make([]uint64, 0, len(constraints))
	for _, c := range constraints {
		id := c.ID()
		if id == 0 {
			return
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dedup := ids[:1]
	for _, id := range ids[1:] {
		if id != dedup[len(dedup)-1] {
			dedup = append(dedup, id)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cx.addUnsat(dedup)
}
