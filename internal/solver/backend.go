package solver

import (
	"sort"
	"sync"

	"revnic/internal/expr"
)

// Verdict is a backend's answer to a satisfiability query. Unlike the
// two-valued Result of the front-end API, backends are explicitly
// three-valued: VUnknown covers both an interrupted search and a
// query outside the backend's decidable domain, and the front end
// must treat it conservatively (answer "unsat", cache nothing).
type Verdict int8

// Backend verdicts.
const (
	VUnknown Verdict = iota
	VUnsat
	VSat
)

// String renders the verdict for logs and tests.
func (v Verdict) String() string {
	switch v {
	case VSat:
		return "sat"
	case VUnsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Backend is the minimal decision-procedure contract underneath the
// solver front end. The front end owns everything query-shaped —
// fingerprint caches, the counterexample index, constraint slicing,
// easy/hard routing — so any Backend gets those for free; a backend
// only decides conjunctions.
//
// The protocol is a scoped assertion stack:
//
//   - Assert(c) conjoins constraint c (a width-1 expression) at the
//     current scope. Assertions made with no open scope are permanent.
//   - Push opens a scope; Pop retires the most recent scope and every
//     assertion made inside it. Pop on an empty scope stack panics.
//   - SolveUnder(cond) decides SAT(asserted ∧ cond) without asserting
//     cond; cond == nil decides the asserted conjunction alone.
//   - Model, valid only immediately after a VSat verdict, returns a
//     satisfying assignment as a fresh name→value map.
//   - SetInterrupt installs a cooperative abort hook polled during
//     solving; an aborted query answers VUnknown.
//
// Backends are not safe for concurrent use; the front end serializes
// access (sessions under incMu, one-shots on private instances).
type Backend interface {
	Assert(c *expr.Expr)
	Push()
	Pop()
	SolveUnder(cond *expr.Expr) Verdict
	Model() map[string]uint32
	SetInterrupt(f func() bool)
}

// Racer is the optional racing extension: the portfolio backend
// implements it, and the front end routes hard queries (see Config
// HardVars/HardNodes) through SolveRaced instead of SolveUnder.
// Verdicts stay deterministic — SAT/UNSAT is objective, so whichever
// racer answers first answers the same — but models produced under a
// race are not, which is why the front end never reads Model after a
// raced query.
type Racer interface {
	SolveRaced(cond *expr.Expr) Verdict
}

// Backend registry names.
const (
	// BackendCore is the native backend: bit-blasting to CNF over the
	// CDCL SAT core (package sat).
	BackendCore = "core"
	// BackendSmallDomain exhaustively enumerates assignments when the
	// query's total symbolic bit-width is small, and answers VUnknown
	// otherwise.
	BackendSmallDomain = "smalldomain"
	// BackendPortfolio races the core and small-domain backends on
	// hard queries and routes easy ones to the core.
	BackendPortfolio = "portfolio"
)

// BackendOpts parameterizes backend construction.
type BackendOpts struct {
	// LearntCap is forwarded to SAT instances (0 keeps the sat
	// default, negative disables learnt-clause deletion).
	LearntCap int
	// Interrupt is the cooperative abort hook (also installable later
	// via Backend.SetInterrupt).
	Interrupt func() bool
	// MaxDomainBits bounds the small-domain enumerator's total
	// bit-width; 0 selects DefaultMaxDomainBits.
	MaxDomainBits int
	// HardVars/HardNodes are carried so the portfolio can size
	// sub-backends consistently; the routing decision itself lives in
	// the front end.
	HardVars  int
	HardNodes int
}

// BackendFactory builds a fresh backend instance.
type BackendFactory func(BackendOpts) Backend

var backendRegistry = struct {
	sync.Mutex
	m map[string]BackendFactory
}{m: map[string]BackendFactory{}}

// RegisterBackend adds a named backend factory. Registering an
// existing name replaces it (tests use this to inject probes).
func RegisterBackend(name string, f BackendFactory) {
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	backendRegistry.m[name] = f
}

func backendFactory(name string) (BackendFactory, bool) {
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	f, ok := backendRegistry.m[name]
	return f, ok
}

// BackendNames returns the registered backend names, sorted.
func BackendNames() []string {
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	names := make([]string, 0, len(backendRegistry.m))
	for n := range backendRegistry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ValidBackend reports whether name selects a registered backend.
// The empty string is valid and selects the default (core).
func ValidBackend(name string) bool {
	if name == "" {
		return true
	}
	_, ok := backendFactory(name)
	return ok
}

func init() {
	RegisterBackend(BackendCore, newCoreBackend)
	RegisterBackend(BackendSmallDomain, newSmallDomainBackend)
	RegisterBackend(BackendPortfolio, newPortfolioBackend)
}

// coreBackend adapts the bit-blaster + CDCL SAT core to the Backend
// contract. Scopes map to sat assumption-selector scopes: only the
// root literal of each asserted constraint is scoped — the
// definitional gate clauses the blaster emits stay permanent, because
// the blaster memo outlives pops and a memoized literal whose
// defining clauses were retired would be unconstrained.
type coreBackend struct {
	b *blaster
}

func newCoreBackend(o BackendOpts) Backend {
	b := newBlaster()
	if o.LearntCap != 0 {
		b.s.SetLearntCap(o.LearntCap)
	}
	if o.Interrupt != nil {
		b.s.SetInterrupt(o.Interrupt)
	}
	return &coreBackend{b: b}
}

func (c *coreBackend) Assert(e *expr.Expr) {
	lit := c.b.blast(e)[0]
	c.b.s.AddScoped(lit)
}

func (c *coreBackend) Push() { c.b.s.Push() }
func (c *coreBackend) Pop()  { c.b.s.Pop() }

func (c *coreBackend) SetInterrupt(f func() bool) { c.b.s.SetInterrupt(f) }

func (c *coreBackend) SolveUnder(cond *expr.Expr) Verdict {
	var ok bool
	switch {
	case cond == nil || cond.IsTrue():
		ok = c.b.s.Solve()
	case cond.IsFalse():
		// asserted ∧ false is unsatisfiable regardless of the stack.
		return VUnsat
	default:
		lit := c.b.blast(cond)[0]
		ok = c.b.s.SolveUnder(lit)
	}
	if ok {
		return VSat
	}
	if c.b.s.Interrupted() {
		return VUnknown
	}
	return VUnsat
}

func (c *coreBackend) Model() map[string]uint32 { return c.b.model() }
