package solver

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"revnic/internal/expr"
)

func TestBasicQueries(t *testing.T) {
	s := New()
	x := expr.S("x", 32)
	// x + 1 == 5  is satisfiable with x = 4.
	c := expr.Eq(expr.Add(x, expr.C(1, 32)), expr.C(5, 32))
	if !s.Satisfiable([]*expr.Expr{c}) {
		t.Fatal("x+1==5 should be SAT")
	}
	m, ok := s.Model([]*expr.Expr{c})
	if !ok || m["x"] != 4 {
		t.Fatalf("model = %v", m)
	}
	// x < 2 && x > 5 is UNSAT.
	u := []*expr.Expr{
		expr.Ult(x, expr.C(2, 32)),
		expr.Ult(expr.C(5, 32), x),
	}
	if s.Satisfiable(u) {
		t.Fatal("x<2 && x>5 should be UNSAT")
	}
}

func TestMustMayBeTrue(t *testing.T) {
	s := New()
	x := expr.S("x", 8)
	pc := []*expr.Expr{expr.Ult(x, expr.C(10, 8))}
	lt20 := expr.Ult(x, expr.C(20, 8))
	lt5 := expr.Ult(x, expr.C(5, 8))
	if !s.MustBeTrue(pc, lt20) {
		t.Error("x<10 must imply x<20")
	}
	if s.MustBeTrue(pc, lt5) {
		t.Error("x<10 must not imply x<5")
	}
	if !s.MayBeTrue(pc, lt5) {
		t.Error("x<5 must be possible under x<10")
	}
}

func TestSignedComparison(t *testing.T) {
	s := New()
	x := expr.S("x", 8)
	// x <s 0 && x >u 200: signed-negative bytes are 128..255 unsigned,
	// so this is SAT (e.g. 201).
	cons := []*expr.Expr{
		expr.Slt(x, expr.C(0, 8)),
		expr.Ult(expr.C(200, 8), x),
	}
	m, ok := s.Model(cons)
	if !ok {
		t.Fatal("should be SAT")
	}
	if !(m["x"] > 200) || int8(m["x"]) >= 0 {
		t.Fatalf("model x=%d does not satisfy", m["x"])
	}
	// x <s 0 && x <u 100 is UNSAT at width 8.
	if s.Satisfiable([]*expr.Expr{
		expr.Slt(x, expr.C(0, 8)),
		expr.Ult(x, expr.C(100, 8)),
	}) {
		t.Fatal("negative byte cannot be <u 100")
	}
}

// TestRandomConstraintModels builds random constraints, and whenever
// the solver reports SAT, verifies the model by evaluation; whenever
// it reports UNSAT at width 8 over one variable, cross-checks by
// exhaustive enumeration.
func TestRandomConstraintModels(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	mkExpr := func(x *expr.Expr, depth int) *expr.Expr {
		e := x
		for i := 0; i < depth; i++ {
			c := expr.C(uint32(r.Intn(256)), 8)
			switch r.Intn(7) {
			case 0:
				e = expr.Add(e, c)
			case 1:
				e = expr.Sub(e, c)
			case 2:
				e = expr.And(e, c)
			case 3:
				e = expr.Or(e, c)
			case 4:
				e = expr.Xor(e, c)
			case 5:
				e = expr.Mul(e, c)
			case 6:
				e = expr.Shl(e, expr.C(uint32(r.Intn(8)), 8))
			}
		}
		return e
	}
	for trial := 0; trial < 120; trial++ {
		s := New()
		x := expr.S("x", 8)
		var cons []*expr.Expr
		for i := 0; i < 1+r.Intn(3); i++ {
			lhs := mkExpr(x, 1+r.Intn(3))
			c := expr.C(uint32(r.Intn(256)), 8)
			switch r.Intn(3) {
			case 0:
				cons = append(cons, expr.Eq(lhs, c))
			case 1:
				cons = append(cons, expr.Ult(lhs, c))
			case 2:
				cons = append(cons, expr.Not(expr.Eq(lhs, c)))
			}
		}
		// Exhaustive ground truth.
		want := false
		for v := uint32(0); v < 256; v++ {
			env := map[string]uint32{"x": v}
			all := true
			for _, c := range cons {
				if expr.Eval(c, env) == 0 {
					all = false
					break
				}
			}
			if all {
				want = true
				break
			}
		}
		got := s.Satisfiable(cons)
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v cons=%v", trial, got, want, cons)
		}
		if got {
			m, ok := s.Model(cons)
			if !ok {
				t.Fatalf("trial %d: Satisfiable but no model", trial)
			}
			for _, c := range cons {
				if expr.Eval(c, m) == 0 {
					t.Fatalf("trial %d: model %v violates %s", trial, m, c)
				}
			}
		}
	}
}

func TestMultiVariable(t *testing.T) {
	s := New()
	a, b := expr.S("a", 16), expr.S("b", 16)
	// a + b == 0x1234 && a == 0x1000
	cons := []*expr.Expr{
		expr.Eq(expr.Add(a, b), expr.C(0x1234, 16)),
		expr.Eq(a, expr.C(0x1000, 16)),
	}
	m, ok := s.Model(cons)
	if !ok || m["a"] != 0x1000 || m["b"] != 0x234 {
		t.Fatalf("model = %v", m)
	}
}

func TestVariableShift(t *testing.T) {
	s := New()
	x, k := expr.S("x", 32), expr.S("k", 32)
	// (x << k) == 0x100 && k == 4  forces x & 0xF0000000.. well x*16==0x100 → x low bits 0x10.
	cons := []*expr.Expr{
		expr.Eq(expr.Shl(x, k), expr.C(0x100, 32)),
		expr.Eq(k, expr.C(4, 32)),
	}
	m, ok := s.Model(cons)
	if !ok {
		t.Fatal("should be SAT")
	}
	if got := (m["x"] << 4); got != 0x100 {
		t.Fatalf("model x=%#x gives %#x", m["x"], got)
	}
}

func TestConcretizeAndValues(t *testing.T) {
	s := New()
	x := expr.S("x", 32)
	pc := []*expr.Expr{expr.Ult(x, expr.C(3, 32))}
	vals := s.Values(pc, x, 10)
	if len(vals) != 3 {
		t.Fatalf("Values = %v, want 3 values", vals)
	}
	seen := map[uint32]bool{}
	for _, v := range vals {
		if v >= 3 || seen[v] {
			t.Fatalf("Values = %v", vals)
		}
		seen[v] = true
	}
	v, ok := s.Concretize(pc, expr.Add(x, expr.C(100, 32)))
	if !ok || v < 100 || v > 102 {
		t.Fatalf("Concretize = %d, %v", v, ok)
	}
	// Constant shortcut.
	if v, _ := s.Concretize(nil, expr.C(7, 32)); v != 7 {
		t.Fatal("const concretize")
	}
}

func TestUnsatConcretize(t *testing.T) {
	s := New()
	x := expr.S("x", 8)
	pc := []*expr.Expr{expr.Eq(x, expr.C(1, 8)), expr.Eq(x, expr.C(2, 8))}
	if _, ok := s.Concretize(pc, x); ok {
		t.Fatal("UNSAT pc should not concretize")
	}
}

func TestSlice(t *testing.T) {
	x, y, z := expr.S("x", 32), expr.S("y", 32), expr.S("z", 32)
	pc := []*expr.Expr{
		expr.Ult(x, expr.C(10, 32)),            // touches x
		expr.Eq(y, expr.Add(x, expr.C(1, 32))), // links y to x
		expr.Ult(z, expr.C(5, 32)),             // independent
	}
	got := Slice(pc, expr.Eq(y, expr.C(3, 32)))
	if len(got) != 2 {
		t.Fatalf("slice kept %d constraints, want 2 (x and y chain)", len(got))
	}
	for _, c := range got {
		for _, v := range expr.VarNames(c) {
			if v == "z" {
				t.Fatal("independent constraint retained")
			}
		}
	}
	// Slicing must not change satisfiability verdicts.
	s := New()
	cond := expr.Ult(expr.C(10, 32), y) // y > 10 contradicts y = x+1, x < 10... x<10 -> y<=10
	if s.MayBeTrue(pc, cond) {
		t.Error("y>10 should be infeasible under x<10, y=x+1")
	}
	if !s.MayBeTrue(pc, expr.Eq(z, expr.C(4, 32))) {
		t.Error("z==4 feasible")
	}
	if s.MayBeTrue(pc, expr.Eq(z, expr.C(7, 32))) {
		t.Error("z==7 must respect the z<5 constraint")
	}
	// Constant target slices to nothing.
	if got := Slice(pc, expr.C(1, 1)); got != nil {
		t.Error("constant target should slice to empty")
	}
}

func TestSliceConcretizeRespectsConstraints(t *testing.T) {
	s := New()
	x, z := expr.S("x", 8), expr.S("z", 8)
	pc := []*expr.Expr{
		expr.Ult(expr.C(100, 8), x), // x > 100
		expr.Ult(z, expr.C(3, 8)),
	}
	v, ok := s.Concretize(pc, x)
	if !ok || v <= 100 {
		t.Errorf("concretize x = %d", v)
	}
	vals := s.Values(pc, z, 10)
	if len(vals) != 3 {
		t.Errorf("Values(z) = %v", vals)
	}
}

func TestCache(t *testing.T) {
	s := New()
	x := expr.S("x", 32)
	c := expr.Eq(x, expr.C(1, 32))
	s.Satisfiable([]*expr.Expr{c})
	s.Satisfiable([]*expr.Expr{c})
	if q, h := s.Stats(); q != 2 || h != 1 {
		t.Fatalf("queries=%d hits=%d", q, h)
	}
}

func TestByteMemoryPattern(t *testing.T) {
	// The pattern symbolic memory produces: store a 32-bit symbol
	// byte-wise, reload 16 bits, compare. Checks Trunc/Lshr/Concat
	// blasting against evaluation.
	s := New()
	x := expr.S("x", 32)
	lo := expr.ExtractByte(x, 0)
	hi := expr.ExtractByte(x, 1)
	v16 := expr.FromBytes16(lo, hi)
	cons := []*expr.Expr{expr.Eq(v16, expr.C(0xBEEF, 16))}
	m, ok := s.Model(cons)
	if !ok || m["x"]&0xFFFF != 0xBEEF {
		t.Fatalf("model = %v", m)
	}
}

func TestIteBlasting(t *testing.T) {
	s := New()
	x := expr.S("x", 8)
	cond := expr.Ult(x, expr.C(8, 8))
	e := expr.Ite(cond, expr.C(1, 8), expr.C(2, 8))
	// ite == 1 forces x < 8.
	m, ok := s.Model([]*expr.Expr{expr.Eq(e, expr.C(1, 8))})
	if !ok || m["x"] >= 8 {
		t.Fatalf("model = %v", m)
	}
	m, ok = s.Model([]*expr.Expr{expr.Eq(e, expr.C(2, 8))})
	if !ok || m["x"] < 8 {
		t.Fatalf("model = %v", m)
	}
}

// TestConcurrentSolving exercises the solver from many goroutines at
// once — the parallel exploration mode shares solvers across workers
// — while Stats and CacheSize are polled mid-flight. Run under
// `go test -race` this doubles as the data-race regression test for
// the mutex-guarded cache and atomic counters.
func TestConcurrentSolving(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := expr.S(fmt.Sprintf("x%d", g%3), 16)
			for i := 0; i < 40; i++ {
				want := uint32(i % 100)
				c := expr.Eq(expr.Add(x, expr.C(1, 16)), expr.C(want+1, 16))
				if !s.Satisfiable([]*expr.Expr{c}) {
					t.Errorf("x==%d should be SAT", want)
					return
				}
				if m, ok := s.Model([]*expr.Expr{c}); !ok || m[x.Name] != want {
					t.Errorf("model = %v, want x=%d", m, want)
					return
				}
				if s.Satisfiable([]*expr.Expr{c, expr.Not(c)}) {
					t.Error("c && !c should be UNSAT")
					return
				}
			}
		}(g)
	}
	// Poll statistics while queries are in flight: must be safe and
	// monotone.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastQ int64
		for i := 0; i < 100; i++ {
			q, h := s.Stats()
			if q < lastQ {
				t.Errorf("queries went backwards: %d -> %d", lastQ, q)
				return
			}
			if h > q {
				t.Errorf("hits %d exceed queries %d", h, q)
				return
			}
			lastQ = q
			_ = s.CacheSize()
		}
	}()
	wg.Wait()
	<-done
	if q, _ := s.Stats(); q == 0 {
		t.Error("no queries recorded")
	}
}

// TestCacheBound verifies the query cache cannot grow past its limit:
// overflow flushes an epoch and is reported via Evictions.
func TestCacheBound(t *testing.T) {
	s := New()
	s.SetCacheLimit(8)
	x := expr.S("x", 32)
	for i := 0; i < 100; i++ {
		c := expr.Eq(x, expr.C(uint32(i), 32))
		if !s.Satisfiable([]*expr.Expr{c}) {
			t.Fatalf("x==%d should be SAT", i)
		}
		if got := s.CacheSize(); got > 8 {
			t.Fatalf("cache grew to %d entries past limit 8", got)
		}
	}
	if s.Evictions() == 0 {
		t.Error("expected at least one epoch flush")
	}
}

// TestIncrementalMatchesOneShot is the equivalence regression for the
// incremental branch-query path: across random path-constraint
// sequences, MayBeTrue with the shared SAT session must answer
// exactly like a fresh non-incremental solver.
func TestIncrementalMatchesOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		inc := New()
		oneShot := New()
		oneShot.SetIncremental(false)
		vars := []*expr.Expr{expr.S("ia", 8), expr.S("ib", 8), expr.S("ic", 8)}
		var pc []*expr.Expr
		for step := 0; step < 8; step++ {
			x := vars[r.Intn(len(vars))]
			c := expr.C(uint32(r.Intn(256)), 8)
			var cond *expr.Expr
			switch r.Intn(4) {
			case 0:
				cond = expr.Ult(x, c)
			case 1:
				cond = expr.Eq(expr.Add(x, c), expr.C(uint32(r.Intn(256)), 8))
			case 2:
				cond = expr.Not(expr.Eq(expr.And(x, c), expr.C(0, 8)))
			default:
				cond = expr.Slt(x, c)
			}
			a, b := inc.MayBeTrue(pc, cond), oneShot.MayBeTrue(pc, cond)
			if a != b {
				t.Fatalf("trial %d step %d: incremental=%v one-shot=%v for %s under %v",
					trial, step, a, b, cond, pc)
			}
			na, nb := inc.MayBeTrue(pc, expr.Not(cond)), oneShot.MayBeTrue(pc, expr.Not(cond))
			if na != nb {
				t.Fatalf("trial %d step %d: negated divergence for %s", trial, step, cond)
			}
			// Extend the path like the engine does: constrain a feasible
			// side so the next iteration reuses the session prefix.
			switch {
			case a:
				pc = append(pc, cond)
			case na:
				pc = append(pc, expr.Not(cond))
			}
		}
		if ext, _ := inc.Sessions(); ext == 0 {
			t.Error("incremental solver never reused a session")
		}
	}
}

// TestModelCache checks the model cache: a repeated Model call for
// the same constraint set is served without solving, and the answer
// still satisfies the constraints.
func TestModelCache(t *testing.T) {
	s := New()
	x := expr.S("mc", 16)
	cons := []*expr.Expr{expr.Eq(expr.Mul(x, expr.C(3, 16)), expr.C(0x30, 16))}
	m1, ok := s.Model(cons)
	if !ok {
		t.Fatal("SAT expected")
	}
	before := s.ModelHits()
	m2, ok := s.Model(cons)
	if !ok || s.ModelHits() == before {
		t.Fatal("second Model call did not hit the model cache")
	}
	for _, m := range []map[string]uint32{m1, m2} {
		if expr.Eval(cons[0], m) == 0 {
			t.Fatalf("cached model %v violates constraint", m)
		}
	}
	// Mutating a returned model must not corrupt the cache.
	m2["mc"] = 0xFFFF
	m3, _ := s.Model(cons)
	if expr.Eval(cons[0], m3) == 0 {
		t.Fatal("cache corrupted by caller mutation")
	}
}

// TestCounterexampleReuse checks the recent-model ring: a query
// satisfied by a recently found witness is answered without solving.
func TestCounterexampleReuse(t *testing.T) {
	s := New()
	x := expr.S("cr", 8)
	// First query discovers a model with x < 100.
	if !s.Satisfiable([]*expr.Expr{expr.Ult(x, expr.C(100, 8))}) {
		t.Fatal("SAT expected")
	}
	// A weaker query is satisfied by the same witness.
	before := s.ModelHits()
	if !s.Satisfiable([]*expr.Expr{expr.Ult(x, expr.C(200, 8))}) {
		t.Fatal("SAT expected")
	}
	if s.ModelHits() == before {
		t.Error("weaker query did not reuse the recent model")
	}
}

// TestFingerprintProperties pins the fingerprint contract: order
// insensitivity, and sensitivity to membership and multiplicity.
func TestFingerprintProperties(t *testing.T) {
	x, y := expr.S("fpx", 8), expr.S("fpy", 8)
	a := expr.Ult(x, expr.C(5, 8))
	b := expr.Eq(y, expr.C(7, 8))
	c := expr.Not(expr.Eq(x, y))
	if fingerprint([]*expr.Expr{a, b, c}) != fingerprint([]*expr.Expr{c, a, b}) {
		t.Error("fingerprint is order sensitive")
	}
	if fingerprint([]*expr.Expr{a, b}) == fingerprint([]*expr.Expr{a, b, c}) {
		t.Error("fingerprint ignores membership")
	}
	if fingerprint([]*expr.Expr{a}) == fingerprint([]*expr.Expr{a, a}) {
		t.Error("fingerprint ignores multiplicity")
	}
	// Interned reconstruction fingerprints identically.
	a2 := expr.Ult(expr.S("fpx", 8), expr.C(5, 8))
	if fingerprint([]*expr.Expr{a}) != fingerprint([]*expr.Expr{a2}) {
		t.Error("reconstructed constraint fingerprints differently")
	}
}

// benchConstraints builds a realistic path condition: a chain of
// branch conditions over a handful of hardware symbols.
func benchConstraints(n int) []*expr.Expr {
	out := make([]*expr.Expr, 0, n)
	for i := 0; i < n; i++ {
		x := expr.S(fmt.Sprintf("hw_%d", i%6), 32)
		e := expr.And(expr.Add(x, expr.C(uint32(i), 32)), expr.C(0xFF, 32))
		out = append(out, expr.Ult(e, expr.C(uint32(64+i%32), 32)))
	}
	return out
}

// legacyFingerprint is the pre-interning implementation (structural
// hash + size rendered to a sorted, joined string), kept here as the
// baseline for BenchmarkSolverFingerprint.
func legacyFingerprint(constraints []*expr.Expr) string {
	parts := make([]string, len(constraints))
	for i, c := range constraints {
		parts[i] = fmt.Sprintf("%016x:%d", c.Hash(), c.Size())
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// BenchmarkSolverFingerprint measures the query-cache key on a
// 32-constraint path condition: the interned-ID hash against the
// legacy string rendering it replaced. The allocation column is the
// point — the uint64 fingerprint allocates nothing.
func BenchmarkSolverFingerprint(b *testing.B) {
	cons := benchConstraints(32)
	b.Run("interned-ids", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= fingerprint(cons)
		}
		_ = sink
	})
	b.Run("legacy-string", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			n += len(legacyFingerprint(cons))
		}
		_ = n
	})
}

// BenchmarkMayBeTrue measures the branch-feasibility hot path with
// and without incremental sessions on a growing path condition.
func BenchmarkMayBeTrue(b *testing.B) {
	for _, mode := range []struct {
		name string
		inc  bool
	}{{"incremental", true}, {"one-shot", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := New()
				s.SetIncremental(mode.inc)
				x := expr.S("bm", 16)
				var pc []*expr.Expr
				for step := 0; step < 12; step++ {
					// Each condition pins different bits of x, so cached
					// models rarely satisfy the next query and the SAT
					// core does real work at every branch.
					cond := expr.Eq(
						expr.And(expr.Add(x, expr.C(uint32(step*13), 16)), expr.C(0xFF, 16)),
						expr.C(uint32(step*37)&0xFF, 16))
					if s.MayBeTrue(pc, cond) {
						pc = append(pc, cond)
					} else {
						pc = append(pc, expr.Not(cond))
					}
				}
			}
		})
	}
}

func TestConfigurableCounterexampleRing(t *testing.T) {
	if got := New().RingSize(); got != DefaultRecentModels {
		t.Fatalf("default ring size %d, want %d", got, DefaultRecentModels)
	}
	if got := NewWith(Config{RecentModels: 16}).RingSize(); got != 16 {
		t.Fatalf("ring size %d, want 16", got)
	}
	if got := NewWith(Config{RecentModels: -1}).RingSize(); got != 0 {
		t.Fatalf("ring size %d, want 0 (disabled)", got)
	}
	// Answers must not depend on the ring size, including disabled.
	x := expr.S("ringx", 8)
	for _, ring := range []int{-1, 1, 16} {
		s := NewWith(Config{RecentModels: ring})
		pc := []*expr.Expr{expr.Ult(x, expr.C(10, 8))}
		if !s.Satisfiable(pc) {
			t.Fatalf("ring %d: x < 10 must be SAT", ring)
		}
		if s.Satisfiable([]*expr.Expr{expr.Ult(x, expr.C(10, 8)), expr.Not(expr.Ult(x, expr.C(10, 8)))}) {
			t.Fatalf("ring %d: contradiction must be UNSAT", ring)
		}
		if _, ok := s.Model(pc); !ok {
			t.Fatalf("ring %d: model must exist", ring)
		}
	}
}

func TestSolverArenaScoped(t *testing.T) {
	// A solver bound to a private arena must not grow the default
	// arena when it derives expressions (Values exclusions,
	// MustBeTrue negations).
	ar := expr.NewArena()
	s := NewWith(Config{Arena: ar})
	x := ar.S("arsx", 32)
	pc := []*expr.Expr{ar.Ult(x, ar.C(4, 32))}
	expr.VarNames(x) // warm any lazy default-arena state
	before := expr.InternedNodes()
	vals := s.Values(pc, x, 8)
	if len(vals) != 4 {
		t.Fatalf("expected 4 values below 4, got %v", vals)
	}
	if !s.MustBeTrue(pc, ar.Ult(x, ar.C(100, 32))) {
		t.Fatal("x < 4 implies x < 100")
	}
	if after := expr.InternedNodes(); after != before {
		t.Fatalf("arena-scoped solver grew the default arena: %d -> %d", before, after)
	}
}
