package solver

import (
	"sync"
	"sync/atomic"

	"revnic/internal/expr"
)

// Easy/hard routing defaults (Config.HardVars / Config.HardNodes): a
// cache-missing query is "hard" — worth racing backends on — when its
// distinct-variable count or total DAG node count crosses a
// threshold. The decision is a pure function of the sliced query, so
// the routing (and therefore every cache side effect) is bit-identical
// run-to-run whether or not a race then happens.
const (
	DefaultHardVars  = 6
	DefaultHardNodes = 1500
)

// portfolio races its child backends on hard queries. Child 0 — the
// core — is the primary: easy queries (SolveUnder) and model reads go
// to it alone, so everything observable outside a race is exactly
// what the core backend alone would produce. SolveRaced fans the
// query out, takes the first definitive verdict, and cancels the
// losers through their interrupt hooks. SAT/UNSAT verdicts are
// objective, so whichever child answers first answers the same and
// raced verdicts stay deterministic; raced models are NOT (the winner
// varies run-to-run), which is why the front end never reads Model
// after SolveRaced and never feeds raced queries into the model
// caches.
type portfolio struct {
	children  []Backend
	names     []string
	interrupt func() bool
}

func newPortfolioBackend(o BackendOpts) Backend {
	return &portfolio{
		children: []Backend{
			newCoreBackend(o),
			newSmallDomainBackend(o),
		},
		names:     []string{BackendCore, BackendSmallDomain},
		interrupt: o.Interrupt,
	}
}

func (p *portfolio) Assert(c *expr.Expr) {
	for _, b := range p.children {
		b.Assert(c)
	}
}

func (p *portfolio) Push() {
	for _, b := range p.children {
		b.Push()
	}
}

func (p *portfolio) Pop() {
	for _, b := range p.children {
		b.Pop()
	}
}

func (p *portfolio) SetInterrupt(f func() bool) {
	p.interrupt = f
	for _, b := range p.children {
		b.SetInterrupt(f)
	}
}

// SolveUnder is the easy route: primary only.
func (p *portfolio) SolveUnder(cond *expr.Expr) Verdict {
	return p.children[0].SolveUnder(cond)
}

// Model reads the primary's model; valid only after a VSat verdict
// from SolveUnder (never after SolveRaced — raced models are
// nondeterministic and the front end does not ask for them).
func (p *portfolio) Model() map[string]uint32 { return p.children[0].Model() }

// SolveRaced implements Racer: every child solves the query
// concurrently under a combined interrupt (race-done flag OR the
// caller's hook); the first definitive verdict wins and flips the
// flag, aborting the losers within one poll interval. The call
// returns only after every child has finished, so children are never
// mid-solve when the next query arrives. If no child answers
// definitively (all interrupted or out of domain), the verdict is
// VUnknown and the caller treats it like any aborted query: answer
// conservatively, cache nothing.
func (p *portfolio) SolveRaced(cond *expr.Expr) Verdict {
	global := p.interrupt
	var done atomic.Bool
	combined := func() bool {
		return done.Load() || (global != nil && global())
	}
	for _, b := range p.children {
		b.SetInterrupt(combined)
	}
	type answer struct {
		idx int
		v   Verdict
	}
	ch := make(chan answer, len(p.children))
	for i, b := range p.children {
		go func(i int, b Backend) {
			ch <- answer{i, b.SolveUnder(cond)}
		}(i, b)
	}
	verdict := VUnknown
	winner := -1
	var losers, cancels []int
	for range p.children {
		a := <-ch
		switch {
		case a.v != VUnknown && winner < 0:
			winner = a.idx
			verdict = a.v
			done.Store(true)
		case a.v != VUnknown:
			losers = append(losers, a.idx)
		default:
			// VUnknown from a loser: cancelled by the race flag, the
			// caller's interrupt, or out of the child's domain — all
			// "did not answer", counted as cancelled.
			cancels = append(cancels, a.idx)
		}
	}
	for _, b := range p.children {
		b.SetInterrupt(global)
	}
	recordRace(p.names, winner, losers, cancels)
	return verdict
}

// BackendCounters is one backend's cumulative portfolio-race tallies.
type BackendCounters struct {
	// Wins: races this backend answered first.
	Wins int64
	// Losses: races it answered definitively, but late.
	Losses int64
	// Cancels: races it did not answer (cancelled mid-solve or out of
	// its domain).
	Cancels int64
}

// Race counters are process-global by design: per-backend win rates
// are an operational signal (surfaced on revnicd /metrics), not part
// of any job's result — JobResult stays bit-identical with the
// portfolio on or off.
var raceStats = struct {
	sync.Mutex
	m map[string]*BackendCounters
}{m: map[string]*BackendCounters{}}

func recordRace(names []string, winner int, losers, cancels []int) {
	raceStats.Lock()
	defer raceStats.Unlock()
	bump := func(idx int) *BackendCounters {
		c := raceStats.m[names[idx]]
		if c == nil {
			c = &BackendCounters{}
			raceStats.m[names[idx]] = c
		}
		return c
	}
	if winner >= 0 {
		bump(winner).Wins++
	}
	for _, i := range losers {
		bump(i).Losses++
	}
	for _, i := range cancels {
		bump(i).Cancels++
	}
}

// PortfolioSnapshot returns the cumulative per-backend race counters.
func PortfolioSnapshot() map[string]BackendCounters {
	raceStats.Lock()
	defer raceStats.Unlock()
	out := make(map[string]BackendCounters, len(raceStats.m))
	for n, c := range raceStats.m {
		out[n] = *c
	}
	return out
}

// ResetPortfolioCounters clears the race counters (tests).
func ResetPortfolioCounters() {
	raceStats.Lock()
	defer raceStats.Unlock()
	raceStats.m = map[string]*BackendCounters{}
}
