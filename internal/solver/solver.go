// Package solver decides satisfiability of conjunctions of symbolic
// bitvector constraints (package expr) by bit-blasting them to CNF and
// invoking the CDCL SAT core (package sat).
//
// It fills the role STP fills for KLEE in the original RevNIC: the
// symbolic execution engine asks, at every branch that depends on
// symbolic input, whether each outcome is feasible under the current
// path constraints, and requests concrete models when it needs to
// concretize (e.g., for symbolic memory addresses, §3.4 of the paper).
package solver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"revnic/internal/expr"
	"revnic/internal/sat"
)

// Result is the outcome of a satisfiability query.
type Result int

// Query outcomes.
const (
	Unsat Result = iota
	Sat
)

// DefaultCacheLimit bounds the query cache. When an exploration
// would grow the cache past the limit the cache is reset (an epoch
// flush), so long runs hold at most one epoch of memoized queries;
// Evictions reports how often that happened.
const DefaultCacheLimit = 1 << 16

// Solver answers bitvector queries with memoization. The zero value
// is not usable; call New.
//
// A Solver is safe for concurrent use: the query cache is
// mutex-guarded and the statistics counters are atomic, so parallel
// exploration workers may share one instance (each bit-blasted query
// still runs on its own private SAT instance).
type Solver struct {
	mu         sync.Mutex
	cache      map[string]bool
	cacheLimit int
	queries    atomic.Int64
	hits       atomic.Int64
	evictions  atomic.Int64
}

// New returns a solver with an empty cache bounded at
// DefaultCacheLimit entries.
func New() *Solver {
	return &Solver{cache: map[string]bool{}, cacheLimit: DefaultCacheLimit}
}

// Stats returns the number of queries answered and the cache hits
// among them. It is safe to call while queries are in flight.
func (s *Solver) Stats() (queries, cacheHits int64) {
	return s.queries.Load(), s.hits.Load()
}

// CacheSize returns the current number of memoized queries.
func (s *Solver) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Evictions returns how many times the cache hit its limit and was
// flushed.
func (s *Solver) Evictions() int64 { return s.evictions.Load() }

// SetCacheLimit overrides the cache bound (entries); n <= 0 restores
// the default. The bound affects memory and hit rate only, never
// query answers.
func (s *Solver) SetCacheLimit(n int) {
	if n <= 0 {
		n = DefaultCacheLimit
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheLimit = n
	if len(s.cache) > n {
		s.cache = map[string]bool{}
		s.evictions.Add(1)
	}
}

// cacheGet looks up a memoized query result.
func (s *Solver) cacheGet(fp string) (bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cache[fp]
	return r, ok
}

// cachePut memoizes a query result, flushing the cache first if it
// is full.
func (s *Solver) cachePut(fp string, r bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cache) >= s.cacheLimit {
		s.cache = map[string]bool{}
		s.evictions.Add(1)
	}
	s.cache[fp] = r
}

// fingerprint keys the query cache on the constraints' structural
// hashes. String() rendering would be exponential on heavily shared
// DAGs; Hash is linear in distinct nodes.
func fingerprint(constraints []*expr.Expr) string {
	parts := make([]string, len(constraints))
	for i, c := range constraints {
		parts[i] = fmt.Sprintf("%016x:%d", c.Hash(), c.Size())
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// Satisfiable reports whether the conjunction of the given width-1
// constraints has a model.
func (s *Solver) Satisfiable(constraints []*expr.Expr) bool {
	s.queries.Add(1)
	// Cheap pass: constant constraints.
	var live []*expr.Expr
	for _, c := range constraints {
		if c.IsFalse() {
			return false
		}
		if !c.IsTrue() {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return true
	}
	fp := fingerprint(live)
	if r, ok := s.cacheGet(fp); ok {
		s.hits.Add(1)
		return r
	}
	b := newBlaster()
	for _, c := range live {
		out := b.blast(c)
		b.s.AddClause(out[0])
	}
	r := b.s.Solve()
	s.cachePut(fp, r)
	return r
}

// Slice returns the subset of constraints transitively sharing
// symbolic variables with target — KLEE's constraint-independence
// optimization. Because path conditions are built incrementally from
// feasible extensions, the discarded independent constraints are
// satisfiable on their own, so SAT(slice ∧ target) ⇔ SAT(pc ∧ target).
func Slice(pc []*expr.Expr, target *expr.Expr) []*expr.Expr {
	want := map[string]uint8{}
	expr.Vars(target, want)
	if len(want) == 0 {
		return nil
	}
	type entry struct {
		c    *expr.Expr
		vars map[string]uint8
		used bool
	}
	entries := make([]entry, len(pc))
	for i, c := range pc {
		vs := map[string]uint8{}
		expr.Vars(c, vs)
		entries[i] = entry{c: c, vars: vs}
	}
	// Fixed-point expansion of the variable set.
	for changed := true; changed; {
		changed = false
		for i := range entries {
			if entries[i].used {
				continue
			}
			hit := false
			for v := range entries[i].vars {
				if _, ok := want[v]; ok {
					hit = true
					break
				}
			}
			if hit {
				entries[i].used = true
				changed = true
				for v, w := range entries[i].vars {
					want[v] = w
				}
			}
		}
	}
	var out []*expr.Expr
	for _, e := range entries {
		if e.used {
			out = append(out, e.c)
		}
	}
	return out
}

// MayBeTrue reports whether cond can be true under the path
// constraints: SAT(pc ∧ cond). The path condition is sliced to the
// constraints relevant to cond first.
func (s *Solver) MayBeTrue(pc []*expr.Expr, cond *expr.Expr) bool {
	rel := Slice(pc, cond)
	return s.Satisfiable(append(rel, cond))
}

// MustBeTrue reports whether cond is implied by the path constraints:
// UNSAT(pc ∧ ¬cond).
func (s *Solver) MustBeTrue(pc []*expr.Expr, cond *expr.Expr) bool {
	return !s.MayBeTrue(pc, expr.Not(cond))
}

// Model returns a satisfying assignment for the constraints, or ok =
// false if they are unsatisfiable. Variables not mentioned in the
// constraints are absent from the model (they may take any value;
// expr.Eval treats them as zero).
func (s *Solver) Model(constraints []*expr.Expr) (map[string]uint32, bool) {
	s.queries.Add(1)
	var live []*expr.Expr
	for _, c := range constraints {
		if c.IsFalse() {
			return nil, false
		}
		if !c.IsTrue() {
			live = append(live, c)
		}
	}
	b := newBlaster()
	for _, c := range live {
		out := b.blast(c)
		b.s.AddClause(out[0])
	}
	if !b.s.Solve() {
		s.cachePut(fingerprint(live), false)
		return nil, false
	}
	s.cachePut(fingerprint(live), true)
	model := map[string]uint32{}
	for name, bits := range b.syms {
		var v uint32
		for i, lit := range bits {
			if b.s.Value(lit.Var()) != lit.Sign() {
				v |= 1 << i
			}
		}
		model[name] = v
	}
	return model, true
}

// Concretize returns a concrete value e can take under the path
// constraints, plus ok=false if the constraints are unsatisfiable.
// This implements the address/value concretization RevNIC applies to
// symbolic memory addresses and to OS-visible values.
func (s *Solver) Concretize(pc []*expr.Expr, e *expr.Expr) (uint32, bool) {
	if v, ok := e.IsConst(); ok {
		return v, true
	}
	// Only the constraints touching e's variables can restrict its
	// value; independent ones are satisfiable separately.
	model, ok := s.Model(Slice(pc, e))
	if !ok {
		return 0, false
	}
	return expr.Eval(e, model), true
}

// Values enumerates up to max distinct concrete values e can take
// under the path constraints, in the order the solver discovers them.
// This implements the jump-table enumeration of §3.4: "Since there
// are typically only a few concrete values, RevNIC generates all of
// them and forks the execution for each such value."
func (s *Solver) Values(pc []*expr.Expr, e *expr.Expr, max int) []uint32 {
	if v, ok := e.IsConst(); ok {
		return []uint32{v}
	}
	var out []uint32
	cons := Slice(pc, e)
	for len(out) < max {
		model, ok := s.Model(cons)
		if !ok {
			break
		}
		v := expr.Eval(e, model)
		out = append(out, v)
		cons = append(cons, expr.Not(expr.Eq(e, expr.C(v, e.Width))))
	}
	return out
}

// blaster converts expression DAGs to CNF over a fresh SAT instance.
// Bit i of a value is lits[i] (LSB first).
type blaster struct {
	s     *sat.Solver
	memo  map[*expr.Expr][]sat.Lit
	syms  map[string][]sat.Lit
	true_ sat.Lit
}

func newBlaster() *blaster {
	b := &blaster{
		s:    sat.New(),
		memo: map[*expr.Expr][]sat.Lit{},
		syms: map[string][]sat.Lit{},
	}
	v := b.s.NewVar()
	b.true_ = sat.Pos(v)
	b.s.AddClause(b.true_)
	return b
}

func (b *blaster) constLit(v bool) sat.Lit {
	if v {
		return b.true_
	}
	return b.true_.Not()
}

func (b *blaster) isConst(l sat.Lit) (bool, bool) {
	if l == b.true_ {
		return true, true
	}
	if l == b.true_.Not() {
		return false, true
	}
	return false, false
}

func (b *blaster) fresh() sat.Lit { return sat.Pos(b.s.NewVar()) }

// gateAnd returns a literal equivalent to x ∧ y.
func (b *blaster) gateAnd(x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(x); ok {
		if !v {
			return b.constLit(false)
		}
		return y
	}
	if v, ok := b.isConst(y); ok {
		if !v {
			return b.constLit(false)
		}
		return x
	}
	if x == y {
		return x
	}
	if x == y.Not() {
		return b.constLit(false)
	}
	out := b.fresh()
	b.s.AddClause(out.Not(), x)
	b.s.AddClause(out.Not(), y)
	b.s.AddClause(out, x.Not(), y.Not())
	return out
}

func (b *blaster) gateOr(x, y sat.Lit) sat.Lit {
	return b.gateAnd(x.Not(), y.Not()).Not()
}

func (b *blaster) gateXor(x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(x); ok {
		if v {
			return y.Not()
		}
		return y
	}
	if v, ok := b.isConst(y); ok {
		if v {
			return x.Not()
		}
		return x
	}
	if x == y {
		return b.constLit(false)
	}
	if x == y.Not() {
		return b.constLit(true)
	}
	out := b.fresh()
	b.s.AddClause(out.Not(), x, y)
	b.s.AddClause(out.Not(), x.Not(), y.Not())
	b.s.AddClause(out, x.Not(), y)
	b.s.AddClause(out, x, y.Not())
	return out
}

// gateMux returns c ? x : y.
func (b *blaster) gateMux(c, x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(c); ok {
		if v {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	out := b.fresh()
	b.s.AddClause(c.Not(), x.Not(), out)
	b.s.AddClause(c.Not(), x, out.Not())
	b.s.AddClause(c, y.Not(), out)
	b.s.AddClause(c, y, out.Not())
	return out
}

// fullAdder returns (sum, carryOut) for x + y + cin.
func (b *blaster) fullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.gateXor(b.gateXor(x, y), cin)
	cout = b.gateOr(b.gateAnd(x, y), b.gateAnd(cin, b.gateXor(x, y)))
	return sum, cout
}

func (b *blaster) adder(x, y []sat.Lit, cin sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) negBits(x []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i, l := range x {
		out[i] = l.Not()
	}
	return out
}

// ult returns the borrow chain result of a - b: true iff a < b
// unsigned.
func (b *blaster) ult(x, y []sat.Lit) sat.Lit {
	borrow := b.constLit(false)
	for i := range x {
		// borrow' = (~x & y) | ((~x | y) & borrow)
		nx := x[i].Not()
		borrow = b.gateOr(b.gateAnd(nx, y[i]), b.gateAnd(b.gateOr(nx, y[i]), borrow))
	}
	return borrow
}

func (b *blaster) shiftConst(x []sat.Lit, k int, kind expr.Kind) []sat.Lit {
	w := len(x)
	out := make([]sat.Lit, w)
	for i := range out {
		switch kind {
		case expr.KShl:
			if i-k >= 0 {
				out[i] = x[i-k]
			} else {
				out[i] = b.constLit(false)
			}
		case expr.KLshr:
			if i+k < w {
				out[i] = x[i+k]
			} else {
				out[i] = b.constLit(false)
			}
		case expr.KAshr:
			if i+k < w {
				out[i] = x[i+k]
			} else {
				out[i] = x[w-1]
			}
		}
	}
	return out
}

// blast returns the bit literals of e, LSB first.
func (b *blaster) blast(e *expr.Expr) []sat.Lit {
	if bits, ok := b.memo[e]; ok {
		return bits
	}
	bits := b.blastUncached(e)
	if len(bits) != int(e.Width) {
		panic("solver: width mismatch in blasting")
	}
	b.memo[e] = bits
	return bits
}

func (b *blaster) blastUncached(e *expr.Expr) []sat.Lit {
	w := int(e.Width)
	switch e.Kind {
	case expr.KConst:
		out := make([]sat.Lit, w)
		for i := range out {
			out[i] = b.constLit(e.Val>>i&1 == 1)
		}
		return out
	case expr.KSym:
		if bits, ok := b.syms[e.Name]; ok {
			if len(bits) != w {
				panic("solver: symbol " + e.Name + " used at two widths")
			}
			return bits
		}
		bits := make([]sat.Lit, w)
		for i := range bits {
			bits[i] = b.fresh()
		}
		b.syms[e.Name] = bits
		return bits
	case expr.KAdd:
		return b.adder(b.blast(e.A), b.blast(e.B), b.constLit(false))
	case expr.KSub:
		return b.adder(b.blast(e.A), b.negBits(b.blast(e.B)), b.constLit(true))
	case expr.KMul:
		x, y := b.blast(e.A), b.blast(e.B)
		acc := make([]sat.Lit, w)
		for i := range acc {
			acc[i] = b.constLit(false)
		}
		for i := 0; i < w; i++ {
			// Partial product: (x << i) masked by y[i].
			pp := make([]sat.Lit, w)
			for j := range pp {
				if j < i {
					pp[j] = b.constLit(false)
				} else {
					pp[j] = b.gateAnd(x[j-i], y[i])
				}
			}
			acc = b.adder(acc, pp, b.constLit(false))
		}
		return acc
	case expr.KAnd, expr.KOr, expr.KXor:
		x, y := b.blast(e.A), b.blast(e.B)
		out := make([]sat.Lit, w)
		for i := range out {
			switch e.Kind {
			case expr.KAnd:
				out[i] = b.gateAnd(x[i], y[i])
			case expr.KOr:
				out[i] = b.gateOr(x[i], y[i])
			case expr.KXor:
				out[i] = b.gateXor(x[i], y[i])
			}
		}
		return out
	case expr.KShl, expr.KLshr, expr.KAshr:
		x := b.blast(e.A)
		if k, ok := e.B.IsConst(); ok {
			return b.shiftConst(x, int(k%32), e.Kind)
		}
		// Barrel shifter over the low 5 bits of the amount (shifts
		// are defined mod 32, matching expr.Eval and the VM).
		amt := b.blast(e.B)
		cur := x
		for stage := 0; stage < 5 && 1<<stage < 32; stage++ {
			if stage >= len(amt) {
				break
			}
			shifted := b.shiftConst(cur, 1<<stage, e.Kind)
			next := make([]sat.Lit, w)
			for i := range next {
				next[i] = b.gateMux(amt[stage], shifted[i], cur[i])
			}
			cur = next
		}
		return cur
	case expr.KEq:
		x, y := b.blast(e.A), b.blast(e.B)
		acc := b.constLit(true)
		for i := range x {
			acc = b.gateAnd(acc, b.gateXor(x[i], y[i]).Not())
		}
		return []sat.Lit{acc}
	case expr.KUlt:
		return []sat.Lit{b.ult(b.blast(e.A), b.blast(e.B))}
	case expr.KSlt:
		// Flip sign bits and compare unsigned.
		x := append([]sat.Lit{}, b.blast(e.A)...)
		y := append([]sat.Lit{}, b.blast(e.B)...)
		x[len(x)-1] = x[len(x)-1].Not()
		y[len(y)-1] = y[len(y)-1].Not()
		return []sat.Lit{b.ult(x, y)}
	case expr.KNot:
		return b.negBits(b.blast(e.A))
	case expr.KZext:
		x := b.blast(e.A)
		out := make([]sat.Lit, w)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = b.constLit(false)
			}
		}
		return out
	case expr.KTrunc:
		return b.blast(e.A)[:w:w]
	case expr.KConcat:
		lo := b.blast(e.B)
		hi := b.blast(e.A)
		out := make([]sat.Lit, 0, w)
		out = append(out, lo...)
		out = append(out, hi...)
		return out
	case expr.KIte:
		c := b.blast(e.A)[0]
		x, y := b.blast(e.B), b.blast(e.C)
		out := make([]sat.Lit, w)
		for i := range out {
			out[i] = b.gateMux(c, x[i], y[i])
		}
		return out
	}
	panic("solver: cannot blast kind")
}
