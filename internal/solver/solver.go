// Package solver decides satisfiability of conjunctions of symbolic
// bitvector constraints (package expr) by bit-blasting them to CNF and
// invoking the CDCL SAT core (package sat).
//
// It fills the role STP fills for KLEE in the original RevNIC: the
// symbolic execution engine asks, at every branch that depends on
// symbolic input, whether each outcome is feasible under the current
// path constraints, and requests concrete models when it needs to
// concretize (e.g., for symbolic memory addresses, §3.4 of the paper).
//
// The query path is built on interned expression IDs (expr.ID):
//
//   - the sat/unsat cache and the model cache key on an
//     order-insensitive uint64 hash of the constraint IDs, so a cache
//     probe allocates nothing;
//   - a small ring of recently discovered models is evaluated against
//     each new query before any CNF is built (KLEE's counterexample
//     cache): a model that satisfies the query proves SAT for the
//     price of an evaluation;
//   - branch-feasibility queries (MayBeTrue) run incrementally: the
//     solver keeps one SAT session per constraint prefix, asserts new
//     path constraints as they appear, and decides each condition
//     under an assumption literal (sat.SolveUnder), so the two queries
//     a branch issues — cond and ¬cond — share one CNF translation,
//     and consecutive branches on the same path reuse the whole
//     prefix.
package solver

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"revnic/internal/expr"
	"revnic/internal/sat"
)

// Result is the outcome of a satisfiability query.
type Result int

// Query outcomes.
const (
	Unsat Result = iota
	Sat
)

// DefaultCacheLimit bounds the query cache. When an exploration
// would grow the cache past the limit the cache (and the model cache
// beside it) is reset — an epoch flush — so long runs hold at most
// one epoch of memoized queries; Evictions reports how often that
// happened.
const DefaultCacheLimit = 1 << 16

// DefaultRecentModels is the default size of the counterexample ring:
// how many recently discovered models are tried against each new
// query before bit-blasting.
const DefaultRecentModels = 4

// Config parameterizes a solver. The zero value selects the defaults
// New uses.
type Config struct {
	// Arena is the expression arena the solver builds derived
	// expressions in (negations for MustBeTrue, exclusion constraints
	// for Values). nil selects the process-global default arena; a
	// job-scoped solver must pass the job's arena so its expressions
	// die with the job.
	Arena *expr.Arena
	// CacheLimit bounds the query/model caches; 0 selects
	// DefaultCacheLimit.
	CacheLimit int
	// RecentModels sizes the counterexample ring. 0 selects
	// DefaultRecentModels; negative disables model reuse across
	// queries entirely. The size affects performance only, never
	// query answers.
	RecentModels int
	// LearntCap is forwarded to every SAT instance the solver
	// creates (sat.Solver.SetLearntCap): 0 keeps the SAT default,
	// negative disables learnt-clause deletion.
	LearntCap int
	// DisableIncremental starts the solver with incremental branch
	// queries off (ablation).
	DisableIncremental bool
	// Interrupt, when non-nil, is polled during SAT search (forwarded
	// to every sat.Solver instance via SetInterrupt): returning true
	// aborts the solve. Aborted queries answer conservatively (UNSAT /
	// no model) and are never cached, so an interrupt can wind a job
	// down early but can never poison answers of later queries. A hook
	// that never returns true leaves all answers unchanged.
	Interrupt func() bool
}

// Solver answers bitvector queries with memoization, model reuse and
// incremental branch queries. The zero value is not usable; call New
// or NewWith.
//
// A Solver is safe for concurrent use: the caches are mutex-guarded
// and the statistics counters are atomic, so parallel exploration
// workers may share one instance. One-shot queries each bit-blast on
// a private SAT instance and run in parallel; incremental branch
// queries serialize on the shared session.
type Solver struct {
	ar         *expr.Arena
	learntCap  int
	interrupt  func() bool
	mu         sync.Mutex
	cache      map[uint64]bool
	models     map[uint64]map[string]uint32
	recent     []map[string]uint32
	recentPos  int
	varsCache  map[uint64][]string
	cacheLimit int

	incremental atomic.Bool
	incMu       sync.Mutex
	inc         *incSession

	queries   atomic.Int64
	hits      atomic.Int64
	modelHits atomic.Int64
	evictions atomic.Int64
	extended  atomic.Int64
	rebuilt   atomic.Int64
}

// incSession is the incremental SAT context for one constraint
// prefix: b holds the CNF of every constraint in ids, asserted in
// order. A query whose (sliced, live) path constraints extend ids
// reuses the session; anything else rebuilds it.
type incSession struct {
	b   *blaster
	ids []uint64
}

// New returns a solver with the default configuration: default arena,
// cache bounded at DefaultCacheLimit entries, a DefaultRecentModels
// counterexample ring, and incremental branch queries enabled.
func New() *Solver { return NewWith(Config{}) }

// NewWith returns a solver configured by cfg.
func NewWith(cfg Config) *Solver {
	if cfg.Arena == nil {
		cfg.Arena = expr.Default()
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = DefaultCacheLimit
	}
	ring := cfg.RecentModels
	if ring == 0 {
		ring = DefaultRecentModels
	} else if ring < 0 {
		ring = 0
	}
	s := &Solver{
		ar:         cfg.Arena,
		learntCap:  cfg.LearntCap,
		interrupt:  cfg.Interrupt,
		cache:      map[uint64]bool{},
		models:     map[uint64]map[string]uint32{},
		recent:     make([]map[string]uint32, ring),
		varsCache:  map[uint64][]string{},
		cacheLimit: cfg.CacheLimit,
	}
	s.incremental.Store(!cfg.DisableIncremental)
	return s
}

// SetIncremental toggles incremental branch queries (MayBeTrue's
// shared SAT session). Answers are identical either way; the switch
// exists for the ablation benchmarks.
func (s *Solver) SetIncremental(on bool) { s.incremental.Store(on) }

// Incremental reports whether incremental branch queries are enabled.
func (s *Solver) Incremental() bool { return s.incremental.Load() }

// Stats returns the number of queries answered and the fingerprint
// cache hits among them. It is safe to call while queries are in
// flight.
func (s *Solver) Stats() (queries, cacheHits int64) {
	return s.queries.Load(), s.hits.Load()
}

// ModelHits returns how many queries were answered by re-evaluating a
// cached model instead of solving.
func (s *Solver) ModelHits() int64 { return s.modelHits.Load() }

// Sessions reports the incremental solver's session reuse: extended
// counts queries that kept the running SAT session (possibly
// asserting new suffix constraints), rebuilt counts queries that had
// to start a fresh session.
func (s *Solver) Sessions() (extended, rebuilt int64) {
	return s.extended.Load(), s.rebuilt.Load()
}

// CacheSize returns the current number of memoized queries.
func (s *Solver) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Evictions returns how many times the cache hit its limit and was
// flushed.
func (s *Solver) Evictions() int64 { return s.evictions.Load() }

// SetCacheLimit overrides the cache bound (entries); n <= 0 restores
// the default. The bound affects memory and hit rate only, never
// query answers.
func (s *Solver) SetCacheLimit(n int) {
	if n <= 0 {
		n = DefaultCacheLimit
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheLimit = n
	if len(s.cache) > n {
		s.flushLocked()
	}
}

// flushLocked drops one cache epoch: verdicts, models and the
// counterexample ring go together so they can never disagree.
func (s *Solver) flushLocked() {
	s.cache = map[uint64]bool{}
	s.models = map[uint64]map[string]uint32{}
	s.recent = make([]map[string]uint32, len(s.recent))
	s.recentPos = 0
	s.evictions.Add(1)
}

// RingSize reports the counterexample ring capacity.
func (s *Solver) RingSize() int { return len(s.recent) }

// cacheGet looks up a memoized query verdict.
func (s *Solver) cacheGet(fp uint64) (bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cache[fp]
	return r, ok
}

// cachePut memoizes a query verdict, flushing the epoch first if the
// cache is full.
func (s *Solver) cachePut(fp uint64, r bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cache) >= s.cacheLimit {
		s.flushLocked()
	}
	s.cache[fp] = r
}

// modelGet looks up a cached model for the exact constraint set.
func (s *Solver) modelGet(fp uint64) (map[string]uint32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[fp]
	return m, ok
}

// storeModel caches a freshly solved witness under the query
// fingerprint and pushes it onto the counterexample ring. The map is
// owned by the solver afterwards: callers receive copies.
func (s *Solver) storeModel(fp uint64, m map[string]uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.models) >= s.cacheLimit {
		s.flushLocked()
	}
	s.models[fp] = m
	if len(s.recent) > 0 {
		s.recent[s.recentPos%len(s.recent)] = m
		s.recentPos++
	}
}

// rememberModel caches a reused witness under a new fingerprint
// without touching the counterexample ring — the model is already in
// the ring, and re-pushing it would evict distinct witnesses until
// the ring held nothing but duplicates.
func (s *Solver) rememberModel(fp uint64, m map[string]uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.models) >= s.cacheLimit {
		s.flushLocked()
	}
	s.models[fp] = m
}

// tryRecent evaluates the constraints under the recently discovered
// models; a model satisfying all of them proves SAT without touching
// the SAT solver. Returns the witnessing model on success.
func (s *Solver) tryRecent(constraints []*expr.Expr) (map[string]uint32, bool) {
	// Snapshot the ring into a stack buffer: this runs on every query
	// that misses the verdict cache, and a heap copy per probe would
	// undo the zero-allocation property of the fingerprint path.
	// Oversized configured rings (rare) fall back to one allocation.
	var buf [4 * DefaultRecentModels]map[string]uint32
	ring := buf[:0]
	s.mu.Lock()
	ring = append(ring, s.recent...)
	s.mu.Unlock()
next:
	for _, m := range ring {
		if m == nil {
			continue
		}
		ev := expr.NewEvaluator(m)
		for _, c := range constraints {
			if ev.Eval(c) == 0 {
				continue next
			}
		}
		return m, true
	}
	return nil, false
}

// mix64 is the splitmix64 finalizer, used to spread interned IDs
// before the order-insensitive combine.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// fingerprint keys the caches on an order-insensitive hash of the
// constraints' interned IDs: equal constraint multisets hash equally
// regardless of order, with no allocation and no tree walk — the
// payoff of hash-consed expressions at this layer.
func fingerprint(constraints []*expr.Expr) uint64 {
	var sum, xor uint64
	for _, c := range constraints {
		h := mix64(c.ID())
		sum += h
		xor ^= bits.RotateLeft64(h, 17)
	}
	return mix64(sum ^ mix64(xor) ^ uint64(len(constraints)))
}

// liveConstraints strips constant-true constraints and reports
// whether a constant-false one makes the conjunction trivially UNSAT.
func liveConstraints(constraints []*expr.Expr) (live []*expr.Expr, unsat bool) {
	for _, c := range constraints {
		if c.IsFalse() {
			return nil, true
		}
		if !c.IsTrue() {
			live = append(live, c)
		}
	}
	return live, false
}

// Satisfiable reports whether the conjunction of the given width-1
// constraints has a model.
func (s *Solver) Satisfiable(constraints []*expr.Expr) bool {
	s.queries.Add(1)
	live, unsat := liveConstraints(constraints)
	if unsat {
		return false
	}
	if len(live) == 0 {
		return true
	}
	fp := fingerprint(live)
	if r, ok := s.cacheGet(fp); ok {
		s.hits.Add(1)
		return r
	}
	if m, ok := s.tryRecent(live); ok {
		s.modelHits.Add(1)
		s.cachePut(fp, true)
		s.rememberModel(fp, m)
		return true
	}
	b := s.newBlaster()
	for _, c := range live {
		out := b.blast(c)
		b.s.AddClause(out[0])
	}
	r := b.s.Solve()
	if b.s.Interrupted() {
		// Aborted: "unknown" answered as UNSAT, never cached.
		return false
	}
	if r {
		s.storeModel(fp, b.model())
	}
	s.cachePut(fp, r)
	return r
}

// varsOf returns the sorted variable names of e, memoized per
// interned expression ID — the repeated walks Slice used to pay on
// every query collapse to one walk per distinct constraint.
func (s *Solver) varsOf(e *expr.Expr) []string {
	id := e.ID()
	if id == 0 {
		return expr.VarNames(e)
	}
	s.mu.Lock()
	if v, ok := s.varsCache[id]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	names := expr.VarNames(e)
	s.mu.Lock()
	if len(s.varsCache) >= s.cacheLimit {
		s.varsCache = map[uint64][]string{}
	}
	s.varsCache[id] = names
	s.mu.Unlock()
	return names
}

// sliceVars is the constraint-independence fixed point shared by the
// exported Slice and the solver's cached variant.
func sliceVars(pc []*expr.Expr, vars [][]string, tvars []string) []*expr.Expr {
	if len(tvars) == 0 {
		return nil
	}
	want := make(map[string]bool, len(tvars))
	for _, v := range tvars {
		want[v] = true
	}
	used := make([]bool, len(pc))
	for changed := true; changed; {
		changed = false
		for i := range pc {
			if used[i] {
				continue
			}
			hit := false
			for _, v := range vars[i] {
				if want[v] {
					hit = true
					break
				}
			}
			if hit {
				used[i] = true
				changed = true
				for _, v := range vars[i] {
					want[v] = true
				}
			}
		}
	}
	var out []*expr.Expr
	for i, c := range pc {
		if used[i] {
			out = append(out, c)
		}
	}
	return out
}

// Slice returns the subset of constraints transitively sharing
// symbolic variables with target — KLEE's constraint-independence
// optimization. Because path conditions are built incrementally from
// feasible extensions, the discarded independent constraints are
// satisfiable on their own, so SAT(slice ∧ target) ⇔ SAT(pc ∧ target).
func Slice(pc []*expr.Expr, target *expr.Expr) []*expr.Expr {
	vars := make([][]string, len(pc))
	for i, c := range pc {
		vars[i] = expr.VarNames(c)
	}
	return sliceVars(pc, vars, expr.VarNames(target))
}

// slice is Slice with the per-constraint variable sets served from
// the ID-keyed cache.
func (s *Solver) slice(pc []*expr.Expr, target *expr.Expr) []*expr.Expr {
	tvars := s.varsOf(target)
	if len(tvars) == 0 {
		return nil
	}
	vars := make([][]string, len(pc))
	for i, c := range pc {
		vars[i] = s.varsOf(c)
	}
	return sliceVars(pc, vars, tvars)
}

// MayBeTrue reports whether cond can be true under the path
// constraints: SAT(pc ∧ cond). The path condition is sliced to the
// constraints relevant to cond first; with incremental solving
// enabled the sliced prefix is asserted into a shared SAT session and
// cond is decided under an assumption literal, so a branch's two
// queries (cond, ¬cond) and consecutive branches over the same
// variables share CNF and learnt clauses.
func (s *Solver) MayBeTrue(pc []*expr.Expr, cond *expr.Expr) bool {
	rel := s.slice(pc, cond)
	if !s.incremental.Load() {
		return s.Satisfiable(append(rel, cond))
	}
	s.queries.Add(1)
	prefix, unsat := liveConstraints(rel)
	if unsat || cond.IsFalse() {
		return false
	}
	full := prefix
	if !cond.IsTrue() {
		full = append(prefix[:len(prefix):len(prefix)], cond)
	}
	if len(full) == 0 {
		return true
	}
	fp := fingerprint(full)
	if r, ok := s.cacheGet(fp); ok {
		s.hits.Add(1)
		return r
	}
	if m, ok := s.tryRecent(full); ok {
		s.modelHits.Add(1)
		s.cachePut(fp, true)
		s.rememberModel(fp, m)
		return true
	}
	r, model, aborted := s.solveIncremental(prefix, cond)
	if aborted {
		return false
	}
	if r && model != nil {
		s.storeModel(fp, model)
	}
	s.cachePut(fp, r)
	return r
}

// solveIncremental decides SAT(prefix ∧ cond) on the shared session,
// returning the witnessing model on SAT. The session is kept when the
// prefix extends the asserted constraint sequence and rebuilt
// otherwise; concurrent callers serialize here, which is the
// documented trade-off of sharing a session. aborted reports that the
// solve was interrupted mid-search: the false verdict is then
// "unknown" and must not be cached.
func (s *Solver) solveIncremental(prefix []*expr.Expr, cond *expr.Expr) (r bool, model map[string]uint32, aborted bool) {
	s.incMu.Lock()
	defer s.incMu.Unlock()
	sess := s.inc
	if sess == nil || !prefixExtends(sess.ids, prefix) {
		sess = &incSession{b: s.newBlaster()}
		s.inc = sess
		s.rebuilt.Add(1)
	} else {
		s.extended.Add(1)
	}
	for _, c := range prefix[len(sess.ids):] {
		out := sess.b.blast(c)
		sess.b.s.AddClause(out[0])
		sess.ids = append(sess.ids, c.ID())
	}
	if sess.b.s.Unsat() {
		return false, nil, false
	}
	var ok bool
	if cond.IsTrue() {
		ok = sess.b.s.Solve()
	} else {
		lit := sess.b.blast(cond)[0]
		ok = sess.b.s.SolveUnder(lit)
	}
	if !ok {
		// An interrupted session stays structurally valid (the search
		// backtracked to level zero); only this answer is tainted.
		return false, nil, sess.b.s.Interrupted()
	}
	return true, sess.b.model(), false
}

// prefixExtends reports whether the asserted ID sequence is a prefix
// of the constraint list.
func prefixExtends(ids []uint64, prefix []*expr.Expr) bool {
	if len(ids) > len(prefix) {
		return false
	}
	for i, id := range ids {
		if prefix[i].ID() != id {
			return false
		}
	}
	return true
}

// MustBeTrue reports whether cond is implied by the path constraints:
// UNSAT(pc ∧ ¬cond).
func (s *Solver) MustBeTrue(pc []*expr.Expr, cond *expr.Expr) bool {
	return !s.MayBeTrue(pc, s.ar.Not(cond))
}

// Model returns a satisfying assignment for the constraints, or ok =
// false if they are unsatisfiable. Variables not mentioned in the
// constraints may be absent from the model (expr.Eval treats missing
// variables as zero); a reused cached witness can mention extra
// variables, which evaluation ignores. Models are cached beside the
// sat/unsat verdicts: re-asking for the model of a known constraint
// set costs a fingerprint probe.
func (s *Solver) Model(constraints []*expr.Expr) (map[string]uint32, bool) {
	s.queries.Add(1)
	live, unsat := liveConstraints(constraints)
	if unsat {
		return nil, false
	}
	if len(live) == 0 {
		return map[string]uint32{}, true
	}
	fp := fingerprint(live)
	if m, ok := s.modelGet(fp); ok {
		s.modelHits.Add(1)
		return copyModel(m), true
	}
	if r, ok := s.cacheGet(fp); ok && !r {
		s.hits.Add(1)
		return nil, false
	}
	if m, ok := s.tryRecent(live); ok {
		s.modelHits.Add(1)
		s.cachePut(fp, true)
		s.rememberModel(fp, m)
		return copyModel(m), true
	}
	b := s.newBlaster()
	for _, c := range live {
		out := b.blast(c)
		b.s.AddClause(out[0])
	}
	if !b.s.Solve() {
		if !b.s.Interrupted() {
			s.cachePut(fp, false)
		}
		return nil, false
	}
	s.cachePut(fp, true)
	model := b.model()
	s.storeModel(fp, model)
	return copyModel(model), true
}

func copyModel(m map[string]uint32) map[string]uint32 {
	out := make(map[string]uint32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Concretize returns a concrete value e can take under the path
// constraints, plus ok=false if the constraints are unsatisfiable.
// This implements the address/value concretization RevNIC applies to
// symbolic memory addresses and to OS-visible values.
func (s *Solver) Concretize(pc []*expr.Expr, e *expr.Expr) (uint32, bool) {
	if v, ok := e.IsConst(); ok {
		return v, true
	}
	// Only the constraints touching e's variables can restrict its
	// value; independent ones are satisfiable separately.
	model, ok := s.Model(s.slice(pc, e))
	if !ok {
		return 0, false
	}
	return expr.Eval(e, model), true
}

// Values enumerates up to max distinct concrete values e can take
// under the path constraints, in the order the solver discovers them.
// This implements the jump-table enumeration of §3.4: "Since there
// are typically only a few concrete values, RevNIC generates all of
// them and forks the execution for each such value."
func (s *Solver) Values(pc []*expr.Expr, e *expr.Expr, max int) []uint32 {
	if v, ok := e.IsConst(); ok {
		return []uint32{v}
	}
	var out []uint32
	cons := s.slice(pc, e)
	for len(out) < max {
		model, ok := s.Model(cons)
		if !ok {
			break
		}
		v := expr.Eval(e, model)
		out = append(out, v)
		cons = append(cons, s.ar.Not(s.ar.Eq(e, s.ar.C(v, e.Width))))
	}
	return out
}

// blaster converts expression DAGs to CNF over a SAT instance. Bit i
// of a value is lits[i] (LSB first). The memo keys on interned
// expression IDs, so a blaster living across queries (the incremental
// session) translates each distinct sub-expression once.
type blaster struct {
	s     *sat.Solver
	memo  map[uint64][]sat.Lit
	syms  map[string][]sat.Lit
	true_ sat.Lit
}

func newBlaster() *blaster {
	b := &blaster{
		s:    sat.New(),
		memo: map[uint64][]sat.Lit{},
		syms: map[string][]sat.Lit{},
	}
	v := b.s.NewVar()
	b.true_ = sat.Pos(v)
	b.s.AddClause(b.true_)
	return b
}

// newBlaster builds a blaster configured per the solver (learnt-clause
// cap and interrupt hook forwarded to the SAT instance).
func (s *Solver) newBlaster() *blaster {
	b := newBlaster()
	if s.learntCap != 0 {
		b.s.SetLearntCap(s.learntCap)
	}
	if s.interrupt != nil {
		b.s.SetInterrupt(s.interrupt)
	}
	return b
}

// model reads the satisfying assignment for every symbol the blaster
// has translated. Valid only directly after a successful Solve or
// SolveUnder on b.s.
func (b *blaster) model() map[string]uint32 {
	model := make(map[string]uint32, len(b.syms))
	for name, bits := range b.syms {
		var v uint32
		for i, lit := range bits {
			if b.s.Value(lit.Var()) != lit.Sign() {
				v |= 1 << i
			}
		}
		model[name] = v
	}
	return model
}

func (b *blaster) constLit(v bool) sat.Lit {
	if v {
		return b.true_
	}
	return b.true_.Not()
}

func (b *blaster) isConst(l sat.Lit) (bool, bool) {
	if l == b.true_ {
		return true, true
	}
	if l == b.true_.Not() {
		return false, true
	}
	return false, false
}

func (b *blaster) fresh() sat.Lit { return sat.Pos(b.s.NewVar()) }

// gateAnd returns a literal equivalent to x ∧ y.
func (b *blaster) gateAnd(x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(x); ok {
		if !v {
			return b.constLit(false)
		}
		return y
	}
	if v, ok := b.isConst(y); ok {
		if !v {
			return b.constLit(false)
		}
		return x
	}
	if x == y {
		return x
	}
	if x == y.Not() {
		return b.constLit(false)
	}
	out := b.fresh()
	b.s.AddClause(out.Not(), x)
	b.s.AddClause(out.Not(), y)
	b.s.AddClause(out, x.Not(), y.Not())
	return out
}

func (b *blaster) gateOr(x, y sat.Lit) sat.Lit {
	return b.gateAnd(x.Not(), y.Not()).Not()
}

func (b *blaster) gateXor(x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(x); ok {
		if v {
			return y.Not()
		}
		return y
	}
	if v, ok := b.isConst(y); ok {
		if v {
			return x.Not()
		}
		return x
	}
	if x == y {
		return b.constLit(false)
	}
	if x == y.Not() {
		return b.constLit(true)
	}
	out := b.fresh()
	b.s.AddClause(out.Not(), x, y)
	b.s.AddClause(out.Not(), x.Not(), y.Not())
	b.s.AddClause(out, x.Not(), y)
	b.s.AddClause(out, x, y.Not())
	return out
}

// gateMux returns c ? x : y.
func (b *blaster) gateMux(c, x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(c); ok {
		if v {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	out := b.fresh()
	b.s.AddClause(c.Not(), x.Not(), out)
	b.s.AddClause(c.Not(), x, out.Not())
	b.s.AddClause(c, y.Not(), out)
	b.s.AddClause(c, y, out.Not())
	return out
}

// fullAdder returns (sum, carryOut) for x + y + cin.
func (b *blaster) fullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.gateXor(b.gateXor(x, y), cin)
	cout = b.gateOr(b.gateAnd(x, y), b.gateAnd(cin, b.gateXor(x, y)))
	return sum, cout
}

func (b *blaster) adder(x, y []sat.Lit, cin sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) negBits(x []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i, l := range x {
		out[i] = l.Not()
	}
	return out
}

// ult returns the borrow chain result of a - b: true iff a < b
// unsigned.
func (b *blaster) ult(x, y []sat.Lit) sat.Lit {
	borrow := b.constLit(false)
	for i := range x {
		// borrow' = (~x & y) | ((~x | y) & borrow)
		nx := x[i].Not()
		borrow = b.gateOr(b.gateAnd(nx, y[i]), b.gateAnd(b.gateOr(nx, y[i]), borrow))
	}
	return borrow
}

func (b *blaster) shiftConst(x []sat.Lit, k int, kind expr.Kind) []sat.Lit {
	w := len(x)
	out := make([]sat.Lit, w)
	for i := range out {
		switch kind {
		case expr.KShl:
			if i-k >= 0 {
				out[i] = x[i-k]
			} else {
				out[i] = b.constLit(false)
			}
		case expr.KLshr:
			if i+k < w {
				out[i] = x[i+k]
			} else {
				out[i] = b.constLit(false)
			}
		case expr.KAshr:
			if i+k < w {
				out[i] = x[i+k]
			} else {
				out[i] = x[w-1]
			}
		}
	}
	return out
}

// blast returns the bit literals of e, LSB first.
func (b *blaster) blast(e *expr.Expr) []sat.Lit {
	if bits, ok := b.memo[e.ID()]; ok {
		return bits
	}
	bits := b.blastUncached(e)
	if len(bits) != int(e.Width) {
		panic("solver: width mismatch in blasting")
	}
	b.memo[e.ID()] = bits
	return bits
}

func (b *blaster) blastUncached(e *expr.Expr) []sat.Lit {
	w := int(e.Width)
	switch e.Kind {
	case expr.KConst:
		out := make([]sat.Lit, w)
		for i := range out {
			out[i] = b.constLit(e.Val>>i&1 == 1)
		}
		return out
	case expr.KSym:
		if bits, ok := b.syms[e.Name]; ok {
			if len(bits) != w {
				panic("solver: symbol " + e.Name + " used at two widths")
			}
			return bits
		}
		bits := make([]sat.Lit, w)
		for i := range bits {
			bits[i] = b.fresh()
		}
		b.syms[e.Name] = bits
		return bits
	case expr.KAdd:
		return b.adder(b.blast(e.A), b.blast(e.B), b.constLit(false))
	case expr.KSub:
		return b.adder(b.blast(e.A), b.negBits(b.blast(e.B)), b.constLit(true))
	case expr.KMul:
		x, y := b.blast(e.A), b.blast(e.B)
		acc := make([]sat.Lit, w)
		for i := range acc {
			acc[i] = b.constLit(false)
		}
		for i := 0; i < w; i++ {
			// Partial product: (x << i) masked by y[i].
			pp := make([]sat.Lit, w)
			for j := range pp {
				if j < i {
					pp[j] = b.constLit(false)
				} else {
					pp[j] = b.gateAnd(x[j-i], y[i])
				}
			}
			acc = b.adder(acc, pp, b.constLit(false))
		}
		return acc
	case expr.KAnd, expr.KOr, expr.KXor:
		x, y := b.blast(e.A), b.blast(e.B)
		out := make([]sat.Lit, w)
		for i := range out {
			switch e.Kind {
			case expr.KAnd:
				out[i] = b.gateAnd(x[i], y[i])
			case expr.KOr:
				out[i] = b.gateOr(x[i], y[i])
			case expr.KXor:
				out[i] = b.gateXor(x[i], y[i])
			}
		}
		return out
	case expr.KShl, expr.KLshr, expr.KAshr:
		x := b.blast(e.A)
		if k, ok := e.B.IsConst(); ok {
			return b.shiftConst(x, int(k%32), e.Kind)
		}
		// Barrel shifter over the low 5 bits of the amount (shifts
		// are defined mod 32, matching expr.Eval and the VM).
		amt := b.blast(e.B)
		cur := x
		for stage := 0; stage < 5 && 1<<stage < 32; stage++ {
			if stage >= len(amt) {
				break
			}
			shifted := b.shiftConst(cur, 1<<stage, e.Kind)
			next := make([]sat.Lit, w)
			for i := range next {
				next[i] = b.gateMux(amt[stage], shifted[i], cur[i])
			}
			cur = next
		}
		return cur
	case expr.KEq:
		x, y := b.blast(e.A), b.blast(e.B)
		acc := b.constLit(true)
		for i := range x {
			acc = b.gateAnd(acc, b.gateXor(x[i], y[i]).Not())
		}
		return []sat.Lit{acc}
	case expr.KUlt:
		return []sat.Lit{b.ult(b.blast(e.A), b.blast(e.B))}
	case expr.KSlt:
		// Flip sign bits and compare unsigned.
		x := append([]sat.Lit{}, b.blast(e.A)...)
		y := append([]sat.Lit{}, b.blast(e.B)...)
		x[len(x)-1] = x[len(x)-1].Not()
		y[len(y)-1] = y[len(y)-1].Not()
		return []sat.Lit{b.ult(x, y)}
	case expr.KNot:
		return b.negBits(b.blast(e.A))
	case expr.KZext:
		x := b.blast(e.A)
		out := make([]sat.Lit, w)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = b.constLit(false)
			}
		}
		return out
	case expr.KTrunc:
		return b.blast(e.A)[:w:w]
	case expr.KConcat:
		lo := b.blast(e.B)
		hi := b.blast(e.A)
		out := make([]sat.Lit, 0, w)
		out = append(out, lo...)
		out = append(out, hi...)
		return out
	case expr.KIte:
		c := b.blast(e.A)[0]
		x, y := b.blast(e.B), b.blast(e.C)
		out := make([]sat.Lit, w)
		for i := range out {
			out[i] = b.gateMux(c, x[i], y[i])
		}
		return out
	}
	panic("solver: cannot blast kind")
}
