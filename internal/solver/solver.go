// Package solver decides satisfiability of conjunctions of symbolic
// bitvector constraints (package expr). It is layered:
//
//   - a backend-agnostic front end (this file) owning everything
//     query-shaped: fingerprint-keyed verdict/model caches, the
//     per-variable-set counterexample index, constraint-independence
//     slicing, easy/hard routing, and incremental sessions;
//   - the Backend seam (backend.go): a minimal Assert / Push / Pop /
//     SolveUnder / Model / SetInterrupt contract any decision
//     procedure can implement;
//   - backends: the native core (bit-blasting to CNF over the CDCL
//     SAT core, blast.go + package sat), an exhaustive small-domain
//     evaluator (smalldomain.go), and a portfolio that races them on
//     hard queries (portfolio.go).
//
// It fills the role STP fills for KLEE in the original RevNIC: the
// symbolic execution engine asks, at every branch that depends on
// symbolic input, whether each outcome is feasible under the current
// path constraints, and requests concrete models when it needs to
// concretize (e.g., for symbolic memory addresses, §3.4 of the paper).
//
// The query path is built on interned expression IDs (expr.ID):
//
//   - the sat/unsat cache and the model cache key on an
//     order-insensitive uint64 hash of the constraint IDs, so a cache
//     probe allocates nothing;
//   - the counterexample index (cache.go) answers subsumed queries
//     job-wide: weaker queries by re-evaluating indexed models,
//     stronger queries by UNSAT-set subsumption;
//   - branch-feasibility queries (MayBeTrue) run incrementally: the
//     solver keeps one backend session whose assertion stack mirrors
//     the sliced constraint prefix through Push/Pop scopes, so
//     sibling states after a fork share the asserted prefix instead
//     of rebuilding it, and each condition is decided under an
//     assumption (SolveUnder).
//
// Determinism contract: query answers and every cache side effect are
// bit-identical run-to-run for the default and portfolio backends.
// Raced verdicts are objective (SAT/UNSAT, whoever answers first);
// raced models would not be, so hard queries are verdict-only — their
// models are never read and never cached, in every mode, which is
// what keeps portfolio-on and portfolio-off runs byte-identical.
package solver

import (
	"sync"
	"sync/atomic"

	"revnic/internal/expr"
)

// Result is the outcome of a satisfiability query.
type Result int

// Query outcomes.
const (
	Unsat Result = iota
	Sat
)

// DefaultCacheLimit bounds the query cache. When an exploration
// would grow the cache past the limit the cache (and the model cache
// beside it) is reset — an epoch flush — so long runs hold at most
// one epoch of memoized queries; Evictions reports how often that
// happened.
const DefaultCacheLimit = 1 << 16

// DefaultRecentModels is the default counterexample-index capacity:
// models kept per variable-set bucket, and the size of the global
// recency list probed as a fallback.
const DefaultRecentModels = 4

// Config parameterizes a solver. The zero value selects the defaults
// New uses.
type Config struct {
	// Arena is the expression arena the solver builds derived
	// expressions in (negations for MustBeTrue, exclusion constraints
	// for Values). nil selects the process-global default arena; a
	// job-scoped solver must pass the job's arena so its expressions
	// die with the job.
	Arena *expr.Arena
	// Backend selects the decision backend by registry name
	// (BackendCore, BackendSmallDomain, BackendPortfolio, or anything
	// registered via RegisterBackend). Empty selects the core. NewWith
	// panics on an unknown name — callers validate user input with
	// ValidBackend first.
	Backend string
	// CacheLimit bounds the query/model caches; 0 selects
	// DefaultCacheLimit.
	CacheLimit int
	// RecentModels sizes the counterexample index (models kept per
	// variable-set bucket and in the recency list). 0 selects
	// DefaultRecentModels; negative disables model reuse across
	// queries entirely. The size affects performance only, never
	// query answers.
	RecentModels int
	// LearntCap is forwarded to every SAT instance the solver
	// creates (sat.Solver.SetLearntCap): 0 keeps the SAT default,
	// negative disables learnt-clause deletion.
	LearntCap int
	// HardVars and HardNodes tune the easy/hard routing heuristic: a
	// cache-missing query is hard when distinct vars > HardVars or
	// total DAG nodes > HardNodes. 0 selects the defaults; negative
	// means "never hard" (disables racing even under the portfolio
	// backend). Routing is a pure function of the query, so it never
	// affects determinism — only which queries get raced and
	// verdict-only caching.
	HardVars  int
	HardNodes int
	// DisableIncremental starts the solver with incremental branch
	// queries off (ablation).
	DisableIncremental bool
	// Interrupt, when non-nil, is polled during solving (forwarded to
	// every backend via SetInterrupt): returning true aborts the
	// solve. Aborted queries answer conservatively (UNSAT / no model)
	// and are never cached, so an interrupt can wind a job down early
	// but can never poison answers of later queries. A hook that
	// never returns true leaves all answers unchanged.
	Interrupt func() bool
}

// Solver answers bitvector queries with memoization, counterexample
// reuse and incremental branch queries. The zero value is not usable;
// call New or NewWith.
//
// A Solver is safe for concurrent use: the caches are mutex-guarded
// and the statistics counters are atomic, so parallel exploration
// workers may share one instance. One-shot queries each run on a
// private backend instance and proceed in parallel; incremental
// branch queries serialize on the shared session.
type Solver struct {
	ar        *expr.Arena
	backend   string
	learntCap int
	hardVars  int
	hardNodes int
	interrupt func() bool

	mu         sync.Mutex
	cache      map[uint64]bool
	models     map[uint64]map[string]uint32
	cx         *cxIndex
	cacheLimit int

	incremental atomic.Bool
	incMu       sync.Mutex
	inc         *session

	queries   atomic.Int64
	hits      atomic.Int64
	modelHits atomic.Int64
	evictions atomic.Int64
	extended  atomic.Int64
	rebuilt   atomic.Int64
}

// session is the incremental backend context for one constraint
// prefix: the backend's assertion stack holds one Push scope per
// constraint in ids, asserted in order. A query synchronizes the
// stack with its own prefix by popping back to the longest common
// prefix and pushing the new suffix — sibling states after a fork
// share everything up to the fork point instead of rebuilding.
type session struct {
	b Backend
	// racer is b's racing extension, if it has one (portfolio).
	racer Racer
	ids   []uint64
	// pops counts scopes retired since the session was built; each
	// pop leaves a dead selector variable behind in a SAT-backed
	// session, so past a threshold the session is rebuilt fresh. The
	// trigger is count-based and therefore deterministic.
	pops int
}

// sessionPopGC is the pop count after which a session is rebuilt.
const sessionPopGC = 4096

// New returns a solver with the default configuration: default arena,
// core backend, cache bounded at DefaultCacheLimit entries, a
// DefaultRecentModels-sized counterexample index, and incremental
// branch queries enabled.
func New() *Solver { return NewWith(Config{}) }

// NewWith returns a solver configured by cfg.
func NewWith(cfg Config) *Solver {
	if cfg.Arena == nil {
		cfg.Arena = expr.Default()
	}
	if cfg.Backend == "" {
		cfg.Backend = BackendCore
	}
	if _, ok := backendFactory(cfg.Backend); !ok {
		panic("solver: unknown backend " + cfg.Backend)
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = DefaultCacheLimit
	}
	ring := cfg.RecentModels
	if ring == 0 {
		ring = DefaultRecentModels
	} else if ring < 0 {
		ring = 0
	}
	hv, hn := cfg.HardVars, cfg.HardNodes
	if hv == 0 {
		hv = DefaultHardVars
	}
	if hn == 0 {
		hn = DefaultHardNodes
	}
	s := &Solver{
		ar:         cfg.Arena,
		backend:    cfg.Backend,
		learntCap:  cfg.LearntCap,
		hardVars:   hv,
		hardNodes:  hn,
		interrupt:  cfg.Interrupt,
		cache:      map[uint64]bool{},
		models:     map[uint64]map[string]uint32{},
		cx:         newCxIndex(ring),
		cacheLimit: cfg.CacheLimit,
	}
	s.incremental.Store(!cfg.DisableIncremental)
	return s
}

// Backend reports the configured backend name.
func (s *Solver) Backend() string { return s.backend }

// newBackend builds a fresh instance of the configured backend.
func (s *Solver) newBackend() Backend {
	f, _ := backendFactory(s.backend)
	return f(BackendOpts{
		LearntCap: s.learntCap,
		Interrupt: s.interrupt,
		HardVars:  s.hardVars,
		HardNodes: s.hardNodes,
	})
}

// newOneShot builds the backend used for one-shot (non-session)
// queries. Under the portfolio this is the primary core alone:
// one-shots exist to produce models (Model, Concretize, Values), and
// raced models are nondeterministic, so one-shots are never raced.
func (s *Solver) newOneShot() Backend {
	name := s.backend
	if name == BackendPortfolio {
		name = BackendCore
	}
	f, _ := backendFactory(name)
	return f(BackendOpts{LearntCap: s.learntCap, Interrupt: s.interrupt})
}

// isHard applies the routing heuristic to a query's stats.
func (s *Solver) isHard(nvars, nodes int) bool {
	if s.hardVars < 0 && s.hardNodes < 0 {
		return false
	}
	return (s.hardVars > 0 && nvars > s.hardVars) ||
		(s.hardNodes > 0 && nodes > s.hardNodes)
}

// SetIncremental toggles incremental branch queries (MayBeTrue's
// shared backend session). Answers are identical either way; the
// switch exists for the ablation benchmarks.
func (s *Solver) SetIncremental(on bool) { s.incremental.Store(on) }

// Incremental reports whether incremental branch queries are enabled.
func (s *Solver) Incremental() bool { return s.incremental.Load() }

// Stats returns the number of queries answered and the fingerprint
// cache hits among them. It is safe to call while queries are in
// flight.
func (s *Solver) Stats() (queries, cacheHits int64) {
	return s.queries.Load(), s.hits.Load()
}

// ModelHits returns how many queries were answered by the
// counterexample machinery instead of solving: exact model-cache
// hits, indexed-model re-evaluation, and UNSAT-set subsumption.
func (s *Solver) ModelHits() int64 { return s.modelHits.Load() }

// Sessions reports the incremental solver's session reuse: extended
// counts queries served by the running backend session (synchronized
// via push/pop, possibly asserting new suffix constraints), rebuilt
// counts queries that had to start a fresh session.
func (s *Solver) Sessions() (extended, rebuilt int64) {
	return s.extended.Load(), s.rebuilt.Load()
}

// CacheSize returns the current number of memoized queries.
func (s *Solver) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Evictions returns how many times the cache hit its limit and was
// flushed.
func (s *Solver) Evictions() int64 { return s.evictions.Load() }

// SetCacheLimit overrides the cache bound (entries); n <= 0 restores
// the default. The bound affects memory and hit rate only, never
// query answers.
func (s *Solver) SetCacheLimit(n int) {
	if n <= 0 {
		n = DefaultCacheLimit
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheLimit = n
	if len(s.cache) > n {
		s.flushLocked()
	}
}

// RingSize reports the counterexample index capacity (models kept per
// variable-set bucket; also the recency-list length). The name is
// historical — the index replaced a single recency ring.
func (s *Solver) RingSize() int { return s.cx.cap }

// Satisfiable reports whether the conjunction of the given width-1
// constraints has a model.
func (s *Solver) Satisfiable(constraints []*expr.Expr) bool {
	s.queries.Add(1)
	live, unsat := liveConstraints(constraints)
	if unsat {
		return false
	}
	if len(live) == 0 {
		return true
	}
	fp := fingerprint(live)
	if r, ok := s.cacheGet(fp); ok {
		s.hits.Add(1)
		return r
	}
	sig, _, _ := queryStats(live)
	if m, ok := s.trySat(sig, live); ok {
		s.modelHits.Add(1)
		s.cachePut(fp, true)
		s.rememberModel(fp, m)
		return true
	}
	if s.tryUnsat(live) {
		s.modelHits.Add(1)
		s.cachePut(fp, false)
		return false
	}
	b := s.newOneShot()
	for _, c := range live {
		b.Assert(c)
	}
	switch b.SolveUnder(nil) {
	case VSat:
		s.storeModel(fp, sig, b.Model())
		s.cachePut(fp, true)
		return true
	case VUnsat:
		s.storeUnsat(live)
		s.cachePut(fp, false)
		return false
	default:
		// Aborted or out of the backend's domain: "unknown" answered
		// as UNSAT, never cached.
		return false
	}
}

// MayBeTrue reports whether cond can be true under the path
// constraints: SAT(pc ∧ cond). The path condition is sliced to the
// constraints relevant to cond first; with incremental solving
// enabled the sliced prefix lives on a shared backend session —
// synchronized by push/pop so sibling states after a fork share the
// common prefix — and cond is decided under an assumption
// (SolveUnder), so a branch's two queries (cond, ¬cond) and
// consecutive branches over the same variables share translation
// work and learnt clauses.
//
// Hard queries (see Config.HardVars/HardNodes) are verdict-only: the
// portfolio races its backends on them, and because raced models are
// nondeterministic, hard results never feed the model caches — under
// any backend, so cache contents stay bit-identical across modes.
func (s *Solver) MayBeTrue(pc []*expr.Expr, cond *expr.Expr) bool {
	rel := Slice(pc, cond)
	if !s.incremental.Load() {
		return s.Satisfiable(append(rel, cond))
	}
	s.queries.Add(1)
	prefix, unsat := liveConstraints(rel)
	if unsat || cond.IsFalse() {
		return false
	}
	full := prefix
	if !cond.IsTrue() {
		full = append(prefix[:len(prefix):len(prefix)], cond)
	}
	if len(full) == 0 {
		return true
	}
	fp := fingerprint(full)
	if r, ok := s.cacheGet(fp); ok {
		s.hits.Add(1)
		return r
	}
	sig, nvars, nodes := queryStats(full)
	if m, ok := s.trySat(sig, full); ok {
		s.modelHits.Add(1)
		s.cachePut(fp, true)
		s.rememberModel(fp, m)
		return true
	}
	if s.tryUnsat(full) {
		s.modelHits.Add(1)
		s.cachePut(fp, false)
		return false
	}
	hard := s.isHard(nvars, nodes)
	var q *expr.Expr
	if !cond.IsTrue() {
		q = cond
	}
	v, model := s.solveSession(prefix, q, hard)
	switch v {
	case VSat:
		if model != nil {
			s.storeModel(fp, sig, model)
		}
		s.cachePut(fp, true)
		return true
	case VUnsat:
		if !hard {
			s.storeUnsat(full)
		}
		s.cachePut(fp, false)
		return false
	default:
		// Aborted: never cached.
		return false
	}
}

// solveSession decides SAT(prefix ∧ cond) on the shared session. The
// session's scoped assertion stack is synchronized with the prefix:
// pop back to the longest common prefix, push and assert the suffix.
// After a fork, the two children differ only in their last
// constraint, so the whole shared prefix — its CNF and its learnt
// clauses — is reused instead of rebuilt (the pre-push/pop design
// rebuilt on any mismatch). Hard queries go through the racing
// extension when the backend has one, and their models are never
// read (see MayBeTrue).
func (s *Solver) solveSession(prefix []*expr.Expr, cond *expr.Expr, hard bool) (Verdict, map[string]uint32) {
	s.incMu.Lock()
	defer s.incMu.Unlock()
	sess := s.inc
	if sess == nil || sess.pops >= sessionPopGC {
		sess = &session{b: s.newBackend()}
		sess.racer, _ = sess.b.(Racer)
		s.inc = sess
		s.rebuilt.Add(1)
	} else {
		s.extended.Add(1)
	}
	common := 0
	for common < len(sess.ids) && common < len(prefix) &&
		sess.ids[common] == prefix[common].ID() {
		common++
	}
	for n := len(sess.ids); n > common; n-- {
		sess.b.Pop()
		sess.pops++
	}
	sess.ids = sess.ids[:common]
	for _, c := range prefix[common:] {
		sess.b.Push()
		sess.b.Assert(c)
		sess.ids = append(sess.ids, c.ID())
	}
	var v Verdict
	if hard && sess.racer != nil {
		v = sess.racer.SolveRaced(cond)
	} else {
		v = sess.b.SolveUnder(cond)
	}
	if v == VSat && !hard {
		return v, sess.b.Model()
	}
	return v, nil
}

// MustBeTrue reports whether cond is implied by the path constraints:
// UNSAT(pc ∧ ¬cond).
func (s *Solver) MustBeTrue(pc []*expr.Expr, cond *expr.Expr) bool {
	return !s.MayBeTrue(pc, s.ar.Not(cond))
}

// Model returns a satisfying assignment for the constraints, or ok =
// false if they are unsatisfiable. Variables not mentioned in the
// constraints may be absent from the model (expr.Eval treats missing
// variables as zero); a reused cached witness can mention extra
// variables, which evaluation ignores. Models are cached beside the
// sat/unsat verdicts: re-asking for the model of a known constraint
// set costs a fingerprint probe. Model queries always run on the
// primary backend, never raced, so the returned witness is
// deterministic.
func (s *Solver) Model(constraints []*expr.Expr) (map[string]uint32, bool) {
	s.queries.Add(1)
	live, unsat := liveConstraints(constraints)
	if unsat {
		return nil, false
	}
	if len(live) == 0 {
		return map[string]uint32{}, true
	}
	fp := fingerprint(live)
	if m, ok := s.modelGet(fp); ok {
		s.modelHits.Add(1)
		return copyModel(m), true
	}
	if r, ok := s.cacheGet(fp); ok && !r {
		s.hits.Add(1)
		return nil, false
	}
	sig, _, _ := queryStats(live)
	if m, ok := s.trySat(sig, live); ok {
		s.modelHits.Add(1)
		s.cachePut(fp, true)
		s.rememberModel(fp, m)
		return copyModel(m), true
	}
	if s.tryUnsat(live) {
		s.modelHits.Add(1)
		s.cachePut(fp, false)
		return nil, false
	}
	b := s.newOneShot()
	for _, c := range live {
		b.Assert(c)
	}
	switch b.SolveUnder(nil) {
	case VSat:
		model := b.Model()
		s.cachePut(fp, true)
		s.storeModel(fp, sig, model)
		return copyModel(model), true
	case VUnsat:
		s.cachePut(fp, false)
		s.storeUnsat(live)
		return nil, false
	default:
		return nil, false
	}
}

func copyModel(m map[string]uint32) map[string]uint32 {
	out := make(map[string]uint32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Concretize returns a concrete value e can take under the path
// constraints, plus ok=false if the constraints are unsatisfiable.
// This implements the address/value concretization RevNIC applies to
// symbolic memory addresses and to OS-visible values.
func (s *Solver) Concretize(pc []*expr.Expr, e *expr.Expr) (uint32, bool) {
	if v, ok := e.IsConst(); ok {
		return v, true
	}
	// Only the constraints touching e's variables can restrict its
	// value; independent ones are satisfiable separately.
	model, ok := s.Model(Slice(pc, e))
	if !ok {
		return 0, false
	}
	return expr.Eval(e, model), true
}

// Values enumerates up to max distinct concrete values e can take
// under the path constraints, in the order the solver discovers them.
// This implements the jump-table enumeration of §3.4: "Since there
// are typically only a few concrete values, RevNIC generates all of
// them and forks the execution for each such value."
func (s *Solver) Values(pc []*expr.Expr, e *expr.Expr, max int) []uint32 {
	if v, ok := e.IsConst(); ok {
		return []uint32{v}
	}
	var out []uint32
	cons := Slice(pc, e)
	for len(out) < max {
		model, ok := s.Model(cons)
		if !ok {
			break
		}
		v := expr.Eval(e, model)
		out = append(out, v)
		cons = append(cons, s.ar.Not(s.ar.Eq(e, s.ar.C(v, e.Width))))
	}
	return out
}
