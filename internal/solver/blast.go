// The bit-blaster: expression DAGs to CNF over a SAT instance.
// Split out of solver.go when the Backend seam was introduced; the
// blaster plus package sat form the "core" backend (backend.go).
package solver

import (
	"revnic/internal/expr"
	"revnic/internal/sat"
)

// blaster converts expression DAGs to CNF over a SAT instance. Bit i
// of a value is lits[i] (LSB first). The memo keys on interned
// expression IDs, so a blaster living across queries (the incremental
// session) translates each distinct sub-expression once.
type blaster struct {
	s     *sat.Solver
	memo  map[uint64][]sat.Lit
	syms  map[string][]sat.Lit
	true_ sat.Lit
}

func newBlaster() *blaster {
	b := &blaster{
		s:    sat.New(),
		memo: map[uint64][]sat.Lit{},
		syms: map[string][]sat.Lit{},
	}
	v := b.s.NewVar()
	b.true_ = sat.Pos(v)
	b.s.AddClause(b.true_)
	return b
}

// model reads the satisfying assignment for every symbol the blaster
// has translated. Valid only directly after a successful Solve or
// SolveUnder on b.s.
func (b *blaster) model() map[string]uint32 {
	model := make(map[string]uint32, len(b.syms))
	for name, bits := range b.syms {
		var v uint32
		for i, lit := range bits {
			if b.s.Value(lit.Var()) != lit.Sign() {
				v |= 1 << i
			}
		}
		model[name] = v
	}
	return model
}

func (b *blaster) constLit(v bool) sat.Lit {
	if v {
		return b.true_
	}
	return b.true_.Not()
}

func (b *blaster) isConst(l sat.Lit) (bool, bool) {
	if l == b.true_ {
		return true, true
	}
	if l == b.true_.Not() {
		return false, true
	}
	return false, false
}

func (b *blaster) fresh() sat.Lit { return sat.Pos(b.s.NewVar()) }

// gateAnd returns a literal equivalent to x ∧ y.
func (b *blaster) gateAnd(x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(x); ok {
		if !v {
			return b.constLit(false)
		}
		return y
	}
	if v, ok := b.isConst(y); ok {
		if !v {
			return b.constLit(false)
		}
		return x
	}
	if x == y {
		return x
	}
	if x == y.Not() {
		return b.constLit(false)
	}
	out := b.fresh()
	b.s.AddClause(out.Not(), x)
	b.s.AddClause(out.Not(), y)
	b.s.AddClause(out, x.Not(), y.Not())
	return out
}

func (b *blaster) gateOr(x, y sat.Lit) sat.Lit {
	return b.gateAnd(x.Not(), y.Not()).Not()
}

func (b *blaster) gateXor(x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(x); ok {
		if v {
			return y.Not()
		}
		return y
	}
	if v, ok := b.isConst(y); ok {
		if v {
			return x.Not()
		}
		return x
	}
	if x == y {
		return b.constLit(false)
	}
	if x == y.Not() {
		return b.constLit(true)
	}
	out := b.fresh()
	b.s.AddClause(out.Not(), x, y)
	b.s.AddClause(out.Not(), x.Not(), y.Not())
	b.s.AddClause(out, x.Not(), y)
	b.s.AddClause(out, x, y.Not())
	return out
}

// gateMux returns c ? x : y.
func (b *blaster) gateMux(c, x, y sat.Lit) sat.Lit {
	if v, ok := b.isConst(c); ok {
		if v {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	out := b.fresh()
	b.s.AddClause(c.Not(), x.Not(), out)
	b.s.AddClause(c.Not(), x, out.Not())
	b.s.AddClause(c, y.Not(), out)
	b.s.AddClause(c, y, out.Not())
	return out
}

// fullAdder returns (sum, carryOut) for x + y + cin.
func (b *blaster) fullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.gateXor(b.gateXor(x, y), cin)
	cout = b.gateOr(b.gateAnd(x, y), b.gateAnd(cin, b.gateXor(x, y)))
	return sum, cout
}

func (b *blaster) adder(x, y []sat.Lit, cin sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) negBits(x []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i, l := range x {
		out[i] = l.Not()
	}
	return out
}

// ult returns the borrow chain result of a - b: true iff a < b
// unsigned.
func (b *blaster) ult(x, y []sat.Lit) sat.Lit {
	borrow := b.constLit(false)
	for i := range x {
		// borrow' = (~x & y) | ((~x | y) & borrow)
		nx := x[i].Not()
		borrow = b.gateOr(b.gateAnd(nx, y[i]), b.gateAnd(b.gateOr(nx, y[i]), borrow))
	}
	return borrow
}

func (b *blaster) shiftConst(x []sat.Lit, k int, kind expr.Kind) []sat.Lit {
	w := len(x)
	out := make([]sat.Lit, w)
	for i := range out {
		switch kind {
		case expr.KShl:
			if i-k >= 0 {
				out[i] = x[i-k]
			} else {
				out[i] = b.constLit(false)
			}
		case expr.KLshr:
			if i+k < w {
				out[i] = x[i+k]
			} else {
				out[i] = b.constLit(false)
			}
		case expr.KAshr:
			if i+k < w {
				out[i] = x[i+k]
			} else {
				out[i] = x[w-1]
			}
		}
	}
	return out
}

// blast returns the bit literals of e, LSB first.
func (b *blaster) blast(e *expr.Expr) []sat.Lit {
	if bits, ok := b.memo[e.ID()]; ok {
		return bits
	}
	bits := b.blastUncached(e)
	if len(bits) != int(e.Width) {
		panic("solver: width mismatch in blasting")
	}
	b.memo[e.ID()] = bits
	return bits
}

func (b *blaster) blastUncached(e *expr.Expr) []sat.Lit {
	w := int(e.Width)
	switch e.Kind {
	case expr.KConst:
		out := make([]sat.Lit, w)
		for i := range out {
			out[i] = b.constLit(e.Val>>i&1 == 1)
		}
		return out
	case expr.KSym:
		if bits, ok := b.syms[e.Name]; ok {
			if len(bits) != w {
				panic("solver: symbol " + e.Name + " used at two widths")
			}
			return bits
		}
		bits := make([]sat.Lit, w)
		for i := range bits {
			bits[i] = b.fresh()
		}
		b.syms[e.Name] = bits
		return bits
	case expr.KAdd:
		return b.adder(b.blast(e.A), b.blast(e.B), b.constLit(false))
	case expr.KSub:
		return b.adder(b.blast(e.A), b.negBits(b.blast(e.B)), b.constLit(true))
	case expr.KMul:
		x, y := b.blast(e.A), b.blast(e.B)
		acc := make([]sat.Lit, w)
		for i := range acc {
			acc[i] = b.constLit(false)
		}
		for i := 0; i < w; i++ {
			// Partial product: (x << i) masked by y[i].
			pp := make([]sat.Lit, w)
			for j := range pp {
				if j < i {
					pp[j] = b.constLit(false)
				} else {
					pp[j] = b.gateAnd(x[j-i], y[i])
				}
			}
			acc = b.adder(acc, pp, b.constLit(false))
		}
		return acc
	case expr.KAnd, expr.KOr, expr.KXor:
		x, y := b.blast(e.A), b.blast(e.B)
		out := make([]sat.Lit, w)
		for i := range out {
			switch e.Kind {
			case expr.KAnd:
				out[i] = b.gateAnd(x[i], y[i])
			case expr.KOr:
				out[i] = b.gateOr(x[i], y[i])
			case expr.KXor:
				out[i] = b.gateXor(x[i], y[i])
			}
		}
		return out
	case expr.KShl, expr.KLshr, expr.KAshr:
		x := b.blast(e.A)
		if k, ok := e.B.IsConst(); ok {
			return b.shiftConst(x, int(k%32), e.Kind)
		}
		// Barrel shifter over the low 5 bits of the amount (shifts
		// are defined mod 32, matching expr.Eval and the VM).
		amt := b.blast(e.B)
		cur := x
		for stage := 0; stage < 5 && 1<<stage < 32; stage++ {
			if stage >= len(amt) {
				break
			}
			shifted := b.shiftConst(cur, 1<<stage, e.Kind)
			next := make([]sat.Lit, w)
			for i := range next {
				next[i] = b.gateMux(amt[stage], shifted[i], cur[i])
			}
			cur = next
		}
		return cur
	case expr.KEq:
		x, y := b.blast(e.A), b.blast(e.B)
		acc := b.constLit(true)
		for i := range x {
			acc = b.gateAnd(acc, b.gateXor(x[i], y[i]).Not())
		}
		return []sat.Lit{acc}
	case expr.KUlt:
		return []sat.Lit{b.ult(b.blast(e.A), b.blast(e.B))}
	case expr.KSlt:
		// Flip sign bits and compare unsigned.
		x := append([]sat.Lit{}, b.blast(e.A)...)
		y := append([]sat.Lit{}, b.blast(e.B)...)
		x[len(x)-1] = x[len(x)-1].Not()
		y[len(y)-1] = y[len(y)-1].Not()
		return []sat.Lit{b.ult(x, y)}
	case expr.KNot:
		return b.negBits(b.blast(e.A))
	case expr.KZext:
		x := b.blast(e.A)
		out := make([]sat.Lit, w)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = b.constLit(false)
			}
		}
		return out
	case expr.KTrunc:
		return b.blast(e.A)[:w:w]
	case expr.KConcat:
		lo := b.blast(e.B)
		hi := b.blast(e.A)
		out := make([]sat.Lit, 0, w)
		out = append(out, lo...)
		out = append(out, hi...)
		return out
	case expr.KIte:
		c := b.blast(e.A)[0]
		x, y := b.blast(e.B), b.blast(e.C)
		out := make([]sat.Lit, w)
		for i := range out {
			out[i] = b.gateMux(c, x[i], y[i])
		}
		return out
	}
	panic("solver: cannot blast kind")
}
