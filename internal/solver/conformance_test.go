package solver

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"revnic/internal/expr"
)

// randCons builds a random width-1 constraint over the given 4-bit
// variables.
func randCons(r *rand.Rand, vars []*expr.Expr) *expr.Expr {
	term := func() *expr.Expr {
		e := vars[r.Intn(len(vars))]
		for i, n := 0, r.Intn(3); i < n; i++ {
			c := expr.C(uint32(r.Intn(16)), 4)
			switch r.Intn(5) {
			case 0:
				e = expr.Add(e, c)
			case 1:
				e = expr.Sub(e, c)
			case 2:
				e = expr.And(e, vars[r.Intn(len(vars))])
			case 3:
				e = expr.Xor(e, c)
			case 4:
				e = expr.Mul(e, c)
			}
		}
		return e
	}
	lhs, rhs := term(), term()
	switch r.Intn(3) {
	case 0:
		return expr.Eq(lhs, rhs)
	case 1:
		return expr.Ult(lhs, rhs)
	default:
		return expr.Not(expr.Eq(lhs, rhs))
	}
}

// bruteSat enumerates every assignment of the 4-bit variables.
func bruteSat(names []string, cons []*expr.Expr) bool {
	total := 4 * len(names)
	for n := 0; n < 1<<total; n++ {
		env := map[string]uint32{}
		rest := n
		for _, name := range names {
			env[name] = uint32(rest & 15)
			rest >>= 4
		}
		ev := expr.NewEvaluator(env)
		ok := true
		for _, c := range cons {
			if ev.Eval(c) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// BackendConformanceTest is the shared conformance harness: any
// Backend implementation must agree with brute-force ground truth on
// scoped queries, produce verifiable models, keep push/pop balanced,
// and honor the interrupt hook.
func BackendConformanceTest(t *testing.T, factory BackendFactory) {
	t.Helper()
	names := []string{"cfa", "cfb", "cfc"}
	vars := make([]*expr.Expr, len(names))
	for i, n := range names {
		vars[i] = expr.S(n, 4)
	}

	t.Run("agreement", func(t *testing.T) {
		r := rand.New(rand.NewSource(17))
		for trial := 0; trial < 40; trial++ {
			b := factory(BackendOpts{})
			all := []*expr.Expr{}
			for i, n := 0, r.Intn(3); i < n; i++ {
				c := randCons(r, vars)
				all = append(all, c)
				b.Assert(c)
			}
			base := len(all)
			for cycle := 0; cycle < 3; cycle++ {
				all = all[:base]
				b.Push()
				for i, n := 0, r.Intn(2); i < n; i++ {
					c := randCons(r, vars)
					all = append(all, c)
					b.Assert(c)
				}
				cond := randCons(r, vars)
				want := bruteSat(names, append(append([]*expr.Expr{}, all...), cond))
				v := b.SolveUnder(cond)
				if v == VUnknown {
					t.Fatalf("trial %d cycle %d: VUnknown on an in-domain query", trial, cycle)
				}
				if got := v == VSat; got != want {
					t.Fatalf("trial %d cycle %d: verdict %v, brute force %v", trial, cycle, v, want)
				}
				if v == VSat {
					m := b.Model()
					ev := expr.NewEvaluator(m)
					for _, c := range append(append([]*expr.Expr{}, all...), cond) {
						if ev.Eval(c) == 0 {
							t.Fatalf("trial %d cycle %d: model %v violates %v", trial, cycle, m, c)
						}
					}
				}
				if racer, ok := b.(Racer); ok {
					if rv := racer.SolveRaced(cond); rv != VUnknown && (rv == VSat) != want {
						t.Fatalf("trial %d cycle %d: raced verdict %v, brute force %v", trial, cycle, rv, want)
					}
				}
				b.Pop()
			}
			// After all pops: base constraints only.
			want := bruteSat(names, all[:base])
			if v := b.SolveUnder(nil); (v == VSat) != want {
				t.Fatalf("trial %d: after pops verdict %v, brute force %v", trial, v, want)
			}
		}
	})

	t.Run("pushpop-balance", func(t *testing.T) {
		b := factory(BackendOpts{})
		b.Assert(expr.Eq(vars[0], expr.C(3, 4)))
		for depth := 0; depth < 5; depth++ {
			b.Push()
			b.Assert(expr.Not(expr.Eq(vars[0], expr.C(uint32(depth+4), 4))))
		}
		if v := b.SolveUnder(nil); v != VSat {
			t.Fatalf("verdict %v at depth 5, want sat", v)
		}
		b.Push()
		b.Assert(expr.Not(expr.Eq(vars[0], expr.C(3, 4))))
		if v := b.SolveUnder(nil); v != VUnsat {
			t.Fatalf("verdict %v with contradictory scope, want unsat", v)
		}
		for depth := 0; depth < 6; depth++ {
			b.Pop()
		}
		if v := b.SolveUnder(nil); v != VSat {
			t.Fatalf("verdict %v after unwinding all scopes, want sat", v)
		}
	})

	t.Run("pop-unbalanced-panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Pop with no open scope did not panic")
			}
		}()
		factory(BackendOpts{}).Pop()
	})

	t.Run("interrupt-honored", func(t *testing.T) {
		// A 32-bit factoring query: far outside the small-domain
		// enumerator's domain and thousands of search iterations for
		// the SAT core, so every backend either answers VUnknown
		// immediately (out of domain) or hits the interrupt poll.
		x, y := expr.S("cfix", 32), expr.S("cfiy", 32)
		hard := expr.Eq(expr.Mul(x, y), expr.C(0xDEADBEEF, 32))
		b := factory(BackendOpts{Interrupt: func() bool { return true }})
		b.Assert(hard)
		if v := b.SolveUnder(nil); v != VUnknown {
			t.Fatalf("verdict %v under always-firing interrupt, want unknown", v)
		}
		// Fresh backend for the raced check: the interrupt is
		// cooperative (polled), so the guarantee is "aborts at the
		// next poll" — on a fresh backend the very first poll is real
		// and fires before any search.
		b2 := factory(BackendOpts{Interrupt: func() bool { return true }})
		if racer, ok := b2.(Racer); ok {
			b2.Assert(hard)
			if v := racer.SolveRaced(expr.Eq(x, y)); v != VUnknown {
				t.Fatalf("raced verdict %v under always-firing interrupt, want unknown", v)
			}
		}
	})
}

func TestBackendConformance(t *testing.T) {
	for _, name := range []string{BackendCore, BackendSmallDomain, BackendPortfolio} {
		f, ok := backendFactory(name)
		if !ok {
			t.Fatalf("backend %q not registered", name)
		}
		t.Run(name, func(t *testing.T) { BackendConformanceTest(t, f) })
	}
}

func TestBackendRegistry(t *testing.T) {
	names := BackendNames()
	want := map[string]bool{BackendCore: true, BackendSmallDomain: true, BackendPortfolio: true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("BackendNames() = %v is missing %v", names, want)
	}
	if !ValidBackend("") || !ValidBackend(BackendPortfolio) || ValidBackend("z3") {
		t.Fatal("ValidBackend misclassifies names")
	}
}

// TestPortfolioMatchesDefaultSolver pins the determinism guarantee
// the engine wiring relies on: a portfolio solver and a default
// (core) solver answer identical query sequences with identical
// answers AND identical observable cache behavior — verdict-cache
// hits, model hits, cache size — because hard queries are
// verdict-only in both modes. This is what keeps JobResults
// byte-identical with -portfolio on or off.
func TestPortfolioMatchesDefaultSolver(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	names := []string{"pfa", "pfb", "pfc"}
	vars := make([]*expr.Expr, len(names))
	for i, n := range names {
		vars[i] = expr.S(n, 4)
	}
	// HardNodes=4 forces a healthy mix of raced and easy queries.
	def := NewWith(Config{HardNodes: 4})
	pf := NewWith(Config{Backend: BackendPortfolio, HardNodes: 4})
	var pc []*expr.Expr
	for q := 0; q < 150; q++ {
		if len(pc) > 0 && r.Intn(4) == 0 {
			pc = pc[:r.Intn(len(pc))]
		}
		cond := randCons(r, vars)
		a := def.MayBeTrue(pc, cond)
		b := pf.MayBeTrue(pc, cond)
		if a != b {
			t.Fatalf("query %d: default=%v portfolio=%v", q, a, b)
		}
		if a && r.Intn(2) == 0 {
			pc = append(pc, cond)
		}
		if r.Intn(5) == 0 {
			ma, oka := def.Model(pc)
			mb, okb := pf.Model(pc)
			if oka != okb {
				t.Fatalf("query %d: Model ok mismatch %v vs %v", q, oka, okb)
			}
			_ = ma
			_ = mb
		}
	}
	dq, dh := def.Stats()
	pq, ph := pf.Stats()
	if dq != pq || dh != ph {
		t.Fatalf("stats diverge: default q=%d h=%d, portfolio q=%d h=%d", dq, dh, pq, ph)
	}
	if def.ModelHits() != pf.ModelHits() {
		t.Fatalf("model hits diverge: %d vs %d", def.ModelHits(), pf.ModelHits())
	}
	if def.CacheSize() != pf.CacheSize() {
		t.Fatalf("cache size diverges: %d vs %d", def.CacheSize(), pf.CacheSize())
	}
}

// unknownBackend always answers VUnknown — a stand-in for a backend
// that was interrupted (or out of domain) in every race.
type unknownBackend struct{}

func (unknownBackend) Assert(*expr.Expr)             {}
func (unknownBackend) Push()                         {}
func (unknownBackend) Pop()                          {}
func (unknownBackend) SolveUnder(*expr.Expr) Verdict { return VUnknown }
func (unknownBackend) Model() map[string]uint32      { return nil }
func (unknownBackend) SetInterrupt(func() bool)      {}

// flakyBackend answers VUnknown for its first n solves (simulating a
// backend cancelled mid-race) and delegates afterwards.
type flakyBackend struct {
	Backend
	failures int
}

func (f *flakyBackend) SolveUnder(cond *expr.Expr) Verdict {
	if f.failures > 0 {
		f.failures--
		return VUnknown
	}
	return f.Backend.SolveUnder(cond)
}

// TestPortfolioAbortedNeverCached pins the never-cache-aborted rule
// at the portfolio layer: a race in which every backend fails to
// answer (interrupted losers, no winner) must leave the query and
// model caches untouched, and the same query must be answerable —
// correctly — once a backend recovers.
func TestPortfolioAbortedNeverCached(t *testing.T) {
	RegisterBackend("test-flaky-portfolio", func(o BackendOpts) Backend {
		return &portfolio{
			children: []Backend{
				&flakyBackend{Backend: newCoreBackend(o), failures: 1},
				unknownBackend{},
			},
			names:     []string{"flaky-core", "always-unknown"},
			interrupt: o.Interrupt,
		}
	})
	// HardNodes=1 makes every query hard, so every solve races.
	s := NewWith(Config{Backend: "test-flaky-portfolio", HardNodes: 1})
	x := expr.S("pnc", 8)
	pc := []*expr.Expr{expr.Ult(x, expr.C(100, 8))}
	cond := expr.Ult(x, expr.C(50, 8))
	if s.MayBeTrue(pc, cond) {
		t.Fatal("aborted race must answer conservatively (false)")
	}
	if n := s.CacheSize(); n != 0 {
		t.Fatalf("aborted race populated the verdict cache (%d entries)", n)
	}
	if s.ModelHits() != 0 {
		t.Fatal("aborted race produced a model hit")
	}
	// The backend recovered: the very same query must now be decided
	// correctly — the aborted false was not cached.
	if !s.MayBeTrue(pc, cond) {
		t.Fatal("query answered false after recovery: aborted verdict was cached")
	}
	_, hits := s.Stats()
	if hits != 0 {
		t.Fatal("post-recovery answer came from the cache, not a solve")
	}
	if n := s.CacheSize(); n != 1 {
		t.Fatalf("decided query not cached (%d entries)", n)
	}
}

// TestPortfolioInterruptAborts exercises the real race-abort path: a
// genuinely hard factoring query under an always-firing global
// interrupt must answer VUnknown (conservative false) and cache
// nothing.
func TestPortfolioInterruptAborts(t *testing.T) {
	var abort atomic.Bool
	abort.Store(true)
	s := NewWith(Config{
		Backend:   BackendPortfolio,
		HardNodes: 3,
		Interrupt: func() bool { return abort.Load() },
	})
	x, y := expr.S("pix", 32), expr.S("piy", 32)
	cond := expr.Eq(expr.Mul(x, y), expr.C(0xDEADBEEF, 32))
	if s.MayBeTrue(nil, cond) {
		t.Fatal("interrupted race answered true")
	}
	if n := s.CacheSize(); n != 0 {
		t.Fatalf("interrupted race populated the cache (%d entries)", n)
	}
}

// TestPortfolioRaceCounters checks the ops counters: a race with a
// definitive winner must record one win, and the loser a loss or
// cancel.
func TestPortfolioRaceCounters(t *testing.T) {
	ResetPortfolioCounters()
	f, _ := backendFactory(BackendPortfolio)
	b := f(BackendOpts{})
	x := expr.S("rcx", 4)
	b.Assert(expr.Ult(x, expr.C(9, 4)))
	racer := b.(Racer)
	if v := racer.SolveRaced(expr.Eq(x, expr.C(3, 4))); v != VSat {
		t.Fatalf("race verdict %v, want sat", v)
	}
	snap := PortfolioSnapshot()
	wins := int64(0)
	for _, c := range snap {
		wins += c.Wins
	}
	if wins != 1 {
		t.Fatalf("race recorded %d wins, want 1 (snapshot %v)", wins, snap)
	}
	other := int64(0)
	for _, c := range snap {
		other += c.Losses + c.Cancels
	}
	if other != 1 {
		t.Fatalf("race recorded %d losses+cancels, want 1 (snapshot %v)", other, snap)
	}
}

// TestSessionSharesPrefixAcrossSiblings pins the push/pop payoff:
// alternating between two sibling constraint prefixes (same parent
// path, different last constraint) must keep one backend session
// alive instead of rebuilding per flip — the pre-push/pop design
// rebuilt on every prefix mismatch.
func TestSessionSharesPrefixAcrossSiblings(t *testing.T) {
	s := New()
	x, y := expr.S("ssa", 8), expr.S("ssb", 8)
	parent := []*expr.Expr{expr.Ult(x, expr.C(200, 8)), expr.Ult(y, expr.C(200, 8))}
	left := append(append([]*expr.Expr{}, parent...), expr.Ult(x, expr.C(100, 8)))
	right := append(append([]*expr.Expr{}, parent...), expr.Not(expr.Ult(x, expr.C(100, 8))))
	for i := 0; i < 6; i++ {
		pc := left
		if i%2 == 1 {
			pc = right
		}
		// Vary the condition so every query misses the caches and
		// actually reaches the session.
		cond := expr.Eq(expr.Add(y, expr.C(uint32(i), 8)), expr.C(7, 8))
		if !s.MayBeTrue(pc, cond) {
			t.Fatalf("query %d: expected sat", i)
		}
	}
	ext, rebuilt := s.Sessions()
	if rebuilt != 1 {
		t.Fatalf("sibling flips rebuilt the session %d times, want 1", rebuilt)
	}
	if ext != 5 {
		t.Fatalf("extended = %d, want 5", ext)
	}
}

// TestUnsatSubsumption pins the index's UNSAT side: once a constraint
// set is proven UNSAT, any superset query is answered by subsumption
// without solving.
func TestUnsatSubsumption(t *testing.T) {
	s := New()
	x, y := expr.S("usa", 8), expr.S("usb", 8)
	a := expr.Ult(x, expr.C(5, 8))
	b := expr.Not(expr.Ult(x, expr.C(10, 8)))
	if s.Satisfiable([]*expr.Expr{a, b}) {
		t.Fatal("x<5 ∧ x≥10 must be unsat")
	}
	before := s.ModelHits()
	extra := expr.Eq(y, expr.C(1, 8))
	if s.Satisfiable([]*expr.Expr{a, extra, b}) {
		t.Fatal("superset of an unsat set must be unsat")
	}
	if s.ModelHits() == before {
		t.Fatal("superset query did not hit the UNSAT index")
	}
}

// TestIndexOutlivesRecencyList pins the "job-wide" claim: a model
// stays findable through its variable-set bucket even after the
// global recency list has cycled past it — the old 4-entry ring
// forgot it.
func TestIndexOutlivesRecencyList(t *testing.T) {
	s := New() // recency list holds DefaultRecentModels = 4
	x := expr.S("iwx", 8)
	if !s.Satisfiable([]*expr.Expr{expr.Ult(x, expr.C(10, 8))}) {
		t.Fatal("sat expected")
	}
	// Push 8 models for other variable sets through the recency list.
	for i := 0; i < 8; i++ {
		v := expr.S("iwo"+string(rune('a'+i)), 8)
		if !s.Satisfiable([]*expr.Expr{expr.Eq(v, expr.C(uint32(i+1), 8))}) {
			t.Fatal("sat expected")
		}
	}
	before := s.ModelHits()
	// Weaker query over x's variable set: the bucket still holds the
	// witness.
	if !s.Satisfiable([]*expr.Expr{expr.Ult(x, expr.C(50, 8))}) {
		t.Fatal("sat expected")
	}
	if s.ModelHits() == before {
		t.Fatal("bucketed model was lost: index did not outlive the recency list")
	}
}
