package drivers

import (
	"bytes"
	"testing"

	"revnic/internal/guestos"
	"revnic/internal/nic"
)

// The SBLK100 is a block controller, not a NIC: it has no address
// filter, no multicast hash and no duplex machinery, so it gets its
// own workload test instead of joining implementedDrivers() — the
// shared NIC workload asserts semantics the device intentionally
// lacks.
func TestSBLK100Workload(t *testing.T) {
	r := buildRig(t, "SBLK100")
	info, _ := ByName("SBLK100")
	if err := r.os.LoadDriver(info.Program.Base); err != nil {
		t.Fatal(err)
	}
	if err := r.os.Initialize(); err != nil {
		t.Fatal(err)
	}

	// The driver read the serial out of the IDENTIFY block; it is
	// reported through the standard station-address OID.
	st, mac, err := r.os.Query(guestos.OIDMACAddress, 6)
	if err != nil || st != guestos.StatusSuccess {
		t.Fatalf("query serial: %d %v", st, err)
	}
	if !bytes.Equal(mac, testMAC[:]) {
		t.Errorf("serial %x, want %x", mac, testMAC)
	}

	// Outbound: each send becomes one committed block addressed by
	// the driver's running LBA counter.
	sizes := []int{14, 600, 1514}
	for i, n := range sizes {
		frame := make([]byte, n)
		for j := range frame {
			frame[j] = byte(i + j*7)
		}
		st, err := r.os.Send(frame)
		if err != nil || st != guestos.StatusSuccess {
			t.Fatalf("send %d: %d %v", i, st, err)
		}
		if _, err := r.os.PumpInterrupts(4); err != nil {
			t.Fatal(err)
		}
	}
	dev := r.dev.(*nic.SBLK100)
	txs := dev.TxFrames()
	if len(txs) != len(sizes) {
		t.Fatalf("device committed %d blocks, want %d", len(txs), len(sizes))
	}
	for i, n := range sizes {
		if len(txs[i]) != n {
			t.Errorf("block %d: %d bytes, want %d", i, len(txs[i]), n)
		}
	}
	lbas := dev.CommitLBAs()
	for i, lba := range lbas {
		if lba != uint32(i) {
			t.Errorf("commit %d addressed LBA %d, want %d", i, lba, i)
		}
	}
	if r.os.SendCompletes != len(sizes) {
		t.Errorf("SendCompletes = %d, want %d", r.os.SendCompletes, len(sizes))
	}

	// Inbound: records are accepted regardless of their leading
	// bytes (no station filter on a block device) and drained by the
	// ISR intact.
	recs := [][]byte{make([]byte, 96), make([]byte, 1200)}
	for i, rec := range recs {
		for j := range rec {
			rec[j] = byte(j ^ i)
		}
		if !r.dev.InjectRX(rec) {
			t.Fatalf("record %d dropped", i)
		}
		if _, err := r.os.PumpInterrupts(4); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.os.Received) != len(recs) {
		t.Fatalf("indicated %d records, want %d", len(r.os.Received), len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(r.os.Received[i], rec) {
			t.Errorf("record %d corrupted in flight", i)
		}
	}

	// The packet filter OID is accepted (and mirrored to the scratch
	// register); anything NIC-specific fails cleanly.
	if st, err := r.os.Set(guestos.OIDPacketFilter, []byte{guestos.FilterDirected, 0, 0, 0}); err != nil || st != guestos.StatusSuccess {
		t.Fatalf("set filter: %d %v", st, err)
	}
	if st, _ := r.os.Set(guestos.OIDMulticastList, make([]byte, 6)); st != guestos.StatusFailure {
		t.Error("multicast OID accepted by a block controller")
	}

	// Oversized payload is rejected before touching the wire.
	big := make([]byte, 1600)
	if st, err := r.os.Send(big); err != nil || st != guestos.StatusFailure {
		t.Errorf("oversized send: %d %v", st, err)
	}
	if txs := dev.TxFrames(); len(txs) != 0 {
		t.Error("oversized payload committed")
	}

	if err := r.os.Halt(); err != nil {
		t.Fatal(err)
	}
	if r.dev.StatusReport().RxEnabled {
		t.Error("controller still started after halt")
	}
	if r.m.Bus.Line.Pending() {
		t.Error("interrupt line still pending")
	}
}

// TestCorpusContainsBlockDevice pins the corpus/evaluation split:
// All() stays the paper's four NICs (the Table 1-4 numbers), the
// corpus adds the block controller, and ByName resolves both.
func TestCorpusContainsBlockDevice(t *testing.T) {
	if n := len(All()); n != 4 {
		t.Fatalf("All() = %d drivers, want 4", n)
	}
	if n := len(Corpus()); n != 5 {
		t.Fatalf("Corpus() = %d drivers, want 5", n)
	}
	info, err := ByName("SBLK100")
	if err != nil {
		t.Fatal(err)
	}
	if info.Program.Base != 0x10000 {
		t.Errorf("base %#x", info.Program.Base)
	}
	if size := info.Program.Size(); size < 1000 {
		t.Errorf("image only %d bytes; not a realistic driver", size)
	}
}
