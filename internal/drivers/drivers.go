// Package drivers contains the four "proprietary, closed-source"
// Windows NIC drivers of Table 1, written in the guest ISA and
// assembled to opaque binary images.
//
// These sources are the reproduction's stand-in for pcntpci5.sys,
// rtl8139.sys, lan9000.sys and rtl8029.sys: everything downstream —
// exercising, wiretapping, CFG reconstruction, code synthesis — sees
// only the assembled bytes (Program.Base + Program.Code). The symbol
// tables stay on this side of the fence and are used exclusively by
// tests as ground truth, the way the paper's authors manually checked
// synthesized code against the original binaries (§5.4).
//
// Each driver implements the full hardware protocol of its device
// model in package nic, structured like a real NDIS miniport:
// DriverEntry registers a characteristics table; MiniportInitialize
// probes and programs the device; send/ISR/query/set/halt implement
// the Table 2 feature set, including the OS-independent CRC-32
// multicast hashing (the paper's "type 4" function class) and
// boundary paths (oversized frames, unsupported OIDs, ring overflow)
// that only symbolic execution reaches.
package drivers

import (
	"fmt"
	"sync"

	"revnic/internal/isa"
)

// Info describes one closed-source driver image.
type Info struct {
	// Name is the chip name used throughout the evaluation.
	Name string
	// File is the Windows driver file name from Table 1.
	File string
	// Program is the assembled binary image.
	Program *isa.Program
	// VendorID/DeviceID identify the PCI device the driver binds to.
	VendorID uint16
	DeviceID uint16
	// HasDMA and HasWOL mirror the N/A entries of Table 2.
	HasDMA bool
	HasWOL bool
}

var (
	once sync.Once
	all  []*Info

	corpusOnce sync.Once
	corpus     []*Info
)

// All returns the four evaluated drivers, assembling them on first
// use. The order matches Table 1.
func All() []*Info {
	once.Do(func() {
		all = []*Info{
			{
				Name: "AMD PCNet", File: "pcntpci5.sys",
				Program:  isa.MustAssemble(pcnetSrc),
				VendorID: 0x1022, DeviceID: 0x2000,
				HasDMA: true, HasWOL: false,
			},
			{
				Name: "RTL8139", File: "rtl8139.sys",
				Program:  isa.MustAssemble(rtl8139Src),
				VendorID: 0x10EC, DeviceID: 0x8139,
				HasDMA: true, HasWOL: true,
			},
			{
				Name: "SMSC 91C111", File: "lan9000.sys",
				Program:  isa.MustAssemble(smc91c111Src),
				VendorID: 0x1055, DeviceID: 0x9111,
				HasDMA: false, HasWOL: false,
			},
			{
				Name: "RTL8029", File: "rtl8029.sys",
				Program:  isa.MustAssemble(rtl8029Src),
				VendorID: 0x10EC, DeviceID: 0x8029,
				HasDMA: false, HasWOL: false,
			},
		}
	})
	return all
}

// Corpus returns every bundled driver: the four evaluated NICs of
// All plus the corpus-growth entries beyond the paper's table —
// currently the SBLK100 block controller. The Table 1-4 evaluation
// code keeps iterating All (its results are the paper's numbers);
// the differential fuzzer, golden-template tests and CI fuzz smoke
// cover the full corpus.
func Corpus() []*Info {
	corpusOnce.Do(func() {
		corpus = append(append([]*Info{}, All()...), &Info{
			Name: "SBLK100", File: "sblk100.sys",
			Program:  isa.MustAssemble(sblk100Src),
			VendorID: 0x1C22, DeviceID: 0x0100,
			HasDMA: false, HasWOL: false,
		})
	})
	return corpus
}

// ByName returns the driver with the given chip name, searching the
// full corpus.
func ByName(name string) (*Info, error) {
	for _, d := range Corpus() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("drivers: unknown driver %q", name)
}

// apiEqus is the shared assembly prelude defining the OS API gates
// (addresses the loader would have fixed up in a real PE import
// table) and NDIS constants.
const apiEqus = `
.equ NdisMRegisterMiniport,     0xF00000
.equ NdisAllocateMemory,        0xF00008
.equ NdisFreeMemory,            0xF00010
.equ NdisMAllocateSharedMemory, 0xF00018
.equ NdisMFreeSharedMemory,     0xF00020
.equ NdisWriteErrorLogEntry,    0xF00028
.equ NdisReadPciSlotInformation,0xF00030
.equ NdisMInitializeTimer,      0xF00038
.equ NdisMSetTimer,             0xF00040
.equ NdisMIndicateReceivePacket,0xF00048
.equ NdisMSendComplete,         0xF00050
.equ NdisStallExecution,        0xF00058
.equ NdisGetSystemUpTime,       0xF00060
.equ DbgPrint,                  0xF00068

.equ STATUS_SUCCESS, 0
.equ STATUS_FAILURE, 1

.equ OID_PACKET_FILTER, 0x0001010E
.equ OID_LINK_SPEED,    0x00010107
.equ OID_MEDIA_STATUS,  0x00010114
.equ OID_MAC_ADDRESS,   0x01010102
.equ OID_MULTICAST,     0x01010103
.equ OID_WOL,           0xFD010106
.equ OID_FULL_DUPLEX,   0x00012000
.equ OID_LED,           0x00012001

.equ FILTER_MULTICAST,   0x02
.equ FILTER_PROMISCUOUS, 0x20

.equ PCI_CFG_ID,     0
.equ PCI_CFG_IOBASE, 4
.equ PCI_CFG_IRQ,    8
`
