package drivers

// pcnetSrc is the "proprietary" AMD PCNet driver: indirect CSR access
// through the RAP/RDP port pair, an init block in host memory, and
// OWN-bit descriptor rings with bus-master DMA.
//
// Adapter context layout:
//
//	+0x00 I/O base    +0x04 IRQ        +0x08 running   +0x0C filter
//	+0x10 TX index    +0x14 station MAC (6 bytes)
//	+0x20 init block phys    +0x24 RX ring phys  +0x28 TX ring phys
//	+0x2C RX buffers phys    +0x30 TX buffers phys
//	+0x34 RX index    +0x38 multicast hash (8)  +0x40 mode mirror
const pcnetSrc = apiEqus + `
.org 0x10000

; ---- PCNet register offsets ----
.equ R_APROM, 0x00
.equ R_RDP,   0x10
.equ R_RAP,   0x12
.equ R_RESET, 0x14
.equ R_BDP,   0x16

.equ CSR0_INIT, 0x0001
.equ CSR0_STRT, 0x0002
.equ CSR0_STOP, 0x0004
.equ CSR0_TDMD, 0x0008
.equ CSR0_IENA, 0x0040
.equ CSR0_IDON, 0x0100
.equ CSR0_TINT, 0x0200
.equ CSR0_RINT, 0x0400
.equ DESC_OWN,  0x8000
.equ BUF_SIZE,  1536

; ================= DriverEntry =================
.func DriverEntry
	movi r1, chars
	movi r2, mp_initialize
	st32 [r1+0], r2
	movi r2, mp_send
	st32 [r1+4], r2
	movi r2, mp_isr
	st32 [r1+8], r2
	movi r2, mp_query
	st32 [r1+12], r2
	movi r2, mp_set
	st32 [r1+16], r2
	movi r2, mp_halt
	st32 [r1+20], r2
	push r1
	call NdisMRegisterMiniport
	movi r0, #STATUS_SUCCESS
	ret

; ---- CSR/BCR access helpers (type 1 functions). This is the
; address-on-one-port, data-on-the-other pattern the paper's
; function-model heuristic targets. ----
; pcn_wcsr(iobase, reg, val)
.func pcn_wcsr
	ld32 r1, [sp+4]
	ld32 r2, [sp+8]
	ld32 r3, [sp+12]
	out16 (r1+R_RAP), r2
	out16 (r1+R_RDP), r3
	ret 12

; pcn_rcsr(iobase, reg) -> val
.func pcn_rcsr
	ld32 r1, [sp+4]
	ld32 r2, [sp+8]
	out16 (r1+R_RAP), r2
	in16  r0, (r1+R_RDP)
	ret 8

; pcn_wbcr(iobase, reg, val)
.func pcn_wbcr
	ld32 r1, [sp+4]
	ld32 r2, [sp+8]
	ld32 r3, [sp+12]
	out16 (r1+R_RAP), r2
	out16 (r1+R_BDP), r3
	ret 12

; ================= MiniportInitialize =================
.func mp_initialize
	movi r1, #0x48
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail
	mov  r4, r0
	movi r1, #PCI_CFG_IOBASE
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x00], r0
	movi r1, #PCI_CFG_IRQ
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x04], r0
	; Probe: reading RESET resets the chip; CSR0 must then read STOP.
	ld32 r1, [r4+0x00]
	in16 r2, (r1+R_RESET)
	movi r2, #0
	push r2
	push r1
	call pcn_rcsr
	movi r2, #CSR0_STOP
	beq  r0, r2, init_present
	movi r1, #0xDEAD0021
	push r1
	call NdisWriteErrorLogEntry
	jmp  init_fail
init_present:
	; Station MAC from the address PROM.
	ld32 r1, [r4+0x00]
	movi r3, #0
aprom_loop:
	add  r2, r1, r3
	in8  r2, (r2+R_APROM)
	add  r5, r4, r3
	st8  [r5+0x14], r2
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, aprom_loop
	; DMA allocations: init block, rings, packet buffers.
	movi r1, #24
	push r1
	call NdisMAllocateSharedMemory
	beq  r0, #0, init_fail
	st32 [r4+0x20], r0
	movi r1, #32
	push r1
	call NdisMAllocateSharedMemory
	beq  r0, #0, init_fail
	st32 [r4+0x24], r0
	movi r1, #32
	push r1
	call NdisMAllocateSharedMemory
	beq  r0, #0, init_fail
	st32 [r4+0x28], r0
	movi r1, #6144
	push r1
	call NdisMAllocateSharedMemory
	beq  r0, #0, init_fail
	st32 [r4+0x2C], r0
	movi r1, #6144
	push r1
	call NdisMAllocateSharedMemory
	beq  r0, #0, init_fail
	st32 [r4+0x30], r0
	; Static init-block fields: station MAC at +2.
	ld32 r1, [r4+0x20]
	movi r3, #0
ib_mac:
	add  r2, r4, r3
	ld8  r2, [r2+0x14]
	add  r5, r1, r3
	st8  [r5+2], r2
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, ib_mac
	; Mode 0, empty multicast filter.
	movi r2, #0
	st32 [r4+0x40], r2
	movi r3, #0
ib_clrhash:
	add  r5, r4, r3
	st8  [r5+0x38], r2
	add  r3, r3, #1
	movi r5, #8
	bltu r3, r5, ib_clrhash
	; Point the chip at the init block: CSR1 = low, CSR2 = high.
	ld32 r2, [r4+0x20]
	movi r3, #0xFFFF
	and  r3, r2, r3
	push r3
	movi r3, #1
	push r3
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	ld32 r2, [r4+0x20]
	shr  r2, r2, #16
	push r2
	movi r3, #2
	push r3
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	; Load the block and start the chip.
	push r4
	call pcn_reinit
	beq  r0, #0, init_started
	movi r1, #0xDEAD0022
	push r1
	call NdisWriteErrorLogEntry
	jmp  init_fail
init_started:
	movi r2, #1
	st32 [r4+0x08], r2
	mov  r0, r4
	ret
init_fail:
	movi r0, #0
	ret

; pcn_reinit(ctx): write the volatile init-block fields (mode, hash,
; ring pointers), rebuild the descriptor rings, issue INIT, poll for
; IDON, then STRT. Returns 0 on success.
.func pcn_reinit
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x20]     ; init block
	ld32 r2, [r4+0x40]     ; mode
	st16 [r1+0], r2
	; Multicast hash into the block.
	movi r3, #0
ri_hash:
	add  r5, r4, r3
	ld8  r5, [r5+0x38]
	add  r6, r1, r3
	st8  [r6+8], r5
	add  r3, r3, #1
	movi r5, #8
	bltu r3, r5, ri_hash
	; Ring pointers.
	ld32 r2, [r4+0x24]
	st32 [r1+16], r2
	ld32 r2, [r4+0x28]
	st32 [r1+20], r2
	; RX descriptors: give all four buffers to the device.
	ld32 r1, [r4+0x24]     ; rx ring
	ld32 r2, [r4+0x2C]     ; rx buffers
	movi r3, #0
ri_rxd:
	shl  r5, r3, #3
	add  r5, r1, r5        ; desc addr
	movi r6, #BUF_SIZE
	mul  r6, r6, r3
	add  r6, r2, r6        ; buffer addr
	st32 [r5+0], r6
	movi r6, #DESC_OWN
	st16 [r5+4], r6
	movi r6, #0
	st16 [r5+6], r6
	add  r3, r3, #1
	movi r6, #4
	bltu r3, r6, ri_rxd
	; TX descriptors: all owned by the driver.
	ld32 r1, [r4+0x28]
	ld32 r2, [r4+0x30]
	movi r3, #0
ri_txd:
	shl  r5, r3, #3
	add  r5, r1, r5
	movi r6, #BUF_SIZE
	mul  r6, r6, r3
	add  r6, r2, r6
	st32 [r5+0], r6
	movi r6, #0
	st16 [r5+4], r6
	st16 [r5+6], r6
	add  r3, r3, #1
	movi r6, #4
	bltu r3, r6, ri_txd
	; INIT and poll for IDON.
	movi r2, #0x41         ; CSR0_INIT|CSR0_IENA
	push r2
	movi r2, #0
	push r2
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	movi r6, #0            ; spin budget
ri_poll:
	movi r2, #0
	push r2
	ld32 r1, [r4+0x00]
	push r1
	call pcn_rcsr
	movi r2, #CSR0_IDON
	and  r0, r0, r2
	bne  r0, #0, ri_idon
	add  r6, r6, #1
	movi r2, #1000
	bltu r6, r2, ri_poll
	movi r0, #1            ; init never completed
	ret 4
ri_idon:
	; Ack IDON, then start.
	movi r2, #0x140        ; CSR0_IDON|CSR0_IENA
	push r2
	movi r2, #0
	push r2
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	movi r2, #0x42         ; CSR0_STRT|CSR0_IENA
	push r2
	movi r2, #0
	push r2
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	movi r2, #0
	st32 [r4+0x10], r2
	st32 [r4+0x34], r2
	movi r0, #0
	ret 4

; ================= MiniportSend =================
.func mp_send
	ld32 r4, [sp+4]
	ld32 r5, [sp+8]
	ld32 r6, [sp+12]
	movi r1, #14
	bltu r6, r1, send_bad
	movi r1, #1514
	bgeu r1, r6, send_ok
send_bad:
	movi r1, #0xDEAD0023
	push r1
	call NdisWriteErrorLogEntry
	movi r0, #STATUS_FAILURE
	ret 12
send_ok:
	; Copy the frame into this descriptor's DMA buffer.
	ld32 r2, [r4+0x10]     ; tx index
	movi r1, #BUF_SIZE
	mul  r1, r1, r2
	ld32 r3, [r4+0x30]
	add  r1, r3, r1        ; dst buffer
	movi r3, #0
send_copy:
	bgeu r3, r6, send_copied
	add  r0, r5, r3
	ld8  r0, [r0+0]
	add  r2, r1, r3
	st8  [r2+0], r0
	add  r3, r3, #1
	jmp  send_copy
send_copied:
	; Fill the descriptor and hand it to the device.
	ld32 r2, [r4+0x10]
	shl  r3, r2, #3
	ld32 r0, [r4+0x28]
	add  r0, r0, r3        ; desc
	st32 [r0+0], r1
	st16 [r0+6], r6
	movi r3, #DESC_OWN
	st16 [r0+4], r3
	; Demand transmission.
	movi r3, #0x48         ; CSR0_TDMD|CSR0_IENA
	push r3
	movi r3, #0
	push r3
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	; idx = (idx + 1) & 3
	ld32 r2, [r4+0x10]
	add  r2, r2, #1
	and  r2, r2, #3
	st32 [r4+0x10], r2
	movi r0, #STATUS_SUCCESS
	ret 12

; ================= MiniportISR =================
.func mp_isr
	ld32 r4, [sp+4]
	movi r2, #0
	push r2
	ld32 r1, [r4+0x00]
	push r1
	call pcn_rcsr
	mov  r2, r0            ; csr0 snapshot
	movi r3, #CSR0_TINT
	and  r3, r2, r3
	beq  r3, #0, isr_no_tx
	push r2
	movi r3, #0x240        ; ack TINT, keep IENA
	push r3
	movi r3, #0
	push r3
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	movi r3, #STATUS_SUCCESS
	push r3
	call NdisMSendComplete
	pop  r2
isr_no_tx:
	movi r3, #CSR0_RINT
	and  r3, r2, r3
	beq  r3, #0, isr_no_rx
	push r2
	push r4
	call pcn_rx_drain
	movi r3, #0x440        ; ack RINT
	push r3
	movi r3, #0
	push r3
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	pop  r2
isr_no_rx:
	movi r3, #CSR0_IDON
	and  r3, r2, r3
	beq  r3, #0, isr_done
	movi r3, #0x140
	push r3
	movi r3, #0
	push r3
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
isr_done:
	ret 4

; pcn_rx_drain(ctx): indicate every driver-owned descriptor, then
; re-arm it for the device.
.func pcn_rx_drain
	ld32 r4, [sp+4]
prd_loop:
	ld32 r2, [r4+0x34]     ; rx index
	shl  r3, r2, #3
	ld32 r1, [r4+0x24]
	add  r1, r1, r3        ; desc
	ld16 r5, [r1+4]        ; flags
	movi r6, #DESC_OWN
	and  r5, r5, r6
	bne  r5, #0, prd_done  ; device still owns it
	ld16 r6, [r1+6]        ; length
	; buffer = rxbufs + idx*BUF_SIZE
	movi r5, #BUF_SIZE
	mul  r5, r5, r2
	ld32 r3, [r4+0x2C]
	add  r3, r3, r5
	push r1                ; save desc across the upcall
	push r6
	push r3
	call NdisMIndicateReceivePacket
	pop  r1
	; Re-arm the descriptor and advance.
	movi r5, #DESC_OWN
	st16 [r1+4], r5
	movi r5, #0
	st16 [r1+6], r5
	ld32 r2, [r4+0x34]
	add  r2, r2, #1
	and  r2, r2, #3
	st32 [r4+0x34], r2
	jmp  prd_loop
prd_done:
	ret 4

; ================= MiniportQueryInformation =================
.func mp_query
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	movi r3, #OID_MAC_ADDRESS
	beq  r1, r3, q_mac
	movi r3, #OID_LINK_SPEED
	beq  r1, r3, q_speed
	movi r3, #OID_MEDIA_STATUS
	beq  r1, r3, q_media
	movi r0, #STATUS_FAILURE
	ret 16
q_mac:
	movi r3, #0
q_mac_loop:
	add  r5, r4, r3
	ld8  r5, [r5+0x14]
	add  r6, r2, r3
	st8  [r6+0], r5
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, q_mac_loop
	movi r0, #STATUS_SUCCESS
	ret 16
q_speed:
	movi r3, #10
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16
q_media:
	movi r3, #1
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16

; ================= MiniportSetInformation =================
.func mp_set
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	ld32 r3, [sp+16]
	movi r5, #OID_PACKET_FILTER
	beq  r1, r5, s_filter
	movi r5, #OID_MULTICAST
	beq  r1, r5, s_mcast
	movi r5, #OID_FULL_DUPLEX
	beq  r1, r5, s_duplex
	movi r5, #OID_WOL
	beq  r1, r5, s_wol
	movi r5, #OID_LED
	beq  r1, r5, s_led
	movi r0, #STATUS_FAILURE
	ret 16
s_filter:
	; Promiscuity lives in the mode word of the init block; changing
	; it requires re-initializing the chip.
	ld32 r2, [r2+0]
	st32 [r4+0x0C], r2
	movi r5, #0
	and  r6, r2, #FILTER_PROMISCUOUS
	beq  r6, #0, f_write
	movi r5, #0x8000       ; MODE_PROM
f_write:
	st32 [r4+0x40], r5
	push r4
	call pcn_reinit
	movi r0, #STATUS_SUCCESS
	ret 16
s_duplex:
	ld8  r2, [r2+0]
	movi r5, #0
	beq  r2, #0, d_write
	movi r5, #1            ; BCR9 full-duplex enable
d_write:
	push r5
	movi r5, #9
	push r5
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wbcr
	movi r0, #STATUS_SUCCESS
	ret 16
s_wol:
	; Magic-packet enable lives in CSR5 on this family. The virtual
	; NIC cannot wake anything, but the code path is real (Table 2
	; lists Wake-on-LAN as N/T for PCNet).
	ld8  r2, [r2+0]
	movi r5, #0
	beq  r2, #0, wol_write
	movi r5, #2
wol_write:
	push r5
	movi r5, #5
	push r5
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	movi r0, #STATUS_SUCCESS
	ret 16
s_led:
	; LED programming via BCR4 (also N/T on virtual hardware).
	ld8  r2, [r2+0]
	push r2
	movi r5, #4
	push r5
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wbcr
	movi r0, #STATUS_SUCCESS
	ret 16
s_mcast:
	; Hash the list into the context, then re-init to load LADRF.
	movi r5, #0
pm_clear:
	add  r6, r4, r5
	movi r1, #0
	st8  [r6+0x38], r1
	add  r5, r5, #1
	movi r1, #8
	bltu r5, r1, pm_clear
	movi r5, #0
pm_each:
	bgeu r5, r3, pm_done
	push r2
	push r3
	push r5
	add  r1, r2, r5
	push r1
	call crc32_hash
	pop  r5
	pop  r3
	pop  r2
	shr  r1, r0, #3
	and  r6, r0, #7
	movi r0, #1
	shl  r0, r0, r6
	add  r6, r4, r1
	ld8  r1, [r6+0x38]
	or   r1, r1, r0
	st8  [r6+0x38], r1
	add  r5, r5, #6
	jmp  pm_each
pm_done:
	push r4
	call pcn_reinit
	movi r0, #STATUS_SUCCESS
	ret 16

; crc32_hash(macptr): shared CRC-32 multicast hash (type 4 function).
.func crc32_hash
	ld32 r1, [sp+4]
	movi r2, #0
	sub  r2, r2, #1
	movi r3, #0
crc_byte:
	add  r5, r1, r3
	ld8  r5, [r5+0]
	xor  r2, r2, r5
	movi r6, #0
crc_bit:
	and  r5, r2, #1
	shr  r2, r2, #1
	beq  r5, #0, crc_nopoly
	movi r5, #0xEDB88320
	xor  r2, r2, r5
crc_nopoly:
	add  r6, r6, #1
	movi r5, #8
	bltu r6, r5, crc_bit
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, crc_byte
	movi r5, #0
	sub  r5, r5, #1
	xor  r2, r2, r5
	shr  r0, r2, #26
	ret 4

; ================= MiniportHalt =================
.func mp_halt
	ld32 r4, [sp+4]
	movi r2, #CSR0_STOP
	push r2
	movi r2, #0
	push r2
	ld32 r1, [r4+0x00]
	push r1
	call pcn_wcsr
	movi r2, #0
	st32 [r4+0x08], r2
	ret 4

.align 8
chars:
	.space 24
`
