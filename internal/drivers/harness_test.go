package drivers

import (
	"bytes"
	"testing"

	"revnic/internal/guestos"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/nic"
	"revnic/internal/vm"
)

var testMAC = [6]byte{0x02, 0xAA, 0xBB, 0xCC, 0xDD, 0x01}

// rig is a fully assembled concrete test bench: machine, OS model,
// device model and loaded driver.
type rig struct {
	m   *vm.Machine
	os  *guestos.OS
	dev nic.Model
}

// buildRig instantiates the named driver with its matching device.
func buildRig(t *testing.T, name string) *rig {
	t.Helper()
	info, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	bus := hw.NewBus()
	m := vm.New(bus)

	cfg := hw.PCIConfig{
		VendorID: info.VendorID, DeviceID: info.DeviceID,
		IOBase: 0xC000, IOSize: 0x100, IRQLine: 11,
	}
	var dev nic.Model
	switch name {
	case "RTL8029":
		dev = nic.NewRTL8029(&bus.Line, testMAC)
	case "RTL8139":
		dev = nic.NewRTL8139(&bus.Line, m, testMAC)
	case "AMD PCNet":
		dev = nic.NewPCNet(&bus.Line, m, testMAC)
	case "SMSC 91C111":
		dev = nic.NewSMC91C111(&bus.Line, testMAC)
	case "SBLK100":
		dev = nic.NewSBLK100(&bus.Line, testMAC)
	default:
		t.Fatalf("no device for %q", name)
	}
	bus.Attach(dev.(hw.Device), cfg)

	if err := m.LoadImage(info.Program); err != nil {
		t.Fatal(err)
	}
	os := guestos.New(m, cfg)
	return &rig{m: m, os: os, dev: dev}
}

// exercise runs the standard workload and returns the report.
func exercise(t *testing.T, name string) (*rig, *guestos.ExerciseReport) {
	t.Helper()
	r := buildRig(t, name)
	info, _ := ByName(name)
	rep, err := guestos.Exercise(r.os, guestos.Workload{
		DriverEntry: info.Program.Base,
		SendSizes:   guestos.DefaultSendSizes,
		InjectRX:    r.dev.InjectRX,
		StationMAC:  testMAC,
	})
	if err != nil {
		t.Fatalf("%s: exercise: %v", name, err)
	}
	return r, rep
}

// driverNames lists drivers that are fully implemented; extended as
// each is authored.
func implementedDrivers() []string {
	return []string{"RTL8029", "RTL8139", "AMD PCNet", "SMSC 91C111"}
}

func TestDriversFullWorkload(t *testing.T) {
	for _, name := range implementedDrivers() {
		t.Run(name, func(t *testing.T) {
			r, rep := exercise(t, name)

			if rep.MAC != testMAC {
				t.Errorf("driver reported MAC %x, want %x", rep.MAC, testMAC)
			}
			if rep.SendsOK != len(guestos.DefaultSendSizes) {
				t.Errorf("SendsOK = %d, want %d", rep.SendsOK, len(guestos.DefaultSendSizes))
			}
			// Every send must have reached the wire intact.
			txs := r.dev.TxFrames()
			if len(txs) != len(guestos.DefaultSendSizes) {
				t.Fatalf("device transmitted %d frames, want %d", len(txs), len(guestos.DefaultSendSizes))
			}
			for i, size := range guestos.DefaultSendSizes {
				if len(txs[i]) != size {
					t.Errorf("tx %d: %d bytes, want %d", i, len(txs[i]), size)
				}
			}
			// Every injected frame must have been indicated up intact.
			if rep.RxIndicated != 3 {
				t.Errorf("RxIndicated = %d, want 3", rep.RxIndicated)
			}
			for i, f := range r.os.Received {
				want := 128 + 64*i
				if len(f) != want {
					t.Errorf("rx %d: %d bytes, want %d", i, len(f), want)
				}
				if !bytes.Equal(f[:6], testMAC[:]) {
					t.Errorf("rx %d: wrong dst %x", i, f[:6])
				}
			}
			// Send completions were signalled via the ISR.
			if r.os.SendCompletes != len(guestos.DefaultSendSizes) {
				t.Errorf("SendCompletes = %d, want %d", r.os.SendCompletes, len(guestos.DefaultSendSizes))
			}
			// Interrupt line fully serviced.
			if r.m.Bus.Line.Pending() {
				t.Error("interrupt line still pending after workload")
			}
		})
	}
}

func TestDriverFeatureControl(t *testing.T) {
	for _, name := range implementedDrivers() {
		t.Run(name, func(t *testing.T) {
			r := buildRig(t, name)
			info, _ := ByName(name)
			if err := r.os.LoadDriver(info.Program.Base); err != nil {
				t.Fatal(err)
			}
			if err := r.os.Initialize(); err != nil {
				t.Fatal(err)
			}
			// Promiscuous on.
			st, err := r.os.Set(guestos.OIDPacketFilter,
				[]byte{guestos.FilterPromiscuous | guestos.FilterDirected, 0, 0, 0})
			if err != nil || st != guestos.StatusSuccess {
				t.Fatalf("set filter: %d %v", st, err)
			}
			if !r.dev.StatusReport().Promiscuous {
				t.Error("promiscuous not reflected in hardware")
			}
			// A foreign unicast frame must now be accepted.
			foreign := make([]byte, 64)
			copy(foreign, []byte{0x02, 9, 9, 9, 9, 9})
			copy(foreign[6:], testMAC[:])
			foreign[12] = 0x08
			if !r.dev.InjectRX(foreign) {
				t.Error("promiscuous device dropped foreign frame")
			}
			if _, err := r.os.PumpInterrupts(4); err != nil {
				t.Fatal(err)
			}
			// Promiscuous off again.
			if _, err := r.os.Set(guestos.OIDPacketFilter,
				[]byte{guestos.FilterDirected | guestos.FilterBroadcast | guestos.FilterMulticast, 0, 0, 0}); err != nil {
				t.Fatal(err)
			}
			if r.dev.StatusReport().Promiscuous {
				t.Error("promiscuous not cleared")
			}

			// Multicast: join a group, check the device hash filter
			// accepts the group address.
			group := []byte{0x01, 0x00, 0x5E, 0x12, 0x34, 0x56}
			if st, err := r.os.Set(guestos.OIDMulticastList, group); err != nil || st != guestos.StatusSuccess {
				t.Fatalf("set multicast: %d %v", st, err)
			}
			mframe := make([]byte, 64)
			copy(mframe, group)
			copy(mframe[6:], testMAC[:])
			mframe[12] = 0x08
			if !r.dev.InjectRX(mframe) {
				t.Error("multicast group frame dropped after join")
			}
			if _, err := r.os.PumpInterrupts(4); err != nil {
				t.Fatal(err)
			}
			// An unjoined group must still be dropped.
			other := make([]byte, 64)
			copy(other, []byte{0x01, 0x00, 0x5E, 0x65, 0x43, 0x21})
			copy(other[6:], testMAC[:])
			other[12] = 0x08
			if r.dev.InjectRX(other) {
				t.Error("unjoined multicast group accepted")
			}

			// Full duplex toggle.
			if st, err := r.os.Set(guestos.OIDFullDuplex, []byte{1, 0, 0, 0}); err != nil || st != guestos.StatusSuccess {
				t.Fatalf("set duplex: %d %v", st, err)
			}
			if !r.dev.StatusReport().FullDuplex {
				t.Error("full duplex not set")
			}

			// Unsupported OID must fail cleanly (an error path the
			// symbolic engine also has to reach).
			if st, _ := r.os.Set(0x0F0F0F0F, []byte{0}); st != guestos.StatusFailure {
				t.Error("bogus OID accepted")
			}

			// Oversized send is rejected without touching the wire.
			big := make([]byte, 1600)
			copy(big, nic.BroadcastMAC[:])
			st, err = r.os.Send(big)
			if err != nil {
				t.Fatal(err)
			}
			if st != guestos.StatusFailure {
				t.Error("oversized frame accepted")
			}
			if txs := r.dev.TxFrames(); len(txs) != 0 {
				t.Error("oversized frame reached the wire")
			}

			if err := r.os.Halt(); err != nil {
				t.Fatal(err)
			}
			st2 := r.dev.StatusReport()
			if st2.RxEnabled {
				t.Error("device still receiving after halt")
			}
		})
	}
}

func TestDriverImagesAreRealistic(t *testing.T) {
	for _, d := range All() {
		if len(implementedOnly(d.Name)) == 0 {
			continue
		}
		size := d.Program.Size()
		if size < 1500 {
			t.Errorf("%s: image only %d bytes; not a realistic driver", d.Name, size)
		}
		if len(d.Program.Funcs) < 8 {
			t.Errorf("%s: only %d functions", d.Name, len(d.Program.Funcs))
		}
		if d.Program.Base != 0x10000 {
			t.Errorf("%s: base %#x", d.Name, d.Program.Base)
		}
		// Entry point is the first instruction (DriverEntry).
		if _, err := isa.Decode(d.Program.Code); err != nil {
			t.Errorf("%s: undecodable entry: %v", d.Name, err)
		}
	}
}

func implementedOnly(name string) []string {
	for _, n := range implementedDrivers() {
		if n == name {
			return []string{n}
		}
	}
	return nil
}
