package drivers

// rtl8029Src is the "proprietary" RTL8029 (NE2000 clone) driver.
//
// Adapter context layout (allocated in MiniportInitialize):
//
//	+0x00 I/O base      +0x04 IRQ line    +0x08 running flag
//	+0x0C packet filter +0x10 BNRY mirror (ring read page)
//	+0x14 station MAC (6 bytes)
//	+0x20 RX staging buffer pointer
//	+0x24 TX counter    +0x28 RX counter
//	+0x30 multicast hash scratch (8 bytes)
const rtl8029Src = apiEqus + `
.org 0x10000

; ---- RTL8029 register offsets ----
.equ R_CR,    0x00
.equ R_ISR,   0x01
.equ R_IMR,   0x02
.equ R_RCR,   0x03
.equ R_TCR,   0x04
.equ R_TPSR,  0x05
.equ R_TBCRL, 0x06
.equ R_TBCRH, 0x07
.equ R_RSARL, 0x08
.equ R_RSARH, 0x09
.equ R_RBCRL, 0x0A
.equ R_RBCRH, 0x0B
.equ R_BNRY,  0x0C
.equ R_CURR,  0x0D
.equ R_MAR0,  0x10
.equ R_DATA,  0x18

.equ CR_STOP, 1
.equ CR_START, 2
.equ CR_TXP, 4
.equ ISR_PRX, 1
.equ ISR_PTX, 2
.equ ISR_OVW, 8
.equ RCR_PROM, 1
.equ RCR_AM, 2
.equ TCR_FDX, 1
.equ RX_FIRST_PAGE, 0x46
.equ RX_LAST_PAGE, 0x80
.equ TX_PAGE, 0x40

; ================= DriverEntry =================
; Registers the miniport characteristics table with NDIS.
.func DriverEntry
	movi r1, chars
	movi r2, mp_initialize
	st32 [r1+0], r2
	movi r2, mp_send
	st32 [r1+4], r2
	movi r2, mp_isr
	st32 [r1+8], r2
	movi r2, mp_query
	st32 [r1+12], r2
	movi r2, mp_set
	st32 [r1+16], r2
	movi r2, mp_halt
	st32 [r1+20], r2
	push r1
	call NdisMRegisterMiniport
	movi r0, #STATUS_SUCCESS
	ret

; ================= MiniportInitialize =================
; Allocates the adapter context, probes the chip, reads the station
; address from the PROM, and brings the receiver online.
; returns ctx in r0, or 0 on failure.
.func mp_initialize
	movi r1, #0x40
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail_nomem
	mov  r4, r0              ; r4 = ctx
	; PCI config: I/O base and IRQ.
	movi r1, #PCI_CFG_IOBASE
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x00], r0
	movi r1, #PCI_CFG_IRQ
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x04], r0
	; Probe for the chip.
	ld32 r1, [r4+0x00]
	push r1
	call ne2k_presence
	beq  r0, #0, init_present
	; Device absent: log and fail.
	movi r1, #0xDEAD0001
	push r1
	call NdisWriteErrorLogEntry
	push r4
	call NdisFreeMemory
	movi r0, #0
	ret
init_present:
	push r4
	call ne2k_reset
	push r4
	call ne2k_read_mac
	; RX staging buffer.
	movi r1, #1536
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail_nomem
	st32 [r4+0x20], r0
	; Ring pointers: read side starts at the first RX page.
	ld32 r1, [r4+0x00]
	movi r2, #RX_FIRST_PAGE
	out8 (r1+R_BNRY), r2
	st32 [r4+0x10], r2
	; Clear pending interrupts, unmask PRX/PTX/OVW.
	movi r2, #0xFF
	out8 (r1+R_ISR), r2
	movi r2, #11            ; ISR_PRX|ISR_PTX|ISR_OVW
	out8 (r1+R_IMR), r2
	; Half duplex default.
	movi r2, #0
	out8 (r1+R_TCR), r2
	; Start the chip.
	push r4
	call ne2k_start
	movi r2, #1
	st32 [r4+0x08], r2
	mov  r0, r4
	ret
init_fail_nomem:
	movi r1, #0xDEAD0002
	push r1
	call NdisWriteErrorLogEntry
	movi r0, #0
	ret

; ================= hardware helpers (type 1) =================
; ne2k_presence(iobase): 0 if the chip responds, 1 otherwise.
.func ne2k_presence
	ld32 r1, [sp+4]
	in8  r2, (r1+R_CR)
	movi r3, #0xFF
	beq  r2, r3, presence_no
	movi r0, #0
	ret 4
presence_no:
	movi r0, #1
	ret 4

; ne2k_reset(ctx): stop the chip and ack all interrupts.
.func ne2k_reset
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #CR_STOP
	out8 (r1+R_CR), r2
	movi r2, #0xFF
	out8 (r1+R_ISR), r2
	movi r2, #0
	out8 (r1+R_IMR), r2
	ret 4

; ne2k_start(ctx): start RX/TX.
.func ne2k_start
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #CR_START
	out8 (r1+R_CR), r2
	ret 4

; ne2k_stop(ctx).
.func ne2k_stop
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #CR_STOP
	out8 (r1+R_CR), r2
	ret 4

; ne2k_setup_remote(iobase, addr, count): program the remote DMA
; engine. This tiny address/count helper is called before every
; data-port transfer.
.func ne2k_setup_remote
	ld32 r1, [sp+4]
	ld32 r2, [sp+8]
	ld32 r3, [sp+12]
	out8 (r1+R_RSARL), r2
	shr  r2, r2, #8
	out8 (r1+R_RSARH), r2
	out8 (r1+R_RBCRL), r3
	shr  r3, r3, #8
	out8 (r1+R_RBCRH), r3
	ret 12

; ne2k_read_mac(ctx): read 6 PROM bytes via remote DMA into the
; context.
.func ne2k_read_mac
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #6
	push r2
	movi r2, #0
	push r2
	push r1
	call ne2k_setup_remote
	movi r3, #0            ; i
mac_loop:
	in8  r2, (r1+R_DATA)
	add  r5, r4, r3
	st8  [r5+0x14], r2
	add  r3, r3, #1
	movi r6, #6
	bltu r3, r6, mac_loop
	ret 4

; ================= MiniportSend =================
; mp_send(ctx, buf, len): copy the frame into the transmit area via
; the remote DMA data port, then kick the transmitter.
.func mp_send
	ld32 r4, [sp+4]
	ld32 r5, [sp+8]
	ld32 r6, [sp+12]
	; Boundary checks: runts and giants are rejected.
	movi r1, #14
	bltu r6, r1, send_bad
	movi r1, #1514
	bgeu r1, r6, send_size_ok
send_bad:
	movi r1, #0xDEAD0003
	push r1
	call NdisWriteErrorLogEntry
	movi r0, #STATUS_FAILURE
	ret 12
send_size_ok:
	ld32 r1, [r4+0x00]
	; Remote write to the TX area at page TX_PAGE.
	push r6
	movi r2, #0x4000       ; TX_PAGE << 8
	push r2
	push r1
	call ne2k_setup_remote
	movi r3, #0            ; i
send_copy:
	bgeu r3, r6, send_copied
	add  r2, r5, r3
	ld8  r2, [r2+0]
	out8 (r1+R_DATA), r2
	add  r3, r3, #1
	jmp  send_copy
send_copied:
	push r6
	push r4
	call ne2k_tx_kick
	ld32 r2, [r4+0x24]
	add  r2, r2, #1
	st32 [r4+0x24], r2
	movi r0, #STATUS_SUCCESS
	ret 12

; ne2k_tx_kick(ctx, len): program TPSR/TBCR and set TXP.
.func ne2k_tx_kick
	ld32 r4, [sp+4]
	ld32 r3, [sp+8]
	ld32 r1, [r4+0x00]
	movi r2, #TX_PAGE
	out8 (r1+R_TPSR), r2
	out8 (r1+R_TBCRL), r3
	shr  r2, r3, #8
	out8 (r1+R_TBCRH), r2
	movi r2, #6            ; CR_START|CR_TXP
	out8 (r1+R_CR), r2
	ret 8

; ================= MiniportISR =================
; mp_isr(ctx): read and dispatch interrupt causes.
.func mp_isr
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	in8  r2, (r1+R_ISR)
	beq  r2, #0, isr_done
	; Transmit complete?
	and  r3, r2, #ISR_PTX
	beq  r3, #0, isr_no_tx
	movi r3, #ISR_PTX
	out8 (r1+R_ISR), r3    ; ack
	movi r3, #STATUS_SUCCESS
	push r3
	call NdisMSendComplete
isr_no_tx:
	; Packets received?
	and  r3, r2, #ISR_PRX
	beq  r3, #0, isr_no_rx
	push r2                ; drain clobbers the cause bits
	push r4
	call ne2k_recv_drain
	pop  r2
	ld32 r1, [r4+0x00]
	movi r3, #ISR_PRX
	out8 (r1+R_ISR), r3    ; ack
isr_no_rx:
	; Ring overflow?
	and  r3, r2, #ISR_OVW
	beq  r3, #0, isr_done
	movi r3, #ISR_OVW
	out8 (r1+R_ISR), r3
	movi r3, #0xDEAD0004
	push r3
	call NdisWriteErrorLogEntry
isr_done:
	ret 4

; ne2k_recv_drain(ctx): walk the receive ring from the BNRY mirror to
; CURR, indicating each frame up the stack (a type 3 function: it
; mixes hardware access with OS calls).
.func ne2k_recv_drain
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
drain_loop:
	in8  r2, (r1+R_CURR)
	ld32 r3, [r4+0x10]     ; read page mirror
	beq  r3, r2, drain_done
	; Read the 4-byte ring header at page r3.
	movi r5, #4
	push r5
	shl  r5, r3, #8
	push r5
	push r1
	call ne2k_setup_remote
	in8  r5, (r1+R_DATA)   ; status (ignored)
	in8  r5, (r1+R_DATA)   ; next page
	in8  r2, (r1+R_DATA)   ; len low
	in8  r6, (r1+R_DATA)   ; len high
	shl  r6, r6, #8
	or   r6, r6, r2        ; total length incl header
	sub  r6, r6, #4        ; frame length
	; Copy the frame into the staging buffer.
	ld32 r2, [r4+0x20]
	movi r3, #0
drain_copy:
	bgeu r3, r6, drain_copied
	in8  r0, (r1+R_DATA)
	push r5
	add  r5, r2, r3
	st8  [r5+0], r0
	pop  r5
	add  r3, r3, #1
	jmp  drain_copy
drain_copied:
	; Advance the read page and indicate the frame.
	st32 [r4+0x10], r5
	out8 (r1+R_BNRY), r5
	push r6
	push r2
	call NdisMIndicateReceivePacket
	ld32 r2, [r4+0x28]
	add  r2, r2, #1
	st32 [r4+0x28], r2
	jmp  drain_loop
drain_done:
	ret 4

; ================= MiniportQueryInformation =================
; mp_query(ctx, oid, buf, len).
.func mp_query
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	movi r3, #OID_MAC_ADDRESS
	beq  r1, r3, q_mac
	movi r3, #OID_LINK_SPEED
	beq  r1, r3, q_speed
	movi r3, #OID_MEDIA_STATUS
	beq  r1, r3, q_media
	movi r0, #STATUS_FAILURE
	ret 16
q_mac:
	movi r3, #0
q_mac_loop:
	add  r5, r4, r3
	ld8  r5, [r5+0x14]
	add  r6, r2, r3
	st8  [r6+0], r5
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, q_mac_loop
	movi r0, #STATUS_SUCCESS
	ret 16
q_speed:
	movi r3, #10           ; 10 Mbps
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16
q_media:
	movi r3, #1            ; connected
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16

; ================= MiniportSetInformation =================
; mp_set(ctx, oid, buf, len).
.func mp_set
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	ld32 r3, [sp+16]
	movi r5, #OID_PACKET_FILTER
	beq  r1, r5, s_filter
	movi r5, #OID_MULTICAST
	beq  r1, r5, s_mcast
	movi r5, #OID_FULL_DUPLEX
	beq  r1, r5, s_duplex
	movi r0, #STATUS_FAILURE
	ret 16
s_filter:
	ld32 r2, [r2+0]
	st32 [r4+0x0C], r2
	movi r5, #0            ; rcr value
	and  r6, r2, #FILTER_PROMISCUOUS
	beq  r6, #0, f_noprom
	or   r5, r5, #RCR_PROM
f_noprom:
	and  r6, r2, #FILTER_MULTICAST
	beq  r6, #0, f_nomc
	or   r5, r5, #RCR_AM
f_nomc:
	ld32 r1, [r4+0x00]
	out8 (r1+R_RCR), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_duplex:
	ld8  r2, [r2+0]
	ld32 r1, [r4+0x00]
	movi r5, #0
	beq  r2, #0, d_write
	movi r5, #TCR_FDX
d_write:
	out8 (r1+R_TCR), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_mcast:
	; Build the 64-bit multicast hash in the context scratch area,
	; then write MAR0..MAR7. CRC-32 hashing is an OS-independent
	; algorithm (a type 4 function in the paper's taxonomy).
	movi r5, #0
mc_clear:
	add  r6, r4, r5
	movi r1, #0
	st8  [r6+0x30], r1
	add  r5, r5, #1
	movi r1, #8
	bltu r5, r1, mc_clear
	movi r5, #0            ; byte offset into the MAC list
mc_each:
	bgeu r5, r3, mc_write
	push r2
	push r3
	push r5
	add  r1, r2, r5
	push r1
	call crc32_hash        ; r0 = hash bit index 0..63
	pop  r5
	pop  r3
	pop  r2
	shr  r1, r0, #3        ; byte
	and  r6, r0, #7        ; bit
	movi r0, #1
	shl  r0, r0, r6
	add  r6, r4, r1
	ld8  r1, [r6+0x30]
	or   r1, r1, r0
	st8  [r6+0x30], r1
	add  r5, r5, #6
	jmp  mc_each
mc_write:
	ld32 r1, [r4+0x00]
	add  r1, r1, #R_MAR0
	movi r5, #0
mc_out:
	add  r6, r4, r5
	ld8  r6, [r6+0x30]
	add  r2, r1, r5
	out8 (r2+0), r6
	add  r5, r5, #1
	movi r6, #8
	bltu r5, r6, mc_out
	movi r0, #STATUS_SUCCESS
	ret 16

; crc32_hash(macptr): CRC-32 (IEEE, reflected) of 6 bytes, returning
; the standard Ethernet multicast hash index (top 6 bits of the
; complemented CRC).
.func crc32_hash
	ld32 r1, [sp+4]
	movi r2, #0
	sub  r2, r2, #1        ; crc = 0xFFFFFFFF
	movi r3, #0            ; i
crc_byte:
	add  r5, r1, r3
	ld8  r5, [r5+0]
	xor  r2, r2, r5
	movi r6, #0            ; bit
crc_bit:
	and  r5, r2, #1
	shr  r2, r2, #1
	beq  r5, #0, crc_nopoly
	movi r5, #0xEDB88320
	xor  r2, r2, r5
crc_nopoly:
	add  r6, r6, #1
	movi r5, #8
	bltu r6, r5, crc_bit
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, crc_byte
	movi r5, #0
	sub  r5, r5, #1
	xor  r2, r2, r5        ; final complement
	shr  r0, r2, #26
	ret 4

; ================= MiniportHalt =================
.func mp_halt
	ld32 r4, [sp+4]
	push r4
	call ne2k_stop
	ld32 r1, [r4+0x00]
	movi r2, #0
	out8 (r1+R_IMR), r2
	st32 [r4+0x08], r2
	ret 4

; ---- driver data ----
.align 8
chars:
	.space 24
`
