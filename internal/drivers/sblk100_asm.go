package drivers

// sblk100Src is the "proprietary" SBLK100 block-controller driver —
// the corpus entry beyond the four NICs. The register protocol is
// ATA-flavoured (command/status, LBA register file, sector count, a
// 16-bit data window with an internal auto-incrementing pointer):
// outbound payloads are streamed as WRITE_BEGIN / data / WRITE_COMMIT
// blocks addressed by a software-managed LBA counter, and inbound
// records are drained READ_NEXT / data / READ_DONE from the ISR. The
// driver still registers through the miniport table so the identical
// OS-side harness exercises it.
//
// Adapter context layout:
//
//	+0x00 I/O base   +0x04 IRQ    +0x08 running   +0x0C filter
//	+0x10 serial (6 bytes, doubles as the station address)
//	+0x18 RX staging buffer pointer
//	+0x1C TX block counter (the next LBA)  +0x20 RX counter
const sblk100Src = apiEqus + `
.org 0x10000

; ---- SBLK100 register offsets ----
.equ R_STATUS,  0x00
.equ R_CMD,     0x01
.equ R_SECCNT,  0x02
.equ R_LBA0,    0x04
.equ R_LBA1,    0x05
.equ R_LBA2,    0x06
.equ R_LBA3,    0x07
.equ R_DATA,    0x08
.equ R_IST,     0x0A
.equ R_IMR,     0x0B
.equ R_CTL,     0x0C
.equ R_SCRATCH, 0x0D

.equ ST_READY,   0x01
.equ CMD_IDENT,  0x10
.equ CMD_RDNEXT, 0x20
.equ CMD_RDDONE, 0x21
.equ CMD_WRBEG,  0x30
.equ CMD_WRCOM,  0x31
.equ INT_WRDONE, 0x01
.equ INT_RDRDY,  0x02
.equ INT_ERR,    0x04

; ================= DriverEntry =================
.func DriverEntry
	movi r1, chars
	movi r2, mp_initialize
	st32 [r1+0], r2
	movi r2, mp_send
	st32 [r1+4], r2
	movi r2, mp_isr
	st32 [r1+8], r2
	movi r2, mp_query
	st32 [r1+12], r2
	movi r2, mp_set
	st32 [r1+16], r2
	movi r2, mp_halt
	st32 [r1+20], r2
	push r1
	call NdisMRegisterMiniport
	movi r0, #STATUS_SUCCESS
	ret

; ================= MiniportInitialize =================
.func mp_initialize
	movi r1, #0x28
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail
	mov  r4, r0
	movi r1, #PCI_CFG_IOBASE
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x00], r0
	movi r1, #PCI_CFG_IRQ
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x04], r0
	; Probe: the scratch register must read back what we wrote.
	ld32 r1, [r4+0x00]
	movi r2, #0xA5
	out8 (r1+R_SCRATCH), r2
	in8  r3, (r1+R_SCRATCH)
	beq  r3, r2, init_ready
	movi r1, #0xDEAD0041
	push r1
	call NdisWriteErrorLogEntry
	jmp  init_fail
init_ready:
	; The controller must report READY.
	in8  r3, (r1+R_STATUS)
	and  r3, r3, #ST_READY
	bne  r3, #0, init_ident
	movi r1, #0xDEAD0042
	push r1
	call NdisWriteErrorLogEntry
	jmp  init_fail
init_ident:
	; IDENTIFY: serial in bytes 0..5, "SBLK" magic at byte 8.
	movi r2, #CMD_IDENT
	out8 (r1+R_CMD), r2
	movi r3, #0
ident_loop:
	in16 r2, (r1+R_DATA)
	add  r5, r4, r3
	st16 [r5+0x10], r2
	add  r3, r3, #2
	movi r5, #6
	bltu r3, r5, ident_loop
	in16 r2, (r1+R_DATA)   ; skip padding bytes 6..7
	in16 r2, (r1+R_DATA)   ; magic bytes 8..9: "SB"
	movi r5, #0x4253
	beq  r2, r5, init_buf
	movi r1, #0xDEAD0043
	push r1
	call NdisWriteErrorLogEntry
	jmp  init_fail
init_buf:
	; Staging buffer for inbound records.
	movi r1, #1536
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail
	st32 [r4+0x18], r0
	; Unmask every interrupt source, then start the controller.
	ld32 r1, [r4+0x00]
	movi r2, #7            ; INT_WRDONE|INT_RDRDY|INT_ERR
	out8 (r1+R_IMR), r2
	movi r2, #1
	out8 (r1+R_CTL), r2
	st32 [r4+0x08], r2
	mov  r0, r4
	ret
init_fail:
	movi r0, #0
	ret

; ================= MiniportSend =================
; mp_send(ctx, buf, len): open a write block, stream the 2-byte
; length header plus the payload through the data port, address the
; block with the running LBA counter, and commit. Completion is
; signalled by the WRITE_DONE interrupt.
.func mp_send
	ld32 r4, [sp+4]
	ld32 r5, [sp+8]
	ld32 r6, [sp+12]
	movi r1, #14
	bltu r6, r1, send_bad
	movi r1, #1514
	bgeu r1, r6, send_ok
send_bad:
	movi r1, #0xDEAD0044
	push r1
	call NdisWriteErrorLogEntry
	movi r0, #STATUS_FAILURE
	ret 12
send_ok:
	ld32 r1, [r4+0x00]
	movi r2, #CMD_WRBEG
	out8 (r1+R_CMD), r2
	out16 (r1+R_DATA), r6  ; length header
	movi r3, #0
send_copy:
	bgeu r3, r6, send_copied
	add  r2, r5, r3
	ld16 r2, [r2+0]
	out16 (r1+R_DATA), r2
	add  r3, r3, #2
	jmp  send_copy
send_copied:
	; Address the block: LBA = running block counter, byte by byte.
	ld32 r2, [r4+0x1C]
	out8 (r1+R_LBA0), r2
	shr  r2, r2, #8
	out8 (r1+R_LBA1), r2
	shr  r2, r2, #8
	out8 (r1+R_LBA2), r2
	shr  r2, r2, #8
	out8 (r1+R_LBA3), r2
	; Sector count: ceil(len / 512).
	add  r2, r6, #511
	shr  r2, r2, #9
	out8 (r1+R_SECCNT), r2
	movi r2, #CMD_WRCOM
	out8 (r1+R_CMD), r2
	ld32 r2, [r4+0x1C]
	add  r2, r2, #1
	st32 [r4+0x1C], r2
	movi r0, #STATUS_SUCCESS
	ret 12

; ================= MiniportISR =================
.func mp_isr
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	in8  r2, (r1+R_IST)
	beq  r2, #0, isr_done
	and  r3, r2, #INT_WRDONE
	beq  r3, #0, isr_no_wr
	movi r3, #INT_WRDONE
	out8 (r1+R_IST), r3
	movi r3, #STATUS_SUCCESS
	push r3
	call NdisMSendComplete
isr_no_wr:
	and  r3, r2, #INT_ERR
	beq  r3, #0, isr_no_err
	movi r3, #INT_ERR
	out8 (r1+R_IST), r3
	movi r3, #0xDEAD0045
	push r3
	call NdisWriteErrorLogEntry
isr_no_err:
	and  r3, r2, #INT_RDRDY
	beq  r3, #0, isr_done
	push r4
	call sblk_drain
isr_done:
	ret 4

; sblk_drain(ctx): pop every queued inbound record — READ_NEXT loads
; the record behind the data window, the payload streams into the
; staging buffer, READ_DONE releases it (type 3 function).
.func sblk_drain
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
drain_loop:
	in8  r2, (r1+R_IST)
	and  r2, r2, #INT_RDRDY
	beq  r2, #0, drain_done
	movi r2, #CMD_RDNEXT
	out8 (r1+R_CMD), r2
	in16 r6, (r1+R_DATA)   ; record length header
	beq  r6, #0, drain_done
	ld32 r5, [r4+0x18]     ; staging buffer
	movi r3, #0
drain_copy:
	bgeu r3, r6, drain_copied
	in16 r0, (r1+R_DATA)
	add  r2, r5, r3
	st16 [r2+0], r0
	add  r3, r3, #2
	jmp  drain_copy
drain_copied:
	movi r2, #CMD_RDDONE
	out8 (r1+R_CMD), r2
	push r6
	push r5
	call NdisMIndicateReceivePacket
	ld32 r2, [r4+0x20]
	add  r2, r2, #1
	st32 [r4+0x20], r2
	jmp  drain_loop
drain_done:
	ret 4

; ================= MiniportQueryInformation =================
.func mp_query
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	movi r3, #OID_MAC_ADDRESS
	beq  r1, r3, q_serial
	movi r3, #OID_LINK_SPEED
	beq  r1, r3, q_speed
	movi r3, #OID_MEDIA_STATUS
	beq  r1, r3, q_media
	movi r0, #STATUS_FAILURE
	ret 16
q_serial:
	movi r3, #0
q_serial_loop:
	add  r5, r4, r3
	ld8  r5, [r5+0x10]
	add  r6, r2, r3
	st8  [r6+0], r5
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, q_serial_loop
	movi r0, #STATUS_SUCCESS
	ret 16
q_speed:
	movi r3, #100
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16
q_media:
	movi r3, #1
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16

; ================= MiniportSetInformation =================
; Only the packet filter is meaningful; a block controller has no
; multicast/duplex/LED machinery, so everything else fails cleanly.
.func mp_set
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	movi r5, #OID_PACKET_FILTER
	beq  r1, r5, s_filter
	movi r0, #STATUS_FAILURE
	ret 16
s_filter:
	ld32 r2, [r2+0]
	st32 [r4+0x0C], r2
	ld32 r1, [r4+0x00]
	out8 (r1+R_SCRATCH), r2
	movi r0, #STATUS_SUCCESS
	ret 16

; ================= MiniportHalt =================
.func mp_halt
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #0
	out8 (r1+R_CTL), r2
	out8 (r1+R_IMR), r2
	st32 [r4+0x08], r2
	ret 4

.align 8
chars:
	.space 24
`
