package drivers

// rtl8139Src is the "proprietary" RTL8139 driver: bus-master DMA with
// four transmit descriptors and a host-memory receive ring.
//
// Adapter context layout:
//
//	+0x00 I/O base      +0x04 IRQ         +0x08 running flag
//	+0x0C packet filter +0x10 TX descriptor index
//	+0x14 station MAC (6 bytes)
//	+0x20 RX ring physical address (DMA)
//	+0x24 TX buffer area physical address (DMA, 4 x 2 KB)
//	+0x28 CAPR mirror   +0x2C TX counter  +0x30 RX counter
//	+0x34 multicast hash scratch (8 bytes)
//	+0x3C RX staging buffer pointer
const rtl8139Src = apiEqus + `
.org 0x10000

; ---- RTL8139 register offsets ----
.equ R_IDR0,    0x00
.equ R_MAR0,    0x08
.equ R_TSD0,    0x10
.equ R_TSAD0,   0x20
.equ R_RBSTART, 0x30
.equ R_CR,      0x37
.equ R_CAPR,    0x38
.equ R_IMR,     0x3C
.equ R_INTST,   0x3E
.equ R_TCR,     0x40
.equ R_RCR,     0x44
.equ R_CONFIG1, 0x52
.equ R_MSR,     0x58

.equ CR_BUFE,  0x01
.equ CR_TE,    0x04
.equ CR_RE,    0x08
.equ CR_RST,   0x10
.equ INT_ROK,  0x01
.equ INT_TOK,  0x04
.equ RCR_AAP,  0x01
.equ RCR_AM,   0x04
.equ RCR_AB,   0x08
.equ CFG1_PMEN, 0x01
.equ CFG1_LED0, 0x10
.equ MSR_FDX,  0x01

; ================= DriverEntry =================
.func DriverEntry
	movi r1, chars
	movi r2, mp_initialize
	st32 [r1+0], r2
	movi r2, mp_send
	st32 [r1+4], r2
	movi r2, mp_isr
	st32 [r1+8], r2
	movi r2, mp_query
	st32 [r1+12], r2
	movi r2, mp_set
	st32 [r1+16], r2
	movi r2, mp_halt
	st32 [r1+20], r2
	push r1
	call NdisMRegisterMiniport
	movi r0, #STATUS_SUCCESS
	ret

; ================= MiniportInitialize =================
.func mp_initialize
	movi r1, #0x48
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail
	mov  r4, r0
	movi r1, #PCI_CFG_IOBASE
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x00], r0
	movi r1, #PCI_CFG_IRQ
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x04], r0
	; Probe: an absent device reads as open bus.
	ld32 r1, [r4+0x00]
	in8  r2, (r1+R_CR)
	movi r3, #0xFF
	beq  r2, r3, init_nodev
	; Soft reset, then poll until the RST bit self-clears (a classic
	; polling loop for the state-killing heuristic to chew on).
	push r4
	call rtl_reset
	beq  r0, #0, init_reset_ok
	movi r1, #0xDEAD0011
	push r1
	call NdisWriteErrorLogEntry
	jmp  init_fail
init_reset_ok:
	; Station address from IDR.
	push r4
	call rtl_read_mac
	; DMA memory: RX ring (8 KB + WRAP-mode slack), TX staging
	; (4 x 2 KB).
	movi r1, #10256
	push r1
	call NdisMAllocateSharedMemory
	beq  r0, #0, init_fail
	st32 [r4+0x20], r0
	movi r1, #8192
	push r1
	call NdisMAllocateSharedMemory
	beq  r0, #0, init_fail
	st32 [r4+0x24], r0
	movi r1, #1536
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail
	st32 [r4+0x3C], r0
	; Program the ring, unmask interrupts, enable RX/TX.
	ld32 r1, [r4+0x00]
	ld32 r2, [r4+0x20]
	out32 (r1+R_RBSTART), r2
	movi r2, #0
	st32 [r4+0x28], r2
	out16 (r1+R_CAPR), r2
	st32 [r4+0x10], r2
	movi r2, #5            ; INT_ROK|INT_TOK
	out16 (r1+R_IMR), r2
	movi r2, #RCR_AB
	out32 (r1+R_RCR), r2
	movi r2, #12           ; CR_TE|CR_RE
	out8  (r1+R_CR), r2
	; Link-watch timer drives the activity LED.
	movi r1, mp_timer
	push r1
	call NdisMInitializeTimer
	movi r1, #100
	push r1
	call NdisMSetTimer
	movi r2, #1
	st32 [r4+0x08], r2
	mov  r0, r4
	ret
init_nodev:
	movi r1, #0xDEAD0010
	push r1
	call NdisWriteErrorLogEntry
init_fail:
	movi r0, #0
	ret

; rtl_reset(ctx): pulse RST and wait for it to clear; returns 0 on
; success, 1 if the bit never cleared.
.func rtl_reset
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #CR_RST
	out8 (r1+R_CR), r2
	movi r3, #0            ; spin budget
reset_poll:
	in8  r2, (r1+R_CR)
	and  r2, r2, #CR_RST
	beq  r2, #0, reset_done
	add  r3, r3, #1
	movi r2, #1000
	bltu r3, r2, reset_poll
	movi r0, #1
	ret 4
reset_done:
	movi r0, #0
	ret 4

; rtl_read_mac(ctx): IDR0..IDR5 into the context.
.func rtl_read_mac
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r3, #0
rmac_loop:
	add  r2, r1, r3
	in8  r2, (r2+R_IDR0)
	add  r5, r4, r3
	st8  [r5+0x14], r2
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, rmac_loop
	ret 4

; ================= MiniportSend =================
; mp_send(ctx, buf, len): copy into the per-descriptor DMA staging
; area, then hand the descriptor to the chip.
.func mp_send
	ld32 r4, [sp+4]
	ld32 r5, [sp+8]
	ld32 r6, [sp+12]
	movi r1, #14
	bltu r6, r1, send_bad
	movi r1, #1514
	bgeu r1, r6, send_ok
send_bad:
	movi r1, #0xDEAD0012
	push r1
	call NdisWriteErrorLogEntry
	movi r0, #STATUS_FAILURE
	ret 12
send_ok:
	; staging = txarea + idx*2048
	ld32 r2, [r4+0x10]
	shl  r3, r2, #11
	ld32 r1, [r4+0x24]
	add  r1, r1, r3        ; r1 = staging phys
	movi r3, #0
send_copy:
	bgeu r3, r6, send_copied
	add  r0, r5, r3
	ld8  r0, [r0+0]
	add  r2, r1, r3
	st8  [r2+0], r0
	add  r3, r3, #1
	jmp  send_copy
send_copied:
	; TSAD[idx] = staging, TSD[idx] = len (OWN clear starts DMA).
	ld32 r2, [r4+0x10]
	shl  r3, r2, #2
	ld32 r0, [r4+0x00]
	add  r0, r0, r3
	out32 (r0+R_TSAD0), r1
	out32 (r0+R_TSD0), r6
	; idx = (idx + 1) & 3
	add  r2, r2, #1
	and  r2, r2, #3
	st32 [r4+0x10], r2
	ld32 r2, [r4+0x2C]
	add  r2, r2, #1
	st32 [r4+0x2C], r2
	movi r0, #STATUS_SUCCESS
	ret 12

; ================= MiniportISR =================
.func mp_isr
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	in16 r2, (r1+R_INTST)
	beq  r2, #0, isr_done
	and  r3, r2, #INT_TOK
	beq  r3, #0, isr_no_tx
	movi r3, #INT_TOK
	out16 (r1+R_INTST), r3
	movi r3, #STATUS_SUCCESS
	push r3
	call NdisMSendComplete
isr_no_tx:
	and  r3, r2, #INT_ROK
	beq  r3, #0, isr_done
	push r2
	push r4
	call rtl_rx_drain
	pop  r2
	ld32 r1, [r4+0x00]
	movi r3, #INT_ROK
	out16 (r1+R_INTST), r3
isr_done:
	ret 4

; rtl_rx_drain(ctx): consume ring entries until the chip reports an
; empty buffer (type 3: hardware access mixed with OS upcalls).
.func rtl_rx_drain
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
rxd_loop:
	in8  r2, (r1+R_CR)
	and  r2, r2, #CR_BUFE
	bne  r2, #0, rxd_done
	; Header at ring+capr: status u16, total length u16 (incl. 4).
	; WRAP mode guarantees the frame is contiguous after the header.
	ld32 r2, [r4+0x20]     ; ring base
	ld32 r3, [r4+0x28]     ; capr mirror
	add  r5, r2, r3
	ld16 r6, [r5+2]        ; total length
	sub  r6, r6, #4        ; frame length
	; Copy the frame into the staging buffer.
	ld32 r0, [r4+0x3C]
	push r0                ; staging base, kept for the indicate
	add  r3, r5, #4        ; source = ring+capr+4
	movi r5, #0            ; i
rxd_copy:
	bgeu r5, r6, rxd_copied
	add  r0, r3, r5
	ld8  r0, [r0+0]
	ld32 r2, [sp+0]        ; staging base
	add  r2, r2, r5
	st8  [r2+0], r0
	add  r5, r5, #1
	jmp  rxd_copy
rxd_copied:
	; capr = (capr + 4 + len + 3) & ~3, modulo ring size.
	ld32 r3, [r4+0x28]
	add  r3, r3, r6
	add  r3, r3, #7
	movi r2, #0xFFFFFFFC
	and  r3, r3, r2
	movi r2, #0x1FFF
	and  r3, r3, r2
	st32 [r4+0x28], r3
	ld32 r1, [r4+0x00]
	out16 (r1+R_CAPR), r3
	; Indicate the staged frame.
	pop  r2                ; staging base
	push r6
	push r2
	call NdisMIndicateReceivePacket
	ld32 r2, [r4+0x30]
	add  r2, r2, #1
	st32 [r4+0x30], r2
	ld32 r1, [r4+0x00]
	jmp  rxd_loop
rxd_done:
	ret 4

; ================= MiniportQueryInformation =================
.func mp_query
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	movi r3, #OID_MAC_ADDRESS
	beq  r1, r3, q_mac
	movi r3, #OID_LINK_SPEED
	beq  r1, r3, q_speed
	movi r3, #OID_MEDIA_STATUS
	beq  r1, r3, q_media
	movi r0, #STATUS_FAILURE
	ret 16
q_mac:
	movi r3, #0
q_mac_loop:
	add  r5, r4, r3
	ld8  r5, [r5+0x14]
	add  r6, r2, r3
	st8  [r6+0], r5
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, q_mac_loop
	movi r0, #STATUS_SUCCESS
	ret 16
q_speed:
	movi r3, #100
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16
q_media:
	; Read link state from the media status register.
	ld32 r1, [r4+0x00]
	in8  r3, (r1+R_MSR)
	movi r3, #1
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16

; ================= MiniportSetInformation =================
.func mp_set
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	ld32 r3, [sp+16]
	movi r5, #OID_PACKET_FILTER
	beq  r1, r5, s_filter
	movi r5, #OID_MULTICAST
	beq  r1, r5, s_mcast
	movi r5, #OID_FULL_DUPLEX
	beq  r1, r5, s_duplex
	movi r5, #OID_WOL
	beq  r1, r5, s_wol
	movi r5, #OID_LED
	beq  r1, r5, s_led
	movi r0, #STATUS_FAILURE
	ret 16
s_filter:
	ld32 r2, [r2+0]
	st32 [r4+0x0C], r2
	movi r5, #RCR_AB       ; always accept broadcast
	and  r6, r2, #FILTER_PROMISCUOUS
	beq  r6, #0, f_noprom
	or   r5, r5, #RCR_AAP
f_noprom:
	and  r6, r2, #FILTER_MULTICAST
	beq  r6, #0, f_nomc
	or   r5, r5, #RCR_AM
f_nomc:
	ld32 r1, [r4+0x00]
	out32 (r1+R_RCR), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_duplex:
	ld8  r2, [r2+0]
	ld32 r1, [r4+0x00]
	in8  r5, (r1+R_MSR)
	movi r6, #0xFE
	and  r5, r5, r6
	beq  r2, #0, d_write
	or   r5, r5, #MSR_FDX
d_write:
	out8 (r1+R_MSR), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_wol:
	ld8  r2, [r2+0]
	ld32 r1, [r4+0x00]
	in8  r5, (r1+R_CONFIG1)
	movi r6, #0xFE
	and  r5, r5, r6
	beq  r2, #0, w_write
	or   r5, r5, #CFG1_PMEN
w_write:
	out8 (r1+R_CONFIG1), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_led:
	ld8  r2, [r2+0]
	ld32 r1, [r4+0x00]
	in8  r5, (r1+R_CONFIG1)
	movi r6, #0xEF
	and  r5, r5, r6
	beq  r2, #0, l_write
	or   r5, r5, #CFG1_LED0
l_write:
	out8 (r1+R_CONFIG1), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_mcast:
	; Build and program the 64-bit hash (MAR0..7).
	movi r5, #0
smc_clear:
	add  r6, r4, r5
	movi r1, #0
	st8  [r6+0x34], r1
	add  r5, r5, #1
	movi r1, #8
	bltu r5, r1, smc_clear
	movi r5, #0
smc_each:
	bgeu r5, r3, smc_write
	push r2
	push r3
	push r5
	add  r1, r2, r5
	push r1
	call crc32_hash
	pop  r5
	pop  r3
	pop  r2
	shr  r1, r0, #3
	and  r6, r0, #7
	movi r0, #1
	shl  r0, r0, r6
	add  r6, r4, r1
	ld8  r1, [r6+0x34]
	or   r1, r1, r0
	st8  [r6+0x34], r1
	add  r5, r5, #6
	jmp  smc_each
smc_write:
	ld32 r1, [r4+0x00]
	add  r1, r1, #R_MAR0
	movi r5, #0
smc_out:
	add  r6, r4, r5
	ld8  r6, [r6+0x34]
	add  r2, r1, r5
	out8 (r2+0), r6
	add  r5, r5, #1
	movi r6, #8
	bltu r5, r6, smc_out
	movi r0, #STATUS_SUCCESS
	ret 16

; crc32_hash(macptr): shared CRC-32 multicast hash (type 4 function).
.func crc32_hash
	ld32 r1, [sp+4]
	movi r2, #0
	sub  r2, r2, #1
	movi r3, #0
crc_byte:
	add  r5, r1, r3
	ld8  r5, [r5+0]
	xor  r2, r2, r5
	movi r6, #0
crc_bit:
	and  r5, r2, #1
	shr  r2, r2, #1
	beq  r5, #0, crc_nopoly
	movi r5, #0xEDB88320
	xor  r2, r2, r5
crc_nopoly:
	add  r6, r6, #1
	movi r5, #8
	bltu r6, r5, crc_bit
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, crc_byte
	movi r5, #0
	sub  r5, r5, #1
	xor  r2, r2, r5
	shr  r0, r2, #26
	ret 4

; ================= timer: link watch / activity LED =================
; mp_timer(ctx): reads the media status and mirrors link state onto
; the LED bit in CONFIG1.
.func mp_timer
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	in8  r2, (r1+R_MSR)
	in8  r5, (r1+R_CONFIG1)
	movi r6, #0xEF
	and  r5, r5, r6
	and  r2, r2, #MSR_FDX
	beq  r2, #0, t_write
	or   r5, r5, #CFG1_LED0
t_write:
	out8 (r1+R_CONFIG1), r5
	ret 4

; ================= MiniportHalt =================
.func mp_halt
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #0
	out16 (r1+R_IMR), r2
	out8  (r1+R_CR), r2
	st32  [r4+0x08], r2
	ret 4

.align 8
chars:
	.space 24
`
