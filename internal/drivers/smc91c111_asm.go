package drivers

// smc91c111Src is the "proprietary" SMSC 91C111 driver: bank-switched
// registers, MMU-managed on-chip packet buffers, and no DMA — the
// driver moves every byte through the data port, which is what makes
// this chip viable on the FPGA platform of §5.3.
//
// Adapter context layout:
//
//	+0x00 I/O base   +0x04 IRQ    +0x08 running   +0x0C filter
//	+0x10 station MAC (6 bytes)
//	+0x18 RX staging buffer pointer
//	+0x1C TX counter  +0x20 RX counter
//	+0x24 multicast hash scratch (8 bytes)
const smc91c111Src = apiEqus + `
.org 0x10000

; ---- 91C111 register offsets (per bank) ----
.equ R_BSR,    0x0E
.equ R_TCR,    0x00
.equ R_RCRX,   0x02
.equ R_IAR0,   0x00
.equ R_CONFIG, 0x06
.equ R_MMUCR,  0x00
.equ R_PNR,    0x02
.equ R_FIFO,   0x04
.equ R_PTR,    0x06
.equ R_DATA,   0x08
.equ R_IST,    0x0A
.equ R_MSK,    0x0C
.equ R_MT0,    0x00

.equ TCR_TXEN, 0x01
.equ TCR_FDX,  0x80
.equ RCR_RXEN, 0x01
.equ RCR_PRMS, 0x02
.equ CFG_LEDA, 0x01
.equ MMU_ALLOC,  1
.equ MMU_RESET,  2
.equ MMU_ENQ,    4
.equ MMU_RMRX,   5
.equ INT_RCV,    0x01
.equ INT_TXDONE, 0x02
.equ INT_ALLOC,  0x08

; ================= DriverEntry =================
.func DriverEntry
	movi r1, chars
	movi r2, mp_initialize
	st32 [r1+0], r2
	movi r2, mp_send
	st32 [r1+4], r2
	movi r2, mp_isr
	st32 [r1+8], r2
	movi r2, mp_query
	st32 [r1+12], r2
	movi r2, mp_set
	st32 [r1+16], r2
	movi r2, mp_halt
	st32 [r1+20], r2
	push r1
	call NdisMRegisterMiniport
	movi r0, #STATUS_SUCCESS
	ret

; s91_bank(iobase, n): select a register bank (type 1 helper; called
; before nearly every hardware access).
.func s91_bank
	ld32 r1, [sp+4]
	ld32 r2, [sp+8]
	out8 (r1+R_BSR), r2
	ret 8

; ================= MiniportInitialize =================
.func mp_initialize
	movi r1, #0x30
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail
	mov  r4, r0
	movi r1, #PCI_CFG_IOBASE
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x00], r0
	movi r1, #PCI_CFG_IRQ
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0x04], r0
	; Probe: the bank select register must read back what we wrote.
	ld32 r1, [r4+0x00]
	movi r2, #2
	out8 (r1+R_BSR), r2
	in8  r3, (r1+R_BSR)
	beq  r3, r2, init_present
	movi r1, #0xDEAD0031
	push r1
	call NdisWriteErrorLogEntry
	jmp  init_fail
init_present:
	; MMU reset (bank 2 already selected).
	movi r2, #MMU_RESET
	out16 (r1+R_MMUCR), r2
	; Station MAC from bank 1.
	movi r2, #1
	push r2
	push r1
	call s91_bank
	movi r3, #0
iar_loop:
	add  r2, r1, r3
	in8  r2, (r2+R_IAR0)
	add  r5, r4, r3
	st8  [r5+0x10], r2
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, iar_loop
	; Staging buffer for receives.
	movi r1, #1536
	push r1
	call NdisAllocateMemory
	beq  r0, #0, init_fail
	st32 [r4+0x18], r0
	; Enable TX and RX in bank 0.
	ld32 r1, [r4+0x00]
	movi r2, #0
	push r2
	push r1
	call s91_bank
	movi r2, #TCR_TXEN
	out16 (r1+R_TCR), r2
	movi r2, #RCR_RXEN
	out16 (r1+R_RCRX), r2
	; Unmask RX/TX interrupts in bank 2.
	movi r2, #2
	push r2
	push r1
	call s91_bank
	movi r2, #3            ; INT_RCV|INT_TXDONE
	out8 (r1+R_MSK), r2
	movi r2, #1
	st32 [r4+0x08], r2
	mov  r0, r4
	ret
init_fail:
	movi r0, #0
	ret

; ================= MiniportSend =================
; mp_send(ctx, buf, len): allocate an on-chip packet, stream the frame
; through the data port, enqueue for transmission.
.func mp_send
	ld32 r4, [sp+4]
	ld32 r5, [sp+8]
	ld32 r6, [sp+12]
	movi r1, #14
	bltu r6, r1, send_bad
	movi r1, #1514
	bgeu r1, r6, send_ok
send_bad:
	movi r1, #0xDEAD0032
	push r1
	call NdisWriteErrorLogEntry
	movi r0, #STATUS_FAILURE
	ret 12
send_ok:
	ld32 r1, [r4+0x00]
	movi r2, #2
	push r2
	push r1
	call s91_bank
	; Allocate a packet buffer; poll the allocation-done bit.
	movi r2, #MMU_ALLOC
	out16 (r1+R_MMUCR), r2
	movi r3, #0            ; spin budget
alloc_poll:
	in8  r2, (r1+R_IST)
	and  r2, r2, #INT_ALLOC
	bne  r2, #0, alloc_ok
	add  r3, r3, #1
	movi r2, #1000
	bltu r3, r2, alloc_poll
	movi r1, #0xDEAD0033
	push r1
	call NdisWriteErrorLogEntry
	movi r0, #STATUS_FAILURE
	ret 12
alloc_ok:
	movi r2, #INT_ALLOC    ; ack the allocation interrupt bit
	out8 (r1+R_IST), r2
	in8  r2, (r1+R_PNR)
	out8 (r1+R_PNR), r2    ; select the packet for data access
	; Control header: length at offset 0, data from offset 4.
	movi r2, #0
	out16 (r1+R_PTR), r2
	out16 (r1+R_DATA), r6
	movi r2, #4
	out16 (r1+R_PTR), r2
	; Stream the frame through the 16-bit data port, two bytes per
	; transfer like the real chip's drivers (a trailing odd byte is
	; covered by the final 16-bit write; the length header bounds
	; what the MMU transmits).
	movi r3, #0
send_copy:
	bgeu r3, r6, send_copied
	add  r2, r5, r3
	ld16 r2, [r2+0]
	out16 (r1+R_DATA), r2
	add  r3, r3, #2
	jmp  send_copy
send_copied:
	movi r2, #MMU_ENQ
	out16 (r1+R_MMUCR), r2
	ld32 r2, [r4+0x1C]
	add  r2, r2, #1
	st32 [r4+0x1C], r2
	movi r0, #STATUS_SUCCESS
	ret 12

; ================= MiniportISR =================
.func mp_isr
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #2
	push r2
	push r1
	call s91_bank
	in8  r2, (r1+R_IST)
	beq  r2, #0, isr_done
	and  r3, r2, #INT_TXDONE
	beq  r3, #0, isr_no_tx
	movi r3, #INT_TXDONE
	out8 (r1+R_IST), r3
	movi r3, #STATUS_SUCCESS
	push r3
	call NdisMSendComplete
isr_no_tx:
	and  r3, r2, #INT_RCV
	beq  r3, #0, isr_done
	push r4
	call s91_rx_drain
	ld32 r1, [r4+0x00]
isr_done:
	ret 4

; s91_rx_drain(ctx): pop every packet number off the RX FIFO,
; streaming each frame out of the chip through the data port (type 3).
.func s91_rx_drain
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
srx_loop:
	in8  r2, (r1+R_FIFO)
	and  r3, r2, #0x80
	bne  r3, #0, srx_done  ; FIFO empty
	out8 (r1+R_PNR), r2    ; select the packet
	movi r2, #0
	out16 (r1+R_PTR), r2
	in16 r6, (r1+R_DATA)   ; frame length from the control header
	movi r2, #4
	out16 (r1+R_PTR), r2
	ld32 r5, [r4+0x18]     ; staging buffer
	movi r3, #0
srx_copy:
	bgeu r3, r6, srx_copied
	in16 r0, (r1+R_DATA)
	add  r2, r5, r3
	st16 [r2+0], r0
	add  r3, r3, #2
	jmp  srx_copy
srx_copied:
	; Release the chip buffer, then indicate the frame.
	movi r2, #MMU_RMRX
	out16 (r1+R_MMUCR), r2
	push r6
	push r5
	call NdisMIndicateReceivePacket
	ld32 r2, [r4+0x20]
	add  r2, r2, #1
	st32 [r4+0x20], r2
	jmp  srx_loop
srx_done:
	ret 4

; ================= MiniportQueryInformation =================
.func mp_query
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	movi r3, #OID_MAC_ADDRESS
	beq  r1, r3, q_mac
	movi r3, #OID_LINK_SPEED
	beq  r1, r3, q_speed
	movi r3, #OID_MEDIA_STATUS
	beq  r1, r3, q_media
	movi r0, #STATUS_FAILURE
	ret 16
q_mac:
	movi r3, #0
q_mac_loop:
	add  r5, r4, r3
	ld8  r5, [r5+0x10]
	add  r6, r2, r3
	st8  [r6+0], r5
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, q_mac_loop
	movi r0, #STATUS_SUCCESS
	ret 16
q_speed:
	movi r3, #100
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16
q_media:
	movi r3, #1
	st32 [r2+0], r3
	movi r0, #STATUS_SUCCESS
	ret 16

; ================= MiniportSetInformation =================
.func mp_set
	ld32 r4, [sp+4]
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	ld32 r3, [sp+16]
	movi r5, #OID_PACKET_FILTER
	beq  r1, r5, s_filter
	movi r5, #OID_MULTICAST
	beq  r1, r5, s_mcast
	movi r5, #OID_FULL_DUPLEX
	beq  r1, r5, s_duplex
	movi r5, #OID_LED
	beq  r1, r5, s_led
	movi r0, #STATUS_FAILURE
	ret 16
s_filter:
	ld32 r2, [r2+0]
	st32 [r4+0x0C], r2
	ld32 r1, [r4+0x00]
	push r2
	movi r2, #0
	push r2
	push r1
	call s91_bank
	pop  r2
	movi r5, #RCR_RXEN
	and  r6, r2, #FILTER_PROMISCUOUS
	beq  r6, #0, f_write
	or   r5, r5, #RCR_PRMS
f_write:
	out16 (r1+R_RCRX), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_duplex:
	ld8  r2, [r2+0]
	ld32 r1, [r4+0x00]
	push r2
	movi r2, #0
	push r2
	push r1
	call s91_bank
	pop  r2
	in16 r5, (r1+R_TCR)
	movi r6, #0xFF7F
	and  r5, r5, r6
	beq  r2, #0, d_write
	or   r5, r5, #TCR_FDX
d_write:
	out16 (r1+R_TCR), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_led:
	ld8  r2, [r2+0]
	ld32 r1, [r4+0x00]
	push r2
	movi r2, #1
	push r2
	push r1
	call s91_bank
	pop  r2
	in16 r5, (r1+R_CONFIG)
	movi r6, #0xFFFE
	and  r5, r5, r6
	beq  r2, #0, l_write
	or   r5, r5, #CFG_LEDA
l_write:
	out16 (r1+R_CONFIG), r5
	movi r0, #STATUS_SUCCESS
	ret 16
s_mcast:
	; Hash into the context scratch, then write MT0..7 in bank 3.
	movi r5, #0
ym_clear:
	add  r6, r4, r5
	movi r1, #0
	st8  [r6+0x24], r1
	add  r5, r5, #1
	movi r1, #8
	bltu r5, r1, ym_clear
	movi r5, #0
ym_each:
	bgeu r5, r3, ym_write
	push r2
	push r3
	push r5
	add  r1, r2, r5
	push r1
	call crc32_hash
	pop  r5
	pop  r3
	pop  r2
	shr  r1, r0, #3
	and  r6, r0, #7
	movi r0, #1
	shl  r0, r0, r6
	add  r6, r4, r1
	ld8  r1, [r6+0x24]
	or   r1, r1, r0
	st8  [r6+0x24], r1
	add  r5, r5, #6
	jmp  ym_each
ym_write:
	ld32 r1, [r4+0x00]
	movi r2, #3
	push r2
	push r1
	call s91_bank
	movi r5, #0
ym_out:
	add  r6, r4, r5
	ld8  r6, [r6+0x24]
	add  r2, r1, r5
	out8 (r2+R_MT0), r6
	add  r5, r5, #1
	movi r6, #8
	bltu r5, r6, ym_out
	movi r0, #STATUS_SUCCESS
	ret 16

; crc32_hash(macptr): shared CRC-32 multicast hash (type 4 function).
.func crc32_hash
	ld32 r1, [sp+4]
	movi r2, #0
	sub  r2, r2, #1
	movi r3, #0
crc_byte:
	add  r5, r1, r3
	ld8  r5, [r5+0]
	xor  r2, r2, r5
	movi r6, #0
crc_bit:
	and  r5, r2, #1
	shr  r2, r2, #1
	beq  r5, #0, crc_nopoly
	movi r5, #0xEDB88320
	xor  r2, r2, r5
crc_nopoly:
	add  r6, r6, #1
	movi r5, #8
	bltu r6, r5, crc_bit
	add  r3, r3, #1
	movi r5, #6
	bltu r3, r5, crc_byte
	movi r5, #0
	sub  r5, r5, #1
	xor  r2, r2, r5
	shr  r0, r2, #26
	ret 4

; ================= MiniportHalt =================
.func mp_halt
	ld32 r4, [sp+4]
	ld32 r1, [r4+0x00]
	movi r2, #0
	push r2
	push r1
	call s91_bank
	movi r2, #0
	out16 (r1+R_TCR), r2
	out16 (r1+R_RCRX), r2
	movi r2, #2
	push r2
	push r1
	call s91_bank
	movi r2, #0
	out8 (r1+R_MSK), r2
	st32 [r4+0x08], r2
	ret 4

.align 8
chars:
	.space 24
`
