package symexec

import (
	"fmt"
	"math/rand"
	"testing"

	"revnic/internal/expr"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/vm"
)

// TestDifferentialAgainstConcreteVM cross-checks the symbolic
// executor against the concrete VM: random straight-line-plus-loops
// programs with fully concrete inputs must leave both machines in
// identical register/memory states. Any divergence is a semantics bug
// in one interpreter — the class of bug that would silently corrupt
// reverse engineering.
func TestDifferentialAgainstConcreteVM(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		src := genProgram(r)
		prog, err := isa.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}

		// Concrete run.
		m := vm.New(hw.NewBus())
		if err := m.LoadImage(prog); err != nil {
			t.Fatal(err)
		}
		wantR0, err := m.CallEntry(prog.Base, 10000)
		if err != nil {
			t.Fatalf("trial %d: concrete: %v\n%s", trial, err, src)
		}

		// Symbolic run with no symbolic inputs.
		e := New(prog, Config{Seed: int64(trial)})
		st := e.newState()
		sp := uint32(hw.StackTop) - 4
		st.Mem.Write(sp, 4, expr.C(vm.MagicReturn, 32))
		st.Regs[isa.SP] = expr.C(sp, 32)
		st.PC = prog.Base
		st.Frames = []frame{{target: prog.Base, entrySP: sp}}
		live := []*State{st}
		var final *State
		for len(live) > 0 {
			s := live[len(live)-1]
			live = live[:len(live)-1]
			out, err := e.stepBlock(s)
			if err != nil {
				t.Fatalf("trial %d: symbolic: %v\n%s", trial, err, src)
			}
			live = append(live, out...)
			if s.Reason == TermCompleted {
				final = s
				break
			}
			if s.Reason == TermError {
				t.Fatalf("trial %d: symbolic error state\n%s", trial, src)
			}
		}
		if final == nil {
			t.Fatalf("trial %d: symbolic never completed\n%s", trial, src)
		}

		// Result register agreement.
		gotR0, ok := final.Result.IsConst()
		if !ok {
			t.Fatalf("trial %d: result not concrete: %s", trial, final.Result)
		}
		if gotR0 != wantR0 {
			t.Fatalf("trial %d: r0 symbolic=%#x concrete=%#x\n%s", trial, gotR0, wantR0, src)
		}
		// All registers agree.
		for i := 0; i < 7; i++ {
			sv, ok := final.Regs[i].IsConst()
			if !ok {
				t.Fatalf("trial %d: r%d not concrete", trial, i)
			}
			if sv != m.Regs[i] {
				t.Fatalf("trial %d: r%d symbolic=%#x concrete=%#x\n%s", trial, i, sv, m.Regs[i], src)
			}
		}
		// Scratch memory agrees byte for byte.
		scratch := prog.Sym("scratch")
		for off := uint32(0); off < 32; off++ {
			sv, ok := final.Mem.ByteAt(scratch + off).IsConst()
			if !ok {
				t.Fatalf("trial %d: scratch+%d not concrete", trial, off)
			}
			cv, _ := m.Read(scratch+off, 1)
			if sv != cv {
				t.Fatalf("trial %d: scratch+%d symbolic=%#x concrete=%#x\n%s", trial, off, sv, cv, src)
			}
		}
	}
}

// genProgram builds a random but well-formed program: ALU soup, a
// bounded loop, stack traffic, a helper call, and stores into a
// scratch area.
func genProgram(r *rand.Rand) string {
	alu := []string{"add", "sub", "and", "or", "xor", "mul", "shl", "shr", "sar"}
	var body string
	for i := 0; i < 10+r.Intn(20); i++ {
		op := alu[r.Intn(len(alu))]
		rd := r.Intn(5)
		rs := r.Intn(5)
		if r.Intn(2) == 0 {
			body += fmt.Sprintf("\t%s r%d, r%d, #%d\n", op, rd, rs, r.Intn(1<<16))
		} else {
			body += fmt.Sprintf("\t%s r%d, r%d, r%d\n", op, rd, rs, r.Intn(5))
		}
	}
	loopN := 1 + r.Intn(9)
	cond := []string{"bltu", "blt"}[r.Intn(2)]
	return fmt.Sprintf(`
.org 0x10000
.func main
	movi r0, #%d
	movi r1, #%d
	movi r2, #0
%s
	; bounded loop with stores
	movi r5, #0
loop:
	movi r6, scratch
	add  r6, r6, r5
	st8  [r6+0], r0
	add  r0, r0, r1
	add  r5, r5, #1
	%s r5, #%d, loop
	; helper call through the stack
	push r0
	push r1
	call helper
	push r0
	pop  r3
	ret
.func helper
	ld32 r1, [sp+4]
	ld32 r2, [sp+8]
	xor  r0, r1, r2
	movi r4, scratch
	st32 [r4+24], r0
	ret 8
.align 8
scratch:
	.space 32
`, r.Intn(1<<24), 1+r.Intn(1000), body, cond, loopN)
}
