package symexec

import (
	"fmt"

	"revnic/internal/expr"
	"revnic/internal/guestos"
	"revnic/internal/isa"
	"revnic/internal/vm"
)

// argSpec describes one entry-point argument in a phase: either a
// concrete value or a fresh symbolic one ("RevNIC selectively
// converts the parameters of kernel-to-driver calls into symbolic
// values", §2).
type argSpec struct {
	concrete uint32
	symbolic string // non-empty: fresh symbol of this name prefix
}

func conc(v uint32) argSpec   { return argSpec{concrete: v} }
func sym(name string) argSpec { return argSpec{symbolic: name} }

// successFn tests a completed state's return value. During shard
// execution it runs against the worker's engine, so it must only use
// the engine's solver and the state itself.
type successFn func(e *Engine, s *State) bool

// phase is one step of the exercise script.
type phase struct {
	name  string
	entry func() uint32
	args  func(ctx uint32) []argSpec
	// success names the predicate (successAny/successOK/successNonZero)
	// testing a completed state's return value; successful completions
	// count toward the discard heuristic and are eligible to seed the
	// next phase. A name, not a function, because shard tasks carry it
	// across process boundaries.
	success string
	// bindCtx extracts the adapter context from the seeding state.
	bindCtx bool
}

// Wire names of the success predicates (ShardTask.Success).
const (
	successAny     = "any"
	successOK      = "ok"
	successNonZero = "nonzero"
)

// successFunc resolves a predicate's wire name; the empty name means
// successAny, so older coordinators stay compatible.
func successFunc(name string) (successFn, error) {
	switch name {
	case successAny, "":
		return anyResult, nil
	case successOK:
		return statusOK, nil
	case successNonZero:
		return nonZero, nil
	}
	return nil, fmt.Errorf("symexec: unknown success predicate %q", name)
}

func statusOK(e *Engine, s *State) bool {
	return e.sol.MayBeTrue(s.Constraints, e.ar.Eq(s.Result, e.ar.C(guestos.StatusSuccess, 32)))
}

func nonZero(e *Engine, s *State) bool {
	return e.sol.MayBeTrue(s.Constraints, e.ar.Not(e.ar.Eq(s.Result, e.ar.C(0, 32))))
}

func anyResult(e *Engine, s *State) bool { return true }

// Explore runs the full exercise script symbolically: load, init,
// IOCTLs (query/set with symbolic OIDs and buffers), send with
// symbolic packet data and length, interrupt handling under symbolic
// hardware, the timer, and unload — mirroring §3.2's user-mode
// script, with interrupt injection after entry points return.
func (e *Engine) Explore() (*Result, error) {
	// Phase 0: DriverEntry, executed symbolically like everything
	// else (its RegisterMiniport call is monitored to discover entry
	// points).
	seed := e.newState()
	completed, err := e.runPhase(seed, "load", e.prog.Base, nil, successAny)
	if err != nil {
		return nil, err
	}
	if !e.entries.Registered() {
		if e.stopReason() != TermRunning {
			// Stopped before DriverEntry registered anything: an empty
			// but well-formed partial result, not an error.
			return e.buildResult(false), nil
		}
		return nil, fmt.Errorf("symexec: driver did not register entry points")
	}
	e.col.Entry(e.prog.Base, "load")
	e.col.Entry(e.entries.Init, "initialize")
	e.col.Entry(e.entries.Send, "send")
	e.col.Entry(e.entries.ISR, "isr")
	if e.entries.Query != 0 {
		e.col.Entry(e.entries.Query, "query")
	}
	if e.entries.Set != 0 {
		e.col.Entry(e.entries.Set, "set")
	}
	e.col.Entry(e.entries.Halt, "halt")
	seed = e.pickSeed(completed, anyResult)
	if seed == nil {
		if e.stopReason() != TermRunning {
			return e.buildResult(false), nil
		}
		return nil, fmt.Errorf("symexec: DriverEntry never completed")
	}

	var ctx uint32
	initFailed := false
	phases := []phase{
		{name: "initialize", entry: func() uint32 { return e.entries.Init },
			args:    func(uint32) []argSpec { return nil },
			success: successNonZero, bindCtx: true},
		{name: "query", entry: func() uint32 { return e.entries.Query },
			args: func(ctx uint32) []argSpec {
				// Symbolic OID explores every handler and the
				// unsupported-OID error path in one invocation.
				return []argSpec{conc(ctx), sym("oid"), conc(e.symBuffer(64, nil)), conc(64)}
			},
			success: successOK},
		// Set IOCTLs are exercised the way the user-mode script issues
		// them — one call per IOCTL class — mixing concrete and
		// symbolic buffer data to keep exploration tractable (§3.2:
		// "Existing techniques can be employed to mix concrete and
		// symbolic data within the same buffer, in order to speed up
		// exploration").
		{name: "set-flags", entry: func() uint32 { return e.entries.Set },
			args: func(ctx uint32) []argSpec {
				// Symbolic OID + a symbolic flag word: covers the
				// packet filter bit combinations, duplex/WOL/LED
				// on/off branches, and the default error path. The
				// zero length makes the multicast-list loop exit
				// immediately; the list itself is exercised next.
				return []argSpec{conc(ctx), sym("oid"), conc(e.symBuffer(64, []int{0, 1, 2, 3})), conc(0)}
			},
			success: successOK},
		{name: "set-multicast", entry: func() uint32 { return e.entries.Set },
			args: func(ctx uint32) []argSpec {
				// Concrete group addresses keep the CRC-32 hashing
				// concrete (covering the whole algorithm without a
				// 2^48 fork storm) while the symbolic length explores
				// the list-walking loop bounds.
				return []argSpec{conc(ctx), conc(guestos.OIDMulticastList),
					conc(e.symBuffer(64, nil)), sym("inlen")}
			},
			success: successOK},
		{name: "send", entry: func() uint32 { return e.entries.Send },
			args: func(ctx uint32) []argSpec {
				// Symbolic length covers the runt/giant boundary
				// checks and every copy-loop exit; the EtherType
				// bytes stay symbolic so packet-type-dependent
				// driver logic (ARP vs IP vs VLAN, §2) would fork.
				return []argSpec{conc(ctx), conc(e.symBuffer(1514, []int{12, 13})), sym("pktlen")}
			},
			success: successOK},
		{name: "isr", entry: func() uint32 { return e.entries.ISR },
			args:    func(ctx uint32) []argSpec { return []argSpec{conc(ctx)} },
			success: successAny},
		{name: "timer", entry: func() uint32 { return e.timer },
			args:    func(ctx uint32) []argSpec { return []argSpec{conc(ctx)} },
			success: successAny},
		{name: "halt", entry: func() uint32 { return e.entries.Halt },
			args:    func(ctx uint32) []argSpec { return []argSpec{conc(ctx)} },
			success: successAny},
	}

	e.col.Async(e.entries.ISR)
	for _, ph := range phases {
		if e.stopReason() != TermRunning {
			// Cancelled or past the deadline: keep everything the
			// completed phases produced and stop exercising new ones.
			break
		}
		entry := ph.entry()
		if entry == 0 {
			continue // optional entry point not registered
		}
		if ph.name == "timer" {
			// The timer handler was registered at run time via
			// NdisMInitializeTimer (§3.2); it is an asynchronous
			// event root like the ISR.
			e.col.Entry(entry, "timer")
			e.col.Async(entry)
		}
		st := e.fork(seed)
		st.Reason = TermRunning
		var specs []argSpec
		if ph.args != nil {
			specs = ph.args(ctx)
		}
		okFn, err := successFunc(ph.success)
		if err != nil {
			return nil, err
		}
		completed, err := e.runPhase(st, ph.name, entry, specs, ph.success)
		if err != nil {
			return nil, err
		}
		next := e.pickSeed(completed, okFn)
		if next == nil {
			// The entry point never completed successfully (e.g. a
			// hardware-dependent wait): fall back to any completed
			// path, else keep the old seed.
			next = e.pickSeed(completed, anyResult)
		}
		if next != nil {
			if ph.bindCtx {
				v, ok := e.concretizeU32(next, next.Result)
				if !ok || v == 0 {
					// The driver refused to initialize (e.g. no
					// responding device under the concrete-hardware
					// ablation): report what was covered so far.
					initFailed = true
					break
				}
				ctx = v
			}
			seed = next
		} else if ph.bindCtx {
			initFailed = true
			break
		}
	}

	return e.buildResult(initFailed), nil
}

// buildResult assembles the exploration summary from the engine's
// accumulated state. For a stopped run it is a consistent snapshot:
// only fully merged phase explorations contribute, so the completed
// phases' traces match an uncancelled run's bit for bit.
func (e *Engine) buildResult(initFailed bool) *Result {
	queries, hits := e.sol.Stats()
	return &Result{
		InitFailed:       initFailed,
		Collector:        e.col,
		Entries:          e.entries,
		Coverage:         e.coverage,
		ExecutedBlocks:   e.exec,
		ForkCount:        e.forks,
		KilledLoops:      e.killed,
		DMARegions:       e.dma.Regions(),
		Strategy:         e.cfg.Searcher(e.col).Name(),
		SolverQueries:    queries + e.childQueries,
		SolverCacheHits:  hits + e.childHits,
		SolverModelHits:  e.sol.ModelHits() + e.childModelHits,
		TranslatedBlocks: e.cache.Misses(),
		ShardsEffective:  e.shardsEff,
		ShardCollapses:   e.shardCollapses,
		Stopped:          e.stopHit,
	}
}

// Timer returns the timer handler address registered during
// exploration (0 if none).
func (e *Engine) Timer() uint32 { return e.timer }

// symBuffer reserves a guest buffer filled with deterministic
// concrete data except at the listed offsets, which become fresh
// symbolic bytes when the phase state is prepared (mixed
// concrete/symbolic buffers, §3.2). symBytes == nil means fully
// concrete content.
func (e *Engine) symBuffer(n uint32, symBytes []int) uint32 {
	// Buffers live in a dedicated window above the OS heap.
	addr := e.nextBuf
	if addr == 0 {
		addr = 0x000C0000
	}
	e.nextBuf = addr + ((n + 15) &^ 15)
	e.bufs = append(e.bufs, bufSpec{addr, n, symBytes})
	return addr
}

type bufSpec struct {
	addr, n  uint32
	symBytes []int
}

// pickSeed chooses one successful completed state at random — the
// entry-point completion heuristic's "one successful one chosen at
// random" (§3.2).
func (e *Engine) pickSeed(completed []*State, ok func(*Engine, *State) bool) *State {
	var eligible []*State
	for _, s := range completed {
		if s.Result != nil && ok(e, s) {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	return eligible[e.rng.Intn(len(eligible))]
}

// runPhase symbolically executes one entry point from the given seed
// state until the state set drains, the budget expires, or coverage
// stagnates. With Shards > 1 the phase runs fork-join: a serial
// spread grows the live set to Shards independent state groups, the
// groups are explored on up to Config.Workers goroutines, and the
// results are merged back in seed order, so the outcome is the same
// for every Workers value.
func (e *Engine) runPhase(st *State, name string, entry uint32, args []argSpec, successName string) ([]*State, error) {
	success, err := successFunc(successName)
	if err != nil {
		return nil, err
	}
	// Fill pending buffers: patterned concrete data with symbolic
	// bytes at the requested offsets. The concrete pattern includes
	// two multicast group addresses so list-processing code sees
	// realistic input.
	for _, b := range e.bufs {
		pattern := []byte{
			0x01, 0x00, 0x5E, 0x00, 0x00, 0x01,
			0x01, 0x00, 0x5E, 0x7F, 0xFF, 0xFA,
		}
		for i := uint32(0); i < b.n; i++ {
			if int(i) < len(pattern) {
				st.Mem.SetByte(b.addr+i, e.ar.C(uint32(pattern[i]), 8))
			} else {
				st.Mem.SetByte(b.addr+i, e.ar.C(uint32(i*7)&0xFF, 8))
			}
		}
		for _, off := range b.symBytes {
			if uint32(off) < b.n {
				st.Mem.SetByte(b.addr+uint32(off), e.freshSym("buf", 8))
			}
		}
	}
	e.bufs = nil

	// Push arguments right-to-left, then the completion sentinel.
	sp, _ := st.Regs[isa.SP].IsConst()
	for i := len(args) - 1; i >= 0; i-- {
		sp -= 4
		var v *expr.Expr
		if args[i].symbolic != "" {
			v = e.freshSym(args[i].symbolic, 32)
		} else {
			v = e.ar.C(args[i].concrete, 32)
		}
		st.Mem.Write(sp, 4, v)
	}
	sp -= 4
	st.Mem.Write(sp, 4, e.ar.C(vm.MagicReturn, 32))
	st.Regs[isa.SP] = e.ar.C(sp, 32)
	st.PC = entry
	st.localCount = map[uint32]int{}
	// The kernel's invocation is the root frame: parameter reads at
	// [sp+4+4i] are the entry point's own arguments.
	st.Frames = []frame{{target: entry, entrySP: sp}}

	bdg := phaseBudgets{
		blocks:     int64(e.cfg.PhaseBudget),
		stagnation: int64(e.cfg.StagnationBudget),
		successes:  e.cfg.CompleteTarget,
		maxStates:  e.cfg.MaxStates,
	}
	spreadTo := 0
	if e.cfg.Shards > 1 {
		spreadTo = e.cfg.fanoutTarget()
	}
	completed, live, used, err := e.exploreSet([]*State{st}, name, bdg, success, spreadTo)
	if err != nil {
		return nil, err
	}
	if len(live) == 0 {
		// The phase drained (or hit its budget) before fanning out: a
		// parallelism collapse — the whole phase ran serially even
		// though Shards asked for fan-out. Count it instead of hiding
		// it (Result.ShardCollapses, surfaced on /metrics by revnicd).
		if spreadTo > 0 {
			e.shardCollapses++
		}
		return completed, nil
	}
	bdg.blocks -= used
	forked, err := e.exploreShards(live, name, successName, bdg, success)
	if err != nil {
		return nil, err
	}
	return append(completed, forked...), nil
}

// exploreSet runs the state-selection loop over live until the set
// drains, the budgets expire, enough successful completions
// accumulate, or — when spreadTo > 0 — the live set has grown to
// spreadTo states (the fan-out point of the fork-join mode, in which
// case the still-live remainder is returned). The spread also fans
// out early, with whatever width it reached, once at least Shards
// live states exist and the live set has stopped growing for
// spreadStallBlocks executed blocks: waiting for a fan-out width the
// driver cannot sustain would only burn serial time. Both exits are
// pure functions of the deterministic serial spread. Path selection
// is delegated to a fresh Searcher built from Config.Searcher, so
// each explored state group owns its searcher state. used reports
// the translation blocks consumed against bdg.blocks.
func (e *Engine) exploreSet(live []*State, name string, bdg phaseBudgets, success successFn, spreadTo int) (completed, remaining []*State, used int64, err error) {
	successes := 0
	startExec := e.exec
	lastCovExec := e.exec
	lastCov := e.col.CoveredBlocks()
	peakLive := len(live)
	lastGrowExec := e.exec
	sr := e.cfg.Searcher(e.col)
	sr.Update(live, nil)

	// pos tracks each live state's slice index so removing the
	// searcher's selection is O(1); with the priority-queue coverage
	// searcher the whole scheduling decision is then O(log n) instead
	// of two O(n) scans per executed block.
	pos := make(map[*State]int, len(live))
	for i, st := range live {
		pos[st] = i
	}
	push := func(st *State) {
		pos[st] = len(live)
		live = append(live, st)
	}
	remove := func(st *State) {
		i := pos[st]
		last := len(live) - 1
		live[i] = live[last]
		pos[live[i]] = i
		live = live[:last]
		delete(pos, st)
	}

	for len(live) > 0 {
		if r := e.stopReason(); r != TermRunning {
			// Cooperative stop: discard the live set with the stop
			// reason and return what completed — the partial result
			// keeps every path that finished before the stop.
			for _, s := range live {
				s.Reason = r
			}
			break
		}
		if spreadTo > 0 {
			if len(live) > peakLive {
				peakLive = len(live)
				lastGrowExec = e.exec
			}
			if len(live) >= spreadTo {
				return completed, live, e.exec - startExec, nil
			}
			if len(live) >= e.cfg.Shards && e.exec-lastGrowExec > spreadStallBlocks {
				// Stalled spread: the base fan-out width is available
				// but the finer target is out of reach; fan out now
				// with the width the driver sustains.
				return completed, live, e.exec - startExec, nil
			}
		}
		if e.exec-startExec > bdg.blocks ||
			e.exec-lastCovExec > bdg.stagnation {
			for _, s := range live {
				s.Reason = TermBudget
			}
			break
		}
		s := sr.Select(live)
		remove(s)

		out, err := e.stepBlock(s)
		if err != nil {
			return nil, nil, e.exec - startExec, fmt.Errorf("symexec: phase %s: %w", name, err)
		}
		for _, o := range out {
			push(o)
		}
		sr.Update(out, []*State{s})

		if c := e.col.CoveredBlocks(); c != lastCov {
			lastCov = c
			lastCovExec = e.exec
		}

		if s.Reason == TermCompleted {
			completed = append(completed, s)
			if success(e, s) {
				successes++
				if successes >= bdg.successes {
					// Discard all remaining paths of this entry point
					// (§3.2), freeing memory and moving on.
					for _, l := range live {
						l.Reason = TermKilledDiscard
					}
					sr.Update(nil, live)
					live = nil
					clear(pos)
				}
			}
		}
		// State-cap pressure: discard the states deepest into
		// re-executed code (they are the least likely to find new
		// blocks).
		if len(live) > bdg.maxStates {
			var killed []*State
			live, killed = e.shedStates(live, bdg.maxStates)
			sr.Update(nil, killed)
			clear(pos)
			for i, st := range live {
				pos[st] = i
			}
		}
	}
	return completed, nil, e.exec - startExec, nil
}

// spreadStallBlocks is the stall window of the adaptive spread: with
// the base fan-out width reached and no net live-set growth for this
// many executed blocks, the phase fans out rather than keep chasing
// the finer Shards × ShardFactor target serially. Well below the
// default stagnation budget, so a stalling spread fans out before the
// stagnation rule would kill the phase.
const spreadStallBlocks = 4096

// shedStates drops the most loop-bound half of an oversized state
// set, emulating the memory-pressure discards of §3.4, returning the
// survivors and the killed states (so the searcher can be told).
// maxStates is the cap of the calling exploration (per shard in
// fork-join mode).
func (e *Engine) shedStates(live []*State, maxStates int) (kept, killed []*State) {
	kept = make([]*State, 0, len(live))
	// Keep states whose current block is cold; kill the hottest.
	for _, s := range live {
		if e.col.BlockCount(s.PC) < 4*int64(e.cfg.PollThreshold) || len(kept) < maxStates/2 {
			kept = append(kept, s)
		} else {
			s.Reason = TermKilledLoop
			e.killed++
			killed = append(killed, s)
		}
	}
	if len(kept) > maxStates {
		for _, s := range kept[maxStates:] {
			s.Reason = TermKilledLoop
			e.killed++
			killed = append(killed, s)
		}
		kept = kept[:maxStates]
	}
	return kept, killed
}
