package symexec

import (
	"encoding/json"
	"sync"
	"testing"

	"revnic/internal/drivers"
	"revnic/internal/expr"
	"revnic/internal/hw"
	"revnic/internal/isa"
)

// wireRunner simulates the cluster path inside one test process: every
// shard task is marshalled to JSON, unmarshalled "on the peer",
// executed by ExecuteShardTask against a completely fresh engine
// (fresh arena, fresh translation cache — nothing shared with the
// coordinator), and the result is marshalled back. It is the
// strongest in-process stand-in for remote execution: any hidden
// dependency on coordinator state would surface as a divergence.
type wireRunner struct {
	prog       *isa.Program
	cfg        Config // peer-side config (no arena, no runner)
	localEvery int    // every Nth shard exercises the local fallback instead

	mu sync.Mutex
	n  int
}

func (r *wireRunner) RunShard(task *ShardTask, local func() (*ShardResult, error)) (*ShardResult, error) {
	r.mu.Lock()
	r.n++
	useLocal := r.localEvery > 0 && r.n%r.localEvery == 0
	r.mu.Unlock()
	if useLocal {
		return local()
	}
	b, err := json.Marshal(task)
	if err != nil {
		return nil, err
	}
	var remote ShardTask
	if err := json.Unmarshal(b, &remote); err != nil {
		return nil, err
	}
	cfg := r.cfg
	cfg.Arena = expr.NewArena()
	res, err := ExecuteShardTask(r.prog, cfg, &remote)
	if err != nil {
		return nil, err
	}
	rb, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	var back ShardResult
	if err := json.Unmarshal(rb, &back); err != nil {
		return nil, err
	}
	return &back, nil
}

// TestShardRunnerBitIdentical is the distributed mode's core
// guarantee: dispatching every shard group through the wire codec to
// a fresh peer engine — or through the local fallback, or a mix —
// merges into exactly the result the in-process fork-join produces.
func TestShardRunnerBitIdentical(t *testing.T) {
	for _, driver := range []string{"RTL8029", "RTL8139"} {
		t.Run(driver, func(t *testing.T) {
			info, err := drivers.ByName(driver)
			if err != nil {
				t.Fatal(err)
			}
			base := Config{Seed: 11, Workers: 2}
			want := traceFingerprint(exploreDriver(t, driver, base))

			for name, localEvery := range map[string]int{"remote": 0, "mixed": 2} {
				t.Run(name, func(t *testing.T) {
					shell := hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
						IOBase: 0xC000, IOSize: 0x100, IRQLine: 11}
					cfg := base
					cfg.Shell = shell
					cfg.ShardRunner = &wireRunner{
						prog:       info.Program,
						cfg:        Config{Seed: 11, Shell: shell},
						localEvery: localEvery,
					}
					eng := New(info.Program, cfg)
					res, err := eng.Explore()
					if err != nil {
						t.Fatal(err)
					}
					if got := traceFingerprint(res); got != want {
						t.Fatalf("%s dispatch diverged from in-process run (fingerprints %d vs %d bytes)",
							name, len(got), len(want))
					}
				})
			}
		})
	}
}

// TestShardRunnerSolverAndTranslationStats pins the summary counters
// that traceFingerprint does not cover: remote execution must report
// the same solver workload, and resolving remote collectors through
// the coordinator's translation cache must reproduce the single-node
// translated-block count exactly.
func TestShardRunnerSolverAndTranslationStats(t *testing.T) {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		t.Fatal(err)
	}
	shell := hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
		IOBase: 0xC000, IOSize: 0x100, IRQLine: 11}
	direct := exploreDriver(t, "RTL8029", Config{Seed: 3})

	cfg := Config{Seed: 3, Shell: shell}
	cfg.ShardRunner = &wireRunner{prog: info.Program, cfg: Config{Seed: 3, Shell: shell}}
	res, err := New(info.Program, cfg).Explore()
	if err != nil {
		t.Fatal(err)
	}
	if res.SolverQueries != direct.SolverQueries ||
		res.SolverCacheHits != direct.SolverCacheHits ||
		res.SolverModelHits != direct.SolverModelHits {
		t.Fatalf("solver stats diverged: remote %d/%d/%d, direct %d/%d/%d",
			res.SolverQueries, res.SolverCacheHits, res.SolverModelHits,
			direct.SolverQueries, direct.SolverCacheHits, direct.SolverModelHits)
	}
	if res.TranslatedBlocks != direct.TranslatedBlocks {
		t.Fatalf("translated blocks diverged: remote %d, direct %d",
			res.TranslatedBlocks, direct.TranslatedBlocks)
	}
}

// TestStateGroupRoundTrip checks the state codec in isolation: a
// group with forks, COW-shared and diverged pages, constraints and
// frames must re-encode from its decoded form byte-identically.
func TestStateGroupRoundTrip(t *testing.T) {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		t.Fatal(err)
	}
	e := New(info.Program, Config{Seed: 1})
	a := e.newState()
	a.Mem.Write(0x1000, 4, e.ar.C(0xDEADBEEF, 32))
	a.Regs[2] = e.ar.Add(e.ar.S("x", 32), e.ar.C(7, 32))
	a.Constrain(e.ar.Ult(e.ar.S("x", 32), e.ar.C(100, 32)))
	a.Frames = append(a.Frames, frame{callSite: 0x40, target: 0x80, retAddr: 0x44, entrySP: 0xFF00})
	a.localCount[0x80] = 3
	b := e.fork(a) // shares a's pages COW
	b.Mem.Write(0x1002, 1, e.ar.Trunc(e.ar.S("y", 32), 8))
	b.Constrain(e.ar.Eq(e.ar.S("y", 32), e.ar.C(9, 32)))
	b.Result = e.ar.C(1, 32)
	b.Reason = TermCompleted

	g := encodeStateGroup([]*State{a, b})
	wire, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back WireStateGroup
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	ar2 := expr.NewArena()
	base := make([]byte, len(e.baseRAM))
	copy(base, e.baseRAM)
	states, err := decodeStateGroup(&back, base, ar2)
	if err != nil {
		t.Fatal(err)
	}
	re, err := json.Marshal(encodeStateGroup(states))
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(wire) {
		t.Fatalf("round trip not identical:\n first: %d bytes\nsecond: %d bytes", len(wire), len(re))
	}
	// The shared page must stay shared after decode: one page table
	// entry, referenced by both states.
	if len(back.Pages) == 0 {
		t.Fatal("no pages encoded")
	}
	if states[0].Mem.pages[0x1000/pageSize] == states[1].Mem.pages[0x1000/pageSize] {
		t.Fatal("diverged page decoded as shared")
	}
}

// TestDecodeStateGroupRejectsMalformed exercises the decode-side
// validation: torn or corrupted payloads must produce errors, never
// panics or silently wrong states.
func TestDecodeStateGroupRejectsMalformed(t *testing.T) {
	ar := expr.NewArena()
	base := make([]byte, 4096)
	for name, g := range map[string]*WireStateGroup{
		"forward expr reference": {
			Exprs:  []expr.WireNode{{K: 3, W: 32, A: 2, B: 2}, {K: 0, W: 32, V: 1}},
			States: []WireState{{Regs: [8]int32{1, 2, 2, 2, 2, 2, 2, 2}}},
		},
		"nil register": {
			States: []WireState{{}},
		},
		"narrow register": {
			Exprs:  []expr.WireNode{{K: 0, W: 8, V: 1}},
			States: []WireState{{Regs: [8]int32{1, 1, 1, 1, 1, 1, 1, 1}}},
		},
		"wide constraint": {
			Exprs: []expr.WireNode{{K: 0, W: 32, V: 1}},
			States: []WireState{{
				Regs:        [8]int32{1, 1, 1, 1, 1, 1, 1, 1},
				Constraints: []int32{1},
			}},
		},
		"page ref out of range": {
			Exprs: []expr.WireNode{{K: 0, W: 32, V: 1}},
			States: []WireState{{
				Regs:  [8]int32{1, 1, 1, 1, 1, 1, 1, 1},
				Pages: map[uint32]int32{0: 3},
			}},
		},
		"page offset out of range": {
			Exprs: []expr.WireNode{{K: 0, W: 8, V: 1}},
			Pages: []WirePage{{Off: []uint16{9999}, Ref: []int32{1}}},
		},
		"bad term reason": {
			Exprs:  []expr.WireNode{{K: 0, W: 32, V: 1}},
			States: []WireState{{Regs: [8]int32{1, 1, 1, 1, 1, 1, 1, 1}, Reason: 99}},
		},
	} {
		if _, err := decodeStateGroup(g, base, ar); err == nil {
			t.Errorf("%s: decode accepted malformed group", name)
		}
	}
}
