package symexec

import (
	"fmt"
	"math/rand"
	"time"

	"revnic/internal/expr"
	"revnic/internal/guestos"
	"revnic/internal/hw"
	"revnic/internal/ir"
	"revnic/internal/isa"
	"revnic/internal/solver"
	"revnic/internal/trace"
	"revnic/internal/vm"
)

// Config parameterizes an exploration run. Zero values select the
// defaults the paper's prototype effectively uses.
type Config struct {
	// Shell is the PCI descriptor of the shell device: "the vendor
	// and product identifier of the device whose driver is being
	// reverse engineered, the I/O memory ranges, and the interrupt
	// line. The developer obtains these parameters from the Windows
	// device manager" (§3.4).
	Shell hw.PCIConfig
	// Searcher builds the path-selection searcher for each explored
	// state group (the root engine and every fork-join worker child
	// construct their own through it, so searcher state is never
	// shared between goroutines). nil selects NewCoverageGuided, the
	// paper's min-count heuristic; NewDFS and NewBFS are the ablation
	// baselines, and SearcherByName resolves command-line names.
	Searcher SearcherFactory
	// Arena is the expression arena the engine (and its solvers and
	// fork-join worker children) builds every expression in. nil
	// selects the process-global default arena — the CLI
	// configuration. A long-lived service gives each job its own
	// arena so the job's interned expressions are reclaimed wholesale
	// when the job's results are dropped. The arena choice never
	// affects exploration results: canonicalization is structural, so
	// traces, coverage and synthesized code are bit-identical across
	// arenas.
	Arena *expr.Arena
	// DisableIncrementalSolver turns off the solver's shared
	// incremental SAT session for branch queries (ablation). Query
	// answers — and therefore exploration results — are identical
	// either way.
	DisableIncrementalSolver bool
	// SolverBackend names the constraint-solver backend every solver
	// in this engine (root and fork-join children) is built with:
	// solver.BackendCore (the default, also selected by ""),
	// solver.BackendSmallDomain, or solver.BackendPortfolio, which
	// races the others on hard queries. Exploration results are
	// bit-identical across backends: hard queries are verdict-only
	// under every backend, so caches, counters, traces and coverage
	// never depend on which backend answered. Validate names from
	// user input with solver.ValidBackend before constructing the
	// engine — an unknown name panics.
	SolverBackend string
	// PollThreshold is the per-state repeat count after which the
	// polling-loop killer discards the staying path.
	PollThreshold int
	// CompleteTarget is the number of successful entry-point
	// completions after which remaining paths are discarded.
	CompleteTarget int
	// MaxStates bounds the live state set.
	MaxStates int
	// PhaseBudget bounds translation blocks executed per entry point.
	PhaseBudget int
	// StagnationBudget ends a phase after this many blocks without
	// new coverage.
	StagnationBudget int
	// DisableLoopKill turns off the polling-loop heuristic (ablation).
	DisableLoopKill bool
	// ConcreteHardware replaces symbolic hardware reads with a fixed
	// concrete value (ablation: what a real, passive device would
	// return on most reads).
	ConcreteHardware bool
	// Seed drives the random successful-path choice.
	Seed int64
	// Workers is the number of goroutines that execute exploration
	// shards concurrently within each exercise phase. It sets
	// concurrency only: for a fixed Seed (and Shards) the explored
	// paths, traces and coverage are bit-identical for every Workers
	// value. 0 and 1 both run the shards serially.
	Workers int
	// Stop, when non-nil, is a cooperative cancellation signal with
	// context.Context.Done semantics: once the channel is closed, the
	// exploration loops (and any SAT solve in flight) wind down and
	// Explore returns a partial but well-formed Result — the traces,
	// coverage and statistics of everything completed so far, with
	// Result.Stopped set to TermCancelled. A Stop channel that never
	// fires leaves the run bit-identical to Stop == nil.
	Stop <-chan struct{}
	// Deadline, when non-zero, is the wall-clock instant after which
	// exploration winds down exactly like a cancellation, with
	// Result.Stopped set to TermDeadline. A deadline that never
	// arrives leaves results unchanged.
	Deadline time.Time
	// Shards is the fan-out width of the fork-join exploration: each
	// phase first spreads serially until this many independent live
	// states exist, then explores each group to completion with
	// worker-local collectors that are merged back in seed order.
	// Unlike Workers, Shards is part of the deterministic schedule
	// (it decides where path groups stop seeing each other's block
	// counts), so changing it changes the explored paths. 0 selects
	// the default; 1 disables fan-out entirely (the original fully
	// serial schedule).
	Shards int
	// ShardFactor multiplies the fan-out granularity: each phase aims
	// for Shards × ShardFactor shard groups, so pull-based schedulers
	// (the in-process worker pool and the cluster work queue) have
	// finer units to balance and one heavy group no longer sets the
	// phase's wall clock. Like Shards it is part of the deterministic
	// schedule — for a fixed factor the results are bit-identical
	// across Workers, runners and scheduling — and 1 reproduces the
	// exact Shards-group schedule of earlier versions. 0 selects auto:
	// the spread targets Shards × 4 groups but fans out early when the
	// live set stops growing, so the granularity adapts to how many
	// independent states the driver can actually sustain.
	ShardFactor int
	// ShardRunner, when non-nil, executes the fork-join shard groups
	// through an external dispatcher (the cluster layer's
	// fault-tolerant remote transport) instead of in-process worker
	// children. The runner receives each group as a self-contained
	// ShardTask plus a local-execution fallback closure; because task
	// execution is deterministic and idempotent, the merged results
	// are bit-identical to a nil-runner run no matter how the
	// dispatcher mixes remote execution, retries, hedging and local
	// fallback.
	ShardRunner ShardRunner
}

func (c *Config) defaults() {
	if c.Searcher == nil {
		c.Searcher = NewCoverageGuided
	}
	if c.Arena == nil {
		c.Arena = expr.Default()
	}
	if c.PollThreshold == 0 {
		c.PollThreshold = 48
	}
	if c.CompleteTarget == 0 {
		// High enough that shallow handler paths (quick OID
		// successes) do not starve deep ones (re-initialization)
		// before they complete.
		c.CompleteTarget = 32
	}
	if c.MaxStates == 0 {
		c.MaxStates = 512
	}
	if c.PhaseBudget == 0 {
		c.PhaseBudget = 120000
	}
	if c.StagnationBudget == 0 {
		c.StagnationBudget = 20000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.ShardFactor < 0 {
		c.ShardFactor = 0
	}
}

// autoShardFactor is the granularity multiplier the auto setting
// (ShardFactor == 0) aims for; the stall rule in exploreSet fans out
// earlier when the driver cannot sustain that many live states.
const autoShardFactor = 4

// fanoutTarget is the number of shard groups a phase's serial spread
// aims for: Shards × ShardFactor.
func (c *Config) fanoutTarget() int {
	if c.Shards <= 1 {
		return c.Shards
	}
	f := c.ShardFactor
	if f <= 0 {
		f = autoShardFactor
	}
	return c.Shards * f
}

// CoveragePoint samples coverage growth for Figure 8.
type CoveragePoint struct {
	ExecutedBlocks int64
	CoveredBlocks  int
}

// Result is the outcome of reverse-engineering exploration.
type Result struct {
	Collector *trace.Collector
	Entries   guestos.EntryPoints
	// Coverage is the growth curve sampled during exploration.
	Coverage []CoveragePoint
	// ExecutedBlocks is the total number of translation blocks run.
	ExecutedBlocks int64
	// ForkCount is the number of state forks.
	ForkCount int64
	// InitFailed is set when MiniportInitialize never produced a
	// usable adapter context, so later entry points could not be
	// exercised (happens under the concrete-hardware ablation: the
	// driver correctly refuses to load without a responding device).
	InitFailed bool
	// KilledLoops counts polling-loop discards.
	KilledLoops int64
	// DMARegions are the shared-memory regions the driver registered.
	DMARegions [][2]uint32
	// Strategy names the searcher that drove this exploration.
	Strategy string
	// SolverQueries and SolverCacheHits aggregate the constraint
	// solver's work across the root engine and all fork-join worker
	// children; SolverModelHits counts queries answered by
	// re-evaluating a cached model instead of solving.
	SolverQueries   int64
	SolverCacheHits int64
	SolverModelHits int64
	// TranslatedBlocks is the number of distinct translation-cache
	// entries built (ir.Cache misses).
	TranslatedBlocks int64
	// ShardsEffective is the narrowest fan-out width any phase
	// achieved: the smallest shard-group count among phases that
	// reached their fan-out point (0 when no phase fanned out at all).
	// A value below Shards × ShardFactor means the live set could not
	// sustain the configured granularity.
	ShardsEffective int
	// ShardCollapses counts phases that were configured to fan out
	// (Shards > 1) but drained or exhausted their budget during the
	// serial spread — running entirely serially. Before this counter
	// existed the collapse was silent.
	ShardCollapses int64
	// Stopped records an early wind-down: TermCancelled (Config.Stop
	// fired) or TermDeadline (Config.Deadline passed). TermRunning
	// means the exercise script ran to completion. A stopped result is
	// partial but well-formed: every phase that completed before the
	// stop contributed its full traces and coverage.
	Stopped TermReason
}

// Engine drives selective symbolic execution of one driver binary.
type Engine struct {
	cfg   Config
	prog  *isa.Program
	cache *ir.Cache
	col   *trace.Collector
	sol   *solver.Solver
	ar    *expr.Arena
	rng   *rand.Rand

	baseRAM []byte
	entries guestos.EntryPoints
	timer   uint32
	dma     hw.DMARegistry

	symCount int
	stateID  int
	exec     int64
	forks    int64
	killed   int64
	coverage []CoveragePoint
	lastCov  int

	// childQueries/childHits/childModelHits accumulate the solver
	// statistics of merged worker children (each child has its own
	// solver; the join folds its counters here).
	childQueries   int64
	childHits      int64
	childModelHits int64

	// symPrefix namespaces fresh symbols minted by a worker child so
	// they can never collide with symbols already present in the seed
	// state's constraints (empty on the root engine).
	symPrefix string
	// jobSeq numbers worker children across all phases of this
	// engine, keeping their symbol namespaces globally unique.
	jobSeq int
	// discov logs the first execution of each translation block with
	// its local exec stamp; the fork-join merge replays worker logs
	// in seed order to rebuild one global coverage curve.
	discov []covDiscovery

	// shardsEff is the narrowest fan-out width achieved so far (0
	// until the first fan-out); shardCollapses counts phases that
	// should have fanned out but ran serially. Both are root-engine
	// observations — children never fan out.
	shardsEff      int
	shardCollapses int64

	nextBuf uint32
	bufs    []bufSpec

	// stopHit latches the first observed stop reason (TermRunning
	// while none); stopPoll amortizes the time.Now deadline check.
	stopHit  TermReason
	stopPoll int
}

// covDiscovery is one first-execution event in an engine's local
// exploration, used to merge worker coverage curves deterministically.
type covDiscovery struct {
	addr uint32
	exec int64
}

type imageReader struct{ ram []byte }

func (r imageReader) FetchInstr(addr uint32) (isa.Instr, error) {
	if int(addr)+isa.InstrSize > len(r.ram) {
		return isa.Instr{}, fmt.Errorf("symexec: fetch outside RAM at %#x", addr)
	}
	return isa.Decode(r.ram[addr:])
}

// New prepares an engine for the given driver binary. Only the
// binary image is consumed — no symbols, exactly like the real tool.
func New(prog *isa.Program, cfg Config) *Engine {
	cfg.defaults()
	ram := make([]byte, hw.RAMSize)
	copy(ram[prog.Base:], prog.Code)
	e := &Engine{
		cfg:     cfg,
		prog:    prog,
		col:     trace.NewCollector(),
		sol:     newSolver(cfg),
		ar:      cfg.Arena,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
		baseRAM: ram,
	}
	e.cache = ir.NewCache(imageReader{ram})
	return e
}

// newSolver builds a constraint solver configured per the engine: it
// shares the engine's expression arena, the ablation switches and the
// cooperative stop signal (so a cancellation also aborts a SAT solve
// already in flight instead of waiting for it).
func newSolver(cfg Config) *solver.Solver {
	return solver.NewWith(solver.Config{
		Arena:              cfg.Arena,
		Backend:            cfg.SolverBackend,
		DisableIncremental: cfg.DisableIncrementalSolver,
		Interrupt:          stopFunc(cfg),
	})
}

// stopFunc converts the config's stop signal and deadline into the
// solver-level interrupt predicate; nil when neither is set, so the
// common case pays nothing.
func stopFunc(cfg Config) func() bool {
	if cfg.Stop == nil && cfg.Deadline.IsZero() {
		return nil
	}
	return func() bool {
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				return true
			default:
			}
		}
		return !cfg.Deadline.IsZero() && time.Now().After(cfg.Deadline)
	}
}

// stopReason reports whether the run should wind down: TermCancelled
// once Config.Stop fires, TermDeadline once Config.Deadline passes,
// TermRunning otherwise. The first hit latches — every later call
// returns the same reason. The deadline clock is polled only every
// 64th call; with block execution in the microsecond range the
// detection latency stays far under the 2-second wind-down target.
func (e *Engine) stopReason() TermReason {
	if e.stopHit != TermRunning {
		return e.stopHit
	}
	if e.cfg.Stop != nil {
		select {
		case <-e.cfg.Stop:
			e.stopHit = TermCancelled
			return e.stopHit
		default:
		}
	}
	if !e.cfg.Deadline.IsZero() {
		e.stopPoll++
		if e.stopPoll&63 == 0 && time.Now().After(e.cfg.Deadline) {
			e.stopHit = TermDeadline
			return e.stopHit
		}
	}
	return TermRunning
}

// freshSym mints a new hardware/input symbol.
func (e *Engine) freshSym(prefix string, w uint8) *expr.Expr {
	e.symCount++
	return e.ar.S(fmt.Sprintf("%s%s_%d", e.symPrefix, prefix, e.symCount), w)
}

// jobIDSpan reserves a state-ID range per worker child so IDs stay
// unique (and deterministic) across the fork-join.
const jobIDSpan = 1 << 20

// child builds the execution context of one exploration worker: it
// shares the immutable inputs (program image, translation cache,
// configuration) with the parent but gets its own collector, solver,
// counters and a snapshot of the mutable registries, so a group of
// states can be explored without touching the parent. The join
// (mergeChild) folds everything back in seed order.
func (e *Engine) child(idx int) *Engine {
	e.jobSeq++
	return &Engine{
		cfg:       e.cfg,
		prog:      e.prog,
		cache:     e.cache,
		col:       trace.NewCollector(),
		sol:       newSolver(e.cfg),
		ar:        e.ar,
		rng:       rand.New(rand.NewSource(e.cfg.Seed + int64(e.jobSeq))),
		baseRAM:   e.baseRAM,
		entries:   e.entries,
		timer:     e.timer,
		dma:       e.dma.Clone(),
		symPrefix: fmt.Sprintf("j%d.", e.jobSeq),
		stateID:   e.stateID + (idx+1)*jobIDSpan,
	}
}

func (e *Engine) newState() *State {
	e.stateID++
	s := &State{
		ID:         e.stateID,
		Mem:        NewMemoryArena(e.baseRAM, e.ar),
		heapNext:   0x00080000,
		localCount: map[uint32]int{},
	}
	for i := range s.Regs {
		s.Regs[i] = e.ar.C(0, 32)
	}
	s.Regs[isa.SP] = e.ar.C(hw.StackTop, 32)
	return s
}

func (e *Engine) fork(s *State) *State {
	e.stateID++
	e.forks++
	return s.Fork(e.stateID)
}

// inDriver reports whether addr is inside the driver image.
func (e *Engine) inDriver(addr uint32) bool {
	return addr >= e.prog.Base && addr < e.prog.Base+uint32(len(e.prog.Code))
}

// concretizeU32 returns a concrete value for v under the state's path
// constraints, additionally constraining v to that value.
func (e *Engine) concretizeU32(s *State, v *expr.Expr) (uint32, bool) {
	if c, ok := v.IsConst(); ok {
		return c, true
	}
	val, ok := e.sol.Concretize(s.Constraints, v)
	if !ok {
		return 0, false
	}
	s.Constrain(e.ar.Eq(v, e.ar.C(val, v.Width)))
	return val, true
}

// sampleCoverage appends a coverage point when coverage changed.
func (e *Engine) sampleCoverage(blockAddr uint32) {
	if c := e.col.CoveredBlocks(); c != e.lastCov {
		e.lastCov = c
		e.coverage = append(e.coverage, CoveragePoint{e.exec, c})
		e.discov = append(e.discov, covDiscovery{blockAddr, e.exec})
	}
}

// --- hardware and OS models -------------------------------------------------

// hwRead models symbolic hardware (§3.1/§3.4): every read from the
// device returns an unconstrained symbolic value.
func (e *Engine) hwRead(s *State, bi *trace.BlockInfo, instrAddr, addr uint32, size int, class trace.Class) *expr.Expr {
	e.col.IO(bi, trace.Access{
		InstrAddr: instrAddr, Addr: addr, Size: size, Class: class, Symbolic: true,
	})
	if e.cfg.ConcreteHardware {
		// Ablation: a passive concrete device. Status registers read
		// as zero, which is what idle hardware mostly returns.
		return e.ar.C(0, 32)
	}
	return e.ar.Zext(e.freshSym("hw", uint8(size*8)), 32)
}

func (e *Engine) hwWrite(s *State, bi *trace.BlockInfo, instrAddr, addr uint32, size int, v *expr.Expr) {
	e.col.IO(bi, trace.Access{
		InstrAddr: instrAddr, Addr: addr, Size: size, Write: true,
		Class: classOf(addr, true, &e.dma), Value: expr.Eval(v, nil),
		Symbolic: v.Kind != expr.KConst,
	})
}

func classOf(addr uint32, mmioSpace bool, dma *hw.DMARegistry) trace.Class {
	if hw.IsMMIO(addr) {
		return trace.ClassMMIO
	}
	if dma.Contains(addr) {
		return trace.ClassDMA
	}
	return trace.ClassRegular
}

// apiModel emulates the concrete OS side of selective symbolic
// execution at the API boundary. The driver's view matches package
// guestos exactly; symbolic arguments crossing into the OS are
// concretized, "keeping the OS unaware of symbolic execution" (§3.4).
func (e *Engine) apiModel(s *State, bi *trace.BlockInfo, callSite uint32, index uint32) error {
	if index >= guestos.NumAPIs {
		return fmt.Errorf("symexec: unknown API %d", index)
	}
	d := guestos.Table[index]
	sp, _ := s.Regs[isa.SP].IsConst()
	args := make([]uint32, d.NArgs)
	for i := range args {
		v, ok := e.concretizeU32(s, s.Mem.Read(sp+uint32(4*i), 4))
		if !ok {
			return fmt.Errorf("symexec: unsatisfiable API argument")
		}
		args[i] = v
	}
	ret := uint32(guestos.StatusSuccess)
	switch index {
	case guestos.APIRegisterMiniport:
		p := args[0]
		get := func(off uint32) uint32 {
			v, _ := s.Mem.Read(p+off, 4).IsConst()
			return v
		}
		e.entries = guestos.EntryPoints{
			Init:  get(guestos.CharInit),
			Send:  get(guestos.CharSend),
			ISR:   get(guestos.CharISR),
			Query: get(guestos.CharQuery),
			Set:   get(guestos.CharSet),
			Halt:  get(guestos.CharHalt),
		}
	case guestos.APIAllocateMemory, guestos.APIAllocateSharedMemory:
		n := (args[0] + 7) &^ 7
		ret = s.heapNext
		s.heapNext += n
		if index == guestos.APIAllocateSharedMemory {
			// Track DMA regions and report them to the shell device
			// (§3.4): reads from them return symbolic values.
			e.dma.Register(ret, args[0])
		}
	case guestos.APIReadPCIConfig:
		switch args[0] {
		case guestos.PCICfgID:
			ret = uint32(e.cfg.Shell.VendorID) | uint32(e.cfg.Shell.DeviceID)<<16
		case guestos.PCICfgIOBase:
			ret = e.cfg.Shell.IOBase
		case guestos.PCICfgIRQ:
			ret = uint32(e.cfg.Shell.IRQLine)
		default:
			ret = 0
		}
	case guestos.APIInitializeTimer:
		e.timer = args[0]
	case guestos.APIGetSystemUpTime:
		ret = 1000
	}
	e.col.API(bi, trace.APICallRecord{CallSite: callSite, Index: index, Name: d.Name, Args: args})
	// stdcall: the callee (here, the OS) pops the arguments. The call
	// instruction has not pushed a return address in this model; the
	// caller resumes at the instruction after the call.
	s.Regs[isa.SP] = e.ar.C(sp+uint32(4*d.NArgs), 32)
	s.Regs[isa.R0] = e.ar.C(ret, 32)
	return nil
}

// --- instruction execution --------------------------------------------------

// stepBlock executes one translation block on the state, returning
// the follow-on states (usually just s; two on a fork; none if the
// state terminated).
func (e *Engine) stepBlock(s *State) ([]*State, error) {
	b, err := e.cache.Get(s.PC)
	if err != nil {
		// Fetch outside mapped code: an error path (§3.2) — kill it.
		s.Reason = TermError
		return nil, nil
	}
	// Register snapshots are sampled on a block's first execution
	// only (the wiretap keeps one sample pair); evaluating witness
	// values for every repeat execution of hot blocks would dominate
	// exploration time on deep paths.
	isNew := e.col.BlockCount(b.Addr) == 0
	var regsIn [8]uint32
	if isNew {
		regsIn = s.ConcreteRegs()
	}
	bi := e.col.Block(b, regsIn, regsIn)
	s.lastBlock = b.Addr
	s.hasLast = true
	if e.inDriver(b.Addr) {
		e.exec++
		s.Depth++
		s.localCount[b.Addr]++
		e.sampleCoverage(b.Addr)
	}

	out, err := e.execInstrs(s, b, bi)
	if isNew {
		bi.RegsOutSample = s.ConcreteRegs()
	}
	return out, err
}

func (e *Engine) src2(s *State, in isa.Instr) *expr.Expr {
	if in.HasImmOperand() {
		return e.ar.C(in.Imm, 32)
	}
	return s.Regs[in.Rs2]
}

// condExpr builds the boolean for a branch condition.
func (e *Engine) condExpr(c isa.Cond, a, b *expr.Expr) *expr.Expr {
	switch c {
	case isa.EQ:
		return e.ar.Eq(a, b)
	case isa.NE:
		return e.ar.Not(e.ar.Eq(a, b))
	case isa.LT:
		return e.ar.Slt(a, b)
	case isa.GE:
		return e.ar.Not(e.ar.Slt(a, b))
	case isa.LTU:
		return e.ar.Ult(a, b)
	case isa.GEU:
		return e.ar.Not(e.ar.Ult(a, b))
	}
	panic("symexec: bad cond")
}

// readsR0 reports whether the instruction consumes r0 as a source.
func readsR0(in isa.Instr) bool {
	switch in.Op {
	case isa.MOV, isa.LD8, isa.LD16, isa.LD32, isa.IN8, isa.IN16, isa.IN32,
		isa.PUSH, isa.JR, isa.CALLR, isa.BRI:
		return in.Rs1 == isa.R0
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR, isa.MUL, isa.BR:
		return in.Rs1 == isa.R0 || (!in.HasImmOperand() && in.Rs2 == isa.R0)
	case isa.ST8, isa.ST16, isa.ST32, isa.OUT8, isa.OUT16, isa.OUT32:
		return in.Rs1 == isa.R0 || in.Rs2 == isa.R0
	}
	return false
}

// writesR0 reports whether the instruction defines r0.
func writesR0(in isa.Instr) bool {
	switch in.Op {
	case isa.MOVI, isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SAR, isa.MUL,
		isa.LD8, isa.LD16, isa.LD32, isa.IN8, isa.IN16, isa.IN32, isa.POP:
		return in.Rd == isa.R0
	}
	return false
}

// execInstrs runs the instructions of b on s. It returns follow-on
// states; a terminated state returns nil with s.Reason set.
func (e *Engine) execInstrs(s *State, b *ir.Block, bi *trace.BlockInfo) ([]*State, error) {
	for i, in := range b.Instrs {
		addr := b.InstrAddr(i)
		nextPC := addr + isa.InstrSize
		// Return-value liveness (§4.1): a read of r0 after a return,
		// before any redefinition, proves the callee has a return
		// value.
		if s.pendingRet != 0 {
			if readsR0(in) {
				e.col.Returns(s.pendingRet)
				s.pendingRet = 0
			} else if writesR0(in) {
				s.pendingRet = 0
			}
		}
		switch in.Op {
		case isa.NOP:
		case isa.MOVI:
			s.Regs[in.Rd] = e.ar.C(in.Imm, 32)
		case isa.MOV:
			s.Regs[in.Rd] = s.Regs[in.Rs1]
		case isa.ADD:
			s.Regs[in.Rd] = e.ar.Add(s.Regs[in.Rs1], e.src2(s, in))
		case isa.SUB:
			s.Regs[in.Rd] = e.ar.Sub(s.Regs[in.Rs1], e.src2(s, in))
		case isa.AND:
			s.Regs[in.Rd] = e.ar.And(s.Regs[in.Rs1], e.src2(s, in))
		case isa.OR:
			s.Regs[in.Rd] = e.ar.Or(s.Regs[in.Rs1], e.src2(s, in))
		case isa.XOR:
			s.Regs[in.Rd] = e.ar.Xor(s.Regs[in.Rs1], e.src2(s, in))
		case isa.SHL:
			s.Regs[in.Rd] = e.ar.Shl(s.Regs[in.Rs1], e.src2(s, in))
		case isa.SHR:
			s.Regs[in.Rd] = e.ar.Lshr(s.Regs[in.Rs1], e.src2(s, in))
		case isa.SAR:
			s.Regs[in.Rd] = e.ar.Ashr(s.Regs[in.Rs1], e.src2(s, in))
		case isa.MUL:
			s.Regs[in.Rd] = e.ar.Mul(s.Regs[in.Rs1], e.src2(s, in))

		case isa.LD8, isa.LD16, isa.LD32:
			v, err := e.load(s, bi, addr, e.ar.Add(s.Regs[in.Rs1], e.ar.C(in.Imm, 32)), in.Op.AccessSize())
			if err != nil {
				s.Reason = TermError
				return nil, nil
			}
			s.Regs[in.Rd] = v
		case isa.ST8, isa.ST16, isa.ST32:
			if err := e.store(s, bi, addr, e.ar.Add(s.Regs[in.Rs1], e.ar.C(in.Imm, 32)), in.Op.AccessSize(), s.Regs[in.Rs2]); err != nil {
				s.Reason = TermError
				return nil, nil
			}
		case isa.IN8, isa.IN16, isa.IN32:
			port, ok := e.concretizeU32(s, e.ar.Add(s.Regs[in.Rs1], e.ar.C(in.Imm, 32)))
			if !ok {
				s.Reason = TermError
				return nil, nil
			}
			s.Regs[in.Rd] = e.hwRead(s, bi, addr, port, in.Op.AccessSize(), trace.ClassPortIO)
		case isa.OUT8, isa.OUT16, isa.OUT32:
			port, ok := e.concretizeU32(s, e.ar.Add(s.Regs[in.Rs1], e.ar.C(in.Imm, 32)))
			if !ok {
				s.Reason = TermError
				return nil, nil
			}
			sz := in.Op.AccessSize()
			v := e.ar.Trunc(s.Regs[in.Rs2], uint8(sz*8))
			e.col.IO(bi, trace.Access{
				InstrAddr: addr, Addr: port, Size: sz, Write: true,
				Class: trace.ClassPortIO, Value: expr.Eval(v, nil),
				Symbolic: v.Kind != expr.KConst,
			})
		case isa.PUSH:
			sp := e.ar.Sub(s.Regs[isa.SP], e.ar.C(4, 32))
			s.Regs[isa.SP] = sp
			if err := e.store(s, bi, addr, sp, 4, s.Regs[in.Rs1]); err != nil {
				s.Reason = TermError
				return nil, nil
			}
		case isa.POP:
			v, err := e.load(s, bi, addr, s.Regs[isa.SP], 4)
			if err != nil {
				s.Reason = TermError
				return nil, nil
			}
			s.Regs[in.Rd] = v
			s.Regs[isa.SP] = e.ar.Add(s.Regs[isa.SP], e.ar.C(4, 32))

		case isa.JMP:
			e.col.Edge(addr, in.Imm, trace.EdgeBranch)
			s.PC = in.Imm
			return []*State{s}, nil
		case isa.JR:
			return e.indirectJump(s, bi, addr, s.Regs[in.Rs1], false)
		case isa.BR, isa.BRI:
			var rhs *expr.Expr
			if in.Op == isa.BRI {
				rhs = e.ar.C(uint32(uint8(in.Rs2)), 32)
			} else {
				rhs = s.Regs[in.Rs2]
			}
			return e.branch(s, bi, addr, e.condExpr(in.Cond(), s.Regs[in.Rs1], rhs), in.Imm, b.EndAddr())
		case isa.CALL, isa.CALLR:
			targetE := e.ar.C(in.Imm, 32)
			if in.Op == isa.CALLR {
				targetE = s.Regs[in.Rs1]
			}
			target, ok := e.concretizeU32(s, targetE)
			if !ok {
				s.Reason = TermError
				return nil, nil
			}
			if hw.IsAPIGate(target) {
				if err := e.apiModel(s, bi, addr, hw.APIIndex(target)); err != nil {
					s.Reason = TermError
					return nil, nil
				}
				s.PC = nextPC
				continue // API call does not end the path
			}
			sp := e.ar.Sub(s.Regs[isa.SP], e.ar.C(4, 32))
			s.Regs[isa.SP] = sp
			if err := e.store(s, bi, addr, sp, 4, e.ar.C(nextPC, 32)); err != nil {
				s.Reason = TermError
				return nil, nil
			}
			spV, _ := sp.IsConst()
			s.Frames = append(s.Frames, frame{callSite: addr, target: target, retAddr: nextPC, entrySP: spV})
			e.col.Call(addr, target)
			e.col.Edge(addr, target, trace.EdgeCall)
			s.PC = target
			return []*State{s}, nil
		case isa.RET:
			ra, err := e.load(s, bi, addr, s.Regs[isa.SP], 4)
			if err != nil {
				s.Reason = TermError
				return nil, nil
			}
			raV, ok := e.concretizeU32(s, ra)
			if !ok {
				s.Reason = TermError
				return nil, nil
			}
			s.Regs[isa.SP] = e.ar.Add(s.Regs[isa.SP], e.ar.C(4+in.Imm, 32))
			if len(s.Frames) > 0 {
				s.pendingRet = s.Frames[len(s.Frames)-1].target
				s.Frames = s.Frames[:len(s.Frames)-1]
			}
			if raV == vm.MagicReturn {
				s.Reason = TermCompleted
				s.Result = s.Regs[isa.R0]
				return nil, nil
			}
			e.col.Edge(addr, raV, trace.EdgeReturn)
			s.PC = raV
			return []*State{s}, nil
		case isa.IRET, isa.HLT:
			s.Reason = TermCompleted
			s.Result = s.Regs[isa.R0]
			return nil, nil
		default:
			return nil, fmt.Errorf("symexec: unimplemented op %v", in.Op)
		}
		s.PC = nextPC
	}
	// Block ended without terminator (MaxBlockInstrs hit): continue.
	return []*State{s}, nil
}

// load routes a memory read: device windows and DMA regions are
// symbolic hardware; everything else is symbolic RAM. Symbolic
// addresses are concretized (§3.4).
func (e *Engine) load(s *State, bi *trace.BlockInfo, instrAddr uint32, addrE *expr.Expr, size int) (*expr.Expr, error) {
	addr, ok := e.concretizeU32(s, addrE)
	if !ok {
		return nil, fmt.Errorf("unsat address")
	}
	if hw.IsMMIO(addr) {
		return e.hwRead(s, bi, instrAddr, addr, size, trace.ClassMMIO), nil
	}
	if e.dma.Contains(addr) {
		// DMA memory is written by the device, so its contents are
		// symbolic hardware input too (§3.4).
		e.col.IO(bi, trace.Access{InstrAddr: instrAddr, Addr: addr, Size: size, Class: trace.ClassDMA, Symbolic: true})
		return e.ar.Zext(e.freshSym("dma", uint8(size*8)), 32), nil
	}
	if int(addr)+size > len(e.baseRAM) {
		return nil, fmt.Errorf("read outside RAM")
	}
	// Parameter-recovery evidence (§4.1): a read above the current
	// frame's entry SP reaches into the parent's stack frame.
	if n := len(s.Frames); n > 0 {
		f := s.Frames[n-1]
		if f.entrySP != 0 && addr >= f.entrySP+4 && addr < f.entrySP+4+16*4 {
			e.col.Param(f.target, int(addr-f.entrySP-4)/4)
		}
	}
	return s.Mem.Read(addr, size), nil
}

func (e *Engine) store(s *State, bi *trace.BlockInfo, instrAddr uint32, addrE *expr.Expr, size int, v *expr.Expr) error {
	addr, ok := e.concretizeU32(s, addrE)
	if !ok {
		return fmt.Errorf("unsat address")
	}
	if hw.IsMMIO(addr) {
		e.hwWrite(s, bi, instrAddr, addr, size, v)
		return nil
	}
	if e.dma.Contains(addr) {
		e.col.IO(bi, trace.Access{
			InstrAddr: instrAddr, Addr: addr, Size: size, Write: true,
			Class: trace.ClassDMA, Value: expr.Eval(v, nil),
			Symbolic: v.Kind != expr.KConst,
		})
		// DMA writes also land in RAM so the driver can read back
		// its own descriptors.
	}
	if int(addr)+size > len(e.baseRAM) {
		return fmt.Errorf("write outside RAM")
	}
	s.Mem.Write(addr, size, e.ar.Trunc(v, uint8(size*8)))
	return nil
}

// branch resolves a conditional: concrete conditions follow directly;
// symbolic ones fork when both sides are feasible. The polling-loop
// killer prunes the side that stays in an already-hot block.
func (e *Engine) branch(s *State, bi *trace.BlockInfo, instrAddr uint32, cond *expr.Expr, taken, fallthrough_ uint32) ([]*State, error) {
	if cond.IsTrue() {
		e.col.Edge(instrAddr, taken, trace.EdgeBranch)
		s.PC = taken
		return []*State{s}, nil
	}
	if cond.IsFalse() {
		e.col.Edge(instrAddr, fallthrough_, trace.EdgeFallthrough)
		s.PC = fallthrough_
		return []*State{s}, nil
	}
	mayTake := e.sol.MayBeTrue(s.Constraints, cond)
	mayFall := e.sol.MayBeTrue(s.Constraints, e.ar.Not(cond))
	switch {
	case mayTake && !mayFall:
		s.Constrain(cond)
		e.col.Edge(instrAddr, taken, trace.EdgeBranch)
		s.PC = taken
		return []*State{s}, nil
	case !mayTake && mayFall:
		s.Constrain(e.ar.Not(cond))
		e.col.Edge(instrAddr, fallthrough_, trace.EdgeFallthrough)
		s.PC = fallthrough_
		return []*State{s}, nil
	case !mayTake && !mayFall:
		s.Reason = TermError
		return nil, nil
	}
	// Both feasible: fork. Polling-loop heuristic: if one target has
	// re-executed beyond the threshold in this state, keep only the
	// path that steps out of the loop (§3.2).
	if !e.cfg.DisableLoopKill {
		if s.localCount[taken] >= e.cfg.PollThreshold && s.localCount[fallthrough_] < e.cfg.PollThreshold {
			e.killed++
			s.Constrain(e.ar.Not(cond))
			e.col.Edge(instrAddr, fallthrough_, trace.EdgeFallthrough)
			s.PC = fallthrough_
			return []*State{s}, nil
		}
		if s.localCount[fallthrough_] >= e.cfg.PollThreshold && s.localCount[taken] < e.cfg.PollThreshold {
			e.killed++
			s.Constrain(cond)
			e.col.Edge(instrAddr, taken, trace.EdgeBranch)
			s.PC = taken
			return []*State{s}, nil
		}
	}
	c := e.fork(s)
	s.Constrain(cond)
	s.PC = taken
	e.col.Edge(instrAddr, taken, trace.EdgeBranch)
	c.Constrain(e.ar.Not(cond))
	c.PC = fallthrough_
	e.col.Edge(instrAddr, fallthrough_, trace.EdgeFallthrough)
	return []*State{s, c}, nil
}

// indirectJump enumerates the feasible targets of a symbolic jump
// (jump tables from switch statements, §3.4) and forks one state per
// concrete target.
func (e *Engine) indirectJump(s *State, bi *trace.BlockInfo, instrAddr uint32, target *expr.Expr, isCall bool) ([]*State, error) {
	if v, ok := target.IsConst(); ok {
		e.col.Edge(instrAddr, v, trace.EdgeBranch)
		s.PC = v
		return []*State{s}, nil
	}
	values := e.sol.Values(s.Constraints, target, 16)
	var out []*State
	for i, v := range values {
		if !e.inDriver(v) {
			continue // wild target: error path, drop
		}
		var st *State
		if i == len(values)-1 {
			st = s
		} else {
			st = e.fork(s)
		}
		st.Constrain(e.ar.Eq(target, e.ar.C(v, target.Width)))
		st.PC = v
		e.col.Edge(instrAddr, v, trace.EdgeBranch)
		out = append(out, st)
	}
	if len(out) == 0 {
		s.Reason = TermError
		return nil, nil
	}
	return out, nil
}
