package symexec

import (
	"container/heap"
	"fmt"
	"sort"
)

// This file defines the pluggable path-selection layer. The engine's
// state-selection loop no longer hardcodes a strategy enum: each
// exploration (the root engine and every fork-join worker child)
// constructs a Searcher through the factory in Config.Searcher and
// consults it for every scheduling decision. Determinism is part of
// the contract — a Searcher sees only deterministic inputs (the live
// set in its deterministic order, the engine-local block counts), so
// for a fixed Config the explored paths are bit-identical for every
// Config.Workers value, per searcher.

// Searcher picks the next state to execute from the live set and is
// kept informed as the frontier changes.
//
// The engine's protocol: Select is called with the current live set
// (never empty) and must return one of its members; the engine then
// removes that state from the set, executes one translation block,
// and calls Update with the step's follow-on states as added (which
// may include the selected state, if it is still live) and the states
// that left the frontier as removed — the selected state always,
// plus any states discarded by the budget and memory heuristics.
// Implementations must be deterministic functions of this call
// sequence and of engine-local statistics; they need not be safe for
// concurrent use (each exploration owns its searcher).
type Searcher interface {
	// Name identifies the searcher in reports and flags.
	Name() string
	// Select returns the next state to run; must be an element of live.
	Select(live []*State) *State
	// Update informs the searcher of frontier changes: removed states
	// leave first, then added states join.
	Update(added, removed []*State)
}

// BlockCounts is the engine-side statistics view searchers may
// consult; the trace collector implements it.
type BlockCounts interface {
	// BlockCount returns how often the block at addr has executed in
	// this exploration.
	BlockCount(addr uint32) int64
}

// SearcherFactory builds a fresh searcher for one exploration. The
// engine calls it once per explored state group with its own
// statistics view, so searcher state is never shared across
// concurrent workers.
type SearcherFactory func(counts BlockCounts) Searcher

// NewCoverageGuided returns the paper's default heuristic (§3.2): run
// the state whose next block has executed least. "A good side effect
// of this heuristic is that it does not get stuck in loops."
//
// Selection is a priority queue keyed on block execution counts, not
// a scan of the live set: Select is O(log n) in the frontier size, so
// large MaxStates configurations no longer pay O(n) per scheduling
// decision. Because block counts only grow, the queue rescores
// lazily — an entry's priority is re-checked (and the entry pushed
// back down) only when it surfaces at the top — which keeps Update
// O(1) per frontier change instead of reheapifying on every count
// bump.
func NewCoverageGuided(counts BlockCounts) Searcher {
	return &coverageSearcher{counts: counts, pos: map[*State]*covEntry{}}
}

// covEntry is one frontier state in the coverage priority queue.
type covEntry struct {
	st *State
	// count is the block count the entry was last scored with; it may
	// lag the collector (lazy rescoring), never lead it.
	count int64
	// seq breaks count ties FIFO, keeping selection a deterministic
	// function of the engine's call sequence.
	seq   int
	index int // heap position, maintained by covHeap
}

type coverageSearcher struct {
	counts BlockCounts
	h      covHeap
	pos    map[*State]*covEntry
	seq    int
}

func (s *coverageSearcher) Name() string { return "coverage" }

func (s *coverageSearcher) Select(live []*State) *State {
	if len(s.h) == 0 {
		// Defensive resynchronization; the engine protocol keeps the
		// queue in lockstep with live, so this is never hit there.
		s.Update(live, nil)
	}
	for {
		top := s.h[0]
		// Lazy rescoring: counts are monotone, so a stale entry can
		// only have become worse. Fix it in place and look again; an
		// up-to-date top is the true minimum.
		if c := s.counts.BlockCount(top.st.PC); c != top.count {
			top.count = c
			heap.Fix(&s.h, 0)
			continue
		}
		return top.st
	}
}

func (s *coverageSearcher) Update(added, removed []*State) {
	for _, r := range removed {
		if e, ok := s.pos[r]; ok {
			heap.Remove(&s.h, e.index)
			delete(s.pos, r)
		}
	}
	for _, a := range added {
		if _, ok := s.pos[a]; ok {
			continue
		}
		e := &covEntry{st: a, count: s.counts.BlockCount(a.PC), seq: s.seq}
		s.seq++
		s.pos[a] = e
		heap.Push(&s.h, e)
	}
}

// covHeap is a min-heap of frontier entries ordered by (count, seq).
type covHeap []*covEntry

func (h covHeap) Len() int { return len(h) }
func (h covHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].seq < h[j].seq
}
func (h covHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *covHeap) Push(x any) {
	e := x.(*covEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *covHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewDFS returns a depth-first searcher: the most recently produced
// state runs next, so one path is driven to termination before its
// siblings. The §3.2 ablation baseline.
func NewDFS(BlockCounts) Searcher { return &frontierSearcher{name: "dfs", lifo: true} }

// NewBFS returns a breadth-first searcher: states run in the order
// they were produced, exploring all paths in lockstep.
func NewBFS(BlockCounts) Searcher { return &frontierSearcher{name: "bfs"} }

// frontierSearcher maintains an explicit frontier ordered by
// insertion; lifo selects stack (DFS) or queue (BFS) discipline.
type frontierSearcher struct {
	name  string
	lifo  bool
	order []*State
}

func (s *frontierSearcher) Name() string { return s.name }

func (s *frontierSearcher) Select(live []*State) *State {
	if len(s.order) == 0 {
		// Defensive resynchronization; the engine protocol keeps the
		// frontier in lockstep with live, so this is never hit there.
		s.order = append(s.order, live...)
	}
	if s.lifo {
		return s.order[len(s.order)-1]
	}
	return s.order[0]
}

func (s *frontierSearcher) Update(added, removed []*State) {
	for _, r := range removed {
		// The departing state is almost always at the selection end;
		// scan from there.
		if s.lifo {
			for i := len(s.order) - 1; i >= 0; i-- {
				if s.order[i] == r {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		} else {
			for i := 0; i < len(s.order); i++ {
				if s.order[i] == r {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
	}
	s.order = append(s.order, added...)
}

// searcherFactories is the flag-name registry; cmd/revnic and
// cmd/revbench resolve their -strategy flags here. "mincount" is the
// historical alias of the coverage-guided default.
var searcherFactories = map[string]SearcherFactory{
	"coverage": NewCoverageGuided,
	"mincount": NewCoverageGuided,
	"dfs":      NewDFS,
	"bfs":      NewBFS,
}

// SearcherByName resolves a -strategy flag value to a factory.
func SearcherByName(name string) (SearcherFactory, error) {
	if f, ok := searcherFactories[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("symexec: unknown strategy %q (have %v)", name, SearcherNames())
}

// SearcherNames lists the registered strategy names, sorted.
func SearcherNames() []string {
	names := make([]string, 0, len(searcherFactories))
	for n := range searcherFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
