package symexec

import (
	"fmt"
	"testing"

	"revnic/internal/drivers"
	"revnic/internal/hw"
)

// TestShardFactorDeterminismMatrix quantifies the scheduling contract
// over the new granularity knob: for each FIXED shard factor, the
// result is bit-identical across worker counts and across dispatch
// modes (in-process fork-join vs the wire-codec remote runner, vs a
// mix with local fallbacks). The factor — like Shards and Seed — is
// part of the deterministic schedule; everything downstream of the
// schedule is not.
func TestShardFactorDeterminismMatrix(t *testing.T) {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		t.Fatal(err)
	}
	shell := hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
		IOBase: 0xC000, IOSize: 0x100, IRQLine: 11}
	for _, factor := range []int{1, 2} {
		t.Run(fmt.Sprintf("factor=%d", factor), func(t *testing.T) {
			base := exploreDriver(t, "RTL8029", Config{Seed: 11, Workers: 1, ShardFactor: factor})
			want := traceFingerprint(base)

			for _, workers := range []int{2, 4} {
				res := exploreDriver(t, "RTL8029", Config{Seed: 11, Workers: workers, ShardFactor: factor})
				if got := traceFingerprint(res); got != want {
					t.Fatalf("factor=%d workers=%d diverged from workers=1 (fingerprints %d vs %d bytes)",
						factor, workers, len(got), len(want))
				}
			}
			for name, localEvery := range map[string]int{"remote": 0, "mixed": 2} {
				cfg := Config{Seed: 11, Workers: 2, ShardFactor: factor, Shell: shell}
				cfg.ShardRunner = &wireRunner{
					prog:       info.Program,
					cfg:        Config{Seed: 11, Shell: shell},
					localEvery: localEvery,
				}
				res, err := New(info.Program, cfg).Explore()
				if err != nil {
					t.Fatal(err)
				}
				if got := traceFingerprint(res); got != want {
					t.Fatalf("factor=%d %s dispatch diverged from in-process run (fingerprints %d vs %d bytes)",
						factor, name, len(got), len(want))
				}
			}
		})
	}
}

// TestShardsEffectiveSurfaced pins the parallelism-collapse stat: a
// run whose phases fan out must report the narrowest achieved width,
// and a run that cannot fan out (Shards=1) must report zero with no
// collapses counted as fan-out loss.
func TestShardsEffectiveSurfaced(t *testing.T) {
	res := exploreDriver(t, "RTL8029", Config{Seed: 11, Workers: 2})
	if res.ShardsEffective < 1 {
		t.Fatalf("ShardsEffective = %d; default config never fanned out", res.ShardsEffective)
	}
	serial := exploreDriver(t, "RTL8029", Config{Seed: 11, Shards: 1})
	if serial.ShardsEffective != 0 || serial.ShardCollapses != 0 {
		t.Fatalf("Shards=1 reported effective=%d collapses=%d, want 0/0",
			serial.ShardsEffective, serial.ShardCollapses)
	}
}
