package symexec

import (
	"fmt"
	"sort"

	"revnic/internal/expr"
)

// Wire form of a state group, for the distributed exploration mode.
// Phases are sequential and state-carrying — the seed of each phase is
// a completed state of the previous one — so shipping a shard group to
// a peer node means shipping live symbolic states: registers, the COW
// memory overlay, path constraints, frames and the heuristics'
// bookkeeping. Everything expression-valued is encoded through one
// shared expr.WireNode table (constraints across sibling states share
// most of their structure), and overlay pages are deduplicated by
// pointer identity, so COW sharing survives the encoding instead of
// being multiplied out per state.
//
// Decoding rebuilds expressions through the arena constructors (see
// expr.DAGDecoder), which reproduces the source structures exactly;
// decoded pages are marked shared so the first write inside any state
// copies them, exactly like pages arriving through Memory.Fork.

// WireFrame is one guest call frame.
type WireFrame struct {
	CallSite uint32 `json:"cs,omitempty"`
	Target   uint32 `json:"tg,omitempty"`
	RetAddr  uint32 `json:"ra,omitempty"`
	EntrySP  uint32 `json:"sp,omitempty"`
}

// WirePage is one memory overlay page: the in-page offsets that carry
// a symbolic overlay byte, with their expression references in a
// parallel slice. Offsets are emitted in increasing order.
type WirePage struct {
	Off []uint16 `json:"off,omitempty"`
	Ref []int32  `json:"ref,omitempty"`
}

// WireState is one serialized execution state. Expression-valued
// fields hold 1-based references into the group's node table (0 =
// nil); Pages maps page indices to 1-based references into the
// group's page table.
type WireState struct {
	ID          int              `json:"id"`
	PC          uint32           `json:"pc"`
	Regs        [8]int32         `json:"regs"`
	Constraints []int32          `json:"cons,omitempty"`
	Pages       map[uint32]int32 `json:"pages,omitempty"`
	Frames      []WireFrame      `json:"frames,omitempty"`
	Reason      int              `json:"reason,omitempty"`
	Result      int32            `json:"result,omitempty"`
	HeapNext    uint32           `json:"heap,omitempty"`
	LocalCount  map[uint32]int   `json:"local,omitempty"`
	LastBlock   uint32           `json:"last,omitempty"`
	HasLast     bool             `json:"has_last,omitempty"`
	PendingRet  uint32           `json:"pending_ret,omitempty"`
	Depth       int              `json:"depth,omitempty"`
}

// WireStateGroup is a set of states sharing one expression node table
// and one overlay page table.
type WireStateGroup struct {
	Exprs  []expr.WireNode `json:"exprs,omitempty"`
	Pages  []WirePage      `json:"pages,omitempty"`
	States []WireState     `json:"states,omitempty"`
}

// encodeStateGroup serializes the states into one WireStateGroup.
// Pages shared between states (COW) are emitted once and referenced
// from each sharer, preserving the fork tree's structure on the wire.
func encodeStateGroup(states []*State) *WireStateGroup {
	enc := expr.NewDAGEncoder()
	g := &WireStateGroup{}
	pageRef := map[*page]int32{}
	encodePage := func(p *page) int32 {
		if r, ok := pageRef[p]; ok {
			return r
		}
		var wp WirePage
		for off, e := range p.bytes {
			if e != nil {
				wp.Off = append(wp.Off, uint16(off))
				wp.Ref = append(wp.Ref, enc.Add(e))
			}
		}
		g.Pages = append(g.Pages, wp)
		r := int32(len(g.Pages))
		pageRef[p] = r
		return r
	}
	for _, s := range states {
		ws := WireState{
			ID:         s.ID,
			PC:         s.PC,
			Reason:     int(s.Reason),
			HeapNext:   s.heapNext,
			LastBlock:  s.lastBlock,
			HasLast:    s.hasLast,
			PendingRet: s.pendingRet,
			Depth:      s.Depth,
		}
		for i, r := range s.Regs {
			ws.Regs[i] = enc.Add(r)
		}
		for _, c := range s.Constraints {
			ws.Constraints = append(ws.Constraints, enc.Add(c))
		}
		ws.Result = enc.Add(s.Result)
		if len(s.Mem.pages) > 0 {
			ws.Pages = make(map[uint32]int32, len(s.Mem.pages))
			// Sorted emission keeps the node and page tables
			// deterministic across runs (map iteration order is not).
			for _, idx := range sortedKeysU32(s.Mem.pages) {
				ws.Pages[idx] = encodePage(s.Mem.pages[idx])
			}
		}
		for _, f := range s.Frames {
			ws.Frames = append(ws.Frames, WireFrame{
				CallSite: f.callSite, Target: f.target, RetAddr: f.retAddr, EntrySP: f.entrySP,
			})
		}
		if len(s.localCount) > 0 {
			ws.LocalCount = make(map[uint32]int, len(s.localCount))
			for k, v := range s.localCount {
				ws.LocalCount[k] = v
			}
		}
		g.States = append(g.States, ws)
	}
	g.Exprs = enc.Nodes()
	return g
}

// decodeStateGroup rebuilds the states against the given base image
// and arena. Wire bytes arrive from the network, so every structural
// violation is an error, never a panic; a decode error means the
// payload was torn or the peers disagree about the job.
func decodeStateGroup(g *WireStateGroup, base []byte, ar *expr.Arena) ([]*State, error) {
	if g == nil {
		return nil, nil
	}
	dec := ar.NewDAGDecoder(g.Exprs)
	pages := make([]*page, len(g.Pages))
	for i, wp := range g.Pages {
		if len(wp.Off) != len(wp.Ref) {
			return nil, fmt.Errorf("symexec: decode page %d: %d offsets, %d refs", i, len(wp.Off), len(wp.Ref))
		}
		// Decoded pages start shared: they may be referenced by several
		// states, and even a sole owner must copy before writing so the
		// group can be re-encoded (hedged re-dispatch) untouched.
		p := &page{shared: true}
		for k, off := range wp.Off {
			if int(off) >= pageSize {
				return nil, fmt.Errorf("symexec: decode page %d: offset %d outside page", i, off)
			}
			e, err := dec.Ref(wp.Ref[k])
			if err != nil {
				return nil, err
			}
			if e == nil || e.Width != 8 {
				return nil, fmt.Errorf("symexec: decode page %d: byte at %d is not a width-8 expression", i, off)
			}
			p.bytes[off] = e
		}
		pages[i] = p
	}
	out := make([]*State, 0, len(g.States))
	for si, ws := range g.States {
		if ws.Reason < int(TermRunning) || ws.Reason > int(TermDeadline) {
			return nil, fmt.Errorf("symexec: decode state %d: unknown term reason %d", si, ws.Reason)
		}
		s := &State{
			ID:         ws.ID,
			PC:         ws.PC,
			Reason:     TermReason(ws.Reason),
			heapNext:   ws.HeapNext,
			lastBlock:  ws.LastBlock,
			hasLast:    ws.HasLast,
			pendingRet: ws.PendingRet,
			Depth:      ws.Depth,
			localCount: make(map[uint32]int, len(ws.LocalCount)),
		}
		for i, ref := range ws.Regs {
			e, err := dec.Ref(ref)
			if err != nil {
				return nil, err
			}
			if e == nil || e.Width != 32 {
				return nil, fmt.Errorf("symexec: decode state %d: register %d is not a width-32 expression", si, i)
			}
			s.Regs[i] = e
		}
		for _, ref := range ws.Constraints {
			e, err := dec.Ref(ref)
			if err != nil {
				return nil, err
			}
			if e == nil || e.Width != 1 {
				return nil, fmt.Errorf("symexec: decode state %d: constraint is not a width-1 expression", si)
			}
			s.Constraints = append(s.Constraints, e)
		}
		res, err := dec.Ref(ws.Result)
		if err != nil {
			return nil, err
		}
		s.Result = res
		mem := NewMemoryArena(base, ar)
		for idx, ref := range ws.Pages {
			if ref < 1 || int(ref) > len(pages) {
				return nil, fmt.Errorf("symexec: decode state %d: page reference %d outside table of %d", si, ref, len(pages))
			}
			mem.pages[idx] = pages[ref-1]
		}
		s.Mem = mem
		for _, f := range ws.Frames {
			s.Frames = append(s.Frames, frame{
				callSite: f.CallSite, target: f.Target, retAddr: f.RetAddr, entrySP: f.EntrySP,
			})
		}
		for k, v := range ws.LocalCount {
			s.localCount[k] = v
		}
		out = append(out, s)
	}
	return out, nil
}

func sortedKeysU32[V any](m map[uint32]V) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
