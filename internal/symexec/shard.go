package symexec

import (
	"fmt"
	"math/rand"

	"revnic/internal/guestos"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/trace"
)

// This file is the engine's half of distributed exploration: the
// fork-join shard groups that PR 1 made deterministic and
// worker-count-independent are extracted into self-contained
// ShardTasks that any node can execute (ExecuteShardTask) and whose
// ShardResults merge back on the coordinator bit-identically to the
// in-process path. A task is idempotent — executing it twice, on
// different machines or once remotely and once as a local fallback,
// yields byte-for-byte the same result — which is what makes retries
// and hedged requests safe upstream.

// ShardBudget is a phase's per-shard exploration allowance, already
// split by the coordinator (phaseBudgets.split).
type ShardBudget struct {
	Blocks     int64 `json:"blocks"`
	Stagnation int64 `json:"stagnation"`
	Successes  int   `json:"successes"`
	MaxStates  int   `json:"max_states"`
}

// ShardTask is one shard group of one phase, with everything a peer
// engine needs to continue the exploration exactly where the
// coordinator's worker child would have: the serialized states, the
// registry snapshots (entry points, timer handler, DMA regions), the
// split budgets, and the deterministic identities (Seq names the
// symbol namespace and RNG stream, StateIDBase the reserved state-ID
// range).
type ShardTask struct {
	Phase       string              `json:"phase"`
	Index       int                 `json:"index"`
	Seq         int                 `json:"seq"`
	StateIDBase int                 `json:"state_id_base"`
	Success     string              `json:"success"`
	Budget      ShardBudget         `json:"budget"`
	Entries     guestos.EntryPoints `json:"entries"`
	Timer       uint32              `json:"timer,omitempty"`
	DMA         [][2]uint32         `json:"dma,omitempty"`
	Group       *WireStateGroup     `json:"group"`
}

// ShardResult is everything a shard execution feeds into the
// coordinator's join: the completed states (next-phase seed
// candidates), the wiretap records, the coverage discovery log, and
// the counters the merged summary sums.
type ShardResult struct {
	Completed *WireStateGroup      `json:"completed,omitempty"`
	Collector *trace.WireCollector `json:"collector"`
	Discov    []WireDiscovery      `json:"discov,omitempty"`
	Exec      int64                `json:"exec"`
	Forks     int64                `json:"forks"`
	Killed    int64                `json:"killed"`
	Queries   int64                `json:"queries"`
	CacheHits int64                `json:"cache_hits"`
	ModelHits int64                `json:"model_hits"`
	Entries   guestos.EntryPoints  `json:"entries"`
	Timer     uint32               `json:"timer,omitempty"`
	DMA       [][2]uint32          `json:"dma,omitempty"`
	Stopped   int                  `json:"stopped,omitempty"`
}

// WireDiscovery is one first-execution coverage event, stamped with
// the shard-local executed-block count.
type WireDiscovery struct {
	Addr uint32 `json:"addr"`
	Exec int64  `json:"exec"`
}

// ShardRunner executes shard tasks on behalf of the engine. The
// cluster dispatcher implements it with remote calls, retries and
// hedging; local is the guaranteed fallback — it executes the task on
// the coordinator engine and must be called (and its result returned)
// whenever remote execution cannot deliver. Implementations may call
// local and the remote path concurrently: task execution is
// idempotent, the results are interchangeable.
type ShardRunner interface {
	RunShard(task *ShardTask, local func() (*ShardResult, error)) (*ShardResult, error)
}

// ShardQueueRunner is the batch form of ShardRunner: the engine hands
// over a whole phase's shard tasks at once, so the runner can
// pull-schedule them across peers, weight dispatch by observed
// capacity, and re-dispatch stragglers. The runner must return one
// result per task, in task order; local executes a task on the
// coordinator engine and is safe to call concurrently (each call
// builds a fresh worker child over the shared cache and arena).
// Execution is idempotent, so running a task twice — on two peers, or
// remotely and locally — and keeping whichever finishes first yields
// the same merged result. Runners that also implement this interface
// are preferred over per-task RunShard dispatch.
type ShardQueueRunner interface {
	ShardRunner
	RunShardQueue(tasks []*ShardTask, local func(*ShardTask) (*ShardResult, error)) ([]*ShardResult, error)
}

// ExecuteShardTask executes one shard task against a fresh engine —
// the peer-node entry point behind POST /shards. prog and cfg must
// describe the same job the coordinator runs (same image, seed,
// searcher and heuristics); cfg.Stop/Deadline bound the execution
// (the serving node passes the request context's cancellation).
// The result is bit-identical to what the coordinator's own worker
// child would have produced for the same group.
func ExecuteShardTask(prog *isa.Program, cfg Config, task *ShardTask) (*ShardResult, error) {
	return New(prog, cfg).runShardTask(task)
}

// executeShardLocal runs a shard task on the coordinator itself, as a
// worker child sharing the parent's translation cache and arena —
// the fallback path of the fault-tolerant dispatch, and byte-for-byte
// the single-node fork-join execution of the same group.
func (e *Engine) executeShardLocal(task *ShardTask) (res *ShardResult, err error) {
	// Mirror exploreShards' worker-panic conversion: a panic here runs
	// on a dispatcher goroutine and must surface as a shard error, not
	// kill the process.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("symexec: shard %d local fallback panic: %v", task.Index, r)
		}
	}()
	c := &Engine{
		cfg:     e.cfg,
		prog:    e.prog,
		cache:   e.cache,
		col:     trace.NewCollector(),
		sol:     newSolver(e.cfg),
		ar:      e.ar,
		baseRAM: e.baseRAM,
	}
	return c.runShardTask(task)
}

// runShardTask restores the deterministic worker-child identity from
// the task, decodes the group, explores it and serializes the
// outcome. The engine must be fresh apart from its shared immutable
// inputs (image, cache, arena, config).
func (e *Engine) runShardTask(task *ShardTask) (*ShardResult, error) {
	success, err := successFunc(task.Success)
	if err != nil {
		return nil, err
	}
	if task.Budget.Successes < 1 || task.Budget.MaxStates < 1 {
		return nil, fmt.Errorf("symexec: shard %d: degenerate budget %+v", task.Index, task.Budget)
	}
	e.symPrefix = fmt.Sprintf("j%d.", task.Seq)
	e.rng = rand.New(rand.NewSource(e.cfg.Seed + int64(task.Seq)))
	e.stateID = task.StateIDBase
	e.entries = task.Entries
	e.timer = task.Timer
	e.dma = hw.DMARegistry{}
	for _, r := range task.DMA {
		e.dma.Register(r[0], r[1])
	}
	states, err := decodeStateGroup(task.Group, e.baseRAM, e.ar)
	if err != nil {
		return nil, err
	}
	if len(states) == 0 {
		return nil, fmt.Errorf("symexec: shard %d: empty state group", task.Index)
	}
	bdg := phaseBudgets{
		blocks:     task.Budget.Blocks,
		stagnation: task.Budget.Stagnation,
		successes:  task.Budget.Successes,
		maxStates:  task.Budget.MaxStates,
	}
	completed, _, _, err := e.exploreSet(states, task.Phase, bdg, success, 0)
	if err != nil {
		return nil, err
	}
	discov := make([]WireDiscovery, len(e.discov))
	for i, d := range e.discov {
		discov[i] = WireDiscovery{Addr: d.addr, Exec: d.exec}
	}
	q, h := e.sol.Stats()
	return &ShardResult{
		Completed: encodeStateGroup(completed),
		Collector: e.col.Encode(),
		Discov:    discov,
		Exec:      e.exec,
		Forks:     e.forks,
		Killed:    e.killed,
		Queries:   q,
		CacheHits: h,
		ModelHits: e.sol.ModelHits(),
		Entries:   e.entries,
		Timer:     e.timer,
		DMA:       e.dma.Regions(),
		Stopped:   int(e.stopHit),
	}, nil
}

// decodeShardResult turns a wire result back into a mergeable
// outcome, resolving collector blocks through the coordinator's own
// translation cache (so translated-block accounting matches a
// single-node run) and decoding the completed states into the
// coordinator's arena.
func (e *Engine) decodeShardResult(r *ShardResult) (*shardOutcome, []*State, error) {
	if r.Collector == nil {
		return nil, nil, fmt.Errorf("symexec: shard result without collector")
	}
	if r.Stopped < int(TermRunning) || r.Stopped > int(TermDeadline) {
		return nil, nil, fmt.Errorf("symexec: shard result with unknown stop reason %d", r.Stopped)
	}
	col, err := r.Collector.Decode(e.cache.Get)
	if err != nil {
		return nil, nil, err
	}
	states, err := decodeStateGroup(r.Completed, e.baseRAM, e.ar)
	if err != nil {
		return nil, nil, err
	}
	var dma hw.DMARegistry
	for _, reg := range r.DMA {
		dma.Register(reg[0], reg[1])
	}
	discov := make([]covDiscovery, len(r.Discov))
	for i, d := range r.Discov {
		discov[i] = covDiscovery{addr: d.Addr, exec: d.Exec}
	}
	return &shardOutcome{
		discov:    discov,
		exec:      r.Exec,
		forks:     r.Forks,
		killed:    r.Killed,
		queries:   r.Queries,
		hits:      r.CacheHits,
		modelHits: r.ModelHits,
		col:       col,
		dma:       dma,
		entries:   r.Entries,
		timer:     r.Timer,
		stopped:   TermReason(r.Stopped),
	}, states, nil
}
