package symexec

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements the fork-join parallel exploration mode: once
// a phase's serial spread has grown the live set to Config.Shards
// independent state groups, each group is explored to completion by a
// worker child engine (its own collector, solver, counters and
// registry snapshots), and the results are merged back in seed
// order. The decomposition depends only on Config.Shards and the
// deterministic spread — never on Config.Workers, which sets the
// goroutine count alone — so traces, coverage and synthesized code
// are bit-identical for every Workers value, including the fully
// serial Workers=1 run.

// phaseBudgets carries the remaining exploration allowances of one
// phase across the serial spread and the per-shard explorations.
type phaseBudgets struct {
	// blocks is the translation-block budget left in the phase.
	blocks int64
	// stagnation ends exploration after this many blocks without new
	// coverage.
	stagnation int64
	// successes is how many successful completions trigger the
	// remaining-path discard of §3.2.
	successes int
	// maxStates caps the live set.
	maxStates int
}

// minShardStagnation keeps a shard's stagnation allowance from
// rounding down to a value too small to escape a cold start.
const minShardStagnation = 5000

// split divides the phase's remaining allowances evenly among n
// shards, with floors so every shard can make progress.
func (b phaseBudgets) split(n int) phaseBudgets {
	per := phaseBudgets{
		blocks:     b.blocks / int64(n),
		stagnation: b.stagnation / int64(n),
		successes:  (b.successes + n - 1) / n,
		maxStates:  b.maxStates / n,
	}
	if per.blocks < 0 {
		per.blocks = 0
	}
	if per.stagnation < minShardStagnation {
		per.stagnation = minShardStagnation
	}
	if per.successes < 1 {
		per.successes = 1
	}
	if per.maxStates < 32 {
		per.maxStates = 32
	}
	return per
}

// exploreShards partitions the live set into up to Config.Shards
// groups, explores each on a worker child engine (at most
// Config.Workers goroutines run concurrently), and merges the
// children back in seed order. The partition orders states by their
// creation ID, so it is a pure function of the spread, not of the
// worker count or scheduling.
func (e *Engine) exploreShards(live []*State, name string, bdg phaseBudgets, success successFn) ([]*State, error) {
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	n := e.cfg.Shards
	if n > len(live) {
		n = len(live)
	}
	groups := make([][]*State, n)
	for i, s := range live {
		groups[i%n] = append(groups[i%n], s)
	}
	per := bdg.split(n)

	// Children are created serially so jobSeq (and with it symbol
	// namespaces and state-ID ranges) advances deterministically.
	children := make([]*Engine, n)
	for i := range children {
		children[i] = e.child(i)
	}

	completedByShard := make([][]*State, n)
	errs := make([]error, n)
	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for idx := 0; idx < n; idx++ {
			completedByShard[idx], _, _, errs[idx] =
				children[idx].exploreSet(groups[idx], name, per, success, 0)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		// A panic inside a worker goroutine cannot unwind past the
		// goroutine boundary, so callers' recovers (the revnicd job
		// runner's in particular) would never see it and the whole
		// process would die. Convert it to a per-shard error instead.
		runShard := func(idx int) {
			defer func() {
				if r := recover(); r != nil {
					errs[idx] = fmt.Errorf("symexec: shard %d worker panic: %v", idx, r)
				}
			}()
			completedByShard[idx], _, _, errs[idx] =
				children[idx].exploreSet(groups[idx], name, per, success, 0)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range jobs {
					runShard(idx)
				}
			}()
		}
		for idx := 0; idx < n; idx++ {
			jobs <- idx
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Join: fold the children back in seed order; concatenating the
	// per-shard completion lists in the same order keeps the
	// pickSeed RNG consumption identical across worker counts.
	var completed []*State
	for i := 0; i < n; i++ {
		e.mergeChild(children[i])
		completed = append(completed, completedByShard[i]...)
	}
	// Skip past every child's reserved ID range (child i allocates
	// upward from stateID + (i+1)*jobIDSpan), so parent IDs minted
	// after the join stay unique.
	e.stateID += (n + 1) * jobIDSpan
	return completed, nil
}

// mergeChild folds one worker child engine back into the parent:
// coverage discoveries are replayed (keeping only globally new
// blocks) to extend the parent's coverage curve, counters are summed,
// and the collector, DMA registry, entry points and timer handler are
// merged. Merge order is the caller's responsibility; calling in seed
// order makes the join deterministic.
func (e *Engine) mergeChild(c *Engine) {
	covered := make(map[uint32]bool, len(e.col.Blocks))
	for a := range e.col.Blocks {
		covered[a] = true
	}
	for _, d := range c.discov {
		if !covered[d.addr] {
			covered[d.addr] = true
			e.coverage = append(e.coverage, CoveragePoint{e.exec + d.exec, len(covered)})
		}
	}
	e.exec += c.exec
	e.forks += c.forks
	e.killed += c.killed
	q, h := c.sol.Stats()
	e.childQueries += q + c.childQueries
	e.childHits += h + c.childHits
	e.childModelHits += c.sol.ModelHits() + c.childModelHits
	e.col.Merge(c.col)
	e.dma.Merge(&c.dma)
	if !e.entries.Registered() && c.entries.Registered() {
		e.entries = c.entries
	}
	if e.timer == 0 {
		e.timer = c.timer
	}
	if e.stopHit == TermRunning && c.stopHit != TermRunning {
		// A stop observed inside a worker is a stop of the whole run;
		// latch it so Result.Stopped is set even when the parent's own
		// loop never polled after the fan-out.
		e.stopHit = c.stopHit
	}
	e.lastCov = e.col.CoveredBlocks()
}
