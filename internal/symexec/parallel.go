package symexec

import (
	"fmt"
	"sort"
	"sync"

	"revnic/internal/guestos"
	"revnic/internal/hw"
	"revnic/internal/trace"
)

// This file implements the fork-join parallel exploration mode: once
// a phase's serial spread has grown the live set to Config.Shards
// independent state groups, each group is explored to completion by a
// worker child engine (its own collector, solver, counters and
// registry snapshots), and the results are merged back in seed
// order. The decomposition depends only on Config.Shards and the
// deterministic spread — never on Config.Workers, which sets the
// goroutine count alone — so traces, coverage and synthesized code
// are bit-identical for every Workers value, including the fully
// serial Workers=1 run.

// phaseBudgets carries the remaining exploration allowances of one
// phase across the serial spread and the per-shard explorations.
type phaseBudgets struct {
	// blocks is the translation-block budget left in the phase.
	blocks int64
	// stagnation ends exploration after this many blocks without new
	// coverage.
	stagnation int64
	// successes is how many successful completions trigger the
	// remaining-path discard of §3.2.
	successes int
	// maxStates caps the live set.
	maxStates int
}

// minShardStagnation keeps a shard's stagnation allowance from
// rounding down to a value too small to escape a cold start.
const minShardStagnation = 5000

// split divides the phase's remaining allowances evenly among n
// shards, with floors so every shard can make progress.
func (b phaseBudgets) split(n int) phaseBudgets {
	per := phaseBudgets{
		blocks:     b.blocks / int64(n),
		stagnation: b.stagnation / int64(n),
		successes:  (b.successes + n - 1) / n,
		maxStates:  b.maxStates / n,
	}
	if per.blocks < 0 {
		per.blocks = 0
	}
	if per.stagnation < minShardStagnation {
		per.stagnation = minShardStagnation
	}
	if per.successes < 1 {
		per.successes = 1
	}
	if per.maxStates < 32 {
		per.maxStates = 32
	}
	return per
}

// exploreShards partitions the live set into up to Config.Shards
// groups, explores each on a worker child engine (at most
// Config.Workers goroutines run concurrently), and merges the
// children back in seed order. The partition orders states by their
// creation ID, so it is a pure function of the spread, not of the
// worker count or scheduling. With Config.ShardRunner set, the groups
// are serialized into ShardTasks and dispatched through the runner
// instead — remote execution, with the in-process path as its
// guaranteed local fallback — and the decoded results merge in the
// same seed order, so the outcome is bit-identical either way.
func (e *Engine) exploreShards(live []*State, name, successName string, bdg phaseBudgets, success successFn) ([]*State, error) {
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	n := e.cfg.fanoutTarget()
	if n > len(live) {
		n = len(live)
	}
	e.noteFanout(n)
	groups := make([][]*State, n)
	for i, s := range live {
		groups[i%n] = append(groups[i%n], s)
	}
	per := bdg.split(n)
	if e.cfg.ShardRunner != nil {
		return e.exploreShardsVia(e.cfg.ShardRunner, groups, name, successName, per)
	}

	// Children are created serially so jobSeq (and with it symbol
	// namespaces and state-ID ranges) advances deterministically.
	children := make([]*Engine, n)
	for i := range children {
		children[i] = e.child(i)
	}

	completedByShard := make([][]*State, n)
	errs := make([]error, n)
	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for idx := 0; idx < n; idx++ {
			completedByShard[idx], _, _, errs[idx] =
				children[idx].exploreSet(groups[idx], name, per, success, 0)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		// A panic inside a worker goroutine cannot unwind past the
		// goroutine boundary, so callers' recovers (the revnicd job
		// runner's in particular) would never see it and the whole
		// process would die. Convert it to a per-shard error instead.
		runShard := func(idx int) {
			defer func() {
				if r := recover(); r != nil {
					errs[idx] = fmt.Errorf("symexec: shard %d worker panic: %v", idx, r)
				}
			}()
			completedByShard[idx], _, _, errs[idx] =
				children[idx].exploreSet(groups[idx], name, per, success, 0)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range jobs {
					runShard(idx)
				}
			}()
		}
		for idx := 0; idx < n; idx++ {
			jobs <- idx
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Join: fold the children back in seed order; concatenating the
	// per-shard completion lists in the same order keeps the
	// pickSeed RNG consumption identical across worker counts.
	var completed []*State
	for i := 0; i < n; i++ {
		e.applyOutcome(childOutcome(children[i]))
		completed = append(completed, completedByShard[i]...)
	}
	// Skip past every child's reserved ID range (child i allocates
	// upward from stateID + (i+1)*jobIDSpan), so parent IDs minted
	// after the join stay unique.
	e.stateID += (n + 1) * jobIDSpan
	return completed, nil
}

// exploreShardsVia is the dispatched form of the fan-out: each group
// becomes a self-contained ShardTask (built serially, so jobSeq and
// the reserved state-ID ranges advance exactly as the in-process path
// does), every task is handed to the runner concurrently, and the
// results are decoded and merged in seed order.
func (e *Engine) exploreShardsVia(runner ShardRunner, groups [][]*State, name, successName string, per phaseBudgets) ([]*State, error) {
	n := len(groups)
	tasks := make([]*ShardTask, n)
	for i := range groups {
		e.jobSeq++
		tasks[i] = &ShardTask{
			Phase:       name,
			Index:       i,
			Seq:         e.jobSeq,
			StateIDBase: e.stateID + (i+1)*jobIDSpan,
			Success:     successName,
			Budget: ShardBudget{
				Blocks:     per.blocks,
				Stagnation: per.stagnation,
				Successes:  per.successes,
				MaxStates:  per.maxStates,
			},
			Entries: e.entries,
			Timer:   e.timer,
			DMA:     e.dma.Regions(),
			Group:   encodeStateGroup(groups[i]),
		}
	}
	var results []*ShardResult
	if qr, ok := runner.(ShardQueueRunner); ok {
		// Batch dispatch: the runner owns the whole phase's shard set
		// at once, so it can pull-schedule, weight by peer capacity and
		// re-dispatch stragglers — none of which changes the results,
		// which merge below in task order regardless of where or how
		// often each shard executed.
		var err error
		results, err = qr.RunShardQueue(tasks, e.executeShardLocal)
		if err != nil {
			return nil, fmt.Errorf("symexec: shard queue (%s): %w", name, err)
		}
		if len(results) != n {
			return nil, fmt.Errorf("symexec: shard queue (%s): %d results for %d tasks", name, len(results), n)
		}
	} else {
		results = make([]*ShardResult, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := range tasks {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						errs[i] = fmt.Errorf("symexec: shard %d runner panic: %v", i, r)
					}
				}()
				results[i], errs[i] = runner.RunShard(tasks[i], func() (*ShardResult, error) {
					return e.executeShardLocal(tasks[i])
				})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("symexec: shard %d (%s): %w", i, name, err)
			}
		}
	}
	for i, r := range results {
		if r == nil {
			return nil, fmt.Errorf("symexec: shard %d (%s): runner returned no result", i, name)
		}
	}
	var completed []*State
	for i := 0; i < n; i++ {
		o, states, err := e.decodeShardResult(results[i])
		if err != nil {
			return nil, fmt.Errorf("symexec: shard %d (%s): %w", i, name, err)
		}
		e.applyOutcome(o)
		completed = append(completed, states...)
	}
	e.stateID += (n + 1) * jobIDSpan
	return completed, nil
}

// noteFanout records one fan-out event's achieved width for the
// shards_effective stat: the narrowest width over the run is the
// bottleneck a capacity planner cares about.
func (e *Engine) noteFanout(n int) {
	if e.shardsEff == 0 || n < e.shardsEff {
		e.shardsEff = n
	}
}

// shardOutcome is everything one explored shard feeds into the join,
// in a form common to the in-process path (childOutcome) and the
// dispatched path (decodeShardResult) — one merge implementation,
// however the shard was executed.
type shardOutcome struct {
	discov    []covDiscovery
	exec      int64
	forks     int64
	killed    int64
	queries   int64
	hits      int64
	modelHits int64
	col       *trace.Collector
	dma       hw.DMARegistry
	entries   guestos.EntryPoints
	timer     uint32
	stopped   TermReason
}

// childOutcome extracts the mergeable outcome of an in-process worker
// child engine.
func childOutcome(c *Engine) *shardOutcome {
	q, h := c.sol.Stats()
	return &shardOutcome{
		discov:    c.discov,
		exec:      c.exec,
		forks:     c.forks,
		killed:    c.killed,
		queries:   q + c.childQueries,
		hits:      h + c.childHits,
		modelHits: c.sol.ModelHits() + c.childModelHits,
		col:       c.col,
		dma:       c.dma,
		entries:   c.entries,
		timer:     c.timer,
		stopped:   c.stopHit,
	}
}

// applyOutcome folds one shard outcome back into the parent: coverage
// discoveries are replayed (keeping only globally new blocks) to
// extend the parent's coverage curve, counters are summed, and the
// collector, DMA registry, entry points and timer handler are merged.
// Merge order is the caller's responsibility; calling in seed order
// makes the join deterministic.
func (e *Engine) applyOutcome(o *shardOutcome) {
	covered := make(map[uint32]bool, len(e.col.Blocks))
	for a := range e.col.Blocks {
		covered[a] = true
	}
	for _, d := range o.discov {
		if !covered[d.addr] {
			covered[d.addr] = true
			e.coverage = append(e.coverage, CoveragePoint{e.exec + d.exec, len(covered)})
		}
	}
	e.exec += o.exec
	e.forks += o.forks
	e.killed += o.killed
	e.childQueries += o.queries
	e.childHits += o.hits
	e.childModelHits += o.modelHits
	e.col.Merge(o.col)
	e.dma.Merge(&o.dma)
	if !e.entries.Registered() && o.entries.Registered() {
		e.entries = o.entries
	}
	if e.timer == 0 {
		e.timer = o.timer
	}
	if e.stopHit == TermRunning && o.stopped != TermRunning {
		// A stop observed inside a worker is a stop of the whole run;
		// latch it so Result.Stopped is set even when the parent's own
		// loop never polled after the fan-out.
		e.stopHit = o.stopped
	}
	e.lastCov = e.col.CoveredBlocks()
}
