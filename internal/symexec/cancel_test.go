package symexec

import (
	"testing"
	"time"
)

// longConfig is an exploration that would run effectively forever:
// every budget is huge, so only a stop signal or deadline ends it.
func longConfig() Config {
	return Config{
		Seed:             3,
		PhaseBudget:      1 << 30,
		StagnationBudget: 1 << 30,
		CompleteTarget:   1 << 30,
		MaxStates:        1 << 20,
	}
}

// TestDeadlineStopsExploration pins the wind-down latency contract: a
// run whose budgets would sustain it for hours must notice an expired
// deadline and return a well-formed partial result within 2 seconds.
func TestDeadlineStopsExploration(t *testing.T) {
	cfg := longConfig()
	cfg.Deadline = time.Now().Add(250 * time.Millisecond)
	start := time.Now()
	res := exploreDriver(t, "RTL8029", cfg)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("deadline wind-down took %s, want < 2s", elapsed)
	}
	if res.Stopped != TermDeadline {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, TermDeadline)
	}
	if res.Collector == nil {
		t.Fatal("partial result has no collector")
	}
}

// TestCancelStopsExploration closes the stop channel mid-run and
// requires the same bounded wind-down with TermCancelled.
func TestCancelStopsExploration(t *testing.T) {
	stop := make(chan struct{})
	cfg := longConfig()
	cfg.Stop = stop
	go func() {
		time.Sleep(250 * time.Millisecond)
		close(stop)
	}()
	start := time.Now()
	res := exploreDriver(t, "RTL8029", cfg)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("cancel wind-down took %s, want < 2s", elapsed)
	}
	if res.Stopped != TermCancelled {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, TermCancelled)
	}
	if res.Collector == nil {
		t.Fatal("partial result has no collector")
	}
}

// TestPreCancelledExplore starts with the stop channel already closed:
// Explore must return immediately with an empty-but-well-formed
// result, not an error.
func TestPreCancelledExplore(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	cfg := Config{Seed: 1, Stop: stop}
	start := time.Now()
	res := exploreDriver(t, "RTL8029", cfg)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled Explore took %s", elapsed)
	}
	if res.Stopped != TermCancelled {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, TermCancelled)
	}
	if res.Collector == nil {
		t.Fatal("result has no collector")
	}
}

// TestStopPlumbingPreservesDeterminism is the no-observer-effect
// check: a run with an armed-but-never-fired stop channel and a far
// deadline must be bit-identical to a run with no stop plumbing at
// all. The cancellation hooks are pure reads until they fire.
func TestStopPlumbingPreservesDeterminism(t *testing.T) {
	plain := exploreDriver(t, "RTL8029", Config{Seed: 7, Workers: 2})
	stop := make(chan struct{})
	defer close(stop)
	armed := exploreDriver(t, "RTL8029", Config{
		Seed: 7, Workers: 2,
		Stop:     stop,
		Deadline: time.Now().Add(time.Hour),
	})
	if armed.Stopped != TermRunning {
		t.Fatalf("armed run reported Stopped = %v", armed.Stopped)
	}
	if traceFingerprint(plain) != traceFingerprint(armed) {
		t.Fatal("armed stop plumbing perturbed the exploration result")
	}
}
