package symexec

import (
	"testing"

	"revnic/internal/drivers"
	"revnic/internal/expr"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/trace"
)

func shellCfg() hw.PCIConfig {
	return hw.PCIConfig{VendorID: 0x10EC, DeviceID: 0x8029, IOBase: 0xC000, IOSize: 0x100, IRQLine: 11}
}

func TestMemoryCOW(t *testing.T) {
	base := make([]byte, 1024)
	base[100] = 0xAB
	m := NewMemory(base)
	if v, _ := m.ByteAt(100).IsConst(); v != 0xAB {
		t.Fatal("base read")
	}
	m.SetByte(100, expr.C(0x11, 8))
	child := m.Fork()
	child.SetByte(100, expr.C(0x22, 8))
	if v, _ := m.ByteAt(100).IsConst(); v != 0x11 {
		t.Fatal("parent polluted by child write")
	}
	if v, _ := child.ByteAt(100).IsConst(); v != 0x22 {
		t.Fatal("child write lost")
	}
	// Sibling fork shares the parent's page until written.
	sib := m.Fork()
	if v, _ := sib.ByteAt(100).IsConst(); v != 0x11 {
		t.Fatal("sibling read wrong")
	}
	m.SetByte(101, expr.C(0x33, 8))
	if v, _ := sib.ByteAt(101).IsConst(); v != 0 {
		t.Fatal("parent write visible in forked child")
	}
	// Multi-byte round trip.
	m.Write(200, 4, expr.C(0xDEADBEEF, 32))
	if v, _ := m.Read(200, 4).IsConst(); v != 0xDEADBEEF {
		t.Fatal("32-bit round trip")
	}
	if v, _ := m.Read(202, 2).IsConst(); v != 0xDEAD {
		t.Fatal("16-bit partial read")
	}
}

func exploreDriver(t *testing.T, name string, cfg Config) *Result {
	t.Helper()
	info, err := drivers.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shell = hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
		IOBase: 0xC000, IOSize: 0x100, IRQLine: 11}
	eng := New(info.Program, cfg)
	res, err := eng.Explore()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestExploreRTL8029(t *testing.T) {
	res := exploreDriver(t, "RTL8029", Config{Seed: 1})
	if !res.Entries.Registered() {
		t.Fatal("entry points not discovered")
	}
	cov := res.Collector.CoveredBlocks()
	if cov < 60 {
		t.Errorf("only %d blocks covered", cov)
	}
	if res.ForkCount == 0 {
		t.Error("no forks: symbolic execution did not branch")
	}
	if len(res.Coverage) == 0 {
		t.Error("no coverage samples")
	}
	// Hardware I/O must have been observed and classified as port I/O.
	io := 0
	for _, b := range res.Collector.Blocks {
		for _, a := range b.IO {
			if a.Class == trace.ClassPortIO {
				io++
			}
		}
	}
	if io < 10 {
		t.Errorf("only %d port I/O points recorded", io)
	}
	// The multicast CRC loop must have been explored: find a driver
	// block containing a SHR instruction with shift 26 (the hash).
	found := false
	for _, b := range res.Collector.Blocks {
		for _, in := range b.Block.Instrs {
			if in.Op == isa.SHR && in.Imm == 26 {
				found = true
			}
		}
	}
	if !found {
		t.Error("CRC hash code not reached")
	}
}

func TestExploreAllDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("full exploration is slow")
	}
	for _, name := range []string{"RTL8139", "AMD PCNet", "SMSC 91C111"} {
		t.Run(name, func(t *testing.T) {
			res := exploreDriver(t, name, Config{Seed: 1})
			if !res.Entries.Registered() {
				t.Fatal("entries not discovered")
			}
			if res.Collector.CoveredBlocks() < 60 {
				t.Errorf("coverage too low: %d", res.Collector.CoveredBlocks())
			}
		})
	}
}

func TestExploreDMATracking(t *testing.T) {
	res := exploreDriver(t, "RTL8139", Config{Seed: 2})
	if len(res.DMARegions) < 2 {
		t.Errorf("DMA regions = %d, want >= 2 (ring + tx staging)", len(res.DMARegions))
	}
	// DMA-classified accesses must appear (the driver reads RX
	// headers out of the shared ring).
	dma := false
	for _, b := range res.Collector.Blocks {
		for _, a := range b.IO {
			if a.Class == trace.ClassDMA {
				dma = true
			}
		}
	}
	if !dma {
		t.Error("no DMA-classified accesses recorded")
	}
}

func TestStrategies(t *testing.T) {
	// All three searchers must terminate and find the entry points;
	// the coverage-guided default should cover at least as much as
	// DFS (the ablation claim, checked loosely).
	covs := map[string]int{}
	for _, name := range []string{"coverage", "dfs", "bfs"} {
		factory, err := SearcherByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res := exploreDriver(t, "RTL8029", Config{Seed: 3, Searcher: factory})
		if res.Strategy != name {
			t.Errorf("result strategy = %q, want %q", res.Strategy, name)
		}
		if !res.Entries.Registered() {
			t.Errorf("%s: entry points not discovered", name)
		}
		if res.SolverQueries == 0 {
			t.Errorf("%s: no solver queries recorded", name)
		}
		covs[name] = res.Collector.CoveredBlocks()
	}
	if covs["coverage"] < covs["dfs"]-5 {
		t.Errorf("coverage-guided (%d) much worse than DFS (%d)", covs["coverage"], covs["dfs"])
	}
}

func TestSearcherByName(t *testing.T) {
	if _, err := SearcherByName("mincount"); err != nil {
		t.Error("historical alias mincount not accepted")
	}
	if _, err := SearcherByName("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
	names := SearcherNames()
	if len(names) < 3 {
		t.Errorf("SearcherNames = %v", names)
	}
}

// TestSearcherDisciplines pins the frontier orders: DFS drives the
// newest state, BFS the oldest, and both track removals.
func TestSearcherDisciplines(t *testing.T) {
	a, b, c := &State{ID: 1}, &State{ID: 2}, &State{ID: 3}
	dfs := NewDFS(nil)
	dfs.Update([]*State{a, b}, nil)
	if got := dfs.Select([]*State{a, b}); got != b {
		t.Fatal("DFS did not pick the newest state")
	}
	dfs.Update([]*State{c}, []*State{b})
	if got := dfs.Select([]*State{a, c}); got != c {
		t.Fatal("DFS did not follow the fork child")
	}
	bfs := NewBFS(nil)
	bfs.Update([]*State{a, b}, nil)
	if got := bfs.Select([]*State{a, b}); got != a {
		t.Fatal("BFS did not pick the oldest state")
	}
	bfs.Update([]*State{c}, []*State{a})
	if got := bfs.Select([]*State{b, c}); got != b {
		t.Fatal("BFS order broken after removal")
	}
}

// TestIncrementalSolverAblation checks the solver ablation switch:
// exploration results are identical with and without the incremental
// SAT session (only the work to produce them differs).
func TestIncrementalSolverAblation(t *testing.T) {
	on := exploreDriver(t, "RTL8029", Config{Seed: 4})
	off := exploreDriver(t, "RTL8029", Config{Seed: 4, DisableIncrementalSolver: true})
	if traceFingerprint(on) != traceFingerprint(off) {
		t.Fatal("incremental solving changed exploration results")
	}
}
