package symexec

import (
	"math/rand"
	"testing"
)

// fakeCounts is a scriptable BlockCounts for searcher unit tests.
type fakeCounts map[uint32]int64

func (f fakeCounts) BlockCount(a uint32) int64 { return f[a] }

// TestCoverageSearcherPicksMinimum drives the priority-queue searcher
// through a randomized frontier schedule with counts mutating between
// selections (the lazy-rescoring path) and checks the min-count
// invariant the paper's heuristic promises on every selection.
func TestCoverageSearcherPicksMinimum(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	counts := fakeCounts{}
	sr := NewCoverageGuided(counts)
	var live []*State
	nextID := 0
	add := func(n int) []*State {
		var out []*State
		for i := 0; i < n; i++ {
			nextID++
			out = append(out, &State{ID: nextID, PC: uint32(r.Intn(20)) * 4})
		}
		live = append(live, out...)
		return out
	}
	sr.Update(add(8), nil)
	for step := 0; step < 500; step++ {
		// Mutate counts behind the searcher's back, as block
		// executions by other states do.
		counts[uint32(r.Intn(20))*4]++
		s := sr.Select(live)
		min := int64(1) << 62
		for _, st := range live {
			if c := counts[st.PC]; c < min {
				min = c
			}
		}
		if counts[s.PC] != min {
			t.Fatalf("step %d: selected count %d, frontier min %d", step, counts[s.PC], min)
		}
		// Engine protocol: remove the selection, maybe re-add it (as a
		// follow-on state with a new PC) plus an occasional fork.
		for i := range live {
			if live[i] == s {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				break
			}
		}
		var added []*State
		if r.Intn(4) > 0 {
			s.PC = uint32(r.Intn(20)) * 4
			added = append(added, s)
			live = append(live, s)
		}
		if r.Intn(3) == 0 {
			added = append(added, add(1)...)
		}
		sr.Update(added, []*State{s})
		if len(live) == 0 {
			sr.Update(add(4), nil)
		}
	}
}

// TestCoverageSearcherDeterministic feeds two instances the identical
// call sequence and demands identical selections — the property the
// fork-join determinism contract rests on.
func TestCoverageSearcherDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		run := func() []int {
			r := rand.New(rand.NewSource(seed))
			counts := fakeCounts{}
			sr := NewCoverageGuided(counts)
			var live []*State
			for i := 0; i < 16; i++ {
				live = append(live, &State{ID: i + 1, PC: uint32(r.Intn(8)) * 4})
			}
			sr.Update(live, nil)
			var picks []int
			for step := 0; step < 200; step++ {
				counts[uint32(r.Intn(8))*4]++
				s := sr.Select(live)
				picks = append(picks, s.ID)
				for i := range live {
					if live[i] == s {
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
						break
					}
				}
				s.PC = uint32(r.Intn(8)) * 4
				live = append(live, s)
				sr.Update([]*State{s}, []*State{s})
			}
			return picks
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: selection diverged at step %d: %d vs %d", seed, i, a[i], b[i])
			}
		}
	}
}

// TestCoverageSearcherRemoval checks that bulk discards (budget and
// shed-states paths) leave the queue consistent.
func TestCoverageSearcherRemoval(t *testing.T) {
	counts := fakeCounts{}
	sr := NewCoverageGuided(counts)
	var live []*State
	for i := 0; i < 10; i++ {
		live = append(live, &State{ID: i + 1, PC: uint32(i) * 4})
	}
	sr.Update(live, nil)
	// Discard everything but the last two, as the success-discard
	// heuristic does.
	sr.Update(nil, live[:8])
	live = live[8:]
	counts[live[1].PC] = 5
	if s := sr.Select(live); s != live[0] {
		t.Fatalf("expected the cold survivor, got state %d", s.ID)
	}
	sr.Update(nil, []*State{live[0]})
	if s := sr.Select(live[1:]); s != live[1] {
		t.Fatalf("expected the last survivor, got state %d", s.ID)
	}
}
