// Package symexec implements RevNIC's selective symbolic execution
// engine (§3): the driver executes symbolically over expression
// values while the OS boundary stays concrete, hardware reads return
// fresh symbolic values (symbolic hardware), and a set of heuristics
// steers path exploration toward uncovered code.
package symexec

import (
	"encoding/binary"

	"revnic/internal/expr"
)

// pageSize is the granularity of copy-on-write sharing. The paper
// augments KLEE's object-level COW with page-level COW (§3.4); this
// memory is page-level COW from the start.
const pageSize = 256

// page holds the symbolic overlay for one page. A nil entry means the
// byte still has its initial concrete value from the base image.
type page struct {
	bytes  [pageSize]*expr.Expr
	shared bool
}

// Memory is a byte-granular symbolic memory with page-level
// copy-on-write. The concrete base image (the RAM snapshot taken when
// symbolic execution starts) is shared by all states and never
// mutated. Reads assemble (and writes decompose) multi-byte values in
// the memory's expression arena, so a job-scoped engine never leaks
// nodes into the process-global table.
type Memory struct {
	base  []byte
	pages map[uint32]*page
	ar    *expr.Arena
}

// NewMemory wraps a concrete base image, building expressions in the
// default arena. The image is aliased, not copied: callers must not
// mutate it afterwards.
func NewMemory(base []byte) *Memory {
	return NewMemoryArena(base, expr.Default())
}

// NewMemoryArena wraps a concrete base image, building expressions in
// the given arena.
func NewMemoryArena(base []byte, ar *expr.Arena) *Memory {
	return &Memory{base: base, pages: map[uint32]*page{}, ar: ar}
}

// Fork produces a child memory sharing all pages copy-on-write.
//
// A page flips to shared only while it is still owned by exactly one
// memory (and therefore one exploration goroutine); once shared it is
// immutable — SetByte copies it before writing — so fork trees may be
// partitioned across concurrently explored state sets without races.
func (m *Memory) Fork() *Memory {
	child := &Memory{base: m.base, pages: make(map[uint32]*page, len(m.pages)), ar: m.ar}
	for k, p := range m.pages {
		if !p.shared {
			p.shared = true
		}
		child.pages[k] = p
	}
	return child
}

func (m *Memory) baseByte(addr uint32) byte {
	if int(addr) < len(m.base) {
		return m.base[addr]
	}
	return 0
}

// ByteAt returns the symbolic value of one byte.
func (m *Memory) ByteAt(addr uint32) *expr.Expr {
	if p, ok := m.pages[addr/pageSize]; ok {
		if e := p.bytes[addr%pageSize]; e != nil {
			return e
		}
	}
	return m.ar.C(uint32(m.baseByte(addr)), 8)
}

// SetByte stores a symbolic byte, cloning a shared page first.
func (m *Memory) SetByte(addr uint32, v *expr.Expr) {
	if v.Width != 8 {
		panic("symexec: SetByte width")
	}
	idx := addr / pageSize
	p, ok := m.pages[idx]
	if !ok {
		p = &page{}
		m.pages[idx] = p
	} else if p.shared {
		cp := &page{bytes: p.bytes}
		m.pages[idx] = cp
		p = cp
	}
	p.bytes[addr%pageSize] = v
}

// Read returns a size-byte little-endian value (size 1, 2 or 4).
func (m *Memory) Read(addr uint32, size int) *expr.Expr {
	switch size {
	case 1:
		return m.ar.Zext(m.ByteAt(addr), 32)
	case 2:
		return m.ar.Zext(m.ar.FromBytes16(m.ByteAt(addr), m.ByteAt(addr+1)), 32)
	case 4:
		return m.ar.FromBytes32(m.ByteAt(addr), m.ByteAt(addr+1), m.ByteAt(addr+2), m.ByteAt(addr+3))
	}
	panic("symexec: invalid read size")
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint32, size int, v *expr.Expr) {
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint32(i), m.ar.ExtractByte(v, i))
	}
}

// WriteConcreteBytes bulk-stores concrete data (used by the engine's
// OS model when it builds buffers in guest memory).
func (m *Memory) WriteConcreteBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.SetByte(addr+uint32(i), m.ar.C(uint32(b), 8))
	}
}

// ConcreteRead evaluates a read under the given variable assignment,
// for trace witnesses.
func (m *Memory) ConcreteRead(addr uint32, size int, env map[string]uint32) uint32 {
	var buf [4]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(expr.Eval(m.ByteAt(addr+uint32(i)), env))
	}
	return binary.LittleEndian.Uint32(buf[:])
}

// PageCount returns the number of materialized overlay pages, a
// memory-pressure metric for the engine's state-discard heuristics.
func (m *Memory) PageCount() int { return len(m.pages) }
