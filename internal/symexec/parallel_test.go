package symexec

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"revnic/internal/solver"
	"revnic/internal/trace"
)

// traceFingerprint renders everything downstream consumers read from
// an exploration result into one canonical string, so two results are
// bit-identical iff their fingerprints match.
func traceFingerprint(res *Result) string {
	var sb strings.Builder
	c := res.Collector
	fmt.Fprintf(&sb, "entries=%+v exec=%d forks=%d killed=%d init-failed=%v\n",
		res.Entries, res.ExecutedBlocks, res.ForkCount, res.KilledLoops, res.InitFailed)
	for _, pt := range res.Coverage {
		fmt.Fprintf(&sb, "cov %d %d\n", pt.ExecutedBlocks, pt.CoveredBlocks)
	}
	for _, r := range res.DMARegions {
		fmt.Fprintf(&sb, "dma %#x+%#x\n", r[0], r[1])
	}
	for _, a := range c.SortedBlockAddrs() {
		bi := c.Blocks[a]
		fmt.Fprintf(&sb, "block %#x count=%d os=%v in=%v out=%v\n",
			a, bi.Count, bi.TouchesOS, bi.RegsInSample, bi.RegsOutSample)
		for _, io := range bi.IO {
			fmt.Fprintf(&sb, "  io %+v\n", io)
		}
	}
	edges := make([]trace.Edge, 0, len(c.Edges))
	for e := range c.Edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "edge %#x->%#x k=%d n=%d\n", e.From, e.To, e.Kind, c.Edges[e])
	}
	for _, call := range c.APICalls {
		fmt.Fprintf(&sb, "api %+v\n", call)
	}
	for _, m := range []map[uint32]bool{c.AsyncEntries, c.FuncReturns} {
		addrs := make([]uint32, 0, len(m))
		for a := range m {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		fmt.Fprintf(&sb, "set %v\n", addrs)
	}
	params := make([]uint32, 0, len(c.FuncParams))
	for fn := range c.FuncParams {
		params = append(params, fn)
	}
	sort.Slice(params, func(i, j int) bool { return params[i] < params[j] })
	for _, fn := range params {
		fmt.Fprintf(&sb, "params %#x=%d\n", fn, c.FuncParams[fn])
	}
	return sb.String()
}

// TestParallelDeterminism is the regression test for the fork-join
// mode's core guarantee, now quantified over every searcher: for a
// fixed Config.Seed, the traces and coverage produced with 1 worker
// and with N workers are identical — Workers sets concurrency, never
// the result, regardless of the path-selection strategy. Run it under
// `go test -race` to also exercise the shared translation cache, the
// expression intern table and COW page sharing across worker
// goroutines.
func TestParallelDeterminism(t *testing.T) {
	for _, name := range []string{"coverage", "dfs", "bfs"} {
		t.Run(name, func(t *testing.T) {
			factory, err := SearcherByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var want string
			for _, workers := range []int{1, 4} {
				res := exploreDriver(t, "RTL8029", Config{Seed: 7, Workers: workers, Searcher: factory})
				got := traceFingerprint(res)
				if workers == 1 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("workers=%d diverged from workers=1 (fingerprints differ: %d vs %d bytes)",
						workers, len(got), len(want))
				}
			}
			if want == "" {
				t.Fatal("no baseline recorded")
			}
		})
	}
}

// TestSolverBackendBitIdentity pins the solver-backend determinism
// contract at the engine level: the same exploration run under the
// core default, the portfolio (which races backends on hard queries,
// with nondeterministic winners), and the portfolio with workers
// produces bit-identical traces, coverage and statistics. Hard
// queries are verdict-only under every backend, so which backend
// answers — and in which order the losers are cancelled — never
// reaches the result.
func TestSolverBackendBitIdentity(t *testing.T) {
	base := exploreDriver(t, "RTL8029", Config{Seed: 7, Workers: 1})
	want := traceFingerprint(base)
	for _, cfg := range []Config{
		{Seed: 7, Workers: 1, SolverBackend: solver.BackendPortfolio},
		{Seed: 7, Workers: 4, SolverBackend: solver.BackendPortfolio},
	} {
		res := exploreDriver(t, "RTL8029", cfg)
		if got := traceFingerprint(res); got != want {
			t.Fatalf("backend %q workers=%d diverged from the core default (fingerprints differ: %d vs %d bytes)",
				cfg.SolverBackend, cfg.Workers, len(got), len(want))
		}
	}
}

// TestParallelDeterminismAcrossRuns re-runs the same parallel
// configuration twice: scheduling differences between runs must not
// leak into the result either.
func TestParallelDeterminismAcrossRuns(t *testing.T) {
	a := exploreDriver(t, "RTL8139", Config{Seed: 5, Workers: 3})
	b := exploreDriver(t, "RTL8139", Config{Seed: 5, Workers: 3})
	if traceFingerprint(a) != traceFingerprint(b) {
		t.Fatal("two identical parallel runs diverged")
	}
}

// TestShardsOneMatchesSerialSchedule pins the contract that Shards=1
// disables fan-out: the phase never spreads, so the exploration is
// the fully serial schedule regardless of Workers.
func TestShardsOneMatchesSerialSchedule(t *testing.T) {
	a := exploreDriver(t, "RTL8029", Config{Seed: 9, Shards: 1, Workers: 1})
	b := exploreDriver(t, "RTL8029", Config{Seed: 9, Shards: 1, Workers: 8})
	if traceFingerprint(a) != traceFingerprint(b) {
		t.Fatal("Shards=1 runs diverged across worker counts")
	}
	if !a.Entries.Registered() || a.Collector.CoveredBlocks() < 60 {
		t.Fatalf("serial schedule exploration degraded: %d blocks", a.Collector.CoveredBlocks())
	}
}
