package symexec

import (
	"revnic/internal/expr"
	"revnic/internal/isa"
)

// TermReason says why a state stopped executing.
type TermReason int

// Termination reasons.
const (
	TermRunning       TermReason = iota
	TermCompleted                // entry point returned to the sentinel
	TermKilledLoop               // polling-loop heuristic discarded it
	TermKilledDiscard            // entry-point completion discard (§3.2)
	TermError                    // infeasible/faulting path, terminated (§3.2:
	// "When any error state is reached, RevNIC terminates the
	// execution path and resumes a different one.")
	TermBudget    // exploration budget exhausted
	TermCancelled // cooperative cancellation (Config.Stop fired)
	TermDeadline  // wall-clock deadline (Config.Deadline) passed
)

// String names the reason for logs and job results.
func (r TermReason) String() string {
	switch r {
	case TermRunning:
		return "running"
	case TermCompleted:
		return "completed"
	case TermKilledLoop:
		return "killed-loop"
	case TermKilledDiscard:
		return "killed-discard"
	case TermError:
		return "error"
	case TermBudget:
		return "budget"
	case TermCancelled:
		return "cancelled"
	case TermDeadline:
		return "deadline"
	}
	return "unknown"
}

// frame tracks one guest call for function-boundary reconstruction
// and def-use parameter recovery.
type frame struct {
	callSite uint32 // address of the call instruction
	target   uint32 // callee entry
	retAddr  uint32
	entrySP  uint32 // SP value at function entry ([entrySP] = RA)
}

// State is one <path, block> execution state (§3.2): the registers,
// the COW symbolic memory, the accumulated path constraints, and
// bookkeeping for the exploration heuristics.
type State struct {
	ID   int
	PC   uint32
	Regs [isa.NumRegs]*expr.Expr
	Mem  *Memory

	// Constraints is the path condition.
	Constraints []*expr.Expr

	// Stack of guest calls, for call/return trace markers.
	Frames []frame

	// Reason records why the state stopped (TermRunning while live).
	Reason TermReason
	// Result is r0 at completion.
	Result *expr.Expr

	// heapNext is the per-state OS allocator cursor (the OS side is
	// emulated by the engine during symbolic execution).
	heapNext uint32

	// localCount counts per-state block executions, feeding the
	// polling-loop detector.
	localCount map[uint32]int
	// lastBlock is the previous block's address for edge recording.
	lastBlock uint32
	hasLast   bool
	// pendingRet is the entry address of the function that just
	// returned, until r0 is next read (proving a return value) or
	// written (proving none) — §4.1's liveness check.
	pendingRet uint32
	// Depth counts blocks executed on this path.
	Depth int
}

// Fork clones the state for a branch split. Constraints and frames
// are copied shallowly then extended per side; memory forks COW.
func (s *State) Fork(id int) *State {
	c := &State{
		ID:         id,
		PC:         s.PC,
		Regs:       s.Regs,
		Mem:        s.Mem.Fork(),
		heapNext:   s.heapNext,
		lastBlock:  s.lastBlock,
		hasLast:    s.hasLast,
		pendingRet: s.pendingRet,
		Depth:      s.Depth,
	}
	c.Constraints = append([]*expr.Expr{}, s.Constraints...)
	c.Frames = append([]frame{}, s.Frames...)
	c.localCount = make(map[uint32]int, len(s.localCount))
	for k, v := range s.localCount {
		c.localCount[k] = v
	}
	return c
}

// Constrain appends a path constraint.
func (s *State) Constrain(c *expr.Expr) {
	if !c.IsTrue() {
		s.Constraints = append(s.Constraints, c)
	}
}

// ConcreteRegs returns a concrete witness of the register file under
// the empty model (symbolic registers evaluate with unset variables
// as zero); used for trace snapshots.
func (s *State) ConcreteRegs() [8]uint32 {
	var out [8]uint32
	for i, r := range s.Regs {
		if r != nil {
			out[i] = expr.Eval(r, nil)
		}
	}
	return out
}
