package synthdrv

import (
	"bytes"
	"testing"

	"revnic/internal/cfg"
	"revnic/internal/drivers"
	"revnic/internal/hw"
	"revnic/internal/nic"
	"revnic/internal/symexec"
	"revnic/internal/template"
)

func recover8029(t *testing.T) *cfg.Graph {
	t.Helper()
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		t.Fatal(err)
	}
	eng := symexec.New(info.Program, symexec.Config{
		Seed: 21,
		Shell: hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
			IOBase: 0xC000, IOSize: 0x100, IRQLine: 11},
	})
	res, err := eng.Explore()
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Build(res.Collector)
}

func buildDriver(t *testing.T, g *cfg.Graph) (*Driver, nic.Model, *template.Runtime) {
	t.Helper()
	bus := hw.NewBus()
	cfgp := hw.PCIConfig{VendorID: 0x10EC, DeviceID: 0x8029, IOBase: 0xC000, IOSize: 0x100, IRQLine: 11}
	rt := template.NewRuntime(template.Linux, cfgp)
	d := New(g, rt, bus)
	mac := [6]byte{0x02, 1, 2, 3, 4, 5}
	dev := nic.NewRTL8029(&bus.Line, mac)
	bus.Attach(dev, cfgp)
	return d, dev, rt
}

func TestSynthesizedDriverLifecycle(t *testing.T) {
	g := recover8029(t)
	d, dev, rt := buildDriver(t, g)

	if err := d.Initialize(); err != nil {
		t.Fatal(err)
	}
	if d.Ctx == 0 {
		t.Fatal("no context")
	}
	st := dev.StatusReport()
	if !st.RxEnabled {
		t.Fatal("device not started by synthesized init")
	}

	// Send: the frame must reach the wire byte-for-byte.
	frame := make([]byte, 200)
	copy(frame, nic.BroadcastMAC[:])
	copy(frame[6:], st.MAC[:])
	frame[12] = 0x08
	for i := 14; i < len(frame); i++ {
		frame[i] = byte(i * 11)
	}
	status, err := d.Send(frame)
	if err != nil || status != 0 {
		t.Fatalf("send: %d %v", status, err)
	}
	txs := dev.TxFrames()
	if len(txs) != 1 || !bytes.Equal(txs[0], frame) {
		t.Fatal("transmitted frame corrupt")
	}
	// Completion interrupt pending; pump it.
	if _, err := d.PumpInterrupts(4); err != nil {
		t.Fatal(err)
	}
	if rt.SendCompletes != 1 {
		t.Errorf("SendCompletes = %d", rt.SendCompletes)
	}

	// Receive.
	rx := make([]byte, 120)
	copy(rx, st.MAC[:])
	copy(rx[6:], []byte{2, 9, 9, 9, 9, 9})
	rx[12] = 0x08
	if !dev.InjectRX(rx) {
		t.Fatal("inject failed")
	}
	if _, err := d.PumpInterrupts(4); err != nil {
		t.Fatal(err)
	}
	if len(rt.Received) != 1 || !bytes.Equal(rt.Received[0], rx) {
		t.Fatal("indicated frame corrupt")
	}

	// Query MAC through the recovered query entry.
	stq, mac, err := d.Query(0x01010102, 6)
	if err != nil || stq != 0 || !bytes.Equal(mac, st.MAC[:]) {
		t.Fatalf("query mac: %v %x", err, mac)
	}

	if err := d.Halt(); err != nil {
		t.Fatal(err)
	}
	if dev.StatusReport().RxEnabled {
		t.Error("device still running after halt")
	}
	if instrs, io := d.Counters(); instrs == 0 || io == 0 {
		t.Error("counters not advancing")
	}
}

func TestUnexploredErrorType(t *testing.T) {
	e := &ErrUnexplored{From: 0x10, To: 0x20}
	if e.Error() == "" {
		t.Error("empty error")
	}
	// A driver over an empty graph must hit unexplored immediately.
	bus := hw.NewBus()
	rt := template.NewRuntime(template.KitOS, hw.PCIConfig{})
	d := New(&cfg.Graph{Funcs: map[uint32]*cfg.Function{}, Blocks: map[uint32]*cfg.BasicBlock{}}, rt, bus)
	if err := d.Initialize(); err == nil {
		t.Error("init on empty graph must fail")
	}
}

func TestBlocksRunAccounting(t *testing.T) {
	g := recover8029(t)
	d, _, _ := buildDriver(t, g)
	if err := d.Initialize(); err != nil {
		t.Fatal(err)
	}
	if d.BlocksRun["initialize"] == 0 {
		t.Error("no blocks attributed to initialize")
	}
	if d.TotalBlocks() == 0 {
		t.Error("total blocks zero")
	}
}
