// Package synthdrv executes synthesized drivers: it interprets the
// recovered CFG (the same state machine the generated C encodes)
// bound to a target operating system runtime and real device models.
//
// This is the reproduction's equivalent of compiling the synthesized
// C into a driver and loading it on the target OS (§4.2). Because the
// interpreter runs only recovered basic blocks — never the original
// binary — any reconstruction error (missing block, wrong edge, bad
// parameter count) shows up as divergence in the §5.2 equivalence
// checks or as a hit on an unexplored branch.
package synthdrv

import (
	"encoding/binary"
	"fmt"

	"revnic/internal/cfg"
	"revnic/internal/guestos"
	"revnic/internal/hw"
	"revnic/internal/isa"
)

// TargetOS is the boilerplate side of a driver template: everything
// the synthesized functions call back into. Implementations live in
// package template (Windows, Linux, µC/OS-II, KitOS personalities).
type TargetOS interface {
	// Name identifies the target OS.
	Name() string
	// AllocMemory returns the address of n fresh bytes.
	AllocMemory(n uint32) uint32
	// AllocShared returns DMA-capable memory.
	AllocShared(n uint32) uint32
	// FreeMemory releases an allocation (may be a no-op).
	FreeMemory(addr uint32)
	// ReadPCIConfig exposes the bound device's PCI config space.
	ReadPCIConfig(off uint32) uint32
	// IndicateReceive delivers a received frame up the stack.
	IndicateReceive(frame []byte)
	// SendComplete signals transmit completion.
	SendComplete(status uint32)
	// Log receives driver error-log codes.
	Log(code uint32)
	// InitializeTimer registers the driver's timer handler.
	InitializeTimer(handler uint32)
	// SetTimer arms the timer (milliseconds).
	SetTimer(ms uint32)
	// Stall busy-waits.
	Stall(us uint32)
	// UpTime returns milliseconds since boot.
	UpTime() uint32
}

// ErrUnexplored is returned when execution reaches a branch the
// reverse engineering never exercised — the situation §4.1 says the
// developer must resolve by forcing the DBT through the missing
// blocks.
type ErrUnexplored struct {
	From, To uint32
}

func (e *ErrUnexplored) Error() string {
	return fmt.Sprintf("synthdrv: reached unexplored code %#x (from %#x)", e.To, e.From)
}

// Driver is a loaded synthesized driver instance.
type Driver struct {
	G   *cfg.Graph
	OS  TargetOS
	Bus *hw.Bus
	// Mem is the driver's flat memory: state allocations, stack and
	// DMA buffers live here at the same addresses the target OS
	// allocator hands out.
	Mem []byte
	// Ctx is the adapter context returned by Initialize.
	Ctx uint32
	// Stats counts interpreted blocks per entry-point role, the
	// instruction-path-length input to the performance models.
	BlocksRun map[string]int64

	// IOTap, when set, observes every hardware access the
	// synthesized driver performs — the I/O trace side of the §5.2
	// equivalence check.
	IOTap func(port, write bool, addr uint32, size int, value uint32)

	entries map[string]*cfg.Function
	timer   uint32
	blocks  int64
	instrs  int64
	ioOps   int64
}

// New prepares a synthesized driver for execution.
func New(g *cfg.Graph, os TargetOS, bus *hw.Bus) *Driver {
	d := &Driver{
		G: g, OS: os, Bus: bus,
		Mem:       make([]byte, hw.RAMSize),
		BlocksRun: map[string]int64{},
		entries:   map[string]*cfg.Function{},
	}
	for _, f := range g.Funcs {
		if f.Role != "" {
			d.entries[f.Role] = f
		}
	}
	return d
}

// Entry returns the recovered function with the given role.
func (d *Driver) Entry(role string) (*cfg.Function, bool) {
	f, ok := d.entries[role]
	return f, ok
}

// --- memory helpers ---

func (d *Driver) read(addr uint32, size int) (uint32, error) {
	if hw.IsMMIO(addr) {
		v := d.Bus.MMIORead(addr, size)
		if d.IOTap != nil {
			d.IOTap(false, false, addr, size, v)
		}
		return v, nil
	}
	if int(addr)+size > len(d.Mem) {
		return 0, fmt.Errorf("synthdrv: read outside memory at %#x", addr)
	}
	switch size {
	case 1:
		return uint32(d.Mem[addr]), nil
	case 2:
		return uint32(binary.LittleEndian.Uint16(d.Mem[addr:])), nil
	default:
		return binary.LittleEndian.Uint32(d.Mem[addr:]), nil
	}
}

func (d *Driver) write(addr uint32, size int, v uint32) error {
	if hw.IsMMIO(addr) {
		d.Bus.MMIOWrite(addr, size, v)
		if d.IOTap != nil {
			d.IOTap(false, true, addr, size, v)
		}
		return nil
	}
	if int(addr)+size > len(d.Mem) {
		return fmt.Errorf("synthdrv: write outside memory at %#x", addr)
	}
	switch size {
	case 1:
		d.Mem[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(d.Mem[addr:], uint16(v))
	default:
		binary.LittleEndian.PutUint32(d.Mem[addr:], v)
	}
	return nil
}

// ReadMem implements hw.MemBus so DMA devices can reach the
// synthesized driver's buffers.
func (d *Driver) ReadMem(addr uint32, p []byte) {
	if int(addr)+len(p) <= len(d.Mem) {
		copy(p, d.Mem[addr:])
	}
}

// WriteMem implements hw.MemBus.
func (d *Driver) WriteMem(addr uint32, p []byte) {
	if int(addr)+len(p) <= len(d.Mem) {
		copy(d.Mem[addr:], p)
	}
}

// callLimit bounds interpreted blocks per entry invocation.
const callLimit = 500000

// Call runs a recovered function with the given arguments, returning
// r0. It is the runtime embodiment of the template placeholder call.
func (d *Driver) Call(f *cfg.Function, args ...uint32) (uint32, error) {
	var regs [isa.NumRegs]uint32
	sp := uint32(hw.StackTop)
	for i := len(args) - 1; i >= 0; i-- {
		sp -= 4
		if err := d.write(sp, 4, args[i]); err != nil {
			return 0, err
		}
	}
	sp -= 4
	const sentinel = 0xFFFFFFF0
	if err := d.write(sp, 4, sentinel); err != nil {
		return 0, err
	}
	regs[isa.SP] = sp

	pc := f.Entry
	role := f.Role
	if role == "" {
		role = "internal"
	}
	budget := callLimit
	for {
		if budget <= 0 {
			return 0, fmt.Errorf("synthdrv: %s exceeded block budget", f.Name())
		}
		budget--
		blk := d.G.Blocks[pc]
		if blk == nil {
			if pc == sentinel {
				return regs[isa.R0], nil
			}
			return 0, &ErrUnexplored{To: pc}
		}
		d.blocks++
		d.BlocksRun[role]++
		next, err := d.execBlock(blk, &regs)
		if err != nil {
			return 0, err
		}
		if next == sentinel {
			return regs[isa.R0], nil
		}
		pc = next
	}
}

// TotalBlocks returns the total interpreted block count.
func (d *Driver) TotalBlocks() int64 { return d.blocks }

// Counters returns cumulative instruction and hardware-I/O operation
// counts, the path-length inputs to the performance models.
func (d *Driver) Counters() (instrs, ioOps int64) { return d.instrs, d.ioOps }

// execBlock interprets one recovered basic block, returning the next
// block address.
func (d *Driver) execBlock(blk *cfg.BasicBlock, regs *[isa.NumRegs]uint32) (uint32, error) {
	src2 := func(in isa.Instr) uint32 {
		if in.HasImmOperand() {
			return in.Imm
		}
		return regs[in.Rs2]
	}
	for _, in := range blk.Instrs {
		d.instrs++
		if in.Op.IsPortIO() {
			d.ioOps++
		}
		switch in.Op {
		case isa.NOP:
		case isa.MOVI:
			regs[in.Rd] = in.Imm
		case isa.MOV:
			regs[in.Rd] = regs[in.Rs1]
		case isa.ADD:
			regs[in.Rd] = regs[in.Rs1] + src2(in)
		case isa.SUB:
			regs[in.Rd] = regs[in.Rs1] - src2(in)
		case isa.AND:
			regs[in.Rd] = regs[in.Rs1] & src2(in)
		case isa.OR:
			regs[in.Rd] = regs[in.Rs1] | src2(in)
		case isa.XOR:
			regs[in.Rd] = regs[in.Rs1] ^ src2(in)
		case isa.SHL:
			regs[in.Rd] = regs[in.Rs1] << (src2(in) % 32)
		case isa.SHR:
			regs[in.Rd] = regs[in.Rs1] >> (src2(in) % 32)
		case isa.SAR:
			regs[in.Rd] = uint32(int32(regs[in.Rs1]) >> (src2(in) % 32))
		case isa.MUL:
			regs[in.Rd] = regs[in.Rs1] * src2(in)
		case isa.LD8, isa.LD16, isa.LD32:
			v, err := d.read(regs[in.Rs1]+in.Imm, in.Op.AccessSize())
			if err != nil {
				return 0, err
			}
			regs[in.Rd] = v
		case isa.ST8, isa.ST16, isa.ST32:
			if err := d.write(regs[in.Rs1]+in.Imm, in.Op.AccessSize(), regs[in.Rs2]); err != nil {
				return 0, err
			}
		case isa.IN8, isa.IN16, isa.IN32:
			port := regs[in.Rs1] + in.Imm
			v := d.Bus.PortRead(port, in.Op.AccessSize())
			if d.IOTap != nil {
				d.IOTap(true, false, port, in.Op.AccessSize(), v)
			}
			regs[in.Rd] = v
		case isa.OUT8, isa.OUT16, isa.OUT32:
			port := regs[in.Rs1] + in.Imm
			v := regs[in.Rs2] & hw.SizeMask(in.Op.AccessSize())
			d.Bus.PortWrite(port, in.Op.AccessSize(), v)
			if d.IOTap != nil {
				d.IOTap(true, true, port, in.Op.AccessSize(), v)
			}
		case isa.PUSH:
			regs[isa.SP] -= 4
			if err := d.write(regs[isa.SP], 4, regs[in.Rs1]); err != nil {
				return 0, err
			}
		case isa.POP:
			v, err := d.read(regs[isa.SP], 4)
			if err != nil {
				return 0, err
			}
			regs[in.Rd] = v
			regs[isa.SP] += 4
		case isa.JMP:
			return d.checkTarget(blk, in.Imm)
		case isa.JR:
			return d.checkTarget(blk, regs[in.Rs1])
		case isa.BR, isa.BRI:
			rhs := uint32(uint8(in.Rs2))
			if in.Op == isa.BR {
				rhs = regs[in.Rs2]
			}
			if condTrue(in.Cond(), regs[in.Rs1], rhs) {
				return d.checkTarget(blk, in.Imm)
			}
			return d.checkTarget(blk, blk.EndAddr())
		case isa.CALL, isa.CALLR:
			target := in.Imm
			if in.Op == isa.CALLR {
				target = regs[in.Rs1]
			}
			ret := blk.InstrAddrOfTerm() + isa.InstrSize
			if hw.IsAPIGate(target) {
				if err := d.apiCall(regs, hw.APIIndex(target)); err != nil {
					return 0, err
				}
				return ret, nil
			}
			regs[isa.SP] -= 4
			if err := d.write(regs[isa.SP], 4, ret); err != nil {
				return 0, err
			}
			return d.checkTarget(blk, target)
		case isa.RET:
			ra, err := d.read(regs[isa.SP], 4)
			if err != nil {
				return 0, err
			}
			regs[isa.SP] += 4 + in.Imm
			if ra == 0xFFFFFFF0 {
				return ra, nil
			}
			return d.checkTarget(blk, ra)
		case isa.IRET, isa.HLT:
			return 0xFFFFFFF0, nil
		}
	}
	// Split block without terminator: fall through.
	return d.checkTarget(blk, blk.EndAddr())
}

func (d *Driver) checkTarget(from *cfg.BasicBlock, to uint32) (uint32, error) {
	if to == 0xFFFFFFF0 {
		return to, nil
	}
	if d.G.Blocks[to] == nil {
		return 0, &ErrUnexplored{From: from.Addr, To: to}
	}
	return to, nil
}

func condTrue(c isa.Cond, a, b uint32) bool {
	switch c {
	case isa.EQ:
		return a == b
	case isa.NE:
		return a != b
	case isa.LT:
		return int32(a) < int32(b)
	case isa.GE:
		return int32(a) >= int32(b)
	case isa.LTU:
		return a < b
	case isa.GEU:
		return a >= b
	}
	return false
}

// apiCall dispatches an OS upcall to the target OS runtime, with
// stdcall argument cleanup.
func (d *Driver) apiCall(regs *[isa.NumRegs]uint32, index uint32) error {
	if index >= guestos.NumAPIs {
		return fmt.Errorf("synthdrv: unknown API %d", index)
	}
	desc := guestos.Table[index]
	sp := regs[isa.SP]
	args := make([]uint32, desc.NArgs)
	for i := range args {
		v, err := d.read(sp+uint32(4*i), 4)
		if err != nil {
			return err
		}
		args[i] = v
	}
	ret := uint32(guestos.StatusSuccess)
	switch index {
	case guestos.APIRegisterMiniport:
		// The template registers entry points with the target OS
		// itself; a synthesized DriverEntry is not normally run, but
		// accept the call for completeness.
	case guestos.APIAllocateMemory:
		ret = d.OS.AllocMemory(args[0])
	case guestos.APIAllocateSharedMemory:
		ret = d.OS.AllocShared(args[0])
	case guestos.APIFreeMemory, guestos.APIFreeSharedMemory:
		d.OS.FreeMemory(args[0])
	case guestos.APIWriteErrorLogEntry, guestos.APIDebugPrint:
		d.OS.Log(args[0])
	case guestos.APIReadPCIConfig:
		ret = d.OS.ReadPCIConfig(args[0])
	case guestos.APIInitializeTimer:
		d.timer = args[0]
		d.OS.InitializeTimer(args[0])
	case guestos.APISetTimer:
		d.OS.SetTimer(args[0])
	case guestos.APIIndicateReceive:
		frame := make([]byte, args[1])
		d.ReadMem(args[0], frame)
		d.OS.IndicateReceive(frame)
	case guestos.APISendComplete:
		d.OS.SendComplete(args[0])
	case guestos.APIStallExecution:
		d.OS.Stall(args[0])
	case guestos.APIGetSystemUpTime:
		ret = d.OS.UpTime()
	}
	regs[isa.SP] = sp + uint32(4*desc.NArgs)
	regs[isa.R0] = ret
	return nil
}

// --- high-level driver operations (the template's public face) ---

// Initialize runs the recovered initialize entry point.
func (d *Driver) Initialize() error {
	f, ok := d.Entry("initialize")
	if !ok {
		return fmt.Errorf("synthdrv: no initialize entry recovered")
	}
	ctx, err := d.Call(f)
	if err != nil {
		return err
	}
	if ctx == 0 {
		return fmt.Errorf("synthdrv: initialize failed")
	}
	d.Ctx = ctx
	return nil
}

// Send transmits one frame through the synthesized send entry.
func (d *Driver) Send(frame []byte) (uint32, error) {
	f, ok := d.Entry("send")
	if !ok {
		return guestos.StatusFailure, fmt.Errorf("synthdrv: no send entry recovered")
	}
	buf := d.OS.AllocMemory(uint32(len(frame)))
	d.WriteMem(buf, frame)
	return d.Call(f, d.Ctx, buf, uint32(len(frame)))
}

// PumpInterrupts services the interrupt line via the recovered ISR.
func (d *Driver) PumpInterrupts(max int) (int, error) {
	f, ok := d.Entry("isr")
	if !ok {
		return 0, fmt.Errorf("synthdrv: no isr entry recovered")
	}
	n := 0
	for d.Bus.Line.Pending() && n < max {
		if _, err := d.Call(f, d.Ctx); err != nil {
			return n, err
		}
		n++
	}
	if d.Bus.Line.Pending() {
		return n, fmt.Errorf("synthdrv: line still pending after %d ISR runs", n)
	}
	return n, nil
}

// Query runs the recovered query entry for an OID.
func (d *Driver) Query(oid, n uint32) (uint32, []byte, error) {
	f, ok := d.Entry("query")
	if !ok {
		return guestos.StatusFailure, nil, fmt.Errorf("synthdrv: no query entry recovered")
	}
	buf := d.OS.AllocMemory(n)
	st, err := d.Call(f, d.Ctx, oid, buf, n)
	if err != nil {
		return st, nil, err
	}
	out := make([]byte, n)
	d.ReadMem(buf, out)
	return st, out, nil
}

// Set runs the recovered set entry for an OID.
func (d *Driver) Set(oid uint32, in []byte) (uint32, error) {
	f, ok := d.Entry("set")
	if !ok {
		return guestos.StatusFailure, fmt.Errorf("synthdrv: no set entry recovered")
	}
	buf := d.OS.AllocMemory(uint32(len(in)))
	d.WriteMem(buf, in)
	return d.Call(f, d.Ctx, oid, buf, uint32(len(in)))
}

// FireTimer invokes the recovered timer handler, if any.
func (d *Driver) FireTimer() error {
	if d.timer == 0 {
		return nil
	}
	blk := d.G.Blocks[d.timer]
	if blk == nil {
		return &ErrUnexplored{To: d.timer}
	}
	f := d.G.Funcs[d.timer]
	if f == nil {
		return fmt.Errorf("synthdrv: timer handler %#x not a recovered function", d.timer)
	}
	_, err := d.Call(f, d.Ctx)
	return err
}

// Halt runs the recovered halt entry.
func (d *Driver) Halt() error {
	f, ok := d.Entry("halt")
	if !ok {
		return fmt.Errorf("synthdrv: no halt entry recovered")
	}
	_, err := d.Call(f, d.Ctx)
	return err
}
