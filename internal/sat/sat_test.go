package sat

import (
	"math/rand"
	"testing"
)

func TestLitEncoding(t *testing.T) {
	p, n := Pos(5), Neg(5)
	if p.Var() != 5 || n.Var() != 5 || p.Sign() || !n.Sign() {
		t.Fatal("literal encoding broken")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatal("Not broken")
	}
}

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(Pos(a)) || !s.Solve() {
		t.Fatal("single unit should be SAT")
	}
	if !s.Value(a) {
		t.Fatal("model should set a true")
	}
	if s.AddClause(Neg(a)) {
		t.Fatal("contradicting unit should fail")
	}
	if s.Solve() {
		t.Fatal("must stay UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause must be UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Pos(a), Neg(a))         // tautology: ignored
	s.AddClause(Pos(b), Pos(b), Pos(b)) // duplicates collapse to unit
	if !s.Solve() || !s.Value(b) {
		t.Fatal("want SAT with b=true")
	}
}

// pigeonhole(n) encodes n+1 pigeons into n holes: classically UNSAT
// and requires genuine clause learning to refute quickly.
func pigeonhole(s *Solver, pigeons, holes int) {
	vars := make([][]int, pigeons)
	for p := range vars {
		vars[p] = make([]int, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = Pos(vars[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(Neg(vars[p1][h]), Neg(vars[p2][h]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	if s.Solve() {
		t.Fatal("PHP(6,5) must be UNSAT")
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if !s.Solve() {
		t.Fatal("PHP(5,5) must be SAT")
	}
}

// bruteForce decides satisfiability of a clause set over nVars
// variables by enumeration.
func bruteForce(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m>>l.Var()&1 == 1
				if val != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomFormulas(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		nVars := 4 + r.Intn(9) // 4..12
		nClauses := 1 + r.Intn(6*nVars)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		addOK := true
		for i := 0; i < nClauses; i++ {
			n := 1 + r.Intn(3)
			c := make([]Lit, n)
			for j := range c {
				v := r.Intn(nVars)
				if r.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				addOK = false
				break
			}
		}
		want := bruteForce(nVars, clauses)
		var got bool
		if !addOK {
			got = false
		} else {
			got = s.Solve()
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v clauses=%v", trial, got, want, clauses)
		}
		if got {
			// Verify the model satisfies every clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Sign() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy %v", trial, c)
				}
			}
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		nVars := 4 + r.Intn(6)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		alive := true
		for round := 0; round < 6; round++ {
			for i := 0; i < 3; i++ {
				n := 1 + r.Intn(3)
				c := make([]Lit, n)
				for j := range c {
					v := r.Intn(nVars)
					if r.Intn(2) == 0 {
						c[j] = Pos(v)
					} else {
						c[j] = Neg(v)
					}
				}
				clauses = append(clauses, c)
				if !s.AddClause(c...) {
					alive = false
				}
			}
			got := alive && s.Solve()
			want := bruteForce(nVars, clauses)
			if got != want {
				t.Fatalf("trial %d round %d: incremental=%v brute=%v", trial, round, got, want)
			}
			if !want {
				break
			}
		}
	}
}

func TestAssumptionQueries(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Neg(a), Pos(b)) // a -> b
	s.AddClause(Neg(b), Pos(c)) // b -> c
	if !s.SolveUnder(Pos(a)) {
		t.Fatal("a alone should be SAT")
	}
	if s.SolveUnder(Pos(a), Neg(c)) {
		t.Fatal("a & !c contradicts the chain")
	}
	// Assumptions must not leak into later solves.
	if !s.SolveUnder(Neg(c)) {
		t.Fatal("!c alone should be SAT")
	}
	if !s.Solve() {
		t.Fatal("base formula still SAT")
	}
	_ = b
}

func TestRandomAssumptionQueries(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		nVars := 4 + r.Intn(6)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		ok := true
		for i := 0; i < 2*nVars; i++ {
			n := 1 + r.Intn(3)
			c := make([]Lit, n)
			for j := range c {
				v := r.Intn(nVars)
				if r.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		for q := 0; q < 5; q++ {
			var assumptions []Lit
			seen := map[int]bool{}
			for i := 0; i < 1+r.Intn(3); i++ {
				v := r.Intn(nVars)
				if seen[v] {
					continue
				}
				seen[v] = true
				if r.Intn(2) == 0 {
					assumptions = append(assumptions, Pos(v))
				} else {
					assumptions = append(assumptions, Neg(v))
				}
			}
			// Brute-force with assumptions as extra unit clauses.
			ref := append([][]Lit{}, clauses...)
			for _, a := range assumptions {
				ref = append(ref, []Lit{a})
			}
			want := bruteForce(nVars, ref)
			got := ok && s.SolveUnder(assumptions...)
			if got != want {
				t.Fatalf("trial %d query %d: got %v want %v (clauses %v assume %v)",
					trial, q, got, want, clauses, assumptions)
			}
		}
	}
}

func TestLearntDeletionBoundsDatabase(t *testing.T) {
	capped := New()
	capped.SetLearntCap(50)
	pigeonhole(capped, 7, 6)
	if capped.Solve() {
		t.Fatal("PHP(7,6) must be UNSAT")
	}
	if n := capped.NumLearnts(); n > 50 {
		t.Errorf("learnt database %d exceeds cap 50", n)
	}
	if capped.DeletedLearnts() == 0 {
		t.Error("expected activity-based deletion to fire on a conflict-heavy instance")
	}
}

func TestLearntDeletionPreservesAnswers(t *testing.T) {
	// Deleting learnt clauses only drops derived pruning; answers must
	// match brute force for every cap, including an aggressive one.
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		nVars := 4 + r.Intn(9)
		nClauses := 1 + r.Intn(6*nVars)
		s := New()
		s.SetLearntCap(4)
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		addOK := true
		for i := 0; i < nClauses; i++ {
			n := 1 + r.Intn(3)
			c := make([]Lit, n)
			for j := range c {
				v := r.Intn(nVars)
				if r.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				addOK = false
				break
			}
		}
		want := bruteForce(nVars, clauses)
		got := addOK && s.Solve()
		if got != want {
			t.Fatalf("trial %d: capped solver=%v brute=%v clauses=%v", trial, got, want, clauses)
		}
	}
}

func TestLearntDeletionUnderAssumptions(t *testing.T) {
	// Exercise the SolveUnder reduction path: repeated assumption
	// queries on one long-lived instance must stay correct while the
	// database is constantly trimmed (locked clauses survive).
	r := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 100; trial++ {
		nVars := 4 + r.Intn(6)
		s := New()
		s.SetLearntCap(4)
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		ok := true
		for i := 0; i < 2*nVars; i++ {
			n := 1 + r.Intn(3)
			c := make([]Lit, n)
			for j := range c {
				v := r.Intn(nVars)
				if r.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		for q := 0; q < 8; q++ {
			var assumptions []Lit
			seen := map[int]bool{}
			for i := 0; i < 1+r.Intn(3); i++ {
				v := r.Intn(nVars)
				if seen[v] {
					continue
				}
				seen[v] = true
				if r.Intn(2) == 0 {
					assumptions = append(assumptions, Pos(v))
				} else {
					assumptions = append(assumptions, Neg(v))
				}
			}
			ref := append([][]Lit{}, clauses...)
			for _, a := range assumptions {
				ref = append(ref, []Lit{a})
			}
			want := bruteForce(nVars, ref)
			got := ok && s.SolveUnder(assumptions...)
			if got != want {
				t.Fatalf("trial %d query %d: got %v want %v (clauses %v assume %v)",
					trial, q, got, want, clauses, assumptions)
			}
		}
	}
}

func TestScopedClauses(t *testing.T) {
	s := New()
	x := s.NewVar()
	if !s.AddClause(Pos(x)) {
		t.Fatal("base clause rejected")
	}
	if s.ScopeDepth() != 0 {
		t.Fatalf("ScopeDepth = %d, want 0", s.ScopeDepth())
	}
	s.Push()
	if s.ScopeDepth() != 1 {
		t.Fatalf("ScopeDepth = %d, want 1", s.ScopeDepth())
	}
	s.AddScoped(Neg(x))
	if s.Solve() {
		t.Fatal("SAT with contradictory scoped clause active")
	}
	if s.Unsat() {
		t.Fatal("scoped contradiction poisoned the solver globally")
	}
	s.Pop()
	if s.ScopeDepth() != 0 {
		t.Fatalf("ScopeDepth = %d, want 0 after Pop", s.ScopeDepth())
	}
	if !s.Solve() {
		t.Fatal("UNSAT after popping the contradictory scope")
	}
	if !s.Value(x) {
		t.Fatal("model lost the base clause")
	}
}

func TestScopeNesting(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	s.AddClause(Pos(x), Pos(y))
	s.Push()
	s.AddScoped(Neg(x))
	s.Push()
	s.AddScoped(Neg(y))
	if s.Solve() {
		t.Fatal("SAT with both scopes active")
	}
	s.Pop() // drop ¬y
	if !s.Solve() {
		t.Fatal("UNSAT with only outer scope active")
	}
	if s.Value(x) || !s.Value(y) {
		t.Fatal("model violates active constraints")
	}
	s.Pop() // drop ¬x
	if !s.Solve() {
		t.Fatal("UNSAT with no scopes active")
	}
}

func TestPopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty scope stack did not panic")
		}
	}()
	New().Pop()
}

func TestAddScopedWithoutScope(t *testing.T) {
	s := New()
	x := s.NewVar()
	s.AddScoped(Pos(x))
	if !s.Solve() || !s.Value(x) {
		t.Fatal("AddScoped without open scope must behave like AddClause")
	}
}

// TestScopedRandom checks push/pop semantics against brute force: a
// random base formula plus a random scoped layer must answer like the
// conjunction while the scope is open and like the base alone after
// Pop — across repeated cycles on one solver instance, so learnt
// clauses from scoped conflicts must not leak into later queries.
func TestScopedRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	randClause := func(nVars int) []Lit {
		c := make([]Lit, 1+r.Intn(3))
		for j := range c {
			v := r.Intn(nVars)
			if r.Intn(2) == 0 {
				c[j] = Pos(v)
			} else {
				c[j] = Neg(v)
			}
		}
		return c
	}
	for trial := 0; trial < 120; trial++ {
		nVars := 4 + r.Intn(7)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var base [][]Lit
		for i, n := 0, r.Intn(3*nVars); i < n; i++ {
			c := randClause(nVars)
			base = append(base, c)
			s.AddClause(c...)
		}
		baseWant := bruteForce(nVars, base)
		for cycle := 0; cycle < 4; cycle++ {
			s.Push()
			scoped := append([][]Lit(nil), base...)
			for i, n := 0, 1+r.Intn(2*nVars); i < n; i++ {
				c := randClause(nVars)
				scoped = append(scoped, c)
				s.AddScoped(c...)
			}
			if got, want := s.Solve(), bruteForce(nVars, scoped); got != want {
				t.Fatalf("trial %d cycle %d scoped: solver=%v brute=%v", trial, cycle, got, want)
			}
			s.Pop()
			if got := s.Solve(); got != baseWant {
				t.Fatalf("trial %d cycle %d after pop: solver=%v brute=%v", trial, cycle, got, baseWant)
			}
		}
	}
}

// TestScopedUnderAssumptions mixes open scopes with SolveUnder
// assumptions: the scoped layer must stay active and the assumptions
// must stay transient.
func TestScopedUnderAssumptions(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		nVars := 4 + r.Intn(6)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var all [][]Lit
		for i, n := 0, r.Intn(3*nVars); i < n; i++ {
			c := make([]Lit, 1+r.Intn(3))
			for j := range c {
				v := r.Intn(nVars)
				if r.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			all = append(all, c)
			if r.Intn(2) == 0 {
				s.AddClause(c...)
			} else {
				if s.ScopeDepth() == 0 {
					s.Push()
				}
				s.AddScoped(c...)
			}
		}
		for q := 0; q < 4; q++ {
			a := Pos(r.Intn(nVars))
			if r.Intn(2) == 0 {
				a = a.Not()
			}
			want := bruteForce(nVars, append(append([][]Lit(nil), all...), []Lit{a}))
			if got := s.SolveUnder(a); got != want {
				t.Fatalf("trial %d q %d: solver=%v brute=%v under %v", trial, q, got, want, a)
			}
		}
	}
}

// TestScopedLearntDeletion exercises push/pop under a tiny learnt cap:
// deletion plus scope retirement must not change answers.
func TestScopedLearntDeletion(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := New()
	s.SetLearntCap(8)
	nVars := 10
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	var base [][]Lit
	for i := 0; i < 12; i++ {
		c := []Lit{Pos(r.Intn(nVars)), Neg(r.Intn(nVars)), Pos(r.Intn(nVars))}
		base = append(base, c)
		s.AddClause(c...)
	}
	baseWant := bruteForce(nVars, base)
	for cycle := 0; cycle < 12; cycle++ {
		s.Push()
		scoped := append([][]Lit(nil), base...)
		for i := 0; i < 6; i++ {
			c := []Lit{Pos(r.Intn(nVars)), Neg(r.Intn(nVars))}
			scoped = append(scoped, c)
			s.AddScoped(c...)
		}
		if got, want := s.Solve(), bruteForce(nVars, scoped); got != want {
			t.Fatalf("cycle %d scoped: solver=%v brute=%v", cycle, got, want)
		}
		s.Pop()
		if got := s.Solve(); got != baseWant {
			t.Fatalf("cycle %d after pop: solver=%v brute=%v", cycle, got, baseWant)
		}
	}
}
