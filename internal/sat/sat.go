// Package sat implements a CDCL (conflict-driven clause learning)
// boolean satisfiability solver in the MiniSat lineage: two-literal
// watching, first-UIP conflict analysis, VSIDS-style variable activity
// with phase saving, and geometric restarts.
//
// It is the decision procedure underneath RevNIC's bitvector
// constraint solver (package solver), standing in for the STP solver
// KLEE uses in the original system.
//
// Long-lived incremental sessions keep learning: an activity-based
// learnt-clause deletion policy (SetLearntCap) bounds the database so
// session memory stays flat over arbitrarily many queries.
package sat

import "sort"

// Lit is a literal: a variable index with a sign. Variables are
// numbered from 0; the literal for variable v is Pos(v) or Neg(v).
type Lit uint32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(v << 1) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(v<<1 | 1) }

// Var returns the variable of the literal.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 != 0 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits   []Lit
	learnt bool
	// act is the VSIDS-style clause activity: bumped whenever the
	// clause participates in conflict analysis, decayed geometrically.
	// Learnt-clause deletion discards the least active half when the
	// database exceeds the cap.
	act float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

const noReason = -1

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with New.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal

	assigns  []lbool
	polarity []bool // saved phases
	level    []int
	reason   []*clause
	activity []float64
	varInc   float64

	trail    []Lit
	trailLim []int
	qhead    int

	seen      []bool
	unsat     bool // a top-level conflict was derived
	conflicts int64
	decisions int64

	claInc    float64
	learntCap int
	deleted   int64

	// interrupt, when set, is polled periodically inside Solve and
	// SolveUnder; returning true aborts the search (see SetInterrupt).
	interrupt   func() bool
	interrupted bool
	polls       int64

	// scopes holds the selector variable of each open assumption
	// scope (see Push). Clauses added through AddScoped while a scope
	// is open carry the negation of its selector, and Solve/SolveUnder
	// assume every open selector true, so popping a scope retires its
	// clauses without touching the clause database.
	scopes []int
}

// DefaultLearntCap bounds the learnt-clause database. Incremental
// sessions live for a whole exploration and learn continuously; the
// cap keeps their memory bounded (ROADMAP: "sat learnt-clause
// databases grow without bound within a session"). Deletion never
// changes answers — learnt clauses are consequences of the input —
// only the amount of pruning retained.
const DefaultLearntCap = 10000

// New returns an empty solver with the default learnt-clause cap.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1, learntCap: DefaultLearntCap}
}

// SetInterrupt installs a cooperative stop check: f is polled every
// few hundred search-loop iterations inside Solve and SolveUnder, and
// when it returns true the search aborts, backtracks to level zero and
// returns false. An aborted answer means "unknown", not UNSAT —
// callers must consult Interrupted before caching or acting on it.
// The check never fires on its own and installing one that always
// returns false leaves search behavior (and answers) unchanged.
func (s *Solver) SetInterrupt(f func() bool) { s.interrupt = f }

// Interrupted reports whether the most recent Solve or SolveUnder was
// aborted by the interrupt check rather than decided.
func (s *Solver) Interrupted() bool { return s.interrupted }

// interruptNow polls the interrupt hook (amortized: the very first
// call is a real check — so a pre-fired interrupt aborts before any
// search happens — then one real check every 256 calls).
func (s *Solver) interruptNow() bool {
	if s.interrupt == nil {
		return false
	}
	s.polls++
	if s.polls&255 != 1 {
		return false
	}
	return s.interrupt()
}

// SetLearntCap bounds the learnt-clause database: when more than n
// learnt clauses accumulate, the least active (locked and binary
// clauses excepted) are deleted down to n/2. n < 0 disables deletion;
// n == 0 restores the default.
func (s *Solver) SetLearntCap(n int) {
	if n == 0 {
		n = DefaultLearntCap
	}
	s.learntCap = n
}

// NumLearnts reports the current learnt-clause count.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// DeletedLearnts reports how many learnt clauses activity-based
// deletion has discarded.
func (s *Solver) DeletedLearnts() int64 { return s.deleted }

// NewVar introduces a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.polarity = append(s.polarity, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// Unsat reports whether a top-level conflict has already been
// derived: the formula is unsatisfiable regardless of any further
// clauses or assumptions. Incremental callers use this to skip
// translating new queries into a poisoned instance.
func (s *Solver) Unsat() bool { return s.unsat }

// Stats returns the number of decisions and conflicts so far.
func (s *Solver) Stats() (decisions, conflicts int64) { return s.decisions, s.conflicts }

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It must be called
// before Solve at decision level zero. Returns false if the formula
// is already unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	// Clauses may be added between Solve calls; discard any leftover
	// search assignments so simplification sees only level-0 facts.
	s.cancelUntil(0)
	// Sort-free simplification: drop false/duplicate literals, detect
	// tautologies and already-satisfied clauses.
	out := lits[:0:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
			}
			if o == l.Not() {
				taut = true
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

// Push opens a new assumption scope. Clauses subsequently added with
// AddScoped belong to this scope: they are active for every Solve and
// SolveUnder call until the matching Pop, after which they are
// permanently retired. Scopes nest; Pop retires the most recent.
//
// The mechanism is the MiniSat assumption-selector idiom: each scope
// gets a fresh selector variable sel, scoped clauses carry ¬sel, and
// queries assume sel. Pop asserts the unit ¬sel, satisfying (hence
// deactivating) every clause of the scope, including any learnt
// clauses derived from it — those carry ¬sel literals inherited
// through conflict analysis, so learning across scopes stays sound.
func (s *Solver) Push() {
	s.scopes = append(s.scopes, s.NewVar())
}

// Pop retires the most recent open scope (see Push). It panics if no
// scope is open.
func (s *Solver) Pop() {
	if len(s.scopes) == 0 {
		panic("sat: Pop without matching Push")
	}
	sel := s.scopes[len(s.scopes)-1]
	s.scopes = s.scopes[:len(s.scopes)-1]
	if s.unsat {
		return
	}
	// The positive selector literal only ever appears as an assumption,
	// never inside a clause, so asserting ¬sel can satisfy clauses but
	// never conflict.
	s.AddClause(Neg(sel))
}

// ScopeDepth reports the number of open assumption scopes.
func (s *Solver) ScopeDepth() int { return len(s.scopes) }

// AddScoped adds a clause bound to the innermost open scope: it is
// active until that scope is popped. With no scope open it behaves
// exactly like AddClause. Returns false if the formula is already
// unsatisfiable at the top level.
func (s *Solver) AddScoped(lits ...Lit) bool {
	if len(s.scopes) == 0 {
		return s.AddClause(lits...)
	}
	sel := s.scopes[len(s.scopes)-1]
	return s.AddClause(append(append(make([]Lit, 0, len(lits)+1), lits...), Neg(sel))...)
}

func (s *Solver) watchClause(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting
// clause, or nil if no conflict arises.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != nil {
				kept = append(kept, w)
				continue
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Normalize so lits[0] is the other watched literal.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(first, c)
			}
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// locked reports whether c is the reason of a current assignment and
// therefore must survive deletion.
func (s *Solver) locked(c *clause) bool {
	return s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c
}

// detachClause removes c's two watchers.
func (s *Solver) detachClause(c *clause) {
	for _, wl := range [2]Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[wl]
		for i := range ws {
			if ws[i].c == c {
				s.watches[wl] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
	}
}

// maybeReduce runs activity-based learnt-clause deletion when the
// database exceeds the cap: the least active half goes, except locked
// clauses (reasons of current assignments) and binary clauses, which
// are cheap to keep and expensive to relearn. Deleting learnt clauses
// never changes satisfiability — they are consequences of the input
// clauses — so the cap bounds memory without affecting answers.
func (s *Solver) maybeReduce() {
	if s.learntCap <= 0 || len(s.learnts) <= s.learntCap {
		return
	}
	byAct := make([]*clause, len(s.learnts))
	copy(byAct, s.learnts)
	sort.SliceStable(byAct, func(i, j int) bool { return byAct[i].act < byAct[j].act })
	goal := len(s.learnts) - s.learntCap/2
	doomed := make(map[*clause]bool, goal)
	for _, c := range byAct {
		if len(doomed) >= goal {
			break
		}
		if len(c.lits) <= 2 || s.locked(c) {
			continue
		}
		doomed[c] = true
	}
	if len(doomed) == 0 {
		return
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if doomed[c] {
			s.detachClause(c)
		} else {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	s.deleted += int64(len(doomed))
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit
	haveP := false
	idx := len(s.trail) - 1
	c := conflict

	for {
		if c.learnt {
			s.bumpClause(c)
		}
		start := 0
		if haveP {
			start = 1 // lits[0] is p itself
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		haveP = true
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
	}
	learnt[0] = p.Not()

	// Compute backtrack level: the highest level among the other
	// literals, moved to position 1 for watching.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	s.varInc *= 1.05
	s.claInc *= 1.001
	return learnt, btLevel
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// pickBranchVar returns the unassigned variable with the highest
// activity, or -1 if all variables are assigned.
func (s *Solver) pickBranchVar() int {
	best, bestAct := -1, -1.0
	for v := range s.assigns {
		if s.assigns[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// Solve determines satisfiability of the accumulated clauses. After a
// true result, Value reports the satisfying assignment. Solve may be
// called repeatedly after adding more clauses (incremental use). With
// open scopes, satisfiability is decided with all scoped clauses
// active (equivalent to SolveUnder with no extra assumptions).
func (s *Solver) Solve() bool {
	if len(s.scopes) > 0 {
		return s.SolveUnder()
	}
	s.interrupted = false
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.unsat = true
		return false
	}
	restartLimit := int64(100)
	conflictsAtRestart := s.conflicts
	for {
		if s.interruptNow() {
			s.interrupted = true
			s.cancelUntil(0)
			return false
		}
		conflict := s.propagate()
		if conflict != nil {
			s.conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return false
			}
			learnt, btLevel := s.analyze(conflict)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.watchClause(c)
				// Bump after appending so a rescale triggered by the
				// bump scales this clause along with the rest.
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.maybeReduce()
			if s.conflicts-conflictsAtRestart >= restartLimit {
				restartLimit += restartLimit / 2
				conflictsAtRestart = s.conflicts
				s.cancelUntil(0)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return true // all variables assigned, no conflict
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := Pos(v)
		if !s.polarity[v] {
			l = Neg(v)
		}
		s.uncheckedEnqueue(l, nil)
	}
}

// SolveUnder determines satisfiability under the given assumption
// literals without permanently asserting them. It is used by the
// bitvector solver for cached incremental queries. Clauses of open
// scopes are active: their selectors are assumed ahead of the given
// assumptions.
func (s *Solver) SolveUnder(assumptions ...Lit) bool {
	s.interrupted = false
	if s.unsat {
		return false
	}
	if len(s.scopes) > 0 {
		all := make([]Lit, 0, len(s.scopes)+len(assumptions))
		for _, sel := range s.scopes {
			all = append(all, Pos(sel))
		}
		assumptions = append(all, assumptions...)
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.unsat = true
		return false
	}
	for _, a := range assumptions {
		switch s.value(a) {
		case lTrue:
			continue
		case lFalse:
			s.cancelUntil(0)
			return false
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(a, nil)
		if s.propagate() != nil {
			s.cancelUntil(0)
			return false
		}
	}
	assumptionLevel := s.decisionLevel()
	restartLimit := int64(100)
	conflictsAtRestart := s.conflicts
	for {
		if s.interruptNow() {
			s.interrupted = true
			s.cancelUntil(0)
			return false
		}
		conflict := s.propagate()
		if conflict != nil {
			s.conflicts++
			if s.decisionLevel() <= assumptionLevel {
				s.cancelUntil(0)
				return false
			}
			learnt, btLevel := s.analyze(conflict)
			if btLevel < assumptionLevel {
				btLevel = assumptionLevel
			}
			s.cancelUntil(btLevel)
			switch s.value(learnt[0]) {
			case lFalse:
				// The asserting literal is contradicted by the
				// assumptions themselves: UNSAT under assumptions.
				s.cancelUntil(0)
				return false
			case lTrue:
				// Already satisfied at or below the assumption level;
				// record the clause and keep searching.
				if len(learnt) > 1 {
					c := &clause{lits: learnt, learnt: true}
					s.learnts = append(s.learnts, c)
					s.watchClause(c)
					s.bumpClause(c)
					s.maybeReduce()
				}
				continue
			}
			if len(learnt) == 1 {
				// Unit: permanent at level 0, otherwise implied for
				// the remainder of this assumption query.
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.watchClause(c)
				// Bump after appending so a rescale triggered by the
				// bump scales this clause along with the rest.
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.maybeReduce()
			if s.conflicts-conflictsAtRestart >= restartLimit {
				restartLimit += restartLimit / 2
				conflictsAtRestart = s.conflicts
				s.cancelUntil(assumptionLevel)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return true
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := Pos(v)
		if !s.polarity[v] {
			l = Neg(v)
		}
		s.uncheckedEnqueue(l, nil)
	}
}

// Value reports the model value of variable v after a successful
// Solve. Unassigned variables (possible when the formula does not
// constrain them) report false.
func (s *Solver) Value(v int) bool { return s.assigns[v] == lTrue }
