package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm uint32) bool {
		in := Instr{Op: Op(op % uint8(numOps)), Rd: Reg(rd), Rs1: Reg(rs1), Rs2: Reg(rs2), Imm: imm}
		out, err := Decode(in.Encode(nil))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("want error for truncated instruction")
	}
	bad := Instr{Op: numOps}.Encode(nil)
	bad[0] = byte(numOps)
	if _, err := Decode(bad); err == nil {
		t.Error("want error for invalid opcode")
	}
}

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
; a tiny program
.org 0x10000
.equ MAGIC, 0x42
start:
	movi r0, #MAGIC
	movi r1, data
	ld32 r2, [r1+4]
	add  r2, r2, #1
	st32 [r1+4], r2
	beq  r2, #0, done
	call fn
done:
	hlt
.func fn
	in8  r0, (r1+0x10)
	out8 (r1+0x10), r0
	ret 4
.align 8
data:
	.word 0x11223344, 0x55667788
	.byte 1, 2
	.short 0x1234
	.asciz "hi"
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x10000 {
		t.Errorf("Base = %#x, want 0x10000", p.Base)
	}
	if got := p.Sym("start"); got != 0x10000 {
		t.Errorf("start = %#x", got)
	}
	if len(p.Funcs) != 1 || p.Funcs[0].Name != "fn" {
		t.Fatalf("Funcs = %+v", p.Funcs)
	}
	if p.Sym("fn") != p.Funcs[0].Addr {
		t.Errorf("fn symbol and func record disagree")
	}

	// Decode the first instruction and verify it.
	in, err := Decode(p.Code)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != MOVI || in.Rd != R0 || in.Imm != 0x42 {
		t.Errorf("first instr = %+v", in)
	}

	// The branch should be a BRI with comparand 0 and target "done".
	off := 5 * InstrSize
	br, err := Decode(p.Code[off:])
	if err != nil {
		t.Fatal(err)
	}
	if br.Op != BRI || br.Cond() != EQ || uint8(br.Rs2) != 0 || br.Imm != p.Sym("done") {
		t.Errorf("branch = %+v (target want %#x)", br, p.Sym("done"))
	}

	// data contents.
	d := p.Sym("data") - p.Base
	if p.Code[d] != 0x44 || p.Code[d+3] != 0x11 {
		t.Errorf("little-endian .word wrong: % x", p.Code[d:d+4])
	}
}

func TestAssembleForwardAndBackwardRefs(t *testing.T) {
	p, err := Assemble(`
loop:
	jmp fwd
fwd:
	jmp loop
`)
	if err != nil {
		t.Fatal(err)
	}
	i0, _ := Decode(p.Code)
	i1, _ := Decode(p.Code[InstrSize:])
	if i0.Imm != InstrSize {
		t.Errorf("forward ref = %#x, want %#x", i0.Imm, InstrSize)
	}
	if i1.Imm != 0 {
		t.Errorf("backward ref = %#x, want 0", i1.Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r0",
		"movi r9, #1",
		"add r0, r1",
		"jmp undefined_symbol",
		"beq r0, #0x1ff, 0", // immediate comparand too wide
		"ld32 r0, (r1+0)",   // parens are for ports
		".align 3",
		".equ broken",
		"dup: nop\ndup: nop",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q): want error", src)
		}
	}
}

func TestDisassembleAllOps(t *testing.T) {
	// Every opcode must disassemble to something non-empty and
	// round-trippable through the assembler where syntax permits.
	r := rand.New(rand.NewSource(1))
	for op := NOP; op < numOps; op++ {
		in := Instr{Op: op, Rd: Reg(r.Intn(7)), Rs1: Reg(r.Intn(7)), Rs2: Reg(r.Intn(7)), Imm: uint32(r.Intn(1 << 16))}
		if op == BR || op == BRI {
			in.Rd = Reg(r.Intn(int(numConds)))
		}
		if s := in.Disassemble(); s == "" {
			t.Errorf("op %v: empty disassembly", op)
		}
	}
}

func TestAccessClassPredicates(t *testing.T) {
	if !IN8.IsPortIO() || !OUT32.IsPortIO() || LD8.IsPortIO() {
		t.Error("IsPortIO misclassifies")
	}
	if !LD16.IsLoad() || !POP.IsLoad() || ST8.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !ST32.IsStore() || !PUSH.IsStore() || LD32.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !CALL.IsCall() || !CALLR.IsCall() || JMP.IsCall() {
		t.Error("IsCall misclassifies")
	}
	for _, tc := range []struct {
		op   Op
		size int
	}{{LD8, 1}, {ST16, 2}, {IN32, 4}, {PUSH, 4}, {ADD, 0}} {
		if got := tc.op.AccessSize(); got != tc.size {
			t.Errorf("%v.AccessSize() = %d, want %d", tc.op, got, tc.size)
		}
	}
	if !BRI.IsTerminator() || !HLT.IsTerminator() || ADD.IsTerminator() {
		t.Error("IsTerminator misclassifies")
	}
}
