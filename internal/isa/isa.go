// Package isa defines the 32-bit instruction set used by the guest
// machine in which proprietary drivers run.
//
// The ISA is a deliberately simple stand-in for x86: it has the
// structural properties RevNIC depends on (separate port I/O and
// memory-mapped I/O instructions, stack-passed arguments with
// callee cleanup as in the Windows stdcall convention, indirect jumps
// for compiler-generated jump tables, and a conventional return-value
// register) without the decoding complexity of a CISC front end.
//
// Every instruction occupies exactly 8 bytes:
//
//	byte 0: opcode
//	byte 1: rd   (destination register, or condition code)
//	byte 2: rs1  (first source register)
//	byte 3: rs2  (second source register, or RegNone for immediate form)
//	bytes 4-7: 32-bit little-endian immediate
//
// Registers r0..r6 are general purpose; sp (index 7) is the stack
// pointer. r0 carries function return values. Arguments are passed on
// the stack and popped by the callee (RET n), mirroring stdcall, which
// is what makes the synthesizer's def-use parameter recovery (§4.1 of
// the paper) meaningful.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Reg identifies a general-purpose register.
type Reg uint8

// Register indices. SP is addressable like any other register so that
// frame arithmetic (parameter access at [sp+n]) is ordinary ALU code.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	SP

	// NumRegs is the number of architectural registers.
	NumRegs = 8

	// RegNone in the rs2 field selects the immediate operand form.
	RegNone Reg = 0xFF
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	if r == RegNone {
		return "none"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. ALU operations use rs2 when it is a real register and the
// immediate otherwise, so each operation has a single opcode for both
// register and immediate forms.
const (
	NOP Op = iota

	MOVI // rd = imm
	MOV  // rd = rs1

	ADD // rd = rs1 + src2
	SUB // rd = rs1 - src2
	AND // rd = rs1 & src2
	OR  // rd = rs1 | src2
	XOR // rd = rs1 ^ src2
	SHL // rd = rs1 << (src2 & 31)
	SHR // rd = rs1 >> (src2 & 31), logical
	SAR // rd = rs1 >> (src2 & 31), arithmetic
	MUL // rd = rs1 * src2

	LD8  // rd = zx(mem8[rs1 + imm])
	LD16 // rd = zx(mem16[rs1 + imm])
	LD32 // rd = mem32[rs1 + imm]
	ST8  // mem8[rs1 + imm] = rs2[7:0]
	ST16 // mem16[rs1 + imm] = rs2[15:0]
	ST32 // mem32[rs1 + imm] = rs2

	IN8   // rd = zx(port8[rs1 + imm])
	IN16  // rd = zx(port16[rs1 + imm])
	IN32  // rd = port32[rs1 + imm]
	OUT8  // port8[rs1 + imm] = rs2[7:0]
	OUT16 // port16[rs1 + imm] = rs2[15:0]
	OUT32 // port32[rs1 + imm] = rs2

	PUSH // sp -= 4; mem32[sp] = rs1
	POP  // rd = mem32[sp]; sp += 4

	JMP   // pc = imm
	JR    // pc = rs1 (indirect; jump tables)
	BR    // if cond(rd)(rs1, rs2) then pc = imm
	BRI   // if cond(rd)(rs1, zx(rs2 byte)) then pc = imm
	CALL  // push pc'; pc = imm
	CALLR // push pc'; pc = rs1 (indirect; OS API table calls)
	RET   // pc = pop(); sp += imm (callee argument cleanup)
	IRET  // return from interrupt
	HLT   // halt

	numOps
)

// Cond is the branch condition stored in the rd field of a BR
// instruction.
type Cond uint8

// Branch conditions. Signed and unsigned comparisons are distinct so
// that the symbolic executor forks with the correct path constraints.
const (
	EQ Cond = iota
	NE
	LT // signed <
	GE // signed >=
	LTU
	GEU

	numConds
)

var condNames = [numConds]string{"eq", "ne", "lt", "ge", "ltu", "geu"}

// String returns the assembler suffix for the condition.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// InstrSize is the fixed encoding size of every instruction, in bytes.
const InstrSize = 8

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Rd  Reg // destination, or Cond for BR
	Rs1 Reg
	Rs2 Reg // RegNone selects the immediate operand
	Imm uint32
}

// HasImmOperand reports whether the second ALU/branch operand is the
// immediate rather than rs2.
func (i Instr) HasImmOperand() bool { return i.Rs2 == RegNone }

// Cond returns the branch condition of a BR instruction.
func (i Instr) Cond() Cond { return Cond(i.Rd) }

// Encode appends the 8-byte encoding of the instruction to dst.
func (i Instr) Encode(dst []byte) []byte {
	var b [InstrSize]byte
	b[0] = byte(i.Op)
	b[1] = byte(i.Rd)
	b[2] = byte(i.Rs1)
	b[3] = byte(i.Rs2)
	binary.LittleEndian.PutUint32(b[4:], i.Imm)
	return append(dst, b[:]...)
}

// Decode decodes one instruction from b.
func Decode(b []byte) (Instr, error) {
	if len(b) < InstrSize {
		return Instr{}, fmt.Errorf("isa: truncated instruction: %d bytes", len(b))
	}
	in := Instr{
		Op:  Op(b[0]),
		Rd:  Reg(b[1]),
		Rs1: Reg(b[2]),
		Rs2: Reg(b[3]),
		Imm: binary.LittleEndian.Uint32(b[4:]),
	}
	if in.Op >= numOps {
		return Instr{}, fmt.Errorf("isa: invalid opcode %#x", b[0])
	}
	return in, nil
}

var opNames = [numOps]string{
	NOP: "nop", MOVI: "movi", MOV: "mov",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", SAR: "sar", MUL: "mul",
	LD8: "ld8", LD16: "ld16", LD32: "ld32",
	ST8: "st8", ST16: "st16", ST32: "st32",
	IN8: "in8", IN16: "in16", IN32: "in32",
	OUT8: "out8", OUT16: "out16", OUT32: "out32",
	PUSH: "push", POP: "pop",
	JMP: "jmp", JR: "jr", BR: "br", BRI: "bri", CALL: "call", CALLR: "callr",
	RET: "ret", IRET: "iret", HLT: "hlt",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the instruction ends a translation
// block: any instruction that may alter control flow.
func (o Op) IsTerminator() bool {
	switch o {
	case JMP, JR, BR, BRI, CALL, CALLR, RET, IRET, HLT:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a function call.
func (o Op) IsCall() bool { return o == CALL || o == CALLR }

// IsPortIO reports whether the instruction performs port I/O.
func (o Op) IsPortIO() bool {
	switch o {
	case IN8, IN16, IN32, OUT8, OUT16, OUT32:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads memory (not ports).
func (o Op) IsLoad() bool {
	switch o {
	case LD8, LD16, LD32, POP:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes memory (not ports).
func (o Op) IsStore() bool {
	switch o {
	case ST8, ST16, ST32, PUSH:
		return true
	}
	return false
}

// AccessSize returns the memory or port access width in bytes for
// load/store/in/out instructions, and 0 for everything else.
func (o Op) AccessSize() int {
	switch o {
	case LD8, ST8, IN8, OUT8:
		return 1
	case LD16, ST16, IN16, OUT16:
		return 2
	case LD32, ST32, IN32, OUT32, PUSH, POP:
		return 4
	}
	return 0
}

// Disassemble renders the instruction in assembler syntax. addr is the
// instruction's own address, used only to annotate relative targets.
func (i Instr) Disassemble() string {
	src2 := func() string {
		if i.HasImmOperand() {
			return fmt.Sprintf("#%#x", i.Imm)
		}
		return i.Rs2.String()
	}
	switch i.Op {
	case NOP, RET, IRET, HLT:
		if i.Op == RET && i.Imm != 0 {
			return fmt.Sprintf("ret %d", i.Imm)
		}
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("movi %s, #%#x", i.Rd, i.Imm)
	case MOV:
		return fmt.Sprintf("mov %s, %s", i.Rd, i.Rs1)
	case ADD, SUB, AND, OR, XOR, SHL, SHR, SAR, MUL:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, src2())
	case LD8, LD16, LD32:
		return fmt.Sprintf("%s %s, [%s+%#x]", i.Op, i.Rd, i.Rs1, i.Imm)
	case ST8, ST16, ST32:
		return fmt.Sprintf("%s [%s+%#x], %s", i.Op, i.Rs1, i.Imm, i.Rs2)
	case IN8, IN16, IN32:
		return fmt.Sprintf("%s %s, (%s+%#x)", i.Op, i.Rd, i.Rs1, i.Imm)
	case OUT8, OUT16, OUT32:
		return fmt.Sprintf("%s (%s+%#x), %s", i.Op, i.Rs1, i.Imm, i.Rs2)
	case PUSH:
		return fmt.Sprintf("push %s", i.Rs1)
	case POP:
		return fmt.Sprintf("pop %s", i.Rd)
	case JMP, CALL:
		return fmt.Sprintf("%s %#x", i.Op, i.Imm)
	case JR, CALLR:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case BR:
		return fmt.Sprintf("b%s %s, %s, %#x", i.Cond(), i.Rs1, i.Rs2, i.Imm)
	case BRI:
		return fmt.Sprintf("b%s %s, #%#x, %#x", i.Cond(), i.Rs1, uint8(i.Rs2), i.Imm)
	}
	return fmt.Sprintf("%s ???", i.Op)
}
