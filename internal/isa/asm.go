package isa

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a flat binary image plus
// symbol metadata. The metadata plays the role of the ground truth a
// vendor keeps private — RevNIC is handed only Base and Code, never
// Symbols or Funcs; tests use them to validate reconstruction.
type Program struct {
	// Base is the load address of the first code byte.
	Base uint32
	// Code is the binary image.
	Code []byte
	// Symbols maps every label to its absolute address.
	Symbols map[string]uint32
	// Funcs lists addresses declared as function entry points with
	// the .func directive, in declaration order.
	Funcs []FuncSym
}

// FuncSym records a ground-truth function entry point.
type FuncSym struct {
	Name string
	Addr uint32
}

// Size returns the image size in bytes.
func (p *Program) Size() int { return len(p.Code) }

// Sym returns the address of a label, panicking if undefined; it is a
// test/driver-construction convenience.
func (p *Program) Sym(name string) uint32 {
	a, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("isa: undefined symbol %q", name))
	}
	return a
}

// asmError decorates assembly errors with source position.
type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.line, e.msg) }

type assembler struct {
	base    uint32
	pc      uint32
	code    []byte
	symbols map[string]uint32
	equs    map[string]uint32
	funcs   []FuncSym
	pass    int
	line    int
}

// Assemble translates assembly source into a Program. The syntax is
// line oriented: optional "label:" prefixes, one instruction or
// directive per line, ';' comments. See the package tests for a
// complete grammar-by-example.
func Assemble(src string) (*Program, error) {
	a := &assembler{symbols: map[string]uint32{}, equs: map[string]uint32{}}
	for pass := 1; pass <= 2; pass++ {
		a.pass = pass
		a.pc = a.base
		a.code = a.code[:0]
		a.funcs = a.funcs[:0]
		for i, raw := range strings.Split(src, "\n") {
			a.line = i + 1
			if err := a.doLine(raw); err != nil {
				return nil, err
			}
		}
	}
	return &Program{Base: a.base, Code: a.code, Symbols: a.symbols, Funcs: a.funcs}, nil
}

// MustAssemble is Assemble, panicking on error. Driver sources in this
// repository are compile-time constants, so assembly failure is a bug.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(format string, args ...any) error {
	return &asmError{line: a.line, msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) doLine(raw string) error {
	line := raw
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	// Labels (possibly several on one line).
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 || strings.ContainsAny(line[:i], " \t\",#[(") {
			break
		}
		name := line[:i]
		if a.pass == 1 {
			if _, dup := a.symbols[name]; dup {
				return a.errf("duplicate label %q", name)
			}
			a.symbols[name] = a.pc
		}
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		return nil
	}
	if line[0] == '.' {
		return a.directive(line)
	}
	return a.instruction(line)
}

func (a *assembler) emit(b ...byte) {
	a.code = append(a.code, b...)
	a.pc += uint32(len(b))
}

func (a *assembler) directive(line string) error {
	mnem, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch mnem {
	case ".org":
		v, err := a.expr(rest)
		if err != nil {
			return err
		}
		if len(a.code) != 0 {
			return a.errf(".org must precede code")
		}
		a.base, a.pc = v, v
		return nil
	case ".equ":
		name, val, ok := strings.Cut(rest, ",")
		if !ok {
			return a.errf(".equ needs name, value")
		}
		v, err := a.expr(strings.TrimSpace(val))
		if err != nil {
			return err
		}
		a.equs[strings.TrimSpace(name)] = v
		return nil
	case ".func":
		name := strings.TrimSpace(rest)
		if name == "" {
			return a.errf(".func needs a name")
		}
		if a.pass == 1 {
			if _, dup := a.symbols[name]; dup {
				return a.errf("duplicate label %q", name)
			}
			a.symbols[name] = a.pc
		}
		a.funcs = append(a.funcs, FuncSym{Name: name, Addr: a.pc})
		return nil
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := a.expr(f)
			if err != nil {
				return err
			}
			a.emit(byte(v))
		}
		return nil
	case ".short":
		for _, f := range splitOperands(rest) {
			v, err := a.expr(f)
			if err != nil {
				return err
			}
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(v))
			a.emit(b[:]...)
		}
		return nil
	case ".word":
		for _, f := range splitOperands(rest) {
			v, err := a.expr(f)
			if err != nil {
				return err
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], v)
			a.emit(b[:]...)
		}
		return nil
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("bad string %s: %v", rest, err)
		}
		a.emit([]byte(s)...)
		if mnem == ".asciz" {
			a.emit(0)
		}
		return nil
	case ".space":
		v, err := a.expr(rest)
		if err != nil {
			return err
		}
		a.emit(make([]byte, v)...)
		return nil
	case ".align":
		v, err := a.expr(rest)
		if err != nil {
			return err
		}
		if v == 0 || v&(v-1) != 0 {
			return a.errf(".align must be a power of two")
		}
		for a.pc%v != 0 {
			a.emit(0)
		}
		return nil
	}
	return a.errf("unknown directive %q", mnem)
}

// expr evaluates "sym", "number", or "a+b"/"a-b" combinations thereof.
func (a *assembler) expr(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf("empty expression")
	}
	// Scan for top-level + or - (no parenthesised expressions needed).
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			l, err := a.expr(s[:i])
			if err != nil {
				return 0, err
			}
			r, err := a.expr(s[i+1:])
			if err != nil {
				return 0, err
			}
			if s[i] == '+' {
				return l + r, nil
			}
			return l - r, nil
		}
	}
	if v, err := strconv.ParseUint(s, 0, 33); err == nil {
		return uint32(v), nil
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		r, err := strconv.Unquote(s)
		if err == nil && len(r) == 1 {
			return uint32(r[0]), nil
		}
	}
	if v, ok := a.equs[s]; ok {
		return v, nil
	}
	if v, ok := a.symbols[s]; ok {
		return v, nil
	}
	if a.pass == 1 {
		return 0, nil // forward reference; resolved in pass 2
	}
	return 0, a.errf("undefined symbol %q", s)
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if f := strings.TrimSpace(s[start:]); f != "" {
		out = append(out, f)
	}
	return out
}

func parseReg(s string) (Reg, bool) {
	switch s {
	case "sp":
		return SP, true
	case "r0", "r1", "r2", "r3", "r4", "r5", "r6":
		return Reg(s[1] - '0'), true
	}
	return 0, false
}

// parseMem parses "[reg]", "[reg+off]" or "[reg-off]" (or the same
// with parentheses for ports).
func (a *assembler) parseMem(s string, open, close byte) (Reg, uint32, error) {
	if len(s) < 2 || s[0] != open || s[len(s)-1] != close {
		return 0, 0, a.errf("bad address operand %q", s)
	}
	inner := s[1 : len(s)-1]
	regStr, offStr := inner, ""
	neg := false
	for i := 0; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			regStr, offStr = inner[:i], inner[i+1:]
			neg = inner[i] == '-'
			break
		}
	}
	r, ok := parseReg(strings.TrimSpace(regStr))
	if !ok {
		return 0, 0, a.errf("bad base register in %q", s)
	}
	var off uint32
	if offStr != "" {
		v, err := a.expr(offStr)
		if err != nil {
			return 0, 0, err
		}
		off = v
		if neg {
			off = -v
		}
	}
	return r, off, nil
}

// parseSrc2 parses the second ALU operand: a register, "#imm", or a
// bare symbol/number treated as an immediate.
func (a *assembler) parseSrc2(s string) (Reg, uint32, error) {
	if r, ok := parseReg(s); ok {
		return r, 0, nil
	}
	if strings.HasPrefix(s, "#") {
		s = s[1:]
	}
	v, err := a.expr(s)
	if err != nil {
		return 0, 0, err
	}
	return RegNone, v, nil
}

var branchConds = map[string]Cond{
	"beq": EQ, "bne": NE, "blt": LT, "bge": GE, "bltu": LTU, "bgeu": GEU,
}

func (a *assembler) instruction(line string) error {
	mnem, rest, _ := strings.Cut(line, " ")
	ops := splitOperands(strings.TrimSpace(rest))
	need := func(n int) error {
		if len(ops) != n {
			return a.errf("%s needs %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	reg := func(i int) (Reg, error) {
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, a.errf("%s: operand %d: bad register %q", mnem, i+1, ops[i])
		}
		return r, nil
	}
	emitI := func(in Instr) { a.code = in.Encode(a.code); a.pc += InstrSize }

	if c, ok := branchConds[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, immOperand, err := a.parseSrc2(ops[1])
		if err != nil {
			return err
		}
		target, err := a.expr(ops[2])
		if err != nil {
			return err
		}
		// The immediate field holds the branch target, so an immediate
		// comparand rides in the one-byte rs2 field of the BRI form
		// and is limited to 0..255. Larger comparands must be staged
		// in a register, as on many real RISC ISAs.
		if rs2 == RegNone {
			if immOperand > 0xFF {
				return a.errf("%s: immediate comparand %#x exceeds 8 bits; move it to a register first", mnem, immOperand)
			}
			emitI(Instr{Op: BRI, Rd: Reg(c), Rs1: rs1, Rs2: Reg(immOperand), Imm: target})
			return nil
		}
		emitI(Instr{Op: BR, Rd: Reg(c), Rs1: rs1, Rs2: rs2, Imm: target})
		return nil
	}

	switch mnem {
	case "nop":
		emitI(Instr{Op: NOP})
	case "hlt":
		emitI(Instr{Op: HLT})
	case "iret":
		emitI(Instr{Op: IRET})
	case "ret":
		var n uint32
		if len(ops) == 1 {
			v, err := a.expr(ops[0])
			if err != nil {
				return err
			}
			n = v
		} else if len(ops) > 1 {
			return a.errf("ret takes at most one operand")
		}
		emitI(Instr{Op: RET, Imm: n})
	case "movi":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		_, imm, err := a.parseSrc2(ops[1])
		if err != nil {
			return err
		}
		emitI(Instr{Op: MOVI, Rd: rd, Rs2: RegNone, Imm: imm})
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		emitI(Instr{Op: MOV, Rd: rd, Rs1: rs1})
	case "add", "sub", "and", "or", "xor", "shl", "shr", "sar", "mul":
		if err := need(3); err != nil {
			return err
		}
		op := map[string]Op{"add": ADD, "sub": SUB, "and": AND, "or": OR,
			"xor": XOR, "shl": SHL, "shr": SHR, "sar": SAR, "mul": MUL}[mnem]
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		rs2, imm, err := a.parseSrc2(ops[2])
		if err != nil {
			return err
		}
		emitI(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
	case "ld8", "ld16", "ld32":
		if err := need(2); err != nil {
			return err
		}
		op := map[string]Op{"ld8": LD8, "ld16": LD16, "ld32": LD32}[mnem]
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, off, err := a.parseMem(ops[1], '[', ']')
		if err != nil {
			return err
		}
		emitI(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: RegNone, Imm: off})
	case "st8", "st16", "st32":
		if err := need(2); err != nil {
			return err
		}
		op := map[string]Op{"st8": ST8, "st16": ST16, "st32": ST32}[mnem]
		rs1, off, err := a.parseMem(ops[0], '[', ']')
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		emitI(Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	case "in8", "in16", "in32":
		if err := need(2); err != nil {
			return err
		}
		op := map[string]Op{"in8": IN8, "in16": IN16, "in32": IN32}[mnem]
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, off, err := a.parseMem(ops[1], '(', ')')
		if err != nil {
			return err
		}
		emitI(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: RegNone, Imm: off})
	case "out8", "out16", "out32":
		if err := need(2); err != nil {
			return err
		}
		op := map[string]Op{"out8": OUT8, "out16": OUT16, "out32": OUT32}[mnem]
		rs1, off, err := a.parseMem(ops[0], '(', ')')
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		emitI(Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	case "push":
		if err := need(1); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		emitI(Instr{Op: PUSH, Rs1: rs1})
	case "pop":
		if err := need(1); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		emitI(Instr{Op: POP, Rd: rd})
	case "jmp", "call":
		if err := need(1); err != nil {
			return err
		}
		op := JMP
		if mnem == "call" {
			op = CALL
		}
		v, err := a.expr(ops[0])
		if err != nil {
			return err
		}
		emitI(Instr{Op: op, Imm: v})
	case "jr", "callr":
		if err := need(1); err != nil {
			return err
		}
		op := JR
		if mnem == "callr" {
			op = CALLR
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		emitI(Instr{Op: op, Rs1: rs1})
	default:
		return a.errf("unknown mnemonic %q", mnem)
	}
	return nil
}
