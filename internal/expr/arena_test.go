package expr

import (
	"fmt"
	"testing"
)

// buildIn constructs a representative expression DAG through one
// arena's constructors.
func buildIn(ar *Arena, i int) *Expr {
	x := ar.S(fmt.Sprintf("x%d", i), 32)
	y := ar.S("y", 32)
	sum := ar.Add(ar.Mul(x, ar.C(0x1234, 32)), y)
	cmp := ar.Ult(sum, ar.C(0x8000_0000, 32))
	return ar.Ite(cmp, ar.Xor(sum, ar.C(0xDEAD_BEEF, 32)), ar.Not(sum))
}

func TestArenaCanonicalWithin(t *testing.T) {
	ar := NewArena()
	a := buildIn(ar, 1)
	b := buildIn(ar, 1)
	if a != b {
		t.Fatal("same structure in one arena must intern to one node")
	}
	if a.ID() == 0 {
		t.Fatal("arena nodes must carry nonzero IDs")
	}
}

func TestArenaIsolation(t *testing.T) {
	ar1, ar2 := NewArena(), NewArena()
	a := buildIn(ar1, 1)
	b := buildIn(ar2, 1)
	if a == b {
		t.Fatal("two arenas must not share interned nodes")
	}
	if !Equal(a, b) {
		t.Fatal("cross-arena structural equality must still hold")
	}
	if a.ID() == b.ID() {
		t.Fatal("IDs must be process-unique across arenas")
	}
	// Semantics are arena-independent.
	env := map[string]uint32{"x1": 7, "y": 1 << 20}
	if Eval(a, env) != Eval(b, env) {
		t.Fatal("evaluation must not depend on the arena")
	}
}

func TestArenaSharedSmallConstants(t *testing.T) {
	ar1, ar2 := NewArena(), NewArena()
	// The small-constant pool is deliberately shared: permanent,
	// immutable, canonical process-wide.
	if ar1.C(42, 8) != ar2.C(42, 8) || ar1.C(42, 8) != C(42, 8) {
		t.Fatal("small constants must come from the shared pool")
	}
	// Large constants intern per arena.
	if ar1.C(1<<20, 32) == ar2.C(1<<20, 32) {
		t.Fatal("large constants must intern per arena")
	}
}

func TestArenaNoDefaultGrowth(t *testing.T) {
	// Warm the default arena so unrelated lazy initialization cannot
	// masquerade as growth.
	buildIn(Default(), 0)
	before := InternedNodes()
	ar := NewArena()
	for i := 0; i < 64; i++ {
		buildIn(ar, i)
	}
	if ar.InternedNodes() == 0 {
		t.Fatal("private arena should have interned nodes")
	}
	if after := InternedNodes(); after != before {
		t.Fatalf("building in a private arena grew the default arena: %d -> %d", before, after)
	}
}

func TestArenaConstructorsMatchDefault(t *testing.T) {
	// The package-level constructors are exactly the default arena's.
	if Add(S("p", 16), C(3, 16)) != Default().Add(Default().S("p", 16), Default().C(3, 16)) {
		t.Fatal("package-level constructors must build in the default arena")
	}
}
