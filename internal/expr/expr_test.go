package expr

import (
	"math/rand"
	"strconv"
	"testing"
)

// genPair builds a random expression twice: once as raw nodes with no
// simplification (ground truth) and once through the public
// constructors (which canonicalize). Both must evaluate identically
// under every assignment.
func genPair(r *rand.Rand, depth int, w uint8, vars []string) (raw, built *Expr) {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			v := uint32(r.Int63()) & Mask(w)
			// Bias toward identity-triggering constants.
			switch r.Intn(4) {
			case 0:
				v = 0
			case 1:
				v = 1
			case 2:
				v = Mask(w)
			}
			return C(v, w), C(v, w)
		}
		name := vars[r.Intn(len(vars))]
		return S(name, w), S(name, w)
	}
	kinds := []Kind{KAdd, KSub, KMul, KAnd, KOr, KXor, KShl, KLshr, KAshr}
	k := kinds[r.Intn(len(kinds))]
	ra, ba := genPair(r, depth-1, w, vars)
	rb, bb := genPair(r, depth-1, w, vars)
	raw = &Expr{Kind: k, Width: w, A: ra, B: rb}
	switch k {
	case KAdd:
		built = Add(ba, bb)
	case KSub:
		built = Sub(ba, bb)
	case KMul:
		built = Mul(ba, bb)
	case KAnd:
		built = And(ba, bb)
	case KOr:
		built = Or(ba, bb)
	case KXor:
		built = Xor(ba, bb)
	case KShl:
		built = Shl(ba, bb)
	case KLshr:
		built = Lshr(ba, bb)
	case KAshr:
		built = Ashr(ba, bb)
	}
	return raw, built
}

func TestSimplifierPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vars := []string{"a", "b", "c"}
	for _, w := range []uint8{8, 16, 32} {
		for trial := 0; trial < 400; trial++ {
			raw, built := genPair(r, 4, w, vars)
			for e := 0; e < 8; e++ {
				env := map[string]uint32{}
				for _, v := range vars {
					env[v] = uint32(r.Int63())
				}
				got, want := Eval(built, env), Eval(raw, env)
				if got != want {
					t.Fatalf("width %d: %s simplified to %s: eval %#x want %#x (env %v)",
						w, raw, built, got, want, env)
				}
			}
		}
	}
}

func TestComparisonSemantics(t *testing.T) {
	a, b := S("a", 8), S("b", 8)
	cases := []struct {
		e    *Expr
		f    func(x, y uint32) bool
		name string
	}{
		{Eq(a, b), func(x, y uint32) bool { return x == y }, "eq"},
		{Ult(a, b), func(x, y uint32) bool { return x < y }, "ult"},
		{Slt(a, b), func(x, y uint32) bool { return int8(x) < int8(y) }, "slt"},
	}
	for _, tc := range cases {
		for x := uint32(0); x < 256; x += 17 {
			for y := uint32(0); y < 256; y += 13 {
				env := map[string]uint32{"a": x, "b": y}
				got := Eval(tc.e, env) != 0
				if got != tc.f(x, y) {
					t.Fatalf("%s(%d,%d) = %v, want %v", tc.name, x, y, got, tc.f(x, y))
				}
			}
		}
	}
}

func TestIdentities(t *testing.T) {
	x := S("x", 32)
	if got := Add(x, C(0, 32)); got != x {
		t.Errorf("x+0 != x: %s", got)
	}
	if got := And(x, C(0xFFFFFFFF, 32)); got != x {
		t.Errorf("x&~0 != x: %s", got)
	}
	if !Xor(x, x).IsFalse() {
		t.Error("x^x != 0")
	}
	if !Sub(x, x).IsFalse() {
		t.Error("x-x != 0")
	}
	if got := Mul(x, C(1, 32)); got != x {
		t.Errorf("x*1 != x: %s", got)
	}
	if !Mul(x, C(0, 32)).IsFalse() {
		t.Error("x*0 != 0")
	}
	if !Eq(x, x).IsTrue() {
		t.Error("x==x not true")
	}
	if !Ult(x, C(0, 32)).IsFalse() {
		t.Error("x <u 0 not false")
	}
	// Re-association: (x+3)+5 folds to x+8.
	e := Add(Add(x, C(3, 32)), C(5, 32))
	if e.Kind != KAdd || e.A != x {
		t.Fatalf("reassociation failed: %s", e)
	}
	if v, _ := e.B.IsConst(); v != 8 {
		t.Errorf("reassociation constant = %s", e.B)
	}
	// Sub by constant becomes add of negation and folds.
	e = Sub(Add(x, C(10, 32)), C(4, 32))
	if v, ok := e.B.IsConst(); !ok || v != 6 {
		t.Errorf("x+10-4 = %s, want x+6", e)
	}
	if got := Not(Not(x)); got != x {
		t.Errorf("~~x != x: %s", got)
	}
}

func TestWidthConversions(t *testing.T) {
	x := S("x", 8)
	z := Zext(x, 32)
	if z.Width != 32 {
		t.Fatal("zext width")
	}
	if got := Trunc(z, 8); got != x {
		t.Errorf("trunc(zext(x)) != x: %s", got)
	}
	if Zext(Zext(x, 16), 32).A != x {
		t.Error("nested zext not collapsed")
	}
	env := map[string]uint32{"x": 0xAB}
	if Eval(z, env) != 0xAB {
		t.Error("zext eval")
	}
	c := Concat(C(0x12, 8), C(0x34, 8))
	if v, ok := c.IsConst(); !ok || v != 0x1234 {
		t.Errorf("concat consts = %s", c)
	}
	if Eval(Concat(S("h", 8), S("l", 8)), map[string]uint32{"h": 0xAA, "l": 0x55}) != 0xAA55 {
		t.Error("concat eval")
	}
}

func TestByteReassembly(t *testing.T) {
	x := S("x", 32)
	var bytes [4]*Expr
	for i := range bytes {
		bytes[i] = ExtractByte(x, i)
		if bytes[i].Width != 8 {
			t.Fatalf("byte %d width %d", i, bytes[i].Width)
		}
	}
	if got := FromBytes32(bytes[0], bytes[1], bytes[2], bytes[3]); got != x {
		t.Errorf("byte reassembly of x = %s, want x", got)
	}
	// Shuffled bytes must NOT reassemble to x.
	got := FromBytes32(bytes[1], bytes[0], bytes[2], bytes[3])
	if got == x {
		t.Error("shuffled bytes wrongly reassembled")
	}
	env := map[string]uint32{"x": 0xDEADBEEF}
	if Eval(got, env) != 0xDEADEFBE {
		t.Errorf("shuffled eval = %#x", Eval(got, env))
	}
	// Constant extraction.
	if v, _ := ExtractByte(C(0x11223344, 32), 2).IsConst(); v != 0x22 {
		t.Error("const byte extract")
	}
}

func TestIte(t *testing.T) {
	c := S("c", 1)
	a, b := C(10, 32), C(20, 32)
	e := Ite(c, a, b)
	if Eval(e, map[string]uint32{"c": 1}) != 10 || Eval(e, map[string]uint32{"c": 0}) != 20 {
		t.Error("ite eval")
	}
	if Ite(Bool(true), a, b) != a || Ite(Bool(false), a, b) != b {
		t.Error("constant ite not folded")
	}
	if Ite(c, a, a) != a {
		t.Error("same-arm ite not folded")
	}
}

func TestVarsAndString(t *testing.T) {
	e := Add(Mul(S("b", 32), S("a", 32)), Zext(S("c", 8), 32))
	names := VarNames(e)
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("VarNames = %v", names)
	}
	if e.String() == "" || e.Size() < 5 {
		t.Error("String/Size degenerate")
	}
}

func TestEvalMasksToWidth(t *testing.T) {
	// A width-8 symbol with an oversized env value must be masked.
	if Eval(S("x", 8), map[string]uint32{"x": 0x1FF}) != 0xFF {
		t.Error("sym eval not masked")
	}
	if Eval(Add(S("x", 8), C(1, 8)), map[string]uint32{"x": 0xFF}) != 0 {
		t.Error("width-8 add did not wrap")
	}
}

func TestVarSetUnion(t *testing.T) {
	x := S("x", 8)
	y := S("y", 16)
	a := Add(x, C(1, 8))
	b := Eq(Zext(x, 16), y)
	set := VarSet(a, b, nil)
	if len(set) != 2 || set["x"] != 8 || set["y"] != 16 {
		t.Fatalf("VarSet = %v, want x:8 y:16", set)
	}
	if len(VarSet()) != 0 {
		t.Fatal("empty VarSet must be empty")
	}
}

func TestVarSetSignatureOrderInsensitive(t *testing.T) {
	a := VarSetSignature([]string{"hw_0", "hw_1", "dma_2"})
	b := VarSetSignature([]string{"dma_2", "hw_0", "hw_1"})
	if a != b {
		t.Fatalf("signature order-sensitive: %#x vs %#x", a, b)
	}
	c := VarSetSignature([]string{"hw_0", "hw_1"})
	if a == c {
		t.Fatalf("distinct sets collide: %#x", a)
	}
	if VarSetSignature(nil) == a {
		t.Fatal("empty set collides with non-empty")
	}
}

func TestNameHashDistribution(t *testing.T) {
	seen := map[uint64]string{}
	for i := 0; i < 2000; i++ {
		n := "hw_" + strconv.Itoa(i)
		h := NameHash(n)
		if prev, dup := seen[h]; dup {
			t.Fatalf("NameHash collision: %q and %q", prev, n)
		}
		seen[h] = n
	}
}
