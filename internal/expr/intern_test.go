package expr

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// genExpr builds one random expression through the public
// constructors, drawing from every kind the engine produces.
func genExpr(r *rand.Rand, depth int, w uint8, vars []string) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return C(uint32(r.Int63())&Mask(w), w)
		}
		return S(vars[r.Intn(len(vars))], w)
	}
	switch r.Intn(14) {
	case 0:
		return Add(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 1:
		return Sub(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 2:
		return Mul(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 3:
		return And(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 4:
		return Or(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 5:
		return Xor(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 6:
		return Shl(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 7:
		return Lshr(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 8:
		return Ashr(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 9:
		return Not(genExpr(r, depth-1, w, vars))
	case 10:
		cond := Eq(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
		return Ite(cond, genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	case 11:
		if w > 8 {
			return Zext(genExpr(r, depth-1, 8, vars), w)
		}
		return Trunc(genExpr(r, depth-1, 32, vars), w)
	case 12:
		if w == 16 {
			return Concat(genExpr(r, depth-1, 8, vars), genExpr(r, depth-1, 8, vars))
		}
		return Xor(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	default:
		c := Ult(genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
		return Ite(c, genExpr(r, depth-1, w, vars), genExpr(r, depth-1, w, vars))
	}
}

// TestInternCanonical is the hash-consing property test: building the
// same random expression twice (identical construction sequences)
// must yield pointer-identical nodes, and their IDs must match.
func TestInternCanonical(t *testing.T) {
	vars := []string{"p", "q", "r"}
	for _, w := range []uint8{8, 16, 32} {
		for trial := 0; trial < 300; trial++ {
			seed := int64(w)*1000 + int64(trial)
			a := genExpr(rand.New(rand.NewSource(seed)), 4, w, vars)
			b := genExpr(rand.New(rand.NewSource(seed)), 4, w, vars)
			if a != b {
				t.Fatalf("width %d trial %d: structurally equal builds not pointer-identical:\n%s\n%s", w, trial, a, b)
			}
			if a.ID() == 0 || a.ID() != b.ID() {
				t.Fatalf("IDs diverge: %d vs %d", a.ID(), b.ID())
			}
			if !Equal(a, b) {
				t.Fatal("Equal disagrees with interning")
			}
		}
	}
}

// TestInternPreservesSemantics re-runs the construction with interning
// disabled (the ablation configuration) and checks that evaluation
// under random environments is identical to the interned build: the
// intern table may never change what an expression means.
func TestInternPreservesSemantics(t *testing.T) {
	vars := []string{"p", "q", "r"}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		seed := int64(trial) + 5000
		interned := genExpr(rand.New(rand.NewSource(seed)), 4, 32, vars)
		prev := SetInterning(false)
		plain := genExpr(rand.New(rand.NewSource(seed)), 4, 32, vars)
		SetInterning(prev)
		for i := 0; i < 8; i++ {
			env := map[string]uint32{}
			for _, v := range vars {
				env[v] = uint32(r.Int63())
			}
			if got, want := Eval(interned, env), Eval(plain, env); got != want {
				t.Fatalf("trial %d: interned %#x plain %#x under %v\n%s", trial, got, want, env, interned)
			}
		}
		if !Equal(interned, plain) {
			t.Fatalf("trial %d: structural equality lost across interning modes", trial)
		}
	}
}

// TestCommutativeCanonicalization checks the operand-ordering rule:
// both orders of a commutative application intern to one node.
func TestCommutativeCanonicalization(t *testing.T) {
	x, y := S("x", 32), S("y", 32)
	for name, pair := range map[string][2]*Expr{
		"add": {Add(x, y), Add(y, x)},
		"mul": {Mul(x, y), Mul(y, x)},
		"and": {And(x, y), And(y, x)},
		"or":  {Or(x, y), Or(y, x)},
		"xor": {Xor(x, y), Xor(y, x)},
		"eq":  {Eq(x, y), Eq(y, x)},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s: operand orders produced distinct nodes", name)
		}
	}
	// Non-commutative operators must not be reordered.
	if Equal(Sub(x, y), Sub(y, x)) {
		t.Error("sub wrongly canonicalized as commutative")
	}
	if Equal(Ult(x, y), Ult(y, x)) {
		t.Error("ult wrongly canonicalized as commutative")
	}
}

// TestInternConcurrent hammers the shard table from many goroutines
// building overlapping expression sets; every goroutine must observe
// the same canonical nodes. Run under -race this is the lock-striping
// regression test.
func TestInternConcurrent(t *testing.T) {
	const goroutines = 8
	results := make([][]*Expr, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]*Expr, 0, 200)
			for i := 0; i < 200; i++ {
				x := S(fmt.Sprintf("cc%d", i%17), 16)
				e := Add(Mul(x, C(uint32(i%13)+2, 16)), C(uint32(i%7), 16))
				out = append(out, Eq(e, C(uint32(i%11), 16)))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d produced non-canonical node at %d", g, i)
			}
		}
	}
}

// TestIDStability pins the ID contract: nonzero, stable across
// lookups, and distinct for structurally distinct nodes.
func TestIDStability(t *testing.T) {
	a := Add(S("ida", 32), C(1, 32))
	if a.ID() == 0 {
		t.Fatal("constructed node has zero ID")
	}
	if b := Add(S("ida", 32), C(1, 32)); b.ID() != a.ID() {
		t.Fatal("re-built node changed ID")
	}
	if c := Add(S("ida", 32), C(2, 32)); c.ID() == a.ID() {
		t.Fatal("distinct structures share an ID")
	}
	if n := InternedNodes(); n == 0 {
		t.Error("intern table reports empty")
	}
}

// --- interning ablation benchmarks -------------------------------------

// buildWorkload constructs the kind of expression chains symbolic
// execution of a polling loop produces: repeated arithmetic over a few
// hardware symbols, heavily re-built from the same sub-structures.
func buildWorkload(n int) *Expr {
	x := S("bw_x", 32)
	y := S("bw_y", 32)
	acc := C(0, 32)
	for i := 0; i < n; i++ {
		step := And(Add(x, C(uint32(i%8), 32)), Xor(y, C(0xFF, 32)))
		acc = Add(acc, Mul(step, step))
	}
	return acc
}

// BenchmarkInternOn measures canonical construction (the production
// configuration): repeated structures come back as table hits.
func BenchmarkInternOn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if buildWorkload(64) == nil {
			b.Fatal("nil")
		}
	}
}

// BenchmarkInternOff measures the same construction with the table
// bypassed — every node allocated fresh, as before hash-consing.
func BenchmarkInternOff(b *testing.B) {
	prev := SetInterning(false)
	defer SetInterning(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if buildWorkload(64) == nil {
			b.Fatal("nil")
		}
	}
}

// BenchmarkStructuralEquality measures the O(1) equality claim: two
// canonical deep DAGs compare by pointer.
func BenchmarkStructuralEquality(b *testing.B) {
	x := buildWorkload(256)
	y := buildWorkload(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equal(x, y) {
			b.Fatal("workloads differ")
		}
	}
}
