package expr

import (
	"sync"
	"sync/atomic"
)

// This file implements hash-consing: every constructor funnels its
// result through an Arena's intern table, which returns one canonical
// node per expression structure. Canonical nodes carry a stable
// nonzero ID, so structural equality of interned expressions is
// pointer (or ID) equality, and downstream memo tables (evaluation,
// variable collection, bit-blasting, solver caches) key on the ID
// instead of re-walking trees.
//
// Interning used to go through one process-global table, which never
// evicts: fine for a CLI run, fatal for a long-lived service whose
// jobs each mint millions of nodes. An Arena is an isolated intern
// table — a job builds all its expressions in its own arena and the
// whole table becomes garbage when the job's last reference dies, so
// reclamation happens wholesale by construction. The process-global
// default arena still backs the package-level constructors, keeping
// every existing caller (the CLIs, the tests) unchanged.
//
// Each arena is sharded: a shard is an independently mutex-guarded
// map, so concurrent exploration workers interning expressions contend
// only when they hash into the same shard. Nodes are immutable and
// fully initialized (including the structural hash) before they are
// published through a shard map, which is why no per-node atomics are
// needed.

// internShards is the lock-striping width of an arena's table. Sixty
// four shards keeps cross-worker contention negligible at the worker
// counts the engine uses (≤ GOMAXPROCS).
const internShards = 64

// internKey identifies an expression structure. Children are compared
// by pointer: constructors intern bottom-up, so structurally equal
// children are already pointer-identical by the time a parent is
// interned — provided parent and children come from one arena (plus
// the shared small-constant pool, which is canonical everywhere).
type internKey struct {
	kind    Kind
	width   uint8
	val     uint32
	name    string
	a, b, c *Expr
}

type internShard struct {
	mu sync.Mutex
	m  map[internKey]*Expr
}

// Arena is an isolated hash-consing table. Expressions built through
// one arena's constructor methods are canonical within that arena:
// structurally equal constructions return the same pointer (and ID).
// Expressions from different arenas never alias (except the shared
// small-constant pool), so dropping every reference to an arena
// reclaims all its nodes at once.
//
// An Arena is safe for concurrent use. The zero value is not usable;
// call NewArena, or use the package-level constructors, which build in
// the process-global default arena.
type Arena struct {
	shards [internShards]internShard
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	a := &Arena{}
	for i := range a.shards {
		a.shards[i].m = map[internKey]*Expr{}
	}
	return a
}

var (
	// defaultArena backs the package-level constructors; it is the
	// old process-global intern table.
	defaultArena = NewArena()
	// nextID is shared by every arena so IDs are process-unique:
	// ID-keyed memo tables stay correct even where arena nodes mix
	// with the shared small constants.
	nextID atomic.Uint64
	// internDisabled gates all interning for the ablation benchmarks;
	// the zero value (interning on) is the production configuration.
	internDisabled atomic.Bool
)

// Default returns the process-global arena the package-level
// constructors build in.
func Default() *Arena { return defaultArena }

// smallConsts short-circuits the tables for the constants the engine
// mints constantly (immediates, masks, byte values): a lock-free
// lookup instead of a shard round-trip. The pool is shared by every
// arena — the nodes are immutable, permanently live, and canonical
// process-wide, so cross-arena sharing of them is safe.
var smallConsts [33][256]*Expr

func init() {
	for w := 1; w <= 32; w++ {
		for v := 0; v < 256; v++ {
			if uint32(v) != uint32(v)&mask(uint8(w)) {
				continue // not representable at this width
			}
			k := internKey{kind: KConst, width: uint8(w), val: uint32(v)}
			smallConsts[w][v] = materialize(k, hashKey(k))
		}
	}
}

// intern returns the canonical node for the given structure,
// allocating (and assigning a fresh ID) only when the structure is new
// to the arena. Children must already be interned; table hits cost a
// hash and one shard lookup, no allocation.
func (ar *Arena) intern(k internKey) *Expr {
	h := hashKey(k)
	if internDisabled.Load() {
		// Ablation mode: every construction is its own identity, as
		// before hash-consing. IDs stay unique so ID-keyed memos
		// remain correct; only sharing is lost.
		return materialize(k, h)
	}
	sh := &ar.shards[h%internShards]
	sh.mu.Lock()
	if ex, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		return ex
	}
	n := materialize(k, h)
	sh.m[k] = n
	sh.mu.Unlock()
	return n
}

// materialize builds the node for a structure outside any table.
func materialize(k internKey, h uint64) *Expr {
	return &Expr{
		Kind: k.kind, Width: k.width, Val: k.val, Name: k.name,
		A: k.a, B: k.b, C: k.c,
		id: nextID.Add(1), hash: h,
	}
}

// SetInterning toggles interning (for every arena) and reports the
// previous setting. It exists for the interning ablation benchmarks
// only: flip it around a measured region and restore the previous
// value. Turning interning off never produces wrong results — nodes
// still get unique IDs — but canonical sharing (and with it O(1)
// structural equality and cross-query solver cache hits) is lost for
// nodes built while it is off.
func SetInterning(on bool) (prev bool) {
	return !internDisabled.Swap(!on)
}

// InternedNodes reports how many canonical nodes the arena holds; a
// memory metric for tests, benchmarks and the job service.
func (ar *Arena) InternedNodes() int {
	n := 0
	for i := range ar.shards {
		ar.shards[i].mu.Lock()
		n += len(ar.shards[i].m)
		ar.shards[i].mu.Unlock()
	}
	return n
}

// InternedNodes reports how many canonical nodes the default arena
// holds.
func InternedNodes() int { return defaultArena.InternedNodes() }

// hashKey is the structural FNV-style hash stored on every node at
// intern time. Children contribute their own stored hashes, so the
// computation is O(1) per node.
func hashKey(k internKey) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(k.kind) + 1)
	mix(uint64(k.width))
	mix(uint64(k.val) + 0x9E3779B97F4A7C15)
	for i := 0; i < len(k.name); i++ {
		mix(uint64(k.name[i]))
	}
	if k.a != nil {
		mix(k.a.Hash())
	}
	if k.b != nil {
		mix(k.b.Hash() ^ 0xABCDEF)
	}
	if k.c != nil {
		mix(k.c.Hash() ^ 0x123457)
	}
	if h == 0 {
		h = 1
	}
	return h
}

// computeHash hashes a node in place; used by Hash for raw
// (un-interned) nodes, which recurse through their children lazily.
func computeHash(e *Expr) uint64 {
	return hashKey(internKey{kind: e.Kind, width: e.Width, val: e.Val, name: e.Name, a: e.A, b: e.B, c: e.C})
}
