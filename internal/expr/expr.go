// Package expr implements the symbolic bitvector expressions that flow
// through RevNIC's symbolic execution engine.
//
// Expressions form an immutable, hash-consed DAG. Constructors perform
// local canonicalization (constant folding, algebraic identities,
// commutative operand ordering), which keeps path constraints small
// before they ever reach the solver — the same role KLEE's expression
// rewriter plays in the original system — and then intern the node in
// a sharded hash-consing table (an Arena, intern.go), so every
// constructor returns the one canonical node per structure within its
// arena. The package-level constructors build in a process-global
// default arena; long-lived services give each job its own Arena so a
// finished job's expressions are reclaimed wholesale. Structural
// equality of same-arena constructed expressions is pointer equality
// (or equality of the stable
// ID every canonical node carries), and the evaluation, variable and
// bit-blasting memos throughout the system key on those IDs. Widths
// are in bits, 1..32; width-1 expressions are booleans produced by
// comparisons and consumed by Ite and path constraints.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates expression nodes.
type Kind uint8

// Expression kinds.
const (
	KConst Kind = iota
	KSym
	KAdd
	KSub
	KMul
	KAnd
	KOr
	KXor
	KShl  // logical shift left
	KLshr // logical shift right
	KAshr // arithmetic shift right
	KEq   // boolean result
	KUlt  // unsigned less-than, boolean result
	KSlt  // signed less-than, boolean result
	KNot  // bitwise complement (logical not at width 1)
	KZext // zero-extend A to Width
	KTrunc
	KConcat // A is high bits, B is low bits
	KIte    // if A (width 1) then B else C
)

var kindNames = map[Kind]string{
	KConst: "const", KSym: "sym", KAdd: "add", KSub: "sub", KMul: "mul",
	KAnd: "and", KOr: "or", KXor: "xor", KShl: "shl", KLshr: "lshr",
	KAshr: "ashr", KEq: "eq", KUlt: "ult", KSlt: "slt", KNot: "not",
	KZext: "zext", KTrunc: "trunc", KConcat: "concat", KIte: "ite",
}

// Expr is one immutable node of an expression DAG. Construct values
// only through the package constructors, which establish invariants
// (masked constants, folded identities, canonical interning).
type Expr struct {
	Kind  Kind
	Width uint8 // result width in bits, 1..32
	Val   uint32
	Name  string
	A     *Expr
	B     *Expr
	C     *Expr

	// id is the stable identity assigned at intern time; nonzero for
	// every constructor-built node, 0 only for raw nodes built inside
	// this package's tests. Interned nodes with equal structure share
	// one id (and one pointer).
	id uint64
	// hash is the structural hash, filled in before the node is
	// published by intern; raw test nodes compute it lazily.
	hash uint64
}

// ID returns the node's stable interned identity. Structurally equal
// constructor-built expressions have the same ID, so memo tables and
// cache keys throughout the solver stack use it in place of tree
// walks. 0 is never returned for constructor-built nodes.
func (e *Expr) ID() uint64 { return e.id }

// Equal reports structural equality. For interned nodes (everything
// built through the constructors) this is a pointer comparison; the
// slow path exists for raw nodes used in this package's own tests and
// for nodes built while interning is disabled.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Hash() != b.Hash() {
		return false
	}
	if a.Kind != b.Kind || a.Width != b.Width || a.Val != b.Val || a.Name != b.Name {
		return false
	}
	return Equal(a.A, b.A) && Equal(a.B, b.B) && Equal(a.C, b.C)
}

func mask(w uint8) uint32 {
	if w >= 32 {
		return 0xFFFFFFFF
	}
	return 1<<w - 1
}

// Mask returns the value mask for width w.
func Mask(w uint8) uint32 { return mask(w) }

// C constructs a constant of width w in the default arena.
func C(v uint32, w uint8) *Expr { return defaultArena.C(v, w) }

// C constructs a constant of width w.
func (ar *Arena) C(v uint32, w uint8) *Expr {
	v &= mask(w)
	if v < 256 && w <= 32 {
		if c := smallConsts[w][v]; c != nil {
			return c
		}
	}
	return ar.intern(internKey{kind: KConst, width: w, val: v})
}

// S constructs a symbolic variable in the default arena.
func S(name string, w uint8) *Expr { return defaultArena.S(name, w) }

// S constructs a symbolic variable. Names are meaningful per arena:
// the same name always denotes the same unknown, and under interning
// the same name and width always return the same node.
func (ar *Arena) S(name string, w uint8) *Expr {
	return ar.intern(internKey{kind: KSym, width: w, name: name})
}

// Bool converts a Go bool to the width-1 constants used as branch
// conditions.
func Bool(b bool) *Expr {
	if b {
		return C(1, 1)
	}
	return C(0, 1)
}

// IsConst reports whether e is a constant, returning its value.
func (e *Expr) IsConst() (uint32, bool) {
	if e.Kind == KConst {
		return e.Val, true
	}
	return 0, false
}

// IsTrue reports whether e is the constant true.
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Val != 0 }

// IsFalse reports whether e is the constant false (zero).
func (e *Expr) IsFalse() bool { return e.Kind == KConst && e.Val == 0 }

func signExtend(v uint32, w uint8) int32 {
	shift := 32 - uint32(w)
	return int32(v<<shift) >> shift
}

// SignExtend interprets v as a signed w-bit value.
func SignExtend(v uint32, w uint8) int32 { return signExtend(v, w) }

func binFold(k Kind, a, b uint32, w uint8) uint32 {
	m := mask(w)
	switch k {
	case KAdd:
		return (a + b) & m
	case KSub:
		return (a - b) & m
	case KMul:
		return (a * b) & m
	case KAnd:
		return a & b
	case KOr:
		return a | b
	case KXor:
		return a ^ b
	case KShl:
		return (a << (b % 32)) & m
	case KLshr:
		return (a & m) >> (b % 32)
	case KAshr:
		return uint32(signExtend(a, w)>>(b%32)) & m
	}
	panic("expr: binFold on non-arithmetic kind " + kindNames[k])
}

func (ar *Arena) bin(k Kind, a, b *Expr) *Expr {
	if a.Width != b.Width {
		panic(fmt.Sprintf("expr: width mismatch %d vs %d in %s", a.Width, b.Width, kindNames[k]))
	}
	w := a.Width
	av, aConst := a.IsConst()
	bv, bConst := b.IsConst()
	if aConst && bConst {
		return ar.C(binFold(k, av, bv, w), w)
	}
	// Algebraic identities with a constant operand.
	if bConst {
		switch {
		case bv == 0 && (k == KAdd || k == KSub || k == KOr || k == KXor || k == KShl || k == KLshr || k == KAshr):
			return a
		case bv == 0 && (k == KAnd || k == KMul):
			return ar.C(0, w)
		case bv == mask(w) && k == KAnd:
			return a
		case bv == 1 && k == KMul:
			return a
		}
	}
	if aConst {
		switch {
		case av == 0 && (k == KAdd || k == KOr || k == KXor):
			return b
		case av == 0 && (k == KAnd || k == KMul || k == KShl || k == KLshr || k == KAshr):
			return ar.C(0, w)
		case av == mask(w) && k == KAnd:
			return b
		case av == 1 && k == KMul:
			return b
		}
	}
	if Equal(a, b) {
		switch k {
		case KSub, KXor:
			return ar.C(0, w)
		case KAnd, KOr:
			return a
		}
	}
	// Canonicalize constants to the right for commutative operators,
	// re-associate (x op c1) op c2 => x op (c1 op c2), and order
	// non-constant operands by structural hash so the two operand
	// orders of a commutative application intern to one node.
	switch k {
	case KAdd, KMul, KAnd, KOr, KXor:
		if aConst {
			a, b = b, a
			av, aConst, bv, bConst = bv, bConst, av, aConst
		}
		if bConst && a.Kind == k {
			if iv, ok := a.B.IsConst(); ok {
				return ar.bin(k, a.A, ar.C(binFold(k, iv, bv, w), w))
			}
		}
		if !aConst && !bConst && a.Hash() > b.Hash() {
			a, b = b, a
		}
	case KSub:
		// x - c  =>  x + (-c), unifying with the KAdd re-association.
		if bConst {
			return ar.bin(KAdd, a, ar.C(-bv&mask(w), w))
		}
	}
	_ = av
	return ar.intern(internKey{kind: k, width: w, a: a, b: b})
}

// Add returns a+b.
func Add(a, b *Expr) *Expr { return defaultArena.Add(a, b) }

// Add returns a+b.
func (ar *Arena) Add(a, b *Expr) *Expr { return ar.bin(KAdd, a, b) }

// Sub returns a-b.
func Sub(a, b *Expr) *Expr { return defaultArena.Sub(a, b) }

// Sub returns a-b.
func (ar *Arena) Sub(a, b *Expr) *Expr { return ar.bin(KSub, a, b) }

// Mul returns a*b (low bits).
func Mul(a, b *Expr) *Expr { return defaultArena.Mul(a, b) }

// Mul returns a*b (low bits).
func (ar *Arena) Mul(a, b *Expr) *Expr { return ar.bin(KMul, a, b) }

// And returns a&b.
func And(a, b *Expr) *Expr { return defaultArena.And(a, b) }

// And returns a&b.
func (ar *Arena) And(a, b *Expr) *Expr { return ar.bin(KAnd, a, b) }

// Or returns a|b.
func Or(a, b *Expr) *Expr { return defaultArena.Or(a, b) }

// Or returns a|b.
func (ar *Arena) Or(a, b *Expr) *Expr { return ar.bin(KOr, a, b) }

// Xor returns a^b.
func Xor(a, b *Expr) *Expr { return defaultArena.Xor(a, b) }

// Xor returns a^b.
func (ar *Arena) Xor(a, b *Expr) *Expr { return ar.bin(KXor, a, b) }

// Shl returns a << b (shift amount taken mod 32).
func Shl(a, b *Expr) *Expr { return defaultArena.Shl(a, b) }

// Shl returns a << b (shift amount taken mod 32).
func (ar *Arena) Shl(a, b *Expr) *Expr { return ar.bin(KShl, a, b) }

// Lshr returns the logical right shift a >> b.
func Lshr(a, b *Expr) *Expr { return defaultArena.Lshr(a, b) }

// Lshr returns the logical right shift a >> b.
func (ar *Arena) Lshr(a, b *Expr) *Expr { return ar.bin(KLshr, a, b) }

// Ashr returns the arithmetic right shift a >> b.
func Ashr(a, b *Expr) *Expr { return defaultArena.Ashr(a, b) }

// Ashr returns the arithmetic right shift a >> b.
func (ar *Arena) Ashr(a, b *Expr) *Expr { return ar.bin(KAshr, a, b) }

// Eq returns the boolean a == b.
func Eq(a, b *Expr) *Expr { return defaultArena.Eq(a, b) }

// Eq returns the boolean a == b.
func (ar *Arena) Eq(a, b *Expr) *Expr {
	if a.Width != b.Width {
		panic("expr: width mismatch in eq")
	}
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 {
			return Bool(av == bv)
		}
	}
	if Equal(a, b) {
		return Bool(true)
	}
	// (x == c) where x is (y ^ c2) etc. left to the solver; keep one
	// cheap rule: zext(x) == c with c beyond x's range is false.
	if b.Kind == KConst && a.Kind == KZext && b.Val > mask(a.A.Width) {
		return Bool(false)
	}
	if a.Kind == KConst {
		a, b = b, a
	}
	if a.Kind != KConst && b.Kind != KConst && a.Hash() > b.Hash() {
		a, b = b, a
	}
	return ar.intern(internKey{kind: KEq, width: 1, a: a, b: b})
}

// Ult returns the boolean a < b, unsigned.
func Ult(a, b *Expr) *Expr { return defaultArena.Ult(a, b) }

// Ult returns the boolean a < b, unsigned.
func (ar *Arena) Ult(a, b *Expr) *Expr {
	if a.Width != b.Width {
		panic("expr: width mismatch in ult")
	}
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 {
			return Bool(av < bv)
		}
	}
	if b.IsFalse() {
		return Bool(false) // nothing is < 0
	}
	if Equal(a, b) {
		return Bool(false)
	}
	return ar.intern(internKey{kind: KUlt, width: 1, a: a, b: b})
}

// Slt returns the boolean a < b, signed at the operand width.
func Slt(a, b *Expr) *Expr { return defaultArena.Slt(a, b) }

// Slt returns the boolean a < b, signed at the operand width.
func (ar *Arena) Slt(a, b *Expr) *Expr {
	if a.Width != b.Width {
		panic("expr: width mismatch in slt")
	}
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 {
			return Bool(signExtend(av, a.Width) < signExtend(bv, b.Width))
		}
	}
	if Equal(a, b) {
		return Bool(false)
	}
	return ar.intern(internKey{kind: KSlt, width: 1, a: a, b: b})
}

// Not returns the bitwise complement; at width 1 this is logical not.
func Not(a *Expr) *Expr { return defaultArena.Not(a) }

// Not returns the bitwise complement; at width 1 this is logical not.
func (ar *Arena) Not(a *Expr) *Expr {
	if v, ok := a.IsConst(); ok {
		return ar.C(^v, a.Width)
	}
	if a.Kind == KNot {
		return a.A
	}
	return ar.intern(internKey{kind: KNot, width: a.Width, a: a})
}

// Zext zero-extends a to width w.
func Zext(a *Expr, w uint8) *Expr { return defaultArena.Zext(a, w) }

// Zext zero-extends a to width w.
func (ar *Arena) Zext(a *Expr, w uint8) *Expr {
	if w < a.Width {
		panic("expr: zext narrows")
	}
	if w == a.Width {
		return a
	}
	if v, ok := a.IsConst(); ok {
		return ar.C(v, w)
	}
	if a.Kind == KZext {
		return ar.Zext(a.A, w)
	}
	return ar.intern(internKey{kind: KZext, width: w, a: a})
}

// Trunc truncates a to width w.
func Trunc(a *Expr, w uint8) *Expr { return defaultArena.Trunc(a, w) }

// Trunc truncates a to width w.
func (ar *Arena) Trunc(a *Expr, w uint8) *Expr {
	if w > a.Width {
		panic("expr: trunc widens")
	}
	if w == a.Width {
		return a
	}
	if v, ok := a.IsConst(); ok {
		return ar.C(v, w)
	}
	if a.Kind == KZext && a.A.Width >= w {
		return ar.Trunc(a.A, w)
	}
	if a.Kind == KConcat && a.B.Width >= w {
		return ar.Trunc(a.B, w)
	}
	return ar.intern(internKey{kind: KTrunc, width: w, a: a})
}

// Concat concatenates hi over lo; the result has width
// hi.Width+lo.Width.
func Concat(hi, lo *Expr) *Expr { return defaultArena.Concat(hi, lo) }

// Concat concatenates hi over lo; the result has width
// hi.Width+lo.Width.
func (ar *Arena) Concat(hi, lo *Expr) *Expr {
	w := hi.Width + lo.Width
	if w > 32 {
		panic("expr: concat exceeds 32 bits")
	}
	if hv, ok := hi.IsConst(); ok {
		if lv, ok2 := lo.IsConst(); ok2 {
			return ar.C(hv<<lo.Width|lv, w)
		}
		if hv == 0 {
			return ar.Zext(lo, w)
		}
	}
	// concat(trunc(x>>k), trunc(x)) patterns from byte-wise memory
	// reassemble into x; handled by ExtractByte below.
	return ar.intern(internKey{kind: KConcat, width: w, a: hi, b: lo})
}

// Ite returns "if cond then a else b"; cond must have width 1.
func Ite(cond, a, b *Expr) *Expr { return defaultArena.Ite(cond, a, b) }

// Ite returns "if cond then a else b"; cond must have width 1.
func (ar *Arena) Ite(cond, a, b *Expr) *Expr {
	if cond.Width != 1 {
		panic("expr: ite condition must be width 1")
	}
	if a.Width != b.Width {
		panic("expr: ite arm width mismatch")
	}
	if cond.IsTrue() {
		return a
	}
	if cond.IsFalse() {
		return b
	}
	if Equal(a, b) {
		return a
	}
	return ar.intern(internKey{kind: KIte, width: a.Width, a: cond, b: a, c: b})
}

// ExtractByte returns byte i (0 = least significant) of e as a width-8
// expression.
func ExtractByte(e *Expr, i int) *Expr { return defaultArena.ExtractByte(e, i) }

// ExtractByte returns byte i (0 = least significant) of e as a width-8
// expression, recognizing the reassembly patterns produced by
// byte-granular symbolic memory.
func (ar *Arena) ExtractByte(e *Expr, i int) *Expr {
	if i*8 >= int(e.Width+7) {
		return ar.C(0, 8)
	}
	if v, ok := e.IsConst(); ok {
		return ar.C(v>>(8*i), 8)
	}
	if i == 0 {
		return ar.Trunc(e, 8)
	}
	return ar.Trunc(ar.Lshr(e, ar.C(uint32(8*i), e.Width)), 8)
}

// FromBytes32 assembles a 32-bit value from four width-8 byte
// expressions (b0 least significant).
func FromBytes32(b0, b1, b2, b3 *Expr) *Expr { return defaultArena.FromBytes32(b0, b1, b2, b3) }

// FromBytes32 assembles a 32-bit value from four width-8 byte
// expressions (b0 least significant), recognizing the case where all
// four bytes extract consecutive bytes of one source expression.
func (ar *Arena) FromBytes32(b0, b1, b2, b3 *Expr) *Expr {
	if src := commonSource(b0, b1, b2, b3); src != nil {
		return src
	}
	return ar.Concat(ar.Concat(b3, b2), ar.Concat(b1, b0))
}

// FromBytes16 assembles a 16-bit value from two byte expressions.
func FromBytes16(b0, b1 *Expr) *Expr { return defaultArena.Concat(b1, b0) }

// FromBytes16 assembles a 16-bit value from two byte expressions.
func (ar *Arena) FromBytes16(b0, b1 *Expr) *Expr { return ar.Concat(b1, b0) }

// commonSource detects b0..b3 = bytes 0..3 of a single 32-bit
// expression and returns that expression.
func commonSource(b0, b1, b2, b3 *Expr) *Expr {
	src := byteSource(b0, 0)
	if src == nil || src.Width != 32 {
		return nil
	}
	for i, b := range []*Expr{b1, b2, b3} {
		if !Equal(byteSource(b, i+1), src) {
			return nil
		}
	}
	return src
}

// byteSource returns x if e is structurally ExtractByte(x, i).
func byteSource(e *Expr, i int) *Expr {
	if e.Kind != KTrunc || e.Width != 8 {
		return nil
	}
	inner := e.A
	if i == 0 {
		return inner
	}
	if inner.Kind != KLshr {
		return nil
	}
	if sh, ok := inner.B.IsConst(); !ok || sh != uint32(8*i) {
		return nil
	}
	return inner.A
}

// Eval computes the concrete value of e under an assignment of
// symbolic variables. Missing variables evaluate to zero, matching
// the solver's completion of partial models. Evaluation is
// memoized over the expression DAG by interned ID: values produced by
// long execution paths share subtrees heavily, and a naive tree walk
// is exponential on them. Raw (un-interned) nodes are strict trees,
// so they recurse without memoization.
func Eval(e *Expr, env map[string]uint32) uint32 {
	return evalMemo(e, env, map[uint64]uint32{})
}

func evalMemo(e *Expr, env map[string]uint32, memo map[uint64]uint32) uint32 {
	if e.Kind == KConst {
		return e.Val
	}
	if e.id != 0 {
		if v, ok := memo[e.id]; ok {
			return v
		}
	}
	v := evalNode(e, env, memo)
	if e.id != 0 {
		memo[e.id] = v
	}
	return v
}

// Evaluator evaluates expressions under one fixed environment with a
// memo shared across calls, for callers that evaluate many
// constraints against the same candidate model (the solver's
// counterexample cache). Not safe for concurrent use.
type Evaluator struct {
	env  map[string]uint32
	memo map[uint64]uint32
}

// NewEvaluator returns an evaluator for the given environment. The
// environment is aliased, not copied; callers must not mutate it.
func NewEvaluator(env map[string]uint32) *Evaluator {
	return &Evaluator{env: env, memo: map[uint64]uint32{}}
}

// Eval computes e's value under the evaluator's environment.
func (v *Evaluator) Eval(e *Expr) uint32 { return evalMemo(e, v.env, v.memo) }

func evalNode(e *Expr, env map[string]uint32, memo map[uint64]uint32) uint32 {
	ev := func(x *Expr) uint32 { return evalMemo(x, env, memo) }
	switch e.Kind {
	case KSym:
		return env[e.Name] & mask(e.Width)
	case KAdd, KSub, KMul, KAnd, KOr, KXor, KShl, KLshr, KAshr:
		return binFold(e.Kind, ev(e.A), ev(e.B), e.Width)
	case KEq:
		if ev(e.A) == ev(e.B) {
			return 1
		}
		return 0
	case KUlt:
		if ev(e.A) < ev(e.B) {
			return 1
		}
		return 0
	case KSlt:
		if signExtend(ev(e.A), e.A.Width) < signExtend(ev(e.B), e.B.Width) {
			return 1
		}
		return 0
	case KNot:
		return ^ev(e.A) & mask(e.Width)
	case KZext:
		return ev(e.A)
	case KTrunc:
		return ev(e.A) & mask(e.Width)
	case KConcat:
		return (ev(e.A)<<e.B.Width | ev(e.B)) & mask(e.Width)
	case KIte:
		if ev(e.A) != 0 {
			return ev(e.B)
		}
		return ev(e.C)
	}
	panic("expr: eval of unknown kind")
}

// Hash returns the structural hash of the expression. Interned nodes
// (everything built through the constructors) carry it from intern
// time; raw test nodes compute and cache it lazily, which is safe only
// single-goroutine — exactly the scope raw nodes exist in.
func (e *Expr) Hash() uint64 {
	if e.hash == 0 {
		e.hash = computeHash(e)
	}
	return e.hash
}

// Vars appends the distinct symbolic variable names occurring in e to
// the set. The walk is DAG-aware, keyed on interned IDs.
func Vars(e *Expr, set map[string]uint8) {
	varsMemo(e, set, map[uint64]bool{})
}

func varsMemo(e *Expr, set map[string]uint8, seen map[uint64]bool) {
	if e.id != 0 {
		if seen[e.id] {
			return
		}
		seen[e.id] = true
	}
	switch e.Kind {
	case KConst:
	case KSym:
		set[e.Name] = e.Width
	default:
		if e.A != nil {
			varsMemo(e.A, set, seen)
		}
		if e.B != nil {
			varsMemo(e.B, set, seen)
		}
		if e.C != nil {
			varsMemo(e.C, set, seen)
		}
	}
}

// VarNames returns the sorted variable names of e.
func VarNames(e *Expr) []string {
	set := map[string]uint8{}
	Vars(e, set)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// VarSet returns the union of the variables of the given expressions
// as a name→width map, sharing one DAG-visit memo across all of them
// so common subgraphs are walked once.
func VarSet(es ...*Expr) map[string]uint8 {
	set := map[string]uint8{}
	seen := map[uint64]bool{}
	for _, e := range es {
		if e != nil {
			varsMemo(e, set, seen)
		}
	}
	return set
}

// NameHash returns a well-mixed 64-bit hash of a variable name
// (FNV-1a with a splitmix64 finalizer). It is the per-element hash
// underneath VarSetSignature.
func NameHash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// VarSetSignature condenses a set of variable names into an
// order-insensitive 64-bit signature: two calls agree iff (modulo
// hash collisions) the name sets are equal, regardless of slice
// order. The solver's counterexample index buckets models by this
// signature.
func VarSetSignature(names []string) uint64 {
	var sum, x uint64
	for _, n := range names {
		h := NameHash(n)
		sum += h
		x ^= (h << 11) | (h >> 53)
	}
	// Final avalanche so near-identical sets don't cluster.
	h := sum ^ (x * 0x9e3779b97f4a7c15) ^ uint64(len(names))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// String renders the expression in a compact LISP-ish syntax for
// debugging and trace dumps.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Expr) format(b *strings.Builder) {
	switch e.Kind {
	case KConst:
		fmt.Fprintf(b, "%#x:%d", e.Val, e.Width)
	case KSym:
		fmt.Fprintf(b, "%s:%d", e.Name, e.Width)
	default:
		b.WriteByte('(')
		b.WriteString(kindNames[e.Kind])
		for _, sub := range []*Expr{e.A, e.B, e.C} {
			if sub != nil {
				b.WriteByte(' ')
				sub.format(b)
			}
		}
		b.WriteByte(')')
	}
}

// Size returns the number of distinct nodes in the DAG; a rough
// complexity measure used by tests and the solver's cache keys.
func (e *Expr) Size() int {
	return dagSize(e, map[*Expr]bool{})
}

func dagSize(e *Expr, seen map[*Expr]bool) int {
	if seen[e] {
		return 0
	}
	seen[e] = true
	n := 1
	for _, sub := range []*Expr{e.A, e.B, e.C} {
		if sub != nil {
			n += dagSize(sub, seen)
		}
	}
	return n
}
