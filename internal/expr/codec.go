package expr

import (
	"fmt"
)

// This file implements the wire codec that lets expression DAGs cross
// process boundaries — the piece of RevNIC's distributed exploration
// mode that ships symbolic states (registers, memory overlays, path
// constraints) to peer nodes and gets completed states back.
//
// A WireDAG is a flat node table in child-before-parent order plus a
// list of root references. Encoding deduplicates by interned identity,
// so shared subtrees — rampant in path constraints — are emitted once
// no matter how many roots reach them. Decoding rebuilds every node
// through the arena *constructors*, not raw interning: constructors
// are deterministic and idempotent on already-canonical structures
// (the only structures an encoder ever sees), so the decoded DAG is
// structurally identical to the source, node for node. That property
// is what makes remote shard execution bit-identical to local: the
// peer's engine sees exactly the expressions the coordinator's worker
// child would have seen.

// WireNode is one serialized expression node. Child references are
// 1-based indices into the WireDAG node table (0 = absent) and always
// point to earlier entries.
type WireNode struct {
	K uint8  `json:"k"`
	W uint8  `json:"w"`
	V uint32 `json:"v,omitempty"`
	N string `json:"n,omitempty"`
	A int32  `json:"a,omitempty"`
	B int32  `json:"b,omitempty"`
	C int32  `json:"c,omitempty"`
}

// WireDAG is a serialized expression DAG: a deduplicated node table in
// dependency order and the roots the caller asked to encode, as
// 1-based table references (0 encodes a nil root, which callers use
// for optional expressions like an incomplete state's Result).
type WireDAG struct {
	Nodes []WireNode `json:"nodes,omitempty"`
	Roots []int32    `json:"roots,omitempty"`
}

// DAGEncoder accumulates expressions into one shared node table, so a
// caller serializing many related values (every register, memory byte
// and constraint of a state group) emits each distinct node once.
// Not safe for concurrent use.
type DAGEncoder struct {
	nodes []WireNode
	seen  map[uint64]int32 // interned ID -> 1-based table index
}

// NewDAGEncoder returns an empty encoder.
func NewDAGEncoder() *DAGEncoder {
	return &DAGEncoder{seen: map[uint64]int32{}}
}

// Add encodes e (sharing already-emitted subtrees) and returns its
// 1-based table reference; nil encodes as 0.
func (enc *DAGEncoder) Add(e *Expr) int32 {
	if e == nil {
		return 0
	}
	if ref, ok := enc.seen[e.id]; ok {
		return ref
	}
	// Children first, so references always point backwards.
	a := enc.Add(e.A)
	b := enc.Add(e.B)
	c := enc.Add(e.C)
	enc.nodes = append(enc.nodes, WireNode{
		K: uint8(e.Kind), W: e.Width, V: e.Val, N: e.Name, A: a, B: b, C: c,
	})
	ref := int32(len(enc.nodes))
	enc.seen[e.id] = ref
	return ref
}

// Nodes returns the accumulated table. The encoder stays usable; the
// table is aliased, so callers should be done adding.
func (enc *DAGEncoder) Nodes() []WireNode { return enc.nodes }

// EncodeDAG serializes the given roots into one WireDAG.
func EncodeDAG(roots []*Expr) WireDAG {
	enc := NewDAGEncoder()
	refs := make([]int32, len(roots))
	for i, r := range roots {
		refs[i] = enc.Add(r)
	}
	return WireDAG{Nodes: enc.nodes, Roots: refs}
}

// DAGDecoder rebuilds expressions from a wire node table into one
// arena. Decoding validates structure as it goes — references must
// point backwards, widths must satisfy the constructor contracts — and
// returns an error instead of panicking on malformed input, because
// wire bytes arrive from the network (possibly torn mid-payload).
type DAGDecoder struct {
	ar    *Arena
	nodes []WireNode
	built []*Expr
}

// NewDAGDecoder prepares to decode the given node table into ar.
func (ar *Arena) NewDAGDecoder(nodes []WireNode) *DAGDecoder {
	return &DAGDecoder{ar: ar, nodes: nodes, built: make([]*Expr, len(nodes))}
}

// Ref resolves a wire reference to its decoded expression; 0 resolves
// to nil. Nodes decode lazily and memoize, so the cost of a table is
// paid once no matter how many values reference into it.
func (d *DAGDecoder) Ref(ref int32) (e *Expr, err error) {
	if ref == 0 {
		return nil, nil
	}
	// Constructors panic on contract violations (width mismatches and
	// the like); on attacker- or corruption-shaped input that must
	// surface as a decode error, not a crash.
	defer func() {
		if r := recover(); r != nil {
			e, err = nil, fmt.Errorf("expr: decode: %v", r)
		}
	}()
	return d.resolve(ref)
}

func (d *DAGDecoder) resolve(ref int32) (*Expr, error) {
	if ref < 1 || int(ref) > len(d.nodes) {
		return nil, fmt.Errorf("expr: decode: reference %d outside table of %d nodes", ref, len(d.nodes))
	}
	if e := d.built[ref-1]; e != nil {
		return e, nil
	}
	n := d.nodes[ref-1]
	// Child references must strictly precede the node, which both
	// rules out reference cycles and bounds recursion.
	for _, c := range [3]int32{n.A, n.B, n.C} {
		if c >= ref {
			return nil, fmt.Errorf("expr: decode: node %d references forward to %d", ref, c)
		}
	}
	var a, b, c *Expr
	var err error
	if a, err = d.childOf(n.A); err != nil {
		return nil, err
	}
	if b, err = d.childOf(n.B); err != nil {
		return nil, err
	}
	if c, err = d.childOf(n.C); err != nil {
		return nil, err
	}
	e, err := d.construct(n, a, b, c)
	if err != nil {
		return nil, err
	}
	d.built[ref-1] = e
	return e, nil
}

func (d *DAGDecoder) childOf(ref int32) (*Expr, error) {
	if ref == 0 {
		return nil, nil
	}
	return d.resolve(ref)
}

// construct rebuilds one node through the canonicalizing arena
// constructors. An encoder only ever emits canonical nodes, and every
// constructor is idempotent on canonical operands, so this reproduces
// the source structure exactly.
func (d *DAGDecoder) construct(n WireNode, a, b, c *Expr) (*Expr, error) {
	if n.W < 1 || n.W > 32 {
		return nil, fmt.Errorf("expr: decode: width %d out of range", n.W)
	}
	k := Kind(n.K)
	switch k {
	case KConst:
		return d.ar.C(n.V, n.W), nil
	case KSym:
		if n.N == "" {
			return nil, fmt.Errorf("expr: decode: symbol without a name")
		}
		return d.ar.S(n.N, n.W), nil
	}
	need := 1
	if k == KIte || (k != KNot && k != KZext && k != KTrunc) {
		need = 2
	}
	if k == KIte {
		need = 3
	}
	have := 0
	for _, ch := range [3]*Expr{a, b, c} {
		if ch != nil {
			have++
		}
	}
	if have != need {
		return nil, fmt.Errorf("expr: decode: kind %d has %d operands, needs %d", n.K, have, need)
	}
	switch k {
	case KAdd:
		return d.ar.Add(a, b), nil
	case KSub:
		return d.ar.Sub(a, b), nil
	case KMul:
		return d.ar.Mul(a, b), nil
	case KAnd:
		return d.ar.And(a, b), nil
	case KOr:
		return d.ar.Or(a, b), nil
	case KXor:
		return d.ar.Xor(a, b), nil
	case KShl:
		return d.ar.Shl(a, b), nil
	case KLshr:
		return d.ar.Lshr(a, b), nil
	case KAshr:
		return d.ar.Ashr(a, b), nil
	case KEq:
		return d.ar.Eq(a, b), nil
	case KUlt:
		return d.ar.Ult(a, b), nil
	case KSlt:
		return d.ar.Slt(a, b), nil
	case KNot:
		return d.ar.Not(a), nil
	case KZext:
		return d.ar.Zext(a, n.W), nil
	case KTrunc:
		return d.ar.Trunc(a, n.W), nil
	case KConcat:
		return d.ar.Concat(a, b), nil
	case KIte:
		return d.ar.Ite(a, b, c), nil
	}
	return nil, fmt.Errorf("expr: decode: unknown kind %d", n.K)
}

// DecodeDAG rebuilds a WireDAG's roots in the arena.
func (ar *Arena) DecodeDAG(d WireDAG) ([]*Expr, error) {
	dec := ar.NewDAGDecoder(d.Nodes)
	out := make([]*Expr, len(d.Roots))
	for i, ref := range d.Roots {
		e, err := dec.Ref(ref)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
