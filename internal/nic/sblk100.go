package nic

import "revnic/internal/hw"

// SBLK100 models a simple block-transfer storage-style controller —
// the corpus-growth device beyond the four NICs (§5.2's generality
// claim: the approach reverse-engineers register protocols, not
// Ethernet specifically). The protocol is deliberately un-NIC-like:
// an ATA-flavoured command/status pair, an LBA register file, a
// sector-count register and a 16-bit data window with an
// auto-incrementing internal pointer. Outbound payloads are written
// as "blocks" (WRITE_BEGIN / data stream / WRITE_COMMIT) and inbound
// payloads are drained one record at a time (READ_NEXT / data stream
// / READ_DONE), so the same Model interface used by the NIC harness
// applies: TxFrames returns committed writes, InjectRX queues
// records for the driver to read.
//
//	0x00 STATUS (RO)  bit0 READY, bit1 DRQ, bit2 STARTED
//	0x01 CMD    (WO)
//	0x02 SECCNT
//	0x04..0x07 LBA0..LBA3
//	0x08 DATA   (16-bit window, auto-increment)
//	0x0A IST    bit0 WRITE_DONE (W1C), bit1 READ_READY, bit2 ERROR (W1C)
//	0x0B IMR
//	0x0C CTL    bit0 START
//	0x0D SCRATCH
const (
	SBLKStatus  = 0x00
	SBLKCmd     = 0x01
	SBLKSecCnt  = 0x02
	SBLKLBA0    = 0x04
	SBLKData    = 0x08
	SBLKIST     = 0x0A
	SBLKIMR     = 0x0B
	SBLKCtl     = 0x0C
	SBLKScratch = 0x0D
)

// SBLK100 status bits.
const (
	SBLKStatReady   = 1 << 0
	SBLKStatDRQ     = 1 << 1
	SBLKStatStarted = 1 << 2
)

// SBLK100 commands.
const (
	SBLKCmdIdentify    = 0x10
	SBLKCmdReadNext    = 0x20
	SBLKCmdReadDone    = 0x21
	SBLKCmdWriteBegin  = 0x30
	SBLKCmdWriteCommit = 0x31
)

// SBLK100 interrupt bits.
const (
	SBLKIntWriteDone = 1 << 0
	SBLKIntReadReady = 1 << 1
	SBLKIntError     = 1 << 2
)

// sblkQueueDepth bounds the inbound record queue, like a bounded
// completion ring.
const sblkQueueDepth = 8

// SBLK100 models the block controller.
type SBLK100 struct {
	hw.NopDevice
	line *hw.IRQLine

	seccnt  byte
	lba     [4]byte
	ist     byte
	imr     byte
	ctl     byte
	scratch byte

	rdBuf []byte // DATA reads stream from here
	rdPtr int
	wrBuf [2 + MaxFrame]byte // DATA writes stream into here
	wrPtr int

	rxq   [][]byte
	irqUp bool
	tx    [][]byte
	// lbas records the LBA register file at each commit, so tests can
	// observe the driver's block-addressing behaviour.
	lbas   []uint32
	serial [6]byte
}

// NewSBLK100 builds the model; the 6-byte serial doubles as the MAC
// the harness's Status report expects.
func NewSBLK100(line *hw.IRQLine, serial [6]byte) *SBLK100 {
	d := &SBLK100{NopDevice: hw.NopDevice{DevName: "sblk100"}, line: line, serial: serial}
	d.Reset()
	return d
}

// Reset implements hw.Device.
func (d *SBLK100) Reset() {
	d.seccnt = 0
	d.lba = [4]byte{}
	d.ist, d.imr, d.ctl, d.scratch = 0, 0, 0, 0
	d.rdBuf, d.rdPtr = nil, 0
	d.wrPtr = 0
	d.rxq = nil
	d.tx = nil
	d.lbas = nil
	d.updateIRQ()
}

func (d *SBLK100) updateIRQ() {
	up := d.ist&d.imr != 0
	if up && !d.irqUp {
		d.line.Assert()
	} else if !up && d.irqUp {
		d.line.Deassert()
	}
	d.irqUp = up
}

// PortRead implements hw.Device.
func (d *SBLK100) PortRead(off uint32, size int) uint32 {
	switch off {
	case SBLKStatus:
		st := uint32(SBLKStatReady)
		if d.rdPtr < len(d.rdBuf) {
			st |= SBLKStatDRQ
		}
		if d.ctl&1 != 0 {
			st |= SBLKStatStarted
		}
		return st
	case SBLKSecCnt:
		return uint32(d.seccnt)
	case SBLKLBA0, SBLKLBA0 + 1, SBLKLBA0 + 2, SBLKLBA0 + 3:
		return readBytes(d.lba[:], off-SBLKLBA0, size)
	case SBLKData:
		return d.dataRead(size)
	case SBLKIST:
		return uint32(d.ist)
	case SBLKIMR:
		return uint32(d.imr)
	case SBLKCtl:
		return uint32(d.ctl)
	case SBLKScratch:
		return uint32(d.scratch)
	}
	return 0
}

// PortWrite implements hw.Device.
func (d *SBLK100) PortWrite(off uint32, size int, v uint32) {
	switch off {
	case SBLKCmd:
		d.command(byte(v))
	case SBLKSecCnt:
		d.seccnt = byte(v)
	case SBLKLBA0, SBLKLBA0 + 1, SBLKLBA0 + 2, SBLKLBA0 + 3:
		writeBytes(d.lba[:], off-SBLKLBA0, size, v)
	case SBLKData:
		d.dataWrite(v, size)
	case SBLKIST:
		// Bits 0 and 2 are write-one-to-clear; READ_READY is managed
		// by the device itself (cleared when the queue drains).
		d.ist &^= byte(v) & (SBLKIntWriteDone | SBLKIntError)
		d.updateIRQ()
	case SBLKIMR:
		d.imr = byte(v)
		d.updateIRQ()
	case SBLKCtl:
		d.ctl = byte(v)
	case SBLKScratch:
		d.scratch = byte(v)
	}
}

func (d *SBLK100) dataRead(size int) uint32 {
	var v uint32
	for i := 0; i < size; i++ {
		if d.rdPtr < len(d.rdBuf) {
			v |= uint32(d.rdBuf[d.rdPtr]) << (8 * i)
			d.rdPtr++
		}
	}
	return v
}

func (d *SBLK100) dataWrite(v uint32, size int) {
	for i := 0; i < size; i++ {
		if d.wrPtr < len(d.wrBuf) {
			d.wrBuf[d.wrPtr] = byte(v >> (8 * i))
			d.wrPtr++
		}
	}
}

func (d *SBLK100) command(cmd byte) {
	switch cmd {
	case SBLKCmdIdentify:
		// 32-byte identify block: serial at 0, "SBLK" magic at 8,
		// queue depth at 12.
		blk := make([]byte, 32)
		copy(blk, d.serial[:])
		copy(blk[8:], "SBLK")
		blk[12] = sblkQueueDepth
		d.rdBuf, d.rdPtr = blk, 0
	case SBLKCmdReadNext:
		if len(d.rxq) == 0 {
			d.rdBuf, d.rdPtr = []byte{0, 0}, 0
			return
		}
		rec := d.rxq[0]
		blk := make([]byte, 2+len(rec))
		blk[0], blk[1] = byte(len(rec)), byte(len(rec)>>8)
		copy(blk[2:], rec)
		d.rdBuf, d.rdPtr = blk, 0
	case SBLKCmdReadDone:
		if len(d.rxq) > 0 {
			d.rxq = d.rxq[1:]
		}
		if len(d.rxq) == 0 {
			d.ist &^= SBLKIntReadReady
			d.updateIRQ()
		}
	case SBLKCmdWriteBegin:
		d.wrPtr = 0
	case SBLKCmdWriteCommit:
		d.commit()
	}
}

// Committed block layout: bytes 0-1 little-endian payload length,
// payload from byte 2.
func (d *SBLK100) commit() {
	n := int(d.wrBuf[0]) | int(d.wrBuf[1])<<8
	if d.ctl&1 == 0 || n < MinFrame || n > MaxFrame || 2+n > d.wrPtr {
		d.ist |= SBLKIntError
		d.updateIRQ()
		return
	}
	rec := make([]byte, n)
	copy(rec, d.wrBuf[2:2+n])
	d.tx = append(d.tx, rec)
	d.lbas = append(d.lbas, uint32(d.lba[0])|uint32(d.lba[1])<<8|
		uint32(d.lba[2])<<16|uint32(d.lba[3])<<24)
	d.ist |= SBLKIntWriteDone
	d.updateIRQ()
}

// InjectRX implements Model: an inbound record enters the read queue.
// There is no address filtering — a block controller carries opaque
// payloads — so acceptance depends only on the device being started
// and the queue having room.
func (d *SBLK100) InjectRX(frame []byte) bool {
	if d.ctl&1 == 0 || len(frame) < MinFrame || len(frame) > MaxFrame {
		return false
	}
	if len(d.rxq) >= sblkQueueDepth {
		return false
	}
	rec := make([]byte, len(frame))
	copy(rec, frame)
	d.rxq = append(d.rxq, rec)
	d.ist |= SBLKIntReadReady
	d.updateIRQ()
	return true
}

// TxFrames implements Model.
func (d *SBLK100) TxFrames() [][]byte {
	out := d.tx
	d.tx = nil
	return out
}

// CommitLBAs returns the LBA register values captured at each commit
// since the last call.
func (d *SBLK100) CommitLBAs() []uint32 {
	out := d.lbas
	d.lbas = nil
	return out
}

// StatusReport implements Model. The serial stands in for the MAC;
// NIC-specific rows (promiscuous, duplex, multicast) are always
// false for a block controller.
func (d *SBLK100) StatusReport() Status {
	return Status{
		MAC:       d.serial,
		RxEnabled: d.ctl&1 != 0,
		TxEnabled: d.ctl&1 != 0,
	}
}
