package nic

import (
	"encoding/binary"

	"revnic/internal/hw"
)

// RTL8139 register offsets. The model follows the real chip's
// architecture: four transmit descriptors (TSD/TSAD register pairs)
// through which the driver hands physical buffer addresses to the
// bus-master DMA engine, a receive ring in host memory written by the
// device, 16-bit IMR/ISR with write-1-to-clear, and a CONFIG1
// register holding the Wake-on-LAN and LED bits that Table 2 credits
// this chip with.
const (
	R39IDR0    = 0x00 // station MAC, 6 bytes
	R39MAR0    = 0x08 // multicast hash, 8 bytes
	R39TSD0    = 0x10 // transmit status/command, 4 regs of 4 bytes
	R39TSAD0   = 0x20 // transmit buffer physical address, 4 regs
	R39RBSTART = 0x30 // receive ring physical address
	R39CR      = 0x37 // command (8-bit)
	R39CAPR    = 0x38 // rx read pointer (16-bit)
	R39IMR     = 0x3C // interrupt mask (16-bit)
	R39ISR     = 0x3E // interrupt status (16-bit, W1C)
	R39TCR     = 0x40
	R39RCR     = 0x44
	R39CONFIG1 = 0x52
	R39MSR     = 0x58 // media status
)

// RTL8139 CR bits.
const (
	R39CRBufEmpty = 1 << 0 // read-only: RX ring has no unread data
	R39CRTxEnable = 1 << 2
	R39CRRxEnable = 1 << 3
	R39CRReset    = 1 << 4
)

// RTL8139 ISR/IMR bits.
const (
	R39IntROK = 1 << 0
	R39IntTOK = 1 << 2
)

// RTL8139 TSD bits (beyond the 13-bit length field).
const (
	R39TSDOwn = 1 << 13 // cleared by driver to start, set by device when DMA done
	R39TSDTok = 1 << 15
)

// RTL8139 RCR bits.
const (
	R39RCRAAP = 1 << 0 // accept all (promiscuous)
	R39RCRAM  = 1 << 2 // accept multicast (hash)
	R39RCRAB  = 1 << 3 // accept broadcast
)

// RTL8139 CONFIG1 bits.
const (
	R39Config1PMEn = 1 << 0 // Wake-on-LAN enable
	R39Config1LED0 = 1 << 4 // LED on
)

// RTL8139 MSR bits.
const (
	R39MSRFullDup = 1 << 0
)

// r39RxRingSize is the receive ring size in host memory. The model
// operates in the chip's WRAP mode: a frame that would cross the ring
// end is written contiguously past it into slack space (the driver
// allocates r39RxAllocSize), and only the write pointer wraps.
const (
	r39RxRingSize  = 8192
	r39RxAllocSize = r39RxRingSize + 16 + 2048
)

// RTL8139 models the Realtek RTL8139C.
type RTL8139 struct {
	hw.NopDevice
	line *hw.IRQLine
	mem  hw.MemBus

	idr     [6]byte
	mar     [8]byte
	tsd     [4]uint32
	tsad    [4]uint32
	rbstart uint32
	cr      byte
	capr    uint16
	imr     uint16
	isr     uint16
	tcr     uint32
	rcr     uint32
	config1 byte
	msr     byte

	rxWrite uint32 // device write offset into the ring
	irqUp   bool
	tx      [][]byte
	mac     [6]byte
}

// NewRTL8139 builds the model. mem provides DMA access to host RAM.
func NewRTL8139(line *hw.IRQLine, mem hw.MemBus, mac [6]byte) *RTL8139 {
	d := &RTL8139{NopDevice: hw.NopDevice{DevName: "rtl8139"}, line: line, mem: mem, mac: mac}
	d.Reset()
	return d
}

// Reset implements hw.Device.
func (d *RTL8139) Reset() {
	d.idr = d.mac
	d.mar = [8]byte{}
	d.tsd = [4]uint32{}
	d.tsad = [4]uint32{}
	d.rbstart, d.capr, d.rxWrite = 0, 0, 0
	d.cr, d.imr, d.isr = 0, 0, 0
	d.tcr, d.rcr = 0, 0
	d.config1, d.msr = 0, R39MSRFullDup
	d.tx = nil
	d.updateIRQ()
}

func (d *RTL8139) updateIRQ() {
	up := d.isr&d.imr != 0
	if up && !d.irqUp {
		d.line.Assert()
	} else if !up && d.irqUp {
		d.line.Deassert()
	}
	d.irqUp = up
}

// PortRead implements hw.Device.
func (d *RTL8139) PortRead(off uint32, size int) uint32 {
	switch {
	case off < R39IDR0+6:
		return readBytes(d.idr[:], off, size)
	case off >= R39MAR0 && off < R39MAR0+8:
		return readBytes(d.mar[:], off-R39MAR0, size)
	case off >= R39TSD0 && off < R39TSD0+16:
		return d.tsd[(off-R39TSD0)/4]
	case off >= R39TSAD0 && off < R39TSAD0+16:
		return d.tsad[(off-R39TSAD0)/4]
	}
	switch off {
	case R39RBSTART:
		return d.rbstart
	case R39CR:
		v := uint32(d.cr)
		if d.rxWrite == uint32(d.capr)%r39RxRingSize {
			v |= R39CRBufEmpty
		}
		return v
	case R39CAPR:
		return uint32(d.capr)
	case R39IMR:
		return uint32(d.imr)
	case R39ISR:
		return uint32(d.isr)
	case R39TCR:
		return d.tcr
	case R39RCR:
		return d.rcr
	case R39CONFIG1:
		return uint32(d.config1)
	case R39MSR:
		return uint32(d.msr)
	}
	return 0
}

// PortWrite implements hw.Device.
func (d *RTL8139) PortWrite(off uint32, size int, v uint32) {
	switch {
	case off < R39IDR0+6:
		writeBytes(d.idr[:], off, size, v)
		return
	case off >= R39MAR0 && off < R39MAR0+8:
		writeBytes(d.mar[:], off-R39MAR0, size, v)
		return
	case off >= R39TSD0 && off < R39TSD0+16:
		i := (off - R39TSD0) / 4
		d.tsd[i] = v
		if v&R39TSDOwn == 0 { // driver cleared OWN: start DMA
			d.transmit(int(i))
		}
		return
	case off >= R39TSAD0 && off < R39TSAD0+16:
		d.tsad[(off-R39TSAD0)/4] = v
		return
	}
	switch off {
	case R39RBSTART:
		d.rbstart = v
		d.rxWrite = 0
	case R39CR:
		d.cr = byte(v)
		if d.cr&R39CRReset != 0 {
			mac := d.mac
			d.Reset()
			d.mac = mac
			d.cr = 0 // reset completes instantly; RST self-clears
		}
	case R39CAPR:
		d.capr = uint16(v)
	case R39IMR:
		d.imr = uint16(v)
		d.updateIRQ()
	case R39ISR:
		d.isr &^= uint16(v)
		d.updateIRQ()
	case R39TCR:
		d.tcr = v
	case R39RCR:
		d.rcr = v
	case R39CONFIG1:
		d.config1 = byte(v)
	case R39MSR:
		d.msr = byte(v)
	}
}

func (d *RTL8139) transmit(i int) {
	if d.cr&R39CRTxEnable == 0 {
		return
	}
	n := int(d.tsd[i] & 0x1FFF)
	if n == 0 || n > MaxFrame {
		return
	}
	frame := make([]byte, n)
	d.mem.ReadMem(d.tsad[i], frame)
	d.tx = append(d.tx, frame)
	d.tsd[i] |= R39TSDOwn | R39TSDTok
	d.isr |= R39IntTOK
	d.updateIRQ()
}

// InjectRX implements Model: the device DMA-writes a 4-byte header
// (status, length including a pseudo-FCS) plus the frame into the
// host receive ring.
func (d *RTL8139) InjectRX(frame []byte) bool {
	if d.cr&R39CRRxEnable == 0 || d.rbstart == 0 ||
		len(frame) < MinFrame || len(frame) > MaxFrame {
		return false
	}
	var mcast [8]byte
	if d.rcr&R39RCRAM != 0 {
		mcast = d.mar
	}
	if !acceptFrame(frame, d.idr, d.rcr&R39RCRAAP != 0, mcast) {
		return false
	}
	total := 4 + len(frame)
	aligned := (total + 3) &^ 3
	// Drop on ring full: distance to CAPR.
	used := (d.rxWrite + r39RxRingSize - uint32(d.capr)) % r39RxRingSize
	if used+uint32(aligned) >= r39RxRingSize {
		return false
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], 1) // ROK
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(frame)+4))
	// WRAP mode: write header+frame contiguously (possibly past the
	// ring end into the slack area); only the pointer wraps.
	d.mem.WriteMem(d.rbstart+d.rxWrite, hdr[:])
	d.mem.WriteMem(d.rbstart+d.rxWrite+4, frame)
	d.rxWrite = (d.rxWrite + uint32(aligned)) % r39RxRingSize
	d.isr |= R39IntROK
	d.updateIRQ()
	return true
}

// TxFrames implements Model.
func (d *RTL8139) TxFrames() [][]byte {
	out := d.tx
	d.tx = nil
	return out
}

// StatusReport implements Model.
func (d *RTL8139) StatusReport() Status {
	return Status{
		MAC:           d.idr,
		Promiscuous:   d.rcr&R39RCRAAP != 0,
		FullDuplex:    d.msr&R39MSRFullDup != 0,
		WOLEnabled:    d.config1&R39Config1PMEn != 0,
		LEDOn:         d.config1&R39Config1LED0 != 0,
		RxEnabled:     d.cr&R39CRRxEnable != 0,
		TxEnabled:     d.cr&R39CRTxEnable != 0,
		MulticastHash: d.mar,
	}
}

// readBytes reads size bytes little-endian from a byte-register file.
func readBytes(regs []byte, off uint32, size int) uint32 {
	var v uint32
	for i := 0; i < size && int(off)+i < len(regs); i++ {
		v |= uint32(regs[int(off)+i]) << (8 * i)
	}
	return v
}

func writeBytes(regs []byte, off uint32, size int, v uint32) {
	for i := 0; i < size && int(off)+i < len(regs); i++ {
		regs[int(off)+i] = byte(v >> (8 * i))
	}
}
