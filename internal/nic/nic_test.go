package nic

import (
	"bytes"
	"testing"

	"revnic/internal/hw"
)

var testMAC = [6]byte{0x02, 0x11, 0x22, 0x33, 0x44, 0x55}

// fakeRAM implements hw.MemBus over a flat buffer.
type fakeRAM struct{ b []byte }

func newFakeRAM() *fakeRAM { return &fakeRAM{b: make([]byte, 1<<20)} }

func (r *fakeRAM) ReadMem(addr uint32, p []byte)  { copy(p, r.b[addr:]) }
func (r *fakeRAM) WriteMem(addr uint32, p []byte) { copy(r.b[addr:], p) }

func mkFrame(dst [6]byte, n int) []byte {
	f := make([]byte, n)
	copy(f, dst[:])
	copy(f[6:], testMAC[:])
	f[12], f[13] = 0x08, 0x00
	for i := 14; i < n; i++ {
		f[i] = byte(i)
	}
	return f
}

func TestAcceptFrame(t *testing.T) {
	var hash [8]byte
	mcast := [6]byte{0x01, 0x00, 0x5E, 0x00, 0x00, 0x01}
	idx := hashIndex(mcast[:])
	hash[idx/8] |= 1 << (idx % 8)

	cases := []struct {
		dst    [6]byte
		prom   bool
		hash   [8]byte
		accept bool
	}{
		{testMAC, false, [8]byte{}, true},
		{BroadcastMAC, false, [8]byte{}, true},
		{[6]byte{0x02, 9, 9, 9, 9, 9}, false, [8]byte{}, false},
		{[6]byte{0x02, 9, 9, 9, 9, 9}, true, [8]byte{}, true},
		{mcast, false, hash, true},
		{mcast, false, [8]byte{}, false},
	}
	for i, tc := range cases {
		f := mkFrame(tc.dst, 60)
		if got := acceptFrame(f, testMAC, tc.prom, tc.hash); got != tc.accept {
			t.Errorf("case %d: accept = %v, want %v", i, got, tc.accept)
		}
	}
	if acceptFrame([]byte{1, 2, 3}, testMAC, true, [8]byte{}) {
		t.Error("runt frame accepted")
	}
}

// exerciseCommon drives any model through TX-like and RX-like flows
// that don't depend on the register interface.
func checkRxFilter(t *testing.T, d Model, name string) {
	t.Helper()
	if ok := d.InjectRX(mkFrame([6]byte{0x02, 9, 9, 9, 9, 9}, 64)); ok {
		t.Errorf("%s: foreign unicast accepted", name)
	}
	if ok := d.InjectRX(mkFrame(BroadcastMAC, 64)); !ok {
		t.Errorf("%s: broadcast dropped", name)
	}
}

func TestRTL8029TxRx(t *testing.T) {
	var line hw.IRQLine
	d := NewRTL8029(&line, testMAC)

	// MAC comes from the PROM via remote DMA.
	d.PortWrite(R29RSARL, 1, 0)
	d.PortWrite(R29RSARH, 1, 0)
	d.PortWrite(R29RBCRL, 1, 6)
	var mac [6]byte
	for i := range mac {
		mac[i] = byte(d.PortRead(R29DATA, 1))
	}
	if mac != testMAC {
		t.Fatalf("PROM MAC = %x", mac)
	}

	// Start, unmask interrupts.
	d.PortWrite(R29CR, 1, R29CRStart)
	d.PortWrite(R29IMR, 1, R29ISRPrx|R29ISRPtx)

	// Transmit: remote-write frame to page 0x40, then TXP.
	frame := mkFrame(BroadcastMAC, 80)
	d.PortWrite(R29RSARL, 1, 0x00)
	d.PortWrite(R29RSARH, 1, 0x40)
	d.PortWrite(R29RBCRL, 1, uint32(len(frame)&0xFF))
	d.PortWrite(R29RBCRH, 1, uint32(len(frame)>>8))
	for _, b := range frame {
		d.PortWrite(R29DATA, 1, uint32(b))
	}
	d.PortWrite(R29TPSR, 1, 0x40)
	d.PortWrite(R29TBCRL, 1, uint32(len(frame)&0xFF))
	d.PortWrite(R29TBCRH, 1, uint32(len(frame)>>8))
	d.PortWrite(R29CR, 1, R29CRStart|R29CRTxp)

	txs := d.TxFrames()
	if len(txs) != 1 || !bytes.Equal(txs[0], frame) {
		t.Fatalf("tx = %d frames", len(txs))
	}
	if !line.Pending() {
		t.Fatal("PTX interrupt not raised")
	}
	d.PortWrite(R29ISR, 1, R29ISRPtx)
	if line.Pending() {
		t.Fatal("ISR W1C did not deassert")
	}

	// Receive: inject, then read back via remote DMA from BNRY page.
	rx := mkFrame(testMAC, 100)
	if !d.InjectRX(rx) {
		t.Fatal("inject failed")
	}
	if !line.Pending() {
		t.Fatal("PRX interrupt not raised")
	}
	bnry := byte(d.PortRead(R29BNRY, 1))
	d.PortWrite(R29RSARL, 1, 0)
	d.PortWrite(R29RSARH, 1, uint32(bnry))
	d.PortWrite(R29RBCRL, 1, 4)
	hdr := make([]byte, 4)
	for i := range hdr {
		hdr[i] = byte(d.PortRead(R29DATA, 1))
	}
	total := int(hdr[2]) | int(hdr[3])<<8
	if total != len(rx)+4 {
		t.Fatalf("rx header length = %d, want %d", total, len(rx)+4)
	}
	got := make([]byte, total-4)
	for i := range got {
		got[i] = byte(d.PortRead(R29DATA, 1))
	}
	if !bytes.Equal(got, rx) {
		t.Fatal("rx payload mismatch")
	}

	checkRxFilter(t, d, "rtl8029")
}

func TestRTL8029RingOverflow(t *testing.T) {
	var line hw.IRQLine
	d := NewRTL8029(&line, testMAC)
	d.PortWrite(R29CR, 1, R29CRStart)
	// Fill the ring without the driver consuming (BNRY fixed).
	n := 0
	for i := 0; i < 200; i++ {
		if d.InjectRX(mkFrame(testMAC, 1500)) {
			n++
		} else {
			break
		}
	}
	if n == 0 || n > 60 {
		t.Fatalf("accepted %d frames before overflow", n)
	}
	if d.PortRead(R29ISR, 1)&R29ISROvw == 0 {
		t.Fatal("overflow bit not set")
	}
}

func TestRTL8139TxRx(t *testing.T) {
	var line hw.IRQLine
	ram := newFakeRAM()
	d := NewRTL8139(&line, ram, testMAC)

	// Reset pulse.
	d.PortWrite(R39CR, 1, R39CRReset)
	if d.PortRead(R39CR, 1)&R39CRReset != 0 {
		t.Fatal("reset did not self-clear")
	}
	// MAC readable from IDR.
	var mac [6]byte
	for i := range mac {
		mac[i] = byte(d.PortRead(uint32(i), 1))
	}
	if mac != testMAC {
		t.Fatalf("IDR MAC = %x", mac)
	}

	d.PortWrite(R39CR, 1, R39CRTxEnable|R39CRRxEnable)
	d.PortWrite(R39IMR, 2, R39IntROK|R39IntTOK)
	d.PortWrite(R39RCR, 4, R39RCRAB)
	d.PortWrite(R39RBSTART, 4, 0x20000)

	// Transmit via descriptor 0: buffer in host RAM.
	frame := mkFrame(BroadcastMAC, 120)
	ram.WriteMem(0x10000, frame)
	d.PortWrite(R39TSAD0, 4, 0x10000)
	d.PortWrite(R39TSD0, 4, uint32(len(frame))) // OWN clear = start
	txs := d.TxFrames()
	if len(txs) != 1 || !bytes.Equal(txs[0], frame) {
		t.Fatal("tx mismatch")
	}
	if d.PortRead(R39TSD0, 4)&R39TSDTok == 0 {
		t.Fatal("TOK not set in TSD")
	}
	if !line.Pending() {
		t.Fatal("TOK IRQ missing")
	}
	d.PortWrite(R39ISR, 2, R39IntTOK)

	// Receive into the ring at RBSTART.
	rx := mkFrame(testMAC, 90)
	if !d.InjectRX(rx) {
		t.Fatal("inject failed")
	}
	hdr := make([]byte, 4)
	ram.ReadMem(0x20000, hdr)
	if hdr[0]&1 != 1 {
		t.Fatal("ROK missing in rx header")
	}
	rlen := int(hdr[2]) | int(hdr[3])<<8
	if rlen != len(rx)+4 {
		t.Fatalf("rx len = %d", rlen)
	}
	got := make([]byte, len(rx))
	ram.ReadMem(0x20004, got)
	if !bytes.Equal(got, rx) {
		t.Fatal("rx payload mismatch")
	}

	// WOL and LED bits observable.
	d.PortWrite(R39CONFIG1, 1, R39Config1PMEn|R39Config1LED0)
	st := d.StatusReport()
	if !st.WOLEnabled || !st.LEDOn {
		t.Error("CONFIG1 bits not reported")
	}
	checkRxFilter(t, d, "rtl8139")
}

func TestPCNetInitTxRx(t *testing.T) {
	var line hw.IRQLine
	ram := newFakeRAM()
	d := NewPCNet(&line, ram, testMAC)

	// APROM holds the MAC.
	var mac [6]byte
	for i := range mac {
		mac[i] = byte(d.PortRead(uint32(i), 1))
	}
	if mac != testMAC {
		t.Fatalf("APROM MAC = %x", mac)
	}

	// Build init block at 0x30000: mode 0, MAC, no multicast,
	// rx ring at 0x31000, tx ring at 0x32000.
	blk := make([]byte, 24)
	copy(blk[2:8], testMAC[:])
	blk[16], blk[17] = 0x00, 0x10 // 0x31000 little-endian
	blk[18] = 0x03
	blk[20], blk[21] = 0x00, 0x20 // 0x32000
	blk[22] = 0x03
	ram.WriteMem(0x30000, blk)

	wcsr := func(n, v uint16) {
		d.PortWrite(PCNRAP, 2, uint32(n))
		d.PortWrite(PCNRDP, 2, uint32(v))
	}
	rcsr := func(n uint16) uint16 {
		d.PortWrite(PCNRAP, 2, uint32(n))
		return uint16(d.PortRead(PCNRDP, 2))
	}
	wcsr(1, 0x0000)
	wcsr(2, 0x0003) // init block at 0x30000
	wcsr(0, PCNCSR0Init|PCNCSR0IENA)
	if rcsr(0)&PCNCSR0IDON == 0 {
		t.Fatal("IDON not set after init")
	}
	if !line.Pending() {
		t.Fatal("IDON IRQ missing")
	}
	wcsr(0, PCNCSR0IDON|PCNCSR0IENA) // ack
	if line.Pending() {
		t.Fatal("IDON ack did not deassert")
	}
	wcsr(0, PCNCSR0Strt|PCNCSR0IENA)

	// Transmit: fill tx descriptor 0.
	frame := mkFrame(BroadcastMAC, 200)
	ram.WriteMem(0x40000, frame)
	desc := make([]byte, 8)
	desc[0], desc[1], desc[2] = 0x00, 0x00, 0x04 // addr 0x40000
	desc[4], desc[5] = 0x00, 0x80                // OWN
	desc[6] = byte(len(frame))
	ram.WriteMem(0x32000, desc)
	wcsr(0, PCNCSR0TDMD|PCNCSR0IENA)
	txs := d.TxFrames()
	if len(txs) != 1 || !bytes.Equal(txs[0], frame) {
		t.Fatal("pcnet tx mismatch")
	}
	if rcsr(0)&PCNCSR0TINT == 0 {
		t.Fatal("TINT missing")
	}
	wcsr(0, PCNCSR0TINT|PCNCSR0IENA)

	// Receive: give the device rx descriptor 0 with a buffer.
	desc = make([]byte, 8)
	desc[0], desc[1], desc[2] = 0x00, 0x00, 0x05 // 0x50000
	desc[4], desc[5] = 0x00, 0x80                // OWN=device
	ram.WriteMem(0x31000, desc)
	rx := mkFrame(testMAC, 150)
	if !d.InjectRX(rx) {
		t.Fatal("inject failed")
	}
	got := make([]byte, len(rx))
	ram.ReadMem(0x50000, got)
	if !bytes.Equal(got, rx) {
		t.Fatal("pcnet rx payload mismatch")
	}
	// Descriptor now driver-owned with the length filled in.
	ram.ReadMem(0x31000, desc)
	if desc[5]&0x80 != 0 {
		t.Fatal("rx OWN not cleared")
	}
	if int(desc[6])|int(desc[7])<<8 != len(rx) {
		t.Fatal("rx length not written")
	}
	if rcsr(0)&PCNCSR0RINT == 0 {
		t.Fatal("RINT missing")
	}
	// Provision rx descriptor 1 so the filter check has a buffer.
	desc = make([]byte, 8)
	desc[0], desc[1], desc[2] = 0x00, 0x00, 0x06 // 0x60000
	desc[4], desc[5] = 0x00, 0x80
	ram.WriteMem(0x31000+8, desc)
	checkRxFilter(t, d, "pcnet")

	// Reading RESET stops the chip.
	d.PortRead(PCNRESET, 2)
	if d.StatusReport().RxEnabled {
		t.Fatal("reset did not stop chip")
	}
}

func TestSMC91C111TxRx(t *testing.T) {
	var line hw.IRQLine
	d := NewSMC91C111(&line, testMAC)

	// MAC in bank 1.
	d.PortWrite(S91BSR, 1, 1)
	var mac [6]byte
	for i := range mac {
		mac[i] = byte(d.PortRead(uint32(i), 1))
	}
	if mac != testMAC {
		t.Fatalf("IAR MAC = %x", mac)
	}

	// Enable TX/RX in bank 0; unmask in bank 2.
	d.PortWrite(S91BSR, 1, 0)
	d.PortWrite(S91TCR, 2, S91TCREnable|S91TCRFullDup)
	d.PortWrite(S91RCR, 2, S91RCREnable)
	d.PortWrite(S91BSR, 1, 2)
	d.PortWrite(S91MSK, 1, S91IntRCV|S91IntTX)

	// Transmit: alloc, write header+data, enqueue.
	frame := mkFrame(BroadcastMAC, 70)
	d.PortWrite(S91MMUCR, 2, S91MMUAlloc)
	pnr := byte(d.PortRead(S91PNR, 1))
	d.PortWrite(S91PNR, 1, uint32(pnr))
	d.PortWrite(S91PTR, 2, 0)
	d.PortWrite(S91DATA, 2, uint32(len(frame)))
	d.PortWrite(S91PTR, 2, 4)
	for _, b := range frame {
		d.PortWrite(S91DATA, 1, uint32(b))
	}
	d.PortWrite(S91MMUCR, 2, S91MMUEnqueue)
	txs := d.TxFrames()
	if len(txs) != 1 || !bytes.Equal(txs[0], frame) {
		t.Fatal("91c111 tx mismatch")
	}
	if !line.Pending() {
		t.Fatal("TX IRQ missing")
	}
	d.PortWrite(S91IST, 1, S91IntTX)
	if line.Pending() {
		t.Fatal("IST ack failed")
	}

	// Receive: inject, read FIFO, copy out, remove.
	rx := mkFrame(testMAC, 64)
	if !d.InjectRX(rx) {
		t.Fatal("inject failed")
	}
	fifo := d.PortRead(S91FIFO, 1)
	if fifo&0x80 != 0 {
		t.Fatal("rx FIFO empty")
	}
	d.PortWrite(S91PNR, 1, fifo)
	d.PortWrite(S91PTR, 2, 0)
	rlen := int(d.PortRead(S91DATA, 2))
	if rlen != len(rx) {
		t.Fatalf("rx len = %d", rlen)
	}
	d.PortWrite(S91PTR, 2, 4)
	got := make([]byte, rlen)
	for i := range got {
		got[i] = byte(d.PortRead(S91DATA, 1))
	}
	if !bytes.Equal(got, rx) {
		t.Fatal("91c111 rx payload mismatch")
	}
	d.PortWrite(S91MMUCR, 2, S91MMURemoveRx)
	if d.PortRead(S91FIFO, 1)&0x80 == 0 {
		t.Fatal("FIFO not empty after remove")
	}
	if line.Pending() {
		t.Fatal("RCV IRQ still pending after remove")
	}

	// LED via CONFIG in bank 1.
	d.PortWrite(S91BSR, 1, 1)
	d.PortWrite(S91CONFIG, 2, S91ConfigLEDA)
	if !d.StatusReport().LEDOn {
		t.Error("LED bit not reported")
	}
	checkRxFilter(t, d, "91c111")
}

func TestStatusReports(t *testing.T) {
	var line hw.IRQLine
	ram := newFakeRAM()
	models := []struct {
		name string
		m    Model
	}{
		{"rtl8029", NewRTL8029(&line, testMAC)},
		{"rtl8139", NewRTL8139(&line, ram, testMAC)},
		{"pcnet", NewPCNet(&line, ram, testMAC)},
		{"91c111", NewSMC91C111(&line, testMAC)},
	}
	for _, tc := range models {
		st := tc.m.StatusReport()
		if st.MAC != testMAC {
			t.Errorf("%s: MAC = %x", tc.name, st.MAC)
		}
		if st.Promiscuous || st.WOLEnabled {
			t.Errorf("%s: fresh device has features enabled", tc.name)
		}
	}
}
