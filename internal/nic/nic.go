// Package nic provides behavioural register-level models of the four
// network interface chips whose Windows drivers the paper reverse
// engineers (Table 1): the Realtek RTL8029 (an NE2000 clone with a
// streaming remote-DMA data port), the Realtek RTL8139 (bus-master
// DMA with per-descriptor transmit registers and an RX ring), the AMD
// PCNet (indirect CSR register file behind an address/data port pair,
// init block and descriptor rings in host memory), and the SMSC
// 91C111 (bank-switched registers with an on-chip packet FIFO and no
// DMA).
//
// The models are the "real hardware" of the reproduction: original
// drivers run against them to produce reference I/O traces, and
// synthesized drivers run against them for the equivalence and
// performance experiments. The registers each model decodes define
// the hardware protocol the corresponding assembly driver implements.
package nic

import "hash/crc32"

// Status is a uniform snapshot of externally observable device state,
// used by the functionality-coverage experiment (Table 2).
type Status struct {
	MAC           [6]byte
	Promiscuous   bool
	FullDuplex    bool
	WOLEnabled    bool
	LEDOn         bool
	RxEnabled     bool
	TxEnabled     bool
	MulticastHash [8]byte
}

// Model is the common interface of all NIC device models, extending
// the raw bus device interface with the frame-level operations the
// test harness and benchmarks need.
type Model interface {
	// InjectRX delivers a frame from the wire to the device. It
	// returns false if the device dropped it (filter, disabled RX,
	// or no buffer space).
	InjectRX(frame []byte) bool
	// TxFrames returns the frames transmitted since the last call,
	// clearing the log.
	TxFrames() [][]byte
	// StatusReport snapshots observable device state.
	StatusReport() Status
}

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// hashIndex computes the standard Ethernet multicast hash bit index:
// the top 6 bits of the CRC-32 of the destination address, as the
// 8390, RTL8139 and PCNet families all do.
func hashIndex(mac []byte) uint {
	crc := crc32.ChecksumIEEE(mac[:6])
	return uint(crc >> 26)
}

// acceptFrame implements the shared receive-filter logic: promiscuous
// accepts everything; otherwise unicast must match the station MAC,
// broadcast is accepted, and multicast must hit the hash filter.
func acceptFrame(frame []byte, mac [6]byte, promiscuous bool, mcastHash [8]byte) bool {
	if len(frame) < 14 {
		return false
	}
	if promiscuous {
		return true
	}
	var dst [6]byte
	copy(dst[:], frame[:6])
	if dst == mac {
		return true
	}
	if dst == BroadcastMAC {
		return true
	}
	if dst[0]&1 == 1 { // multicast bit
		idx := hashIndex(dst[:])
		return mcastHash[idx/8]&(1<<(idx%8)) != 0
	}
	return false
}

// MinFrame and MaxFrame bound legal Ethernet frame sizes (without
// FCS), matching what the drivers enforce.
const (
	MinFrame = 14
	MaxFrame = 1514
)
