package nic

import "revnic/internal/hw"

// SMSC 91C111 register map. The model follows the real chip's
// signature feature: a 16-byte I/O window whose meaning depends on
// the bank select register at offset 0x0E, with an on-chip MMU
// managing packet buffers reached through a pointer/data port pair.
// There is no bus-master DMA and no Wake-on-LAN (Table 2: N/A), and
// the chip drives status LEDs from a config register.
//
//	bank 0: 0x00 TCR, 0x02 RCR
//	bank 1: 0x00..0x05 IAR (station MAC), 0x06 CONFIG
//	bank 2: 0x00 MMUCR, 0x02 PNR, 0x04 FIFO, 0x06 PTR, 0x08 DATA,
//	        0x0A IST (W1C), 0x0C MSK
//	bank 3: 0x00..0x07 MT (multicast table)
//	all banks: 0x0E BSR
const (
	S91BSR = 0x0E

	S91TCR = 0x00 // bank 0
	S91RCR = 0x02 // bank 0

	S91IAR0   = 0x00 // bank 1
	S91CONFIG = 0x06 // bank 1

	S91MMUCR = 0x00 // bank 2
	S91PNR   = 0x02
	S91FIFO  = 0x04
	S91PTR   = 0x06
	S91DATA  = 0x08
	S91IST   = 0x0A
	S91MSK   = 0x0C

	S91MT0 = 0x00 // bank 3
)

// 91C111 TCR bits.
const (
	S91TCREnable  = 1 << 0
	S91TCRFullDup = 1 << 7
)

// 91C111 RCR bits.
const (
	S91RCREnable = 1 << 0
	S91RCRProm   = 1 << 1
)

// 91C111 CONFIG bits.
const (
	S91ConfigLEDA = 1 << 0
)

// 91C111 MMU commands (written to MMUCR).
const (
	S91MMUAlloc    = 1
	S91MMUReset    = 2
	S91MMUEnqueue  = 4
	S91MMURemoveRx = 5
)

// 91C111 interrupt status bits.
const (
	S91IntRCV   = 1 << 0
	S91IntTX    = 1 << 1
	S91IntAlloc = 1 << 3
)

// s91NumPackets is the number of on-chip packet buffers; each holds
// one maximal frame plus a 4-byte control header (length).
const (
	s91NumPackets = 8
	s91PacketSize = 2048
)

// SMC91C111 models the SMSC LAN91C111.
type SMC91C111 struct {
	hw.NopDevice
	line *hw.IRQLine

	bank   byte
	tcr    uint16
	rcr    uint16
	iar    [6]byte
	config uint16
	mt     [8]byte

	mmucr uint16
	pnr   byte // allocated packet number (tx side)
	ptr   uint16
	ist   byte
	msk   byte

	packets   [s91NumPackets][s91PacketSize]byte
	allocated [s91NumPackets]bool
	rxFIFO    []byte // packet numbers queued for the driver

	irqUp bool
	tx    [][]byte
	mac   [6]byte
}

// NewSMC91C111 builds the model with the given station MAC.
func NewSMC91C111(line *hw.IRQLine, mac [6]byte) *SMC91C111 {
	d := &SMC91C111{NopDevice: hw.NopDevice{DevName: "smc91c111"}, line: line, mac: mac}
	d.Reset()
	return d
}

// Reset implements hw.Device.
func (d *SMC91C111) Reset() {
	d.bank = 0
	d.tcr, d.rcr = 0, 0
	d.iar = d.mac
	d.config = 0
	d.mt = [8]byte{}
	d.mmucr, d.pnr, d.ptr = 0, 0, 0
	d.ist, d.msk = 0, 0
	d.allocated = [s91NumPackets]bool{}
	d.rxFIFO = nil
	d.tx = nil
	d.updateIRQ()
}

func (d *SMC91C111) updateIRQ() {
	up := d.ist&d.msk != 0
	if up && !d.irqUp {
		d.line.Assert()
	} else if !up && d.irqUp {
		d.line.Deassert()
	}
	d.irqUp = up
}

// PortRead implements hw.Device.
func (d *SMC91C111) PortRead(off uint32, size int) uint32 {
	if off == S91BSR {
		return uint32(d.bank)
	}
	switch d.bank {
	case 0:
		switch off {
		case S91TCR:
			return uint32(d.tcr)
		case S91RCR:
			return uint32(d.rcr)
		}
	case 1:
		if off < 6 {
			return readBytes(d.iar[:], off, size)
		}
		if off == S91CONFIG {
			return uint32(d.config)
		}
	case 2:
		switch off {
		case S91MMUCR:
			return uint32(d.mmucr)
		case S91PNR:
			return uint32(d.pnr)
		case S91FIFO:
			// Low byte: head of RX FIFO; 0x80 flag when empty.
			if len(d.rxFIFO) == 0 {
				return 0x80
			}
			return uint32(d.rxFIFO[0])
		case S91PTR:
			return uint32(d.ptr)
		case S91DATA:
			return d.dataRead(size)
		case S91IST:
			return uint32(d.ist)
		case S91MSK:
			return uint32(d.msk)
		}
	case 3:
		if off < 8 {
			return readBytes(d.mt[:], off, size)
		}
	}
	return 0
}

// PortWrite implements hw.Device.
func (d *SMC91C111) PortWrite(off uint32, size int, v uint32) {
	if off == S91BSR {
		d.bank = byte(v) & 3
		return
	}
	switch d.bank {
	case 0:
		switch off {
		case S91TCR:
			d.tcr = uint16(v)
		case S91RCR:
			d.rcr = uint16(v)
		}
	case 1:
		if off < 6 {
			writeBytes(d.iar[:], off, size, v)
		} else if off == S91CONFIG {
			d.config = uint16(v)
		}
	case 2:
		switch off {
		case S91MMUCR:
			d.mmuCommand(uint16(v))
		case S91PNR:
			d.pnr = byte(v)
		case S91PTR:
			d.ptr = uint16(v)
		case S91DATA:
			d.dataWrite(v, size)
		case S91IST:
			d.ist &^= byte(v)
			d.updateIRQ()
		case S91MSK:
			d.msk = byte(v)
			d.updateIRQ()
		}
	case 3:
		if off < 8 {
			writeBytes(d.mt[:], off, size, v)
		}
	}
}

// current packet selected for DATA access: the TX packet in PNR, or
// the head of the RX FIFO when the driver reads a received frame.
// Real hardware selects via PNR with an RX/TX bit; the model uses
// PNR directly (the driver copies the FIFO number into PNR first).
func (d *SMC91C111) dataRead(size int) uint32 {
	var v uint32
	p := int(d.pnr) % s91NumPackets
	for i := 0; i < size; i++ {
		if int(d.ptr) < s91PacketSize {
			v |= uint32(d.packets[p][d.ptr]) << (8 * i)
		}
		d.ptr++
	}
	return v
}

func (d *SMC91C111) dataWrite(v uint32, size int) {
	p := int(d.pnr) % s91NumPackets
	for i := 0; i < size; i++ {
		if int(d.ptr) < s91PacketSize {
			d.packets[p][d.ptr] = byte(v >> (8 * i))
		}
		d.ptr++
	}
}

func (d *SMC91C111) mmuCommand(cmd uint16) {
	d.mmucr = cmd
	switch cmd {
	case S91MMUAlloc:
		for i := range d.allocated {
			if !d.allocated[i] {
				d.allocated[i] = true
				d.pnr = byte(i)
				d.ist |= S91IntAlloc
				d.updateIRQ()
				return
			}
		}
		// Allocation failure: no interrupt, driver polls.
	case S91MMUReset:
		d.allocated = [s91NumPackets]bool{}
		d.rxFIFO = nil
	case S91MMUEnqueue:
		d.transmit(int(d.pnr) % s91NumPackets)
	case S91MMURemoveRx:
		if len(d.rxFIFO) > 0 {
			d.allocated[d.rxFIFO[0]] = false
			d.rxFIFO = d.rxFIFO[1:]
			if len(d.rxFIFO) == 0 {
				d.ist &^= S91IntRCV
				d.updateIRQ()
			}
		}
	}
}

// Packet buffer layout: bytes 0-1 little-endian frame length, frame
// data from byte 4 (mirroring the chip's status+count header).
func (d *SMC91C111) transmit(p int) {
	if d.tcr&S91TCREnable == 0 {
		return
	}
	n := int(d.packets[p][0]) | int(d.packets[p][1])<<8
	if n < MinFrame || n > MaxFrame {
		return
	}
	frame := make([]byte, n)
	copy(frame, d.packets[p][4:4+n])
	d.tx = append(d.tx, frame)
	d.allocated[p] = false
	d.ist |= S91IntTX
	d.updateIRQ()
}

// InjectRX implements Model: the frame is stored in a fresh on-chip
// packet buffer and its number pushed onto the RX FIFO.
func (d *SMC91C111) InjectRX(frame []byte) bool {
	if d.rcr&S91RCREnable == 0 || len(frame) < MinFrame || len(frame) > MaxFrame {
		return false
	}
	if !acceptFrame(frame, d.iar, d.rcr&S91RCRProm != 0, d.mt) {
		return false
	}
	slot := -1
	for i := range d.allocated {
		if !d.allocated[i] {
			slot = i
			break
		}
	}
	if slot < 0 {
		return false
	}
	d.allocated[slot] = true
	d.packets[slot][0] = byte(len(frame))
	d.packets[slot][1] = byte(len(frame) >> 8)
	copy(d.packets[slot][4:], frame)
	d.rxFIFO = append(d.rxFIFO, byte(slot))
	d.ist |= S91IntRCV
	d.updateIRQ()
	return true
}

// TxFrames implements Model.
func (d *SMC91C111) TxFrames() [][]byte {
	out := d.tx
	d.tx = nil
	return out
}

// StatusReport implements Model.
func (d *SMC91C111) StatusReport() Status {
	return Status{
		MAC:           d.iar,
		Promiscuous:   d.rcr&S91RCRProm != 0,
		FullDuplex:    d.tcr&S91TCRFullDup != 0,
		LEDOn:         d.config&S91ConfigLEDA != 0,
		RxEnabled:     d.rcr&S91RCREnable != 0,
		TxEnabled:     d.tcr&S91TCREnable != 0,
		MulticastHash: d.mt,
	}
}
