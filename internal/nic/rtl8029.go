package nic

import "revnic/internal/hw"

// RTL8029 register offsets within the port window. The model follows
// the NE2000/8390 architecture: a command register, an interrupt
// status register with write-1-to-clear semantics, a remote-DMA
// engine (RSAR/RBCR + streaming data port) that is the only path to
// the 16 KB on-chip packet memory, and a receive ring managed by the
// BNRY/CURR page pointers. There is no bus-master DMA and no
// Wake-on-LAN, matching Table 2 (N/A entries).
const (
	R29CR    = 0x00 // command
	R29ISR   = 0x01 // interrupt status (W1C)
	R29IMR   = 0x02 // interrupt mask
	R29RCR   = 0x03 // receive config
	R29TCR   = 0x04 // transmit config
	R29TPSR  = 0x05 // transmit page start
	R29TBCRL = 0x06 // transmit byte count low
	R29TBCRH = 0x07
	R29RSARL = 0x08 // remote start address
	R29RSARH = 0x09
	R29RBCRL = 0x0A // remote byte count
	R29RBCRH = 0x0B
	R29BNRY  = 0x0C // ring boundary (driver read pointer, page)
	R29CURR  = 0x0D // ring current (device write pointer, page)
	R29MAR0  = 0x10 // multicast hash, 8 bytes
	R29DATA  = 0x18 // remote DMA data port
)

// RTL8029 CR bits.
const (
	R29CRStop  = 1 << 0
	R29CRStart = 1 << 1
	R29CRTxp   = 1 << 2
)

// RTL8029 ISR bits.
const (
	R29ISRPrx = 1 << 0 // packet received
	R29ISRPtx = 1 << 1 // packet transmitted
	R29ISROvw = 1 << 3 // ring overflow
)

// RTL8029 RCR bits.
const (
	R29RCRProm = 1 << 0
	R29RCRAM   = 1 << 1
)

// RTL8029 TCR bits.
const (
	R29TCRFdx = 1 << 0
)

// On-chip memory geometry: 16 KB organized in 256-byte pages.
// Pages 0x40..0x45 are the transmit area, 0x46..0x7F the receive
// ring. Remote addresses below promSize read the station PROM.
const (
	r29PageSize  = 256
	r29FirstPage = 0x40
	r29TxPages   = 6
	r29RxStart   = r29FirstPage + r29TxPages
	r29RxStop    = 0x80
	r29PromSize  = 0x20
)

// RTL8029 models the Realtek RTL8029 (NE2000 clone).
type RTL8029 struct {
	hw.NopDevice
	line *hw.IRQLine

	mem  [16 * 1024]byte
	prom [r29PromSize]byte

	cr, isr, imr, rcr, tcr byte
	tpsr, bnry, curr       byte
	tbcr, rsar, rbcr       uint16
	mar                    [8]byte
	irqUp                  bool
	tx                     [][]byte
	// LEDActivity pulses on TX/RX; Table 2 lists LED as N/T for
	// this chip, but the model keeps the bit for completeness.
	ledActivity bool
}

// NewRTL8029 builds a model with the given station MAC.
func NewRTL8029(line *hw.IRQLine, mac [6]byte) *RTL8029 {
	d := &RTL8029{NopDevice: hw.NopDevice{DevName: "rtl8029"}, line: line}
	copy(d.prom[:], mac[:])
	d.Reset()
	return d
}

// Reset implements hw.Device.
func (d *RTL8029) Reset() {
	d.cr = R29CRStop
	d.isr, d.imr, d.rcr, d.tcr = 0, 0, 0, 0
	d.tpsr, d.tbcr, d.rsar, d.rbcr = 0, 0, 0, 0
	d.bnry, d.curr = r29RxStart, r29RxStart
	d.mar = [8]byte{}
	d.tx = nil
	d.updateIRQ()
}

func (d *RTL8029) updateIRQ() {
	up := d.isr&d.imr != 0
	if up && !d.irqUp {
		d.line.Assert()
	} else if !up && d.irqUp {
		d.line.Deassert()
	}
	d.irqUp = up
}

// PortRead implements hw.Device.
func (d *RTL8029) PortRead(off uint32, size int) uint32 {
	switch {
	case off == R29DATA:
		return d.remoteRead(size)
	case off >= R29MAR0 && off < R29MAR0+8:
		return uint32(d.mar[off-R29MAR0])
	}
	switch off {
	case R29CR:
		return uint32(d.cr)
	case R29ISR:
		return uint32(d.isr)
	case R29IMR:
		return uint32(d.imr)
	case R29RCR:
		return uint32(d.rcr)
	case R29TCR:
		return uint32(d.tcr)
	case R29TPSR:
		return uint32(d.tpsr)
	case R29BNRY:
		return uint32(d.bnry)
	case R29CURR:
		return uint32(d.curr)
	case R29RSARL:
		return uint32(d.rsar & 0xFF)
	case R29RSARH:
		return uint32(d.rsar >> 8)
	case R29RBCRL:
		return uint32(d.rbcr & 0xFF)
	case R29RBCRH:
		return uint32(d.rbcr >> 8)
	}
	return 0
}

// PortWrite implements hw.Device.
func (d *RTL8029) PortWrite(off uint32, size int, v uint32) {
	b := byte(v)
	switch {
	case off == R29DATA:
		d.remoteWrite(v, size)
		return
	case off >= R29MAR0 && off < R29MAR0+8:
		d.mar[off-R29MAR0] = b
		return
	}
	switch off {
	case R29CR:
		d.cr = b
		if b&R29CRTxp != 0 {
			d.transmit()
			d.cr &^= R29CRTxp
		}
	case R29ISR:
		d.isr &^= b // write 1 to clear
		d.updateIRQ()
	case R29IMR:
		d.imr = b
		d.updateIRQ()
	case R29RCR:
		d.rcr = b
	case R29TCR:
		d.tcr = b
	case R29TPSR:
		d.tpsr = b
	case R29TBCRL:
		d.tbcr = d.tbcr&0xFF00 | uint16(b)
	case R29TBCRH:
		d.tbcr = d.tbcr&0x00FF | uint16(b)<<8
	case R29RSARL:
		d.rsar = d.rsar&0xFF00 | uint16(b)
	case R29RSARH:
		d.rsar = d.rsar&0x00FF | uint16(b)<<8
	case R29RBCRL:
		d.rbcr = d.rbcr&0xFF00 | uint16(b)
	case R29RBCRH:
		d.rbcr = d.rbcr&0x00FF | uint16(b)<<8
	case R29BNRY:
		d.bnry = b
	case R29CURR:
		d.curr = b
	}
}

// remoteRead streams from PROM or packet memory through the data
// port, advancing RSAR and consuming RBCR.
func (d *RTL8029) remoteRead(size int) uint32 {
	var v uint32
	for i := 0; i < size; i++ {
		var byteV byte
		addr := d.rsar
		if addr < r29PromSize {
			byteV = d.prom[addr]
		} else if idx := int(addr) - r29FirstPage*r29PageSize; idx >= 0 && idx < len(d.mem) {
			byteV = d.mem[idx]
		}
		v |= uint32(byteV) << (8 * i)
		d.advanceRSAR()
	}
	return v
}

// advanceRSAR steps the remote DMA address, wrapping inside the
// receive ring like the 8390's send-packet/remote engine does, so a
// frame spanning the ring end streams out contiguously.
func (d *RTL8029) advanceRSAR() {
	d.rsar++
	if d.rsar >= r29RxStop*r29PageSize {
		d.rsar = r29RxStart * r29PageSize
	}
	if d.rbcr > 0 {
		d.rbcr--
	}
}

func (d *RTL8029) remoteWrite(v uint32, size int) {
	for i := 0; i < size; i++ {
		addr := d.rsar
		if idx := int(addr) - r29FirstPage*r29PageSize; idx >= 0 && idx < len(d.mem) {
			d.mem[idx] = byte(v >> (8 * i))
		}
		d.advanceRSAR()
	}
}

func (d *RTL8029) transmit() {
	if d.cr&R29CRStart == 0 {
		return
	}
	start := int(d.tpsr)*r29PageSize - r29FirstPage*r29PageSize
	n := int(d.tbcr)
	if start < 0 || start+n > len(d.mem) || n == 0 {
		return
	}
	frame := make([]byte, n)
	copy(frame, d.mem[start:start+n])
	d.tx = append(d.tx, frame)
	d.ledActivity = true
	d.isr |= R29ISRPtx
	d.updateIRQ()
}

// InjectRX implements Model: the frame lands in the receive ring with
// a 4-byte 8390-style header (status, next page, length).
func (d *RTL8029) InjectRX(frame []byte) bool {
	if d.cr&R29CRStart == 0 || len(frame) < MinFrame || len(frame) > MaxFrame {
		return false
	}
	var mcast [8]byte
	if d.rcr&R29RCRAM != 0 {
		mcast = d.mar
	}
	var mac [6]byte
	copy(mac[:], d.prom[:6])
	if !acceptFrame(frame, mac, d.rcr&R29RCRProm != 0, mcast) {
		return false
	}
	total := len(frame) + 4
	pages := (total + r29PageSize - 1) / r29PageSize
	// Check ring space (leave one page gap like the real chip).
	free := int(d.bnry) - int(d.curr)
	if free <= 0 {
		free += r29RxStop - r29RxStart
	}
	if pages >= free {
		d.isr |= R29ISROvw
		d.updateIRQ()
		return false
	}
	// Write header + frame, wrapping page by page.
	next := d.curr
	for i := 0; i < pages; i++ {
		next++
		if next >= r29RxStop {
			next = r29RxStart
		}
	}
	hdr := []byte{1, next, byte(total), byte(total >> 8)}
	d.ringWrite(int(d.curr)*r29PageSize, append(hdr, frame...))
	d.curr = next
	d.ledActivity = true
	d.isr |= R29ISRPrx
	d.updateIRQ()
	return true
}

// ringWrite copies data into packet memory starting at the absolute
// on-chip address, wrapping within the receive ring.
func (d *RTL8029) ringWrite(addr int, data []byte) {
	for _, b := range data {
		idx := addr - r29FirstPage*r29PageSize
		if idx >= 0 && idx < len(d.mem) {
			d.mem[idx] = b
		}
		addr++
		if addr >= r29RxStop*r29PageSize {
			addr = r29RxStart * r29PageSize
		}
	}
}

// TxFrames implements Model.
func (d *RTL8029) TxFrames() [][]byte {
	out := d.tx
	d.tx = nil
	return out
}

// StatusReport implements Model.
func (d *RTL8029) StatusReport() Status {
	var s Status
	copy(s.MAC[:], d.prom[:6])
	s.Promiscuous = d.rcr&R29RCRProm != 0
	s.FullDuplex = d.tcr&R29TCRFdx != 0
	s.RxEnabled = d.cr&R29CRStart != 0
	s.TxEnabled = d.cr&R29CRStart != 0
	s.LEDOn = d.ledActivity
	s.MulticastHash = d.mar
	return s
}
