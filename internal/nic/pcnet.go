package nic

import (
	"encoding/binary"

	"revnic/internal/hw"
)

// PCNet register offsets. The model follows the AMD Am79C970
// architecture: the station address PROM is directly readable, but
// all control state lives in CSRs reached indirectly by writing the
// register number to RAP and then accessing RDP — the exact
// "write a register address on one port and read the value on
// another" pattern §3.2 of the paper singles out for its
// function-model heuristic. Initialization happens through an init
// block in host memory whose address is given in CSR1/CSR2, and
// packet I/O goes through OWN-bit descriptor rings with bus-master
// DMA.
const (
	PCNAPROM = 0x00 // station address PROM, 16 bytes
	PCNRDP   = 0x10 // CSR data port (16-bit)
	PCNRAP   = 0x12 // register address port
	PCNRESET = 0x14 // reading resets the chip
	PCNBDP   = 0x16 // BCR data port
)

// PCNet CSR0 bits.
const (
	PCNCSR0Init = 1 << 0
	PCNCSR0Strt = 1 << 1
	PCNCSR0Stop = 1 << 2
	PCNCSR0TDMD = 1 << 3
	PCNCSR0IENA = 1 << 6
	PCNCSR0IDON = 1 << 8
	PCNCSR0TINT = 1 << 9
	PCNCSR0RINT = 1 << 10
)

// PCNet CSR15 (mode) bits.
const (
	PCNModeProm = 1 << 15
)

// PCNet BCR9 bits.
const (
	PCNBCR9FullDup = 1 << 0
)

// pcnRingLen is the fixed descriptor ring length of the model.
const pcnRingLen = 4

// pcnDescSize is the size of one ring descriptor: buffer physical
// address (4 bytes), flags (2, bit15 = OWN), length (2).
const pcnDescSize = 8

// pcnDescOwn marks a descriptor owned by the device.
const pcnDescOwn = 0x8000

// PCNet models the AMD PCNet (Am79C970A).
type PCNet struct {
	hw.NopDevice
	line *hw.IRQLine
	mem  hw.MemBus

	aprom [16]byte
	rap   uint16
	csr   [128]uint16
	bcr   [32]uint16

	mac         [6]byte // effective station address (from init block)
	ladrf       [8]byte // multicast hash from init block
	mode        uint16  // from init block
	rdra        uint32  // receive ring base
	tdra        uint32  // transmit ring base
	rxIdx       int
	txIdx       int
	started     bool
	irqUp       bool
	tx          [][]byte
	ledActivity bool
}

// NewPCNet builds the model; mem provides DMA access to host memory.
func NewPCNet(line *hw.IRQLine, mem hw.MemBus, mac [6]byte) *PCNet {
	d := &PCNet{NopDevice: hw.NopDevice{DevName: "pcnet"}, line: line, mem: mem}
	copy(d.aprom[:], mac[:])
	d.Reset()
	return d
}

// Reset implements hw.Device.
func (d *PCNet) Reset() {
	d.rap = 0
	d.csr = [128]uint16{}
	d.bcr = [32]uint16{}
	d.csr[0] = PCNCSR0Stop
	d.mac = [6]byte{}
	d.ladrf = [8]byte{}
	d.mode = 0
	d.rdra, d.tdra = 0, 0
	d.rxIdx, d.txIdx = 0, 0
	d.started = false
	d.tx = nil
	d.updateIRQ()
}

func (d *PCNet) updateIRQ() {
	pending := d.csr[0] & (PCNCSR0IDON | PCNCSR0TINT | PCNCSR0RINT)
	up := d.csr[0]&PCNCSR0IENA != 0 && pending != 0
	if up && !d.irqUp {
		d.line.Assert()
	} else if !up && d.irqUp {
		d.line.Deassert()
	}
	d.irqUp = up
}

// PortRead implements hw.Device.
func (d *PCNet) PortRead(off uint32, size int) uint32 {
	switch {
	case off < 16:
		return readBytes(d.aprom[:], off, size)
	case off == PCNRDP:
		return uint32(d.readCSR(d.rap))
	case off == PCNRAP:
		return uint32(d.rap)
	case off == PCNRESET:
		d.Reset()
		return 0
	case off == PCNBDP:
		return uint32(d.bcr[d.rap%32])
	}
	return 0
}

// PortWrite implements hw.Device.
func (d *PCNet) PortWrite(off uint32, size int, v uint32) {
	switch off {
	case PCNRDP:
		d.writeCSR(d.rap, uint16(v))
	case PCNRAP:
		d.rap = uint16(v) % 128
	case PCNBDP:
		d.bcr[d.rap%32] = uint16(v)
	}
}

func (d *PCNet) readCSR(n uint16) uint16 { return d.csr[n%128] }

func (d *PCNet) writeCSR(n uint16, v uint16) {
	n %= 128
	switch n {
	case 0:
		// Bits IDON/TINT/RINT are write-1-to-clear; control bits are
		// levels the driver sets.
		w1c := v & (PCNCSR0IDON | PCNCSR0TINT | PCNCSR0RINT)
		d.csr[0] &^= w1c
		ctl := v &^ (PCNCSR0IDON | PCNCSR0TINT | PCNCSR0RINT)
		d.csr[0] = d.csr[0]&(PCNCSR0IDON|PCNCSR0TINT|PCNCSR0RINT) | ctl
		if v&PCNCSR0Init != 0 {
			d.loadInitBlock()
		}
		if v&PCNCSR0Strt != 0 {
			d.started = true
			d.csr[0] &^= PCNCSR0Stop
		}
		if v&PCNCSR0Stop != 0 {
			d.started = false
		}
		if v&PCNCSR0TDMD != 0 {
			d.pollTx()
			d.csr[0] &^= PCNCSR0TDMD
		}
		d.updateIRQ()
	default:
		d.csr[n] = v
		if n == 15 {
			d.mode = v
		}
	}
}

// initBlock layout in host memory (20 bytes):
//
//	+0  mode (u16)
//	+2  station MAC (6 bytes)
//	+8  multicast hash LADRF (8 bytes)
//	+16 rdra (u32): receive descriptor ring physical address
//	+20 tdra (u32): transmit descriptor ring physical address
func (d *PCNet) loadInitBlock() {
	addr := uint32(d.csr[1]) | uint32(d.csr[2])<<16
	var blk [24]byte
	d.mem.ReadMem(addr, blk[:])
	d.mode = binary.LittleEndian.Uint16(blk[0:])
	d.csr[15] = d.mode
	copy(d.mac[:], blk[2:8])
	copy(d.ladrf[:], blk[8:16])
	d.rdra = binary.LittleEndian.Uint32(blk[16:20])
	d.tdra = binary.LittleEndian.Uint32(blk[20:24])
	d.rxIdx, d.txIdx = 0, 0
	d.csr[0] |= PCNCSR0IDON
	d.updateIRQ()
}

func (d *PCNet) readDesc(base uint32, i int) (addr uint32, flags, length uint16) {
	var b [pcnDescSize]byte
	d.mem.ReadMem(base+uint32(i*pcnDescSize), b[:])
	return binary.LittleEndian.Uint32(b[0:]),
		binary.LittleEndian.Uint16(b[4:]),
		binary.LittleEndian.Uint16(b[6:])
}

func (d *PCNet) writeDescFlagsLen(base uint32, i int, flags, length uint16) {
	var b [4]byte
	binary.LittleEndian.PutUint16(b[0:], flags)
	binary.LittleEndian.PutUint16(b[2:], length)
	d.mem.WriteMem(base+uint32(i*pcnDescSize)+4, b[:])
}

// pollTx walks the transmit ring from txIdx, transmitting every
// descriptor the driver has handed over (OWN set).
func (d *PCNet) pollTx() {
	if !d.started || d.tdra == 0 {
		return
	}
	for n := 0; n < pcnRingLen; n++ {
		addr, flags, length := d.readDesc(d.tdra, d.txIdx)
		if flags&pcnDescOwn == 0 {
			return
		}
		if int(length) > 0 && int(length) <= MaxFrame {
			frame := make([]byte, length)
			d.mem.ReadMem(addr, frame)
			d.tx = append(d.tx, frame)
			d.ledActivity = true
		}
		d.writeDescFlagsLen(d.tdra, d.txIdx, flags&^pcnDescOwn, length)
		d.txIdx = (d.txIdx + 1) % pcnRingLen
		d.csr[0] |= PCNCSR0TINT
	}
	d.updateIRQ()
}

// InjectRX implements Model: the frame is DMA-written to the next
// device-owned receive descriptor.
func (d *PCNet) InjectRX(frame []byte) bool {
	if !d.started || d.rdra == 0 || len(frame) < MinFrame || len(frame) > MaxFrame {
		return false
	}
	if !acceptFrame(frame, d.mac, d.mode&PCNModeProm != 0, d.ladrf) {
		return false
	}
	addr, flags, _ := d.readDesc(d.rdra, d.rxIdx)
	if flags&pcnDescOwn == 0 {
		return false // no buffer available
	}
	d.mem.WriteMem(addr, frame)
	d.writeDescFlagsLen(d.rdra, d.rxIdx, flags&^pcnDescOwn, uint16(len(frame)))
	d.rxIdx = (d.rxIdx + 1) % pcnRingLen
	d.ledActivity = true
	d.csr[0] |= PCNCSR0RINT
	d.updateIRQ()
	return true
}

// TxFrames implements Model.
func (d *PCNet) TxFrames() [][]byte {
	out := d.tx
	d.tx = nil
	return out
}

// StatusReport implements Model.
func (d *PCNet) StatusReport() Status {
	mac := d.mac
	if mac == ([6]byte{}) {
		copy(mac[:], d.aprom[:6])
	}
	return Status{
		MAC:           mac,
		Promiscuous:   d.mode&PCNModeProm != 0,
		FullDuplex:    d.bcr[9]&PCNBCR9FullDup != 0,
		RxEnabled:     d.started,
		TxEnabled:     d.started,
		LEDOn:         d.ledActivity,
		MulticastHash: d.ladrf,
	}
}
