// Package vm implements the concrete virtual machine in which guest
// drivers execute: CPU, RAM, translation-block dispatch, interrupt
// delivery, and interception of OS API call gates.
//
// The concrete VM serves three roles in the reproduction: it runs the
// original binary drivers against the behavioural NIC models ("real
// hardware") to record reference I/O traces; it is the concrete
// execution domain of selective symbolic execution (the OS side); and
// it hosts the synthesized drivers for the equivalence checks of §5.2.
package vm

import (
	"encoding/binary"
	"fmt"

	"revnic/internal/hw"
	"revnic/internal/ir"
	"revnic/internal/isa"
)

// MagicReturn is the sentinel return address pushed when the OS model
// invokes a driver entry point; reaching it ends the invocation.
const MagicReturn = 0xFFFFFFF0

// OSCallHandler is invoked when the guest calls an OS API gate. The
// handler must complete the call by invoking Machine.APIReturn.
type OSCallHandler func(m *Machine, index uint32) error

// IOTap observes every hardware I/O operation the CPU performs; the
// wiretap and the equivalence checker register taps.
type IOTap func(port bool, write bool, addr uint32, size int, value uint32)

// Machine is a concrete guest machine.
type Machine struct {
	RAM  []byte
	Regs [isa.NumRegs]uint32
	PC   uint32

	Bus *hw.Bus
	// OSCall intercepts API-gate calls; nil faults them.
	OSCall OSCallHandler
	// IntVector is the interrupt handler address, 0 = none installed.
	IntVector uint32
	// IntEnabled gates interrupt delivery.
	IntEnabled bool

	Halted bool
	Cycles uint64
	// Blocks counts executed translation blocks.
	Blocks uint64

	cache *ir.Cache
	taps  []IOTap
	inISR bool
}

// New returns a machine with zeroed RAM attached to bus.
func New(bus *hw.Bus) *Machine {
	m := &Machine{RAM: make([]byte, hw.RAMSize), Bus: bus}
	m.cache = ir.NewCache(m)
	return m
}

// AddIOTap registers an observer of hardware I/O.
func (m *Machine) AddIOTap(t IOTap) { m.taps = append(m.taps, t) }

func (m *Machine) tapIO(port, write bool, addr uint32, size int, v uint32) {
	for _, t := range m.taps {
		t(port, write, addr, size, v)
	}
}

// LoadImage copies a program image into RAM at its base address.
func (m *Machine) LoadImage(p *isa.Program) error {
	if int(p.Base)+len(p.Code) > len(m.RAM) {
		return fmt.Errorf("vm: image at %#x size %d exceeds RAM", p.Base, len(p.Code))
	}
	copy(m.RAM[p.Base:], p.Code)
	m.cache.Flush()
	return nil
}

// FetchInstr implements ir.Reader over guest RAM.
func (m *Machine) FetchInstr(addr uint32) (isa.Instr, error) {
	if int(addr)+isa.InstrSize > len(m.RAM) {
		return isa.Instr{}, fmt.Errorf("vm: instruction fetch outside RAM at %#x", addr)
	}
	return isa.Decode(m.RAM[addr:])
}

// ReadMem implements hw.MemBus for device DMA.
func (m *Machine) ReadMem(addr uint32, p []byte) {
	if int(addr)+len(p) <= len(m.RAM) {
		copy(p, m.RAM[addr:])
	}
}

// WriteMem implements hw.MemBus for device DMA.
func (m *Machine) WriteMem(addr uint32, p []byte) {
	if int(addr)+len(p) <= len(m.RAM) {
		copy(m.RAM[addr:], p)
	}
}

// Read reads size bytes of guest memory, routing MMIO to the bus.
func (m *Machine) Read(addr uint32, size int) (uint32, error) {
	if hw.IsMMIO(addr) {
		v := m.Bus.MMIORead(addr, size)
		m.tapIO(false, false, addr, size, v)
		return v, nil
	}
	if int(addr)+size > len(m.RAM) {
		return 0, fmt.Errorf("vm: memory read outside RAM at %#x", addr)
	}
	switch size {
	case 1:
		return uint32(m.RAM[addr]), nil
	case 2:
		return uint32(binary.LittleEndian.Uint16(m.RAM[addr:])), nil
	case 4:
		return binary.LittleEndian.Uint32(m.RAM[addr:]), nil
	}
	return 0, fmt.Errorf("vm: invalid read size %d", size)
}

// Write writes size bytes of guest memory, routing MMIO to the bus.
func (m *Machine) Write(addr uint32, size int, v uint32) error {
	if hw.IsMMIO(addr) {
		m.Bus.MMIOWrite(addr, size, v)
		m.tapIO(false, true, addr, size, v)
		return nil
	}
	if int(addr)+size > len(m.RAM) {
		return fmt.Errorf("vm: memory write outside RAM at %#x", addr)
	}
	switch size {
	case 1:
		m.RAM[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.RAM[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.RAM[addr:], v)
	default:
		return fmt.Errorf("vm: invalid write size %d", size)
	}
	return nil
}

// Read32 is a convenience wrapper for 32-bit reads.
func (m *Machine) Read32(addr uint32) uint32 {
	v, _ := m.Read(addr, 4)
	return v
}

// Write32 is a convenience wrapper for 32-bit writes.
func (m *Machine) Write32(addr, v uint32) { _ = m.Write(addr, 4, v) }

// Push pushes v on the guest stack.
func (m *Machine) Push(v uint32) error {
	m.Regs[isa.SP] -= 4
	return m.Write(m.Regs[isa.SP], 4, v)
}

// Pop pops the top of the guest stack.
func (m *Machine) Pop() (uint32, error) {
	v, err := m.Read(m.Regs[isa.SP], 4)
	m.Regs[isa.SP] += 4
	return v, err
}

// Arg returns the i-th (0-based) stack argument of the current API
// call or entry-point invocation: [sp+4] is argument 0 (sp points at
// the return address).
func (m *Machine) Arg(i int) uint32 {
	return m.Read32(m.Regs[isa.SP] + 4 + uint32(i)*4)
}

// APIReturn completes an intercepted OS API call: sets the return
// value, pops the return address and nargs stack arguments (stdcall).
func (m *Machine) APIReturn(ret uint32, nargs int) error {
	m.Regs[isa.R0] = ret
	ra, err := m.Pop()
	if err != nil {
		return err
	}
	m.Regs[isa.SP] += uint32(nargs) * 4
	m.PC = ra
	return nil
}

func (m *Machine) src2(in isa.Instr) uint32 {
	if in.HasImmOperand() {
		return in.Imm
	}
	return m.Regs[in.Rs2]
}

func condTrue(c isa.Cond, a, b uint32) bool {
	switch c {
	case isa.EQ:
		return a == b
	case isa.NE:
		return a != b
	case isa.LT:
		return int32(a) < int32(b)
	case isa.GE:
		return int32(a) >= int32(b)
	case isa.LTU:
		return a < b
	case isa.GEU:
		return a >= b
	}
	panic("vm: bad condition")
}

// StepBlock executes one translation block (or delivers one pending
// interrupt). It returns the block executed, or nil when an interrupt
// was delivered or the machine is halted.
func (m *Machine) StepBlock() (*ir.Block, error) {
	if m.Halted {
		return nil, nil
	}
	// Interrupt delivery between blocks, like QEMU between TBs.
	if m.IntEnabled && !m.inISR && m.IntVector != 0 && m.Bus.Line.Pending() {
		if err := m.Push(m.PC); err != nil {
			return nil, err
		}
		m.PC = m.IntVector
		m.inISR = true
		return nil, nil
	}
	b, err := m.cache.Get(m.PC)
	if err != nil {
		return nil, err
	}
	m.Blocks++
	for i, in := range b.Instrs {
		if err := m.exec(in, b.InstrAddr(i)); err != nil {
			return b, fmt.Errorf("vm: at %#x (%s): %w", b.InstrAddr(i), in.Disassemble(), err)
		}
		m.Cycles++
	}
	return b, nil
}

func (m *Machine) exec(in isa.Instr, addr uint32) error {
	nextPC := addr + isa.InstrSize
	switch in.Op {
	case isa.NOP:
	case isa.MOVI:
		m.Regs[in.Rd] = in.Imm
	case isa.MOV:
		m.Regs[in.Rd] = m.Regs[in.Rs1]
	case isa.ADD:
		m.Regs[in.Rd] = m.Regs[in.Rs1] + m.src2(in)
	case isa.SUB:
		m.Regs[in.Rd] = m.Regs[in.Rs1] - m.src2(in)
	case isa.AND:
		m.Regs[in.Rd] = m.Regs[in.Rs1] & m.src2(in)
	case isa.OR:
		m.Regs[in.Rd] = m.Regs[in.Rs1] | m.src2(in)
	case isa.XOR:
		m.Regs[in.Rd] = m.Regs[in.Rs1] ^ m.src2(in)
	case isa.SHL:
		m.Regs[in.Rd] = m.Regs[in.Rs1] << (m.src2(in) % 32)
	case isa.SHR:
		m.Regs[in.Rd] = m.Regs[in.Rs1] >> (m.src2(in) % 32)
	case isa.SAR:
		m.Regs[in.Rd] = uint32(int32(m.Regs[in.Rs1]) >> (m.src2(in) % 32))
	case isa.MUL:
		m.Regs[in.Rd] = m.Regs[in.Rs1] * m.src2(in)
	case isa.LD8, isa.LD16, isa.LD32:
		v, err := m.Read(m.Regs[in.Rs1]+in.Imm, in.Op.AccessSize())
		if err != nil {
			return err
		}
		m.Regs[in.Rd] = v
	case isa.ST8, isa.ST16, isa.ST32:
		if err := m.Write(m.Regs[in.Rs1]+in.Imm, in.Op.AccessSize(), m.Regs[in.Rs2]); err != nil {
			return err
		}
	case isa.IN8, isa.IN16, isa.IN32:
		port := m.Regs[in.Rs1] + in.Imm
		v := m.Bus.PortRead(port, in.Op.AccessSize())
		m.tapIO(true, false, port, in.Op.AccessSize(), v)
		m.Regs[in.Rd] = v
	case isa.OUT8, isa.OUT16, isa.OUT32:
		port := m.Regs[in.Rs1] + in.Imm
		v := m.Regs[in.Rs2] & hw.SizeMask(in.Op.AccessSize())
		m.Bus.PortWrite(port, in.Op.AccessSize(), v)
		m.tapIO(true, true, port, in.Op.AccessSize(), v)
	case isa.PUSH:
		if err := m.Push(m.Regs[in.Rs1]); err != nil {
			return err
		}
	case isa.POP:
		v, err := m.Pop()
		if err != nil {
			return err
		}
		m.Regs[in.Rd] = v
	case isa.JMP:
		nextPC = in.Imm
	case isa.JR:
		nextPC = m.Regs[in.Rs1]
	case isa.BR:
		if condTrue(in.Cond(), m.Regs[in.Rs1], m.Regs[in.Rs2]) {
			nextPC = in.Imm
		}
	case isa.BRI:
		if condTrue(in.Cond(), m.Regs[in.Rs1], uint32(uint8(in.Rs2))) {
			nextPC = in.Imm
		}
	case isa.CALL, isa.CALLR:
		target := in.Imm
		if in.Op == isa.CALLR {
			target = m.Regs[in.Rs1]
		}
		if err := m.Push(nextPC); err != nil {
			return err
		}
		if hw.IsAPIGate(target) {
			if m.OSCall == nil {
				return fmt.Errorf("API call %#x with no OS handler", target)
			}
			// The handler ends with APIReturn, which sets PC.
			m.PC = target
			if err := m.OSCall(m, hw.APIIndex(target)); err != nil {
				return err
			}
			return nil
		}
		nextPC = target
	case isa.RET:
		ra, err := m.Pop()
		if err != nil {
			return err
		}
		m.Regs[isa.SP] += in.Imm
		nextPC = ra
		if ra == MagicReturn {
			m.Halted = true
		}
	case isa.IRET:
		ra, err := m.Pop()
		if err != nil {
			return err
		}
		m.inISR = false
		nextPC = ra
		if ra == MagicReturn {
			m.Halted = true
		}
	case isa.HLT:
		m.Halted = true
	default:
		return fmt.Errorf("unimplemented opcode %v", in.Op)
	}
	m.PC = nextPC
	return nil
}

// Run executes until the machine halts or maxBlocks translation
// blocks have run, whichever is first. It returns the number of
// blocks executed.
func (m *Machine) Run(maxBlocks int) (int, error) {
	n := 0
	for !m.Halted && n < maxBlocks {
		if _, err := m.StepBlock(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// CallEntry invokes a guest function at addr with the given stack
// arguments (stdcall: callee pops them) and runs it to completion.
// It returns the function's r0 return value.
func (m *Machine) CallEntry(addr uint32, maxBlocks int, args ...uint32) (uint32, error) {
	if m.Regs[isa.SP] == 0 {
		m.Regs[isa.SP] = hw.StackTop
	}
	for i := len(args) - 1; i >= 0; i-- {
		if err := m.Push(args[i]); err != nil {
			return 0, err
		}
	}
	if err := m.Push(MagicReturn); err != nil {
		return 0, err
	}
	m.PC = addr
	m.Halted = false
	n, err := m.Run(maxBlocks)
	if err != nil {
		return 0, err
	}
	if n >= maxBlocks && !m.Halted {
		return 0, fmt.Errorf("vm: entry %#x did not complete within %d blocks", addr, maxBlocks)
	}
	m.Halted = false
	return m.Regs[isa.R0], nil
}

// ServiceInterrupt runs the installed interrupt handler to completion
// if the line is pending, returning whether a handler ran. It is used
// when the guest is otherwise idle (no entry point executing), which
// is when real hardware would interrupt the idle loop.
func (m *Machine) ServiceInterrupt(maxBlocks int) (bool, error) {
	if !m.Bus.Line.Pending() || m.IntVector == 0 || !m.IntEnabled || m.inISR {
		return false, nil
	}
	if m.Regs[isa.SP] == 0 {
		m.Regs[isa.SP] = hw.StackTop
	}
	if err := m.Push(MagicReturn); err != nil {
		return false, err
	}
	m.PC = m.IntVector
	m.inISR = true
	m.Halted = false
	n, err := m.Run(maxBlocks)
	if err != nil {
		return true, err
	}
	if n >= maxBlocks && !m.Halted {
		return true, fmt.Errorf("vm: interrupt handler did not complete within %d blocks", maxBlocks)
	}
	m.Halted = false
	m.inISR = false
	return true, nil
}

// TranslationCache exposes the machine's block cache (for the
// wiretap, which records IR for executed blocks).
func (m *Machine) TranslationCache() *ir.Cache { return m.cache }

// InISR reports whether the CPU is inside an interrupt handler.
func (m *Machine) InISR() bool { return m.inISR }
