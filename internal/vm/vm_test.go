package vm

import (
	"testing"

	"revnic/internal/hw"
	"revnic/internal/isa"
)

func setup(t *testing.T, src string) (*Machine, *isa.Program) {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(hw.NewBus())
	if err := m.LoadImage(p); err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestArithmeticAndMemory(t *testing.T) {
	m, p := setup(t, `
.org 0x1000
entry:
	movi r1, #10
	movi r2, #3
	sub  r3, r1, r2   ; 7
	mul  r3, r3, r3   ; 49
	movi r4, scratch
	st32 [r4+0], r3
	ld32 r0, [r4+0]
	ret
scratch:
	.word 0
`)
	got, err := m.CallEntry(p.Sym("entry"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 49 {
		t.Errorf("r0 = %d, want 49", got)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..n with n passed on the stack (stdcall).
	m, p := setup(t, `
.org 0x1000
.func sum
	ld32 r1, [sp+4]   ; n
	movi r0, #0
	movi r2, #0
loop:
	bgeu r2, r1, done
	add  r2, r2, #1
	add  r0, r0, r2
	jmp  loop
done:
	ret 4
`)
	got, err := m.CallEntry(p.Sym("sum"), 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("sum(10) = %d, want 55", got)
	}
}

func TestSignedBranches(t *testing.T) {
	m, p := setup(t, `
.org 0x1000
.func isneg
	ld32 r1, [sp+4]
	movi r2, #0
	blt  r1, r2, neg
	movi r0, #0
	ret 4
neg:
	movi r0, #1
	ret 4
`)
	if got, _ := m.CallEntry(p.Sym("isneg"), 100, 0xFFFFFFFF); got != 1 {
		t.Errorf("isneg(-1) = %d", got)
	}
	if got, _ := m.CallEntry(p.Sym("isneg"), 100, 5); got != 0 {
		t.Errorf("isneg(5) = %d", got)
	}
}

func TestNestedCallsStdcall(t *testing.T) {
	m, p := setup(t, `
.org 0x1000
.func caller
	movi r1, #6
	push r1
	movi r1, #7
	push r1
	call mulfn        ; mulfn(7, 6)
	ret
.func mulfn
	ld32 r1, [sp+4]
	ld32 r2, [sp+8]
	mul  r0, r1, r2
	ret 8             ; callee pops both args
`)
	got, err := m.CallEntry(p.Sym("caller"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("caller = %d, want 42", got)
	}
	// Stack must balance: SP back to the pre-call value.
	if m.Regs[isa.SP] != hw.StackTop {
		t.Errorf("SP = %#x, want %#x", m.Regs[isa.SP], hw.StackTop)
	}
}

func TestIndirectJumpTable(t *testing.T) {
	m, p := setup(t, `
.org 0x1000
.func dispatch
	ld32 r1, [sp+4]      ; selector 0..2
	movi r2, table
	shl  r3, r1, #2
	add  r2, r2, r3
	ld32 r2, [r2+0]
	jr   r2
case0: movi r0, #100
	ret 4
case1: movi r0, #200
	ret 4
case2: movi r0, #300
	ret 4
.align 4
table:
	.word case0, case1, case2
`)
	for i, want := range []uint32{100, 200, 300} {
		got, err := m.CallEntry(p.Sym("dispatch"), 100, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("dispatch(%d) = %d, want %d", i, got, want)
		}
	}
}

// portDev is a tiny device: reg 0 holds a value, reg 4 adds to it.
type portDev struct {
	hw.NopDevice
	val uint32
}

func (d *portDev) PortRead(off uint32, size int) uint32 { return d.val }
func (d *portDev) PortWrite(off uint32, size int, v uint32) {
	if off == 4 {
		d.val += v
	} else {
		d.val = v
	}
}

func TestPortIOAndTaps(t *testing.T) {
	p, err := isa.Assemble(`
.org 0x1000
.func f
	movi r1, #0x300
	movi r2, #5
	out32 (r1+0), r2
	out32 (r1+4), r2
	in32  r0, (r1+0)
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	bus := hw.NewBus()
	dev := &portDev{}
	bus.Attach(dev, hw.PCIConfig{IOBase: 0x300, IOSize: 0x10})
	m := New(bus)
	m.LoadImage(p)
	var taps []uint32
	m.AddIOTap(func(port, write bool, addr uint32, size int, v uint32) {
		if !port {
			t.Error("expected port I/O")
		}
		taps = append(taps, addr)
	})
	got, err := m.CallEntry(p.Sym("f"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("r0 = %d, want 10", got)
	}
	if len(taps) != 3 || taps[0] != 0x300 || taps[1] != 0x304 {
		t.Errorf("taps = %v", taps)
	}
}

func TestMMIOAccess(t *testing.T) {
	p, _ := isa.Assemble(`
.org 0x1000
.func f
	movi r1, #0
	sub  r1, r1, #0x30000000  ; r1 = 0xD0000000
	movi r2, #0x77
	st32 [r1+8], r2           ; MMIO write
	ld32 r0, [r1+8]           ; MMIO read
	ret
`)
	bus := hw.NewBus()
	dev := &mmioDev{}
	bus.Attach(dev, hw.PCIConfig{MMIOAddr: hw.MMIOBase, MMIOSize: 0x100})
	m := New(bus)
	m.LoadImage(p)
	var sawMMIO bool
	m.AddIOTap(func(port, write bool, addr uint32, size int, v uint32) {
		if !port {
			sawMMIO = true
		}
	})
	got, err := m.CallEntry(p.Sym("f"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x77 {
		t.Errorf("MMIO round trip = %#x", got)
	}
	if !sawMMIO {
		t.Error("MMIO access not tapped")
	}
}

type mmioDev struct {
	hw.NopDevice
	regs [64]uint32
}

func (d *mmioDev) MMIORead(off uint32, size int) uint32     { return d.regs[off/4] }
func (d *mmioDev) MMIOWrite(off uint32, size int, v uint32) { d.regs[off/4] = v }

func TestOSCallGate(t *testing.T) {
	p, err := isa.Assemble(`
.org 0x1000
.equ API_MAGIC, 0xF00018   ; gate index 3
.func f
	movi r1, #41
	push r1
	call API_MAGIC    ; OS call with one arg
	add  r0, r0, #100
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(hw.NewBus())
	m.LoadImage(p)
	var gotIndex, gotArg uint32
	m.OSCall = func(mm *Machine, index uint32) error {
		gotIndex = index
		gotArg = mm.Arg(0)
		return mm.APIReturn(gotArg+1, 1)
	}
	got, err := m.CallEntry(p.Sym("f"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if gotIndex != 3 || gotArg != 41 {
		t.Errorf("index=%d arg=%d", gotIndex, gotArg)
	}
	if got != 142 {
		t.Errorf("result = %d, want 142", got)
	}
	if m.Regs[isa.SP] != hw.StackTop {
		t.Errorf("stack imbalance after API call: %#x", m.Regs[isa.SP])
	}
}

// ackDev deasserts the shared interrupt line when its status port is
// read, like a NIC interrupt-status register with read-to-ack.
type ackDev struct {
	hw.NopDevice
	line *hw.IRQLine
}

func (d *ackDev) PortRead(off uint32, size int) uint32 {
	d.line.Deassert()
	return 1
}

func TestInterruptDeliveryAndService(t *testing.T) {
	p, _ := isa.Assemble(`
.org 0x1000
.func isr
	push r1
	movi r1, #0x320
	in32 r2, (r1+0)      ; ack the device, deasserting the line
	movi r1, flagvar
	movi r2, #1
	st32 [r1+0], r2
	pop r1
	iret
.func idle
	movi r3, #0
spin:
	add r3, r3, #1
	movi r4, #100
	bltu r3, r4, spin
	ret
flagvar:
	.word 0
`)
	bus := hw.NewBus()
	bus.Attach(&ackDev{line: &bus.Line}, hw.PCIConfig{IOBase: 0x320, IOSize: 4})
	m := New(bus)
	m.LoadImage(p)
	m.IntVector = p.Sym("isr")
	m.IntEnabled = true

	// Interrupt while running: assert the line, then run idle loop.
	bus.Line.Assert()
	if _, err := m.CallEntry(p.Sym("idle"), 1000); err != nil {
		t.Fatal(err)
	}
	if m.Read32(p.Sym("flagvar")) != 1 {
		t.Error("ISR did not run during execution")
	}
	if m.InISR() {
		t.Error("stuck in ISR")
	}

	// ServiceInterrupt while idle.
	m.Write32(p.Sym("flagvar"), 0)
	bus.Line.Clear()
	ran, err := m.ServiceInterrupt(100)
	if err != nil || ran {
		t.Fatalf("no IRQ pending: ran=%v err=%v", ran, err)
	}
	bus.Line.Assert()
	ran, err = m.ServiceInterrupt(100)
	if err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	if m.Read32(p.Sym("flagvar")) != 1 {
		t.Error("ISR did not run from idle")
	}
}

func TestFaults(t *testing.T) {
	m, p := setup(t, `
.org 0x1000
.func bad
	movi r1, #0
	sub  r1, r1, #4
	ld32 r0, [r1+0]   ; read at 0xFFFFFFFC: outside RAM, below MMIO? no: IsMMIO, so routed to bus
	ret
.func badjump
	movi r1, #0x00500000
	jr   r1           ; fetch outside RAM
`)
	// 0xFFFFFFFC is MMIO space (>= 0xD0000000) so it reads open bus.
	if got, err := m.CallEntry(p.Sym("bad"), 100); err != nil || got != 0xFFFFFFFF {
		t.Errorf("MMIO open bus: got %#x err %v", got, err)
	}
	if _, err := m.CallEntry(p.Sym("badjump"), 100); err == nil {
		t.Error("fetch outside RAM should fault")
	}
	// Entry that never completes must report block-budget exhaustion.
	m2, p2 := setup(t, ".org 0x1000\n.func spin\njmp spin")
	if _, err := m2.CallEntry(p2.Sym("spin"), 50); err == nil {
		t.Error("runaway entry should error")
	}
}

func TestCallEntryWithoutHandlerFaults(t *testing.T) {
	m, p := setup(t, `
.org 0x1000
.func f
	call 0xF00000
	ret
`)
	if _, err := m.CallEntry(p.Sym("f"), 100); err == nil {
		t.Error("API call without handler must fault")
	}
}
