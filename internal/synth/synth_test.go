package synth

import (
	"strings"
	"testing"

	"revnic/internal/cfg"
	"revnic/internal/drivers"
	"revnic/internal/hw"
	"revnic/internal/symexec"
)

func reversedGraph(t *testing.T, name string) (*drivers.Info, *cfg.Graph) {
	t.Helper()
	info, err := drivers.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	eng := symexec.New(info.Program, symexec.Config{
		Seed: 11,
		Shell: hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
			IOBase: 0xC000, IOSize: 0x100, IRQLine: 11},
	})
	res, err := eng.Explore()
	if err != nil {
		t.Fatal(err)
	}
	return info, cfg.Build(res.Collector)
}

func TestGenerateStructure(t *testing.T) {
	_, g := reversedGraph(t, "RTL8029")
	out := Generate(g, Options{DriverName: "RTL8029"})
	code := out.Code

	// One C function per recovered function, each with a prototype
	// forward declaration and a body.
	for _, f := range g.SortedFuncs() {
		if n := strings.Count(code, f.Name()+"("); n < 2 {
			t.Errorf("function %s appears %d times, want >= 2 (decl+def)", f.Name(), n)
		}
	}
	// Balanced braces — a cheap well-formedness check.
	if strings.Count(code, "{") != strings.Count(code, "}") {
		t.Error("unbalanced braces in generated code")
	}
	// Every goto must target a label that exists.
	for _, line := range strings.Split(code, "\n") {
		idx := strings.Index(line, "goto L_")
		if idx < 0 {
			continue
		}
		label := strings.TrimSuffix(strings.TrimSpace(line[idx+5:]), ";")
		if !strings.Contains(code, label+":") {
			t.Errorf("goto to missing label %q", label)
		}
	}
	// Port I/O must use the template intrinsics, never raw pointers.
	if !strings.Contains(code, "read_port8(") || !strings.Contains(code, "write_port8(") {
		t.Error("port I/O intrinsics missing")
	}
	// Pointer-arithmetic state access survives (Listing 1).
	if !strings.Contains(code, "*(uint32_t *)(uintptr_t)(") {
		t.Error("preserved pointer arithmetic missing")
	}
}

func TestGenerateFuncInfo(t *testing.T) {
	info, g := reversedGraph(t, "RTL8029")
	out := Generate(g, Options{DriverName: "RTL8029"})

	byRole := map[string]FuncInfo{}
	for _, f := range out.Funcs {
		if f.Role != "" {
			byRole[f.Role] = f
		}
	}
	send, ok := byRole["send"]
	if !ok {
		t.Fatal("send function missing")
	}
	if send.NumParams != 3 {
		t.Errorf("send params = %d", send.NumParams)
	}
	if send.Class != "mixed" {
		t.Errorf("send class = %s, want mixed (hardware + error-log API)", send.Class)
	}
	// The CRC hash helper is a pure algorithm.
	crcAddr := info.Program.Sym("crc32_hash")
	for _, f := range out.Funcs {
		if f.Entry == crcAddr && f.Class != "algo" {
			t.Errorf("crc32_hash class = %s", f.Class)
		}
	}
}

func TestEntryPointsHaveReturnTypes(t *testing.T) {
	_, g := reversedGraph(t, "RTL8029")
	out := Generate(g, Options{DriverName: "RTL8029"})
	for _, f := range out.Funcs {
		if f.Role != "" && !f.HasReturn {
			t.Errorf("entry point %s (%s) generated without return type", f.Name, f.Role)
		}
	}
	// Initialize must be declared uint32_t so the template can test
	// its context result.
	if !strings.Contains(out.Code, "uint32_t mp_initialize_") {
		t.Error("initialize not uint32_t")
	}
}

func TestUnexploredFlagging(t *testing.T) {
	// A tiny synthetic graph with a branch to a missing block must
	// produce a REVNIC-WARNING and a landing pad.
	_, g := reversedGraph(t, "SMSC 91C111")
	out := Generate(g, Options{DriverName: "SMSC 91C111"})
	// The 91C111 driver has an allocation-failure path that the
	// exerciser cannot reach (the model always allocates); some
	// drivers will legitimately have zero unexplored branches, so
	// only check consistency: warnings match flagged labels.
	warnings := 0
	for _, w := range out.Warnings {
		if strings.Contains(w, "unexercised") {
			warnings++
		}
	}
	flagged := strings.Count(out.Code, "REVNIC-WARNING")
	if warnings != flagged {
		t.Errorf("warnings %d != flagged labels %d", warnings, flagged)
	}
}
